package connector

import (
	"testing"
	"testing/quick"
	"time"

	"soda"
)

func TestWiringRoundTrip(t *testing.T) {
	w := Wiring{
		Self:         2,
		Members:      []soda.MID{4, 9, 12},
		LinkPatterns: []soda.Pattern{soda.WellKnownPattern(1), soda.WellKnownPattern(77)},
	}
	got, err := DecodeWiring(w.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Self != w.Self || len(got.Members) != 3 || got.Members[1] != 9 ||
		len(got.LinkPatterns) != 2 || got.LinkPatterns[1] != w.LinkPatterns[1] {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestWiringRejectsMalformed(t *testing.T) {
	if _, err := DecodeWiring(nil); err == nil {
		t.Error("nil block accepted")
	}
	if _, err := DecodeWiring([]byte{1, 2, 3, 0, 9}); err == nil {
		t.Error("truncated block accepted")
	}
}

func TestWiringRoundTripProperty(t *testing.T) {
	f := func(self uint8, mids []uint16, pats []uint32) bool {
		if len(mids) > 255 || len(pats) > 255 {
			return true
		}
		w := Wiring{Self: int(self)}
		for _, m := range mids {
			w.Members = append(w.Members, soda.MID(m))
		}
		for _, p := range pats {
			w.LinkPatterns = append(w.LinkPatterns, soda.WellKnownPattern(uint64(p)))
		}
		got, err := DecodeWiring(w.Encode())
		if err != nil {
			return false
		}
		if got.Self != int(self) || len(got.Members) != len(mids) || len(got.LinkPatterns) != len(pats) {
			return false
		}
		for i, m := range mids {
			if got.Members[i] != soda.MID(m) {
				return false
			}
		}
		for i := range pats {
			if got.LinkPatterns[i] != w.LinkPatterns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadWiresTwoModules is the §4.3.1 scenario: a connector loads a
// producer and a consumer on free machines; the consumer advertises the
// link pattern from its wiring block, the producer sends on it — no
// broadcasts, no well-known names between them.
func TestLoadWiresTwoModules(t *testing.T) {
	nw := soda.NewNetwork()
	var delivered []byte
	nw.Register("consumer", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			w, err := DecodeWiring(c.BootParams())
			if err != nil {
				panic(err)
			}
			c.SetStash(w)
			if err := c.Advertise(w.LinkPatterns[0]); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			w := c.Stash().(Wiring)
			if ev.Kind == soda.EventRequestArrival && ev.Pattern == w.LinkPatterns[0] {
				res := c.AcceptCurrentPut(soda.OK, ev.PutSize)
				if res.Status == soda.AcceptSuccess {
					delivered = res.Data
				}
			}
		},
	})
	nw.Register("producer", soda.Program{
		Task: func(c *soda.Client) {
			w, err := DecodeWiring(c.BootParams())
			if err != nil {
				panic(err)
			}
			// Module 1 (the consumer) serves the link; give its Init a
			// beat to advertise.
			c.Hold(30 * time.Millisecond)
			dst := soda.ServerSig{MID: w.Members[1], Pattern: w.LinkPatterns[0]}
			if res := c.BPut(dst, soda.OK, []byte("wired!")); res.Status != soda.StatusSuccess {
				t.Errorf("producer put: %v", res.Status)
			}
		},
	})
	var loaded Loaded
	var loadErr error
	reclaimed := false
	nw.Register("connector", soda.Program{
		Task: func(c *soda.Client) {
			loaded, loadErr = Load(c, []Module{{Program: "producer"}, {Program: "consumer"}}, 1)
			if loadErr != nil {
				return
			}
			c.Hold(time.Second)
			KillAll(c, loaded)
			reclaimed = len(c.DiscoverAll(soda.BootPattern, 8)) == 2
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(1, "connector")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if loadErr != nil {
		t.Fatalf("load: %v", loadErr)
	}
	if len(loaded.Members) != 2 {
		t.Fatalf("loaded = %+v", loaded)
	}
	if string(delivered) != "wired!" {
		t.Fatalf("consumer received %q", delivered)
	}
	if !reclaimed {
		t.Fatal("machines not reclaimed after KillAll")
	}
}

// TestLoadFailsWithoutMachines: not enough free machines is a clean error.
func TestLoadFailsWithoutMachines(t *testing.T) {
	nw := soda.NewNetwork()
	var loadErr error
	nw.Register("connector", soda.Program{
		Task: func(c *soda.Client) {
			_, loadErr = Load(c, []Module{{Program: "a"}, {Program: "b"}}, 0)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2) // only one free machine
	nw.MustBoot(1, "connector")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if loadErr == nil {
		t.Fatal("load succeeded without enough machines")
	}
}

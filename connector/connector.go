// Package connector implements load-time interconnection (§4.3.1): a
// connector process boots a set of cooperating modules onto free machines
// and establishes their communication paths by editing each module's core
// image before it starts — "a linkage editor which … links modules loosely
// together by establishing entry points used for intermodule
// communication".
//
// In this reproduction a core image is a registered program name, so the
// connector appends a parameter block: the list of machine ids assigned to
// every module plus a set of fresh GETUNIQUEID patterns, one per declared
// link. Each module reads the block back with Client.BootParams and knows
// exactly whom to ADVERTISE for and whom to REQUEST from — no broadcasts,
// no well-known names (§4.3.1's second connection method).
//
// The connector also embodies a node-allocation policy (§4.3.1): it claims
// the machines it needs via the reserved boot patterns, and the load
// patterns it collects double as kill capabilities over the whole set.
package connector

import (
	"encoding/binary"
	"fmt"

	"soda"
)

// Module declares one program to load.
type Module struct {
	// Program is the registered program name (no NUL bytes).
	Program string
}

// Wiring is the parameter block every module receives: the machine
// assignment of the whole set and the per-link patterns.
type Wiring struct {
	// Self is the index of the receiving module within Members.
	Self int
	// Members lists the machine ids, in Module declaration order.
	Members []soda.MID
	// LinkPatterns holds one fresh pattern per declared link, in
	// declaration order. The convention is the link's *second* endpoint
	// advertises the pattern and the first sends to it; modules are free
	// to arrange otherwise.
	LinkPatterns []soda.Pattern
}

// Encode serializes a wiring block for the core image.
func (w Wiring) Encode() []byte {
	buf := make([]byte, 0, 4+2*len(w.Members)+8*len(w.LinkPatterns))
	buf = append(buf, byte(w.Self))
	buf = append(buf, byte(len(w.Members)))
	buf = append(buf, byte(len(w.LinkPatterns)), 0)
	for _, mid := range w.Members {
		buf = binary.BigEndian.AppendUint16(buf, uint16(mid))
	}
	for _, p := range w.LinkPatterns {
		buf = binary.BigEndian.AppendUint64(buf, uint64(p))
	}
	return buf
}

// DecodeWiring parses a parameter block produced by Encode; modules call it
// on Client.BootParams() in their Init section.
func DecodeWiring(b []byte) (Wiring, error) {
	if len(b) < 4 {
		return Wiring{}, fmt.Errorf("connector: short wiring block (%d bytes)", len(b))
	}
	w := Wiring{Self: int(b[0])}
	nm, np := int(b[1]), int(b[2])
	need := 4 + 2*nm + 8*np
	if len(b) != need {
		return Wiring{}, fmt.Errorf("connector: wiring block %d bytes, want %d", len(b), need)
	}
	off := 4
	for i := 0; i < nm; i++ {
		w.Members = append(w.Members, soda.MID(binary.BigEndian.Uint16(b[off:])))
		off += 2
	}
	for i := 0; i < np; i++ {
		w.LinkPatterns = append(w.LinkPatterns, soda.Pattern(binary.BigEndian.Uint64(b[off:])))
		off += 8
	}
	return w, nil
}

// Loaded reports a completed load: the machines used and the kill
// capabilities over them.
type Loaded struct {
	Members  []soda.MID
	LoadPats []soda.Pattern
}

// Load discovers enough free machines, mints one pattern per link, and
// boots every module with the full wiring block. It must run from a client
// task. On failure, already-started modules are killed and their machines
// released.
func Load(c *soda.Client, modules []Module, links int) (Loaded, error) {
	free := c.DiscoverAll(soda.BootPattern, len(modules)+4)
	if len(free) < len(modules) {
		return Loaded{}, fmt.Errorf("connector: need %d free machines, found %d", len(modules), len(free))
	}
	members := append([]soda.MID(nil), free[:len(modules)]...)
	patterns := make([]soda.Pattern, links)
	for i := range patterns {
		patterns[i] = c.GetUniqueID()
	}
	out := Loaded{Members: members}
	for i, m := range modules {
		w := Wiring{Self: i, Members: members, LinkPatterns: patterns}
		loadPat, err := soda.BootRemoteWithParams(c, members[i], soda.BootPattern, m.Program, w.Encode())
		if err != nil {
			// Roll back what already started.
			for j := 0; j < i; j++ {
				soda.KillChild(c, members[j], out.LoadPats[j])
			}
			return Loaded{}, fmt.Errorf("connector: module %d (%s) on machine %d: %w", i, m.Program, members[i], err)
		}
		out.LoadPats = append(out.LoadPats, loadPat)
	}
	return out, nil
}

// KillAll reclaims every machine of a loaded set (§3.5.3).
func KillAll(c *soda.Client, l Loaded) {
	for i, mid := range l.Members {
		soda.KillChild(c, mid, l.LoadPats[i])
	}
}

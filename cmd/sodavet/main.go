// Command sodavet runs this module's determinism and zero-overhead
// analyzers (see lint/...) over Go packages.
//
// Standalone:
//
//	go run ./cmd/sodavet ./...
//
// As a vet tool (best effort — module packages only):
//
//	go vet -vettool=$(go env GOPATH)/bin/sodavet ./...
//
// Exit status: 0 clean, 1 findings, 2 operational failure. Suppress a
// finding with a scoped annotation on (or directly above) the flagged line:
//
//	//lint:allow <analyzer> (reason)
package main

import (
	"os"

	"soda/lint"
	"soda/lint/mapiterorder"
	"soda/lint/noalloc"
	"soda/lint/nogoroutine"
	"soda/lint/norawrand"
	"soda/lint/nowallclock"
	"soda/lint/obszerocost"
	"soda/lint/parcapture"
	"soda/lint/segshare"
	"soda/lint/statsreset"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], []*lint.Analyzer{
		nowallclock.Analyzer,
		norawrand.Analyzer,
		nogoroutine.Analyzer,
		mapiterorder.Analyzer,
		obszerocost.Analyzer,
		statsreset.Analyzer,
		noalloc.Analyzer,
		segshare.Analyzer,
		parcapture.Analyzer,
	}))
}

// Command sodabench regenerates the tables and figures of the thesis's
// evaluation (chapter 5) in the paper's own format.
//
// Usage:
//
//	sodabench                      # everything
//	sodabench -table performance   # the "SODA Performance" table (E1+E5)
//	sodabench -table breakdown     # the overhead breakdown table (E2)
//	sodabench -table modcmp        # the SODA vs *MOD comparison (E3)
//	sodabench -table deltat        # the Delta-t situations figure (E4)
//	sodabench -ops 100             # more operations per cell
//	sodabench -profile BENCH_table61.json   # machine-readable run profile
//	sodabench -table none -profile f.json   # profile only, no tables
//
// All times are virtual milliseconds from the calibrated simulation; the
// shapes — who wins, by what factor, where the crossovers fall — are the
// reproduced result (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"soda/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to print: performance, breakdown, modcmp, deltat, all, none")
	ops := flag.Int("ops", 50, "measured operations per cell")
	profile := flag.String("profile", "", "write the Table 6.1 scenario's machine-readable run profile (JSON) to this file")
	flag.Parse()

	switch *table {
	case "performance":
		printPerformance(*ops)
	case "breakdown":
		printBreakdown(*ops)
	case "modcmp":
		printModComparison(*ops)
	case "deltat":
		printDeltaT()
	case "all":
		printPerformance(*ops)
		fmt.Println()
		printBreakdown(*ops)
		fmt.Println()
		printModComparison(*ops)
		fmt.Println()
		printDeltaT()
	case "none":
		// Profile-only mode (CI bench-smoke).
	default:
		fmt.Fprintf(os.Stderr, "sodabench: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *profile != "" {
		if err := writeProfile(*profile, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeProfile re-runs the Table 6.1 SIGNAL breakdown scenario with the
// metrics registry attached and writes the exportable profile.
func writeProfile(path string, ops int) error {
	p := bench.Table61Profile(ops)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("profile: %s written (%d ops, total %.1f ms/op)\n",
		path, p.Ops, float64(p.Breakdown.TotalUS)/1000)
	return nil
}

var words = []int{0, 1, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func printPerformance(ops int) {
	fmt.Println("SODA Performance (cf. thesis p. 115; virtual milliseconds per operation)")
	for _, op := range []bench.Op{bench.OpPut, bench.OpGet, bench.OpExchange} {
		for _, pipelined := range []bool{false, true} {
			kernel := "non-pipelined"
			if pipelined {
				kernel = "pipelined"
			}
			results := make([]bench.Result, len(words))
			for i, w := range words {
				results[i] = bench.MeasureOp(bench.Config{Op: op, Words: w, Pipelined: pipelined, Ops: ops})
			}
			// Steady-state packet count from the largest cell.
			fmt.Printf("\nMilliseconds Per %v (%s)  —  %.1f packets per %v\n",
				op, kernel, results[2].FramesPerOp, op)
			fmt.Printf("%-6s", "Words")
			for _, w := range words {
				fmt.Printf("%7d", w)
			}
			fmt.Printf("\n%-6s", "ms")
			for _, r := range results {
				fmt.Printf("%7.1f", ms(r.PerOp))
			}
			fmt.Println()
		}
	}
}

func printBreakdown(ops int) {
	bd := bench.MeasureBreakdown(ops)
	fmt.Println("Breakdown of Communications Overhead (cf. thesis p. 116)")
	fmt.Printf("  %.1f packets per SIGNAL\n", bd.FramesPerOp)
	rows := []struct {
		name string
		v    time.Duration
	}{
		{"Connection Timers", bd.ConnTimers},
		{"Retransmit Timers", bd.RetransTimers},
		{"Context Switch", bd.CtxSwitch},
		{"Transmission Time", bd.Transmission},
		{"Client Overhead", bd.ClientOverhead},
		{"Protocol Time", bd.Protocol},
		{"Buffer Copies", bd.Copies},
	}
	for _, r := range rows {
		fmt.Printf("  %-20s %5.1f ms\n", r.name, ms(r.v))
	}
	fmt.Printf("  %-20s %5.1f ms\n", "Total Time", ms(bd.Total))
}

func printModComparison(ops int) {
	fmt.Println("SODA vs *MOD (cf. thesis §5.5)")
	for _, row := range bench.MeasureModComparison(ops) {
		fmt.Printf("  %-44s %6.1f ms\n", row.Name, ms(row.PerOp))
	}
}

func printDeltaT() {
	fmt.Println("Typical Delta-t Situations (cf. thesis p. 106)")
	for _, sc := range bench.RunDeltaTScenarios() {
		status := "ok"
		if !sc.OK {
			status = "FAILED"
		}
		fmt.Printf("\n[%s] %s\n", status, sc.Name)
		for _, ev := range sc.Events {
			fmt.Printf("    %s\n", ev)
		}
	}
}

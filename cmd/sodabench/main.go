// Command sodabench regenerates the tables and figures of the thesis's
// evaluation (chapter 5) in the paper's own format.
//
// Usage:
//
//	sodabench                      # everything
//	sodabench -table performance   # the "SODA Performance" table (E1+E5)
//	sodabench -table breakdown     # the overhead breakdown table (E2)
//	sodabench -table modcmp        # the SODA vs *MOD comparison (E3)
//	sodabench -table deltat        # the Delta-t situations figure (E4)
//	sodabench -table window        # the sliding-window sweep (DESIGN.md §11)
//	sodabench -table lossywindow   # loss x window x recovery-mode sweep (DESIGN.md §12)
//	sodabench -ops 100             # more operations per cell
//	sodabench -profile BENCH_table61.json   # machine-readable run profile
//	sodabench -table none -profile f.json   # profile only, no tables
//	sodabench -table none -window BENCH_window.json       # write the window artifact
//	sodabench -table none -windowcheck BENCH_window.json  # regression-gate against it
//	sodabench -table none -lossywindow BENCH_lossywindow.json       # write the lossy artifact
//	sodabench -table none -lossycheck BENCH_lossywindow.json        # robustness-gate against it
//
// All times are virtual milliseconds from the calibrated simulation; the
// shapes — who wins, by what factor, where the crossovers fall — are the
// reproduced result (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"soda/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to print: performance, breakdown, modcmp, deltat, window, lossywindow, all, none")
	ops := flag.Int("ops", 50, "measured operations per cell")
	profile := flag.String("profile", "", "write the Table 6.1 scenario's machine-readable run profile (JSON) to this file")
	windowOut := flag.String("window", "", "write the sliding-window sweep artifact (BENCH_window.json format) to this file")
	windowCheck := flag.String("windowcheck", "", "re-measure the window sweep and regression-gate it against this artifact")
	lossyOut := flag.String("lossywindow", "", "write the lossy-window sweep artifact (BENCH_lossywindow.json format) to this file")
	lossyCheck := flag.String("lossycheck", "", "re-measure the lossy-window sweep and robustness-gate it against this artifact")
	scaleOut := flag.String("scale", "", "write the internetwork scaling-curve artifact (BENCH_scale.json format) to this file")
	scaleCheck := flag.Bool("scalecheck", false, "gate the measured scaling curve: 10k-node boot completes, the DISCOVER cache wins at n>=512, cross-segment RTT stays within the pinned ratio")
	flag.IntVar(&scaleParWorkers, "parworkers", 0, "add the parallel-identity cell to every scale row: segmented workload re-run sequentially and with this many intra-run workers, trace hashes gated byte-identical")
	flag.Parse()

	switch *table {
	case "performance":
		printPerformance(*ops)
	case "breakdown":
		printBreakdown(*ops)
	case "modcmp":
		printModComparison(*ops)
	case "deltat":
		printDeltaT()
	case "window":
		printWindow(*ops)
	case "lossywindow":
		printLossyWindow()
	case "scale":
		// The 10k-node rows make this the most expensive table; it runs
		// only on request, never under -table all.
		bench.PrintScaleCurve(os.Stdout, measuredScale())
	case "all":
		printPerformance(*ops)
		fmt.Println()
		printBreakdown(*ops)
		fmt.Println()
		printModComparison(*ops)
		fmt.Println()
		printDeltaT()
		fmt.Println()
		printWindow(*ops)
		fmt.Println()
		printLossyWindow()
	case "none":
		// Profile-only mode (CI bench-smoke).
	default:
		fmt.Fprintf(os.Stderr, "sodabench: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *profile != "" {
		if err := writeProfile(*profile, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *windowOut != "" {
		if err := writeWindow(*windowOut, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *windowCheck != "" {
		if err := checkWindow(*windowCheck, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *lossyOut != "" {
		if err := writeLossyWindow(*lossyOut); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *lossyCheck != "" {
		if err := checkLossyWindow(*lossyCheck); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *scaleOut != "" {
		if err := writeScale(*scaleOut, measuredScale()); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: %v\n", err)
			os.Exit(1)
		}
	}
	if *scaleCheck {
		if err := bench.CheckScaleCurve(measuredScale()); err != nil {
			fmt.Fprintf(os.Stderr, "sodabench: scale gate: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("scale gate: ok (boot completes at 10k nodes, DISCOVER cache wins at n>=512, RTT ratio within bound)")
	}
}

// scaleMemo measures the scaling curve at most once per invocation, so
// -table scale, -scale and -scalecheck share one (expensive) measurement.
// scaleParWorkers (-parworkers) adds the parallel-identity cell per row.
var (
	scaleMemo       *bench.ScaleCurve
	scaleParWorkers int
)

func measuredScale() bench.ScaleCurve {
	if scaleMemo == nil {
		c := bench.MeasureScaleCurvePar(nil, scaleParWorkers)
		scaleMemo = &c
	}
	return *scaleMemo
}

// writeScale records the BENCH_scale.json artifact.
func writeScale(path string, c bench.ScaleCurve) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Write(f); err != nil {
		return err
	}
	fmt.Printf("scale curve: %s written (%d rows)\n", path, len(c.Rows))
	return nil
}

// writeProfile re-runs the Table 6.1 SIGNAL breakdown scenario with the
// metrics registry attached and writes the exportable profile.
func writeProfile(path string, ops int) error {
	p := bench.Table61Profile(ops)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("profile: %s written (%d ops, total %.1f ms/op)\n",
		path, p.Ops, float64(p.Breakdown.TotalUS)/1000)
	return nil
}

var words = []int{0, 1, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func printPerformance(ops int) {
	fmt.Println("SODA Performance (cf. thesis p. 115; virtual milliseconds per operation)")
	for _, op := range []bench.Op{bench.OpPut, bench.OpGet, bench.OpExchange} {
		for _, pipelined := range []bool{false, true} {
			kernel := "non-pipelined"
			if pipelined {
				kernel = "pipelined"
			}
			results := make([]bench.Result, len(words))
			for i, w := range words {
				results[i] = bench.MeasureOp(bench.Config{Op: op, Words: w, Pipelined: pipelined, Ops: ops})
			}
			// Steady-state packet count from the largest cell.
			fmt.Printf("\nMilliseconds Per %v (%s)  —  %.1f packets per %v\n",
				op, kernel, results[2].FramesPerOp, op)
			fmt.Printf("%-6s", "Words")
			for _, w := range words {
				fmt.Printf("%7d", w)
			}
			fmt.Printf("\n%-6s", "ms")
			for _, r := range results {
				fmt.Printf("%7.1f", ms(r.PerOp))
			}
			fmt.Println()
		}
	}
}

func printBreakdown(ops int) {
	bd := bench.MeasureBreakdown(ops)
	fmt.Println("Breakdown of Communications Overhead (cf. thesis p. 116)")
	fmt.Printf("  %.1f packets per SIGNAL\n", bd.FramesPerOp)
	rows := []struct {
		name string
		v    time.Duration
	}{
		{"Connection Timers", bd.ConnTimers},
		{"Retransmit Timers", bd.RetransTimers},
		{"Context Switch", bd.CtxSwitch},
		{"Transmission Time", bd.Transmission},
		{"Client Overhead", bd.ClientOverhead},
		{"Protocol Time", bd.Protocol},
		{"Buffer Copies", bd.Copies},
	}
	for _, r := range rows {
		fmt.Printf("  %-20s %5.1f ms\n", r.name, ms(r.v))
	}
	fmt.Printf("  %-20s %5.1f ms\n", "Total Time", ms(bd.Total))
}

func printModComparison(ops int) {
	fmt.Println("SODA vs *MOD (cf. thesis §5.5)")
	for _, row := range bench.MeasureModComparison(ops) {
		fmt.Printf("  %-44s %6.1f ms\n", row.Name, ms(row.PerOp))
	}
}

func printWindow(ops int) {
	s := bench.MeasureWindowSweep(bench.DefaultWindowWords, bench.DefaultWindows, ops)
	fmt.Printf("Sliding-Window Bulk Transfer (DESIGN.md §11; %d-word pipelined %s, virtual time)\n",
		s.Words, s.Op)
	fmt.Printf("  %-8s %10s %10s %9s %7s %8s %9s\n",
		"Window", "ms/op", "frames/op", "speedup", "fills", "cumacks", "retrans")
	for _, r := range s.Rows {
		fmt.Printf("  %-8d %10.1f %10.1f %8.2fx %7d %8d %9d\n",
			r.Window, float64(r.PerOpUS)/1000, r.FramesPerOp, r.SpeedupVsW1,
			r.WindowFills, r.CumulativeAcks, r.FragRetransmits)
	}
}

// writeWindow regenerates the BENCH_window.json artifact.
func writeWindow(path string, ops int) error {
	s := bench.MeasureWindowSweep(bench.DefaultWindowWords, bench.DefaultWindows, ops)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("window sweep: %s written (%d ops per row)\n", path, s.Ops)
	return nil
}

// checkWindow re-measures the window sweep at the artifact's own op count
// and gates two regressions: the window=1 stop-and-wait baseline must not
// get slower than the checked-in figure (exact virtual time, so any drift
// is a real transport change), and window=4 must keep its >=2x speedup on
// the 1000-word pipelined PUT. Used by the CI window-bench job.
func checkWindow(path string, ops int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	want, err := bench.ReadWindowSweep(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if want.Ops > 0 {
		ops = want.Ops
	}
	got := bench.MeasureWindowSweep(want.Words, bench.DefaultWindows, ops)
	w1, w1want := got.Row(1), want.Row(1)
	if w1 == nil || w1want == nil {
		return fmt.Errorf("window sweep missing the window=1 baseline row")
	}
	if w1.PerOpUS > w1want.PerOpUS {
		return fmt.Errorf("window=1 regression: %d us/op, checked-in baseline %d us/op (virtual time is deterministic — this is a real stop-and-wait slowdown; if intentional, regenerate %s)",
			w1.PerOpUS, w1want.PerOpUS, path)
	}
	w4 := got.Row(4)
	if w4 == nil {
		return fmt.Errorf("window sweep missing the window=4 row")
	}
	if w4.SpeedupVsW1 < 2.0 {
		return fmt.Errorf("window=4 speedup %.2fx < 2.0x (per-op %d us vs baseline %d us)",
			w4.SpeedupVsW1, w4.PerOpUS, w1.PerOpUS)
	}
	fmt.Printf("window sweep check ok: window=1 %d us/op (baseline %d), window=4 speedup %.2fx\n",
		w1.PerOpUS, w1want.PerOpUS, w4.SpeedupVsW1)
	return nil
}

func printLossyWindow() {
	s := bench.MeasureLossyWindow(0, 0, nil, nil)
	fmt.Printf("Lossy Bulk Transfer (DESIGN.md §12; %d-byte messages, %d per cell, virtual time)\n",
		s.Bytes, s.Ops)
	fmt.Printf("  %-6s %-8s %-10s %10s %9s %7s %8s %8s %7s\n",
		"Loss", "Window", "Mode", "ms/op", "vs clean", "resub", "fragrtx", "selrtx", "windec")
	for _, r := range s.Rows {
		fmt.Printf("  %-6s %-8d %-10s %10.1f %8.2fx %7d %8d %8d %7d\n",
			fmt.Sprintf("%d%%", r.LossPct), r.Window, r.Mode,
			float64(r.PerOpUS)/1000, r.SlowdownVsClean,
			r.Resubmits, r.FragRetransmits, r.SelectiveRetransmits, r.WindowDecreases)
	}
}

// writeLossyWindow regenerates the BENCH_lossywindow.json artifact.
func writeLossyWindow(path string) error {
	s := bench.MeasureLossyWindow(0, 0, nil, nil)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("lossy-window sweep: %s written (%d ops per cell)\n", path, s.Ops)
	return nil
}

// checkLossyWindow re-measures the lossy sweep at the artifact's own batch
// shape and enforces the robustness gates (LossySweep.Check): selective
// repeat must degrade gracefully where go-back-N collapses, and a clean
// wire must stay mode-identical. Used by the CI lossy-window-bench job.
func checkLossyWindow(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	want, err := bench.ReadLossySweep(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	got := bench.MeasureLossyWindow(want.Bytes, want.Ops, nil, nil)
	if errs := got.Check(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "sodabench: lossy-window gate: %v\n", e)
		}
		return fmt.Errorf("%d lossy-window robustness gate(s) failed", len(errs))
	}
	// Determinism cross-check against the committed artifact: virtual
	// time is a pure function of the seed, so any drift is a real
	// transport change and the artifact must be regenerated consciously.
	for i := range got.Rows {
		g := got.Rows[i]
		w := want.Row(g.LossPct, g.Window, g.Mode)
		if w == nil {
			return fmt.Errorf("%s: missing row loss=%d%% window=%d mode=%s (regenerate the artifact)",
				path, g.LossPct, g.Window, g.Mode)
		}
		if w.PerOpUS != g.PerOpUS {
			return fmt.Errorf("row loss=%d%% window=%d mode=%s: measured %d us/op, artifact says %d us/op (deterministic virtual time — if the transport change is intentional, regenerate %s)",
				g.LossPct, g.Window, g.Mode, g.PerOpUS, w.PerOpUS, path)
		}
	}
	sel := got.Row(15, 8, "selective")
	gbn := got.Row(15, 8, "gobackn")
	if sel != nil && gbn != nil {
		fmt.Printf("lossy-window check ok: at 15%% loss w=8 selective %.2fx vs clean, gobackn %.2fx\n",
			sel.SlowdownVsClean, gbn.SlowdownVsClean)
	}
	return nil
}

func printDeltaT() {
	fmt.Println("Typical Delta-t Situations (cf. thesis p. 106)")
	for _, sc := range bench.RunDeltaTScenarios() {
		status := "ok"
		if !sc.OK {
			status = "FAILED"
		}
		fmt.Printf("\n[%s] %s\n", status, sc.Name)
		for _, ev := range sc.Events {
			fmt.Printf("    %s\n", ev)
		}
	}
}

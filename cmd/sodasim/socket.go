package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"soda"
	"soda/apps/fileserver"
)

// ncfg carries the -net tcp flags into runSocket.
var ncfg struct {
	net    string
	role   string
	listen string
	peers  string
}

// parsePeers decodes a "mid=host:port,mid=host:port" peer map.
func parsePeers(s string) (map[soda.MID]string, error) {
	peers := make(map[soda.MID]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		mid, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -peers entry %q (want mid=host:port)", part)
		}
		id, err := strconv.ParseUint(mid, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad -peers MID %q: %v", mid, err)
		}
		peers[soda.MID(id)] = addr
	}
	return peers, nil
}

// runSocket runs one machine of a scenario over real localhost TCP. Only
// the fileserver scenario is wired for sockets: role fs is machine 1 (the
// file service), role client is machine 2 (DISCOVER, then a REQUEST/ACCEPT
// session). Fault injection, topologies and parallel simulation are
// meaningless on a real wire and are rejected.
func runSocket(scenario string, seed int64, d time.Duration) error {
	switch {
	case fcfg.loss > 0 || fcfg.corrupt > 0 || fcfg.duplicate > 0 || fcfg.planFile != "" || fcfg.chaos:
		return fmt.Errorf("-net tcp does not take fault flags (the real wire provides its own faults)")
	case pcfg.segments > 1 || pcfg.parworkers > 1:
		return fmt.Errorf("-net tcp does not take -segments/-parworkers")
	case scenario != "fileserver":
		return fmt.Errorf("scenario %q has no socket roles (use -scenario fileserver with -role fs|client)", scenario)
	}
	peers, err := parsePeers(ncfg.peers)
	if err != nil {
		return err
	}
	nw := soda.NewNetwork(
		soda.WithSeed(seed),
		soda.WithSocketTransport(ncfg.listen),
		soda.WithSocketPeers(peers),
	)
	switch ncfg.role {
	case "fs":
		nw.Register("fs", fileserver.Server(map[string][]byte{
			"motd": []byte("welcome to the SODA file service"),
		}, 32))
		nw.MustAddNode(1)
		nw.MustBoot(1, "fs")
		fmt.Printf("fs: machine 1 listening on %s; serving for %v\n", nw.SocketAddr(), d)
		nw.StartSocket(nil)
		// Serve until the client side has been quiet for a second, or the
		// duration cap elapses — whichever is first.
		if nw.WaitSocketIdle(time.Second, d) {
			fmt.Println("fs: network idle; shutting down")
		} else {
			fmt.Println("fs: duration elapsed; shutting down")
		}
	case "client":
		done := false
		nw.Register("client", soda.Program{
			Task: func(c *soda.Client) {
				defer func() { done = true }()
				srv, ok := fileserver.Find(c)
				if !ok {
					fmt.Println("client: no file server found")
					return
				}
				fmt.Printf("client: discovered file server on machine %d\n", srv)
				f, err := fileserver.Open(c, srv, "motd")
				if err != nil {
					fmt.Println("client: open:", err)
					return
				}
				data, _ := f.Read(64)
				fmt.Printf("client: read %q\n", data)
				g, _ := fileserver.Open(c, srv, "journal")
				_ = g.Write([]byte("first entry over TCP"))
				_ = g.Seek(0)
				back, _ := g.Read(64)
				fmt.Printf("client: wrote and re-read %q\n", back)
				_ = g.Close()
				_ = f.Close()
				fmt.Println("client: session closed")
			},
		})
		nw.MustAddNode(2)
		nw.MustBoot(2, "client")
		fmt.Printf("client: machine 2 listening on %s\n", nw.SocketAddr())
		nw.StartSocket(func() bool { return done })
		if !nw.WaitSocket(d) {
			nw.CloseSocket()
			return fmt.Errorf("client did not finish within %v", d)
		}
	default:
		return fmt.Errorf("unknown -role %q for the fileserver scenario (want fs or client)", ncfg.role)
	}
	if err := nw.CloseSocket(); err != nil {
		return fmt.Errorf("socket shutdown leaked: %v", err)
	}
	return nil
}

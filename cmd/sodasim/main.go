// Command sodasim runs named SODA scenarios on a simulated network and
// narrates what happens.
//
// Usage:
//
//	sodasim -scenario philosophers   # dining philosophers + deadlock detector
//	sodasim -scenario fileserver     # remote file service session
//	sodasim -scenario boot           # remote boot / kill via reserved patterns
//	sodasim -scenario crash          # crash detection via probes
//	sodasim -seed 7 -duration 30s    # any scenario is deterministic per seed
//
// Observability:
//
//	sodasim -trace out.json          # write a Chrome trace (load in Perfetto)
//	sodasim -metrics                 # print per-primitive latency digests
//	sodasim -frames                  # print every frame on the bus
//
// Fault injection (any combination; all deterministic per seed):
//
//	sodasim -loss 0.1                # drop 10% of frames
//	sodasim -corrupt 0.05            # damage 5% of frames (CRC-detected)
//	sodasim -duplicate 0.05          # re-deliver 5% of frames
//	sodasim -faultplan plan.json     # replay a declarative fault plan
//	sodasim -chaos                   # generate a random plan from the seed
//	sodasim -check                   # invariant checkers without faults
//
// Whenever any fault source is active the invariant checkers run and the
// command exits non-zero if a reliability guarantee was violated.
//
// Real sockets (DESIGN.md §16): -net tcp runs one SODA machine per OS
// process over localhost TCP instead of the simulated bus. Two terminals:
//
//	sodasim -net tcp -role fs     -listen 127.0.0.1:7001 -peers 2=127.0.0.1:7002
//	sodasim -net tcp -role client -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001
//
// The peer map is explicit and symmetric: each process lists every other
// machine's MID and address (the transport does not learn return routes).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"soda"
	"soda/apps/fileserver"
	"soda/apps/philo"
	"soda/faults"
	"soda/obs"
	"soda/timesrv"
)

func main() {
	scenario := flag.String("scenario", "philosophers", "scenario: philosophers, fileserver, boot, crash")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	duration := flag.Duration("duration", 20*time.Second, "virtual run time")
	frames := flag.Bool("frames", false, "print every frame on the bus")
	flag.StringVar(&ocfg.traceFile, "trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
	flag.BoolVar(&ocfg.traceWire, "tracewire", false, "include per-frame wire events in the trace (bulky)")
	flag.BoolVar(&ocfg.metrics, "metrics", false, "print per-primitive latency digests and node counters")
	flag.Float64Var(&fcfg.loss, "loss", 0, "per-frame loss probability (0..1)")
	flag.Float64Var(&fcfg.corrupt, "corrupt", 0, "per-frame corruption probability (0..1)")
	flag.Float64Var(&fcfg.duplicate, "duplicate", 0, "per-frame duplication probability (0..1)")
	flag.StringVar(&fcfg.planFile, "faultplan", "", "JSON fault plan to replay")
	flag.BoolVar(&fcfg.chaos, "chaos", false, "generate a random fault plan from the seed")
	flag.BoolVar(&fcfg.check, "check", false, "run the invariant checkers even without faults")
	flag.IntVar(&pcfg.segments, "segments", 0, "star-internetwork segment count (<=1 = single shared bus)")
	flag.DurationVar(&pcfg.forwardDelay, "forwarddelay", 2*time.Millisecond, "gateway store-and-forward delay; the conservative lookahead bound for -parworkers")
	flag.IntVar(&pcfg.parworkers, "parworkers", 0, "intra-run parallel workers (needs -segments >= 2; <=1 = sequential)")
	flag.StringVar(&ncfg.net, "net", "sim", "transport: sim (deterministic virtual time) or tcp (real sockets, wall time)")
	flag.StringVar(&ncfg.role, "role", "", "-net tcp: which machine this process is (fileserver scenario: fs or client)")
	flag.StringVar(&ncfg.listen, "listen", "127.0.0.1:0", "-net tcp: listen address for peer connections")
	flag.StringVar(&ncfg.peers, "peers", "", "-net tcp: comma-separated mid=host:port peer map")
	flag.Parse()
	traceAll = *frames

	if ncfg.net == "tcp" {
		if err := runSocket(*scenario, *seed, *duration); err != nil {
			fmt.Fprintf(os.Stderr, "sodasim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var err error
	switch *scenario {
	case "philosophers":
		err = runPhilosophers(*seed, *duration)
	case "fileserver":
		err = runFileServer(*seed, *duration)
	case "boot":
		err = runBoot(*seed, *duration)
	case "crash":
		err = runCrash(*seed, *duration)
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sodasim: %v\n", err)
		os.Exit(1)
	}
}

// traceAll enables frame tracing on every scenario network.
var traceAll bool

// fcfg carries the fault-injection flags into the scenario runners.
var fcfg struct {
	loss, corrupt, duplicate float64
	planFile                 string
	chaos                    bool
	check                    bool
}

// pcfg carries the topology and intra-run parallelism flags. A -parworkers
// request without a shardable -segments topology degrades to sequential
// with the library's explicit stderr warning (never silently).
var pcfg struct {
	segments     int
	forwardDelay time.Duration
	parworkers   int
}

// ocfg carries the observability flags; tracer/metrics hold the instances
// attached to the scenario network so report can export them.
var ocfg struct {
	traceFile string
	traceWire bool
	metrics   bool
	tracer    *obs.Tracer
	registry  *obs.Registry
}

// newNetwork assembles the scenario network plus whatever fault sources the
// flags ask for. The scenario passes its machine set and the nodes a chaos
// plan may crash (stateless services only) so -chaos can target them.
func newNetwork(seed int64, d time.Duration, mids []soda.MID, crashable []faults.CrashTarget) (*soda.Network, error) {
	var plan faults.Plan
	if fcfg.planFile != "" {
		data, err := os.ReadFile(fcfg.planFile)
		if err != nil {
			return nil, err
		}
		p, err := faults.Parse(data)
		if err != nil {
			return nil, err
		}
		plan.Events = append(plan.Events, p.Events...)
	}
	if fcfg.corrupt > 0 {
		plan.Events = append(plan.Events, faults.Event{Kind: faults.Corrupt, Prob: fcfg.corrupt})
	}
	if fcfg.duplicate > 0 {
		plan.Events = append(plan.Events, faults.Event{Kind: faults.Duplicate, Prob: fcfg.duplicate})
	}
	if fcfg.chaos {
		gen := faults.Generate(rand.New(rand.NewSource(seed)), faults.GenConfig{
			Horizon:   d,
			MIDs:      mids,
			Crashable: crashable,
			Segments:  pcfg.segments,
		})
		if data, err := gen.Encode(); err == nil {
			fmt.Printf("chaos plan (replay with -faultplan):\n%s\n\n", data)
		}
		plan.Events = append(plan.Events, gen.Events...)
	}
	opts := []soda.Option{soda.WithSeed(seed)}
	if pcfg.segments > 1 {
		topo := soda.StarTopology(pcfg.segments)
		topo.ForwardDelay = pcfg.forwardDelay
		opts = append(opts, soda.WithTopology(topo))
	}
	if pcfg.parworkers > 1 {
		opts = append(opts, soda.WithParallelSim(pcfg.parworkers))
	}
	if fcfg.loss > 0 {
		opts = append(opts, soda.WithLoss(fcfg.loss))
	}
	if len(plan.Events) > 0 {
		opts = append(opts, soda.WithFaultPlan(plan))
	}
	if fcfg.check || fcfg.loss > 0 || len(plan.Events) > 0 {
		opts = append(opts, soda.WithInvariantChecks())
	}
	if ocfg.traceFile != "" {
		ocfg.tracer = obs.NewTracerWith(obs.TraceConfig{Wire: ocfg.traceWire})
		opts = append(opts, soda.WithTracer(ocfg.tracer))
	}
	if ocfg.metrics {
		ocfg.registry = obs.NewRegistry()
		opts = append(opts, soda.WithMetrics(ocfg.registry))
	}
	nw := soda.NewNetwork(opts...)
	if traceAll {
		nw.Trace(os.Stdout)
	}
	return nw, nil
}

// exportObs writes the Chrome trace file and prints the metrics digest,
// whichever the flags asked for.
func exportObs() error {
	if ocfg.tracer != nil {
		f, err := os.Create(ocfg.traceFile)
		if err != nil {
			return err
		}
		if err := ocfg.tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntrace: %d request spans written to %s (load in ui.perfetto.dev)\n",
			len(ocfg.tracer.Spans()), ocfg.traceFile)
	}
	if ocfg.registry != nil {
		fmt.Println("\nmetrics:")
		ocfg.registry.WriteSummary(os.Stdout)
	}
	return nil
}

// report prints the invariant checker's verdict and turns violations into a
// non-zero exit. Requests still in flight at the cutoff are listed but not
// fatal: the run stops mid-conversation by design.
func report(nw *soda.Network) error {
	if err := exportObs(); err != nil {
		return err
	}
	if st := nw.ParStats(); pcfg.parworkers > 1 && !st.FallbackSequential {
		fmt.Printf("\nparallel: %d workers, %d windows (%d exclusive steps), %d committed / %d staged events, %d gated ops\n",
			st.Workers, st.Windows, st.ExclusiveSteps, st.Committed, st.Staged, st.GatedOps)
	}
	ch := nw.Invariants()
	if ch == nil {
		return nil
	}
	frames, corrupted := ch.Frames()
	fmt.Printf("\ninvariants: %d requests tracked, %d frames delivered (%d corrupted)\n",
		ch.Requests(), frames, corrupted)
	if u := ch.Unresolved(); len(u) > 0 {
		fmt.Printf("invariants: %d requests still in flight at cutoff\n", len(u))
	}
	if v := ch.Finish(); len(v) > 0 {
		for _, s := range v {
			fmt.Println("  VIOLATION:", s)
		}
		return fmt.Errorf("%d invariant violations", len(v))
	}
	fmt.Println("invariants: all green")
	return nil
}

func runPhilosophers(seed int64, d time.Duration) error {
	ring := []soda.MID{2, 3, 4, 5, 6}
	nw, err := newNetwork(seed, d,
		[]soda.MID{1, 2, 3, 4, 5, 6, 7},
		[]faults.CrashTarget{{Node: 7, Program: "detector"}})
	if err != nil {
		return err
	}
	nw.Register("timesrv", timesrv.Program(16))
	nw.MustAddNode(1)
	nw.MustBoot(1, "timesrv")
	meals := make([]int, len(ring))
	for i, mid := range ring {
		i := i
		left := ring[(i-1+len(ring))%len(ring)]
		name := fmt.Sprintf("phil%d", i)
		nw.Register(name, philo.Philosopher(left, 0, 50*time.Millisecond, 30*time.Millisecond,
			func(c *soda.Client, meal int) {
				meals[i] = meal
				fmt.Printf("t=%8v  philosopher %d finished meal %d\n", c.Now(), i, meal)
			}))
		nw.MustAddNode(mid)
		nw.MustBoot(mid, name)
	}
	nw.Register("detector", philo.Detector(ring, 200*time.Millisecond, func(v soda.MID) {
		fmt.Printf("            *** deadlock detected; philosopher on machine %d gives back its fork ***\n", v)
	}))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	if err := nw.Run(d); err != nil {
		return err
	}
	fmt.Printf("\nafter %v of virtual time, meals eaten: %v\n", d, meals)
	return report(nw)
}

func runFileServer(seed int64, d time.Duration) error {
	nw, err := newNetwork(seed, d,
		[]soda.MID{1, 2},
		[]faults.CrashTarget{{Node: 1, Program: "fs"}})
	if err != nil {
		return err
	}
	nw.Register("fs", fileserver.Server(map[string][]byte{
		"motd": []byte("welcome to the SODA file service"),
	}, 32))
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := fileserver.Find(c)
			if !ok {
				fmt.Println("no file server found")
				return
			}
			fmt.Printf("t=%8v  discovered file server on machine %d\n", c.Now(), srv)
			f, err := fileserver.Open(c, srv, "motd")
			if err != nil {
				fmt.Println("open:", err)
				return
			}
			data, _ := f.Read(64)
			fmt.Printf("t=%8v  read %q\n", c.Now(), data)
			g, _ := fileserver.Open(c, srv, "journal")
			_ = g.Write([]byte("first entry"))
			_ = g.Seek(0)
			back, _ := g.Read(64)
			fmt.Printf("t=%8v  wrote and re-read %q\n", c.Now(), back)
			_ = g.Close()
			_ = f.Close()
			fmt.Printf("t=%8v  session closed\n", c.Now())
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "fs")
	nw.MustBoot(2, "client")
	if err := nw.Run(d); err != nil {
		return err
	}
	return report(nw)
}

func runBoot(seed int64, d time.Duration) error {
	nw, err := newNetwork(seed, d, []soda.MID{1, 2}, nil)
	if err != nil {
		return err
	}
	nw.Register("child", soda.Program{
		Init: func(c *soda.Client, parent soda.MID) {
			fmt.Printf("t=%8v  child booted on machine %d (parent %d)\n", c.Now(), c.MID(), parent)
		},
		Task: func(c *soda.Client) {
			for {
				c.Hold(100 * time.Millisecond)
			}
		},
	})
	nw.Register("parent", soda.Program{
		Task: func(c *soda.Client) {
			free := c.DiscoverAll(soda.BootPattern, 4)
			fmt.Printf("t=%8v  free machines: %v\n", c.Now(), free)
			if len(free) == 0 {
				return
			}
			loadPat, err := soda.BootRemote(c, free[0], soda.BootPattern, "child")
			if err != nil {
				fmt.Println("boot failed:", err)
				return
			}
			fmt.Printf("t=%8v  child started; load pattern %v held as kill capability\n", c.Now(), loadPat)
			c.Hold(500 * time.Millisecond)
			if soda.KillChild(c, free[0], loadPat) {
				fmt.Printf("t=%8v  child killed via the load pattern\n", c.Now())
			}
			again := c.DiscoverAll(soda.BootPattern, 4)
			fmt.Printf("t=%8v  machine bootable again: %v\n", c.Now(), again)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "parent")
	if err := nw.Run(d); err != nil {
		return err
	}
	return report(nw)
}

func runCrash(seed int64, d time.Duration) error {
	nw, err := newNetwork(seed, d, []soda.MID{1, 2}, nil)
	if err != nil {
		return err
	}
	pat := soda.WellKnownPattern(0o42)
	nw.Register("server", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) { _ = c.Advertise(pat) },
		// Never accepts: the request sits delivered until the crash.
	})
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			fmt.Printf("t=%8v  issuing request to the (soon to crash) server\n", c.Now())
			res := c.BSignal(soda.ServerSig{MID: 2, Pattern: pat}, soda.OK)
			fmt.Printf("t=%8v  request completed with status %v (probes detected the crash)\n", c.Now(), res.Status)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(2, "server")
	nw.MustBoot(1, "client")
	nw.At(300*time.Millisecond, func() {
		fmt.Printf("t=%8v  *** server machine crashes ***\n", 300*time.Millisecond)
		nw.Node(2).Crash()
	})
	if err := nw.Run(d); err != nil {
		return err
	}
	return report(nw)
}

// Command sodasweep shards a matrix of independent deterministic runs —
// seeds × generated fault plans × node counts — across a worker pool and
// merges the results into one key-ordered JSON report.
//
// Usage:
//
//	sodasweep                                 # 8 seeds of the fileserver, fault-free
//	sodasweep -scenario philosophers -nodes 4,6,8
//	sodasweep -seeds 16 -plans 4              # 16 seeds × (control + 4 chaos columns)
//	sodasweep -workers 8 -out report.json     # shard across 8 workers
//	sodasweep -bench BENCH_sweep.json         # also record sweep throughput
//
// The report is byte-identical for a given spec regardless of -workers:
// every run is an isolated simulation, merged by run key. -check makes
// invariant violations fatal (non-zero exit), -instrument embeds a full
// observability profile per run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"soda/sweep"
)

func main() {
	scenario := flag.String("scenario", "fileserver", "workload: "+strings.Join(sweep.Scenarios(), ", "))
	seeds := flag.Int("seeds", 8, "number of simulation seeds (1..n)")
	plans := flag.Int("plans", 0, "number of generated fault-plan columns (plus the fault-free control)")
	nodesFlag := flag.String("nodes", "3", "comma-separated node counts")
	horizon := flag.Duration("horizon", 5*time.Second, "virtual run time per cell")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	instrument := flag.Bool("instrument", false, "attach tracer+metrics and embed per-run profiles")
	check := flag.Bool("check", true, "arm the invariant checkers; violations exit non-zero")
	window := flag.Int("window", 0, "transport sliding-window depth on every node (<=1 = stop-and-wait)")
	segments := flag.Int("segments", 0, "star-internetwork segment count (<=1 = single shared bus)")
	forwardDelay := flag.Duration("forwarddelay", 0, "gateway store-and-forward delay; the conservative lookahead bound for -parworkers")
	parWorkers := flag.Int("parworkers", 0, "intra-run parallel workers per simulation (needs -segments >= 2 and -forwarddelay > 0; <=1 = sequential)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	benchOut := flag.String("bench", "", "write a BENCH_sweep.json throughput artifact here")
	flag.Parse()

	spec := sweep.Spec{
		Scenario:     *scenario,
		Horizon:      *horizon,
		Instrument:   *instrument,
		Checks:       *check,
		Window:       *window,
		Segments:     *segments,
		ForwardDelay: *forwardDelay,
		ParWorkers:   *parWorkers,
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		spec.Seeds = append(spec.Seeds, s)
	}
	spec.PlanSeeds = []int64{0}
	for p := int64(1); p <= int64(*plans); p++ {
		spec.PlanSeeds = append(spec.PlanSeeds, p)
	}
	for _, part := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatalf("bad -nodes %q: %v", *nodesFlag, err)
		}
		spec.Nodes = append(spec.Nodes, n)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	// Wall-clock timing measures the sweep engine itself (runs/sec for
	// BENCH_sweep.json), never anything inside a simulation — every
	// simulated instant comes from the virtual clock.
	start := time.Now() //lint:allow nowallclock (host-side throughput measurement of the engine, outside all simulations)
	rep, err := sweep.Run(spec, w)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start) //lint:allow nowallclock (host-side throughput measurement of the engine, outside all simulations)

	dest := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		dest = f
	}
	if err := rep.Write(dest); err != nil {
		fatalf("writing report: %v", err)
	}

	runsPerSec := float64(rep.Aggregate.Runs) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "sodasweep: %d runs on %d workers in %v (%.1f runs/sec)\n",
		rep.Aggregate.Runs, w, elapsed.Round(time.Millisecond), runsPerSec)
	if *benchOut != "" {
		writeBench(*benchOut, rep, w, elapsed, runsPerSec)
	}

	if rep.Aggregate.Failed > 0 {
		fatalf("%d runs failed", rep.Aggregate.Failed)
	}
	if *check && rep.Aggregate.TotalViolations > 0 {
		fatalf("%d invariant violations across the sweep", rep.Aggregate.TotalViolations)
	}
}

// writeBench records sweep throughput alongside the recorded hot-path
// baselines; see BENCH_sweep.json at the repo root for the format.
func writeBench(path string, rep *sweep.Report, workers int, elapsed time.Duration, runsPerSec float64) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	fmt.Fprintf(f, `{
  "sweep": {
    "scenario": %q,
    "runs": %d,
    "workers": %d,
    "wall_ms": %d,
    "runs_per_sec": %.2f,
    "frames_sent_total": %.0f
  }
}
`, rep.Spec.Scenario, rep.Aggregate.Runs, workers, elapsed.Milliseconds(),
		runsPerSec, rep.Aggregate.FramesSent.Mean*float64(rep.Aggregate.Runs))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sodasweep: "+format+"\n", args...)
	os.Exit(1)
}

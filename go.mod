module soda

go 1.22

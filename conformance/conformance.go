// Package conformance cross-validates the two transport backends behind
// the SODA kernel API: the deterministic simulated bus and the real TCP
// socket transport (DESIGN.md §16).
//
// Each registered scenario runs on both backends. From every run the
// harness extracts the backend-independent observable — the per-node
// sequence of primitive lifecycle events from the kernel observer stream,
// stripped of timestamps and transaction ids — and checks that the socket
// run's ordering is a linearization the simulation oracle admits:
//
//   - Lifecycle events (advertise, unadvertise, die, crash, reboot) must
//     appear in exactly the same per-node order on both backends: they
//     are program-order facts, independent of message timing.
//   - Request chains — the events sharing one ⟨requester, TID⟩ signature
//     on one node — are compared as per-node multisets of TID-stripped
//     contents: the interleaving of independent requests is timing, but
//     every request's own trajectory must exist on both backends. The
//     delivered hop is excluded — whether it fires depends on whether the
//     ACCEPT piggybacks on the transport ACK, a speed fact.
//   - Broadcast (DISCOVER) chains are compared as sets of distinct
//     contents: an unanswered DISCOVER is indistinguishable from an
//     answered one in the requester's observer stream, so retry loops may
//     legally issue more of them on the slower backend.
//   - Chains addressed to a scenario's declared Elastic patterns are
//     excluded: their volume is timing-driven by design (periodic
//     deadlock probes, rendezvous retry queries), and the scenario's own
//     semantic Check covers their effect instead.
//
// Divergences are reported as minimized per-node event diffs: the first
// diverging lifecycle position, and each unmatched chain next to the
// closest chain of the other run.
package conformance

import (
	"fmt"
	"sort"
	"strings"

	"soda"
	"soda/internal/core"
	"soda/internal/sortediter"
)

// Recorder accumulates one run's observer stream. Attach Observe via
// Config.Observer; on a socket run use one Recorder per node's network so
// every append happens on that network's driver goroutine.
type Recorder struct {
	events []core.ObsEvent
}

// Observe appends one event (wire it as the node Config's Observer).
func (r *Recorder) Observe(ev core.ObsEvent) { r.events = append(r.events, ev) }

// Events returns the recorded stream.
func (r *Recorder) Events() []core.ObsEvent { return r.events }

// Chain is the TID-stripped trajectory of one request signature on one
// node: the requester side (issue, delivered, complete) or the serving
// side (arrival, accepts).
type Chain struct {
	Node soda.MID
	// Broadcast marks a DISCOVER chain (issued to the broadcast MID).
	Broadcast bool
	// Pattern is the addressed (or locally matched) service pattern.
	Pattern soda.Pattern
	// Events are the rendered, stripped event lines.
	Events []string
}

// Content is the chain's comparison key: everything but the TID and
// timestamps.
func (c Chain) Content() string { return strings.Join(c.Events, "; ") }

// NodeTranscript is one node's projected observable.
type NodeTranscript struct {
	// Lifecycle lists the rendered lifecycle events in program order.
	Lifecycle []string
	// Chains lists request chains ordered by first appearance.
	Chains []Chain
}

// Transcript is one run's backend-neutral observable, per node.
type Transcript struct {
	Nodes map[soda.MID]*NodeTranscript
}

// renderPattern neutralizes dynamically allocated patterns (unique ids,
// file descriptors, load capabilities): their bit patterns depend on
// allocation timing, so only well-known and reserved names are kept.
func renderPattern(p soda.Pattern) string {
	if p.WellKnown() || p.Reserved() {
		return p.String()
	}
	return "dyn"
}

// renderEvent produces the stripped line for one observer event; ok is
// false for kinds that are not part of the neutral observable.
func renderEvent(ev core.ObsEvent) (line string, lifecycle, ok bool) {
	switch ev.Kind {
	case core.ObsIssue:
		dst := fmt.Sprintf("%d", ev.Dst.MID)
		if ev.Dst.MID == soda.BroadcastMID {
			dst = "*"
		}
		return fmt.Sprintf("issue %s:%s", dst, renderPattern(ev.Dst.Pattern)), false, true
	case core.ObsDelivered:
		// Excluded from the neutral observable: delivered is only emitted
		// when the ACCEPT loses the race against the Delta-t ACK (the
		// §5.2.3 piggyback best case skips it), so its presence encodes
		// relative transport speed, not primitive semantics.
		return "", false, false
	case core.ObsArrival:
		return fmt.Sprintf("arrival %s", renderPattern(ev.Dst.Pattern)), false, true
	case core.ObsComplete:
		return fmt.Sprintf("complete %v", ev.Status), false, true
	case core.ObsCancelled:
		return "cancelled", false, true
	case core.ObsAccept:
		return fmt.Sprintf("accept %v", ev.Accept), false, true
	case core.ObsCrash:
		return "crash", true, true
	case core.ObsDie:
		return "die", true, true
	case core.ObsReboot:
		return "reboot", true, true
	case core.ObsAdvertise:
		return fmt.Sprintf("advertise %s", renderPattern(ev.Pattern)), true, true
	case core.ObsUnadvertise:
		return fmt.Sprintf("unadvertise %s", renderPattern(ev.Pattern)), true, true
	}
	return "", false, false
}

// Project builds the neutral transcript from one run's recorded events.
// Events must be in per-node emission order (they are, both for a single
// sim recorder and for per-network socket recorders merged whole).
func Project(events []core.ObsEvent) *Transcript {
	t := &Transcript{Nodes: make(map[soda.MID]*NodeTranscript)}
	type chainKey struct {
		node soda.MID
		sig  soda.RequesterSig
	}
	open := make(map[chainKey]int) // -> index into node's Chains
	for _, ev := range events {
		line, lifecycle, ok := renderEvent(ev)
		if !ok {
			continue
		}
		nt := t.Nodes[ev.Node]
		if nt == nil {
			nt = &NodeTranscript{}
			t.Nodes[ev.Node] = nt
		}
		if lifecycle {
			nt.Lifecycle = append(nt.Lifecycle, line)
			continue
		}
		key := chainKey{ev.Node, ev.Sig}
		idx, seen := open[key]
		if !seen {
			c := Chain{Node: ev.Node}
			switch ev.Kind {
			case core.ObsIssue:
				c.Broadcast = ev.Dst.MID == soda.BroadcastMID
				c.Pattern = ev.Dst.Pattern
			case core.ObsArrival:
				c.Pattern = ev.Dst.Pattern
			}
			idx = len(nt.Chains)
			nt.Chains = append(nt.Chains, c)
			open[key] = idx
		}
		nt.Chains[idx].Events = append(nt.Chains[idx].Events, line)
	}
	return t
}

// MIDs lists the transcript's nodes in ascending order.
func (t *Transcript) MIDs() []soda.MID {
	mids := sortediter.Keys(t.Nodes)
	return mids
}

// Render serializes the transcript deterministically: per node, the full
// lifecycle and chain listing. This is the golden-fixture format.
func (t *Transcript) Render() string {
	var b strings.Builder
	for _, mid := range t.MIDs() {
		nt := t.Nodes[mid]
		fmt.Fprintf(&b, "== node %d\n", mid)
		for _, l := range nt.Lifecycle {
			fmt.Fprintf(&b, "  %s\n", l)
		}
		for _, c := range nt.Chains {
			tag := "u"
			if c.Broadcast {
				tag = "b"
			}
			fmt.Fprintf(&b, "  [%s] %s\n", tag, c.Content())
		}
	}
	return b.String()
}

// commonPrefix counts the shared leading events of two chains.
func commonPrefix(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// closest returns the candidate chain content most similar to want (by
// longest common event prefix), for divergence reporting.
func closest(want Chain, candidates []Chain) (Chain, bool) {
	best, bestScore := Chain{}, -1
	for _, c := range candidates {
		if s := commonPrefix(want.Events, c.Events); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best, bestScore >= 0
}

// chainDiff renders a minimized two-column diff of an unmatched chain
// against the closest chain from the other backend.
func chainDiff(label string, missing Chain, others []Chain) string {
	var b strings.Builder
	fmt.Fprintf(&b, "    %s chain [%s]:\n", label, missing.Content())
	if near, ok := closest(missing, others); ok {
		p := commonPrefix(missing.Events, near.Events)
		fmt.Fprintf(&b, "      closest match diverges after %d shared events:\n", p)
		fmt.Fprintf(&b, "        %s: %s\n", label, strings.Join(missing.Events[p:], "; "))
		rest := near.Events[p:]
		fmt.Fprintf(&b, "        other: %s\n", strings.Join(rest, "; "))
	} else {
		fmt.Fprintf(&b, "      no chain of this shape on the other backend\n")
	}
	return b.String()
}

// Compare checks that the socket transcript is admissible against the sim
// oracle, returning one human-readable report per divergence (empty =
// equivalent). elastic lists patterns whose chains are excluded.
func Compare(sim, sock *Transcript, elastic []soda.Pattern) []string {
	skip := make(map[soda.Pattern]bool, len(elastic))
	for _, p := range elastic {
		skip[p] = true
	}
	var reports []string
	mids := make(map[soda.MID]bool)
	for _, mid := range sim.MIDs() {
		mids[mid] = true
	}
	for _, mid := range sock.MIDs() {
		mids[mid] = true
	}
	for _, mid := range sortediter.Keys(mids) {
		simN, sockN := sim.Nodes[mid], sock.Nodes[mid]
		if simN == nil {
			simN = &NodeTranscript{}
		}
		if sockN == nil {
			sockN = &NodeTranscript{}
		}
		reports = append(reports, compareNode(mid, simN, sockN, skip)...)
	}
	return reports
}

func compareNode(mid soda.MID, sim, sock *NodeTranscript, skip map[soda.Pattern]bool) []string {
	var reports []string
	// Lifecycle: exact order.
	for i := 0; i < len(sim.Lifecycle) || i < len(sock.Lifecycle); i++ {
		get := func(l []string) string {
			if i < len(l) {
				return l[i]
			}
			return "(end)"
		}
		if get(sim.Lifecycle) != get(sock.Lifecycle) {
			reports = append(reports, fmt.Sprintf(
				"node %d: lifecycle diverges at position %d: sim %q vs socket %q\n    sim:    %s\n    socket: %s",
				mid, i, get(sim.Lifecycle), get(sock.Lifecycle),
				strings.Join(sim.Lifecycle, "; "), strings.Join(sock.Lifecycle, "; ")))
			break
		}
	}
	filter := func(cs []Chain, broadcast bool) []Chain {
		var out []Chain
		for _, c := range cs {
			if c.Broadcast == broadcast && !skip[c.Pattern] {
				out = append(out, c)
			}
		}
		return out
	}
	// Unicast chains: multiset equality of contents.
	simU, sockU := filter(sim.Chains, false), filter(sock.Chains, false)
	counts := make(map[string]int)
	for _, c := range simU {
		counts[c.Content()]++
	}
	for _, c := range sockU {
		counts[c.Content()]--
	}
	for _, c := range simU {
		if counts[c.Content()] > 0 {
			counts[c.Content()] = 0 // report each content once
			reports = append(reports, fmt.Sprintf("node %d: sim-only request chain\n%s",
				mid, chainDiff("sim", c, sockU)))
		}
	}
	for _, c := range sockU {
		if counts[c.Content()] < 0 {
			counts[c.Content()] = 0
			reports = append(reports, fmt.Sprintf("node %d: socket-only request chain\n%s",
				mid, chainDiff("socket", c, simU)))
		}
	}
	// Broadcast chains: distinct contents must match (retry counts free).
	distinct := func(cs []Chain) []string {
		seen := make(map[string]bool)
		var out []string
		for _, c := range cs {
			if !seen[c.Content()] {
				seen[c.Content()] = true
				out = append(out, c.Content())
			}
		}
		sort.Strings(out)
		return out
	}
	simB, sockB := distinct(filter(sim.Chains, true)), distinct(filter(sock.Chains, true))
	// A content on one side only is still admissible when it is a prefix
	// of a content on the other: each run stops the moment the scenario
	// completes, so a final DISCOVER retry can be caught mid-flight.
	admitted := func(content string, others []string) bool {
		for _, o := range others {
			if o == content || strings.HasPrefix(o, content) {
				return true
			}
		}
		return false
	}
	for _, c := range simB {
		if !admitted(c, sockB) {
			reports = append(reports, fmt.Sprintf(
				"node %d: sim-only DISCOVER chain [%s]\n    socket has: %v", mid, c, sockB))
		}
	}
	for _, c := range sockB {
		if !admitted(c, simB) {
			reports = append(reports, fmt.Sprintf(
				"node %d: socket-only DISCOVER chain [%s]\n    sim has: %v", mid, c, simB))
		}
	}
	return reports
}

package conformance

import (
	"bytes"
	"fmt"
	"time"

	"soda"
	"soda/apps/fileserver"
	"soda/apps/philo"
	"soda/csp"
	"soda/timesrv"
)

// The five registered scenarios mirror the five examples: quickstart's
// greeter, the file service session, the network example's remote
// boot/kill, the dining philosophers, and the CSP rendezvous ring. Each is
// count-based — a fixed number of exchanges, meals, or rounds — so both
// backends run to the same completion point at whatever speed their clock
// moves.

var greeterPattern = soda.WellKnownPattern(0o4401)

// discoverRetry blocks until a server advertising p answers, re-issuing
// the DISCOVER after a short hold: on the socket backend the server's
// advertisement can race the first query (broadcast chains are compared
// as sets for exactly this reason).
func discoverRetry(c *soda.Client, p soda.Pattern) soda.ServerSig {
	for {
		if srv, ok := c.Discover(p); ok {
			return srv
		}
		c.Hold(20 * time.Millisecond)
	}
}

func init() {
	register(quickstartScenario())
	register(fileserviceScenario())
	register(bootkillScenario())
	register(philosophersScenario())
	register(rendezvousScenario())
}

// quickstartScenario: a greeter service and a client that discovers it
// and runs two blocking exchanges (REQUEST/ACCEPT/DISCOVER end-to-end).
func quickstartScenario() Scenario {
	return Scenario{
		Name: "quickstart",
		Build: func() *Run {
			var replies []string
			done := false
			run := &Run{
				Programs: map[string]soda.Program{
					"greeter": {
						Init: func(c *soda.Client, _ soda.MID) {
							if err := c.Advertise(greeterPattern); err != nil {
								panic(err)
							}
						},
						Handler: func(c *soda.Client, ev soda.Event) {
							if ev.Kind != soda.EventRequestArrival {
								return
							}
							greeting := fmt.Sprintf("hello machine %d, your %d bytes arrived",
								ev.Asker.MID, ev.PutSize)
							c.AcceptCurrentExchange(soda.OK, []byte(greeting), ev.PutSize)
						},
					},
					"client": {
						Task: func(c *soda.Client) {
							srv := discoverRetry(c, greeterPattern)
							for _, msg := range []string{"first call", "second"} {
								res := c.BExchange(srv, soda.OK, []byte(msg), 64)
								if res.Status == soda.StatusSuccess {
									replies = append(replies, string(res.Data))
								}
							}
							done = true
						},
					},
				},
			}
			run.Nodes = []NodeSpec{
				{MID: 1, Boot: "greeter"},
				{MID: 2, Boot: "client", Done: func() bool { return done }},
			}
			run.Check = func() error {
				if len(replies) != 2 {
					return fmt.Errorf("quickstart: %d successful exchanges, want 2", len(replies))
				}
				want := "hello machine 2, your 10 bytes arrived"
				if replies[0] != want {
					return fmt.Errorf("quickstart: reply %q, want %q", replies[0], want)
				}
				return nil
			}
			return run
		},
	}
}

// fileserviceScenario: a file server and a client session — read a
// published file, create one, write, seek, read it back.
func fileserviceScenario() Scenario {
	return Scenario{
		Name: "fileservice",
		Build: func() *Run {
			var motd, journal []byte
			done := false
			run := &Run{
				Programs: map[string]soda.Program{
					"fs": fileserver.Server(map[string][]byte{
						"motd": []byte("welcome to the SODA file service"),
					}, 32),
					"client": {
						Task: func(c *soda.Client) {
							var srv soda.MID
							for {
								if mid, ok := fileserver.Find(c); ok {
									srv = mid
									break
								}
								c.Hold(20 * time.Millisecond)
							}
							f, err := fileserver.Open(c, srv, "motd")
							if err != nil {
								done = true
								return
							}
							motd, _ = f.Read(64)
							g, _ := fileserver.Open(c, srv, "journal")
							_ = g.Write([]byte("first entry"))
							_ = g.Seek(0)
							journal, _ = g.Read(64)
							_ = g.Close()
							_ = f.Close()
							done = true
						},
					},
				},
			}
			run.Nodes = []NodeSpec{
				{MID: 1, Boot: "fs"},
				{MID: 2, Boot: "client", Done: func() bool { return done }},
			}
			run.Check = func() error {
				if !bytes.Equal(motd, []byte("welcome to the SODA file service")) {
					return fmt.Errorf("fileservice: motd = %q", motd)
				}
				if !bytes.Equal(journal, []byte("first entry")) {
					return fmt.Errorf("fileservice: journal roundtrip = %q", journal)
				}
				return nil
			}
			return run
		},
	}
}

// bootkillScenario: the network example's shell half — find a free
// machine by its reserved boot pattern, boot a child onto it remotely,
// kill it through the load capability, and see it become bootable again.
func bootkillScenario() Scenario {
	return Scenario{
		Name: "bootkill",
		Build: func() *Run {
			var bootErr error
			killed := false
			done := false
			run := &Run{
				Programs: map[string]soda.Program{
					"child": {
						Task: func(c *soda.Client) {
							c.WaitUntil(func() bool { return false })
						},
					},
					"parent": {
						Task: func(c *soda.Client) {
							var free []soda.MID
							for {
								if free = c.DiscoverAll(soda.BootPattern, 4); len(free) > 0 {
									break
								}
								c.Hold(20 * time.Millisecond)
							}
							loadPat, err := soda.BootRemote(c, free[0], soda.BootPattern, "child")
							if err != nil {
								bootErr = err
								done = true
								return
							}
							c.Hold(50 * time.Millisecond)
							killed = soda.KillChild(c, free[0], loadPat)
							for {
								if again := c.DiscoverAll(soda.BootPattern, 4); len(again) > 0 {
									break
								}
								c.Hold(20 * time.Millisecond)
							}
							done = true
						},
					},
				},
			}
			run.Nodes = []NodeSpec{
				{MID: 1, Boot: "parent", Done: func() bool { return done }},
				{MID: 2}, // free, bootable
			}
			run.Check = func() error {
				if bootErr != nil {
					return fmt.Errorf("bootkill: remote boot: %w", bootErr)
				}
				if !killed {
					return fmt.Errorf("bootkill: KillChild failed")
				}
				return nil
			}
			return run
		},
	}
}

// philosophersScenario: a three-seat dining ring with the deadlock
// detector and time service. The philosophers run unbounded (a finished
// philosopher's death would starve its neighbor), and the scenario
// completes when every seat has eaten twice. Fork and probe traffic is
// timing-driven by design — contention and deadlock repair depend on who
// wins each race — so every philosopher pattern is elastic and the
// semantic check (meals eaten) carries the equivalence weight.
func philosophersScenario() Scenario {
	ring := []soda.MID{2, 3, 4}
	const mealsTarget = 2
	return Scenario{
		Name:       "philosophers",
		MaxVirtual: 2 * time.Minute,
		MaxWall:    2 * time.Minute,
		Build: func() *Run {
			meals := make([]int, len(ring))
			run := &Run{
				Programs: map[string]soda.Program{
					"timesrv":  timesrv.Program(16),
					"detector": philo.Detector(ring, 150*time.Millisecond, nil),
				},
				Elastic: []soda.Pattern{
					philo.GetFork, philo.PutFork, philo.ReturnFork,
					philo.Check, philo.GiveBack, timesrv.AlarmPattern,
				},
			}
			run.Nodes = []NodeSpec{{MID: 1, Boot: "timesrv"}}
			for i, mid := range ring {
				i := i
				left := ring[(i-1+len(ring))%len(ring)]
				name := fmt.Sprintf("phil%d", i)
				run.Programs[name] = philo.Philosopher(left, 0,
					20*time.Millisecond, 10*time.Millisecond,
					func(_ *soda.Client, meal int) { meals[i] = meal })
				run.Nodes = append(run.Nodes, NodeSpec{
					MID: mid, Boot: name,
					Done: func() bool { return meals[i] >= mealsTarget },
				})
			}
			run.Nodes = append(run.Nodes, NodeSpec{MID: 5, Boot: "detector"})
			run.Check = func() error {
				for i, m := range meals {
					if m < mealsTarget {
						return fmt.Errorf("philosophers: seat %d ate %d meals, want >= %d", i, m, mealsTarget)
					}
				}
				return nil
			}
			return run
		},
	}
}

// rendezvousScenario: a CSP token ring with output guards. One token
// circulates a three-worker ring; every worker runs exactly two Select
// rounds (one send or receive each), so the global transfer sequence is
// fixed while the rendezvous query traffic underneath stays timing-driven
// (and therefore elastic).
func rendezvousScenario() Scenario {
	const typToken int32 = 1
	name := func(mid soda.MID) soda.Pattern { return soda.WellKnownPattern(0o4500 + uint64(mid)) }
	return Scenario{
		Name: "rendezvous",
		Build: func() *Run {
			mids := []soda.MID{1, 2, 3}
			holds := make([]int, len(mids))
			doneFlags := make([]bool, len(mids))
			run := &Run{
				Programs: map[string]soda.Program{},
				Elastic:  []soda.Pattern{name(1), name(2), name(3)},
			}
			for i, mid := range mids {
				i := i
				next := mids[(i+1)%len(mids)]
				if i == 0 {
					holds[i] = 1 // worker 1 starts with the token
				}
				prog := fmt.Sprintf("worker%d", mid)
				run.Programs[prog] = soda.Program{
					Init: func(c *soda.Client, _ soda.MID) {
						r, err := csp.New(c, name(c.MID()))
						if err != nil {
							panic(err)
						}
						c.SetStash(r)
					},
					Handler: func(c *soda.Client, ev soda.Event) {
						c.Stash().(*csp.Runtime).HandleEvent(ev)
					},
					Task: func(c *soda.Client) {
						r := c.Stash().(*csp.Runtime)
						for round := 0; round < 2; round++ {
							res := r.Select([]csp.Guard{
								{
									When: func() bool { return holds[i] > 0 },
									Send: &csp.SendGuard{
										To:    soda.ServerSig{MID: next, Pattern: name(next)},
										Type:  typToken,
										Value: []byte{byte(c.MID())},
									},
								},
								{Recv: &csp.RecvGuard{Type: typToken}},
							})
							switch res.Index {
							case 0:
								holds[i]--
							case 1:
								holds[i]++
							default:
								doneFlags[i] = true
								return
							}
						}
						doneFlags[i] = true
						c.WaitUntil(func() bool { return false }) // keep answering peers
					},
				}
				run.Nodes = append(run.Nodes, NodeSpec{
					MID: mid, Boot: prog,
					Done: func() bool { return doneFlags[i] },
				})
			}
			run.Check = func() error {
				total := 0
				for _, h := range holds {
					total += h
				}
				if total != 1 {
					return fmt.Errorf("rendezvous: %d tokens after the run, want 1 (holds %v)", total, holds)
				}
				// Two rounds each with one token: it must travel 1→2→3→1.
				if holds[0] != 1 || holds[1] != 0 || holds[2] != 0 {
					return fmt.Errorf("rendezvous: token ended at the wrong seat (holds %v)", holds)
				}
				return nil
			}
			return run
		},
	}
}

package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden conformance fixtures")

// TestGoldenSim pins each scenario's simulated neutral transcript to a
// committed fixture: ordering regressions in the kernel, transport, or
// scenario programs show up as a fixture diff without opening a single
// socket. Regenerate deliberately with: go test ./conformance/ -update
func TestGoldenSim(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr, err := RunSim(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			got := tr.Render()
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("sim transcript diverged from %s (regenerate with -update if intended):\n%s",
					path, firstDiff(string(want), got))
			}
		})
	}
}

// TestSimDeterminism pins that two sim runs of every scenario produce
// byte-identical neutral transcripts: the golden comparison above is only
// meaningful if the left-hand side never wobbles.
func TestSimDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := RunSim(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunSim(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() != b.Render() {
				t.Errorf("two identical sim runs diverged:\n%s", firstDiff(a.Render(), b.Render()))
			}
		})
	}
}

// TestCompareSelf pins that a transcript is admissible against itself.
func TestCompareSelf(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr, err := RunSim(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if reports := Compare(tr, tr, nil); len(reports) != 0 {
				t.Errorf("self-comparison produced %d divergences:\n%s",
					len(reports), strings.Join(reports, "\n"))
			}
		})
	}
}

// firstDiff renders the first differing line of two multi-line strings
// with a little context.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		get := func(l []string) string {
			if i < len(l) {
				return l[i]
			}
			return "(end)"
		}
		if get(wl) != get(gl) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, get(wl), get(gl))
		}
	}
	return "(no line diff?)"
}

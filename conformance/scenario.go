package conformance

import (
	"fmt"
	"time"

	"soda"
	"soda/internal/sortediter"
)

// NodeSpec places one machine in a scenario.
type NodeSpec struct {
	MID soda.MID
	// Boot names the program started on the node ("" = free, bootable
	// machine).
	Boot string
	// Done reports whether this node's part of the scenario has finished.
	// nil marks a pure server: it is done when every Done node is. On a
	// socket run the predicate is evaluated on the node's own driver
	// goroutine, so it must only read state written by this node's
	// programs.
	Done func() bool
}

// Run is one scenario instance: fresh program closures and completion
// state, built per backend per run.
type Run struct {
	// Programs is the registry every node can boot from.
	Programs map[string]soda.Program
	// Nodes lists the machines, in MID order.
	Nodes []NodeSpec
	// Elastic lists service patterns whose request volume is
	// timing-driven by design (periodic probes, rendezvous retries);
	// their chains are excluded from cross-backend comparison and covered
	// by Check instead.
	Elastic []soda.Pattern
	// Check asserts the scenario's semantic outcome after the run (all
	// meals eaten, file contents round-tripped, ...). It runs after the
	// network has stopped.
	Check func() error
}

// Scenario is a registered conformance scenario. Build returns a fresh
// Run — scenarios are count-based (a fixed number of exchanges, meals,
// rounds), never horizon-based, so both backends run them to the same
// completion point regardless of clock speed.
type Scenario struct {
	Name string
	// MaxVirtual bounds the simulated leg; MaxWall bounds the socket leg.
	MaxVirtual time.Duration
	MaxWall    time.Duration
	Build      func() *Run
}

// registry is populated by scenarios.go's init.
var registry []Scenario

// Scenarios lists every registered conformance scenario.
func Scenarios() []Scenario { return registry }

// register adds a scenario (init-time only).
func register(s Scenario) {
	if s.MaxVirtual == 0 {
		s.MaxVirtual = 30 * time.Second
	}
	if s.MaxWall == 0 {
		s.MaxWall = 30 * time.Second
	}
	registry = append(registry, s)
}

// registerPrograms installs a Run's registry on a network in name order.
func registerPrograms(nw *soda.Network, run *Run) {
	for _, name := range sortediter.Keys(run.Programs) {
		nw.Register(name, run.Programs[name])
	}
}

// allDone reports whether every Done node has finished.
func allDone(run *Run) bool {
	for _, ns := range run.Nodes {
		if ns.Done != nil && !ns.Done() {
			return false
		}
	}
	return true
}

// RunSim executes one scenario on the simulated bus and returns its
// neutral transcript. The run steps virtual time until every Done node
// reports completion (stepping granularity does not affect the event
// stream — RunUntil fires the same timers in the same order), then
// applies the scenario's semantic Check.
func RunSim(sc Scenario, seed int64) (*Transcript, error) {
	run := sc.Build()
	rec := &Recorder{}
	cfg := soda.DefaultNodeConfig()
	cfg.Observer = rec.Observe
	nw := soda.NewNetwork(soda.WithSeed(seed), soda.WithNodeConfig(cfg))
	registerPrograms(nw, run)
	for _, ns := range run.Nodes {
		nw.MustAddNode(ns.MID)
	}
	for _, ns := range run.Nodes {
		if ns.Boot != "" {
			nw.MustBoot(ns.MID, ns.Boot)
		}
	}
	const step = 10 * time.Millisecond
	for !allDone(run) {
		if nw.Now() >= sc.MaxVirtual {
			return nil, fmt.Errorf("conformance: %s did not complete within %v of virtual time", sc.Name, sc.MaxVirtual)
		}
		if err := nw.Run(step); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
		}
	}
	if run.Check != nil {
		if err := run.Check(); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
		}
	}
	return Project(rec.Events()), nil
}

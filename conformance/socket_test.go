package conformance

import (
	"sync"
	"testing"
	"time"

	"soda"
	"soda/internal/core"
)

// socketNode is one machine of a socket-backed scenario run: its own
// soda.Network (one kernel, one TCP endpoint, one driver goroutine) and
// its own Recorder, so every observer append happens on that driver.
type socketNode struct {
	spec NodeSpec
	rec  *Recorder
	nw   *soda.Network
}

// runSocket executes one scenario across len(run.Nodes) socket-backed
// networks on localhost — real OS sockets, real wall clock — and returns
// the projected neutral transcript plus the Run (for its Elastic list).
// Flakiness by construction: every listener binds :0, completion is
// detected by posting the Done predicates onto their own driver
// goroutines (never by sleeping a guessed duration), and CloseSocket's
// leak check asserts every socket goroutine drained.
func runSocket(t *testing.T, sc Scenario) (*Transcript, *Run) {
	t.Helper()
	run := sc.Build()
	nodes := make([]*socketNode, 0, len(run.Nodes))
	closeAll := func() {
		for _, n := range nodes {
			if err := n.nw.CloseSocket(); err != nil {
				t.Errorf("node %d: socket shutdown leaked: %v", n.spec.MID, err)
			}
		}
	}
	for _, ns := range run.Nodes {
		rec := &Recorder{}
		cfg := soda.DefaultNodeConfig()
		cfg.Observer = rec.Observe
		nw := soda.NewNetwork(
			soda.WithSocketTransport("127.0.0.1:0"),
			soda.WithNodeConfig(cfg),
		)
		registerPrograms(nw, run)
		nw.MustAddNode(ns.MID)
		nodes = append(nodes, &socketNode{spec: ns, rec: rec, nw: nw})
	}
	// Full mesh: every node knows every listener before anything boots.
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.nw.SetSocketPeer(b.spec.MID, b.nw.SocketAddr())
			}
		}
	}
	for _, n := range nodes {
		if n.spec.Boot != "" {
			n.nw.MustBoot(n.spec.MID, n.spec.Boot)
		}
	}
	// No done predicate on the drivers: a parked driver stops answering its
	// peers, and dependents (fork neighbours, rendezvous partners) may
	// still need this node after its own part is finished. Completion is
	// observed from outside via PostSocket instead.
	for _, n := range nodes {
		n.nw.StartSocket(nil)
	}
	deadline := time.Now().Add(sc.MaxWall)
	for !socketAllDone(t, nodes) {
		for _, n := range nodes {
			if err := n.nw.SocketErr(); err != nil {
				closeAll()
				t.Fatalf("node %d: driver failed: %v", n.spec.MID, err)
			}
		}
		if time.Now().After(deadline) {
			closeAll()
			t.Fatalf("conformance: %s did not complete within %v on the socket backend", sc.Name, sc.MaxWall)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Settle before closing: a requester's done flag does not cover the
	// server's tail — the accept observation rides the Delta-t ACK and the
	// serving program's follow-up (e.g. a file server unadvertising a
	// closed fd) runs after it. A bounded quiescence wait lets those land;
	// scenarios with perpetual elastic traffic simply hit the cap, which is
	// fine — only elastic and DISCOVER-retry chains can still be cut
	// mid-flight, exactly what Compare forgives.
	var settled sync.WaitGroup
	for _, n := range nodes {
		settled.Add(1)
		go func(n *socketNode) {
			defer settled.Done()
			n.nw.WaitSocketIdle(100*time.Millisecond, time.Second)
		}(n)
	}
	settled.Wait()
	closeAll()
	if run.Check != nil {
		if err := run.Check(); err != nil {
			t.Fatalf("conformance: %s: socket run failed its semantic check: %v", sc.Name, err)
		}
	}
	var events []core.ObsEvent
	for _, n := range nodes {
		events = append(events, n.rec.Events()...)
	}
	return Project(events), run
}

// socketAllDone evaluates every Done predicate on its own node's driver
// goroutine (the only place scenario state may be read while the network
// runs). A node whose driver stops accepting posts counts as not done —
// the caller's deadline turns that into a failure.
func socketAllDone(t *testing.T, nodes []*socketNode) bool {
	t.Helper()
	for _, n := range nodes {
		if n.spec.Done == nil {
			continue
		}
		reply := make(chan bool, 1)
		done := n.spec.Done
		if !n.nw.PostSocket(func() { reply <- done() }) {
			return false
		}
		select {
		case v := <-reply:
			if !v {
				return false
			}
		case <-time.After(5 * time.Second):
			return false
		}
	}
	return true
}

// TestSocketConformance is the headline cross-validation: every
// registered scenario runs on real localhost TCP sockets, and its neutral
// transcript must be admissible against a fresh simulated run of the same
// scenario.
func TestSocketConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("socket legs are skipped in -short: they open real sockets and run on the wall clock")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			simTr, err := RunSim(sc, 1)
			if err != nil {
				t.Fatalf("sim oracle run failed: %v", err)
			}
			sockTr, run := runSocket(t, sc)
			if t.Failed() {
				return
			}
			reports := Compare(simTr, sockTr, run.Elastic)
			for _, r := range reports {
				t.Error(r)
			}
			if len(reports) > 0 {
				t.Logf("sim transcript:\n%s", simTr.Render())
				t.Logf("socket transcript:\n%s", sockTr.Render())
			}
		})
	}
}

// Command sodavet-annotate turns `sodavet -json` output into GitHub
// Actions workflow annotations, so findings show up inline on the PR diff:
//
//	go run ./cmd/sodavet -json ./... | go run ./ci/sodavet-annotate
//
// It reads the JSON diagnostic array from stdin, prints one
// `::error file=...,line=...` command per finding (plus a plain-text copy
// to stderr, because annotation commands are invisible outside Actions),
// and exits 1 if there were any findings, 2 if the input is not valid
// sodavet JSON (e.g. the producing sodavet run itself failed to load the
// module). Paths are rewritten relative to the working directory, which is
// what GitHub matches against the checked-out tree.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

type diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet-annotate:", err)
		os.Exit(2)
	}
	var diags []diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		fmt.Fprintf(os.Stderr, "sodavet-annotate: stdin is not sodavet -json output: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.File
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", file, d.Line, d.Col, d.Analyzer, d.Message)
		fmt.Printf("::error file=%s,line=%d,col=%d,title=sodavet/%s::%s\n",
			escapeProp(file), d.Line, d.Col, escapeProp(d.Analyzer), escapeData(d.Message))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// escapeData escapes an annotation message per the workflow-command rules.
func escapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// escapeProp escapes a workflow-command property value, which additionally
// reserves ':' and ','.
func escapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

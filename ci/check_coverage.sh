#!/bin/sh
# check_coverage.sh SUMMARY_FILE
#
# Compares the per-package coverage summary produced by `go test -cover ./...`
# (the "ok <pkg> <time> coverage: <pct>% of statements" lines) against the
# floors recorded in ci/coverage_baseline.txt. Fails if any baselined package
# dropped below its floor or vanished from the summary entirely (a deleted or
# no-longer-tested package must be removed from the baseline deliberately).
set -eu

summary=${1:?usage: check_coverage.sh SUMMARY_FILE}
baseline=$(dirname "$0")/coverage_baseline.txt

fail=0
while read -r pkg floor; do
    case $pkg in ''|\#*) continue ;; esac
    actual=$(awk -v p="$pkg" '$1 == "ok" && $2 == p {
        for (i = 3; i <= NF; i++) if ($i ~ /%$/) { sub(/%/, "", $i); print $i; exit }
    }' "$summary")
    if [ -z "$actual" ]; then
        echo "FAIL $pkg: no coverage line in $summary (package deleted or untested?)" >&2
        fail=1
        continue
    fi
    if awk -v a="$actual" -v f="$floor" 'BEGIN { exit !(a < f) }'; then
        echo "FAIL $pkg: coverage $actual% fell below baseline floor $floor%" >&2
        fail=1
    else
        echo "ok   $pkg: $actual% >= $floor%"
    fi
done < "$baseline"

exit $fail

package csp

import (
	"fmt"
	"testing"
	"time"

	"soda"
)

const (
	typInt int32 = 1
	typStr int32 = 2
)

func namePat(mid soda.MID) soda.Pattern {
	return soda.WellKnownPattern(0o1000 + uint64(mid))
}

// cspNode wires a Runtime into a program and runs body from the task.
func cspNode(body func(c *soda.Client, r *Runtime)) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			r, err := New(c, namePat(c.MID()))
			if err != nil {
				panic(err)
			}
			c.SetStash(r)
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			c.Stash().(*Runtime).HandleEvent(ev)
		},
		Task: func(c *soda.Client) {
			body(c, c.Stash().(*Runtime))
			c.WaitUntil(func() bool { return false })
		},
	}
}

func TestSimpleRendezvous(t *testing.T) {
	nw := soda.NewNetwork()
	var got []byte
	var sendIdx, recvIdx int
	nw.Register("sender", cspNode(func(c *soda.Client, r *Runtime) {
		res := r.Select([]Guard{
			{Send: &SendGuard{To: soda.ServerSig{MID: 2, Pattern: namePat(2)}, Type: typInt, Value: []byte{42}}},
		})
		sendIdx = res.Index
	}))
	nw.Register("receiver", cspNode(func(c *soda.Client, r *Runtime) {
		res := r.Select([]Guard{
			{Recv: &RecvGuard{Type: typInt}},
		})
		recvIdx = res.Index
		got = res.Value
	}))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(2, "receiver")
	nw.MustBoot(1, "sender")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sendIdx != 0 || recvIdx != 0 {
		t.Fatalf("indices = send %d recv %d", sendIdx, recvIdx)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("received %v", got)
	}
}

func TestTypeMismatchWaitsForMatchingSender(t *testing.T) {
	nw := soda.NewNetwork()
	var got []byte
	nw.Register("wrongtype", cspNode(func(c *soda.Client, r *Runtime) {
		res := r.Select([]Guard{
			{Send: &SendGuard{To: soda.ServerSig{MID: 3, Pattern: namePat(3)}, Type: typInt, Value: []byte{1}}},
		})
		if res.Index != -1 {
			t.Errorf("mismatched send completed: %+v", res)
		}
	}))
	nw.Register("righttype", cspNode(func(c *soda.Client, r *Runtime) {
		c.Hold(300 * time.Millisecond)
		res := r.Select([]Guard{
			{Send: &SendGuard{To: soda.ServerSig{MID: 3, Pattern: namePat(3)}, Type: typStr, Value: []byte("yes")}},
		})
		if res.Index != 0 {
			t.Errorf("matching send failed: %+v", res)
		}
	}))
	nw.Register("receiver", cspNode(func(c *soda.Client, r *Runtime) {
		res := r.Select([]Guard{
			{Recv: &RecvGuard{Type: typStr}},
		})
		got = res.Value
	}))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(3, "receiver")
	nw.MustBoot(1, "wrongtype")
	nw.MustBoot(2, "righttype")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if string(got) != "yes" {
		t.Fatalf("received %q", got)
	}
}

// TestQueryCycleResolves is the §4.2.5.1 example: P1 queries P2, P2 queries
// P3, P3 queries P1, every process also willing to receive. Each process
// loops over the alternative command until it has both sent to its ring
// successor and received from its predecessor — Bernstein's MID ordering
// must unwind the query cycles until the full matching completes.
func TestQueryCycleResolves(t *testing.T) {
	nw := soda.NewNetwork()
	type outcome struct {
		sent bool
		got  []byte
	}
	done := map[soda.MID]*outcome{}
	mk := func(to soda.MID) soda.Program {
		return cspNode(func(c *soda.Client, r *Runtime) {
			o := &outcome{}
			done[c.MID()] = o
			for !o.sent || o.got == nil {
				res := r.Select([]Guard{
					{
						When: func() bool { return !o.sent },
						Send: &SendGuard{To: soda.ServerSig{MID: to, Pattern: namePat(to)}, Type: typInt, Value: []byte{byte(c.MID())}},
					},
					{
						When: func() bool { return o.got == nil },
						Recv: &RecvGuard{Type: typInt},
					},
				})
				switch res.Index {
				case 0:
					o.sent = true
				case 1:
					o.got = res.Value
				default:
					t.Errorf("process %d: alternative failed: %+v", c.MID(), res)
					return
				}
			}
		})
	}
	nw.Register("p1", mk(2))
	nw.Register("p2", mk(3))
	nw.Register("p3", mk(1))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(1, "p1")
	nw.MustBoot(2, "p2")
	nw.MustBoot(3, "p3")
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	pred := map[soda.MID]soda.MID{1: 3, 2: 1, 3: 2}
	for mid, o := range done {
		if !o.sent {
			t.Fatalf("process %d never completed its send", mid)
		}
		if len(o.got) != 1 || soda.MID(o.got[0]) != pred[mid] {
			t.Fatalf("process %d received %v, want from %d", mid, o.got, pred[mid])
		}
	}
	if len(done) != 3 {
		t.Fatalf("only %d processes ran", len(done))
	}
}

func TestSymmetricPairNoDeadlock(t *testing.T) {
	// Two processes, each simultaneously offering both a send to the
	// other and a receive — the classic deadlock/livelock danger of
	// §4.2.5. Exactly one send must pair with the other's receive.
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			nw := soda.NewNetwork(soda.WithSeed(seed))
			done := map[soda.MID]Result{}
			mk := func(to soda.MID) soda.Program {
				return cspNode(func(c *soda.Client, r *Runtime) {
					res := r.Select([]Guard{
						{Send: &SendGuard{To: soda.ServerSig{MID: to, Pattern: namePat(to)}, Type: typInt, Value: []byte{byte(c.MID())}}},
						{Recv: &RecvGuard{Type: typInt}},
					})
					done[c.MID()] = res
				})
			}
			nw.Register("a", mk(2))
			nw.Register("b", mk(1))
			nw.MustAddNode(1)
			nw.MustAddNode(2)
			nw.MustBoot(1, "a")
			nw.MustBoot(2, "b")
			if err := nw.Run(30 * time.Second); err != nil {
				t.Fatal(err)
			}
			if len(done) != 2 {
				t.Fatalf("completed %d/2: %v", len(done), done)
			}
			a, b := done[1], done[2]
			okAB := a.Index == 0 && b.Index == 1 && len(b.Value) == 1 && b.Value[0] == 1
			okBA := b.Index == 0 && a.Index == 1 && len(a.Value) == 1 && a.Value[0] == 2
			okBoth := a.Index == 0 && b.Index == 0 // both sends matched the other's later receive? impossible: receives completed
			_ = okBoth
			if !okAB && !okBA {
				// Both sending and both receiving is also a valid pairing
				// (two rendezvous), as long as values are consistent.
				okCross := a.Index == 1 && b.Index == 1 &&
					len(a.Value) == 1 && a.Value[0] == 2 &&
					len(b.Value) == 1 && b.Value[0] == 1
				if !okCross {
					t.Fatalf("inconsistent pairing: a=%+v b=%+v", a, b)
				}
			}
		})
	}
}

func TestPureBooleanGuard(t *testing.T) {
	nw := soda.NewNetwork()
	var idx int
	nw.Register("p", cspNode(func(c *soda.Client, r *Runtime) {
		res := r.Select([]Guard{
			{When: func() bool { return false }, Recv: &RecvGuard{Type: typInt}},
			{When: func() bool { return true }},
		})
		idx = res.Index
	}))
	nw.MustAddNode(1)
	nw.MustBoot(1, "p")
	if err := nw.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("index = %d, want 1", idx)
	}
}

func TestGuardToTerminatedProcessFails(t *testing.T) {
	nw := soda.NewNetwork()
	var res Result
	ran := false
	nw.Register("p", cspNode(func(c *soda.Client, r *Runtime) {
		res = r.Select([]Guard{
			{Send: &SendGuard{To: soda.ServerSig{MID: 9, Pattern: namePat(9)}, Type: typInt, Value: []byte{1}}},
		})
		ran = true
	}))
	nw.MustAddNode(1)
	nw.MustBoot(1, "p")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("select never returned")
	}
	if res.Index != -1 {
		t.Fatalf("result = %+v, want failure", res)
	}
}

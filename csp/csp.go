// Package csp implements CSP-style guarded communication over SODA,
// including output guards via Bernstein's algorithm (§4.2.5.1).
//
// Symmetric rendezvous is deadlock-prone: if two processes query each other
// simultaneously and both block, nothing progresses (§4.2.5). Bernstein's
// algorithm breaks the symmetry with machine ids: a process that receives a
// query while itself QUERYING delays the caller only when its own MID is
// greater; otherwise it REJECTS, guaranteeing at least one query in any
// cycle is refused and the cycle unwinds.
//
// A message's "type" (CSP matches on the type of the communicated variable)
// is a small non-negative integer carried in the request argument.
package csp

import (
	"fmt"
	"time"

	"soda"
)

// state is the tri-state of Bernstein's algorithm.
type state int

const (
	// stateActive: executing a command list; queries are rejected.
	stateActive state = iota + 1
	// stateQuerying: evaluating an alternative command, issuing queries.
	stateQuerying
	// stateWaiting: all guards tried; parked until a query matches.
	stateWaiting
)

// Guard is one arm of an alternative command. When (optional) is the
// boolean part; exactly one of Send/Recv may be set (neither makes a pure
// boolean guard). CSP forbids output expressions in guards; SODA makes them
// cheap, which is the point of §4.2.5.1.
type Guard struct {
	// When must hold for the guard to be eligible; nil means true.
	When func() bool
	// Send attempts to output Value with type Type to the named process.
	Send *SendGuard
	// Recv accepts an input of type Type from any process.
	Recv *RecvGuard
}

// SendGuard is an output guard.
type SendGuard struct {
	To    soda.ServerSig
	Type  int32
	Value []byte
}

// RecvGuard is an input guard.
type RecvGuard struct {
	Type int32
	// MaxSize bounds the received value (default 64).
	MaxSize int
}

// Result reports which guard fired and, for input guards, the value.
type Result struct {
	// Index is the position of the chosen guard, or -1 if every guard
	// failed (the named processes terminated).
	Index int
	// Value is the received message for input guards (nil for output).
	Value []byte
	// From identifies the sender for input guards.
	From soda.MID
}

// pendingQuery is a delayed or arrived output command from a peer.
type pendingQuery struct {
	asker soda.RequesterSig
	typ   int32
	size  int
}

// Runtime is the per-client CSP engine. Create it in Init, route handler
// events through HandleEvent, and call Select from the task.
type Runtime struct {
	c     *soda.Client
	name  soda.Pattern
	state state
	// queryPending marks an outstanding blocking query of our own (the
	// condition for delaying a peer, §4.2.5.1).
	queryPending bool
	// acceptable maps message type → true while querying/waiting.
	acceptable map[int32]bool
	// delayed holds queries we chose to delay (we out-rank the caller).
	delayed []pendingQuery
	// matched is set by the handler when a query is accepted directly.
	matched      bool
	matchedType  int32
	matchedValue []byte
	matchedFrom  soda.MID
	maxRecv      int
}

// New creates the runtime and advertises the process name.
func New(c *soda.Client, name soda.Pattern) (*Runtime, error) {
	r := &Runtime{
		c:          c,
		name:       name,
		state:      stateActive,
		acceptable: make(map[int32]bool),
	}
	if err := c.Advertise(name); err != nil {
		return nil, err
	}
	return r, nil
}

// HandleEvent processes a handler invocation; it reports true when the
// event was CSP traffic. This is the thesis's handler case for MY_NAME.
func (r *Runtime) HandleEvent(ev soda.Event) bool {
	if ev.Kind != soda.EventRequestArrival || ev.Pattern != r.name {
		return false
	}
	switch {
	case r.state == stateWaiting && r.acceptable[ev.Arg]:
		// A matching output command found us WAITING: rendezvous.
		res := r.c.AcceptCurrentPut(soda.OK, ev.PutSize)
		if res.Status == soda.AcceptSuccess {
			r.matched = true
			r.matchedType = ev.Arg
			r.matchedValue = res.Data
			r.matchedFrom = ev.Asker.MID
			r.state = stateActive
		}
	case r.state == stateQuerying && r.acceptable[ev.Arg] && r.queryPending && r.c.MID() > ev.Asker.MID:
		// Both of us are querying; we out-rank the caller, so delay its
		// query instead of rejecting (§4.2.5.1).
		r.delayed = append(r.delayed, pendingQuery{asker: ev.Asker, typ: ev.Arg, size: ev.PutSize})
	default:
		// ACTIVE, no type match, or QUERYING with a lower MID: REJECT.
		// The caller may query again once we enter an alternative
		// command, or we may query it.
		r.c.RejectCurrent()
	}
	return true
}

// retryInterval paces re-evaluation of output guards while WAITING. The
// thesis's algorithm leaves a WAITING process passive; two processes that
// rejected each other's queries in a race (both momentarily ACTIVE) would
// then wait forever despite compatible guards, so this implementation
// re-queries periodically — preserving the delay/reject symmetry-breaking
// while adding liveness.
const retryInterval = 40 * time.Millisecond

// Select evaluates an alternative command (EvalAltCmd, §4.2.5.1): exactly
// one eligible guard communicates; the call blocks until some guard can.
// It returns Index −1 only when no guard can ever succeed (named processes
// terminated and no input guards). It must be called from the task.
func (r *Runtime) Select(guards []Guard) Result {
	r.state = stateQuerying
	dead := make([]bool, len(guards))
	defer func() {
		r.state = stateActive
		// Senders still delayed here would block forever once we leave
		// the alternative command; reject them so they re-evaluate.
		for _, q := range r.delayed {
			r.c.Accept(q.asker, -1, nil, 0)
		}
		r.delayed = nil
	}()

	for {
		// Record acceptable input types first so queries arriving
		// mid-evaluation are delayed rather than rejected.
		clear(r.acceptable)
		r.maxRecv = 64
		recvGuards := 0
		for _, g := range guards {
			if g.Recv != nil && (g.When == nil || g.When()) {
				r.acceptable[g.Recv.Type] = true
				recvGuards++
				if g.Recv.MaxSize > r.maxRecv {
					r.maxRecv = g.Recv.MaxSize
				}
			}
		}
		liveComm := 0
		for i, g := range guards {
			if dead[i] || (g.When != nil && !g.When()) {
				continue
			}
			switch {
			case g.Send == nil && g.Recv == nil:
				return Result{Index: i} // pure boolean guard
			case g.Recv != nil:
				liveComm++
				if res, ok := r.takeDelayed(i, g.Recv.Type); ok {
					return res
				}
			case g.Send != nil:
				liveComm++
				res, ok, failed := r.tryOutput(i, guards, g.Send)
				if ok {
					return res
				}
				if failed {
					dead[i] = true // the named process terminated
					liveComm--
				}
			}
		}
		if liveComm == 0 {
			return Result{Index: -1} // the alternative command fails
		}
		// WAITING: park until a matching query arrives, then retry the
		// output guards if none did (§4.2.5.1 plus the liveness retry).
		r.state = stateWaiting
		r.matched = false
		deadline := r.c.Now() + retryInterval
		for !r.matched && r.c.Now() < deadline {
			r.c.Hold(5 * time.Millisecond)
		}
		r.state = stateQuerying
		if r.matched {
			r.matched = false
			for i, g := range guards {
				if !dead[i] && g.Recv != nil && g.Recv.Type == r.matchedType && (g.When == nil || g.When()) {
					return Result{Index: i, Value: r.matchedValue, From: r.matchedFrom}
				}
			}
			// The matched type maps to no live guard (When changed
			// under us); treat as a spurious wakeup and go around.
		}
	}
}

// takeDelayed completes a rendezvous with a delayed query matching an
// input guard.
func (r *Runtime) takeDelayed(idx int, typ int32) (Result, bool) {
	for qi, q := range r.delayed {
		if q.typ != typ {
			continue
		}
		r.delayed = append(r.delayed[:qi], r.delayed[qi+1:]...)
		res := r.c.AcceptPut(q.asker, soda.OK, q.size)
		if res.Status != soda.AcceptSuccess {
			continue // caller crashed or withdrew; try another
		}
		return Result{Index: idx, Value: res.Data, From: q.asker.MID}, true
	}
	return Result{}, false
}

// tryOutput issues the blocking query for an output guard (§4.2.5.1). ok
// reports a completed rendezvous (possibly via a delayed query); failed
// reports that the named process terminated, permanently failing the guard.
func (r *Runtime) tryOutput(idx int, guards []Guard, sg *SendGuard) (res Result, ok, failed bool) {
	r.queryPending = true
	out := r.c.BPut(sg.To, sg.Type, sg.Value)
	r.queryPending = false
	switch out.Status {
	case soda.StatusSuccess:
		return Result{Index: idx}, true, false
	case soda.StatusRejected:
		// The peer did not match (or out-ranked us and later rejected).
		// If we delayed someone meanwhile, complete that rendezvous now
		// — this is the step that unwinds query cycles (§4.2.5.1).
		for gi, g := range guards {
			if g.Recv == nil || (g.When != nil && !g.When()) {
				continue
			}
			if taken, tok := r.takeDelayed(gi, g.Recv.Type); tok {
				return taken, true, false
			}
		}
		return Result{}, false, false
	default:
		// CRASHED / UNADVERTISED: the named process terminated — the
		// guard fails (CSP's input/output command failure rule).
		return Result{}, false, true
	}
}

// Name returns the advertised process name pattern.
func (r *Runtime) Name() soda.Pattern { return r.name }

func (r *Runtime) String() string {
	return fmt.Sprintf("csp(%v state=%d delayed=%d)", r.name, r.state, len(r.delayed))
}

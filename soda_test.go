package soda_test

import (
	"fmt"
	"testing"
	"time"

	"soda"
)

var pattern = soda.WellKnownPattern(0o346)

// echo is a minimal service: every arrival is EXCHANGE-accepted with a
// fixed banner.
func echo(banner string) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := c.Advertise(pattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival {
				c.AcceptCurrentExchange(soda.OK, []byte(banner), ev.PutSize)
			}
		},
	}
}

func TestLifecycleBootCrashRecover(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("echo", echo("alive"))
	type step struct {
		at   time.Duration
		what string
	}
	var steps []step
	note := func(c *soda.Client, what string) { steps = append(steps, step{c.Now(), what}) }

	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := c.Discover(pattern)
			if !ok {
				t.Error("service not discovered")
				return
			}
			note(c, "discovered")
			if res := c.BExchange(srv, soda.OK, []byte("x"), 16); res.Status != soda.StatusSuccess {
				t.Errorf("first call: %v", res.Status)
				return
			}
			note(c, "first call ok")
			// The server crashes at t=1s and stays down until t=3s; a
			// call into the dead window fails CRASHED once the transport
			// exhausts its retransmissions (MPL+Δt of silence).
			c.Hold(time.Second)
			if res := c.BExchange(srv, soda.OK, []byte("x"), 16); res.Status != soda.StatusCrashed {
				t.Errorf("call to crashed server: %v, want CRASHED", res.Status)
				return
			}
			note(c, "crash observed")
			// Wait for the machine to reboot and be re-booted, then the
			// service resumes: discover again (the MID may be the same,
			// but the pattern had to be readvertised by the new client).
			c.Hold(2 * time.Second)
			srv2, ok := c.Discover(pattern)
			if !ok {
				t.Error("service not rediscovered after recovery")
				return
			}
			if res := c.BExchange(srv2, soda.OK, []byte("x"), 16); res.Status != soda.StatusSuccess {
				t.Errorf("post-recovery call: %v", res.Status)
				return
			}
			note(c, "recovered")
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "echo")
	nw.MustBoot(2, "driver")
	nw.At(time.Second, func() { nw.Node(1).Crash() })
	nw.At(3*time.Second, func() {
		nw.Node(1).Reboot(func() {
			if err := nw.Node(1).Boot("echo", 0); err != nil {
				t.Errorf("re-boot: %v", err)
			}
		})
	})
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"discovered", "first call ok", "crash observed", "recovered"}
	if len(steps) != len(want) {
		t.Fatalf("steps = %+v", steps)
	}
	for i, w := range want {
		if steps[i].what != w {
			t.Fatalf("step %d = %q, want %q (%+v)", i, steps[i].what, w, steps)
		}
	}
}

func TestWorkloadSurvivesFrameLoss(t *testing.T) {
	// End-to-end through every layer: with 10% frame loss, a hundred
	// blocking exchanges all succeed (Delta-t absorbs the loss).
	nw := soda.NewNetwork(soda.WithLoss(0.10), soda.WithSeed(3))
	nw.Register("echo", echo("ok"))
	done := 0
	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			srv := soda.ServerSig{MID: 1, Pattern: pattern}
			for i := 0; i < 100; i++ {
				res := c.BExchange(srv, soda.OK, []byte(fmt.Sprintf("%03d", i)), 16)
				if res.Status != soda.StatusSuccess {
					t.Errorf("op %d: %v", i, res.Status)
					return
				}
				done++
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "echo")
	nw.MustBoot(2, "driver")
	if err := nw.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if done != 100 {
		t.Fatalf("completed %d/100 under loss", done)
	}
	if st := nw.Stats(); st.FramesLost == 0 {
		t.Error("loss model inert; test proved nothing")
	}
}

func TestManyNodesAllPairs(t *testing.T) {
	// Eight clients, each both serving and calling every other: exercises
	// crossing requests, piggybacking and per-peer connection state at
	// scale.
	const n = 8
	nw := soda.NewNetwork()
	nw.Register("peer", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := c.Advertise(pattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival {
				c.AcceptCurrentExchange(soda.OK, []byte{byte(c.MID())}, ev.PutSize)
			}
		},
		Task: func(c *soda.Client) {
			for other := soda.MID(1); other <= n; other++ {
				if other == c.MID() {
					continue
				}
				res := c.BExchange(soda.ServerSig{MID: other, Pattern: pattern}, soda.OK, []byte{byte(c.MID())}, 4)
				if res.Status != soda.StatusSuccess {
					t.Errorf("%d->%d: %v", c.MID(), other, res.Status)
					return
				}
				if len(res.Data) != 1 || res.Data[0] != byte(other) {
					t.Errorf("%d->%d: reply %v", c.MID(), other, res.Data)
					return
				}
			}
			c.WaitUntil(func() bool { return false }) // keep serving
		},
	})
	for mid := soda.MID(1); mid <= n; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "peer")
	}
	if err := nw.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		nw := soda.NewNetwork(soda.WithSeed(42), soda.WithLoss(0.05))
		nw.Register("echo", echo("d"))
		var finished time.Duration
		nw.Register("driver", soda.Program{
			Task: func(c *soda.Client) {
				srv := soda.ServerSig{MID: 1, Pattern: pattern}
				for i := 0; i < 20; i++ {
					c.BExchange(srv, soda.OK, []byte{byte(i)}, 8)
				}
				finished = c.Now()
			},
		})
		nw.MustAddNode(1)
		nw.MustAddNode(2)
		nw.MustBoot(1, "echo")
		nw.MustBoot(2, "driver")
		if err := nw.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		return finished, nw.Stats().FramesSent
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestRunToCompletionDetectsDeadlock(t *testing.T) {
	// Two clients each parked waiting for a message the other never
	// sends; with no pending events the scheduler reports the stall.
	nw := soda.NewNetwork()
	nw.Register("stuck", soda.Program{
		Task: func(c *soda.Client) {
			c.WaitUntil(func() bool { return false })
		},
	})
	nw.MustAddNode(1)
	nw.MustBoot(1, "stuck")
	if err := nw.RunToCompletion(); err == nil {
		t.Fatal("RunToCompletion did not report the stalled client")
	}
}

func TestEventLimitGuardsLivelock(t *testing.T) {
	nw := soda.NewNetwork(soda.WithEventLimit(5_000))
	nw.Register("spinner", soda.Program{
		Task: func(c *soda.Client) {
			for {
				c.Hold(time.Microsecond)
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustBoot(1, "spinner")
	if err := nw.Run(time.Hour); err == nil {
		t.Fatal("event limit did not trip")
	}
}

// Package group implements the thesis's library-level extensions for sets
// of cooperating clients: process groups (§6.12), reliable multicast
// (§6.17.1), and bidding support (§6.17.5).
//
// SODA deliberately keeps these out of the kernel — "they can be
// implemented as library routines on top of SODA" (§6.17) — and this
// package is those routines. A process group is a GETUNIQUEID pattern
// shared among members: kernel pattern screening keeps clients outside the
// set from inadvertently communicating with members (§6.12). Reliable
// multicast issues one REQUEST per member (the kernel provides no reliable
// broadcast, §6.17.1). Bidding pairs DISCOVER with a per-server load query
// so a requester can pick the least-loaded provider (§6.17.5).
package group

import (
	"encoding/binary"

	"soda"
)

// Group is a process group handle: a pattern shared by the members.
type Group struct {
	// Pattern names the group; DISCOVER on it finds the members.
	Pattern soda.Pattern
}

// New mints a fresh group from the manager's GETUNIQUEID (§6.12). The
// manager distributes the handle to prospective members out of band (boot
// image, an earlier exchange, a connector).
func New(c *soda.Client) Group {
	return Group{Pattern: c.GetUniqueID()}
}

// Join advertises the group pattern: the client becomes discoverable and
// addressable as a member.
func (g Group) Join(c *soda.Client) error { return c.Advertise(g.Pattern) }

// Leave unadvertises the pattern; requests already delivered are
// unaffected (§3.4.1).
func (g Group) Leave(c *soda.Client) error { return c.Unadvertise(g.Pattern) }

// Members returns the machines currently advertising the group pattern.
func (g Group) Members(c *soda.Client, max int) []soda.MID {
	return c.DiscoverAll(g.Pattern, max)
}

// SendResult is one member's outcome from a multicast.
type SendResult struct {
	MID    soda.MID
	Status soda.Status
}

// Multicast reliably delivers data to every listed destination: one
// REQUEST per site (§6.17.1), overlapped up to the kernel's MAXREQUESTS
// window, each individually acknowledged. The results arrive in the input
// order. Must be called from the task.
func Multicast(c *soda.Client, dsts []soda.ServerSig, arg int32, data []byte) []SendResult {
	results := make([]SendResult, len(dsts))
	done := make([]bool, len(dsts))
	completed := 0
	next := 0
	for completed < len(dsts) {
		// Keep the window full; ErrTooManyRequests just pauses issuing.
		for next < len(dsts) {
			i := next
			tid, err := c.Put(dsts[i], arg, data)
			if err != nil {
				break
			}
			next++
			c.OnCompletion(tid, func(ev soda.Event) {
				st := ev.Status
				if st == soda.StatusSuccess && ev.Arg < 0 {
					st = soda.StatusRejected
				}
				results[i] = SendResult{MID: dsts[i].MID, Status: st}
				done[i] = true
				completed++
			})
		}
		progress := completed
		c.WaitUntil(func() bool { return completed > progress || completed >= len(dsts) })
	}
	return results
}

// MulticastGroup is Multicast to every discoverable member of a group.
func MulticastGroup(c *soda.Client, g Group, arg int32, data []byte, maxMembers int) []SendResult {
	mids := g.Members(c, maxMembers)
	dsts := make([]soda.ServerSig, len(mids))
	for i, mid := range mids {
		dsts[i] = soda.ServerSig{MID: mid, Pattern: g.Pattern}
	}
	return Multicast(c, dsts, arg, data)
}

// LoadReporter equips a server with a bidding entry (§6.17.5): requests on
// loadPattern are answered, in the handler, with the current value of
// load(). Call it from the program handler; it reports true when the event
// was consumed.
func LoadReporter(c *soda.Client, loadPattern soda.Pattern, load func() uint32, ev soda.Event) bool {
	if ev.Kind != soda.EventRequestArrival || ev.Pattern != loadPattern {
		return false
	}
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, load())
	c.AcceptCurrentGet(soda.OK, buf)
	return true
}

// Bid is one server's answer to a load query.
type Bid struct {
	MID  soda.MID
	Load uint32
}

// PickLeastLoaded discovers every server advertising loadPattern, asks each
// for its load, and returns the bids sorted as received plus the index of
// the winner (-1 if nobody answered). Ties go to the earlier responder.
func PickLeastLoaded(c *soda.Client, loadPattern soda.Pattern, maxServers int) ([]Bid, int) {
	mids := c.DiscoverAll(loadPattern, maxServers)
	var bids []Bid
	best := -1
	for _, mid := range mids {
		res := c.BGet(soda.ServerSig{MID: mid, Pattern: loadPattern}, soda.OK, 4)
		if res.Status != soda.StatusSuccess || len(res.Data) != 4 {
			continue
		}
		bids = append(bids, Bid{MID: mid, Load: binary.BigEndian.Uint32(res.Data)})
		if best == -1 || bids[len(bids)-1].Load < bids[best].Load {
			best = len(bids) - 1
		}
	}
	return bids, best
}

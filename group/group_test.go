package group

import (
	"testing"
	"time"

	"soda"
)

func TestMulticastReachesEveryMember(t *testing.T) {
	nw := soda.NewNetwork()
	// A well-known handle stands in for one minted with New and
	// distributed by a manager (New requires a running client).
	g := Group{Pattern: soda.WellKnownPattern(0o777)}
	received := map[soda.MID]string{}
	nw.Register("member", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := g.Join(c); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival && ev.Pattern == g.Pattern {
				res := c.AcceptCurrentPut(soda.OK, ev.PutSize)
				if res.Status == soda.AcceptSuccess {
					received[c.MID()] = string(res.Data)
				}
			}
		},
	})
	var results []SendResult
	nw.Register("manager", soda.Program{
		Task: func(c *soda.Client) {
			c.Hold(50 * time.Millisecond) // members joined at boot
			results = MulticastGroup(c, g, soda.OK, []byte("announce"), 8)
		},
	})
	nw.MustAddNode(9)
	nw.MustBoot(9, "manager")
	for mid := soda.MID(2); mid <= 4; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "member")
	}
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("multicast results: %v", results)
	}
	for _, r := range results {
		if r.Status != soda.StatusSuccess {
			t.Fatalf("member %d: %v", r.MID, r.Status)
		}
	}
	for mid := soda.MID(2); mid <= 4; mid++ {
		if received[mid] != "announce" {
			t.Fatalf("member %d received %q", mid, received[mid])
		}
	}
}

func TestMulticastReportsPerMemberFailure(t *testing.T) {
	nw := soda.NewNetwork()
	g := Group{Pattern: soda.WellKnownPattern(0o770)}
	nw.Register("member", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) { _ = g.Join(c) },
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival {
				c.AcceptCurrentPut(soda.OK, ev.PutSize)
			}
		},
	})
	var results []SendResult
	nw.Register("manager", soda.Program{
		Task: func(c *soda.Client) {
			c.Hold(50 * time.Millisecond)
			dsts := []soda.ServerSig{
				{MID: 2, Pattern: g.Pattern},
				{MID: 7, Pattern: g.Pattern}, // nonexistent machine
				{MID: 3, Pattern: g.Pattern},
			}
			results = Multicast(c, dsts, soda.OK, []byte("x"))
		},
	})
	nw.MustAddNode(1)
	nw.MustBoot(1, "manager")
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(2, "member")
	nw.MustBoot(3, "member")
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %v", results)
	}
	if results[0].Status != soda.StatusSuccess || results[2].Status != soda.StatusSuccess {
		t.Fatalf("live members failed: %v", results)
	}
	if results[1].Status != soda.StatusCrashed {
		t.Fatalf("dead member status = %v, want CRASHED", results[1].Status)
	}
}

func TestLeaveStopsDelivery(t *testing.T) {
	nw := soda.NewNetwork()
	g := Group{Pattern: soda.WellKnownPattern(0o771)}
	nw.Register("member", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) { _ = g.Join(c) },
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival {
				c.AcceptCurrentPut(soda.OK, ev.PutSize)
			}
		},
		Task: func(c *soda.Client) {
			c.Hold(100 * time.Millisecond)
			_ = g.Leave(c)
			c.WaitUntil(func() bool { return false })
		},
	})
	var before, after []soda.MID
	nw.Register("manager", soda.Program{
		Task: func(c *soda.Client) {
			c.Hold(30 * time.Millisecond)
			before = g.Members(c, 4)
			c.Hold(300 * time.Millisecond)
			after = g.Members(c, 4)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(2, "member")
	nw.MustBoot(1, "manager")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0] != 2 {
		t.Fatalf("before = %v", before)
	}
	if len(after) != 0 {
		t.Fatalf("after leave = %v", after)
	}
}

func TestBiddingPicksLeastLoaded(t *testing.T) {
	nw := soda.NewNetwork()
	loadPat := soda.WellKnownPattern(0o772)
	mkServer := func(load uint32) soda.Program {
		return soda.Program{
			Init: func(c *soda.Client, _ soda.MID) { _ = c.Advertise(loadPat) },
			Handler: func(c *soda.Client, ev soda.Event) {
				LoadReporter(c, loadPat, func() uint32 { return load }, ev)
			},
		}
	}
	nw.Register("busy", mkServer(90))
	nw.Register("idle", mkServer(5))
	nw.Register("medium", mkServer(40))
	var bids []Bid
	best := -2
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			bids, best = PickLeastLoaded(c, loadPat, 8)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustAddNode(4)
	nw.MustBoot(1, "busy")
	nw.MustBoot(2, "idle")
	nw.MustBoot(3, "medium")
	nw.MustBoot(4, "client")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(bids) != 3 || best < 0 {
		t.Fatalf("bids = %v best = %d", bids, best)
	}
	if bids[best].MID != 2 || bids[best].Load != 5 {
		t.Fatalf("winner = %+v, want machine 2 load 5", bids[best])
	}
}

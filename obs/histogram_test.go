package obs

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBucketsAreContiguous(t *testing.T) {
	// Bucket indexes must be monotone in the value, and each bucket's
	// upper bound must cover every value mapped to it.
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, up, v)
		}
		prev = idx
	}
	// Large-magnitude spot checks.
	for _, v := range []int64{1 << 30, 1<<40 + 12345, 1 << 62} {
		if up := bucketUpper(bucketIndex(v)); up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
	}
}

func TestHistogramExactBelowSixteen(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histSubCount; v++ {
		h.Record(v)
	}
	for q, want := range map[float64]int64{0.0001: 0, 0.5: 7, 1.0: 15} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 10_000)
	var sum int64
	for i := range values {
		v := int64(rng.ExpFloat64() * 50_000) // latency-shaped distribution
		values[i] = v
		sum += v
		h.Record(v)
	}
	if h.Count() != uint64(len(values)) {
		t.Fatalf("count %d, want %d", h.Count(), len(values))
	}
	if h.Mean() != sum/int64(len(values)) {
		t.Errorf("mean %d, want exact %d", h.Mean(), sum/int64(len(values)))
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	// The reported quantile is an upper bound on the true order statistic,
	// within the histogram's 1/histSubCount relative error.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := values[int(q*float64(len(values)))-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d", q, got, exact)
		}
		if bound := exact + exact/(histSubCount/2) + 1; got > bound {
			t.Errorf("Quantile(%v) = %d, exact %d: beyond error bound %d", q, got, exact, bound)
		}
	}
	if h.Quantile(1.0) != h.Max() {
		t.Errorf("Quantile(1) = %d, want max %d", h.Quantile(1.0), h.Max())
	}
	if h.Min() != values[0] || h.Max() != values[len(values)-1] {
		t.Errorf("min/max %d/%d, want %d/%d", h.Min(), h.Max(), values[0], values[len(values)-1])
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d max=%d count=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

package obs

import (
	"soda/internal/bus"
	"soda/internal/core"
	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// TraceConfig tunes what the Tracer records.
type TraceConfig struct {
	// Wire additionally records an instant for every per-receiver frame
	// delivery (kind, src, size). Complete wire visibility, but traces
	// grow with frame count; off by default.
	Wire bool
}

// Span is the causal record of one REQUEST lifecycle, assembled from the
// kernel observer stream (issue, delivery, arrival, accept, completion), the
// transport observer stream, and the bus delivery tap (wire hops). All
// timestamps are virtual; Has* guards report which hops were observed —
// a lossy or crashing run legitimately produces partial spans.
type Span struct {
	Sig       frame.RequesterSig
	Requester frame.MID
	// Server is the addressed machine (BroadcastMID for DISCOVER);
	// ArrivalNode is where the request actually reached a handler.
	Server      frame.MID
	ArrivalNode frame.MID
	Pattern     frame.Pattern
	Discover    bool

	Issue sim.Time
	// WireArrival: the REQUEST frame reached the server's interface.
	WireArrival    sim.Time
	HasWireArrival bool
	// Arrival: the server's client handler received the request.
	Arrival    sim.Time
	HasArrival bool
	// Accept: the ACCEPT resolved at the serving node.
	Accept       sim.Time
	HasAccept    bool
	AcceptStatus core.AcceptStatus
	// WireAccept: the ACCEPT frame reached the requester's interface.
	WireAccept    sim.Time
	HasWireAccept bool
	// Delivered: the requester kernel learned its REQUEST was consumed.
	Delivered    sim.Time
	HasDelivered bool
	// End: completion (Status set) or cancellation (Cancelled set).
	End       sim.Time
	Done      bool
	Cancelled bool
	Status    core.Status
}

// last reports the latest timestamp observed on the span, for closing
// unresolved spans in exports.
func (s *Span) last() sim.Time {
	t := s.Issue
	for _, c := range []struct {
		has bool
		at  sim.Time
	}{
		{s.HasWireArrival, s.WireArrival},
		{s.HasArrival, s.Arrival},
		{s.HasAccept, s.Accept},
		{s.HasWireAccept, s.WireAccept},
		{s.HasDelivered, s.Delivered},
		{s.Done, s.End},
	} {
		if c.has && c.at > t {
			t = c.at
		}
	}
	return t
}

// instant is a point event outside any span (transport machinery, node
// lifecycle, optional wire deliveries).
type instant struct {
	at   sim.Time
	node frame.MID
	name string
	cat  string
	args map[string]int64
}

// Tracer assembles spans and instants from the three observer streams. Wire
// it through soda.WithTracer, or feed Observe / ObserveTransport /
// ObserveDelivery directly. Events must arrive in virtual-time order (the
// simulation is single-threaded, so they do); everything recorded is kept in
// arrival order, making exports byte-identical across same-seed runs.
type Tracer struct {
	cfg      TraceConfig
	spans    []*Span
	bySig    map[frame.RequesterSig]*Span
	instants []instant
	nodes    map[frame.MID]bool
	lastAt   sim.Time
}

// NewTracer creates a tracer with default config.
func NewTracer() *Tracer { return NewTracerWith(TraceConfig{}) }

// NewTracerWith creates a tracer with explicit config.
func NewTracerWith(cfg TraceConfig) *Tracer {
	return &Tracer{
		cfg:   cfg,
		bySig: make(map[frame.RequesterSig]*Span),
		nodes: make(map[frame.MID]bool),
	}
}

// Spans returns the assembled spans in issue order. The slice is the
// tracer's own; callers must not mutate it.
func (t *Tracer) Spans() []*Span { return t.spans }

func (t *Tracer) seen(mid frame.MID, at sim.Time) {
	if mid != frame.BroadcastMID {
		t.nodes[mid] = true
	}
	if at > t.lastAt {
		t.lastAt = at
	}
}

func (t *Tracer) addInstant(at sim.Time, node frame.MID, cat, name string, args map[string]int64) {
	t.seen(node, at)
	t.instants = append(t.instants, instant{at: at, node: node, name: name, cat: cat, args: args})
}

// Observe consumes one kernel observer event.
func (t *Tracer) Observe(ev core.ObsEvent) {
	t.seen(ev.Node, ev.At)
	switch ev.Kind {
	case core.ObsIssue:
		s := &Span{
			Sig:       ev.Sig,
			Requester: ev.Node,
			Server:    ev.Dst.MID,
			Pattern:   ev.Dst.Pattern,
			Discover:  ev.Dst.MID == frame.BroadcastMID,
			Issue:     ev.At,
		}
		// A crashed-and-rebooted requester restarts its TID sequence in a
		// new epoch; the old span (if unresolved) stays as-is and the new
		// issue takes over the signature.
		t.spans = append(t.spans, s)
		t.bySig[ev.Sig] = s
	case core.ObsDelivered:
		if s := t.bySig[ev.Sig]; s != nil && !s.HasDelivered {
			s.Delivered = ev.At
			s.HasDelivered = true
		}
	case core.ObsArrival:
		if s := t.bySig[ev.Sig]; s != nil && !s.HasArrival {
			s.Arrival = ev.At
			s.HasArrival = true
			s.ArrivalNode = ev.Node
		}
	case core.ObsComplete:
		if s := t.bySig[ev.Sig]; s != nil && !s.Done {
			s.End = ev.At
			s.Done = true
			s.Status = ev.Status
		}
	case core.ObsCancelled:
		if s := t.bySig[ev.Sig]; s != nil && !s.Done {
			s.End = ev.At
			s.Done = true
			s.Cancelled = true
		}
	case core.ObsAccept:
		if s := t.bySig[ev.Sig]; s != nil && !s.HasAccept && ev.Node == s.ArrivalNode && s.HasArrival {
			s.Accept = ev.At
			s.HasAccept = true
			s.AcceptStatus = ev.Accept
		}
	case core.ObsCrash, core.ObsDie, core.ObsReboot:
		t.addInstant(ev.At, ev.Node, "lifecycle", ev.Kind.String(), nil)
	}
}

// ObserveTransport consumes one transport observer event. Protocol-recovery
// events (retransmit — selective included, window adaptation, busy retry,
// peer-dead, record expiry/close) are always recorded; per-frame
// acknowledgement traffic (SACK-bearing acks included) only under
// TraceConfig.Wire.
func (t *Tracer) ObserveTransport(ev deltat.Event) {
	t.seen(ev.Node, ev.At)
	switch ev.Kind {
	case deltat.EvAckTx, deltat.EvAckRx, deltat.EvPiggybackAck, deltat.EvConnOpen,
		deltat.EvCumAck, deltat.EvSackTx:
		if !t.cfg.Wire {
			return
		}
	}
	args := map[string]int64{"peer": int64(ev.Peer), "seq": int64(ev.Seq)}
	if ev.Attempt > 0 {
		args["attempt"] = int64(ev.Attempt)
	}
	t.addInstant(ev.At, ev.Node, "transport", ev.Kind.String(), args)
}

// ObserveDelivery consumes one bus delivery event, filling the span's wire
// hops (the REQUEST frame reaching the server, the ACCEPT frame reaching the
// requester) by decoding the delivered bytes. Corrupt or non-kernel frames
// are ignored — the tracer observes, the checker judges.
func (t *Tracer) ObserveDelivery(ev bus.DeliveryEvent) {
	f, err := frame.DecodeTransport(ev.Raw)
	if err != nil {
		return
	}
	if t.cfg.Wire {
		t.addInstant(ev.At, ev.Dst, "wire", f.Kind.String(),
			map[string]int64{"src": int64(ev.Src), "size": int64(len(ev.Raw))})
	}
	if len(f.Payload) == 0 {
		return
	}
	switch f.Kind {
	case frame.TransportData, frame.TransportAck, frame.TransportDatagram:
	default:
		return
	}
	m, err := frame.Decode(f.Payload)
	if err != nil {
		return
	}
	switch msg := m.(type) {
	case *frame.Request:
		// The requester is the transport source; the frame reached ev.Dst.
		if s := t.bySig[frame.RequesterSig{MID: ev.Src, TID: msg.TID}]; s != nil && !s.HasWireArrival {
			if s.Server == ev.Dst || s.Discover {
				s.WireArrival = ev.At
				s.HasWireArrival = true
			}
		}
	case *frame.Accept:
		// The accept travels server → requester; the requester is ev.Dst.
		if s := t.bySig[frame.RequesterSig{MID: ev.Dst, TID: msg.TID}]; s != nil && !s.HasWireAccept {
			s.WireAccept = ev.At
			s.HasWireAccept = true
		}
	}
}

// Internal tests for the transport-event fan-in: the selective-repeat
// counters added in DESIGN.md §12 and the tracer's wire-noise filtering
// are driven directly, without standing up a full network.
package obs

import (
	"testing"

	"soda/internal/deltat"
)

func TestRegistryTransportRecoveryCounters(t *testing.T) {
	r := NewRegistry()
	evs := []deltat.EventKind{
		deltat.EvSelectiveRetransmit, deltat.EvSelectiveRetransmit,
		deltat.EvSackTx,
		deltat.EvWindowIncrease,
		deltat.EvWindowDecrease, deltat.EvWindowDecrease,
	}
	for _, k := range evs {
		r.ObserveTransport(deltat.Event{Kind: k, Node: 4, Peer: 5})
	}
	nc := r.Node(4)
	// A selective retransmit is still a fragment retransmit: the generic
	// counter must include the hole-targeted re-sends.
	if nc.FragRetransmits != 2 || nc.SelectiveRetransmits != 2 {
		t.Errorf("retransmit counters = %d/%d, want 2/2",
			nc.FragRetransmits, nc.SelectiveRetransmits)
	}
	if nc.SackAcks != 1 {
		t.Errorf("SackAcks = %d, want 1", nc.SackAcks)
	}
	if nc.WindowIncreases != 1 || nc.WindowDecreases != 2 {
		t.Errorf("AIMD counters = %d/%d, want 1/2", nc.WindowIncreases, nc.WindowDecreases)
	}
}

func TestTracerSackIsWireTraffic(t *testing.T) {
	ev := deltat.Event{Kind: deltat.EvSackTx, Node: 2, Peer: 1, Seq: 7, Attempt: 2}
	quiet := NewTracer()
	quiet.ObserveTransport(ev)
	if n := len(quiet.instants); n != 0 {
		t.Errorf("SACK ack recorded %d instants without TraceConfig.Wire", n)
	}
	wire := NewTracerWith(TraceConfig{Wire: true})
	wire.ObserveTransport(ev)
	// Recovery events stay unconditional even on a quiet tracer.
	quiet.ObserveTransport(deltat.Event{Kind: deltat.EvSelectiveRetransmit, Node: 2, Peer: 1})
	if len(wire.instants) != 1 || wire.instants[0].name != "SACK_TX" {
		t.Errorf("wire tracer instants = %+v, want one SACK_TX", wire.instants)
	}
	if len(quiet.instants) != 1 || quiet.instants[0].name != "SEL_RETRANSMIT" {
		t.Errorf("quiet tracer instants = %+v, want one SEL_RETRANSMIT", quiet.instants)
	}
}

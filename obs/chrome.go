package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), loadable by chrome://tracing and https://ui.perfetto.dev. Each
// SODA node renders as a process (pid = MID); request spans are async events
// correlated by id, so a span's hops draw across processes.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace file object.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteChromeTrace exports everything the tracer assembled as Chrome
// trace-event JSON. Output is byte-deterministic: events are emitted in a
// fixed order (metadata by MID, spans in issue order, instants in arrival
// order) and encoding/json serializes map keys sorted.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, 8*len(t.spans)+len(t.instants)+len(t.nodes))

	for _, mid := range sortediter.Keys(t.nodes) {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: int(mid),
			Args: map[string]any{"name": fmt.Sprintf("node %d", mid)},
		})
	}

	for _, s := range t.spans {
		events = append(events, t.spanEvents(s)...)
	}
	for _, in := range t.instants {
		events = append(events, chromeEvent{
			Name: in.name, Cat: in.cat, Ph: "i", TS: tsUS(in.at),
			PID: int(in.node), Scope: "p", Args: intArgs(in.args),
		})
	}

	blob, err := json.Marshal(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"generator": "soda obs", "clock": "virtual"},
	})
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// spanEvents renders one request span as an async begin/step/end sequence
// plus, when the server-side times are known, a synchronous SERVICE slice on
// the serving node.
func (t *Tracer) spanEvents(s *Span) []chromeEvent {
	id := fmt.Sprintf("%d:%d", s.Sig.MID, s.Sig.TID)
	prim := PrimRequest
	if s.Discover {
		prim = PrimDiscover
	}
	name := fmt.Sprintf("%s %s", prim, s.Pattern)
	out := []chromeEvent{{
		Name: name, Cat: "request", Ph: "b", TS: tsUS(s.Issue),
		PID: int(s.Requester), ID: id,
		Args: map[string]any{
			"sig":     s.Sig.String(),
			"server":  int(s.Server),
			"pattern": s.Pattern.String(),
		},
	}}
	step := func(at sim.Time, node frame.MID, stepName string, args map[string]any) {
		out = append(out, chromeEvent{
			Name: stepName, Cat: "request", Ph: "n", TS: tsUS(at),
			PID: int(node), ID: id, Args: args,
		})
	}
	if s.HasWireArrival {
		step(s.WireArrival, s.ArrivalNodeOr(s.Server), "wire_arrival", nil)
	}
	if s.HasArrival {
		step(s.Arrival, s.ArrivalNode, "arrival", nil)
	}
	if s.HasAccept {
		step(s.Accept, s.ArrivalNode, "accept",
			map[string]any{"status": s.AcceptStatus.String()})
	}
	if s.HasWireAccept {
		step(s.WireAccept, s.Requester, "wire_accept", nil)
	}
	if s.HasDelivered {
		step(s.Delivered, s.Requester, "delivered", nil)
	}
	endArgs := map[string]any{}
	endAt := s.End
	switch {
	case s.Cancelled:
		endArgs["outcome"] = "CANCELLED"
	case s.Done:
		endArgs["outcome"] = s.Status.String()
	default:
		// Unresolved at the end of the run (in flight, or orphaned by a
		// crash): close at the last observed hop so viewers render it.
		endArgs["outcome"] = "UNRESOLVED"
		endAt = s.last()
	}
	out = append(out, chromeEvent{
		Name: name, Cat: "request", Ph: "e", TS: tsUS(endAt),
		PID: int(s.Requester), ID: id, Args: endArgs,
	})
	if s.HasArrival && s.HasAccept && s.Accept >= s.Arrival {
		dur := tsUS(s.Accept - s.Arrival)
		out = append(out, chromeEvent{
			Name: "SERVICE " + s.Pattern.String(), Cat: "service", Ph: "X",
			TS: tsUS(s.Arrival), Dur: &dur, PID: int(s.ArrivalNode), ID: id,
		})
	}
	return out
}

// ArrivalNodeOr returns the arrival node, or fallback when no handler
// arrival was observed (used to place the wire-arrival step).
func (s *Span) ArrivalNodeOr(fallback frame.MID) frame.MID {
	if s.HasArrival {
		return s.ArrivalNode
	}
	return fallback
}

func intArgs(m map[string]int64) map[string]any {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

package obs

import (
	"encoding/json"
	"io"

	"soda/internal/bus"
	"soda/internal/sim"
)

// CostBreakdown is the per-operation CPU cost attribution in virtual µs,
// reproducing the categories of the thesis's "Breakdown of Communications
// Overhead" table (Table 6.1): where the time of one signal round-trip goes.
type CostBreakdown struct {
	ConnTimersUS     int64   `json:"connection_timers_us"`
	RetransTimersUS  int64   `json:"retransmission_timers_us"`
	CtxSwitchUS      int64   `json:"context_switch_us"`
	TransmissionUS   int64   `json:"transmission_us"`
	ClientOverheadUS int64   `json:"client_overhead_us"`
	ProtocolUS       int64   `json:"protocol_us"`
	CopiesUS         int64   `json:"copies_us"`
	TotalUS          int64   `json:"total_us"`
	FramesPerOp      float64 `json:"frames_per_op"`
}

// BusCounters mirrors bus.Stats with stable JSON names, plus a ByKind map
// keyed by transport-kind name.
type BusCounters struct {
	FramesSent        uint64            `json:"frames_sent"`
	FramesDelivered   uint64            `json:"frames_delivered"`
	FramesLost        uint64            `json:"frames_lost"`
	FramesDroppedDown uint64            `json:"frames_dropped_down"`
	FramesCorrupted   uint64            `json:"frames_corrupted"`
	FramesDuplicated  uint64            `json:"frames_duplicated"`
	Retransmissions   uint64            `json:"retransmissions"`
	PiggybackedAcks   uint64            `json:"piggybacked_acks"`
	PeerDeadTimeouts  uint64            `json:"peer_dead_timeouts"`
	WindowFills       uint64            `json:"window_fills,omitempty"`
	CumulativeAcks    uint64            `json:"cumulative_acks,omitempty"`
	FragRetransmits   uint64            `json:"frag_retransmits,omitempty"`
	BytesSent         uint64            `json:"bytes_sent"`
	ByKind            map[string]uint64 `json:"frames_by_kind,omitempty"`
}

// BusCountersFrom converts a bus.Stats snapshot.
func BusCountersFrom(st bus.Stats) *BusCounters {
	out := &BusCounters{
		FramesSent:        st.FramesSent,
		FramesDelivered:   st.FramesDelivered,
		FramesLost:        st.FramesLost,
		FramesDroppedDown: st.FramesDroppedDown,
		FramesCorrupted:   st.FramesCorrupted,
		FramesDuplicated:  st.FramesDuplicated,
		Retransmissions:   st.Retransmissions,
		PiggybackedAcks:   st.PiggybackedAcks,
		PeerDeadTimeouts:  st.PeerDeadTimeouts,
		WindowFills:       st.WindowFills,
		CumulativeAcks:    st.CumulativeAcks,
		FragRetransmits:   st.FragmentRetransmits,
		BytesSent:         st.BytesSent,
	}
	if len(st.ByKind) > 0 {
		out.ByKind = make(map[string]uint64, len(st.ByKind))
		//lint:allow mapiterorder (map-to-map rekeying; encoding/json sorts keys on output)
		for k, v := range st.ByKind {
			out.ByKind[k.String()] = v
		}
	}
	return out
}

// Profile is the machine-readable record of one measured run, written by
// cmd/sodabench as BENCH_*.json and by sodasim's -metrics mode. All times
// are virtual microseconds; all content is deterministic for a given seed,
// so profiles diff cleanly across code changes.
type Profile struct {
	// Scenario names what ran (e.g. "table61-signal", "philosophers").
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed,omitempty"`
	// Ops is the measured operation count for per-op figures.
	Ops int `json:"ops,omitempty"`
	// VirtualUS is the virtual-clock reading at the end of the run.
	VirtualUS int64 `json:"virtual_us"`
	// Breakdown is the Table 6.1 per-operation cost attribution (bench
	// scenarios only).
	Breakdown *CostBreakdown `json:"breakdown_us_per_op,omitempty"`
	// Primitives digests the per-primitive latency histograms.
	Primitives map[string]HistSummary `json:"primitives,omitempty"`
	// Nodes carries per-node counters keyed by decimal MID.
	Nodes map[string]*NodeCounters `json:"nodes,omitempty"`
	// Bus snapshots the medium's counters for the measurement window.
	Bus *BusCounters `json:"bus,omitempty"`
	// OpenRequests counts requests never resolved by the end of the run.
	OpenRequests int `json:"open_requests,omitempty"`
}

// Profile builds a profile from the registry's current state. The caller
// fills Seed, Ops, Breakdown, and Bus as applicable.
func (r *Registry) Profile(scenario string, now sim.Time) *Profile {
	return &Profile{
		Scenario:     scenario,
		VirtualUS:    usec(now),
		Primitives:   r.Summaries(),
		Nodes:        r.Nodes(),
		OpenRequests: r.OpenRequests(),
	}
}

// Write emits the profile as indented JSON (stable key order; encoding/json
// sorts map keys), followed by a newline.
func (p *Profile) Write(w io.Writer) error {
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

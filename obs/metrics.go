package obs

import (
	"fmt"
	"io"

	"soda/internal/core"
	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
)

// Primitive names used as histogram keys. Latencies are measured in whole
// virtual microseconds:
//
//	REQUEST  — issue to completion, at the requester;
//	DISCOVER — same, for broadcast-addressed requests;
//	ACCEPT   — handler arrival to accept resolution, at the server;
//	CANCEL   — issue to cancelled-completion, at the requester.
const (
	PrimRequest  = "REQUEST"
	PrimAccept   = "ACCEPT"
	PrimCancel   = "CANCEL"
	PrimDiscover = "DISCOVER"
)

// NodeCounters tallies per-node protocol activity from both observer
// streams: kernel request-lifecycle events and transport machinery events.
type NodeCounters struct {
	Issues         uint64 `json:"issues"`
	Delivered      uint64 `json:"delivered"`
	Arrivals       uint64 `json:"arrivals"`
	Completions    uint64 `json:"completions"`
	Cancellations  uint64 `json:"cancellations"`
	Accepts        uint64 `json:"accepts"`
	AcceptFailures uint64 `json:"accept_failures"`
	Crashes        uint64 `json:"crashes"`
	Dies           uint64 `json:"dies"`
	Reboots        uint64 `json:"reboots"`
	// CompletionsByStatus splits Completions by core.Status name.
	CompletionsByStatus map[string]uint64 `json:"completions_by_status,omitempty"`

	// Transport machinery (deltat observer stream).
	Retransmits      uint64 `json:"retransmits"`
	AcksTx           uint64 `json:"acks_tx"`
	AcksRx           uint64 `json:"acks_rx"`
	PiggybackAcks    uint64 `json:"piggyback_acks"`
	PeerDeadTimeouts uint64 `json:"peer_dead_timeouts"`
	BusyRetries      uint64 `json:"busy_retries"`
	ConnOpens        uint64 `json:"conn_opens"`
	ConnExpires      uint64 `json:"conn_expires"`
	ConnCloses       uint64 `json:"conn_closes"`
	// Windowed-transport machinery (Config.Window > 1; zero otherwise).
	WindowFills     uint64 `json:"window_fills,omitempty"`
	CumulativeAcks  uint64 `json:"cumulative_acks,omitempty"`
	FragRetransmits uint64 `json:"frag_retransmits,omitempty"`
	// Selective-repeat machinery (RecoverySelective only; DESIGN.md §12).
	SelectiveRetransmits uint64 `json:"selective_retransmits,omitempty"`
	SackAcks             uint64 `json:"sack_acks,omitempty"`
	WindowIncreases      uint64 `json:"window_increases,omitempty"`
	WindowDecreases      uint64 `json:"window_decreases,omitempty"`
}

// HistSummary is the exported digest of one primitive's latency histogram,
// in whole virtual microseconds.
type HistSummary struct {
	Count  uint64 `json:"count"`
	MinUS  int64  `json:"min_us"`
	MeanUS int64  `json:"mean_us"`
	P50US  int64  `json:"p50_us"`
	P90US  int64  `json:"p90_us"`
	P99US  int64  `json:"p99_us"`
	MaxUS  int64  `json:"max_us"`
}

// reqTimes is the per-request state the registry keeps to turn event pairs
// into latencies. Records are retained for the whole run (a few dozen bytes
// per request): the server-side accept outcome can resolve after the
// requester-side completion, so records cannot be reclaimed at completion.
type reqTimes struct {
	issue      sim.Time
	arrival    sim.Time
	hasArrival bool
	discover   bool
	done       bool // completion or cancellation recorded
	accepted   bool // accept latency recorded
}

// Registry accumulates per-primitive latency histograms and per-node
// counters from the kernel and transport observer streams. Feed it through
// soda.WithMetrics, or call Observe/ObserveTransport directly. It is
// observation only and purely deterministic: the same event stream always
// yields the same state.
type Registry struct {
	open  map[frame.RequesterSig]*reqTimes
	hists map[string]*Histogram
	nodes map[frame.MID]*NodeCounters
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		open:  make(map[frame.RequesterSig]*reqTimes),
		hists: make(map[string]*Histogram),
		nodes: make(map[frame.MID]*NodeCounters),
	}
}

// Histogram returns the named primitive's histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Node returns the counters for mid, creating them if absent.
func (r *Registry) Node(mid frame.MID) *NodeCounters {
	nc, ok := r.nodes[mid]
	if !ok {
		nc = &NodeCounters{CompletionsByStatus: make(map[string]uint64)}
		r.nodes[mid] = nc
	}
	return nc
}

// Observe consumes one kernel observer event.
func (r *Registry) Observe(ev core.ObsEvent) {
	nc := r.Node(ev.Node)
	switch ev.Kind {
	case core.ObsIssue:
		nc.Issues++
		r.open[ev.Sig] = &reqTimes{issue: ev.At, discover: ev.Dst.MID == frame.BroadcastMID}
	case core.ObsDelivered:
		nc.Delivered++
	case core.ObsArrival:
		nc.Arrivals++
		if t := r.open[ev.Sig]; t != nil && !t.hasArrival {
			t.arrival = ev.At
			t.hasArrival = true
		}
	case core.ObsComplete:
		nc.Completions++
		nc.CompletionsByStatus[ev.Status.String()]++
		if t := r.open[ev.Sig]; t != nil && !t.done {
			t.done = true
			name := PrimRequest
			if t.discover {
				name = PrimDiscover
			}
			r.Histogram(name).Record(usec(ev.At - t.issue))
		}
	case core.ObsCancelled:
		nc.Cancellations++
		if t := r.open[ev.Sig]; t != nil && !t.done {
			t.done = true
			r.Histogram(PrimCancel).Record(usec(ev.At - t.issue))
		}
	case core.ObsAccept:
		nc.Accepts++
		if ev.Accept != core.AcceptSuccess {
			nc.AcceptFailures++
			return
		}
		// Accept latency is server-side: handler arrival to accept
		// resolution. DISCOVER arrivals at many nodes share one record;
		// only the first successful accept is measured.
		if t := r.open[ev.Sig]; t != nil && t.hasArrival && !t.accepted {
			t.accepted = true
			r.Histogram(PrimAccept).Record(usec(ev.At - t.arrival))
		}
	case core.ObsCrash:
		nc.Crashes++
	case core.ObsDie:
		nc.Dies++
	case core.ObsReboot:
		nc.Reboots++
	}
}

// ObserveTransport consumes one transport observer event.
func (r *Registry) ObserveTransport(ev deltat.Event) {
	nc := r.Node(ev.Node)
	switch ev.Kind {
	case deltat.EvRetransmit:
		nc.Retransmits++
	case deltat.EvAckTx:
		nc.AcksTx++
	case deltat.EvAckRx:
		nc.AcksRx++
	case deltat.EvPiggybackAck:
		nc.PiggybackAcks++
	case deltat.EvPeerDead:
		nc.PeerDeadTimeouts++
	case deltat.EvBusyRetry:
		nc.BusyRetries++
	case deltat.EvConnOpen:
		nc.ConnOpens++
	case deltat.EvConnExpire:
		nc.ConnExpires++
	case deltat.EvConnClose:
		nc.ConnCloses++
	case deltat.EvWindowFill:
		nc.WindowFills++
	case deltat.EvCumAck:
		nc.CumulativeAcks++
	case deltat.EvFragRetransmit:
		nc.FragRetransmits++
	case deltat.EvSelectiveRetransmit:
		nc.FragRetransmits++
		nc.SelectiveRetransmits++
	case deltat.EvSackTx:
		nc.SackAcks++
	case deltat.EvWindowIncrease:
		nc.WindowIncreases++
	case deltat.EvWindowDecrease:
		nc.WindowDecreases++
	}
}

// Summary digests one primitive's histogram (zero summary if never
// recorded).
func (r *Registry) Summary(name string) HistSummary {
	h, ok := r.hists[name]
	if !ok || h.Count() == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count:  h.Count(),
		MinUS:  h.Min(),
		MeanUS: h.Mean(),
		P50US:  h.Quantile(0.50),
		P90US:  h.Quantile(0.90),
		P99US:  h.Quantile(0.99),
		MaxUS:  h.Max(),
	}
}

// Summaries digests every non-empty histogram, keyed by primitive name.
func (r *Registry) Summaries() map[string]HistSummary {
	out := make(map[string]HistSummary, len(r.hists))
	//lint:allow mapiterorder (builds a map keyed the same way; order cannot leak)
	for name, h := range r.hists {
		if h.Count() > 0 {
			out[name] = r.Summary(name)
		}
	}
	return out
}

// Nodes returns the per-node counters keyed by decimal MID (a JSON-friendly
// map; encoding/json emits keys sorted, keeping exports deterministic).
func (r *Registry) Nodes() map[string]*NodeCounters {
	out := make(map[string]*NodeCounters, len(r.nodes))
	//lint:allow mapiterorder (map-to-map rekeying; encoding/json sorts keys on output)
	for mid, nc := range r.nodes {
		out[fmt.Sprintf("%d", mid)] = nc
	}
	return out
}

// OpenRequests reports how many observed requests never completed nor were
// cancelled (in flight at the end of the run, or orphaned by a crash).
func (r *Registry) OpenRequests() int {
	n := 0
	for _, t := range r.open {
		if !t.done {
			n++
		}
	}
	return n
}

// WriteSummary renders a human-readable digest: a latency table per
// primitive followed by per-node counters, in deterministic order.
func (r *Registry) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"primitive", "count", "mean", "p50", "p90", "p99", "max")
	for _, name := range sortediter.Keys(r.hists) {
		if r.hists[name].Count() == 0 {
			continue
		}
		s := r.Summary(name)
		fmt.Fprintf(w, "%-10s %8d %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms\n",
			name, s.Count,
			float64(s.MeanUS)/1000, float64(s.P50US)/1000,
			float64(s.P90US)/1000, float64(s.P99US)/1000,
			float64(s.MaxUS)/1000)
	}
	for _, mid := range sortediter.Keys(r.nodes) {
		nc := r.nodes[mid]
		fmt.Fprintf(w, "node %d: issues=%d completions=%d accepts=%d retransmits=%d acks_rx=%d piggyback=%d busy=%d peer_dead=%d\n",
			mid, nc.Issues, nc.Completions, nc.Accepts, nc.Retransmits,
			nc.AcksRx, nc.PiggybackAcks, nc.BusyRetries, nc.PeerDeadTimeouts)
	}
	if open := r.OpenRequests(); open > 0 {
		fmt.Fprintf(w, "open requests at end of run: %d\n", open)
	}
}

// Package obs is the observability subsystem of the SODA reproduction: it
// turns the kernel observer stream (core.Config.Observer), the transport
// observer stream (deltat.Config.Observer), and the bus delivery tap into
//
//   - causal spans — one per REQUEST lifecycle, with per-hop virtual-µs
//     timestamps (issue → transport delivery → wire arrival → handler
//     arrival → accept → completion/cancel) — assembled by a Tracer and
//     exportable as Chrome trace-event JSON (loadable in chrome://tracing
//     or https://ui.perfetto.dev);
//   - per-primitive latency histograms (REQUEST / ACCEPT / CANCEL /
//     DISCOVER) and per-node protocol counters, kept by a Registry; and
//   - machine-readable run profiles (Profile) reproducing the categories
//     of the paper's "Breakdown of Communications Overhead" table, which
//     cmd/sodabench writes as BENCH_*.json.
//
// Everything here is observation only: the streams it consumes are emitted
// synchronously by the simulation and must never change behavior. With no
// tracer or registry attached no event is even built, so a run with
// observability disabled is bit-identical to one that never linked this
// package (the chaos trace-hash determinism tests rely on this). All
// timestamps are virtual time from the deterministic scheduler, so two
// runs with the same seed and fault plan export byte-identical traces.
package obs

import (
	"time"
)

// usec converts a virtual duration to whole microseconds (the unit of every
// exported figure; the paper's tables are in ms with one decimal).
func usec(d time.Duration) int64 { return int64(d / time.Microsecond) }

// tsUS converts a virtual instant to fractional microseconds for the Chrome
// trace-event "ts" field.
func tsUS(d time.Duration) float64 { return float64(d) / 1e3 }

package obs

import "math/bits"

const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
)

// Histogram is a fixed-precision value recorder in the HDR style: values are
// bucketed by power-of-two magnitude with histSubCount linear sub-buckets per
// magnitude, bounding the relative error of any reported quantile at
// 1/histSubCount (≈6%) while keeping Record O(1). Values below histSubCount
// are exact. Units are whatever the caller records — the Registry records
// whole virtual microseconds. Negative values clamp to zero. The zero value
// is ready to use.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> (exp - histSubBits)) & (histSubCount - 1))
	return histSubCount + (exp-histSubBits)*histSubCount + sub
}

// bucketUpper is the largest value that maps to bucket idx (the quantile
// estimate reported for it).
func bucketUpper(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := (idx-histSubCount)/histSubCount + histSubBits
	sub := int64((idx - histSubCount) % histSubCount)
	lower := int64(1)<<exp + sub<<(exp-histSubBits)
	return lower + int64(1)<<(exp-histSubBits) - 1
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min reports the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max reports the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean reports the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / int64(h.count)
}

// Quantile reports an upper bound for the q-quantile (0 ≤ q ≤ 1), within the
// histogram's ≈6% relative error; exact for values below histSubCount. Empty
// histograms report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if u := bucketUpper(i); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// End-to-end observability tests: these drive the soda facade (which
// imports package obs), so they live in the external test package.
package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"soda"
	"soda/apps/philo"
	"soda/faults"
	"soda/obs"
	"soda/timesrv"
)

func d(v time.Duration) faults.Duration { return faults.Duration(v) }

// philoPlan is the chaos acceptance scenario: partition, asymmetric loss,
// corruption, and a detector crash/reboot cycle.
func philoPlan() faults.Plan {
	return faults.Plan{Events: []faults.Event{
		{Kind: faults.Partition, Start: d(5 * time.Second), Stop: d(15 * time.Second),
			Groups: [][]faults.MID{{1, 2, 3}, {4, 5, 6, 7}}},
		{Kind: faults.Loss, Start: 0, Stop: d(20 * time.Second), Dst: 3, Prob: 0.10},
		{Kind: faults.Corrupt, Start: 0, Stop: d(20 * time.Second), Prob: 0.05},
		{Kind: faults.Crash, Start: d(21 * time.Second), Node: 7},
		{Kind: faults.Reboot, Start: d(22 * time.Second), Node: 7, Program: "detector"},
	}}
}

// runPhilo runs the dining philosophers for 32s of virtual time with the
// given extra options, killing every client at 28s so the run drains.
func runPhilo(t *testing.T, seed int64, opts ...soda.Option) *soda.Network {
	t.Helper()
	ring := []soda.MID{2, 3, 4, 5, 6}
	nw := soda.NewNetwork(append([]soda.Option{soda.WithSeed(seed)}, opts...)...)
	nw.Register("timesrv", timesrv.Program(16))
	nw.MustAddNode(1)
	nw.MustBoot(1, "timesrv")
	for i, mid := range ring {
		left := ring[(i-1+len(ring))%len(ring)]
		name := fmt.Sprintf("phil%d", i)
		nw.Register(name, philo.Philosopher(left, 0, 50*time.Millisecond, 30*time.Millisecond, nil))
		nw.MustAddNode(mid)
		nw.MustBoot(mid, name)
	}
	nw.Register("detector", philo.Detector(ring, 200*time.Millisecond, nil))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	nw.At(28*time.Second, func() {
		for _, m := range []soda.MID{7, 2, 3, 4, 5, 6, 1} {
			nw.Node(m).Die()
		}
	})
	if err := nw.Run(32 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	return nw
}

// TestTraceExportIsByteDeterministic: same seed + same fault plan ⇒
// byte-identical Chrome trace export across two runs.
func TestTraceExportIsByteDeterministic(t *testing.T) {
	export := func() []byte {
		tr := obs.NewTracer()
		runPhilo(t, 42, soda.WithFaultPlan(philoPlan()), soda.WithTracer(tr))
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("export: %v", err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace exports differ: %d vs %d bytes", len(a), len(b))
	}
}

// TestTracerDoesNotPerturbTheRun: attaching the full observability stack
// must leave the bus traffic bit-identical to a bare run (zero-overhead
// contract — observation never changes behavior).
func TestTracerDoesNotPerturbTheRun(t *testing.T) {
	run := func(opts ...soda.Option) (uint64, uint64) {
		h := fnv.New64a()
		ring := []soda.MID{2, 3, 4, 5, 6}
		nw := soda.NewNetwork(append([]soda.Option{soda.WithSeed(9), soda.WithLoss(0.05)}, opts...)...)
		nw.Trace(h)
		nw.Register("timesrv", timesrv.Program(16))
		nw.MustAddNode(1)
		nw.MustBoot(1, "timesrv")
		for i, mid := range ring {
			left := ring[(i-1+len(ring))%len(ring)]
			name := fmt.Sprintf("phil%d", i)
			nw.Register(name, philo.Philosopher(left, 0, 50*time.Millisecond, 30*time.Millisecond, nil))
			nw.MustAddNode(mid)
			nw.MustBoot(mid, name)
		}
		if err := nw.Run(5 * time.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return h.Sum64(), nw.Stats().FramesSent
	}
	bareHash, bareFrames := run()
	obsHash, obsFrames := run(
		soda.WithTracer(obs.NewTracerWith(obs.TraceConfig{Wire: true})),
		soda.WithMetrics(obs.NewRegistry()))
	if bareFrames == 0 {
		t.Fatal("no frames sent")
	}
	if bareHash != obsHash || bareFrames != obsFrames {
		t.Fatalf("observability perturbed the run: hash %x/%x frames %d/%d",
			bareHash, obsHash, bareFrames, obsFrames)
	}
}

// TestSpansAreCompleteAndCausal: on a drained fault-free run every issued
// REQUEST yields a span whose hops exist and are causally ordered.
func TestSpansAreCompleteAndCausal(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	runPhilo(t, 1, soda.WithTracer(tr), soda.WithMetrics(reg))
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans assembled")
	}
	complete := 0
	for _, s := range spans {
		if !s.Done {
			continue // killed mid-flight at the 28s cutoff
		}
		complete++
		if s.End < s.Issue {
			t.Errorf("span %v: end %v before issue %v", s.Sig, s.End, s.Issue)
		}
		if s.HasArrival {
			if !s.HasWireArrival {
				t.Errorf("span %v: handler arrival without wire arrival", s.Sig)
			} else if s.Arrival < s.WireArrival {
				t.Errorf("span %v: arrival %v before wire %v", s.Sig, s.Arrival, s.WireArrival)
			}
			if s.WireArrival < s.Issue {
				t.Errorf("span %v: wire arrival %v before issue %v", s.Sig, s.WireArrival, s.Issue)
			}
		}
		if s.HasAccept && s.Accept < s.Arrival {
			t.Errorf("span %v: accept %v before arrival %v", s.Sig, s.Accept, s.Arrival)
		}
	}
	if complete == 0 {
		t.Fatal("no span ever completed")
	}
	// The registry must agree with the tracer on the request population.
	sum := reg.Summary(obs.PrimRequest)
	if sum.Count == 0 {
		t.Fatal("registry recorded no REQUEST latencies")
	}
	if sum.P50US > sum.P99US || sum.MinUS > sum.MaxUS || sum.MaxUS < sum.MeanUS {
		t.Errorf("inconsistent summary: %+v", sum)
	}
}

// TestChromeTraceIsWellFormed: the export parses as the Chrome trace-event
// JSON object format with one paired async begin/end per request span.
func TestChromeTraceIsWellFormed(t *testing.T) {
	tr := obs.NewTracer()
	runPhilo(t, 3, soda.WithTracer(tr))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	begins, ends := map[string]int{}, map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			begins[ev.ID]++
		case "e":
			ends[ev.ID]++
		case "M", "n", "i", "X":
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.TS < 0 {
			t.Errorf("negative timestamp on %q", ev.Name)
		}
	}
	if len(begins) != len(tr.Spans()) {
		t.Errorf("%d begin ids for %d spans", len(begins), len(tr.Spans()))
	}
	for id, n := range begins {
		if n != 1 || ends[id] != 1 {
			t.Errorf("span %s: %d begins, %d ends; want exactly 1/1", id, n, ends[id])
		}
	}
}

// TestMetricsSeeRetransmissionsUnderLoss: a lossy run must surface
// transport recovery in both the registry and the bus counters.
func TestMetricsSeeRetransmissionsUnderLoss(t *testing.T) {
	reg := obs.NewRegistry()
	nw := runPhilo(t, 5, soda.WithLoss(0.15), soda.WithMetrics(reg))
	st := nw.Stats()
	if st.Retransmissions == 0 {
		t.Error("bus counted no retransmissions at 15% loss")
	}
	var retrans, acks uint64
	for _, nc := range reg.Nodes() {
		retrans += nc.Retransmits
		acks += nc.AcksRx
	}
	if retrans != st.Retransmissions {
		t.Errorf("registry retransmits %d != bus counter %d", retrans, st.Retransmissions)
	}
	if acks == 0 {
		t.Error("no acknowledgements observed")
	}
	var piggy uint64
	for _, nc := range reg.Nodes() {
		piggy += nc.PiggybackAcks
	}
	if piggy != st.PiggybackedAcks {
		t.Errorf("registry piggybacks %d != bus counter %d", piggy, st.PiggybackedAcks)
	}
}

// TestProfileExport: Network.Profile round-trips through JSON with the
// expected content, deterministically.
func TestProfileExport(t *testing.T) {
	export := func() []byte {
		reg := obs.NewRegistry()
		nw := runPhilo(t, 8, soda.WithMetrics(reg))
		p := nw.Profile("philosophers")
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("profile export not deterministic")
	}
	var p obs.Profile
	if err := json.Unmarshal(a, &p); err != nil {
		t.Fatalf("profile is not valid JSON: %v", err)
	}
	if p.Scenario != "philosophers" || p.VirtualUS <= 0 {
		t.Errorf("profile header wrong: %+v", p)
	}
	if p.Primitives[obs.PrimRequest].Count == 0 {
		t.Error("profile carries no REQUEST digest")
	}
	if p.Bus == nil || p.Bus.FramesSent == 0 {
		t.Error("profile carries no bus counters")
	}
}

package soda_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"
	"time"

	"soda"
	"soda/faults"
	"soda/obs"
)

// The parallel determinism battery: every test here runs the same seeded
// scenario under the sequential scheduler and under WithParallelSim, and
// requires byte-identical artifacts — trace bytes, observability profiles,
// invariant verdicts. Parallelism must be a pure wall-clock optimization.

// parTopology is the battery's internetwork: a four-segment star whose
// positive ForwardDelay is the conservative lookahead.
func parTopology() soda.Topology {
	topo := soda.StarTopology(4)
	topo.ForwardDelay = 2 * time.Millisecond
	return topo
}

// parChaosPlan arms one fault of every routing class the parallel scheduler
// distinguishes: segment-scoped window events (judged on the owning shard),
// node crash/reboot (scheduled into the owning shard's windows), and
// gateway chaos (global kernel, exclusive steps).
func parChaosPlan() faults.Plan {
	seg1, seg2 := 1, 2
	return faults.Plan{Events: []faults.Event{
		{Kind: faults.Loss, Segment: &seg1, Prob: 0.2,
			Start: faults.Duration(2 * time.Second), Stop: faults.Duration(5 * time.Second)},
		{Kind: faults.Delay, Segment: &seg2,
			Delay: faults.Duration(500 * time.Microsecond), Jitter: faults.Duration(300 * time.Microsecond),
			Start: faults.Duration(time.Second), Stop: faults.Duration(6 * time.Second)},
		{Kind: faults.Crash, Node: 3, Start: faults.Duration(3 * time.Second)},
		{Kind: faults.Reboot, Node: 3, Program: "echo", Start: faults.Duration(6 * time.Second)},
		{Kind: faults.GatewayCrash, Gateway: 2, Start: faults.Duration(4 * time.Second)},
		{Kind: faults.GatewayReboot, Gateway: 2, Start: faults.Duration(5 * time.Second)},
	}}
}

// parArtifacts is everything a run must reproduce byte for byte.
type parArtifacts struct {
	trace      string
	profile    string
	violations []string
	unresolved int
	stats      soda.ParStats
}

// runSegmentedChaos executes the battery scenario — 12 nodes over four
// segments, echo servers plus request loops, under the chaos plan with the
// checker, tracer and metrics all attached — and collects its artifacts.
func runSegmentedChaos(t *testing.T, extra ...soda.Option) parArtifacts {
	t.Helper()
	opts := append([]soda.Option{
		soda.WithSeed(11),
		soda.WithTopology(parTopology()),
		soda.WithFaultPlan(parChaosPlan()),
		soda.WithInvariantChecks(),
		soda.WithMetrics(obs.NewRegistry()),
		soda.WithTracer(obs.NewTracer()),
	}, extra...)
	nw := soda.NewNetwork(opts...)
	var trace bytes.Buffer
	nw.Trace(&trace)
	nw.Register("echo", echo("hub"))
	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			for i := 0; ; i++ {
				if srv, ok := c.Discover(pattern); ok {
					c.BExchange(srv, soda.OK, []byte(fmt.Sprintf("m%d", i)), 64)
				}
				c.Hold(120 * time.Millisecond)
			}
		},
	})
	for mid := 1; mid <= 12; mid++ {
		nw.MustAddNode(soda.MID(mid))
	}
	for mid := 1; mid <= 4; mid++ {
		nw.MustBoot(soda.MID(mid), "echo")
	}
	for mid := 5; mid <= 12; mid++ {
		nw.MustBoot(soda.MID(mid), "driver")
	}
	if err := nw.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	prof, err := json.Marshal(nw.Profile("par-battery"))
	if err != nil {
		t.Fatal(err)
	}
	ch := nw.Invariants()
	return parArtifacts{
		trace:      trace.String(),
		profile:    string(prof),
		violations: ch.Finish(),
		unresolved: len(ch.Unresolved()),
		stats:      nw.ParStats(),
	}
}

// firstDiff renders the first line where two multi-line strings diverge.
func firstDiff(a, b string) string {
	al, bl := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  seq: %s\n  par: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: seq %d lines, par %d lines", len(al), len(bl))
}

// parChaosTraceHash pins the FNV-64a hash of the battery scenario's trace,
// recorded under the sequential hierarchical timer-wheel scheduler — the
// same discipline exampleOutputHashes uses for the examples. The parallel
// scheduler must replay this exact golden for every worker count: a
// divergence here that TestParallelMatchesSequentialChaos misses means the
// SEQUENTIAL scheduler moved, i.e. parallelism support itself perturbed the
// wire. Re-record only with an intentional ordering change.
const parChaosTraceHash uint64 = 0xae8eba29c43cd2f9

// TestParallelGoldenReplay is the differential golden gate: sequential and
// parallel runs must both reproduce the pinned timer-wheel-era trace hash,
// so the scheduler refactor is provably invisible end to end.
func TestParallelGoldenReplay(t *testing.T) {
	hash := func(s string) uint64 {
		h := fnv.New64a()
		h.Write([]byte(s))
		return h.Sum64()
	}
	seq := runSegmentedChaos(t)
	if got := hash(seq.trace); got != parChaosTraceHash {
		t.Fatalf("sequential trace hash = %#x, want golden %#x — the sequential scheduler itself moved; if intentional, re-record",
			got, parChaosTraceHash)
	}
	for _, workers := range []int{2, 8} {
		par := runSegmentedChaos(t, soda.WithParallelSim(workers))
		if got := hash(par.trace); got != parChaosTraceHash {
			t.Fatalf("workers=%d: trace hash = %#x, want golden %#x\nfirst divergence from sequential: %s",
				workers, got, parChaosTraceHash, firstDiff(seq.trace, par.trace))
		}
	}
}

// TestParallelMatchesSequentialChaos is the tentpole determinism gate: the
// chaos scenario's trace, profile and invariant verdict must be
// byte-identical across worker counts and dispatch shuffles.
func TestParallelMatchesSequentialChaos(t *testing.T) {
	seq := runSegmentedChaos(t)
	if seq.trace == "" {
		t.Fatal("sequential run produced no trace; comparison would prove nothing")
	}
	if seq.stats != (soda.ParStats{}) {
		t.Fatalf("sequential run reports parallel stats: %+v", seq.stats)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, shuffle := range []int64{0, 42} {
			if workers == 1 && shuffle != 0 {
				continue
			}
			name := fmt.Sprintf("workers=%d shuffle=%d", workers, shuffle)
			par := runSegmentedChaos(t,
				soda.WithParallelSim(workers), soda.WithParallelShuffle(shuffle))
			if par.trace != seq.trace {
				t.Fatalf("%s: trace diverged at %s", name, firstDiff(seq.trace, par.trace))
			}
			if par.profile != seq.profile {
				t.Fatalf("%s: profile diverged at %s", name, firstDiff(seq.profile, par.profile))
			}
			if !reflect.DeepEqual(par.violations, seq.violations) || par.unresolved != seq.unresolved {
				t.Fatalf("%s: invariant verdict diverged: %v/%d vs %v/%d",
					name, par.violations, par.unresolved, seq.violations, seq.unresolved)
			}
			if workers == 1 {
				continue // sequential execution path; no coordinator stats
			}
			st := par.stats
			if st.FallbackSequential {
				t.Fatalf("%s: fell back to sequential", name)
			}
			if st.Windows == 0 || st.Committed == 0 || st.Staged == 0 || st.GatedOps == 0 {
				t.Fatalf("%s: parallel machinery inert: %+v", name, st)
			}
			if st.ExclusiveSteps == 0 {
				t.Fatalf("%s: gateway chaos should have forced exclusive steps: %+v", name, st)
			}
		}
	}
}

package sodal

import (
	"soda"
	"soda/internal/sortediter"
)

// EntryFunc services a request arrival on one entry pattern.
type EntryFunc func(c *soda.Client, ev soda.Event)

// Dispatcher is the SODAL "case ENTRY of … / case COMPLETION of …"
// construct (§4.1.4.1): arrivals dispatch on the invoked pattern (the
// entry), completions on the transaction id. Register the cases, then call
// Handle from the program handler.
type Dispatcher struct {
	entries   map[soda.Pattern]EntryFunc
	otherwise EntryFunc
}

// NewDispatcher creates an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{entries: make(map[soda.Pattern]EntryFunc)}
}

// Entry binds fn to arrivals on pattern (a `pattern_k: begin … end` case).
// It returns the dispatcher for chaining.
func (d *Dispatcher) Entry(pattern soda.Pattern, fn EntryFunc) *Dispatcher {
	d.entries[pattern] = fn
	return d
}

// Otherwise binds the OTHERWISE arrival case.
func (d *Dispatcher) Otherwise(fn EntryFunc) *Dispatcher {
	d.otherwise = fn
	return d
}

// Handle routes one handler invocation. Completions are routed through the
// runtime's OnCompletion registrations (SODAL's COMPLETION cases are per
// transaction id, which is exactly what Client.OnCompletion provides), so
// Handle only dispatches arrivals; it reports whether the event was
// consumed. Unmatched arrivals with no OTHERWISE case are REJECTed — a
// pattern that reaches the handler was advertised, so silence would strand
// the requester.
func (d *Dispatcher) Handle(c *soda.Client, ev soda.Event) bool {
	if ev.Kind != soda.EventRequestArrival {
		return false
	}
	if fn, ok := d.entries[ev.Pattern]; ok {
		fn(c, ev)
		return true
	}
	if d.otherwise != nil {
		d.otherwise(c, ev)
		return true
	}
	c.RejectCurrent()
	return true
}

// Advertise advertises every registered entry pattern (convenience for the
// Init section).
func (d *Dispatcher) Advertise(c *soda.Client) error {
	// Advertise in sorted order: the §5.4 pattern table resolves collisions
	// last-writer-wins, so advertise order is observable.
	for _, p := range sortediter.Keys(d.entries) {
		if err := c.Advertise(p); err != nil {
			return err
		}
	}
	return nil
}

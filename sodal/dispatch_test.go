package sodal

import (
	"testing"
	"time"

	"soda"
)

var (
	patA = soda.WellKnownPattern(0o11)
	patB = soda.WellKnownPattern(0o12)
	patC = soda.WellKnownPattern(0o13)
)

func TestDispatcherRoutesByEntry(t *testing.T) {
	nw := soda.NewNetwork()
	var hits []string
	nw.Register("server", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			d := NewDispatcher().
				Entry(patA, func(c *soda.Client, ev soda.Event) {
					hits = append(hits, "A")
					c.AcceptCurrentSignal(soda.OK)
				}).
				Entry(patB, func(c *soda.Client, ev soda.Event) {
					hits = append(hits, "B")
					c.AcceptCurrentSignal(soda.OK)
				})
			if err := d.Advertise(c); err != nil {
				panic(err)
			}
			// patC is advertised but has no case: OTHERWISE-less reject.
			if err := c.Advertise(patC); err != nil {
				panic(err)
			}
			c.SetStash(d)
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			c.Stash().(*Dispatcher).Handle(c, ev)
		},
	})
	var stB, stC soda.Status
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			c.BSignal(soda.ServerSig{MID: 1, Pattern: patA}, soda.OK)
			stB = c.BSignal(soda.ServerSig{MID: 1, Pattern: patB}, soda.OK).Status
			stC = c.BSignal(soda.ServerSig{MID: 1, Pattern: patC}, soda.OK).Status
			c.BSignal(soda.ServerSig{MID: 1, Pattern: patA}, soda.OK)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0] != "A" || hits[1] != "B" || hits[2] != "A" {
		t.Fatalf("hits = %v", hits)
	}
	if stB != soda.StatusSuccess {
		t.Fatalf("patB status = %v", stB)
	}
	if stC != soda.StatusRejected {
		t.Fatalf("patC status = %v, want REJECTED (no case, no OTHERWISE)", stC)
	}
}

func TestDispatcherOtherwise(t *testing.T) {
	nw := soda.NewNetwork()
	var otherPattern soda.Pattern
	nw.Register("server", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			d := NewDispatcher().Otherwise(func(c *soda.Client, ev soda.Event) {
				otherPattern = ev.Pattern
				c.AcceptCurrentSignal(soda.OK)
			})
			if err := c.Advertise(patC); err != nil {
				panic(err)
			}
			c.SetStash(d)
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			c.Stash().(*Dispatcher).Handle(c, ev)
		},
	})
	var st soda.Status
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			st = c.BSignal(soda.ServerSig{MID: 1, Pattern: patC}, soda.OK).Status
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st != soda.StatusSuccess || otherPattern != patC {
		t.Fatalf("st=%v pattern=%v", st, otherPattern)
	}
}

package sodal

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](3)
	for i := 1; i <= 3; i++ {
		if !q.EnQueue(i) {
			t.Fatalf("EnQueue(%d) failed", i)
		}
	}
	if q.EnQueue(4) {
		t.Fatal("EnQueue succeeded on a full queue")
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.DeQueue()
		if !ok || v != i {
			t.Fatalf("DeQueue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.DeQueue(); ok {
		t.Fatal("DeQueue succeeded on an empty queue")
	}
}

func TestQueuePredicates(t *testing.T) {
	q := NewQueue[string](2)
	if !q.IsEmpty() || q.IsFull() || q.AlmostEmpty() {
		t.Fatalf("empty queue predicates wrong: %+v", q)
	}
	q.EnQueue("a")
	if !q.AlmostEmpty() || !q.AlmostFull() {
		t.Fatal("one-element predicates wrong for capacity 2")
	}
	q.EnQueue("b")
	if !q.IsFull() || q.AlmostFull() {
		t.Fatal("full queue predicates wrong")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue[int](4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !q.EnQueue(round*10 + i) {
				t.Fatal("EnQueue failed below capacity")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.DeQueue()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: DeQueue = (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue[int](2)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek of empty queue succeeded")
	}
	q.EnQueue(7)
	if v, ok := q.Peek(); !ok || v != 7 {
		t.Fatalf("Peek = (%d,%v)", v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed the element")
	}
}

func TestMustDeQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDeQueue of empty queue did not panic")
		}
	}()
	NewQueue[int](1).MustDeQueue()
}

func TestZeroCapacityClamped(t *testing.T) {
	q := NewQueue[int](0)
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", q.Cap())
	}
}

// TestQueueModelProperty compares the ring buffer against a slice model
// under arbitrary operation sequences.
func TestQueueModelProperty(t *testing.T) {
	f := func(capacity uint8, ops []int16) bool {
		capn := int(capacity%16) + 1
		q := NewQueue[int16](capn)
		var model []int16
		for _, op := range ops {
			if op >= 0 { // enqueue op
				got := q.EnQueue(op)
				want := len(model) < capn
				if got != want {
					return false
				}
				if want {
					model = append(model, op)
				}
			} else { // dequeue
				v, ok := q.DeQueue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package sodal provides the runtime library of SODAL, the thesis's
// programming language for SODA (§4.1): the bounded QUEUE type with its six
// operations (§4.1.4), and helpers that mirror SODAL's conveniences.
// Because SODA's kernel is bufferless (§6.13), virtually every server
// program queues requester signatures itself; this package is that idiom,
// packaged.
package sodal

// Queue is the SODAL bounded queue: `var q : QUEUE [n] of T` (§4.1.4).
// A Queue must be created with NewQueue.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
}

// NewQueue creates a queue holding at most capacity elements.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Queue[T]{buf: make([]T, capacity)}
}

// Cap reports the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// EnQueue inserts v at the end of the queue; it reports false when full.
func (q *Queue[T]) EnQueue(v T) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	return true
}

// DeQueue removes and returns the element at the head; ok is false when
// the queue is empty.
func (q *Queue[T]) DeQueue() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// MustDeQueue is DeQueue, panicking on an empty queue — the SODAL
// operation "raises an exception if queue empty" (§4.1.4).
func (q *Queue[T]) MustDeQueue() T {
	v, ok := q.DeQueue()
	if !ok {
		panic("sodal: DeQueue of empty queue")
	}
	return v
}

// Peek returns the head element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// IsEmpty reports whether the queue holds no elements.
func (q *Queue[T]) IsEmpty() bool { return q.n == 0 }

// IsFull reports whether the queue can hold no more elements.
func (q *Queue[T]) IsFull() bool { return q.n == len(q.buf) }

// AlmostEmpty reports whether the queue has a single element left (§4.1.4).
func (q *Queue[T]) AlmostEmpty() bool { return q.n == 1 }

// AlmostFull reports whether the queue can hold exactly one more item
// (§4.1.4).
func (q *Queue[T]) AlmostFull() bool { return q.n == len(q.buf)-1 }

// Package links implements virtual circuits over SODA (§4.2.4): logical
// communication channels whose ends can be MOVED to another client
// transparently to the process at the other end.
//
// A link end is a table entry holding the signature of the opposite end; a
// client sends on a link by id instead of by server signature. The moving
// protocol follows the thesis's listing: the end that wants to move must be
// MASTER (a SLAVE first asks to become MASTER with a −1 request), the new
// holder installs a fresh end via the LINK_SERVICE entry (an EXCHANGE), the
// stationary end is told the new address with a −2 message, and a −3 signal
// finally marks the moved end usable. Requests that race with a move are
// REJECTED and reissued once the table is updated.
package links

import (
	"encoding/binary"
	"fmt"
	"time"

	"soda"
)

// ServicePattern is the well-known LINK_SERVICE entry every link-capable
// client advertises.
var ServicePattern = soda.WellKnownPattern(0o4114)

// Control arguments used on link patterns (§4.2.4). User traffic must use
// non-negative arguments.
const (
	argBecomeMaster int32 = -1
	argLinkMoved    int32 = -2
	argInstalled    int32 = -3

	// RejectedMoving is the accept argument used to reject a request that
	// raced with a link move; the requester retries after its table
	// updates. Distinct from a user REJECT (−1).
	RejectedMoving int32 = -100
)

// End distinguishes the two ends of a link.
type End int

const (
	// Master may move its end of the link.
	Master End = iota + 1
	// Slave must first become Master to move (§4.2.4).
	Slave
)

func (e End) String() string {
	if e == Master {
		return "MASTER"
	}
	return "SLAVE"
}

// entry is one link-table row.
type entry struct {
	id        int
	peerMID   soda.MID
	peerPatt  soda.Pattern
	myPatt    soda.Pattern
	state     End
	installed bool
	moving    bool
	wantMove  []soda.RequesterSig // peers queued asking to become master
	gen       int                 // bumped on peer address updates
}

// MessageHandler consumes user traffic arriving on a link. It runs in
// handler context; it must complete the request (Accept/Reject) using the
// usual client primitives with ev.Asker.
type MessageHandler func(c *soda.Client, linkID int, ev soda.Event)

// Manager is the per-client link runtime. Create it in the program's Init,
// route every handler event through HandleEvent, and use Send/Move/Destroy
// from the task.
type Manager struct {
	c           *soda.Client
	onMsg       MessageHandler
	onInstalled func(linkID int, peer soda.MID)
	table       map[int]*entry
	byPatt      map[soda.Pattern]*entry
	nextID      int
	retryIn     time.Duration
}

// New creates the link runtime and advertises LINK_SERVICE.
func New(c *soda.Client, onMsg MessageHandler) (*Manager, error) {
	m := &Manager{
		c:       c,
		onMsg:   onMsg,
		table:   make(map[int]*entry),
		byPatt:  make(map[soda.Pattern]*entry),
		retryIn: 10 * time.Millisecond,
	}
	if err := c.Advertise(ServicePattern); err != nil {
		return nil, err
	}
	return m, nil
}

// Client returns the owning client.
func (m *Manager) Client() *soda.Client { return m.c }

// Peer reports the current remote machine of a link (tests, tracing).
func (m *Manager) Peer(linkID int) (soda.MID, bool) {
	e, ok := m.table[linkID]
	if !ok {
		return 0, false
	}
	return e.peerMID, true
}

// State reports which end of the link this client holds.
func (m *Manager) State(linkID int) (End, bool) {
	e, ok := m.table[linkID]
	if !ok {
		return 0, false
	}
	return e.state, true
}

func (m *Manager) newEntry(peer soda.MID, peerPatt soda.Pattern, state End, installed bool) (*entry, error) {
	patt, err := m.c.AdvertiseUnique()
	if err != nil {
		return nil, err
	}
	m.nextID++
	e := &entry{
		id:        m.nextID,
		peerMID:   peer,
		peerPatt:  peerPatt,
		myPatt:    patt,
		state:     state,
		installed: installed,
	}
	m.table[e.id] = e
	m.byPatt[patt] = e
	return e, nil
}

func (m *Manager) drop(e *entry) {
	delete(m.table, e.id)
	delete(m.byPatt, e.myPatt)
	_ = m.c.Unadvertise(e.myPatt)
}

// Install payload kinds: a fresh Connect vs a moved-in end (the latter
// stays BEING_INSTALLED until the −3 signal, §4.2.4).
const (
	installConnect byte = iota + 1
	installMove
)

// sigBytes encodes ⟨MID, pattern⟩ for the install and moved messages.
func sigBytes(mid soda.MID, patt soda.Pattern) []byte {
	b := make([]byte, 10)
	binary.BigEndian.PutUint16(b, uint16(mid))
	binary.BigEndian.PutUint64(b[2:], uint64(patt))
	return b
}

func installBytes(kind byte, mid soda.MID, patt soda.Pattern) []byte {
	return append([]byte{kind}, sigBytes(mid, patt)...)
}

func parseInstall(b []byte) (kind byte, mid soda.MID, patt soda.Pattern, ok bool) {
	if len(b) != 11 {
		return 0, 0, 0, false
	}
	mid, patt, ok = parseSig(b[1:])
	return b[0], mid, patt, ok
}

func parseSig(b []byte) (soda.MID, soda.Pattern, bool) {
	if len(b) != 10 {
		return 0, 0, false
	}
	return soda.MID(binary.BigEndian.Uint16(b)), soda.Pattern(binary.BigEndian.Uint64(b[2:])), true
}

// Connect establishes a fresh link to the LINK_SERVICE of peer. The caller
// holds the SLAVE end; the peer installs the MASTER end (§4.2.4). Task-only.
func (m *Manager) Connect(peer soda.MID) (int, error) {
	e, err := m.newEntry(peer, 0, Slave, true)
	if err != nil {
		return 0, err
	}
	res := m.c.BExchange(soda.ServerSig{MID: peer, Pattern: ServicePattern}, soda.OK,
		installBytes(installConnect, m.c.MID(), e.myPatt), 10)
	if res.Status != soda.StatusSuccess {
		m.drop(e)
		return 0, fmt.Errorf("links: connect to %d: %v", peer, res.Status)
	}
	pm, pp, ok := parseSig(res.Data)
	if !ok {
		m.drop(e)
		return 0, fmt.Errorf("links: connect to %d: malformed install reply", peer)
	}
	e.peerMID, e.peerPatt = pm, pp
	return e.id, nil
}

// Send issues user traffic (an EXCHANGE) over a link, transparently
// reissuing requests REJECTED by a concurrent link move (§4.2.4). arg must
// be non-negative. Task-only.
func (m *Manager) Send(linkID int, arg int32, put []byte, getSize int) soda.CallResult {
	if arg < 0 {
		panic("links: user traffic must use non-negative arguments")
	}
	for {
		e, ok := m.table[linkID]
		if !ok {
			return soda.CallResult{Status: soda.StatusCancelled}
		}
		m.c.WaitUntil(func() bool { return e.installed && !e.moving })
		gen := e.gen
		res := m.c.BExchange(soda.ServerSig{MID: e.peerMID, Pattern: e.peerPatt}, arg, put, getSize)
		switch {
		case res.Status == soda.StatusRejected && res.Arg == RejectedMoving:
			// The remote end is mid-move; wait for the −2 update (or
			// just a beat) and reissue.
			m.awaitUpdate(e, gen)
		case res.Status == soda.StatusUnadvertised:
			// The end moved away and its pattern is gone before our −2
			// arrived; wait for the table update, then reissue.
			m.awaitUpdate(e, gen)
		default:
			return res
		}
	}
}

// awaitUpdate gives the −2 table update a chance to arrive before a
// rejected request is reissued; the handler runs during the hold. The
// generation is advisory — if no update lands we retry against the old
// address and go around again.
func (m *Manager) awaitUpdate(e *entry, gen int) {
	_ = gen
	m.c.Hold(m.retryIn)
}

// Move transfers this client's end of link linkID to the client at the far
// side of via (a link to the new holder), following the thesis's LINKMOVE.
// The moved link keeps its id at the stationary end; this client's entry is
// destroyed. Task-only.
func (m *Manager) Move(linkID, via int) error {
	e, ok := m.table[linkID]
	if !ok {
		return fmt.Errorf("links: move: unknown link %d", linkID)
	}
	carrier, ok := m.table[via]
	if !ok {
		return fmt.Errorf("links: move: unknown carrier link %d", via)
	}
	e.moving = true
	defer func() { e.moving = false }()
	if err := m.becomeMaster(e); err != nil {
		return err
	}
	// Install the new MASTER end at the new holder (LINK_SERVICE
	// EXCHANGE carrying the stationary end's signature).
	res := m.c.BExchange(soda.ServerSig{MID: carrier.peerMID, Pattern: ServicePattern}, soda.OK,
		installBytes(installMove, e.peerMID, e.peerPatt), 10)
	if res.Status != soda.StatusSuccess {
		return fmt.Errorf("links: move install: %v", res.Status)
	}
	newMID, newPatt, ok := parseSig(res.Data)
	if !ok {
		return fmt.Errorf("links: move install: malformed reply")
	}
	// Tell the stationary end its partner moved (−2) so it updates its
	// table and reissues rejected requests.
	if res := m.c.BPut(soda.ServerSig{MID: e.peerMID, Pattern: e.peerPatt}, argLinkMoved,
		sigBytes(newMID, newPatt)); res.Status != soda.StatusSuccess {
		return fmt.Errorf("links: move notify: %v", res.Status)
	}
	// Tell the new holder the slave side is updated (−3).
	if res := m.c.BSignal(soda.ServerSig{MID: newMID, Pattern: newPatt}, argInstalled); res.Status != soda.StatusSuccess {
		return fmt.Errorf("links: move finalize: %v", res.Status)
	}
	// Anyone queued asking to become master retries against the new end.
	for _, w := range e.wantMove {
		m.c.Accept(w, RejectedMoving, nil, 0)
	}
	m.drop(e)
	return nil
}

// becomeMaster upgrades a SLAVE end (−1 request; §4.2.4).
func (m *Manager) becomeMaster(e *entry) error {
	for e.state == Slave {
		res := m.c.BGet(soda.ServerSig{MID: e.peerMID, Pattern: e.peerPatt}, argBecomeMaster, 1)
		switch {
		case res.Status == soda.StatusSuccess:
			e.state = Master
		case res.Status == soda.StatusRejected:
			// The master end is itself moving; wait for the update and
			// ask again.
			m.awaitUpdate(e, e.gen)
		default:
			return fmt.Errorf("links: become master: %v", res.Status)
		}
	}
	return nil
}

// Destroy tears down this end of a link; the peer learns on its next send
// (UNADVERTISED → the manager reports the link cancelled).
func (m *Manager) Destroy(linkID int) {
	if e, ok := m.table[linkID]; ok {
		m.drop(e)
	}
}

// HandleEvent routes a handler invocation through the link runtime. It
// reports true when the event was consumed (link control traffic or user
// traffic on a link pattern); programs pass every event here first.
func (m *Manager) HandleEvent(ev soda.Event) bool {
	if ev.Kind != soda.EventRequestArrival {
		return false
	}
	if ev.Pattern == ServicePattern {
		m.handleInstall(ev)
		return true
	}
	e, ok := m.byPatt[ev.Pattern]
	if !ok {
		return false
	}
	switch {
	case ev.Arg >= 0:
		if e.moving {
			// Requests to a moving link are rejected and reissued once
			// the move completes (§4.2.4).
			m.c.Accept(ev.Asker, RejectedMoving, nil, 0)
			return true
		}
		if m.onMsg != nil {
			m.onMsg(m.c, e.id, ev)
		} else {
			m.c.RejectCurrent()
		}
	case ev.Arg == argBecomeMaster:
		if e.moving {
			m.c.Accept(ev.Asker, RejectedMoving, nil, 0)
			return true
		}
		// Grant mastership: we become the SLAVE end.
		e.state = Slave
		m.c.AcceptGet(ev.Asker, soda.OK, []byte{1})
	case ev.Arg == argLinkMoved:
		res := m.c.AcceptPut(ev.Asker, soda.OK, ev.PutSize)
		if res.Status != soda.AcceptSuccess {
			return true
		}
		if nm, np, ok := parseSig(res.Data); ok {
			e.peerMID, e.peerPatt = nm, np
			e.gen++
		}
	case ev.Arg == argInstalled:
		m.c.AcceptSignal(ev.Asker, soda.OK)
		e.installed = true
		e.gen++
	default:
		m.c.RejectCurrent()
	}
	return true
}

// handleInstall services a LINK_SERVICE EXCHANGE: create a new MASTER end
// whose partner is the signature carried in the request, reply with our new
// end's signature (§4.2.4). A moved-in end starts BEING_INSTALLED: usable
// for receiving, but sends wait for the −3 signal.
func (m *Manager) handleInstall(ev soda.Event) {
	e, err := m.newEntry(0, 0, Master, false)
	if err != nil {
		m.c.RejectCurrent()
		return
	}
	res := m.c.AcceptExchange(ev.Asker, soda.OK, sigBytes(m.c.MID(), e.myPatt), ev.PutSize)
	if res.Status != soda.AcceptSuccess {
		m.drop(e)
		return
	}
	kind, pm, pp, ok := parseInstall(res.Data)
	if !ok {
		m.drop(e)
		return
	}
	e.peerMID, e.peerPatt = pm, pp
	if kind == installConnect {
		// A direct Connect: the far end is immediately usable. A moved
		// end waits for the −3 signal (BEING_INSTALLED, §4.2.4).
		e.installed = true
	}
	if m.onInstalled != nil {
		m.onInstalled(e.id, pm)
	}
}

// OnInstalled registers a callback invoked in handler context whenever a
// remote party installs a link end here (the result of a peer's Connect or
// Move). It receives the new local link id and the partner's MID.
func (m *Manager) OnInstalled(fn func(linkID int, peer soda.MID)) { m.onInstalled = fn }

package links

import (
	"fmt"
	"testing"
	"time"

	"soda"
)

// linkNode builds a link-capable program whose user traffic handler echoes
// "<mid>:<payload>" and whose task runs fn once the manager is ready.
func linkNode(mgrs map[soda.MID]*Manager, fn func(c *soda.Client, m *Manager)) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			m, err := New(c, func(c *soda.Client, linkID int, ev soda.Event) {
				reply := []byte(fmt.Sprintf("%d:%d", c.MID(), ev.Arg))
				c.AcceptCurrentExchange(soda.OK, reply, ev.PutSize)
			})
			if err != nil {
				panic(err)
			}
			mgrs[c.MID()] = m
			c.SetStash(m)
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			m := c.Stash().(*Manager)
			m.HandleEvent(ev)
		},
		Task: func(c *soda.Client) {
			m := c.Stash().(*Manager)
			if fn != nil {
				fn(c, m)
			}
			c.WaitUntil(func() bool { return false })
		},
	}
}

func TestConnectAndSend(t *testing.T) {
	nw := soda.NewNetwork()
	mgrs := map[soda.MID]*Manager{}
	var got string
	nw.Register("peer", linkNode(mgrs, nil))
	nw.Register("origin", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		id, err := m.Connect(2)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		res := m.Send(id, 7, []byte("ping"), 32)
		if res.Status != soda.StatusSuccess {
			t.Errorf("send: %v", res.Status)
			return
		}
		got = string(res.Data)
	}))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(2, "peer")
	nw.MustBoot(1, "origin")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != "2:7" {
		t.Fatalf("reply = %q, want 2:7", got)
	}
	// Roles per §4.2.4: the installer holds MASTER, the initiator SLAVE.
	if st, _ := mgrs[1].State(1); st != Slave {
		t.Fatalf("initiator state = %v, want SLAVE", st)
	}
}

func TestMoveTransparentToFarEnd(t *testing.T) {
	// Node 1 (origin) has a link to node 2 (mover). Node 2 moves its end
	// to node 3 over a second link. Node 1 keeps sending on the same link
	// id throughout; after the move its messages are answered by node 3.
	nw := soda.NewNetwork()
	mgrs := map[soda.MID]*Manager{}
	var answers []string
	moved := false

	nw.Register("origin", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		id, err := m.Connect(2)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < 12; i++ {
			res := m.Send(id, int32(i), []byte("m"), 32)
			if res.Status != soda.StatusSuccess {
				t.Errorf("send %d: %v", i, res.Status)
				return
			}
			answers = append(answers, string(res.Data))
			c.Hold(40 * time.Millisecond)
		}
	}))
	nw.Register("mover", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		// Wait until the origin's link end is installed here (id from
		// OnInstalled), plus a carrier link to node 3.
		var originLink int
		m.OnInstalled(func(linkID int, peer soda.MID) {
			if peer == 1 {
				originLink = linkID
			}
		})
		c.WaitUntil(func() bool { return originLink != 0 })
		carrier, err := m.Connect(3)
		if err != nil {
			t.Errorf("carrier connect: %v", err)
			return
		}
		c.Hold(200 * time.Millisecond) // let some traffic flow first
		if err := m.Move(originLink, carrier); err != nil {
			t.Errorf("move: %v", err)
			return
		}
		moved = true
	}))
	nw.Register("target", linkNode(mgrs, nil))

	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(2, "mover")
	nw.MustBoot(3, "target")
	nw.MustBoot(1, "origin")
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("move never completed")
	}
	if len(answers) != 12 {
		t.Fatalf("origin got %d answers: %v", len(answers), answers)
	}
	// Early answers from node 2, later ones from node 3, no gaps.
	saw3 := false
	for i, a := range answers {
		want2 := fmt.Sprintf("2:%d", i)
		want3 := fmt.Sprintf("3:%d", i)
		switch a {
		case want2:
			if saw3 {
				t.Fatalf("answer %d from old end after move: %v", i, answers)
			}
		case want3:
			saw3 = true
		default:
			t.Fatalf("answer %d = %q, want %q or %q", i, a, want2, want3)
		}
	}
	if !saw3 {
		t.Fatalf("no answers from the new end: %v", answers)
	}
	// The origin's table now points at node 3.
	if peer, _ := mgrs[1].Peer(1); peer != 3 {
		t.Fatalf("origin's link peer = %d, want 3", peer)
	}
}

func TestSlaveMustBecomeMasterToMove(t *testing.T) {
	// The Connect initiator holds the SLAVE end; moving it requires the
	// −1 become-master exchange, after which the far end is SLAVE.
	nw := soda.NewNetwork()
	mgrs := map[soda.MID]*Manager{}
	done := false
	nw.Register("peer", linkNode(mgrs, nil))
	nw.Register("target", linkNode(mgrs, nil))
	nw.Register("origin", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		id, err := m.Connect(2)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		carrier, err := m.Connect(3)
		if err != nil {
			t.Errorf("carrier: %v", err)
			return
		}
		if st, _ := m.State(id); st != Slave {
			t.Errorf("pre-move state = %v, want SLAVE", st)
		}
		if err := m.Move(id, carrier); err != nil {
			t.Errorf("move: %v", err)
			return
		}
		done = true
	}))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(2, "peer")
	nw.MustBoot(3, "target")
	nw.MustBoot(1, "origin")
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("move never completed")
	}
	// Node 2's end of the moved link must now be SLAVE, pointing at 3.
	m2 := mgrs[2]
	if st, ok := m2.State(1); !ok || st != Slave {
		t.Fatalf("far end state = %v, want SLAVE", st)
	}
	if peer, _ := m2.Peer(1); peer != 3 {
		t.Fatalf("far end peer = %d, want 3", peer)
	}
}

func TestDestroyedLinkReportsCancelled(t *testing.T) {
	nw := soda.NewNetwork()
	mgrs := map[soda.MID]*Manager{}
	var st soda.Status
	nw.Register("peer", linkNode(mgrs, nil))
	nw.Register("origin", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		id, err := m.Connect(2)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		m.Destroy(id)
		st = m.Send(id, 1, []byte("x"), 8).Status
	}))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(2, "peer")
	nw.MustBoot(1, "origin")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st != soda.StatusCancelled {
		t.Fatalf("send on destroyed link = %v, want CANCELLED", st)
	}
}

func TestLinkMoveUnderFrameLoss(t *testing.T) {
	// The full move protocol (become-master, install, −2 update, −3
	// finalize) survives 5% frame loss end to end.
	nw := soda.NewNetwork(soda.WithLoss(0.05), soda.WithSeed(7))
	mgrs := map[soda.MID]*Manager{}
	var answers []string
	nw.Register("origin", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		id, err := m.Connect(2)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < 8; i++ {
			res := m.Send(id, int32(i), []byte("m"), 32)
			if res.Status != soda.StatusSuccess {
				t.Errorf("send %d: %v", i, res.Status)
				return
			}
			answers = append(answers, string(res.Data))
			c.Hold(60 * time.Millisecond)
		}
	}))
	nw.Register("mover", linkNode(mgrs, func(c *soda.Client, m *Manager) {
		var originLink int
		m.OnInstalled(func(linkID int, peer soda.MID) {
			if peer == 1 {
				originLink = linkID
			}
		})
		c.WaitUntil(func() bool { return originLink != 0 })
		carrier, err := m.Connect(3)
		if err != nil {
			t.Errorf("carrier: %v", err)
			return
		}
		c.Hold(150 * time.Millisecond)
		if err := m.Move(originLink, carrier); err != nil {
			t.Errorf("move: %v", err)
		}
	}))
	nw.Register("target", linkNode(mgrs, nil))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(2, "mover")
	nw.MustBoot(3, "target")
	nw.MustBoot(1, "origin")
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(answers) != 8 {
		t.Fatalf("answers = %v", answers)
	}
	if peer, _ := mgrs[1].Peer(1); peer != 3 {
		t.Fatalf("origin's peer = %d, want 3 after the move", peer)
	}
}

// A "typical SODA network" (thesis p. 7): a command interpreter boots an
// application onto a free machine using the reserved boot patterns, the
// application computes via an RPC math service, stores its result through
// the file server, and the parent finally reclaims the machine with the
// kill capability it obtained at boot time.
//
//	go run ./examples/network
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"soda"
	"soda/apps/fileserver"
	"soda/rpc"
)

var sumPattern = soda.WellKnownPattern(0o124)

func main() {
	nw := soda.NewNetwork()

	// A floating-point-processor-ish service: sums a vector of uint16.
	nw.Register("mathsvc", rpc.Server(map[soda.Pattern]rpc.Proc{
		sumPattern: func(_ *soda.Client, in []byte) []byte {
			var sum uint32
			for i := 0; i+1 < len(in); i += 2 {
				sum += uint32(binary.BigEndian.Uint16(in[i:]))
			}
			out := make([]byte, 4)
			binary.BigEndian.PutUint32(out, sum)
			return out
		},
	}))

	nw.Register("fs", fileserver.Server(nil, 16))

	// The application to be loaded onto a free machine: computes and
	// stores a result, then idles until killed.
	nw.Register("app", soda.Program{
		Init: func(c *soda.Client, parent soda.MID) {
			fmt.Printf("t=%8v  app: booted on machine %d by machine %d\n", c.Now(), c.MID(), parent)
		},
		Task: func(c *soda.Client) {
			mathSrv, ok := c.Discover(sumPattern)
			if !ok {
				fmt.Println("app: no math service")
				return
			}
			vec := make([]byte, 8)
			for i, v := range []uint16{100, 200, 300, 400} {
				binary.BigEndian.PutUint16(vec[2*i:], v)
			}
			out, err := rpc.Call(c, mathSrv, vec, 4)
			if err != nil {
				fmt.Println("app: rpc:", err)
				return
			}
			sum := binary.BigEndian.Uint32(out)
			fmt.Printf("t=%8v  app: remote sum = %d\n", c.Now(), sum)

			fsrv, _ := fileserver.Find(c)
			f, err := fileserver.Open(c, fsrv, "result")
			if err != nil {
				fmt.Println("app:", err)
				return
			}
			_ = f.Write([]byte(fmt.Sprintf("%d", sum)))
			_ = f.Close()
			fmt.Printf("t=%8v  app: result stored; idling\n", c.Now())
			c.WaitUntil(func() bool { return false }) // until killed
		},
	})

	// The command interpreter: finds a free machine, boots the app,
	// waits for its output, reclaims the machine.
	nw.Register("shell", soda.Program{
		Task: func(c *soda.Client) {
			free := c.DiscoverAll(soda.BootPattern, 8)
			fmt.Printf("t=%8v  shell: free machines %v\n", c.Now(), free)
			if len(free) == 0 {
				return
			}
			loadPat, err := soda.BootRemote(c, free[0], soda.BootPattern, "app")
			if err != nil {
				fmt.Println("shell: boot:", err)
				return
			}
			c.Hold(2 * time.Second) // let the app work

			fsrv, _ := fileserver.Find(c)
			f, err := fileserver.Open(c, fsrv, "result")
			if err != nil {
				fmt.Println("shell:", err)
				return
			}
			data, _ := f.Read(32)
			_ = f.Close()
			fmt.Printf("t=%8v  shell: app's stored result = %s\n", c.Now(), data)

			if soda.KillChild(c, free[0], loadPat) {
				fmt.Printf("t=%8v  shell: machine %d reclaimed\n", c.Now(), free[0])
			}
		},
	})

	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustAddNode(4) // the free machine
	nw.MustBoot(1, "shell")
	nw.MustBoot(2, "mathsvc")
	nw.MustBoot(3, "fs")

	if err := nw.Run(10 * time.Second); err != nil {
		log.Fatal(err)
	}
}

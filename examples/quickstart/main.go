// Quickstart: a two-node SODA network — a greeter service that advertises
// a well-known pattern, and a client that discovers it by broadcast and
// talks to it with blocking requests.
//
// It also demonstrates a subtlety the thesis calls out (§3.3.2): a single
// EXCHANGE cannot inspect the requester's data before supplying the reply,
// so a transforming call needs two transactions (see soda/rpc for the
// packaged remote-procedure-call idiom).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"soda"
)

// greeterPattern is the service's published name: any client that knows it
// can locate the serving machine with DISCOVER.
var greeterPattern = soda.WellKnownPattern(0o346)

func main() {
	nw := soda.NewNetwork()

	// The server binds its pattern in the Init section (the BOOTING
	// handler invocation) and completes arriving requests in its handler.
	nw.Register("greeter", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := c.Advertise(greeterPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			// EXCHANGE both ways in one transaction: take the caller's
			// message, hand back a greeting. The greeting cannot depend
			// on the incoming bytes (§3.3.2) — it can depend on the tag
			// (requester MID, argument, sizes).
			greeting := fmt.Sprintf("hello machine %d, your %d bytes arrived",
				ev.Asker.MID, ev.PutSize)
			res := c.AcceptCurrentExchange(soda.OK, []byte(greeting), ev.PutSize)
			if res.Status == soda.AcceptSuccess {
				fmt.Printf("t=%v  server received %q\n", c.Now(), res.Data)
			}
		},
	})

	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			// Locate the service by broadcast (§3.4.4).
			srv, ok := c.Discover(greeterPattern)
			if !ok {
				fmt.Println("no greeter on the network")
				return
			}
			fmt.Printf("t=%v  client discovered greeter on machine %d\n", c.Now(), srv.MID)
			for _, msg := range []string{"hi", "how are you", "bye"} {
				res := c.BExchange(srv, soda.OK, []byte(msg), 128)
				fmt.Printf("t=%v  client sent %-13q -> %v, reply: %s\n",
					c.Now(), msg, res.Status, strings.TrimSpace(string(res.Data)))
			}
		},
	})

	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "greeter")
	nw.MustBoot(2, "client")

	if err := nw.Run(5 * time.Second); err != nil {
		log.Fatal(err)
	}
}

// File service over SODA (§4.4.5): a file server bound to well-known OPEN
// and DISCOVER patterns hands out per-file patterns minted by GETUNIQUEID;
// two clients share files through it while a timeserver provides timeouts.
//
//	go run ./examples/fileservice
package main

import (
	"fmt"
	"log"
	"time"

	"soda"
	"soda/apps/fileserver"
	"soda/timesrv"
)

func main() {
	nw := soda.NewNetwork()

	nw.Register("fs", fileserver.Server(map[string][]byte{
		"readme": []byte("files are named by patterns, not descriptors"),
	}, 32))
	nw.Register("timesrv", timesrv.Program(8))

	// Writer: appends log entries, then signs off.
	nw.Register("writer", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := fileserver.Find(c)
			if !ok {
				fmt.Println("writer: no file server")
				return
			}
			f, err := fileserver.Open(c, srv, "log")
			if err != nil {
				fmt.Println("writer:", err)
				return
			}
			for i := 1; i <= 3; i++ {
				line := fmt.Sprintf("entry %d at %v\n", i, c.Now())
				if err := f.Write([]byte(line)); err != nil {
					fmt.Println("writer:", err)
					return
				}
				fmt.Printf("t=%8v  writer appended %q\n", c.Now(), line[:len(line)-1])
				c.Hold(100 * time.Millisecond)
			}
			_ = f.Close()
		},
	})

	// Reader: waits a while (using the timeserver's clock), then reads
	// both files back.
	nw.Register("reader", soda.Program{
		Task: func(c *soda.Client) {
			alarm, _ := c.Discover(timesrv.AlarmPattern)
			timesrv.Sleep(c, alarm, 500*time.Millisecond)

			srv, _ := fileserver.Find(c)
			for _, name := range []string{"readme", "log"} {
				f, err := fileserver.Open(c, srv, name)
				if err != nil {
					fmt.Println("reader:", err)
					continue
				}
				var all []byte
				for {
					chunk, err := f.Read(32)
					if err != nil || len(chunk) == 0 {
						break
					}
					all = append(all, chunk...)
				}
				fmt.Printf("t=%8v  reader %s: %q\n", c.Now(), name, all)
				_ = f.Close()
			}
		},
	})

	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustAddNode(4)
	nw.MustBoot(1, "fs")
	nw.MustBoot(2, "timesrv")
	nw.MustBoot(3, "writer")
	nw.MustBoot(4, "reader")

	if err := nw.Run(5 * time.Second); err != nil {
		log.Fatal(err)
	}
}

// Dining philosophers with the thesis's deadlock detector (§4.4.3).
//
// Five philosopher processes each own one fork and acquire left-then-right
// — a policy guaranteed to deadlock when they start synchronized. A
// detector process, woken by the timeserver, walks the ring probing for
// the "needful" state and breaks genuine deadlocks by making one
// philosopher give its fork back, with a fairness list so victims rotate.
//
//	go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"time"

	"soda"
	"soda/apps/philo"
	"soda/timesrv"
)

func main() {
	nw := soda.NewNetwork()

	ring := []soda.MID{2, 3, 4, 5, 6}
	names := []string{"Aristotle", "Plato", "Socrates", "Epicurus", "Zeno"}

	// The timeserver is an ordinary client that owns the clock (§4.4.3).
	nw.Register("timesrv", timesrv.Program(16))
	nw.MustAddNode(1)
	nw.MustBoot(1, "timesrv")

	for i, mid := range ring {
		i := i
		left := ring[(i-1+len(ring))%len(ring)]
		prog := philo.Philosopher(left, 0, 60*time.Millisecond, 40*time.Millisecond,
			func(c *soda.Client, meal int) {
				fmt.Printf("t=%8v  %-10s finished meal %d\n", c.Now(), names[i], meal)
			})
		nw.Register(names[i], prog)
		nw.MustAddNode(mid)
		nw.MustBoot(mid, names[i])
	}

	nw.Register("detector", philo.Detector(ring, 250*time.Millisecond, func(v soda.MID) {
		for i, mid := range ring {
			if mid == v {
				fmt.Printf("            *** deadlock! %s gives back a fork ***\n", names[i])
			}
		}
	}))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")

	if err := nw.Run(5 * time.Second); err != nil {
		log.Fatal(err)
	}
}

// CSP rendezvous with output guards over SODA (§4.2.5).
//
// Hoare's CSP forbids output commands in guards because symmetric
// rendezvous risks deadlock; SODA's flexible ACCEPT scheduling makes
// Bernstein's algorithm cheap, so a process may guard on *sending* as well
// as receiving. Here three workers trade work items around a ring, each
// simultaneously offering to hand one off and to take one in — the
// machine-id ordering breaks every query cycle.
//
//	go run ./examples/rendezvous
package main

import (
	"fmt"
	"log"
	"time"

	"soda"
	"soda/csp"
)

const typItem int32 = 1

func name(mid soda.MID) soda.Pattern { return soda.WellKnownPattern(0o1000 + uint64(mid)) }

func worker(next soda.MID, items int) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			r, err := csp.New(c, name(c.MID()))
			if err != nil {
				panic(err)
			}
			c.SetStash(r)
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			c.Stash().(*csp.Runtime).HandleEvent(ev)
		},
		Task: func(c *soda.Client) {
			r := c.Stash().(*csp.Runtime)
			hold := items // work items currently held
			for round := 0; round < 6; round++ {
				res := r.Select([]csp.Guard{
					{
						// Output guard: offer an item to the successor
						// whenever we hold one.
						When: func() bool { return hold > 0 },
						Send: &csp.SendGuard{
							To:    soda.ServerSig{MID: next, Pattern: name(next)},
							Type:  typItem,
							Value: []byte{byte(c.MID())},
						},
					},
					{
						// Input guard: accept an item from anyone.
						Recv: &csp.RecvGuard{Type: typItem},
					},
				})
				switch res.Index {
				case 0:
					hold--
					fmt.Printf("t=%8v  worker %d handed an item to %d (now holds %d)\n",
						c.Now(), c.MID(), next, hold)
				case 1:
					hold++
					fmt.Printf("t=%8v  worker %d took an item from %d (now holds %d)\n",
						c.Now(), c.MID(), res.From, hold)
				default:
					fmt.Printf("t=%8v  worker %d: alternative failed\n", c.Now(), c.MID())
					return
				}
			}
			fmt.Printf("t=%8v  worker %d done holding %d items\n", c.Now(), c.MID(), hold)
			c.WaitUntil(func() bool { return false }) // keep answering peers
		},
	}
}

func main() {
	nw := soda.NewNetwork()
	// Ring 1→2→3→1; worker 1 starts with all the items.
	nw.Register("w1", worker(2, 3))
	nw.Register("w2", worker(3, 0))
	nw.Register("w3", worker(1, 0))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(1, "w1")
	nw.MustBoot(2, "w2")
	nw.MustBoot(3, "w3")
	if err := nw.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}
}

package sweep_test

import (
	"fmt"
	"testing"
	"time"

	"soda/sweep"
)

// TestMetamorphicTraceHashes extends the obs/ bit-identical-run guarantees
// to the sweep layer: for the same matrix, the per-run trace hashes must
// be identical across all four execution modes —
//
//	bare sequential, bare parallel, instrumented sequential,
//	instrumented parallel
//
// i.e. neither attaching the full observability stack (tracer + metrics +
// checkers) nor sharding across workers may perturb a single frame of any
// run.
func TestMetamorphicTraceHashes(t *testing.T) {
	base := sweep.Spec{
		Scenario:  "philosophers",
		Seeds:     []int64{1, 7},
		PlanSeeds: []int64{0, 11},
		Nodes:     []int{5},
		Horizon:   2 * time.Second,
	}
	instrumented := base
	instrumented.Instrument = true
	instrumented.Checks = true

	type mode struct {
		name    string
		spec    sweep.Spec
		workers int
	}
	modes := []mode{
		{"bare/sequential", base, 1},
		{"bare/parallel", base, 4},
		{"instrumented/sequential", instrumented, 1},
		{"instrumented/parallel", instrumented, 4},
	}

	hashes := make([][]string, len(modes))
	for i, m := range modes {
		rep, err := sweep.Run(m.spec, m.workers)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if len(rep.Runs) != 4 {
			t.Fatalf("%s: %d runs, want 4", m.name, len(rep.Runs))
		}
		hs := make([]string, len(rep.Runs))
		for j, r := range rep.Runs {
			if r.Err != "" {
				t.Fatalf("%s: run %v failed: %s", m.name, r.Key, r.Err)
			}
			if r.FramesSent == 0 {
				t.Fatalf("%s: run %v sent no frames", m.name, r.Key)
			}
			hs[j] = r.TraceHash
		}
		hashes[i] = hs
	}
	for i := 1; i < len(modes); i++ {
		for j := range hashes[0] {
			if hashes[i][j] != hashes[0][j] {
				t.Errorf("run %d: %s hash %s != %s hash %s",
					j, modes[i].name, hashes[i][j], modes[0].name, hashes[0][j])
			}
		}
	}
}

// TestWindowOneTraceGoldens pins the transport's backward-compatibility
// contract (DESIGN.md §11): with the sliding window off — the default, or
// Window set to 1 explicitly — every run's trace hash is byte-identical to
// the goldens recorded before the windowed engine existed. A stop-and-wait
// node must emit not one different frame, draw not one extra random
// number. If this test fails, the windowed code has leaked into the
// Window<=1 path; do not re-record the goldens without understanding why.
func TestWindowOneTraceGoldens(t *testing.T) {
	goldens := map[string]map[string]string{
		"fileserver": {
			"fileserver/n5/seed1/plan0":  "5a0d06540198eaf5",
			"fileserver/n5/seed1/plan11": "80f41cc8ebac6f28",
			"fileserver/n5/seed7/plan0":  "5a0d06540198eaf5",
			"fileserver/n5/seed7/plan11": "5cd8168e8279b84d",
		},
		"philosophers": {
			"philosophers/n5/seed1/plan0":  "3f79fe6237fac123",
			"philosophers/n5/seed1/plan11": "3f79fe6237fac123",
			"philosophers/n5/seed7/plan0":  "3f79fe6237fac123",
			"philosophers/n5/seed7/plan11": "3f79fe6237fac123",
		},
	}
	for scenario, want := range goldens {
		for _, window := range []int{0, 1} {
			scenario, window := scenario, window
			t.Run(fmt.Sprintf("%s/w%d", scenario, window), func(t *testing.T) {
				spec := sweep.Spec{
					Scenario:  scenario,
					Seeds:     []int64{1, 7},
					PlanSeeds: []int64{0, 11},
					Nodes:     []int{5},
					Horizon:   2 * time.Second,
					Window:    window,
				}
				rep, err := sweep.Run(spec, 1)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Runs) != len(want) {
					t.Fatalf("%d runs, want %d", len(rep.Runs), len(want))
				}
				for _, r := range rep.Runs {
					if r.Err != "" {
						t.Fatalf("run %v failed: %s", r.Key, r.Err)
					}
					if g := want[r.Key.String()]; r.TraceHash != g {
						t.Errorf("%v: trace hash %s, golden %s — the stop-and-wait wire has changed",
							r.Key, r.TraceHash, g)
					}
				}
			})
		}
	}
}

// TestWindowedSweepDeterminism: a windowed sweep is not expected to match
// the stop-and-wait goldens — it is expected to be exactly as deterministic.
// Same spec, same hashes, sequential or parallel, with the faults invariant
// checkers armed and silent throughout (chaos columns included).
func TestWindowedSweepDeterminism(t *testing.T) {
	spec := sweep.Spec{
		Scenario:   "fileserver",
		Seeds:      []int64{1, 7},
		PlanSeeds:  []int64{0, 11},
		Nodes:      []int{5},
		Horizon:    2 * time.Second,
		Window:     4,
		Instrument: true,
		Checks:     true,
	}
	seq, err := sweep.Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range seq.Runs {
		if seq.Runs[j].Err != "" {
			t.Fatalf("run %v failed: %s", seq.Runs[j].Key, seq.Runs[j].Err)
		}
		if v := seq.Runs[j].Violations; len(v) > 0 {
			t.Errorf("run %v: invariant violations under window=4: %v", seq.Runs[j].Key, v)
		}
		if seq.Runs[j].TraceHash != par.Runs[j].TraceHash {
			t.Errorf("run %v: sequential hash %s != parallel hash %s",
				seq.Runs[j].Key, seq.Runs[j].TraceHash, par.Runs[j].TraceHash)
		}
		if seq.Runs[j].FramesSent == 0 {
			t.Errorf("run %v sent no frames", seq.Runs[j].Key)
		}
	}
}

package sweep_test

import (
	"testing"
	"time"

	"soda/sweep"
)

// TestMetamorphicTraceHashes extends the obs/ bit-identical-run guarantees
// to the sweep layer: for the same matrix, the per-run trace hashes must
// be identical across all four execution modes —
//
//	bare sequential, bare parallel, instrumented sequential,
//	instrumented parallel
//
// i.e. neither attaching the full observability stack (tracer + metrics +
// checkers) nor sharding across workers may perturb a single frame of any
// run.
func TestMetamorphicTraceHashes(t *testing.T) {
	base := sweep.Spec{
		Scenario:  "philosophers",
		Seeds:     []int64{1, 7},
		PlanSeeds: []int64{0, 11},
		Nodes:     []int{5},
		Horizon:   2 * time.Second,
	}
	instrumented := base
	instrumented.Instrument = true
	instrumented.Checks = true

	type mode struct {
		name    string
		spec    sweep.Spec
		workers int
	}
	modes := []mode{
		{"bare/sequential", base, 1},
		{"bare/parallel", base, 4},
		{"instrumented/sequential", instrumented, 1},
		{"instrumented/parallel", instrumented, 4},
	}

	hashes := make([][]string, len(modes))
	for i, m := range modes {
		rep, err := sweep.Run(m.spec, m.workers)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if len(rep.Runs) != 4 {
			t.Fatalf("%s: %d runs, want 4", m.name, len(rep.Runs))
		}
		hs := make([]string, len(rep.Runs))
		for j, r := range rep.Runs {
			if r.Err != "" {
				t.Fatalf("%s: run %v failed: %s", m.name, r.Key, r.Err)
			}
			if r.FramesSent == 0 {
				t.Fatalf("%s: run %v sent no frames", m.name, r.Key)
			}
			hs[j] = r.TraceHash
		}
		hashes[i] = hs
	}
	for i := 1; i < len(modes); i++ {
		for j := range hashes[0] {
			if hashes[i][j] != hashes[0][j] {
				t.Errorf("run %d: %s hash %s != %s hash %s",
					j, modes[i].name, hashes[i][j], modes[0].name, hashes[0][j])
			}
		}
	}
}

package sweep_test

import (
	"bytes"
	"testing"
	"time"

	"soda/sweep"
)

// matrix32 is the acceptance matrix: 8 seeds × 2 plan columns (fault-free
// control + generated chaos) × 2 node counts = 32 runs, instrumented and
// checked, so the byte-identity claim covers profiles, violations and
// trace hashes alike.
func matrix32() sweep.Spec {
	return sweep.Spec{
		Scenario:   "fileserver",
		Seeds:      []int64{1, 2, 3, 4, 5, 6, 7, 8},
		PlanSeeds:  []int64{0, 5},
		Nodes:      []int{2, 3},
		Horizon:    2 * time.Second,
		Instrument: true,
		Checks:     true,
	}
}

// TestParallelSweepIsByteIdenticalToSequential is the load-bearing test of
// the sweep engine: sharding a >=32-run matrix across workers must produce
// the very same report — per-run trace hashes, per-run profiles, aggregate
// digests, every byte — as running the matrix one run at a time.
func TestParallelSweepIsByteIdenticalToSequential(t *testing.T) {
	spec := matrix32()
	seq, err := sweep.Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Runs) != 32 {
		t.Fatalf("matrix expanded to %d runs, want 32", len(seq.Runs))
	}
	for _, workers := range []int{4, 8} {
		par, err := sweep.Run(spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := seq.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := par.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			for i := range seq.Runs {
				if seq.Runs[i].TraceHash != par.Runs[i].TraceHash {
					t.Errorf("run %v: trace hash %s (seq) != %s (%d workers)",
						seq.Runs[i].Key, seq.Runs[i].TraceHash, par.Runs[i].TraceHash, workers)
				}
			}
			t.Fatalf("parallel sweep (%d workers) not byte-identical to sequential", workers)
		}
	}
}

// TestSweepRunsAreMeaningful guards against the byte-identity test passing
// vacuously: the matrix must produce real traffic, complete cleanly, and
// the chaos columns must actually exercise the fault machinery.
func TestSweepRunsAreMeaningful(t *testing.T) {
	rep, err := sweep.Run(matrix32(), 8)
	if err != nil {
		t.Fatal(err)
	}
	lost := uint64(0)
	for _, r := range rep.Runs {
		if r.Err != "" {
			t.Errorf("run %v failed: %s", r.Key, r.Err)
		}
		if r.FramesSent == 0 {
			t.Errorf("run %v sent no frames", r.Key)
		}
		for _, v := range r.Violations {
			t.Errorf("run %v violation: %s", r.Key, v)
		}
		if r.Profile == nil {
			t.Errorf("run %v: instrumented sweep recorded no profile", r.Key)
		}
		if r.Key.PlanSeed != 0 {
			lost += r.FramesLost
		}
	}
	if lost == 0 {
		t.Error("chaos columns lost no frames; generated plans did nothing")
	}
	if rep.Aggregate.Runs != 32 || rep.Aggregate.Failed != 0 {
		t.Errorf("aggregate = %+v, want 32 runs, 0 failed", rep.Aggregate)
	}
	if rep.Aggregate.RequestP50US.Count == 0 {
		t.Error("no REQUEST latency digest despite instrumentation")
	}
	if rep.Aggregate.FramesSent.Max < rep.Aggregate.FramesSent.Min {
		t.Error("frames-sent digest is inverted")
	}
}

// TestReportIsKeyOrdered pins the merge rule: report order is run-key
// order, never completion order.
func TestReportIsKeyOrdered(t *testing.T) {
	spec := matrix32()
	keys, err := spec.Keys()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sweep.Run(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if rep.Runs[i].Key != k {
			t.Fatalf("run %d has key %v, want %v", i, rep.Runs[i].Key, k)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	base := sweep.Spec{Scenario: "fileserver", Seeds: []int64{1}, Nodes: []int{2}, Horizon: time.Second}
	cases := []struct {
		name   string
		mutate func(*sweep.Spec)
	}{
		{"unknown scenario", func(s *sweep.Spec) { s.Scenario = "nope" }},
		{"no seeds", func(s *sweep.Spec) { s.Seeds = nil }},
		{"no nodes", func(s *sweep.Spec) { s.Nodes = nil }},
		{"zero horizon", func(s *sweep.Spec) { s.Horizon = 0 }},
		{"too few nodes", func(s *sweep.Spec) { s.Nodes = []int{1} }},
		{"plan with short horizon", func(s *sweep.Spec) {
			s.PlanSeeds = []int64{3}
			s.Horizon = 100 * time.Millisecond
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			if _, err := sweep.Run(spec, 1); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
	if _, err := sweep.Run(base, 1); err != nil {
		t.Fatalf("valid base spec rejected: %v", err)
	}
}

// TestPhilosophersScenario covers the second built-in on its minimum and
// a larger ring, fault-free, with the checkers armed.
func TestPhilosophersScenario(t *testing.T) {
	rep, err := sweep.Run(sweep.Spec{
		Scenario: "philosophers",
		Seeds:    []int64{1, 2},
		Nodes:    []int{4, 6},
		Horizon:  2 * time.Second,
		Checks:   true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.Err != "" {
			t.Errorf("run %v failed: %s", r.Key, r.Err)
		}
		if r.FramesSent == 0 {
			t.Errorf("run %v sent no frames", r.Key)
		}
		for _, v := range r.Violations {
			t.Errorf("run %v violation: %s", r.Key, v)
		}
		if r.Unresolved != 0 {
			t.Errorf("run %v left %d requests unresolved", r.Key, r.Unresolved)
		}
	}
}

// TestBulkTransferScenario covers the windowed bulk workload (DESIGN.md
// §12) under both recovery modes, each with a fault-free control column
// and a generated chaos column. Every run must resolve all requests and
// pass the invariant checkers — selective repeat and go-back-N may differ
// wildly in cost, never in outcome.
func TestBulkTransferScenario(t *testing.T) {
	for _, recovery := range []string{"selective", "gobackn"} {
		rep, err := sweep.Run(sweep.Spec{
			Scenario:  "bulktransfer",
			Seeds:     []int64{1, 2},
			PlanSeeds: []int64{0, 5},
			Nodes:     []int{2, 3},
			Horizon:   2 * time.Second,
			Checks:    true,
			Window:    8,
			Recovery:  recovery,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Runs {
			if r.Err != "" {
				t.Errorf("%s run %v failed: %s", recovery, r.Key, r.Err)
			}
			if r.FramesSent == 0 {
				t.Errorf("%s run %v sent no frames", recovery, r.Key)
			}
			for _, v := range r.Violations {
				t.Errorf("%s run %v violation: %s", recovery, r.Key, v)
			}
			if r.Unresolved != 0 {
				t.Errorf("%s run %v left %d requests unresolved", recovery, r.Key, r.Unresolved)
			}
		}
	}
}

// TestBulkTransferRecoveryValidation pins the Spec.Recovery vocabulary.
func TestBulkTransferRecoveryValidation(t *testing.T) {
	_, err := sweep.Run(sweep.Spec{
		Scenario: "bulktransfer", Seeds: []int64{1}, Nodes: []int{2},
		Horizon: time.Second, Window: 8, Recovery: "vegas",
	}, 1)
	if err == nil {
		t.Fatal("unknown recovery mode accepted")
	}
}

// TestSegmentedSweepDeterministic runs the internet scenario on a
// three-segment star and pins the engine's core guarantees there too:
// worker count never changes a byte, every run completes, and the
// invariant checkers stay clean across gateways.
func TestSegmentedSweepDeterministic(t *testing.T) {
	spec := sweep.Spec{
		Scenario: "internet",
		Seeds:    []int64{1, 2},
		Nodes:    []int{6},
		Horizon:  2 * time.Second,
		Checks:   true,
		Segments: 3,
	}
	seq, err := sweep.Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := seq.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("segmented sweep depends on worker count")
	}
	if seq.Aggregate.Failed != 0 || seq.Aggregate.TotalViolations != 0 {
		t.Fatalf("segmented sweep unhealthy: %+v", seq.Aggregate)
	}
	if seq.Aggregate.FramesSent.Min == 0 {
		t.Fatal("a segmented run sent no frames; scenario inert")
	}
	// A negative segment count is a spec error, not a silent default.
	bad := spec
	bad.Segments = -1
	if _, err := sweep.Run(bad, 1); err == nil {
		t.Fatal("negative Segments accepted")
	}
}

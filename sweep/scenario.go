package sweep

import (
	"fmt"
	"sort"
	"time"

	"soda"
	"soda/apps/fileserver"
	"soda/apps/philo"
	"soda/timesrv"
)

// Scenario is a sweepable workload: Build populates a fresh network with
// nodes 1..n, boots every program, and schedules whatever end-of-run
// winding-down the workload needs so in-flight requests drain before the
// horizon (the invariant checkers treat requests still open at the cutoff
// as unresolved). Build must be deterministic and must not retain state
// across calls — the engine invokes it once per run, concurrently.
type Scenario struct {
	// MinNodes is the smallest network the workload makes sense on.
	MinNodes int
	// Build wires the workload into nw for a run of the given horizon.
	Build func(nw *soda.Network, nodes int, horizon time.Duration)
}

// scenarios is the built-in registry. Both entries scale with the node
// count, so the matrix's Nodes axis is meaningful.
var scenarios = map[string]Scenario{
	// fileserver: the §4.4 file service on node 1, with n-1 clients
	// looping find/open/read/close sessions against it. Clients stop at
	// 3/4 of the horizon — the same quiet tail faults.Generate leaves —
	// so the network drains before the cutoff.
	"fileserver": {
		MinNodes: 2,
		Build: func(nw *soda.Network, nodes int, horizon time.Duration) {
			nw.Register("fs", fileserver.Server(map[string][]byte{
				"motd":  []byte("hello from the sweep"),
				"zeros": make([]byte, 256),
			}, 32))
			nw.Register("client", soda.Program{
				Task: func(c *soda.Client) {
					stop := horizon * 3 / 4
					for c.Now() < stop {
						srv, ok := fileserver.Find(c)
						if !ok {
							c.Hold(200 * time.Millisecond)
							continue
						}
						f, err := fileserver.Open(c, srv, "motd")
						if err != nil {
							c.Hold(100 * time.Millisecond)
							continue
						}
						_, _ = f.Read(64)
						_ = f.Close()
						c.Hold(50 * time.Millisecond)
					}
				},
			})
			nw.MustAddNode(1)
			nw.MustBoot(1, "fs")
			for mid := soda.MID(2); int(mid) <= nodes; mid++ {
				nw.MustAddNode(mid)
				nw.MustBoot(mid, "client")
			}
		},
	},
	// bulktransfer: a bulk sink on node 1, with n-1 clients streaming
	// multi-fragment EXCHANGEs at it (4000-byte puts, 4000-byte replies —
	// four FRAG frames each way at the default fragment size). This is the
	// workload that actually exercises the DESIGN.md §12 windowed
	// transport under the sweep's fault plans: loss and partition faults
	// land mid-message, so selective repeat, SACK recovery, and the AIMD
	// window all run hot. Clients stop at 3/4 of the horizon so the
	// network drains before the cutoff.
	"bulktransfer": {
		MinNodes: 2,
		Build: func(nw *soda.Network, nodes int, horizon time.Duration) {
			bulkPattern := soda.WellKnownPattern(0o6223)
			reply := make([]byte, 4000)
			for i := range reply {
				reply[i] = byte(i)
			}
			nw.Register("bulksink", soda.Program{
				Init: func(c *soda.Client, _ soda.MID) {
					if err := c.Advertise(bulkPattern); err != nil {
						panic(err)
					}
				},
				Handler: func(c *soda.Client, ev soda.Event) {
					if ev.Kind != soda.EventRequestArrival || ev.Pattern != bulkPattern {
						return
					}
					c.AcceptCurrentExchange(soda.OK, reply[:ev.GetSize], ev.PutSize)
				},
			})
			nw.Register("bulkclient", soda.Program{
				Task: func(c *soda.Client) {
					put := make([]byte, 4000)
					for i := range put {
						put[i] = byte(0x51 + i)
					}
					stop := horizon * 3 / 4
					for c.Now() < stop {
						srv, ok := c.Discover(bulkPattern)
						if !ok {
							c.Hold(200 * time.Millisecond)
							continue
						}
						res := c.BExchange(srv, soda.OK, put, len(reply))
						if res.Status != soda.StatusSuccess {
							c.Hold(100 * time.Millisecond)
							continue
						}
						c.Hold(20 * time.Millisecond)
					}
				},
			})
			nw.MustAddNode(1)
			nw.MustBoot(1, "bulksink")
			for mid := soda.MID(2); int(mid) <= nodes; mid++ {
				nw.MustAddNode(mid)
				nw.MustBoot(mid, "bulkclient")
			}
		},
	},
	// internet: a discovery-heavy request workload built for segmented
	// sweeps (Spec.Segments > 1, DESIGN.md §13): one echo service on node
	// 1, with every other node looping DISCOVER + EXCHANGE against it. On
	// a star topology node 1 lands on segment 1, so most clients' queries
	// and requests cross gateways — the traffic the DISCOVER proxy cache
	// and unicast routing exist for. Runs fine on a single bus too, which
	// is the flat baseline the scaling curve compares against. Clients
	// stop at 3/4 of the horizon so the network drains before the cutoff.
	"internet": {
		MinNodes: 2,
		Build: func(nw *soda.Network, nodes int, horizon time.Duration) {
			p := soda.WellKnownPattern(0o7131)
			nw.Register("inetecho", soda.Program{
				Init: func(c *soda.Client, _ soda.MID) {
					if err := c.Advertise(p); err != nil {
						panic(err)
					}
				},
				Handler: func(c *soda.Client, ev soda.Event) {
					if ev.Kind == soda.EventRequestArrival && ev.Pattern == p {
						c.AcceptCurrentExchange(soda.OK, []byte("pong"), ev.PutSize)
					}
				},
			})
			nw.Register("inetclient", soda.Program{
				Task: func(c *soda.Client) {
					stop := horizon * 3 / 4
					for c.Now() < stop {
						srv, ok := c.Discover(p)
						if !ok {
							c.Hold(200 * time.Millisecond)
							continue
						}
						if res := c.BExchange(srv, soda.OK, []byte("ping"), 16); res.Status != soda.StatusSuccess {
							c.Hold(100 * time.Millisecond)
							continue
						}
						c.Hold(75 * time.Millisecond)
					}
				},
			})
			nw.MustAddNode(1)
			nw.MustBoot(1, "inetecho")
			for mid := soda.MID(2); int(mid) <= nodes; mid++ {
				nw.MustAddNode(mid)
				nw.MustBoot(mid, "inetclient")
			}
		},
	},
	// philosophers: the §4.4 dining ring — timeserver on node 1, a ring
	// of n-1 philosophers on nodes 2..n. The ring never stops on its own,
	// so every client is killed at 7/8 of the horizon to drain.
	"philosophers": {
		MinNodes: 4,
		Build: func(nw *soda.Network, nodes int, horizon time.Duration) {
			nw.Register("timesrv", timesrv.Program(16))
			nw.MustAddNode(1)
			nw.MustBoot(1, "timesrv")
			ring := make([]soda.MID, nodes-1)
			for i := range ring {
				ring[i] = soda.MID(i + 2)
			}
			for i, mid := range ring {
				left := ring[(i-1+len(ring))%len(ring)]
				name := fmt.Sprintf("phil%d", i)
				nw.Register(name, philo.Philosopher(left, 0,
					50*time.Millisecond, 30*time.Millisecond, nil))
				nw.MustAddNode(mid)
				nw.MustBoot(mid, name)
			}
			nw.At(horizon*7/8, func() {
				for _, mid := range ring {
					nw.Node(mid).Die()
				}
				nw.Node(1).Die()
			})
		},
	},
}

// Scenarios lists the registered scenario names in sorted order.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	//lint:allow mapiterorder (names are sorted immediately below)
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Package sweep runs matrices of independent deterministic simulations —
// every combination of scenario seed, generated fault-plan seed, and node
// count — and merges the results into one aggregate report.
//
// The engine shards runs across host worker goroutines (sim.ParallelFor,
// the tree's one sanctioned concurrency zone) while keeping each run a
// completely isolated simulation: its own kernel, bus, nodes, fault plan
// and observers. Results are merged by run key, never by completion order,
// so a parallel sweep is byte-identical to a sequential sweep of the same
// matrix — concurrency across runs, determinism within each. The test
// battery in sweep_test.go and metamorphic_test.go pins exactly that.
package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"time"

	"soda"
	"soda/faults"
	"soda/internal/sim"
	"soda/obs"
)

// Spec describes a sweep matrix: the cross product of Seeds × PlanSeeds ×
// Nodes for one scenario. The zero values of the optional fields mean
// "fault-free" (PlanSeeds) and "bare" (Instrument, Checks).
type Spec struct {
	// Scenario names a registered workload (see Scenarios()).
	Scenario string `json:"scenario"`
	// Seeds are the simulation seeds; one run per seed per cell.
	Seeds []int64 `json:"seeds"`
	// PlanSeeds seed faults.Generate for each run's fault plan. Plan seed
	// 0 is special: no fault plan at all (the fault-free column every
	// sweep should keep as its control).
	PlanSeeds []int64 `json:"plan_seeds"`
	// Nodes lists the network sizes to sweep.
	Nodes []int `json:"nodes"`
	// Horizon is the virtual-time extent of every run.
	Horizon time.Duration `json:"horizon_ns"`
	// Instrument attaches an obs.Tracer and obs.Registry to every run and
	// records a per-run Profile. The metamorphic battery pins that this
	// never changes a run's trace hash.
	Instrument bool `json:"instrument,omitempty"`
	// Checks arms the faults invariant checkers on every run; violations
	// land in RunResult.Violations.
	Checks bool `json:"checks,omitempty"`
	// Window sets the transport's sliding-window depth on every node
	// (deltat.Config.Window, DESIGN.md §11). Zero or one is the
	// paper-faithful stop-and-wait transport; the metamorphic battery pins
	// that Window<=1 sweeps hash identically to pre-window builds.
	Window int `json:"window,omitempty"`
	// Recovery selects the windowed transport's loss-recovery strategy
	// (DESIGN.md §12): "" or "selective" for selective repeat with SACK
	// and the AIMD window, "gobackn" for the legacy full-window resend.
	// Only meaningful with Window > 1.
	Recovery string `json:"recovery,omitempty"`
	// Segments splits every run's network into a star internetwork of this
	// many gateway-joined bus segments (DESIGN.md §13); nodes land on
	// segment mid % Segments. 0 or 1 is the classic single shared bus —
	// the metamorphic battery pins that those sweeps hash identically to
	// pre-topology builds.
	Segments int `json:"segments,omitempty"`
	// ForwardDelay sets the gateways' store-and-forward latency (the
	// conservative lookahead for parallel intra-run execution, DESIGN.md
	// §15). Zero keeps today's immediate forwarding; required positive
	// when ParWorkers > 1.
	ForwardDelay time.Duration `json:"forward_delay_ns,omitempty"`
	// ParWorkers > 1 executes each run's bus segments in parallel via
	// soda.WithParallelSim (conservative intra-run parallelism, DESIGN.md
	// §15); <= 1 is the plain sequential scheduler. Orthogonal to the
	// sweep's own cross-run workers: the metamorphic battery pins that
	// neither axis changes a single trace hash. With generated chaos
	// plans (PlanSeeds), Segments also scopes some window faults to
	// single segments, exercising the shard-routed fault paths.
	ParWorkers int `json:"par_workers,omitempty"`
}

// RunKey identifies one cell of the matrix. Report order is the key order:
// scenario, then node count, then seed, then plan seed.
type RunKey struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Seed     int64  `json:"seed"`
	PlanSeed int64  `json:"plan_seed"`
}

func (k RunKey) String() string {
	return fmt.Sprintf("%s/n%d/seed%d/plan%d", k.Scenario, k.Nodes, k.Seed, k.PlanSeed)
}

func (k RunKey) less(o RunKey) bool {
	if k.Scenario != o.Scenario {
		return k.Scenario < o.Scenario
	}
	if k.Nodes != o.Nodes {
		return k.Nodes < o.Nodes
	}
	if k.Seed != o.Seed {
		return k.Seed < o.Seed
	}
	return k.PlanSeed < o.PlanSeed
}

// RunResult is the deterministic record of one run. Every field derives
// from virtual time and the seeded simulation alone — no wall-clock data
// belongs here, so sequential and parallel sweeps can be compared byte for
// byte.
type RunResult struct {
	Key RunKey `json:"key"`
	// TraceHash is the FNV-64a hash of the run's frame log (the same
	// per-transmission lines Network.Trace writes), in hex.
	TraceHash string `json:"trace_hash"`
	// VirtualUS is the virtual clock at the end of the run.
	VirtualUS int64 `json:"virtual_us"`
	// Wire counters, always collected (they come from bus stats).
	FramesSent      uint64 `json:"frames_sent"`
	FramesLost      uint64 `json:"frames_lost"`
	Retransmissions uint64 `json:"retransmissions"`
	// Violations and Unresolved report the invariant checkers' verdict
	// (Spec.Checks only).
	Violations []string `json:"violations,omitempty"`
	Unresolved int      `json:"unresolved,omitempty"`
	// Profile is the run's full observability profile (Spec.Instrument
	// only); byte-deterministic like everything else here.
	Profile *obs.Profile `json:"profile,omitempty"`
	// Err records a run that failed to complete (event-limit blowout);
	// the sweep still reports every other cell.
	Err string `json:"error,omitempty"`
}

// Digest summarizes one statistic across the runs of a sweep. Percentiles
// are nearest-rank over the sorted per-run values.
type Digest struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

func digest(vals []float64) Digest {
	if len(vals) == 0 {
		return Digest{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Digest{
		Count: len(sorted),
		Min:   sorted[0],
		P50:   rank(0.50),
		P90:   rank(0.90),
		P99:   rank(0.99),
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
	}
}

// Aggregate summarizes the whole matrix: wire-level digests always, and
// cross-run REQUEST latency digests when the sweep was instrumented (each
// run contributes its own p50/p90/p99, and the digest spreads those across
// the matrix).
type Aggregate struct {
	Runs            int    `json:"runs"`
	Failed          int    `json:"failed,omitempty"`
	TotalViolations int    `json:"total_violations,omitempty"`
	FramesSent      Digest `json:"frames_sent"`
	Retransmissions Digest `json:"retransmissions"`
	RequestP50US    Digest `json:"request_p50_us"`
	RequestP90US    Digest `json:"request_p90_us"`
	RequestP99US    Digest `json:"request_p99_us"`
}

// Report is the merged outcome of a sweep, ordered by run key. Its JSON
// form is byte-deterministic: same Spec, same Report, regardless of worker
// count or completion order.
type Report struct {
	Spec      Spec        `json:"spec"`
	Runs      []RunResult `json:"runs"`
	Aggregate Aggregate   `json:"aggregate"`
}

// Write emits the report as indented JSON (deterministic: encoding/json
// sorts map keys, and Runs is key-ordered).
func (r *Report) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Keys expands the spec's matrix in report order, validating it first.
func (s Spec) Keys() ([]RunKey, error) {
	sc, ok := scenarios[s.Scenario]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown scenario %q (have %v)", s.Scenario, Scenarios())
	}
	if len(s.Seeds) == 0 || len(s.Nodes) == 0 {
		return nil, fmt.Errorf("sweep: empty matrix: need at least one seed and one node count")
	}
	if s.Horizon <= 0 {
		return nil, fmt.Errorf("sweep: horizon must be positive")
	}
	switch s.Recovery {
	case "", "selective", "gobackn":
	default:
		return nil, fmt.Errorf("sweep: unknown recovery mode %q (want selective or gobackn)", s.Recovery)
	}
	if s.Segments < 0 {
		return nil, fmt.Errorf("sweep: segments must be >= 0, got %d", s.Segments)
	}
	if s.ForwardDelay < 0 {
		return nil, fmt.Errorf("sweep: forward delay must be >= 0, got %v", s.ForwardDelay)
	}
	if s.ParWorkers > 1 && (s.Segments < 2 || s.ForwardDelay <= 0) {
		return nil, fmt.Errorf("sweep: par_workers %d needs segments >= 2 and a positive forward delay (the parallel lookahead)", s.ParWorkers)
	}
	planSeeds := s.PlanSeeds
	if len(planSeeds) == 0 {
		planSeeds = []int64{0}
	}
	for _, ps := range planSeeds {
		if ps != 0 && s.Horizon < time.Second {
			return nil, fmt.Errorf("sweep: horizon %v too short for generated fault plans (need >= 1s)", s.Horizon)
		}
	}
	var keys []RunKey
	for _, n := range s.Nodes {
		if n < sc.MinNodes {
			return nil, fmt.Errorf("sweep: scenario %q needs at least %d nodes, got %d", s.Scenario, sc.MinNodes, n)
		}
		for _, seed := range s.Seeds {
			for _, ps := range planSeeds {
				keys = append(keys, RunKey{Scenario: s.Scenario, Nodes: n, Seed: seed, PlanSeed: ps})
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys, nil
}

// Run executes the matrix across the given number of workers (<= 1 means
// strictly sequential, with no goroutines at all) and merges the results
// in key order. The report is independent of the worker count.
func Run(spec Spec, workers int) (*Report, error) {
	keys, err := spec.Keys()
	if err != nil {
		return nil, err
	}
	results := make([]RunResult, len(keys))
	sim.ParallelFor(workers, len(keys), func(i int) {
		results[i] = runOne(spec, keys[i])
	})
	rep := &Report{Spec: spec, Runs: results}
	rep.Aggregate = aggregate(results)
	return rep, nil
}

// runOne executes a single, fully isolated simulation.
func runOne(spec Spec, key RunKey) RunResult {
	sc := scenarios[key.Scenario]
	opts := []soda.Option{soda.WithSeed(key.Seed)}
	if spec.Segments > 1 {
		topo := soda.StarTopology(spec.Segments)
		topo.ForwardDelay = spec.ForwardDelay
		opts = append(opts, soda.WithTopology(topo))
	}
	if spec.ParWorkers > 1 {
		opts = append(opts, soda.WithParallelSim(spec.ParWorkers))
	}
	if spec.Window > 1 {
		opts = append(opts, soda.WithTransportWindow(spec.Window))
		if spec.Recovery == "gobackn" {
			opts = append(opts, soda.WithTransportRecovery(soda.RecoveryGoBackN))
		}
	}
	if key.PlanSeed != 0 {
		mids := make([]faults.MID, key.Nodes)
		for i := range mids {
			mids[i] = faults.MID(i + 1)
		}
		plan := faults.Generate(rand.New(rand.NewSource(key.PlanSeed)), faults.GenConfig{
			Horizon:  spec.Horizon,
			MIDs:     mids,
			Segments: spec.Segments,
		})
		opts = append(opts, soda.WithFaultPlan(plan))
	}
	if spec.Checks {
		opts = append(opts, soda.WithInvariantChecks())
	}
	var reg *obs.Registry
	if spec.Instrument {
		reg = obs.NewRegistry()
		opts = append(opts, soda.WithMetrics(reg), soda.WithTracer(obs.NewTracer()))
	}
	nw := soda.NewNetwork(opts...)
	h := fnv.New64a()
	nw.Trace(h)
	sc.Build(nw, key.Nodes, spec.Horizon)

	res := RunResult{Key: key}
	if err := nw.Run(spec.Horizon); err != nil {
		res.Err = err.Error()
	}
	res.TraceHash = fmt.Sprintf("%016x", h.Sum64())
	res.VirtualUS = nw.Now().Microseconds()
	st := nw.Stats()
	res.FramesSent = st.FramesSent
	res.FramesLost = st.FramesLost
	res.Retransmissions = st.Retransmissions
	if ch := nw.Invariants(); ch != nil {
		res.Violations = ch.Finish()
		res.Unresolved = len(ch.Unresolved())
	}
	if spec.Instrument {
		res.Profile = nw.Profile(key.String())
	}
	return res
}

func aggregate(runs []RunResult) Aggregate {
	agg := Aggregate{Runs: len(runs)}
	var sent, retrans, p50, p90, p99 []float64
	for i := range runs {
		r := &runs[i]
		if r.Err != "" {
			agg.Failed++
		}
		agg.TotalViolations += len(r.Violations)
		sent = append(sent, float64(r.FramesSent))
		retrans = append(retrans, float64(r.Retransmissions))
		if r.Profile != nil {
			if hs, ok := r.Profile.Primitives[obs.PrimRequest]; ok {
				p50 = append(p50, float64(hs.P50US))
				p90 = append(p90, float64(hs.P90US))
				p99 = append(p99, float64(hs.P99US))
			}
		}
	}
	agg.FramesSent = digest(sent)
	agg.Retransmissions = digest(retrans)
	agg.RequestP50US = digest(p50)
	agg.RequestP90US = digest(p90)
	agg.RequestP99US = digest(p99)
	return agg
}

package sweep_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"soda/faults"
	"soda/sweep"
)

// TestParallelIntraRunMetamorphicMatrix is the three-axis determinism
// matrix for conservative intra-run parallelism (DESIGN.md §15):
//
//	{bare, instrumented} × {sequential sweep, sharded sweep} × {parworkers 1, 2, 8}
//
// Every cell runs the same segmented chaos matrix — generated fault plans
// with segment-scoped window events armed — and every cell's per-run trace
// hashes must be byte-identical to the reference cell. Neither observation,
// nor cross-run sharding, nor intra-run parallelism may move a frame.
func TestParallelIntraRunMetamorphicMatrix(t *testing.T) {
	base := sweep.Spec{
		Scenario:     "internet",
		Seeds:        []int64{1, 7},
		PlanSeeds:    []int64{0, 11},
		Nodes:        []int{6},
		Horizon:      2 * time.Second,
		Segments:     3,
		ForwardDelay: 2 * time.Millisecond,
	}

	// The chaos column must actually arm segment-scoped faults, or the
	// matrix silently stops covering the shard-routed fault paths.
	plan := faults.Generate(rand.New(rand.NewSource(11)), faults.GenConfig{
		Horizon:  base.Horizon,
		MIDs:     []faults.MID{1, 2, 3, 4, 5, 6},
		Segments: base.Segments,
	})
	scoped := 0
	for _, e := range plan.Events {
		if e.Segment != nil {
			scoped++
		}
	}
	if scoped == 0 {
		t.Fatalf("plan seed 11 generated no segment-scoped events; pick a seed that does: %+v", plan.Events)
	}

	type cell struct {
		name         string
		instrument   bool
		sweepWorkers int
		parWorkers   int
	}
	var cells []cell
	for _, instrument := range []bool{false, true} {
		for _, sw := range []int{1, 4} {
			for _, pw := range []int{1, 2, 8} {
				label := "bare"
				if instrument {
					label = "instrumented"
				}
				cells = append(cells, cell{
					name:         fmt.Sprintf("%s/sweep%d/par%d", label, sw, pw),
					instrument:   instrument,
					sweepWorkers: sw,
					parWorkers:   pw,
				})
			}
		}
	}

	var ref []string
	for i, c := range cells {
		spec := base
		spec.Instrument = c.instrument
		spec.Checks = c.instrument
		spec.ParWorkers = c.parWorkers
		rep, err := sweep.Run(spec, c.sweepWorkers)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(rep.Runs) != 4 {
			t.Fatalf("%s: %d runs, want 4", c.name, len(rep.Runs))
		}
		hs := make([]string, len(rep.Runs))
		for j, r := range rep.Runs {
			if r.Err != "" {
				t.Fatalf("%s: run %v failed: %s", c.name, r.Key, r.Err)
			}
			if r.FramesSent == 0 {
				t.Fatalf("%s: run %v sent no frames", c.name, r.Key)
			}
			if len(r.Violations) > 0 {
				t.Errorf("%s: run %v: invariant violations: %v", c.name, r.Key, r.Violations)
			}
			hs[j] = r.TraceHash
		}
		if i == 0 {
			ref = hs
			continue
		}
		for j := range hs {
			if hs[j] != ref[j] {
				t.Errorf("run %d: %s hash %s != %s hash %s",
					j, c.name, hs[j], cells[0].name, ref[j])
			}
		}
	}
}

// TestParallelSpecValidation pins Keys()'s refusal to run a parallel sweep
// that would silently degrade: intra-run parallelism without a shardable
// topology is a spec error, not a warning storm.
func TestParallelSpecValidation(t *testing.T) {
	bad := []sweep.Spec{
		{Scenario: "internet", Seeds: []int64{1}, Nodes: []int{4}, Horizon: time.Second,
			ParWorkers: 4},
		{Scenario: "internet", Seeds: []int64{1}, Nodes: []int{4}, Horizon: time.Second,
			ParWorkers: 4, Segments: 3},
		{Scenario: "internet", Seeds: []int64{1}, Nodes: []int{4}, Horizon: time.Second,
			ParWorkers: 4, Segments: 1, ForwardDelay: time.Millisecond},
		{Scenario: "internet", Seeds: []int64{1}, Nodes: []int{4}, Horizon: time.Second,
			Segments: 2, ForwardDelay: -time.Millisecond},
	}
	for i, spec := range bad {
		if _, err := spec.Keys(); err == nil {
			t.Errorf("spec %d: Keys() accepted an invalid parallel spec: %+v", i, spec)
		}
	}
	good := sweep.Spec{Scenario: "internet", Seeds: []int64{1}, Nodes: []int{4}, Horizon: time.Second,
		ParWorkers: 4, Segments: 3, ForwardDelay: 2 * time.Millisecond}
	if _, err := good.Keys(); err != nil {
		t.Errorf("Keys() rejected a valid parallel spec: %v", err)
	}
}

// Package timesrv implements the time-server utility of §4.4.3 and the
// timeout idiom of §4.3.2.
//
// SODA deliberately provides no timeouts in its primitives (§6.5): a client
// that needs one registers a wakeup REQUEST with a timeserver (a client
// that owns a hardware clock). The timeserver ACCEPTs the request when the
// delay expires; the completion interrupt is the alarm. An impatient client
// can then CANCEL whatever it was waiting on.
package timesrv

import (
	"time"

	"soda"
)

// AlarmPattern is the well-known pattern the timeserver advertises.
var AlarmPattern = soda.WellKnownPattern(0o6014)

// tick is the hardware clock granularity ("wait for clock tick", §4.4.3).
const tick = time.Millisecond

// alarm is one registered wakeup.
type alarm struct {
	asker    soda.RequesterSig
	deadline time.Duration
}

// state is the timeserver's per-instance data.
type state struct {
	pending []alarm
	max     int
}

// Program returns the timeserver: SIGNAL ⟨server, AlarmPattern⟩ with the
// delay in milliseconds as the argument; the request is ACCEPTed when the
// delay expires. maxPending bounds simultaneous registrations; extras are
// rejected.
func Program(maxPending int) soda.Program {
	if maxPending <= 0 {
		maxPending = 32
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			c.SetStash(&state{max: maxPending})
			if err := c.Advertise(AlarmPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival || ev.Pattern != AlarmPattern {
				return
			}
			st := c.Stash().(*state)
			if len(st.pending) >= st.max {
				c.RejectCurrent()
				return
			}
			st.pending = append(st.pending, alarm{
				asker:    ev.Asker,
				deadline: c.Now() + time.Duration(ev.Arg)*time.Millisecond,
			})
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*state)
			for {
				c.WaitUntil(func() bool { return len(st.pending) > 0 })
				c.Hold(tick)
				// Fire everything due. The pending slice may grow while
				// an ACCEPT blocks; the remainder is rebuilt each tick.
				now := c.Now()
				var due []alarm
				keep := st.pending[:0]
				for _, a := range st.pending {
					if a.deadline <= now {
						due = append(due, a)
					} else {
						keep = append(keep, a)
					}
				}
				st.pending = keep
				for _, a := range due {
					c.AcceptSignal(a.asker, soda.OK)
				}
			}
		},
	}
}

// SetAlarm registers a non-blocking wakeup: the returned TID's completion
// interrupt fires after delay. Use Client.OnCompletion (or the program
// handler) to observe it.
func SetAlarm(c *soda.Client, server soda.ServerSig, delay time.Duration) (soda.TID, error) {
	return c.Signal(server, int32(delay/time.Millisecond))
}

// Sleep blocks the task for delay using the timeserver's clock.
func Sleep(c *soda.Client, server soda.ServerSig, delay time.Duration) soda.Status {
	return c.BSignal(server, int32(delay/time.Millisecond)).Status
}

// CallResult augments a request outcome with timeout information.
type CallResult struct {
	soda.CallResult
	// TimedOut reports that the alarm fired first and the request was
	// successfully cancelled.
	TimedOut bool
}

// CallWithTimeout implements the §4.3.2 scenario: register a wakeup, issue
// the request, and whichever completes first wins. On timeout the request
// is CANCELLED; if the cancel loses the race the late completion is
// returned instead.
func CallWithTimeout(c *soda.Client, alarmServer soda.ServerSig, timeout time.Duration,
	dst soda.ServerSig, arg int32, put []byte, getSize int) (CallResult, error) {

	alarmTID, err := SetAlarm(c, alarmServer, timeout)
	if err != nil {
		return CallResult{}, err
	}
	reqTID, err := c.Request(dst, arg, put, getSize)
	if err != nil {
		return CallResult{}, err
	}
	var (
		reqDone, alarmDone bool
		reqEv              soda.Event
	)
	c.OnCompletion(alarmTID, func(soda.Event) { alarmDone = true })
	c.OnCompletion(reqTID, func(ev soda.Event) {
		reqEv = ev
		reqDone = true
	})
	c.WaitUntil(func() bool { return reqDone || alarmDone })
	if !reqDone {
		// The alarm fired first; try to withdraw the request.
		if c.Cancel(soda.RequesterSig{MID: c.MID(), TID: reqTID}) {
			return CallResult{TimedOut: true}, nil
		}
		// The cancel lost: completion is imminent (§3.3.3).
		c.WaitUntil(func() bool { return reqDone })
	}
	st := reqEv.Status
	if st == soda.StatusSuccess && reqEv.Arg < 0 {
		st = soda.StatusRejected
	}
	return CallResult{CallResult: soda.CallResult{
		Status: st, Arg: reqEv.Arg, Data: reqEv.Data,
		PutN: reqEv.PutN, GetN: reqEv.GetN, TID: reqTID,
	}}, nil
}

package timesrv

import (
	"testing"
	"time"

	"soda"
)

func TestSleepWakesAfterDelay(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("timesrv", Program(8))
	var woke time.Duration
	var started time.Duration
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := c.Discover(AlarmPattern)
			if !ok {
				t.Error("timeserver not discovered")
				return
			}
			started = c.Now()
			if st := Sleep(c, srv, 100*time.Millisecond); st != soda.StatusSuccess {
				t.Errorf("sleep status = %v", st)
			}
			woke = c.Now()
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "timesrv")
	nw.MustBoot(2, "client")
	if err := nw.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if woke == 0 {
		t.Fatal("client never woke")
	}
	slept := woke - started
	if slept < 100*time.Millisecond || slept > 200*time.Millisecond {
		t.Fatalf("slept %v, want ~100ms", slept)
	}
}

func TestMultipleAlarmsFireInDeadlineOrder(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("timesrv", Program(8))
	var order []int32
	mkSleeper := func(id int32, d time.Duration) soda.Program {
		return soda.Program{
			Task: func(c *soda.Client) {
				srv, _ := c.Discover(AlarmPattern)
				Sleep(c, srv, d)
				order = append(order, id)
			},
		}
	}
	nw.Register("s1", mkSleeper(1, 150*time.Millisecond))
	nw.Register("s2", mkSleeper(2, 50*time.Millisecond))
	nw.Register("s3", mkSleeper(3, 100*time.Millisecond))
	nw.MustAddNode(1)
	for mid := soda.MID(2); mid <= 4; mid++ {
		nw.MustAddNode(mid)
	}
	nw.MustBoot(1, "timesrv")
	nw.MustBoot(2, "s1")
	nw.MustBoot(3, "s2")
	nw.MustBoot(4, "s3")
	if err := nw.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("wake order = %v, want [2 3 1]", order)
	}
}

func TestCallWithTimeoutTimesOut(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("timesrv", Program(8))
	slowPat := soda.WellKnownPattern(0o500)
	nw.Register("slow", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) { _ = c.Advertise(slowPat) },
		// Never accepts.
	})
	var res *CallResult
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			alarmSrv, _ := c.Discover(AlarmPattern)
			r, err := CallWithTimeout(c, alarmSrv, 100*time.Millisecond,
				soda.ServerSig{MID: 3, Pattern: slowPat}, soda.OK, nil, 0)
			if err != nil {
				t.Errorf("CallWithTimeout: %v", err)
				return
			}
			res = &r
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(1, "timesrv")
	nw.MustBoot(3, "slow")
	nw.MustBoot(2, "client")
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("call never returned")
	}
	if !res.TimedOut {
		t.Fatalf("result = %+v, want timeout", res)
	}
}

func TestCallWithTimeoutFastServerWins(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("timesrv", Program(8))
	fastPat := soda.WellKnownPattern(0o501)
	nw.Register("fast", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) { _ = c.Advertise(fastPat) },
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival {
				c.AcceptCurrentGet(soda.OK, []byte("quick"))
			}
		},
	})
	var res *CallResult
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			alarmSrv, _ := c.Discover(AlarmPattern)
			r, err := CallWithTimeout(c, alarmSrv, 500*time.Millisecond,
				soda.ServerSig{MID: 3, Pattern: fastPat}, soda.OK, nil, 32)
			if err != nil {
				t.Errorf("CallWithTimeout: %v", err)
				return
			}
			res = &r
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(1, "timesrv")
	nw.MustBoot(3, "fast")
	nw.MustBoot(2, "client")
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res == nil || res.TimedOut || res.Status != soda.StatusSuccess || string(res.Data) != "quick" {
		t.Fatalf("result = %+v, want fast success", res)
	}
}

func TestAlarmOverflowRejected(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("timesrv", Program(1))
	var second soda.Status
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			srv, _ := c.Discover(AlarmPattern)
			if _, err := SetAlarm(c, srv, 5*time.Second); err != nil {
				t.Errorf("first alarm: %v", err)
			}
			c.Hold(50 * time.Millisecond) // let it register
			second = c.BSignal(srv, 5000).Status
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "timesrv")
	nw.MustBoot(2, "client")
	if err := nw.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if second != soda.StatusRejected {
		t.Fatalf("second alarm = %v, want REJECTED", second)
	}
}

package soda_test

import (
	"bytes"
	"testing"
	"time"

	"soda"
	"soda/faults"
)

// TestCrossSegmentExchange runs a real client/server pair split across a
// two-segment star: DISCOVER is answered by the gateway's pattern proxy,
// and the blocking exchange crosses the gateway in both directions.
func TestCrossSegmentExchange(t *testing.T) {
	nw := soda.NewNetwork(soda.WithTopology(soda.StarTopology(2)))
	nw.Register("echo", echo("remote"))
	var status soda.Status
	var got []byte
	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := c.Discover(pattern)
			if !ok {
				t.Error("cross-segment discover failed")
				return
			}
			if srv.MID != 1 {
				t.Errorf("discovered MID %d, want 1", srv.MID)
			}
			res := c.BExchange(srv, soda.OK, []byte("ping"), 16)
			status = res.Status
			got = res.Data
		},
	})
	// mid 1 lands on segment 1, mid 2 on segment 0 (mid % segments).
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	if nw.SegmentOf(1) != 1 || nw.SegmentOf(2) != 0 {
		t.Fatalf("segment placement = %d/%d, want 1/0", nw.SegmentOf(1), nw.SegmentOf(2))
	}
	nw.MustBoot(1, "echo")
	nw.MustBoot(2, "driver")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if status != soda.StatusSuccess {
		t.Fatalf("exchange status = %v, want success", status)
	}
	if string(got) != "remote" {
		t.Fatalf("exchange data = %q, want %q", got, "remote")
	}
	is := nw.InternetStats()
	if is.ProxyReplies == 0 {
		t.Error("DISCOVER was not answered by the gateway proxy")
	}
	if is.FramesForwarded == 0 {
		t.Error("no unicast frames crossed the gateway")
	}
	if nw.Segments() != 2 {
		t.Errorf("Segments() = %d, want 2", nw.Segments())
	}
	// The aggregated bus stats must see traffic from both segments: the
	// exchange sent frames on segment 0 and on segment 1.
	if st := nw.Stats(); st.FramesSent == 0 || st.FramesDelivered == 0 {
		t.Errorf("aggregated stats empty: %+v", st)
	}
}

// TestTopologyRejectsGatewayMIDs pins the MID carve-out: node ids at or
// above the gateway base cannot be added on a segmented network.
func TestTopologyRejectsGatewayMIDs(t *testing.T) {
	nw := soda.NewNetwork(soda.WithTopology(soda.StarTopology(2)))
	if _, err := nw.AddNode(0xFE00); err == nil {
		t.Fatal("AddNode accepted a MID inside the gateway range")
	}
	if _, err := nw.AddNode(0xFDFF); err != nil {
		t.Fatalf("AddNode rejected the last node MID: %v", err)
	}
}

// TestSingleSegmentTopologyIsDefault checks that WithTopology of a single
// segment produces the byte-identical trace of a network built without the
// option — the "no internetwork" degenerate case.
func TestSingleSegmentTopologyIsDefault(t *testing.T) {
	run := func(opts ...soda.Option) string {
		nw := soda.NewNetwork(opts...)
		nw.Register("echo", echo("one"))
		nw.Register("driver", soda.Program{
			Task: func(c *soda.Client) {
				srv, ok := c.Discover(pattern)
				if !ok {
					t.Error("discover failed")
					return
				}
				c.BExchange(srv, soda.OK, []byte("x"), 16)
			},
		})
		var buf bytes.Buffer
		nw.Trace(&buf)
		nw.MustAddNode(1)
		nw.MustAddNode(2)
		nw.MustBoot(1, "echo")
		nw.MustBoot(2, "driver")
		if err := nw.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := run()
	topo := run(soda.WithTopology(soda.Topology{Segments: 1}))
	if plain != topo {
		t.Fatalf("single-segment topology trace diverges from the default:\n--- default ---\n%s--- topology ---\n%s", plain, topo)
	}
	if plain == "" {
		t.Fatal("trace empty; comparison proved nothing")
	}
}

// TestSegmentPartitionHeals muddies one segment of a star with a total
// loss window: calls into the lossy segment fail while the window is open
// and succeed again after it closes. The fault plan targets the segment,
// so the client's own segment stays clean throughout.
func TestSegmentPartitionHeals(t *testing.T) {
	seg := 1
	plan := faults.Plan{Events: []faults.Event{{
		Kind:    faults.Loss,
		Segment: &seg,
		Prob:    1,
		Start:   faults.Duration(2 * time.Second),
		Stop:    faults.Duration(6 * time.Second),
	}}}
	nw := soda.NewNetwork(
		soda.WithTopology(soda.StarTopology(2)),
		soda.WithFaultPlan(plan),
		soda.WithInvariantChecks(),
	)
	nw.Register("echo", echo("ok"))
	var before, during, after soda.Status
	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := c.Discover(pattern)
			if !ok {
				t.Error("discover failed")
				return
			}
			before = c.BExchange(srv, soda.OK, []byte("a"), 16).Status
			c.Hold(2500*time.Millisecond - c.Now())
			during = c.BExchange(srv, soda.OK, []byte("b"), 16).Status
			if c.Now() < 7*time.Second {
				c.Hold(7*time.Second - c.Now())
			}
			srv2, ok := c.Discover(pattern)
			if !ok {
				t.Error("rediscover after heal failed")
				return
			}
			after = c.BExchange(srv2, soda.OK, []byte("c"), 16).Status
		},
	})
	nw.MustAddNode(1) // segment 1: inside the loss window
	nw.MustAddNode(2) // segment 0: stays clean
	nw.MustBoot(1, "echo")
	nw.MustBoot(2, "driver")
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if before != soda.StatusSuccess {
		t.Errorf("pre-window call = %v, want success", before)
	}
	if during == soda.StatusSuccess {
		t.Error("call into a fully lossy segment succeeded")
	}
	if after != soda.StatusSuccess {
		t.Errorf("post-heal call = %v, want success", after)
	}
	if st := nw.Stats(); st.FramesLost == 0 {
		t.Error("loss window inert; test proved nothing")
	}
}

// TestGatewayCrashPartitions crashes the star's only gateway from a fault
// plan: cross-segment traffic dies with it and resumes after the scheduled
// reboot.
func TestGatewayCrashPartitions(t *testing.T) {
	plan := faults.Plan{Events: []faults.Event{
		{Kind: faults.GatewayCrash, Gateway: 0, Start: faults.Duration(2 * time.Second)},
		{Kind: faults.GatewayReboot, Gateway: 0, Start: faults.Duration(6 * time.Second)},
	}}
	nw := soda.NewNetwork(
		soda.WithTopology(soda.StarTopology(2)),
		soda.WithFaultPlan(plan),
	)
	nw.Register("echo", echo("ok"))
	var during, after soda.Status
	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := c.Discover(pattern)
			if !ok {
				t.Error("discover failed")
				return
			}
			c.Hold(2500*time.Millisecond - c.Now())
			during = c.BExchange(srv, soda.OK, []byte("b"), 16).Status
			if c.Now() < 7*time.Second {
				c.Hold(7*time.Second - c.Now())
			}
			srv2, ok := c.Discover(pattern)
			if !ok {
				t.Error("rediscover after gateway reboot failed")
				return
			}
			after = c.BExchange(srv2, soda.OK, []byte("c"), 16).Status
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "echo")
	nw.MustBoot(2, "driver")
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if during == soda.StatusSuccess {
		t.Error("call across a crashed gateway succeeded")
	}
	if after != soda.StatusSuccess {
		t.Errorf("post-reboot call = %v, want success", after)
	}
}

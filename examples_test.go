// Smoke test: every program under examples/ must build and run to a clean
// exit. The examples double as executable documentation, so a refactor that
// silently breaks one is a doc regression even when the library tests stay
// green. Each example is deterministic (seeded simulation), so a clean exit
// is a meaningful, reproducible signal, not a flaky one.
package soda_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test compiles five binaries; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s exited dirty: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example directories found")
	}
}

// Smoke test: every program under examples/ must build and run to a clean
// exit. The examples double as executable documentation, so a refactor that
// silently breaks one is a doc regression even when the library tests stay
// green. Each example is deterministic (seeded simulation), so a clean exit
// is a meaningful, reproducible signal, not a flaky one — and the full
// stdout is pinned by FNV-64a hash, so a scheduler or bus change that
// perturbs event ordering fails here before it ships.
package soda_test

import (
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// exampleOutputHashes pins the FNV-64a hash of each example's stdout.
// Recorded with the hierarchical timer-wheel scheduler; any intentional
// ordering change must re-record these (go run ./examples/<name> | hash).
var exampleOutputHashes = map[string]uint64{
	"fileservice":  0xebae949dfc532f93,
	"network":      0x6b2655dda5cb6b55,
	"philosophers": 0xb1caa3b9715a6bfa,
	"quickstart":   0x9da2f0c176fa17d2,
	"rendezvous":   0x56e21ea2b2abf5f8,
}

func TestExamplesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test compiles five binaries; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s exited dirty: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
			want, pinned := exampleOutputHashes[name]
			if !pinned {
				t.Fatalf("example %s has no pinned output hash; record it in exampleOutputHashes", name)
			}
			h := fnv.New64a()
			h.Write(out)
			if got := h.Sum64(); got != want {
				t.Fatalf("example %s output hash = %#x, want %#x — event ordering changed; if intentional, re-record the hash\n%s", name, got, want, out)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example directories found")
	}
}

package nowallclock_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/nowallclock"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nowallclock.Analyzer)
}

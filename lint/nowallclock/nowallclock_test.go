package nowallclock_test

import (
	"testing"

	"soda/lint"
	"soda/lint/linttest"
	"soda/lint/nowallclock"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nowallclock.Analyzer)
}

// TestZoneActive pins that an eligible, reasoned //lint:zone realtime
// declaration lifts the wall-clock ban for the whole package.
func TestZoneActive(t *testing.T) {
	lint.RealtimeZonePaths["a"] = true
	defer delete(lint.RealtimeZonePaths, "a")
	linttest.Run(t, "testdata/src/zoneok", nowallclock.Analyzer)
}

// Package nowallclock bans wall-clock time in simulation code.
//
// Every run of this module is a deterministic function of its seed: the
// kernel's virtual clock (sim.Time, Kernel.Now/At/After) is the only clock.
// A single time.Now or time.Sleep smuggles the host's wall clock into the
// event stream and silently breaks the bit-identical-run and trace-hash
// guarantees. time.Duration values and the time constants remain fine —
// only the functions that read or wait on the real clock are banned.
package nowallclock

import (
	"go/ast"

	"soda/lint"
)

// banned maps forbidden package-level time functions to the virtual-time
// replacement named in the diagnostic.
var banned = map[string]string{
	"Now":       "sim.Kernel.Now",
	"Since":     "subtraction of sim.Time values",
	"Until":     "subtraction of sim.Time values",
	"Sleep":     "sim.Proc.Hold",
	"After":     "sim.Kernel.After",
	"AfterFunc": "sim.Kernel.After",
	"Tick":      "a rescheduling sim.Kernel.After callback",
	"NewTimer":  "sim.Kernel.After",
	"NewTicker": "a rescheduling sim.Kernel.After callback",
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "nowallclock",
	Doc:  "forbid wall-clock time (time.Now etc.) in simulation code; virtual time only",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// A declared real-time zone (//lint:zone realtime, eligibility-checked
	// by lint.InRealtimeZone) exists to read the wall clock: the socket
	// backend paces virtual time against it by design.
	if lint.InRealtimeZone(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := lint.PkgRef(pass.Info, sel)
			if !ok || path != "time" {
				return true
			}
			if repl, bad := banned[name]; bad {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock and breaks run determinism; use %s", name, repl)
			}
			return true
		})
	}
	return nil
}

// Package a is an eligible, well-formed realtime zone: the wall-clock ban
// lifts for the whole package. (The test grants eligibility to path "a"
// before running.)
package a

//lint:zone realtime (sanctioned realtime zone for this golden test)

import "time"

func fine() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}

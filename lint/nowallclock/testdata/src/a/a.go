// Package a seeds nowallclock violations for the analyzer's golden test.
package a

import "time"

func bad() time.Duration {
	t0 := time.Now()             // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Since(t0)        // want `time.Since reads the wall clock`
}

func badTimers() {
	_ = time.After(time.Second) // want `time.After reads the wall clock`
	_ = time.Tick(time.Second)  // want `time.Tick reads the wall clock`
	_ = time.NewTimer(1)        // want `time.NewTimer reads the wall clock`
}

func good() time.Duration {
	// Durations, constants, and formatting helpers never read the clock.
	d := 5 * time.Millisecond
	return d + time.Second
}

func allowed() {
	_ = time.Now() //lint:allow nowallclock (testing the annotation syntax)
}

package parcapture_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/parcapture"
)

func TestParcapture(t *testing.T) {
	linttest.Run(t, "testdata/src/a", parcapture.Analyzer)
}

// Package a exercises the parcapture analyzer: per-index partitioned
// writes pass, everything else that mutates captured state is flagged.
package a

// parallelFor stands in for sim.ParallelFor: fn runs concurrently for
// disjoint indices.
//
//lint:parfor
func parallelFor(workers, n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
	_ = workers
}

var total int

type result struct{ n int }

func good(specs []int) []result {
	out := make([]result, len(specs))
	parallelFor(4, len(specs), func(i int) {
		v := specs[i] * 2     // reading captured state is fine
		out[i] = result{n: v} // per-index element store: each worker owns its slot
		out[i].n = v          // a field of the worker's own element is fine too
		local := 0            // locals are the worker's own
		local++
		_ = local
	})
	return out
}

func bad(specs []int) int {
	sum := 0
	first := result{}
	parallelFor(4, len(specs), func(i int) {
		sum += specs[i] // want `writes captured variable sum`
		total++         // want `writes captured variable total`
		out := make([]int, len(specs))
		out[0] = 1   // fine: out is the worker's own local
		specs[0] = 9 // want `writes specs at an index other than its own`
		first.n = 1  // want `writes a field of captured first`
		p := &sum    // want `takes the address of captured sum`
		_ = p
	})
	return sum
}

func opaque(fn func(i int), specs []int) {
	parallelFor(2, len(specs), fn) // want `func value; capture safety unprovable`
}

func topLevelBody(specs []int) {
	parallelFor(2, len(specs), noopBody) // a top-level function captures nothing
}

func noopBody(i int) { _ = i }

// suppressed shows the audit escape hatch: the reduction is known racy-safe
// (e.g. protected by the harness), so the author vouches for it.
func suppressed(specs []int) int {
	sum := 0
	parallelFor(1, len(specs), func(i int) {
		sum += specs[i] //lint:allow parcapture (single worker: no concurrent writers)
	})
	return sum
}

// shard mirrors one per-worker slot of the parallel coordinator's window
// dispatch (gates, cursors, per-shard commit counts).
type shard struct {
	frontier int
	done     bool
	count    int
}

// windowWorkers is the coordinator's window-dispatch shape: every worker
// owns exactly the shard at its own index, so frontier publishes, done
// flags and commit counts are per-index element stores — all accepted.
func windowWorkers(shards []shard, events []int) {
	parallelFor(4, len(shards), func(i int) {
		shards[i].frontier = events[i%len(events)] // own slot: fine
		shards[i].count++                          // own slot's counter: fine
		shards[i].done = true                      // own slot's flag: fine
	})
}

// crossShardWrite is the commit-order race the shuffle fuzzer hunts
// dynamically, caught here statically: a worker touching a neighbouring
// shard's slot is not partitioned by its own index.
func crossShardWrite(shards []shard) {
	parallelFor(4, len(shards), func(i int) {
		shards[(i+1)%len(shards)].done = true // want `writes into shards outside its own element`
	})
}

// elsewhere is an ordinary call: closures not passed to the parallel-for
// entry are none of this analyzer's business.
func elsewhere(specs []int) int {
	sum := 0
	apply(func(i int) { sum += specs[i] })
	return sum
}

func apply(fn func(i int)) { fn(0) }

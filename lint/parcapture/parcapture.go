// Package parcapture checks closures handed to the parallel-for entry
// point (sim.ParallelFor, marked //lint:parfor) for unpartitioned shared
// captures.
//
// ParallelFor is the module's one sanctioned concurrency zone: worker
// goroutines invoke the body closure for disjoint indices. The closure may
// read anything it captures, but a write to captured state races unless it
// is partitioned per index: the only write shape accepted is an element
// store `captured[i] = ...` indexed by the closure's own index parameter
// (each worker owns its slice elements). Anything else — a plain captured
// write, a write through a differently-computed index, a captured field
// store, taking a captured variable's address, or writing package-level
// state — is flagged. Passing something other than a function literal or
// a top-level function defeats the analysis and is flagged conservatively.
package parcapture

import (
	"go/ast"
	"go/token"
	"go/types"

	"soda/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "parcapture",
	Doc:  "closures passed to //lint:parfor must not write captured state except per-index element stores (captured[i] = ...)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	facts := pass.Facts
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cs := facts.Site(call)
			if cs == nil {
				return true
			}
			target := false
			for _, callee := range cs.Callees {
				if facts.HasMark(callee, "parfor") {
					target = true
					break
				}
			}
			if !target {
				return true
			}
			for _, arg := range call.Args {
				if isFuncExpr(pass.Info, arg) {
					checkBodyArg(pass, arg)
				}
			}
			return true
		})
	}
	return nil
}

// isFuncExpr reports whether arg has function type (the body argument; the
// worker/count ints are skipped).
func isFuncExpr(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

func checkBodyArg(pass *lint.Pass, arg ast.Expr) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		checkLit(pass, e)
	case *ast.Ident:
		// A top-level function captures nothing.
		if _, ok := pass.Info.Uses[e].(*types.Func); ok {
			return
		}
		pass.Reportf(e.Pos(), "parallel-for body is a func value; capture safety unprovable — pass a literal or top-level function")
	default:
		pass.Reportf(arg.Pos(), "parallel-for body is not a function literal; capture safety unprovable")
	}
}

func checkLit(pass *lint.Pass, lit *ast.FuncLit) {
	info := pass.Info
	indexParam := lastParam(info, lit)
	captured := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil // the literal's own parameter or local
		}
		return v // captured from the enclosing function, or package-level
	}
	isIndexParam := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && indexParam != nil && info.Uses[id] == indexParam
	}
	checkTarget := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		switch t := lhs.(type) {
		case *ast.Ident:
			if v := captured(t); v != nil {
				pass.Reportf(t.Pos(), "worker closure writes captured variable %s; partition it per index instead", v.Name())
			}
		case *ast.IndexExpr:
			if v := captured(t.X); v != nil && !isIndexParam(t.Index) {
				pass.Reportf(t.Pos(), "worker closure writes %s at an index other than its own; workers may only store to their own element", v.Name())
			}
		case *ast.SelectorExpr:
			// Walk to the chain root: a field store into captured state.
			root := ast.Expr(t)
			for {
				if sel, ok := ast.Unparen(root).(*ast.SelectorExpr); ok {
					root = sel.X
					continue
				}
				if ix, ok := ast.Unparen(root).(*ast.IndexExpr); ok {
					// A per-index element's field is that worker's own.
					if v := captured(ix.X); v != nil && !isIndexParam(ix.Index) {
						pass.Reportf(t.Pos(), "worker closure writes into %s outside its own element", v.Name())
					}
					return
				}
				break
			}
			if v := captured(root); v != nil {
				pass.Reportf(t.Pos(), "worker closure writes a field of captured %s; partition it per index instead", v.Name())
			}
		case *ast.StarExpr:
			if v := captured(t.X); v != nil {
				pass.Reportf(t.Pos(), "worker closure writes through captured pointer %s", v.Name())
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := captured(n.X); v != nil {
					pass.Reportf(n.Pos(), "worker closure takes the address of captured %s; writes through it would race", v.Name())
				}
			}
		}
		return true
	})
}

// lastParam returns the *types.Var of the literal's final parameter — the
// worker's index under the ParallelFor contract — or nil.
func lastParam(info *types.Info, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) == 0 {
		return nil
	}
	return info.Defs[last.Names[len(last.Names)-1]]
}

// Facts-engine tests: the module-wide call graph, marker extraction, call
// resolution (static, qualified, interface, dynamic), type marks, and
// suppression lookup, exercised over a throwaway two-package module.
package lint_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"soda/lint"
)

// writeFactsModule lays out a module whose single hotpath root exhibits one
// call of every resolution class the engine distinguishes.
func writeFactsModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"b/b.go": `package b

// Alloc allocates.
func Alloc(n int) []byte { return make([]byte, n) }

// Free is allocation-free.
func Free(x int) int { return x + 1 }
`,
		"a/a.go": `package a

import "tmpmod/b"

// Worker is implemented by two concrete types below.
type Worker interface{ Work() int }

// Shared is segment-shared state.
//
//lint:segshared
type Shared struct{ N int }

// Plain carries no marks.
type Plain struct{ N int }

type fast struct{}

func (fast) Work() int { return 1 }

type slow struct{ buf []byte }

func (s *slow) Work() int { return len(s.buf) }

// Root is the traversal root.
//
//lint:hotpath
func Root(w Worker, f func() int) int {
	n := b.Free(2) // qualified static call
	n += w.Work()  // interface call, resolved by implementation search
	n += f()       // dynamic call through a func value
	n += helper(n) // same-package static call
	//lint:allow noalloc (test fixture: counted allocation)
	n += len(b.Alloc(n))
	return n
}

func helper(n int) int { return n * 2 }
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// loadFacts builds Facts over the fixture module and returns them with the
// package index.
func loadFacts(t *testing.T) (*lint.Facts, map[string]*lint.Package) {
	t.Helper()
	root := writeFactsModule(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	return lint.BuildFacts(pkgs), byPath
}

func scopeFunc(t *testing.T, pkg *lint.Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in %s", name, pkg.Path)
	}
	return fn
}

func TestFactsMarkedRoots(t *testing.T) {
	facts, byPath := loadFacts(t)
	a := byPath["tmpmod/a"]

	roots := facts.Marked("hotpath")
	if len(roots) != 1 || roots[0].Name() != "Root" {
		t.Fatalf("Marked(hotpath) = %v, want exactly a.Root", roots)
	}
	if !facts.HasMark(roots[0], "hotpath") {
		t.Fatal("HasMark(Root, hotpath) = false")
	}
	if facts.HasMark(scopeFunc(t, a, "helper"), "hotpath") {
		t.Fatal("HasMark(helper, hotpath) = true, want false")
	}
	if facts.HasMark(nil, "hotpath") {
		t.Fatal("HasMark(nil) = true")
	}
	if facts.Marked("nosuchmark") != nil {
		t.Fatal("Marked(nosuchmark) returned roots")
	}
}

func TestFactsCallResolution(t *testing.T) {
	facts, byPath := loadFacts(t)
	a := byPath["tmpmod/a"]

	fi := facts.Info(scopeFunc(t, a, "Root"))
	if fi == nil {
		t.Fatal("Info(Root) = nil")
	}
	// Classify Root's outgoing calls by callee name. len(...) is a builtin
	// and must not be indexed at all.
	classes := map[string]*lint.CallSite{}
	for _, cs := range fi.Calls {
		switch {
		case cs.Dynamic:
			classes["dynamic"] = cs
		case cs.Iface:
			classes["iface"] = cs
		case len(cs.Callees) == 1:
			classes[cs.Callees[0].Name()] = cs
		}
	}
	if len(fi.Calls) != 5 {
		t.Fatalf("Root has %d resolved calls, want 5 (builtins excluded)", len(fi.Calls))
	}
	for _, want := range []string{"Free", "Alloc", "helper", "dynamic", "iface"} {
		if classes[want] == nil {
			t.Fatalf("Root is missing a %s call site (got %v)", want, classes)
		}
	}
	// The interface call resolves to every module implementation.
	iface := classes["iface"]
	impls := map[string]bool{}
	for _, fn := range iface.Callees {
		impls[fn.FullName()] = true
	}
	if len(impls) != 2 || !impls["(tmpmod/a.fast).Work"] || !impls["(*tmpmod/a.slow).Work"] {
		t.Fatalf("interface call resolved to %v, want fast.Work and (*slow).Work", impls)
	}
	// Site retrieves the same resolution by call expression.
	if facts.Site(classes["Free"].Call) != classes["Free"] {
		t.Fatal("Site did not return the indexed call site")
	}
	// Cross-package summaries: the qualified callee has its own FuncInfo.
	if facts.Info(classes["Alloc"].Callees[0]) == nil {
		t.Fatal("no summary for cross-package callee b.Alloc")
	}
}

func TestFactsTypeMarks(t *testing.T) {
	facts, byPath := loadFacts(t)
	a := byPath["tmpmod/a"]

	shared := a.Types.Scope().Lookup("Shared").Type()
	plain := a.Types.Scope().Lookup("Plain").Type()
	if !facts.TypeMarked(shared, "segshared") {
		t.Fatal("TypeMarked(Shared) = false")
	}
	// Pointer and slice wrappers unwrap to the marked named type.
	if !facts.TypeMarked(types.NewPointer(shared), "segshared") {
		t.Fatal("TypeMarked(*Shared) = false")
	}
	if !facts.TypeMarked(types.NewSlice(types.NewPointer(shared)), "segshared") {
		t.Fatal("TypeMarked([]*Shared) = false")
	}
	if facts.TypeMarked(plain, "segshared") {
		t.Fatal("TypeMarked(Plain) = true, want false")
	}
	if facts.TypeMarked(types.Typ[types.Int], "segshared") {
		t.Fatal("TypeMarked(int) = true, want false")
	}
}

func TestFactsAllowed(t *testing.T) {
	facts, byPath := loadFacts(t)
	a := byPath["tmpmod/a"]

	fi := facts.Info(scopeFunc(t, a, "Root"))
	var allocCall, freeCall *lint.CallSite
	for _, cs := range fi.Calls {
		if cs.Dynamic || cs.Iface {
			continue
		}
		switch cs.Callees[0].Name() {
		case "Alloc":
			allocCall = cs
		case "Free":
			freeCall = cs
		}
	}
	if !facts.Allowed(allocCall.Call.Pos(), "noalloc") {
		t.Fatal("suppressed b.Alloc call not Allowed for noalloc")
	}
	if facts.Allowed(allocCall.Call.Pos(), "segshare") {
		t.Fatal("allow for noalloc leaked to another analyzer")
	}
	if facts.Allowed(freeCall.Call.Pos(), "noalloc") {
		t.Fatal("unsuppressed b.Free call reported as Allowed")
	}
}

func TestPkgRef(t *testing.T) {
	facts, byPath := loadFacts(t)
	a := byPath["tmpmod/a"]

	fi := facts.Info(scopeFunc(t, a, "Root"))
	for _, cs := range fi.Calls {
		sel, ok := cs.Call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		path, name, ok := lint.PkgRef(a.Info, sel)
		if cs.Iface {
			// w.Work: receiver is a variable, not a package.
			if ok {
				t.Fatalf("PkgRef resolved method selector w.Work to %s.%s", path, name)
			}
			continue
		}
		if !ok || path != "tmpmod/b" {
			t.Fatalf("PkgRef(%s) = %q.%q ok=%v, want tmpmod/b", cs.Callees[0].Name(), path, name, ok)
		}
	}
}

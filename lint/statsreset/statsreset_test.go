package statsreset_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/statsreset"
)

func TestWholeStructReset(t *testing.T) {
	linttest.Run(t, "testdata/src/a", statsreset.Analyzer)
}

func TestFieldByFieldReset(t *testing.T) {
	linttest.Run(t, "testdata/src/b", statsreset.Analyzer)
}

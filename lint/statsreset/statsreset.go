// Package statsreset is the static companion to the ResetStats reflection
// test: a counter field added to a package's Stats struct must be handled
// by the package's reset and snapshot paths.
//
// The measurement-window contract says every Stats field accumulates from
// the last ResetStats, and that snapshot accessors return fully detached
// copies. Value fields are safe by construction (whole-struct assignment
// zeroes or copies them), but reference fields — maps, slices, pointers —
// silently alias or survive a reset unless handled explicitly. The
// analyzer therefore checks, in any package declaring a struct named
// "Stats":
//
//   - a function named ResetStats that assigns a fresh Stats composite
//     literal must initialize every reference field in that literal; a
//     field-by-field ResetStats must mention every field.
//   - a function named Snapshot or Stats whose body copies the struct must
//     mention every reference field (the deep-copy step).
package statsreset

import (
	"go/ast"
	"go/types"

	"soda/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "statsreset",
	Doc:  "fields added to a Stats struct must be handled in ResetStats and Snapshot/Stats accessors",
	Run:  run,
}

func run(pass *lint.Pass) error {
	obj := pass.Pkg.Scope().Lookup("Stats")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var all, refs []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		all = append(all, f.Name())
		switch f.Type().Underlying().(type) {
		case *types.Map, *types.Slice, *types.Pointer, *types.Chan, *types.Signature:
			refs = append(refs, f.Name())
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "ResetStats":
				checkReset(pass, fd, tn, all, refs)
			case "Snapshot", "Stats":
				if returnsStats(pass, fd, tn) {
					checkMentions(pass, fd, refs,
						"reference field %s of Stats is not handled in %s; copy it explicitly or the snapshot aliases live counters")
				}
			}
		}
	}
	return nil
}

// checkReset verifies the reset path. A whole-struct assignment
// (x = Stats{...}) zeroes value fields automatically, so only reference
// fields must appear in the literal; without one, every field must be
// mentioned somewhere in the body.
func checkReset(pass *lint.Pass, fd *ast.FuncDecl, tn *types.TypeName, all, refs []string) {
	lit := statsLiteral(pass, fd.Body, tn)
	if lit != nil {
		present := map[string]bool{}
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					present[id.Name] = true
				}
			}
		}
		for _, name := range refs {
			if !present[name] {
				pass.Reportf(lit.Pos(),
					"reference field %s of Stats is not initialized in the ResetStats literal; it will carry state across measurement windows", name)
			}
		}
		return
	}
	checkMentions(pass, fd, all,
		"field %s of Stats is not mentioned in field-by-field %s; it will survive the reset")
}

// statsLiteral finds a composite literal of the Stats type assigned inside
// body, the canonical whole-struct reset shape.
func statsLiteral(pass *lint.Pass, body *ast.BlockStmt, tn *types.TypeName) *ast.CompositeLit {
	var found *ast.CompositeLit
	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || found != nil {
			return true
		}
		if tv, ok := pass.Info.Types[cl]; ok {
			if named, ok := tv.Type.(*types.Named); ok && named.Obj() == tn.Type().(*types.Named).Obj() {
				found = cl
				return false
			}
		}
		return true
	})
	return found
}

// returnsStats reports whether fd's results include the Stats type.
func returnsStats(pass *lint.Pass, fd *ast.FuncDecl, tn *types.TypeName) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		if tv, ok := pass.Info.Types[res.Type]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj() == tn.Type().(*types.Named).Obj() {
				return true
			}
		}
	}
	return false
}

// checkMentions reports every field in names that never appears as a
// selector or key inside fd's body.
func checkMentions(pass *lint.Pass, fd *ast.FuncDecl, names []string, format string) {
	mentioned := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			mentioned[n.Sel.Name] = true
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				mentioned[id.Name] = true
			}
		}
		return true
	})
	for _, name := range names {
		if !mentioned[name] {
			pass.Reportf(fd.Pos(), format, name, fd.Name.Name)
		}
	}
}

// Package a seeds statsreset violations for the analyzer's golden test:
// whole-struct reset and snapshot accessors that miss a reference field.
package a

type Stats struct {
	FramesSent uint64
	BytesSent  uint64
	ByKind     map[uint8]uint64
	PerNode    map[uint16]uint64
}

type Bus struct {
	stats Stats
}

// ResetStats replaces the whole value but forgets to initialize PerNode, so
// the next window would write into a nil map (or, if lazily created, leak
// the old window's entries through aliases held elsewhere).
func (b *Bus) ResetStats() {
	b.stats = Stats{ByKind: make(map[uint8]uint64)} // want `reference field PerNode of Stats is not initialized`
}

// Stats deep-copies ByKind but returns PerNode aliased to the live map.
func (b *Bus) Stats() Stats { // want `reference field PerNode of Stats is not handled in Stats`
	out := b.stats
	out.ByKind = make(map[uint8]uint64, len(b.stats.ByKind))
	for k, v := range b.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Package b seeds the field-by-field reset shape for the statsreset golden
// test: without a whole-struct literal, every field must be mentioned.
package b

type Stats struct {
	FramesSent uint64
	FramesLost uint64
}

type Bus struct {
	stats Stats
}

// ResetStats zeroes fields one at a time and forgets FramesLost.
func (b *Bus) ResetStats() { // want `field FramesLost of Stats is not mentioned`
	b.stats.FramesSent = 0
}

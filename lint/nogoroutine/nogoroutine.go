// Package nogoroutine bans raw concurrency outside the simulation kernel.
//
// Determinism rests on the kernel running exactly one process at a time,
// with control handed over explicitly (sim.Kernel.Spawn, Proc.Hold,
// Proc.Suspend/Resume) and ties broken by sequence number. A raw goroutine,
// channel, select, or sync primitive reintroduces the Go scheduler — and
// with it run-to-run interleaving variance — behind the kernel's back.
// internal/sim itself is exempt: it is the one place that legitimately
// builds the cooperative machinery out of goroutines and channels.
package nogoroutine

import (
	"go/ast"
	"go/token"
	"strings"

	"soda/lint"
)

// ExemptPaths are package import paths allowed to use raw concurrency.
var ExemptPaths = map[string]bool{
	"soda/internal/sim": true,
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid goroutines, channels, select, and sync outside internal/sim; concurrency goes through the scheduler",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if ExemptPaths[pass.Pkg.Path()] {
		return nil
	}
	// A declared real-time zone (//lint:zone realtime, eligibility-checked
	// by lint.InRealtimeZone) owns its concurrency: the socket backend's
	// accept loops and per-peer writers are the point, and its isolation
	// from kernel state is argued in DESIGN.md §16 instead.
	if lint.InRealtimeZone(pass) {
		return nil
	}
	const remedy = "concurrency outside internal/sim must go through the scheduler (sim.Kernel.Spawn / Proc.Hold / Proc.Suspend)"
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "sync" || strings.HasPrefix(path, "sync/") {
				pass.Reportf(imp.Pos(), "import of %q: %s", path, remedy)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement spawns a raw goroutine; %s", remedy)
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select races channel operations under the Go scheduler; %s", remedy)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send; %s", remedy)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive; %s", remedy)
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type declared; %s", remedy)
			}
			return true
		})
	}
	return nil
}

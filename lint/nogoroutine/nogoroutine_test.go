package nogoroutine_test

import (
	"testing"

	"soda/lint"
	"soda/lint/linttest"
	"soda/lint/nogoroutine"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nogoroutine.Analyzer)
}

// TestZoneIneligible pins that a //lint:zone realtime declaration outside
// lint.RealtimeZonePaths is itself a finding and lifts nothing.
func TestZoneIneligible(t *testing.T) {
	linttest.Run(t, "testdata/src/zone", nogoroutine.Analyzer)
}

// TestZoneActive pins that an eligible, reasoned declaration lifts the
// concurrency bans for the whole package.
func TestZoneActive(t *testing.T) {
	lint.RealtimeZonePaths["a"] = true
	defer delete(lint.RealtimeZonePaths, "a")
	linttest.Run(t, "testdata/src/zoneok", nogoroutine.Analyzer)
}

// TestZoneMissingReason pins that an eligible but reasonless declaration
// is reported and ignored.
func TestZoneMissingReason(t *testing.T) {
	lint.RealtimeZonePaths["a"] = true
	defer delete(lint.RealtimeZonePaths, "a")
	linttest.Run(t, "testdata/src/zonebare", nogoroutine.Analyzer)
}

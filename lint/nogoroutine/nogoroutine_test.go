package nogoroutine_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/nogoroutine"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nogoroutine.Analyzer)
}

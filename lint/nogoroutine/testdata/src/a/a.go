// Package a seeds nogoroutine violations for the analyzer's golden test.
package a

import "sync" // want `import of "sync"`

func bad() {
	ch := make(chan int) // want `channel type declared`
	go work()            // want `go statement spawns a raw goroutine`
	ch <- 1              // want `channel send`
	<-ch                 // want `channel receive`
	select {}            // want `select races channel operations`
}

func alsoBad() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}

func work() {}

func good() {
	// Plain sequential code under the scheduler needs none of the above.
	total := 0
	for i := 0; i < 4; i++ {
		total += i
	}
	_ = total
}

func allowed() {
	go work() //lint:allow nogoroutine (testing the annotation syntax)
}

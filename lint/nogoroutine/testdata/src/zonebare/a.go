// Package a is eligible for the realtime zone but declares it without a
// reason: the declaration is reported and ignored, so the bans stay.
package a

//lint:zone realtime // want `needs a non-empty \(reason\)`

func bad() {
	go work() // want `go statement spawns a raw goroutine`
}

func work() {}

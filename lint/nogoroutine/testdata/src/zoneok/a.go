// Package a is an eligible, well-formed realtime zone: the concurrency
// bans lift for the whole package. (The test grants eligibility to path
// "a" before running.)
package a

//lint:zone realtime (sanctioned realtime zone for this golden test)

import "sync"

func fine() {
	var mu sync.Mutex
	ch := make(chan int, 1)
	go func() {
		mu.Lock()
		ch <- 1
		mu.Unlock()
	}()
	<-ch
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// Package a declares a realtime zone without being eligible: the
// declaration is itself a finding and the concurrency bans stay in force.
package a

//lint:zone realtime (wishful) // want `not eligible for the realtime zone`

func bad() {
	go work() // want `go statement spawns a raw goroutine`
}

func work() {}

// Golden data for linttest's own test: the flagbad analyzer reports every
// function whose name starts with Bad. Both want-comment quoting forms are
// exercised, plus a //lint:allow suppression that must be honored (no want
// on that line — linttest fails if a diagnostic survives there).
package flagbad

func BadOne() {} // want `function BadOne is flagged`

func Good() {}

func BadTwo() {} // want "function Bad[A-Za-z]+ is flagged"

//lint:allow flagbad (suppressed in golden data)
func BadThree() {}

// Package linttest runs a lint.Analyzer over a testdata package and checks
// its diagnostics against expectations embedded in the source, in the style
// of golang.org/x/tools/go/analysis/analysistest:
//
//	data := badStruct{}   // want `construction must be nil-guarded`
//
// A "// want" comment expects exactly one diagnostic on its line whose
// message matches the regular expression (quoted with backquotes or double
// quotes). Lines without a want comment must produce no diagnostic.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"soda/lint"
)

var wantRe = regexp.MustCompile("// want (`([^`]*)`|\"([^\"]*)\")")

// Run loads the Go package in dir (typically "testdata/src/a"), applies the
// analyzer, and reports mismatches between expected and actual diagnostics
// as test errors. //lint:allow annotations in the test sources are honored,
// so suppression syntax is testable too.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg := load(t, dir)
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a}, lint.MarkedEventTypes([]*lint.Package{pkg}), nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		got[k] = append(got[k], d.Message)
	}

	want := map[key]*regexp.Regexp{}
	for _, f := range pkg.Files {
		fileName := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				expr := m[2]
				if expr == "" {
					expr = m[3]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fileName, expr, err)
				}
				want[key{fileName, pkg.Fset.Position(c.Pos()).Line}] = re
			}
		}
	}

	var keys []key
	//lint:allow mapiterorder (keys are sorted immediately below)
	for k := range want {
		keys = append(keys, k)
	}
	//lint:allow mapiterorder (keys are sorted immediately below)
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		re, expected := want[k]
		msgs := got[k]
		switch {
		case expected && len(msgs) == 0:
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		case !expected && len(msgs) > 0:
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, strings.Join(msgs, "; "))
		case expected:
			for _, msg := range msgs {
				if !re.MatchString(msg) {
					t.Errorf("%s:%d: diagnostic %q does not match %q", k.file, k.line, msg, re)
				}
			}
		}
	}
}

// load parses and type-checks dir as a single package named by its files,
// resolving imports (standard library only) from GOROOT source.
func load(t *testing.T, dir string) *lint.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("a", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	return &lint.Package{Path: "a", Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
}

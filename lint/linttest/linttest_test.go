package linttest_test

import (
	"go/ast"
	"testing"

	"soda/lint"
	"soda/lint/linttest"
)

// flagBad reports every function whose name starts with "Bad" — a minimal
// analyzer whose findings are fully predictable, so the golden-matching
// machinery itself is under test: backquoted and double-quoted want
// regexps must match, unflagged lines must stay silent, and //lint:allow
// must suppress.
var flagBad = &lint.Analyzer{
	Name: "flagbad",
	Doc:  "test analyzer: flags functions named Bad*",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name := fd.Name.Name
				if len(name) >= 3 && name[:3] == "Bad" {
					pass.Reportf(fd.Pos(), "function %s is flagged", name)
				}
			}
		}
		return nil
	},
}

func TestGoldenDiagnosticMatching(t *testing.T) {
	linttest.Run(t, "testdata/src/flagbad", flagBad)
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Main is the multichecker entry point used by cmd/sodavet. It understands
// three invocation shapes:
//
//	sodavet ./...            — analyze the whole module (standalone mode)
//	sodavet ./internal/...   — analyze packages under a subtree
//	sodavet <file>.cfg       — go vet -vettool unit-checking protocol
//	                           (best-effort: module packages only)
//
// plus the -flags/-V=full introspection calls the go command makes before
// driving a vettool. Standalone mode accepts two option flags before the
// patterns: -json writes diagnostics to stdout as a JSON array
// (file/line/col/analyzer/message), and -suppressions lists every active
// //lint:allow site in the selected packages instead of analyzing them.
// It returns the process exit code: 0 clean, 1 findings, 2 usage or load
// failure.
func Main(args []string, analyzers []*Analyzer) int {
	var opts driverOptions
	for len(args) > 0 {
		switch args[0] {
		case "-json":
			opts.json = true
		case "-suppressions":
			opts.suppressions = true
		default:
			goto parsed
		}
		args = args[1:]
	}
parsed:
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sodavet [-json] [-suppressions] <packages>|<vet.cfg>")
		return 2
	}
	switch {
	case args[0] == "-flags":
		// The go command queries supported analyzer flags; we add none.
		fmt.Println("[]")
		return 0
	case strings.HasPrefix(args[0], "-V"):
		fmt.Println("sodavet version devel")
		return 0
	case strings.HasSuffix(args[0], ".cfg"):
		return vetUnitMode(args[0], analyzers)
	}
	return standaloneMode(args, analyzers, opts)
}

// driverOptions are the standalone-mode flags.
type driverOptions struct {
	json         bool
	suppressions bool
}

// jsonDiagnostic is the -json wire shape for one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func standaloneMode(patterns []string, analyzers []*Analyzer, opts driverOptions) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	selected := selectPackages(pkgs, patterns, loader.ModulePath(), cwd, root)
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "sodavet: no packages match", strings.Join(patterns, " "))
		return 2
	}
	if opts.suppressions {
		return listSuppressions(selected, opts)
	}
	eventTypes := MarkedEventTypes(pkgs)
	facts := BuildFacts(pkgs)
	var all []jsonDiagnostic
	found := false
	for _, pkg := range selected {
		diags, err := RunAnalyzers(pkg, analyzers, eventTypes, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sodavet:", err)
			return 2
		}
		for _, d := range diags {
			found = true
			pos := loader.Fset.Position(d.Pos)
			if opts.json {
				all = append(all, jsonDiagnostic{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			} else {
				fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
			}
		}
	}
	if opts.json {
		if all == nil {
			all = []jsonDiagnostic{} // encode as [], never null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "sodavet:", err)
			return 2
		}
	}
	if found {
		return 1
	}
	return 0
}

// jsonAllowSite is the -suppressions -json wire shape for one annotation.
type jsonAllowSite struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// listSuppressions prints every //lint:allow annotation in the selected
// packages, one line per site (or a JSON array with -json), so stale
// suppressions are auditable. Exit code 0; malformed suppressions are the
// analysis run's business, not this listing's.
func listSuppressions(selected []*Package, opts driverOptions) int {
	var sites []AllowSite
	for _, pkg := range selected {
		sites = append(sites, CollectAllowSites(pkg)...)
		// Zone declarations are package-wide suppressions in effect; audit
		// them in the same listing, tagged "zone:<name>".
		for _, z := range CollectZoneSites(pkg) {
			sites = append(sites, AllowSite{Pos: z.Pos, Analyzer: "zone:" + z.Name, Reason: z.Reason})
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Pos.Filename != sites[j].Pos.Filename {
			return sites[i].Pos.Filename < sites[j].Pos.Filename
		}
		return sites[i].Pos.Line < sites[j].Pos.Line
	})
	if opts.json {
		out := make([]jsonAllowSite, 0, len(sites))
		for _, s := range sites {
			out = append(out, jsonAllowSite{
				File: s.Pos.Filename, Line: s.Pos.Line,
				Analyzer: s.Analyzer, Reason: s.Reason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sodavet:", err)
			return 2
		}
		return 0
	}
	for _, s := range sites {
		reason := s.Reason
		if reason == "" {
			reason = "MISSING REASON"
		}
		fmt.Printf("%s:%d: %s (%s)\n", s.Pos.Filename, s.Pos.Line, s.Analyzer, reason)
	}
	return 0
}

// selectPackages filters pkgs by the command-line patterns. "./..." (from
// the module root) and "all" select everything; "./x/..." selects a
// subtree; "./x" or an import path selects one package.
func selectPackages(pkgs []*Package, patterns []string, modPath, cwd, root string) []*Package {
	var out []*Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg, pat, modPath, cwd, root) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pkg *Package, pat, modPath, cwd, root string) bool {
	if pat == "all" {
		return true
	}
	// Resolve filesystem-style patterns against cwd.
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		base, rest := pat, ""
		if strings.HasSuffix(pat, "/...") {
			base, rest = strings.TrimSuffix(pat, "/..."), "..."
		}
		abs := base
		if !filepath.IsAbs(base) {
			abs = filepath.Join(cwd, base)
		}
		abs = filepath.Clean(abs)
		if rest == "..." {
			return pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator))
		}
		return pkg.Dir == abs
	}
	// Import-path pattern.
	if strings.HasSuffix(pat, "/...") {
		base := strings.TrimSuffix(pat, "/...")
		return pkg.Path == base || strings.HasPrefix(pkg.Path, base+"/")
	}
	return pkg.Path == pat
}

// vetConfig is the subset of the go vet unit-checking config we consume.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// vetUnitMode implements enough of the go vet -vettool protocol to analyze
// module packages: it parses the package's files and type-checks them
// against the module tree from source. Packages outside the module (or
// whose type information cannot be rebuilt from source) are skipped rather
// than failed, since the go command drives the tool over every dependency.
func vetUnitMode(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	root, err := FindModuleRoot(cfg.Dir)
	if err != nil {
		return 0 // outside any module we can analyze
	}
	loader, err := NewLoader(root)
	if err != nil {
		return 0
	}
	mod := loader.ModulePath()
	if cfg.ImportPath != mod && !strings.HasPrefix(cfg.ImportPath, mod+"/") {
		return 0 // dependency package; nothing of ours to check
	}
	pkg, err := loadVetUnit(loader, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	// Event-type markers and interprocedural facts may live in other
	// module packages (e.g. a literal of core.ObsEvent built outside
	// internal/core, or a hotpath root whose callees cross packages), so
	// scan the whole module. The unit package's own parse replaces the
	// loader's copy in the facts index so findings anchor to the syntax
	// being analyzed.
	all, err := loader.LoadAll()
	if err != nil {
		all = []*Package{pkg}
	}
	factPkgs := make([]*Package, 0, len(all)+1)
	for _, p := range all {
		if p.Path != pkg.Path {
			factPkgs = append(factPkgs, p)
		}
	}
	factPkgs = append(factPkgs, pkg)
	eventTypes := MarkedEventTypes(all)
	diags, err := RunAnalyzers(pkg, analyzers, eventTypes, BuildFacts(factPkgs))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadVetUnit type-checks exactly the files the go command handed us (which
// may include generated files outside the package directory).
func loadVetUnit(loader *Loader, cfg vetConfig) (*Package, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(loader.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: loader}
	tpkg, err := conf.Check(cfg.ImportPath, loader.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: loader.Fset, Files: files, Types: tpkg, Info: info}, nil
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Main is the multichecker entry point used by cmd/sodavet. It understands
// three invocation shapes:
//
//	sodavet ./...            — analyze the whole module (standalone mode)
//	sodavet ./internal/...   — analyze packages under a subtree
//	sodavet <file>.cfg       — go vet -vettool unit-checking protocol
//	                           (best-effort: module packages only)
//
// plus the -flags/-V=full introspection calls the go command makes before
// driving a vettool. It returns the process exit code: 0 clean, 1 findings,
// 2 usage or load failure.
func Main(args []string, analyzers []*Analyzer) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sodavet <packages>|<vet.cfg>")
		return 2
	}
	switch {
	case args[0] == "-flags":
		// The go command queries supported analyzer flags; we add none.
		fmt.Println("[]")
		return 0
	case strings.HasPrefix(args[0], "-V"):
		fmt.Println("sodavet version devel")
		return 0
	case strings.HasSuffix(args[0], ".cfg"):
		return vetUnitMode(args[0], analyzers)
	}
	return standaloneMode(args, analyzers)
}

func standaloneMode(patterns []string, analyzers []*Analyzer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	selected := selectPackages(pkgs, patterns, loader.ModulePath(), cwd, root)
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "sodavet: no packages match", strings.Join(patterns, " "))
		return 2
	}
	eventTypes := MarkedEventTypes(pkgs)
	found := false
	for _, pkg := range selected {
		diags, err := RunAnalyzers(pkg, analyzers, eventTypes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sodavet:", err)
			return 2
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if found {
		return 1
	}
	return 0
}

// selectPackages filters pkgs by the command-line patterns. "./..." (from
// the module root) and "all" select everything; "./x/..." selects a
// subtree; "./x" or an import path selects one package.
func selectPackages(pkgs []*Package, patterns []string, modPath, cwd, root string) []*Package {
	var out []*Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg, pat, modPath, cwd, root) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pkg *Package, pat, modPath, cwd, root string) bool {
	if pat == "all" {
		return true
	}
	// Resolve filesystem-style patterns against cwd.
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		base, rest := pat, ""
		if strings.HasSuffix(pat, "/...") {
			base, rest = strings.TrimSuffix(pat, "/..."), "..."
		}
		abs := base
		if !filepath.IsAbs(base) {
			abs = filepath.Join(cwd, base)
		}
		abs = filepath.Clean(abs)
		if rest == "..." {
			return pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator))
		}
		return pkg.Dir == abs
	}
	// Import-path pattern.
	if strings.HasSuffix(pat, "/...") {
		base := strings.TrimSuffix(pat, "/...")
		return pkg.Path == base || strings.HasPrefix(pkg.Path, base+"/")
	}
	return pkg.Path == pat
}

// vetConfig is the subset of the go vet unit-checking config we consume.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// vetUnitMode implements enough of the go vet -vettool protocol to analyze
// module packages: it parses the package's files and type-checks them
// against the module tree from source. Packages outside the module (or
// whose type information cannot be rebuilt from source) are skipped rather
// than failed, since the go command drives the tool over every dependency.
func vetUnitMode(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	root, err := FindModuleRoot(cfg.Dir)
	if err != nil {
		return 0 // outside any module we can analyze
	}
	loader, err := NewLoader(root)
	if err != nil {
		return 0
	}
	mod := loader.ModulePath()
	if cfg.ImportPath != mod && !strings.HasPrefix(cfg.ImportPath, mod+"/") {
		return 0 // dependency package; nothing of ours to check
	}
	pkg, err := loadVetUnit(loader, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	// Event-type markers may live in other module packages (e.g. a literal
	// of core.ObsEvent built outside internal/core), so scan the whole
	// module for them.
	all, err := loader.LoadAll()
	if err != nil {
		all = []*Package{pkg}
	}
	eventTypes := MarkedEventTypes(all)
	diags, err := RunAnalyzers(pkg, analyzers, eventTypes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadVetUnit type-checks exactly the files the go command handed us (which
// may include generated files outside the package directory).
func loadVetUnit(loader *Loader, cfg vetConfig) (*Package, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(loader.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: loader}
	tpkg, err := conf.Check(cfg.ImportPath, loader.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: loader.Fset, Files: files, Types: tpkg, Info: info}, nil
}

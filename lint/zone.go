package lint

import (
	"go/token"
	"strings"
)

// Real-time zone declarations.
//
// Almost every package in this module is simulation code: virtual time
// only (nowallclock) and scheduler-owned concurrency only (nogoroutine).
// The socket backend is the one deliberate exception — wall-clock pacing
// and socket goroutines are its entire job. Rather than silently widening
// the analyzers' exemption tables, a package that needs real time must
// *declare* it in source with
//
//	//lint:zone realtime (reason)
//
// and the declaration is enforced three ways: it only takes effect in
// packages listed in RealtimeZonePaths (a declaration anywhere else is
// itself a finding), it must carry a non-empty parenthesized reason (like
// //lint:allow), and every declaration is listed by `sodavet
// -suppressions` so the zone stays auditable next to the suppressions.

// zoneDirective is the comment prefix that declares a zone.
const zoneDirective = "//lint:zone "

// RealtimeZonePaths lists the package import paths eligible to declare the
// "realtime" zone. Eligibility is a reviewed property of the architecture,
// not something a package can grant itself.
var RealtimeZonePaths = map[string]bool{
	"soda/internal/netx": true,
}

// ZoneSite is one //lint:zone declaration.
type ZoneSite struct {
	Pos    token.Position
	Name   string // zone name, e.g. "realtime"
	Reason string // empty when the declaration is malformed

	pos token.Pos
}

// collectZones gathers every zone declaration in pkg's files, in source
// order.
func collectZones(pkg *Package) []ZoneSite {
	var sites []ZoneSite
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, zoneDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, zoneDirective))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				reason = strings.TrimSpace(reason)
				if strings.HasPrefix(reason, "(") && strings.HasSuffix(reason, ")") {
					reason = strings.TrimSpace(reason[1 : len(reason)-1])
				} else {
					reason = "" // a bare trailing word is not a reason
				}
				sites = append(sites, ZoneSite{
					Pos: pkg.Fset.Position(c.Pos()), Name: name, Reason: reason, pos: c.Pos(),
				})
			}
		}
	}
	return sites
}

// CollectZoneSites returns every //lint:zone declaration in pkg, for the
// driver's -suppressions audit.
func CollectZoneSites(pkg *Package) []ZoneSite { return collectZones(pkg) }

// InRealtimeZone reports whether the pass's package has an effective
// realtime-zone declaration. A declaration in an ineligible package, or
// one missing its reason, is reported through the pass (so the calling
// analyzer's findings stay attributed to it) and does not activate the
// zone — the wall-clock and concurrency bans still apply there.
func InRealtimeZone(pass *Pass) bool {
	active := false
	for _, z := range zoneSitesOf(pass) {
		if z.Name != "realtime" {
			pass.Reportf(z.pos, "unknown lint zone %q (only \"realtime\" exists)", z.Name)
			continue
		}
		if !RealtimeZonePaths[pass.Pkg.Path()] {
			pass.Reportf(z.pos,
				"package %s is not eligible for the realtime zone (see lint.RealtimeZonePaths); the declaration is ignored",
				pass.Pkg.Path())
			continue
		}
		if z.Reason == "" {
			pass.Reportf(z.pos, "//lint:zone realtime needs a non-empty (reason); the declaration is ignored")
			continue
		}
		active = true
	}
	return active
}

// RealtimeZoneActive reports whether pkg carries an effective realtime
// zone declaration (eligible import path and a well-formed reason).
// Unlike InRealtimeZone it never reports findings; interprocedural
// analyzers use it to prune traversal at the zone boundary — code inside
// the zone runs on the wall clock, never inside a measured simulation.
func RealtimeZoneActive(pkg *Package) bool {
	if !RealtimeZonePaths[pkg.Path] {
		return false
	}
	for _, z := range collectZones(pkg) {
		if z.Name == "realtime" && z.Reason != "" {
			return true
		}
	}
	return false
}

// zoneSitesOf adapts a Pass to collectZones's package shape.
func zoneSitesOf(pass *Pass) []ZoneSite {
	return collectZones(&Package{Fset: pass.Fset, Files: pass.Files})
}

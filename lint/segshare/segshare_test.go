package segshare_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/segshare"
)

func TestSegshare(t *testing.T) {
	linttest.Run(t, "testdata/src/a", segshare.Analyzer)
}

// Package a exercises the segshare analyzer: segroot reachability,
// segshared write detection, the segqueue deferral exemption, segemit
// gating, package-level writes, and suppression pruning.
package a

// shared is internetwork-wide state every segment can see; handlers may
// read it but only the owning side mutates it.
//
//lint:segshared
type shared struct {
	total    int
	counters map[string]int
}

// node is one gateway-like handler: sh points at shared state, own is the
// handler's private bookkeeping.
type node struct {
	sh  *shared
	own int
}

var global int

// after stands in for the scheduler: closures handed to it run later as
// their own serialized events.
//
//lint:segqueue
func after(d int, fn func()) { _ = d; _ = fn }

// emit stands in for bus frame emission.
//
//lint:segemit
func emit(b []byte) { _ = b }

// onFrame is the segment-processing entry point.
//
//lint:segroot
func (n *node) onFrame(raw []byte) {
	n.own++          // the handler's own state: fine
	n.sh.total++     // want `write to segment-shared state`
	global = 1       // want `write to package-level variable global`
	p := &n.sh.total // want `address of segment-shared state`
	_ = p
	emit(raw) // want `synchronous frame emission from a segment handler`
	after(1, func() {
		// Deferred through the gateway queue: the kernel serializes this
		// closure as its own event, so emission and shared writes here
		// are the sanctioned path.
		emit(raw)
		n.sh.total++
	})
	helper(n)
	dyn(func() {}) // the closure itself is fine; dyn's invocation is not
	// The suppression below vouches for audited's subtree and prunes it.
	audited(n) //lint:allow segshare (audited: writes only the local segment's own bus)
}

// helper is reachable from the root: its shared write is still a finding.
func helper(n *node) {
	n.sh.counters["x"] = 1 // want `write to segment-shared state`
}

func dyn(f func()) {
	f() // want `dynamic call through a func value`
}

// audited writes shared state, but the call above is suppressed: nothing
// in here is reported.
func audited(n *node) {
	n.sh.total++
}

// offPath is not reachable from any segroot: no findings.
func offPath(n *node) {
	n.sh.total++
	global = 2
}

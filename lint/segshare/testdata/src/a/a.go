// Package a exercises the segshare analyzer: segroot reachability,
// segshared write detection, the segqueue deferral exemption, segemit
// gating, package-level writes, and suppression pruning.
package a

// shared is internetwork-wide state every segment can see; handlers may
// read it but only the owning side mutates it.
//
//lint:segshared
type shared struct {
	total    int
	counters map[string]int
}

// node is one gateway-like handler: sh points at shared state, own is the
// handler's private bookkeeping.
type node struct {
	sh  *shared
	own int
}

var global int

// after stands in for the scheduler: closures handed to it run later as
// their own serialized events.
//
//lint:segqueue
func after(d int, fn func()) { _ = d; _ = fn }

// emit stands in for bus frame emission.
//
//lint:segemit
func emit(b []byte) { _ = b }

// onFrame is the segment-processing entry point.
//
//lint:segroot
func (n *node) onFrame(raw []byte) {
	n.own++          // the handler's own state: fine
	n.sh.total++     // want `write to segment-shared state`
	global = 1       // want `write to package-level variable global`
	p := &n.sh.total // want `address of segment-shared state`
	_ = p
	emit(raw) // want `synchronous frame emission from a segment handler`
	after(1, func() {
		// Deferred through the gateway queue: the kernel serializes this
		// closure as its own event, so emission and shared writes here
		// are the sanctioned path.
		emit(raw)
		n.sh.total++
	})
	helper(n)
	dyn(func() {}) // the closure itself is fine; dyn's invocation is not
	// The suppression below vouches for audited's subtree and prunes it.
	audited(n) //lint:allow segshare (audited: writes only the local segment's own bus)
}

// helper is reachable from the root: its shared write is still a finding.
func helper(n *node) {
	n.sh.counters["x"] = 1 // want `write to segment-shared state`
}

func dyn(f func()) {
	f() // want `dynamic call through a func value`
}

// audited writes shared state, but the call above is suppressed: nothing
// in here is reported.
func audited(n *node) {
	n.sh.total++
}

// offPath is not reachable from any segroot: no findings.
func offPath(n *node) {
	n.sh.total++
	global = 2
}

// afterCross stands in for the parallel coordinator's cross-shard
// staging entry (sim.Kernel.AfterCross): the closure is staged to the
// destination shard's queue at the window barrier and replayed there as
// its own serialized event, so it carries the same sanction as after.
//
//lint:segqueue
func afterCross(dst *node, d int, fn func()) { _ = dst; _ = d; _ = fn }

// relayShape mirrors the gateway relay under intra-run parallelism: the
// synchronous half only reads shared routing state, and every mutation
// or emission rides a cross-shard staged closure. Nothing here may be
// flagged — this is the exact shape the coordinator commits in canonical
// order.
//
//lint:segroot
func (n *node) relayShape(peer *node, raw []byte) {
	hops := n.sh.total // reading shared routing state synchronously: fine
	n.own++
	afterCross(peer, 1+hops, func() {
		// Runs on the destination shard after the lookahead window:
		// emission and shared writes are serialized there.
		emit(raw)
		n.sh.total++
	})
}

// gateShape mirrors the order-gated directory access: the handler's
// synchronous shared write is real, but the site is audited because the
// coordinator's order gate serializes it in canonical commit order. The
// suppression prunes the subtree; the gate reason is the reviewable fact.
//
//lint:segroot
func (n *node) gateShape() {
	n.directoryUpdate() //lint:allow segshare (gate: serialized in canonical order by the parallel coordinator's order gate)
}

func (n *node) directoryUpdate() {
	n.sh.counters["dir"]++
}

// Package segshare proves segment-handler code free of cross-segment
// writes — the static safety argument a conservative parallel scheduler
// needs before committing same-segment events concurrently.
//
// A function annotated //lint:segroot is a segment-processing entry point
// (the gateway bridge receive path). Everything reachable from it through
// the module call graph must only mutate state owned by the handling
// gateway itself. Three constructs break that isolation and are flagged:
//
//   - writes (or address-taking) of state typed //lint:segshared — the
//     internetwork-wide structures every segment can see;
//   - writes to package-level variables;
//   - calls to //lint:segemit functions (frame emission onto a bus
//     segment) made synchronously from handler code.
//
// The sanctioned escape hatch is the gateway queue: a function literal
// passed to a //lint:segqueue function (the scheduler's After/At) runs as
// its own deferred event, serialized by the kernel, so its body is exempt
// — cross-segment effects routed through the queue are exactly what the
// future parallel scheduler can order by lookahead. Dynamic calls through
// func values defeat the proof and are flagged conservatively; a
// //lint:allow segshare suppression on a call site vouches for the callee
// subtree and prunes traversal, like noalloc.
package segshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"soda/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "segshare",
	Doc:  "code reachable from //lint:segroot handlers must not write //lint:segshared or package-level state, nor emit frames outside the //lint:segqueue deferral",
	Run:  run,
}

type finding struct {
	pos token.Pos
	msg string
}

func run(pass *lint.Pass) error {
	facts := pass.Facts
	roots := facts.Marked("segroot")
	if len(roots) == 0 {
		return nil
	}
	visited := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn.Origin()] {
			continue
		}
		visited[fn.Origin()] = true
		fi := facts.Info(fn)
		if fi == nil || fi.Decl.Body == nil {
			continue
		}
		findings, callees := analyzeFunc(facts, fi)
		if fi.Pkg.Types == pass.Pkg {
			for _, f := range findings {
				pass.Reportf(f.pos, "%s (segment handler, reachable from //lint:segroot)", f.msg)
			}
		}
		queue = append(queue, callees...)
	}
	return nil
}

// analyzeFunc scans one handler function. Function literals passed to
// //lint:segqueue callees are the deferred gateway queue: their bodies are
// skipped entirely (and segqueue/segemit callees are never descended
// into — the scheduler and the bus are infrastructure, not handler code).
func analyzeFunc(facts *lint.Facts, fi *lint.FuncInfo) ([]finding, []*types.Func) {
	var findings []finding
	var callees []*types.Func
	info := fi.Pkg.Info

	report := func(pos token.Pos, msg string) {
		findings = append(findings, finding{pos: pos, msg: msg})
	}

	// deferred collects the source ranges of queue closures to exempt.
	var deferred []*ast.FuncLit
	exempt := func(n ast.Node) bool {
		for _, lit := range deferred {
			if lint.Contains(lit, n) {
				return true
			}
		}
		return false
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := facts.Site(call)
		if cs == nil {
			return true
		}
		for _, callee := range cs.Callees {
			if facts.HasMark(callee, "segqueue") {
				for _, arg := range call.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						deferred = append(deferred, lit)
					}
				}
				break
			}
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && exempt(lit) {
			return false // deferred gateway-queue work, serialized by the kernel
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(facts, info, lhs, report)
			}
		case *ast.IncDecStmt:
			checkWrite(facts, info, n.X, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND && chainMarked(facts, info, n.X) {
				report(n.Pos(), "address of segment-shared state taken; writes through it are invisible to the isolation proof")
			}
		case *ast.CallExpr:
			cs := facts.Site(n)
			if cs == nil {
				return true
			}
			if facts.Allowed(n.Pos(), "segshare") {
				return true // suppression vouches for the subtree
			}
			if cs.Dynamic {
				report(n.Pos(), "dynamic call through a func value; segment isolation unprovable")
				return true
			}
			for _, callee := range cs.Callees {
				switch {
				case facts.HasMark(callee, "segemit"):
					report(n.Pos(), "synchronous frame emission from a segment handler; defer it through the gateway queue (//lint:segqueue)")
				case facts.HasMark(callee, "segqueue"):
					// The queue call itself is the sanctioned boundary.
				case facts.Info(callee) != nil:
					callees = append(callees, callee)
				}
			}
		}
		return true
	})
	return findings, callees
}

// checkWrite flags an assignment target that is package-level or reaches
// through segment-shared state.
func checkWrite(facts *lint.Facts, info *types.Info, lhs ast.Expr, report func(token.Pos, string)) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if v, ok := obj(info, id).(*types.Var); ok && pkgLevel(v) {
			report(id.Pos(), "write to package-level variable "+v.Name())
		}
		return
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		// A qualified reference to another package's variable.
		if _, vname, ok2 := lint.PkgRef(info, sel); ok2 {
			if v, isVar := info.Uses[sel.Sel].(*types.Var); isVar && pkgLevel(v) {
				report(sel.Pos(), "write to package-level variable "+vname)
				return
			}
		}
	}
	if chainMarked(facts, info, lhs) {
		report(lhs.Pos(), "write to segment-shared state; only the owning side may mutate it")
	}
}

// chainMarked reports whether expr dereferences through a value of a
// //lint:segshared type anywhere along its selector/index chain.
func chainMarked(facts *lint.Facts, info *types.Info, expr ast.Expr) bool {
	for {
		expr = ast.Unparen(expr)
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if tv, ok := info.Types[e.X]; ok && facts.TypeMarked(tv.Type, "segshared") {
				return true
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if tv, ok := info.Types[e]; ok {
				return facts.TypeMarked(tv.Type, "segshared")
			}
			return false
		default:
			return false
		}
	}
}

func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgLevel reports whether v is a package-scoped variable.
func pkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Pkg().Scope().Lookup(v.Name()) == v
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestIsNilCheck(t *testing.T) {
	file := parseSrc(t, `package p

func f(a, b *int) {
	if a != nil && b != nil {
		_ = *a
	}
	if (a == nil) || b == nil {
		return
	}
	if *a > 0 {
		return
	}
}
`)
	var conds []ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if s, ok := n.(*ast.IfStmt); ok {
			conds = append(conds, s.Cond)
		}
		return true
	})
	if len(conds) != 3 {
		t.Fatalf("found %d if conditions, want 3", len(conds))
	}
	cases := []struct {
		cond            ast.Expr
		wantNeq, wantEq bool
	}{
		{conds[0], true, false},  // a != nil && b != nil
		{conds[1], false, true},  // (a == nil) || b == nil
		{conds[2], false, false}, // *a > 0: no nil comparison at all
	}
	for i, tc := range cases {
		if got := IsNilCheck(tc.cond, true); got != tc.wantNeq {
			t.Errorf("cond %d: IsNilCheck(!=) = %v, want %v", i, got, tc.wantNeq)
		}
		if got := IsNilCheck(tc.cond, false); got != tc.wantEq {
			t.Errorf("cond %d: IsNilCheck(==) = %v, want %v", i, got, tc.wantEq)
		}
	}
}

func TestWalkStackAndContains(t *testing.T) {
	file := parseSrc(t, `package p

func f() int {
	x := 1
	return x + 1
}
`)
	// Every visited stack must be rooted at the file, end at the visited
	// node, and each frame must lexically enclose the next.
	visits := 0
	var maxDepth int
	WalkStack(file, func(stack []ast.Node) {
		visits++
		if stack[0] != file {
			t.Fatal("stack not rooted at the file")
		}
		for i := 0; i < len(stack)-1; i++ {
			if !Contains(stack[i], stack[i+1]) {
				t.Fatalf("stack frame %d does not enclose frame %d", i, i+1)
			}
		}
		if len(stack) > maxDepth {
			maxDepth = len(stack)
		}
	})
	if visits == 0 || maxDepth < 4 {
		t.Fatalf("walk visited %d nodes with max depth %d; expected a real traversal", visits, maxDepth)
	}

	// Sibling statements do not contain each other.
	body := file.Decls[0].(*ast.FuncDecl).Body
	if Contains(body.List[0], body.List[1]) || Contains(body.List[1], body.List[0]) {
		t.Fatal("sibling statements reported as containing each other")
	}
	if !Contains(body, body.List[1]) {
		t.Fatal("block does not contain its own statement")
	}
}

// Package mapiterorder flags map iteration whose body has observable
// effects, because Go randomizes map iteration order per run.
//
// Ranging over a map is fine while the body only aggregates (counters,
// building another map, deleting entries): those are order-insensitive. The
// moment the body calls anything — sending a frame, scheduling a kernel
// event, writing output — or accumulates into state declared outside the
// loop, the hash seed leaks into observable behavior and the
// bit-identical-run guarantee is gone. The remedy is sorted-key iteration
// via internal/sortediter; loops whose effects are genuinely
// order-insensitive carry a scoped annotation instead:
//
//	//lint:allow mapiterorder (reason)
package mapiterorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"soda/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "mapiterorder",
	Doc:  "flag effectful iteration over maps; sort keys first (internal/sortediter) for deterministic order",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := effectIn(pass, rs); reason != "" {
				pass.Reportf(rs.Pos(),
					"map iterated in nondeterministic order while its body %s; iterate sortediter.Keys(m) instead, or annotate //lint:allow mapiterorder (reason) if order truly cannot matter", reason)
			}
			return true
		})
	}
	return nil
}

// allowedBuiltins are order-insensitive (or non-effectful) builtin calls.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "delete": true, "min": true, "max": true,
	"make": true, "new": true, "copy": true, "panic": true,
}

// effectIn scans the loop body and returns a description of the first
// order-sensitive effect, or "" if the body is order-insensitive.
func effectIn(pass *lint.Pass, rs *ast.RangeStmt) string {
	reason := ""
	found := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	lint.WalkStack(rs.Body, func(stack []ast.Node) {
		if reason != "" {
			return
		}
		n := stack[len(stack)-1]
		switch n := n.(type) {
		case *ast.GoStmt:
			found("spawns goroutines")
		case *ast.SendStmt:
			found("sends on a channel")
		case *ast.ReturnStmt:
			if !insideFuncLit(stack) {
				found("returns (selecting an arbitrary entry)")
			}
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && !insideNestedLoopOrSwitch(stack) {
				found("breaks (selecting an arbitrary entry)")
			}
		case *ast.CallExpr:
			if r := classifyCall(pass, n, stack, rs); r != "" {
				found(r)
			}
		}
	})
	return reason
}

// insideFuncLit reports whether the innermost enclosing scope of the last
// stack node (excluding it) is a function literal within the loop body.
func insideFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// insideNestedLoopOrSwitch reports whether a break at the top of the stack
// binds to a loop/switch/select nested inside the range body rather than to
// the range loop itself.
func insideNestedLoopOrSwitch(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return true
		}
	}
	return false
}

// classifyCall decides whether one call inside the loop body is an
// order-sensitive effect. Type conversions and order-insensitive builtins
// pass; append is judged by where its target lives.
func classifyCall(pass *lint.Pass, call *ast.CallExpr, stack []ast.Node, rs *ast.RangeStmt) string {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		return "" // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if allowedBuiltins[b.Name()] {
				return ""
			}
			if b.Name() == "append" {
				return classifyAppend(pass, call, stack, rs)
			}
			return "calls " + b.Name()
		}
	}
	return "calls " + types.ExprString(fun) + " (its effects would occur in map order)"
}

// classifyAppend allows appending to a variable declared inside the loop
// body (a per-entry scratch slice) or to a map element (per-key state);
// accumulating into anything longer-lived leaks map order into its element
// order.
func classifyAppend(pass *lint.Pass, call *ast.CallExpr, stack []ast.Node, rs *ast.RangeStmt) string {
	for i := len(stack) - 2; i >= 0; i-- {
		asg, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range asg.Lhs {
			switch lhs := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				obj := pass.Info.Defs[lhs]
				if obj == nil {
					obj = pass.Info.Uses[lhs]
				}
				if obj != nil && rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End() {
					return "" // scratch slice local to the loop body
				}
				return "appends to " + lhs.Name + " (declared outside the loop, so element order follows map order)"
			case *ast.IndexExpr:
				if tv, ok := pass.Info.Types[lhs.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return "" // per-key accumulation into a map
					}
				}
				return "appends into an indexed element"
			}
		}
		return "appends through a non-identifier target"
	}
	return "uses append outside an assignment"
}

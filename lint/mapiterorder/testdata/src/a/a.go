// Package a seeds mapiterorder violations for the analyzer's golden test.
package a

import (
	"fmt"
	"sort"
)

var exported []string

func badCall(m map[string]int) {
	for k := range m { // want `calls fmt.Println`
		fmt.Println(k)
	}
}

func badAppend(m map[string]int) {
	for k := range m { // want `appends to exported`
		exported = append(exported, k)
	}
}

func badLocalAccumulator(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `appends to out`
		out = append(out, k)
	}
	return out
}

func badReturn(m map[string]int) string {
	for k := range m { // want `returns \(selecting an arbitrary entry\)`
		return k
	}
	return ""
}

func badBreak(m map[string]int) {
	found := ""
	for k := range m { // want `breaks \(selecting an arbitrary entry\)`
		if k != "" {
			found = k
			break
		}
	}
	_ = found
}

func goodAggregation(m map[string]int) (int, map[string]int) {
	total := 0
	dst := make(map[string]int, len(m))
	for k, v := range m {
		total += v
		dst[k] = v
	}
	return total, dst
}

func goodDelete(m map[string]int) {
	for k := range m {
		if k == "" {
			delete(m, k)
		}
	}
}

func goodLoopLocalScratch(m map[string][]int) map[string]int {
	counts := make(map[string]int, len(m))
	for k, vs := range m {
		scratch := make([]int, 0, len(vs))
		scratch = append(scratch, vs...)
		counts[k] = len(scratch)
	}
	return counts
}

func goodNestedBreak(m map[string]int) map[string]int {
	hit := make(map[string]int)
	for k, v := range m {
		for i := 0; i < v; i++ {
			if i > 2 {
				break // binds to the inner for, not the map range
			}
			hit[k]++
		}
	}
	return hit
}

func allowedSortingIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lint:allow mapiterorder (keys are sorted before use)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

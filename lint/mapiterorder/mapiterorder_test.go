package mapiterorder_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/mapiterorder"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", mapiterorder.Analyzer)
}

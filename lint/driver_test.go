// Driver tests: multichecker exit codes over a throwaway module, in both
// standalone and go vet -vettool (unit .cfg) modes. External test package
// so the real analyzers can be imported without a cycle.
package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"soda/lint"
	"soda/lint/nogoroutine"
)

// writeModule lays out a small module with one clean package, one package
// violating the nogoroutine contract, and one whose violation is
// suppressed with //lint:allow.
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"clean/clean.go": `package clean

func F() int { return 1 }
`,
		"dirty/dirty.go": `package dirty

func Leak() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}
`,
		"suppressed/s.go": `package suppressed

func Pool() {
	done := make(chan struct{}) //lint:allow nogoroutine (test fixture: sanctioned pool)
	//lint:allow nogoroutine (test fixture: sanctioned pool)
	go close(done)
	//lint:allow nogoroutine (test fixture: sanctioned pool)
	<-done
}
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// chdir is os.Chdir with test-scoped restore (the driver resolves patterns
// and the module root against the working directory).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
}

func TestMainStandaloneExitCodes(t *testing.T) {
	root := writeModule(t)
	chdir(t, root)
	analyzers := []*lint.Analyzer{nogoroutine.Analyzer}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{"./clean"}, 0},
		{"dirty package", []string{"./dirty"}, 1},
		{"suppressed package", []string{"./suppressed"}, 0},
		{"whole module", []string{"./..."}, 1},
		{"all keyword", []string{"all"}, 1},
		{"import path", []string{"tmpmod/dirty"}, 1},
		{"import subtree", []string{"tmpmod/clean/..."}, 0},
		{"clean plus suppressed", []string{"./clean", "./suppressed"}, 0},
		{"no such package", []string{"./nonexistent"}, 2},
		{"no args", nil, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := lint.Main(tc.args, analyzers); got != tc.want {
				t.Fatalf("Main(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

func TestMainVetProtocolHandshake(t *testing.T) {
	// The go command probes a vettool with -flags and -V=full before
	// handing it any work; both must succeed without a module present.
	if got := lint.Main([]string{"-flags"}, nil); got != 0 {
		t.Fatalf("Main(-flags) = %d, want 0", got)
	}
	if got := lint.Main([]string{"-V=full"}, nil); got != 0 {
		t.Fatalf("Main(-V=full) = %d, want 0", got)
	}
}

func TestMainVetUnitMode(t *testing.T) {
	root := writeModule(t)
	analyzers := []*lint.Analyzer{nogoroutine.Analyzer}

	writeCfg := func(name string, cfg map[string]any) string {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(root, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	dirtyCfg := writeCfg("dirty.cfg", map[string]any{
		"Dir":        filepath.Join(root, "dirty"),
		"ImportPath": "tmpmod/dirty",
		"GoFiles":    []string{"dirty.go"},
	})
	if got := lint.Main([]string{dirtyCfg}, analyzers); got != 1 {
		t.Fatalf("unit mode on dirty package = %d, want 1", got)
	}

	suppressedCfg := writeCfg("suppressed.cfg", map[string]any{
		"Dir":        filepath.Join(root, "suppressed"),
		"ImportPath": "tmpmod/suppressed",
		"GoFiles":    []string{"s.go"},
	})
	if got := lint.Main([]string{suppressedCfg}, analyzers); got != 0 {
		t.Fatalf("unit mode on suppressed package = %d, want 0", got)
	}

	// Dependency packages (outside the module) are skipped, not failed:
	// the go command drives the tool over every import.
	depCfg := writeCfg("dep.cfg", map[string]any{
		"Dir":        filepath.Join(root, "dirty"),
		"ImportPath": "example.com/other/pkg",
		"GoFiles":    []string{"dirty.go"},
	})
	if got := lint.Main([]string{depCfg}, analyzers); got != 0 {
		t.Fatalf("unit mode on dependency package = %d, want 0", got)
	}

	if got := lint.Main([]string{filepath.Join(root, "missing.cfg")}, analyzers); got != 2 {
		t.Fatal("unreadable .cfg did not exit 2")
	}
}

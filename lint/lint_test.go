package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// parsePkg parses and type-checks one import-free source file into a
// Package, the unit RunAnalyzers consumes.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := (&types.Config{}).Check("a", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "a", Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func TestCollectAllowsScope(t *testing.T) {
	src := `package a

//lint:allow alpha (annotation above covers the next line)
func f() {}

func g() {} //lint:allow beta (annotation on the flagged line itself)

//lint:allow gamma delta is not a second name
func h() {}

//lint:allow
func broken() {}
`
	pkg := parsePkg(t, src)
	allows, _ := collectAllows(pkg.Fset, pkg.Files)

	at := func(line int, analyzer string) bool {
		return allows.allows(token.Position{Filename: "a.go", Line: line}, analyzer)
	}
	// The alpha annotation sits on line 3: it covers lines 3 and 4 only.
	if !at(3, "alpha") || !at(4, "alpha") {
		t.Error("annotation does not cover its own line and the line below")
	}
	if at(5, "alpha") {
		t.Error("annotation leaked two lines down")
	}
	// beta is end-of-line on line 6.
	if !at(6, "beta") {
		t.Error("end-of-line annotation does not cover its line")
	}
	// Only the first word after the directive is the analyzer name.
	if !at(9, "gamma") {
		t.Error("gamma annotation not parsed")
	}
	if at(9, "delta") {
		t.Error("reason text parsed as a second analyzer name")
	}
	// A directive with no name suppresses nothing.
	if at(12, "") || at(13, "") {
		t.Error("nameless directive registered an allow")
	}
	// Names never cross-suppress.
	if at(4, "beta") || at(6, "alpha") {
		t.Error("allow for one analyzer suppressed another")
	}
}

// funcFlagger reports every function declaration — a minimal analyzer for
// exercising the framework itself.
var funcFlagger = &Analyzer{
	Name: "funcflag",
	Doc:  "test analyzer: flags every function declaration",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s declared", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestRunAnalyzersFiltersSuppressed(t *testing.T) {
	src := `package a

func kept() {}

//lint:allow funcflag (suppressed for the test)
func suppressed() {}

func alsoKept() {}
`
	pkg := parsePkg(t, src)
	diags, err := RunAnalyzers(pkg, []*Analyzer{funcFlagger}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Message != "function kept declared" || diags[1].Message != "function alsoKept declared" {
		t.Fatalf("wrong survivors (order must be positional): %v", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "funcflag" {
			t.Fatalf("diagnostic attributed to %q", d.Analyzer)
		}
	}
}

func TestMatchPattern(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod")
	pkg := &Package{Path: "soda/internal/sim", Dir: filepath.Join(root, "internal", "sim")}
	cases := []struct {
		pat, cwd string
		want     bool
	}{
		{"all", root, true},
		{"./...", root, true},
		{"./internal/...", root, true},
		{"./internal/sim", root, true},
		{"./sim", filepath.Join(root, "internal"), true},
		{"./...", filepath.Join(root, "internal"), true}, // subtree from cwd
		{"./obs/...", root, false},
		{"soda/internal/sim", root, true},
		{"soda/internal/...", root, true},
		{"soda/...", root, true},
		{"soda/internal", root, false},
		{"soda/obs", root, false},
	}
	for _, tc := range cases {
		if got := matchPattern(pkg, tc.pat, "soda", tc.cwd, root); got != tc.want {
			t.Errorf("matchPattern(%q, cwd=%q) = %v, want %v", tc.pat, tc.cwd, got, tc.want)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := FindModuleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	// macOS tempdirs live behind /var -> /private/var symlinks.
	wantResolved, _ := filepath.EvalSymlinks(root)
	gotResolved, _ := filepath.EvalSymlinks(got)
	if gotResolved != wantResolved {
		t.Fatalf("FindModuleRoot = %q, want %q", got, root)
	}
	if _, err := FindModuleRoot(os.TempDir()); err == nil {
		t.Skip("a go.mod exists above the system temp dir; cannot test the failure path")
	}
}

func TestMarkedEventTypes(t *testing.T) {
	src := `package a

// Ev is an observer event.
//
// lint:event — construct only under a nil-consumer guard.
type Ev struct{ N int }

// Plain is not marked.
type Plain struct{ N int }
`
	pkg := parsePkg(t, src)
	marked := MarkedEventTypes([]*Package{pkg})
	if len(marked) != 1 {
		t.Fatalf("marked %d types, want 1", len(marked))
	}
	for obj := range marked {
		if obj.Name() != "Ev" {
			t.Fatalf("marked %q, want Ev", obj.Name())
		}
	}
}

package norawrand_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/norawrand"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", norawrand.Analyzer)
}

// Package norawrand bans unseeded randomness.
//
// All randomness in a run must derive from the simulation kernel's seeded
// source (sim.Kernel.Rand) so runs replay exactly from their seed. The
// package-level math/rand functions draw from the process-global generator
// (seeded per-process since Go 1.20), and crypto/rand is nondeterministic
// by design — both produce runs that can never be reproduced. Constructing
// explicitly seeded generators (rand.New(rand.NewSource(seed))) stays
// legal: a seed travels with them.
package norawrand

import (
	"go/ast"
	"strings"

	"soda/lint"
)

// bannedFns are the package-level math/rand (and v2) functions that consume
// the global generator.
var bannedFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "norawrand",
	Doc:  "forbid global math/rand and all crypto/rand; randomness must come from the seeded sim RNG",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "crypto/rand" {
				pass.Reportf(imp.Pos(),
					"crypto/rand is nondeterministic; draw randomness from sim.Kernel.Rand")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := lint.PkgRef(pass.Info, sel)
			if !ok {
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && bannedFns[name] {
				pass.Reportf(sel.Pos(),
					"rand.%s uses the process-global generator and is not replayable from a seed; use sim.Kernel.Rand (or a rand.New(rand.NewSource(seed)) that travels with the seed)", name)
			}
			return true
		})
	}
	return nil
}

// Package a seeds norawrand violations for the analyzer's golden test.
package a

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic`
	"math/rand"
)

func bad() int {
	rand.Seed(1)              // want `rand.Seed uses the process-global generator`
	if rand.Float64() < 0.5 { // want `rand.Float64 uses the process-global generator`
		rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle uses the process-global generator`
	}
	return rand.Intn(10) // want `rand.Intn uses the process-global generator`
}

func alsoBad() {
	var buf [8]byte
	_, _ = crand.Reader.Read(buf[:])
}

func good() *rand.Rand {
	// Explicitly seeded generators are replayable: the seed travels.
	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(10)
	return rng
}

func allowed() int {
	return rand.Int() //lint:allow norawrand (testing the annotation syntax)
}

// Package noalloc proves functions on the REQUEST hot path transitively
// allocation-free.
//
// A function annotated //lint:hotpath is a root: it, and everything
// reachable from it through the module call graph (lint.Facts), must not
// allocate. The analyzer flags every construct that allocates or may
// allocate — make, new, growing append, capturing closures, composite
// literals that escape or carry slice/map backing stores, string
// concatenation and string<->[]byte conversions, map writes, interface
// boxing of non-pointer values at call sites — plus every call it cannot
// prove harmless: dynamic calls through func values and calls into
// packages outside the module (a small allowlist covers the known-clean
// encoding/binary and math/bits helpers).
//
// Two conventions keep the contract usable:
//
//   - Caller-budgeted append: append whose destination is a slice
//     parameter of the enclosing function is not flagged. The buffer's
//     creator paid for the capacity (frame.AppendMessage(dst, m) style);
//     growth beyond it is the creator's accounting error, visible at the
//     make site.
//   - Counted suppressions: every allocation that exists on the hot path
//     today carries //lint:allow noalloc (counted: ...). The suppression
//     budget enumerates the 55 allocs/op measured by
//     BenchmarkRequestRoundTrip, so a new allocation anywhere on the path
//     is an unsuppressed finding and fails CI — the number can only go
//     down. A suppression on a call site additionally prunes traversal
//     into the callee (the annotation vouches for the subtree), which is
//     how cold branches (e.g. the windowed transport) stay out of scope.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"soda/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc:  "functions marked //lint:hotpath must be transitively allocation-free; every surviving allocation needs a counted suppression",
	Run:  run,
}

// cleanCalls never allocate; keyed by package path + "." + function or
// method name (receiver types collapsed: binary.BigEndian's methods hang
// off an unexported type).
var cleanCalls = map[string]bool{
	"encoding/binary.Uint16":    true,
	"encoding/binary.Uint32":    true,
	"encoding/binary.Uint64":    true,
	"encoding/binary.PutUint16": true,
	"encoding/binary.PutUint32": true,
	"encoding/binary.PutUint64": true,
}

// appendLikeCalls behave like the append builtin: they extend their first
// argument and return it, so the caller-budgeted-append exemption applies.
var appendLikeCalls = map[string]bool{
	"encoding/binary.AppendUint16": true,
	"encoding/binary.AppendUint32": true,
	"encoding/binary.AppendUint64": true,
}

// cleanPkgs are packages none of whose functions allocate.
var cleanPkgs = map[string]bool{
	"math/bits": true,
}

func callKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

type finding struct {
	pos token.Pos
	msg string
}

func run(pass *lint.Pass) error {
	facts := pass.Facts
	roots := facts.Marked("hotpath")
	if len(roots) == 0 {
		return nil
	}
	visited := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn.Origin()] {
			continue
		}
		visited[fn.Origin()] = true
		fi := facts.Info(fn)
		if fi == nil || fi.Decl.Body == nil {
			continue
		}
		if lint.RealtimeZoneActive(fi.Pkg) {
			// The declared real-time zone (the socket backend) is reachable
			// from hot-path roots only through the wire.Iface seam's dynamic
			// dispatch; it never executes inside a measured simulation, so
			// its allocations are not hot-path allocations. Traversal stops
			// at the zone boundary.
			continue
		}
		findings, callees := analyzeFunc(facts, fi)
		if fi.Pkg.Types == pass.Pkg {
			for _, f := range findings {
				pass.Reportf(f.pos, "%s (hot path from //lint:hotpath roots)", f.msg)
			}
		}
		queue = append(queue, callees...)
	}
	return nil
}

// analyzeFunc scans one hot function's body for allocation sites and
// classifies its outgoing calls. Function literal bodies are scanned as
// part of the enclosing function — whatever a scheduled closure does
// happens on the path too — with the literal's own parameters taking over
// the append exemption. A //lint:allow noalloc on a call site suppresses
// both the finding and the descent into the callee.
func analyzeFunc(facts *lint.Facts, fi *lint.FuncInfo) ([]finding, []*types.Func) {
	var findings []finding
	var callees []*types.Func
	info := fi.Pkg.Info

	report := func(pos token.Pos, msg string) {
		findings = append(findings, finding{pos: pos, msg: msg})
	}

	// params is the active caller-budgeted-append set: parameters (and
	// receiver) of the innermost function, decl or literal.
	var scan func(body ast.Node, params map[*types.Var]bool)

	isParam := func(params map[*types.Var]bool, e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := info.Uses[id].(*types.Var)
		return ok && params[v]
	}

	checkCall := func(call *ast.CallExpr, params map[*types.Var]bool) {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsBuiltin() {
			name := builtinName(call.Fun)
			switch name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !isParam(params, call.Args[0]) {
					report(call.Pos(), "append to a non-parameter slice may grow its backing array")
				}
			}
			return
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			checkConversion(info, call, report)
			return
		}
		cs := facts.Site(call)
		if cs == nil {
			return
		}
		if facts.Allowed(call.Pos(), "noalloc") {
			return // suppression vouches for the whole subtree
		}
		if cs.Dynamic {
			report(call.Pos(), "dynamic call through a func value; allocation-freedom unprovable")
			return
		}
		boxChecked := false
		for _, callee := range cs.Callees {
			key := callKey(callee)
			switch {
			case cleanCalls[key]:
			case appendLikeCalls[key]:
				if len(call.Args) > 0 && !isParam(params, call.Args[0]) {
					report(call.Pos(), "append-like call on a non-parameter slice may grow its backing array")
				}
			case callee.Pkg() != nil && cleanPkgs[callee.Pkg().Path()]:
			case facts.Info(callee) != nil:
				callees = append(callees, callee)
				if !boxChecked { // interface impls share one signature
					boxChecked = true
					checkBoxing(info, call, callee, report)
				}
			default:
				report(call.Pos(), "call to "+callee.FullName()+" outside the module; allocation-freedom unprovable")
			}
		}
	}

	scan = func(body ast.Node, params map[*types.Var]bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if caps := capturedVars(info, n); len(caps) > 0 {
					report(n.Pos(), "closure captures variables and allocates when created")
				}
				scan(n.Body, paramSet(info, n.Type, nil))
				return false
			case *ast.CallExpr:
				checkCall(n, params)
			case *ast.CompositeLit:
				switch info.Types[n].Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						report(n.Pos(), "address of composite literal escapes to the heap")
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isString(info, n.X) {
					report(n.Pos(), "string concatenation allocates")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if _, isMap := info.Types[ix.X].Type.Underlying().(*types.Map); isMap {
							report(ix.Pos(), "map write may allocate")
						}
					}
				}
			case *ast.GoStmt:
				report(n.Pos(), "go statement allocates a goroutine stack")
			}
			return true
		})
	}

	scan(fi.Decl.Body, declParamSet(info, fi.Decl))
	return findings, callees
}

// builtinName extracts the builtin's identifier ("make", "append", ...).
func builtinName(fun ast.Expr) string {
	if id, ok := ast.Unparen(fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkConversion flags allocating conversions: string <-> []byte/[]rune
// and boxing a non-pointer value into an interface.
func checkConversion(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	to := info.Types[call.Fun].Type
	from := info.Types[call.Args[0]].Type
	switch {
	case isStringType(to) && isByteOrRuneSlice(from):
		report(call.Pos(), "[]byte-to-string conversion allocates")
	case isByteOrRuneSlice(to) && isStringType(from):
		report(call.Pos(), "string-to-[]byte conversion allocates")
	case types.IsInterface(to) && boxes(from):
		report(call.Pos(), "conversion boxes a non-pointer value into an interface")
	}
}

// checkBoxing flags arguments whose concrete non-pointer values convert
// implicitly to interface parameters of the callee (each such conversion
// may allocate).
func checkBoxing(info *types.Info, call *ast.CallExpr, callee *types.Func, report func(token.Pos, string)) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // f(xs...) passes the slice through, no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.Types[arg].Type
		if at == nil {
			continue
		}
		if types.IsInterface(pt) && boxes(at) {
			report(arg.Pos(), "argument boxes a non-pointer value into an interface parameter")
		}
	}
}

// boxes reports whether converting a value of type t to an interface may
// allocate: true for concrete non-pointer-shaped types. Pointers, channels,
// maps, funcs, and unsafe pointers store directly in the interface word.
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

func isString(info *types.Info, e ast.Expr) bool {
	return isStringType(info.Types[e].Type)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// declParamSet collects the parameters and receiver of a function
// declaration.
func declParamSet(info *types.Info, decl *ast.FuncDecl) map[*types.Var]bool {
	return paramSet(info, decl.Type, decl.Recv)
}

func paramSet(info *types.Info, ft *ast.FuncType, recv *ast.FieldList) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	add(recv)
	add(ft.Params)
	return out
}

// capturedVars returns the variables lit's body references that are
// declared outside the literal (excluding package-level variables, which
// need no closure cell). A literal with no captures compiles to a static
// function value and does not allocate.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own local or parameter
		}
		if pkgLevel(v) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// pkgLevel reports whether v is a package-scoped variable.
func pkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Pkg().Scope().Lookup(v.Name()) == v
}

package noalloc_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/noalloc"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata/src/a", noalloc.Analyzer)
}

// Package a exercises the noalloc analyzer: hotpath roots, transitive
// reachability across helpers and interface dispatch, the caller-budgeted
// append exemption, counted suppressions, and suppression pruning.
package a

// Root is the hot entry point; everything it reaches must be proven
// allocation-free or carry a counted suppression.
//
//lint:hotpath
func Root(dst []byte, n int, m map[int]int) []byte {
	dst = append(dst, byte(n)) // caller-budgeted: dst is a parameter
	dst = helper(dst)
	// The suppression below covers its own line and the next, and prunes
	// the traversal into cold's subtree.
	cold() //lint:allow noalloc (counted: cold branch, pruned subtree)

	leaky(n)
	dyn(noop)
	closures(n)
	maps(m)
	counted()
	box(n)
	dst = viaIface(encA{}, dst) // want `boxes a non-pointer value into an interface parameter`
	strs("x", "y")
	_ = ptrLit()
	return dst
}

// helper extends its own parameter: exempt.
func helper(dst []byte) []byte {
	return append(dst, 1)
}

// cold allocates, but the call above is suppressed, which prunes the
// traversal: nothing in here is reported.
func cold() {
	buf := make([]byte, 64)
	_ = buf
}

func leaky(n int) {
	buf := make([]byte, n) // want `make allocates`
	_ = buf
	local := []int{}         // want `slice literal allocates`
	local = append(local, n) // want `append to a non-parameter slice`
	_ = local
	p := new(int) // want `new allocates`
	_ = p
}

func noop() {}

func dyn(f func()) {
	f() // want `dynamic call through a func value`
}

func closures(n int) {
	f := func() int { return n } // want `closure captures variables`
	_ = f
	g := func() int { return 7 } // static: captures nothing, no allocation
	_ = g
}

func maps(m map[int]int) {
	m[1] = 2 // want `map write may allocate`
	delete(m, 1)
}

// counted allocates, but the site carries a counted suppression: the
// budget mechanism that pins the allocs/op number.
func counted() {
	_ = make([]byte, 8) //lint:allow noalloc (counted: warm-up scratch buffer)
}

func box(n int) {
	sink(n) // want `boxes a non-pointer value into an interface parameter`
}

func sink(v any) { _ = v }

type enc interface {
	encode(dst []byte) []byte
}

type encA struct{}

func (encA) encode(dst []byte) []byte { return append(dst, 1) }

type encB struct{}

// encB.encode is reached through the interface dispatch in viaIface even
// though no encB value is constructed: class-hierarchy resolution keeps
// every implementation honest.
func (encB) encode(dst []byte) []byte {
	extra := make([]byte, 4) // want `make allocates`
	return append(dst, extra...)
}

func viaIface(e enc, dst []byte) []byte {
	return e.encode(dst)
}

func strs(a, b string) {
	s := a + b // want `string concatenation allocates`
	_ = s
	bs := []byte(a) // want `string-to-\[\]byte conversion allocates`
	_ = string(bs)  // want `\[\]byte-to-string conversion allocates`
}

type point struct{ x, y int }

func ptrLit() *point {
	return &point{x: 1} // want `address of composite literal escapes`
}

// coldIsolated is never reached from a hotpath root, so its allocation is
// not reported.
func coldIsolated() {
	_ = make([]byte, 1)
}

// A suppression without a parenthesized reason is itself a finding.
//
//lint:allow noalloc // want `needs a non-empty \(reason\)`
func badSuppress() {}

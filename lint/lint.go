// Package lint is a small, dependency-free static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, scoped to this module's needs.
//
// The module's correctness story — byte-identical runs per seed, zero
// observer overhead when disabled, Table 6.1 cost attribution — rests on
// conventions (virtual time only, seeded randomness only, scheduler-owned
// concurrency, sorted map iteration, nil-guarded event construction) that
// review vigilance alone cannot protect as the codebase grows. The analyzers
// under lint/... turn those conventions into machine-checked contracts;
// cmd/sodavet is the driver that runs them over the module.
//
// The x/tools analysis module is deliberately not imported: the repository
// builds with the standard library alone. The Analyzer/Pass surface mirrors
// go/analysis closely enough that porting an analyzer onto unitchecker later
// is mechanical.
//
// # Suppressing a finding
//
// A diagnostic can be silenced with a scoped annotation on the flagged line
// or the line directly above it:
//
//	//lint:allow <analyzer> (reason)
//
// The analyzer name must match exactly, and the parenthesized reason is
// mandatory: a suppression without a non-empty reason is itself reported
// (as analyzer "suppression"), so every suppression explains itself.
// `sodavet -suppressions` lists every active suppression site for auditing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package via its Pass
// and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest explains the contract being enforced.
	Doc string
	// Run performs the check. It must not retain the Pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// EventTypes is the set of struct types whose declaration doc comment
	// carries a "lint:event" marker, across every package loaded in this
	// run. Keys are the defining *types.TypeName objects.
	EventTypes map[types.Object]bool
	// Facts is the module-wide interprocedural index (call graph, marker
	// annotations, per-function summaries) shared by every analyzer in the
	// run. Never nil: RunAnalyzers builds a single-package index when the
	// caller provides none.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// allowDirective is the comment prefix that suppresses a diagnostic.
const allowDirective = "//lint:allow "

// allowedLines maps file name -> line -> analyzer names allowed there. An
// annotation covers both its own line and the line below, so it can sit at
// the end of the flagged statement or on its own line above it.
type allowedLines map[string]map[int]map[string]bool

// AllowSite is one //lint:allow annotation: where it sits, which analyzer
// it silences, and the reason given (empty when the annotation is
// malformed). The driver's -suppressions mode lists these for auditing.
type AllowSite struct {
	Pos      token.Position
	Analyzer string
	Reason   string

	pos token.Pos // the annotation's own position, for sortable diagnostics
}

// collectAllows gathers every suppression annotation in files. The second
// result lists the sites in source order; a site with an empty Reason is
// still honored (so fixing it is one edit, not two) but RunAnalyzers
// reports it.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowedLines, []AllowSite) {
	out := allowedLines{}
	var sites []AllowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				reason = strings.TrimSpace(reason)
				if strings.HasPrefix(reason, "(") && strings.HasSuffix(reason, ")") {
					reason = strings.TrimSpace(reason[1 : len(reason)-1])
				} else {
					reason = "" // a bare trailing word is not a reason
				}
				pos := fset.Position(c.Pos())
				sites = append(sites, AllowSite{Pos: pos, Analyzer: name, Reason: reason, pos: c.Pos()})
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return out, sites
}

// CollectAllowSites returns every //lint:allow annotation in pkg, in
// source order.
func CollectAllowSites(pkg *Package) []AllowSite {
	_, sites := collectAllows(pkg.Fset, pkg.Files)
	return sites
}

func (a allowedLines) allows(pos token.Position, analyzer string) bool {
	return a[pos.Filename][pos.Line][analyzer]
}

// RunAnalyzers applies every analyzer to pkg and returns the diagnostics
// that survive //lint:allow filtering, sorted by position. A suppression
// annotation without a parenthesized non-empty reason is reported as a
// diagnostic of the synthetic analyzer "suppression". facts may be nil, in
// which case a single-package index is built for the Pass.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, eventTypes map[types.Object]bool, facts *Facts) ([]Diagnostic, error) {
	if facts == nil {
		facts = BuildFacts([]*Package{pkg})
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			EventTypes: eventTypes,
			Facts:      facts,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	allows, sites := collectAllows(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.allows(pkg.Fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	for _, s := range sites {
		if s.Reason == "" && !allows.allows(s.Pos, "suppression") {
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Analyzer: "suppression",
				Message:  fmt.Sprintf("//lint:allow %s needs a non-empty (reason)", s.Analyzer),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// MarkedEventTypes scans pkgs for struct type declarations whose doc
// comment contains the "lint:event" marker and returns their defining
// objects. The obszerocost analyzer treats construction of these types as
// observer-event construction that must be nil-guarded.
func MarkedEventTypes(pkgs []*Package) map[types.Object]bool {
	marked := map[types.Object]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if doc == nil || !strings.Contains(doc.Text(), "lint:event") {
						continue
					}
					if obj := pkg.Types.Scope().Lookup(ts.Name.Name); obj != nil {
						marked[obj] = true
					}
				}
			}
		}
	}
	return marked
}

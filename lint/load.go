package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked module package.
type Package struct {
	// Path is the import path ("soda/internal/deltat").
	Path string
	// Dir is the absolute directory.
	Dir  string
	Fset *token.FileSet
	// Files are the non-test syntax trees, with comments, sorted by file
	// name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// skipDir reports whether a directory is outside the analyzable tree, using
// the same conventions as the go tool (testdata, hidden, underscore) plus
// this repository's metadata directories.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Loader parses and type-checks module packages on demand, resolving
// standard-library imports from GOROOT source (no compiled export data or
// network access needed) and module-internal imports recursively.
type Loader struct {
	Fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader prepares a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModulePath reports the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks the module package at importPath (memoized).
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadAll loads every package in the module (testdata and hidden trees
// excluded), in deterministic import-path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != l.root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(path))
		if err != nil {
			return err
		}
		p := l.modPath
		if rel != "." {
			p += "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedup(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

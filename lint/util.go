package lint

import (
	"go/ast"
	"go/types"
)

// PkgRef resolves a selector expression of the form pkg.Name where pkg is
// an imported package, returning the package's import path and the selected
// name. ok is false for field/method selections and shadowed identifiers.
func PkgRef(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// WalkStack traverses root in depth-first order, invoking visit with the
// full ancestor stack for every node (stack[len(stack)-1] is the node
// itself).
func WalkStack(root ast.Node, visit func(stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(stack)
		return true
	})
}

// IsNilCheck reports whether expr contains a comparison of something
// against nil with the given operator token ("!=" when wantNeq, "==" when
// not), anywhere in a &&/|| chain or parenthesization.
func IsNilCheck(expr ast.Expr, wantNeq bool) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return IsNilCheck(e.X, wantNeq)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&", "||":
			return IsNilCheck(e.X, wantNeq) || IsNilCheck(e.Y, wantNeq)
		case "!=":
			return wantNeq && (isNilIdent(e.X) || isNilIdent(e.Y))
		case "==":
			return !wantNeq && (isNilIdent(e.X) || isNilIdent(e.Y))
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// Contains reports whether the node's source range encloses pos.
func Contains(n ast.Node, pos ast.Node) bool {
	return n.Pos() <= pos.Pos() && pos.End() <= n.End()
}

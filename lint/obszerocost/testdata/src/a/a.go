// Package a seeds obszerocost violations for the analyzer's golden test.
package a

// Event is a test observer event: construction must be nil-guarded.
//
// lint:event
type Event struct {
	Kind int
	Seq  uint8
}

type node struct {
	obs  func(Event)
	taps []func(Event)
}

func (n *node) bad() {
	n.obs(Event{Kind: 1}) // want `Event is an observer event .* constructed without a nil-consumer guard`
}

func (n *node) badStored() {
	ev := Event{Kind: 2} // want `Event is an observer event .* constructed without a nil-consumer guard`
	if n.obs != nil {
		n.obs(ev)
	}
}

func (n *node) goodIfGuard() {
	if n.obs != nil {
		n.obs(Event{Kind: 3})
	}
}

func (n *node) goodCompoundGuard(enabled bool) {
	if enabled && n.obs != nil {
		n.obs(Event{Kind: 4})
	}
}

// goodEmit is the guard-clause emitter shape used by internal/deltat.
func (n *node) goodEmit(kind int) {
	if n.obs == nil {
		return
	}
	n.obs(Event{Kind: kind})
}

// goodTapLoop is the delivery-tap shape used by internal/bus: with no taps
// registered the body never runs, so nothing is constructed.
func (n *node) goodTapLoop() {
	for _, tap := range n.taps {
		tap(Event{Kind: 5})
	}
}

func (n *node) allowed() {
	n.obs(Event{Kind: 6}) //lint:allow obszerocost (testing the annotation syntax)
}

// plain carries no event marker; construction anywhere is fine.
type plain struct {
	Kind int
}

func unguardedPlain() plain {
	return plain{Kind: 7}
}

package obszerocost_test

import (
	"testing"

	"soda/lint/linttest"
	"soda/lint/obszerocost"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/a", obszerocost.Analyzer)
}

// Package obszerocost enforces the zero-overhead observability contract:
// observer/tracer event structs are only constructed when a consumer is
// actually installed.
//
// The observability layer guarantees that a run with no tracer, metrics
// registry, or fault checker behaves bit-identically to an uninstrumented
// run — "with no Observer installed no event is built". That holds only if
// every construction of an event struct is dominated by a nil check of its
// consumer. Event types opt in by carrying a "lint:event" marker in their
// declaration doc comment; a composite literal of a marked type must appear
// in one of the guarded shapes:
//
//   - inside the body of an if whose condition nil-checks a consumer
//     (if n.cfg.Observer != nil { ... Event{...} ... })
//   - inside a function that opens with a guard clause
//     (func (e *E) emit(...) { if e.cfg.Observer == nil { return } ... })
//   - as the argument of a call to the value variable of an enclosing
//     range loop (for _, tap := range taps { tap(Event{...}) } — an empty
//     consumer slice never enters the body)
package obszerocost

import (
	"go/ast"
	"go/types"

	"soda/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "obszerocost",
	Doc:  "observer event construction (types marked lint:event) must be guarded by a nil-consumer check",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		lint.WalkStack(f, func(stack []ast.Node) {
			clit, ok := stack[len(stack)-1].(*ast.CompositeLit)
			if !ok {
				return
			}
			tv, ok := pass.Info.Types[clit]
			if !ok {
				return
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || !pass.EventTypes[named.Obj()] {
				return
			}
			if !guarded(pass, stack) {
				pass.Reportf(clit.Pos(),
					"%s is an observer event (lint:event) but is constructed without a nil-consumer guard; build it under `if consumer != nil` or inside a guard-clause emit helper to keep disabled observability zero-cost", named.Obj().Name())
			}
		})
	}
	return nil
}

// guarded walks the ancestor stack of a composite literal looking for one
// of the accepted guard shapes.
func guarded(pass *lint.Pass, stack []ast.Node) bool {
	lit := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			// Literal in the then-branch of a `!= nil` condition.
			if lint.IsNilCheck(anc.Cond, true) && lint.Contains(anc.Body, lit) {
				return true
			}
		case *ast.RangeStmt:
			// tap(Event{...}) where tap is this loop's value variable: the
			// body never runs with zero consumers registered.
			if val, ok := anc.Value.(*ast.Ident); ok && callTargetIs(pass, stack[i:], val) {
				return true
			}
		case *ast.FuncDecl:
			if opensWithNilGuard(anc.Body) {
				return true
			}
		case *ast.FuncLit:
			if opensWithNilGuard(anc.Body) {
				return true
			}
		}
	}
	return false
}

// opensWithNilGuard reports whether the function body's first statement is
// `if x == nil { return ... }`.
func opensWithNilGuard(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || !lint.IsNilCheck(ifs.Cond, false) || len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[0].(*ast.ReturnStmt)
	return isReturn
}

// callTargetIs reports whether, somewhere between the range statement
// (tail[0]) and the literal (tail[len-1]), the literal is an argument of a
// call whose callee resolves to the same object as val.
func callTargetIs(pass *lint.Pass, tail []ast.Node, val *ast.Ident) bool {
	target := pass.Info.Defs[val]
	if target == nil {
		return false
	}
	for _, n := range tail {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pass.Info.Uses[id] == target {
			return true
		}
	}
	return false
}

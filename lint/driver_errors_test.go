// Driver option and failure-path tests: -json diagnostics, the
// -suppressions audit listing, empty-reason enforcement, and the exit-2
// operational failures (unparseable source, missing or malformed go.mod,
// type errors, bad vet .cfg files).
package lint_test

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soda/lint"
	"soda/lint/nogoroutine"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote. The driver's -json and -suppressions modes write to
// stdout by contract (diagnostics stay on stderr).
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		done <- b.String()
	}()
	fn()
	_ = w.Close()
	return <-done
}

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestMainJSONDiagnostics(t *testing.T) {
	root := writeModule(t)
	chdir(t, root)
	analyzers := []*lint.Analyzer{nogoroutine.Analyzer}

	var code int
	out := captureStdout(t, func() {
		code = lint.Main([]string{"-json", "./dirty"}, analyzers)
	})
	if code != 1 {
		t.Fatalf("-json on dirty package = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no diagnostics for the dirty package")
	}
	for _, d := range diags {
		if !strings.HasSuffix(d.File, "dirty.go") || d.Line <= 0 || d.Col <= 0 ||
			d.Analyzer != "nogoroutine" || d.Message == "" {
			t.Fatalf("malformed diagnostic: %+v", d)
		}
	}

	// A clean run must still emit a JSON document: the empty array.
	out = captureStdout(t, func() {
		code = lint.Main([]string{"-json", "./clean"}, analyzers)
	})
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-json on clean package = %d with %q, want 0 with []", code, out)
	}
}

func TestMainSuppressionsListing(t *testing.T) {
	root := writeModule(t)
	// One more annotation with a missing reason, so the audit flags it.
	bare := filepath.Join(root, "bare", "bare.go")
	if err := os.MkdirAll(filepath.Dir(bare), 0o755); err != nil {
		t.Fatal(err)
	}
	err := os.WriteFile(bare, []byte(`package bare

func F() int {
	//lint:allow nogoroutine
	return 1
}
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, root)
	analyzers := []*lint.Analyzer{nogoroutine.Analyzer}

	var code int
	out := captureStdout(t, func() {
		code = lint.Main([]string{"-suppressions", "./suppressed", "./bare"}, analyzers)
	})
	if code != 0 {
		t.Fatalf("-suppressions = %d, want 0 (audit never gates)", code)
	}
	if !strings.Contains(out, "nogoroutine (test fixture: sanctioned pool)") {
		t.Fatalf("audit lost a reasoned suppression:\n%s", out)
	}
	if !strings.Contains(out, "MISSING REASON") {
		t.Fatalf("audit did not flag the reasonless suppression:\n%s", out)
	}

	// Machine-readable variant carries the same sites.
	var sites []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
	}
	out = captureStdout(t, func() {
		code = lint.Main([]string{"-json", "-suppressions", "./suppressed", "./bare"}, analyzers)
	})
	if code != 0 {
		t.Fatalf("-json -suppressions = %d, want 0", code)
	}
	if err := json.Unmarshal([]byte(out), &sites); err != nil {
		t.Fatalf("-json -suppressions output invalid: %v\n%s", err, out)
	}
	if len(sites) != 4 { // three reasoned sites in suppressed/ + one bare
		t.Fatalf("audit listed %d sites, want 4: %+v", len(sites), sites)
	}
	bareSeen := false
	for _, s := range sites {
		if s.Analyzer != "nogoroutine" || s.Line <= 0 {
			t.Fatalf("malformed site: %+v", s)
		}
		if strings.HasSuffix(s.File, "bare.go") {
			bareSeen = true
			if s.Reason != "" {
				t.Fatalf("bare suppression reported with reason %q", s.Reason)
			}
		}
	}
	if !bareSeen {
		t.Fatal("bare.go site missing from the JSON audit")
	}
}

func TestEmptyReasonIsAFinding(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"p/p.go": `package p

func F() {
	ch := make(chan int)
	//lint:allow nogoroutine
	go func() { ch <- 1 }()
	//lint:allow nogoroutine (reasoned: test fixture)
	<-ch
}
`,
	})
	chdir(t, root)
	// The reasonless annotation still suppresses its line, but is itself
	// reported, so the package cannot pass while carrying it.
	if got := lint.Main([]string{"./p"}, []*lint.Analyzer{nogoroutine.Analyzer}); got != 1 {
		t.Fatalf("package with reasonless suppression = %d, want 1", got)
	}
}

func TestMainLoadFailures(t *testing.T) {
	analyzers := []*lint.Analyzer{nogoroutine.Analyzer}

	t.Run("unparseable file", func(t *testing.T) {
		root := writeTree(t, map[string]string{
			"go.mod":     "module tmpmod\n\ngo 1.22\n",
			"bad/bad.go": "package bad\n\nfunc {\n",
		})
		chdir(t, root)
		if got := lint.Main([]string{"./..."}, analyzers); got != 2 {
			t.Fatalf("unparseable file = %d, want 2", got)
		}
	})

	t.Run("type error", func(t *testing.T) {
		root := writeTree(t, map[string]string{
			"go.mod":     "module tmpmod\n\ngo 1.22\n",
			"bad/bad.go": "package bad\n\nfunc F() int { return undefinedSymbol }\n",
		})
		chdir(t, root)
		if got := lint.Main([]string{"./..."}, analyzers); got != 2 {
			t.Fatalf("type error = %d, want 2", got)
		}
	})

	t.Run("missing go.mod", func(t *testing.T) {
		chdir(t, t.TempDir())
		if got := lint.Main([]string{"./..."}, analyzers); got != 2 {
			t.Fatalf("no go.mod above cwd = %d, want 2", got)
		}
	})

	t.Run("go.mod without module directive", func(t *testing.T) {
		root := writeTree(t, map[string]string{
			"go.mod": "go 1.22\n",
			"p/p.go": "package p\n",
		})
		chdir(t, root)
		if got := lint.Main([]string{"./..."}, analyzers); got != 2 {
			t.Fatalf("module-less go.mod = %d, want 2", got)
		}
	})
}

func TestVetUnitModeBadCfg(t *testing.T) {
	analyzers := []*lint.Analyzer{nogoroutine.Analyzer}

	t.Run("cfg is not json", func(t *testing.T) {
		root := writeTree(t, map[string]string{"unit.cfg": "{this is not json"})
		if got := lint.Main([]string{filepath.Join(root, "unit.cfg")}, analyzers); got != 2 {
			t.Fatalf("malformed .cfg = %d, want 2", got)
		}
	})

	t.Run("cfg names unparseable file", func(t *testing.T) {
		root := writeTree(t, map[string]string{
			"go.mod":     "module tmpmod\n\ngo 1.22\n",
			"bad/bad.go": "package bad\n\nfunc {\n",
		})
		cfg, err := json.Marshal(map[string]any{
			"Dir":        filepath.Join(root, "bad"),
			"ImportPath": "tmpmod/bad",
			"GoFiles":    []string{"bad.go"},
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(root, "unit.cfg")
		if err := os.WriteFile(path, cfg, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := lint.Main([]string{path}, analyzers); got != 2 {
			t.Fatalf("unparseable unit file = %d, want 2", got)
		}
	})

	t.Run("cfg outside any module", func(t *testing.T) {
		// The go command drives a vettool over every dependency; packages
		// whose tree we cannot analyze are skipped, not failed.
		dir := t.TempDir()
		cfg, err := json.Marshal(map[string]any{
			"Dir":        dir,
			"ImportPath": "example.com/dep",
			"GoFiles":    []string{"dep.go"},
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "unit.cfg")
		if err := os.WriteFile(path, cfg, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := lint.Main([]string{path}, analyzers); got != 0 {
			t.Fatalf("out-of-module .cfg = %d, want 0 (skip)", got)
		}
	})
}

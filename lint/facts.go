package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file is the interprocedural layer of the framework: a module-wide
// call graph with per-function summaries (marker annotations, resolved call
// sites) that analyzers traverse to prove properties across package
// boundaries — "this hotpath function transitively allocates nothing",
// "this segment handler reaches no state owned by another segment".
//
// # Marker annotations
//
// A function or type declaration opts into an interprocedural contract with
// a directive comment in its doc block:
//
//	//lint:hotpath
//	func (e *Endpoint) Send(...) { ... }
//
// The marker name is a single lowercase word; anything after it on the line
// is explanatory text. //lint:allow is the suppression directive, never a
// marker. Markers in force:
//
//	lint:hotpath   — noalloc root: must be transitively allocation-free
//	lint:segroot   — segshare root: segment-handler entry point
//	lint:segshared — on a type: state shared across segments (read-only
//	                 from segment handlers)
//	lint:segqueue  — scheduler entry whose closure argument is the
//	                 sanctioned deferred gateway queue
//	lint:segemit   — frame emission onto a segment (only allowed from a
//	                 segqueue closure)
//	lint:parfor    — parallel-for entry whose closure argument parcapture
//	                 checks for unpartitioned captures
type CallSite struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Callees are the possible targets: one function for a static call,
	// every module implementation for a call through an interface method,
	// empty for a dynamic call. Targets outside the loaded packages (the
	// standard library) appear here but have no FuncInfo.
	Callees []*types.Func
	// Dynamic marks a call through a func value (or anything else the
	// resolver cannot name); such calls defeat interprocedural proofs and
	// conservative analyzers must flag or suppress them.
	Dynamic bool
	// Iface marks a call resolved by implementation search: Callees holds
	// every module type's method implementing the interface method.
	Iface bool
}

// FuncInfo is the per-function summary: its syntax, marker annotations, and
// resolved outgoing calls (including calls inside nested function literals,
// which execute on behalf of the enclosing function).
type FuncInfo struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Marks map[string]bool
	Calls []*CallSite
}

// Facts is the module-wide interprocedural index, built once per run and
// shared by every analyzer through Pass.Facts.
type Facts struct {
	Pkgs []*Package
	// Funcs summarizes every function and method declared in Pkgs.
	Funcs map[*types.Func]*FuncInfo
	// TypeMarks holds marker annotations on type declarations.
	TypeMarks map[*types.TypeName]map[string]bool

	sites     map[*ast.CallExpr]*CallSite
	allows    allowedLines
	fset      *token.FileSet
	named     []*types.Named // concrete named types, for implementation search
	implCache map[string][]*types.Func
}

// markRe matches a marker directive comment line. The name is captured;
// "allow" is the suppression directive and is excluded by the caller.
var markRe = regexp.MustCompile(`^//lint:([a-z]+)\b`)

// markSet extracts marker names from a doc comment's directive lines.
func markSet(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var marks map[string]bool
	for _, c := range doc.List {
		m := markRe.FindStringSubmatch(strings.TrimSpace(c.Text))
		if m == nil || m[1] == "allow" {
			continue
		}
		if marks == nil {
			marks = map[string]bool{}
		}
		marks[m[1]] = true
	}
	return marks
}

// BuildFacts indexes pkgs: declarations, marker annotations, named types,
// and resolved call sites. Interface method calls are resolved by class
// hierarchy: every loaded concrete type implementing the interface
// contributes its method as a possible callee.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Pkgs:      pkgs,
		Funcs:     map[*types.Func]*FuncInfo{},
		TypeMarks: map[*types.TypeName]map[string]bool{},
		sites:     map[*ast.CallExpr]*CallSite{},
		allows:    allowedLines{},
		implCache: map[string][]*types.Func{},
	}
	if len(pkgs) > 0 {
		f.fset = pkgs[0].Fset
	}
	var infos []*FuncInfo // declaration order, for the deterministic pass 2
	for _, pkg := range pkgs {
		allows, _ := collectAllows(pkg.Fset, pkg.Files)
		//lint:allow mapiterorder (merging into an unordered lookup table)
		for file, byLine := range allows {
			f.allows[file] = byLine
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					fi := &FuncInfo{Obj: obj, Decl: d, Pkg: pkg, Marks: markSet(d.Doc)}
					f.Funcs[obj] = fi
					infos = append(infos, fi)
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						doc := ts.Doc
						if doc == nil {
							doc = d.Doc
						}
						marks := markSet(doc)
						if len(marks) == 0 {
							continue
						}
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							f.TypeMarks[tn] = marks
						}
					}
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
				continue
			}
			f.named = append(f.named, named)
		}
	}
	for _, fi := range infos {
		if fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cs := f.resolveCall(fi.Pkg, call); cs != nil {
				fi.Calls = append(fi.Calls, cs)
				f.sites[call] = cs
			}
			return true
		})
	}
	return f
}

// resolveCall classifies one call expression. It returns nil for non-calls
// that parse as CallExpr (type conversions, builtins, immediately invoked
// literals — the enclosing function's own body covers those).
func (f *Facts) resolveCall(pkg *Package, call *ast.CallExpr) *CallSite {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return nil
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation.
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	cs := &CallSite{Call: call}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return nil
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			cs.Callees = []*types.Func{fn}
		} else {
			cs.Dynamic = true
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				cs.Dynamic = true // func-typed field
				break
			}
			if recv := sel.Recv(); types.IsInterface(recv) {
				cs.Iface = true
				cs.Callees = f.implementers(recv, fn)
			} else {
				cs.Callees = []*types.Func{fn}
			}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			cs.Callees = []*types.Func{fn} // qualified pkg.F
		} else {
			cs.Dynamic = true
		}
	default:
		cs.Dynamic = true
	}
	return cs
}

// implementers finds every loaded concrete type whose method set satisfies
// the interface method m on receiver type recv, returning the concrete
// methods in deterministic order.
func (f *Facts) implementers(recv types.Type, m *types.Func) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return []*types.Func{m}
	}
	key := types.TypeString(recv, nil) + "\x00" + m.Id()
	if out, ok := f.implCache[key]; ok {
		return out
	}
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, named := range f.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	f.implCache[key] = out
	return out
}

// Info returns fn's summary, or nil when fn has no declaration in the
// loaded packages (standard library, or no body to summarize).
func (f *Facts) Info(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return f.Funcs[fn.Origin()]
}

// Site returns the resolved call site for a call expression indexed during
// BuildFacts, or nil for conversions/builtins.
func (f *Facts) Site(call *ast.CallExpr) *CallSite { return f.sites[call] }

// Marked returns every function carrying the marker, in deterministic
// order. These are the roots interprocedural analyzers traverse from.
func (f *Facts) Marked(mark string) []*types.Func {
	var out []*types.Func
	//lint:allow mapiterorder (result is sorted immediately below)
	for fn, fi := range f.Funcs {
		if fi.Marks[mark] {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// HasMark reports whether fn's declaration carries the marker.
func (f *Facts) HasMark(fn *types.Func, mark string) bool {
	fi := f.Info(fn)
	return fi != nil && fi.Marks[mark]
}

// TypeMarked reports whether t (after unwrapping pointers, slices, and
// aliases) is a named type whose declaration carries the marker.
func (f *Facts) TypeMarked(t types.Type, mark string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			return f.TypeMarks[u.Obj()][mark]
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return false
		}
	}
}

// Allowed reports whether a //lint:allow annotation for analyzer covers
// pos, anywhere in the loaded packages. Interprocedural analyzers use this
// to prune traversal at suppressed call sites: the suppression vouches for
// the whole subtree behind the call.
func (f *Facts) Allowed(pos token.Pos, analyzer string) bool {
	if f.fset == nil {
		return false
	}
	return f.allows.allows(f.fset.Position(pos), analyzer)
}

// Package fourway implements the four-way bounded buffer of §4.4.2.
//
// Two clients are each attached to a device that both produces and accepts
// data and follows a CTRL-S/CTRL-Q flow-control protocol. Each client reads
// from its device and relays the data to the other client, which buffers it
// in a FIFO queue and feeds its own device. Four buffers are therefore flow
// controlled at once: each device's internal buffer and each client's
// queue. The relay uses a blocking EXCHANGE whose returned status tells the
// producer immediately when the remote buffer has filled (§4.4.2).
package fourway

import (
	"time"

	"soda"
	"soda/sodal"
)

// Well-known relay entry points (§4.4.2's BUFFER_DATA and START).
var (
	BufferData = soda.WellKnownPattern(0o2200)
	Restart    = soda.WellKnownPattern(0o2201)
)

// Flow-control bytes exchanged with the device.
const (
	CtrlS byte = 0x13 // stop
	CtrlQ byte = 0x11 // resume
)

// Exchange statuses returned to the producing relay.
const (
	statusContinue byte = 0
	statusFull     byte = 1
)

// Device simulates the §4.4.2 peripheral: it produces items at a fixed
// rate (unless stopped with CTRL-S) and consumes written items at a fixed
// rate into a bounded sink, emitting CTRL-S/CTRL-Q into its read stream as
// the sink fills and drains. State advances lazily from the virtual clock.
type Device struct {
	c *soda.Client

	// Production side.
	items     [][]byte
	next      int
	rate      time.Duration
	stopped   bool
	lastProd  time.Duration
	readQueue [][]byte // produced (plus control bytes) awaiting ReadIn

	// Consumption side.
	sinkCap   int
	drainRate time.Duration
	lastDrain time.Duration
	sinkFill  int
	Drained   [][]byte // everything the device consumed, in order
	sentCtrlS bool
}

// NewDevice creates a device that will produce the given items, one per
// rate tick, and drain writes into a sink of sinkCap items at drainRate.
func NewDevice(c *soda.Client, items [][]byte, rate time.Duration, sinkCap int, drainRate time.Duration) *Device {
	return &Device{
		c:         c,
		items:     items,
		rate:      rate,
		sinkCap:   sinkCap,
		drainRate: drainRate,
		lastProd:  c.Now(),
		lastDrain: c.Now(),
	}
}

// advance lazily evolves device state to the current virtual time.
func (d *Device) advance() {
	now := d.c.Now()
	// Produce pending items.
	for !d.stopped && d.next < len(d.items) && now-d.lastProd >= d.rate {
		d.lastProd += d.rate
		d.readQueue = append(d.readQueue, d.items[d.next])
		d.next++
	}
	if d.stopped {
		d.lastProd = now // no credit accrues while stopped
	}
	// Drain the sink.
	for d.sinkFill > 0 && now-d.lastDrain >= d.drainRate {
		d.lastDrain += d.drainRate
		d.sinkFill--
	}
	if d.sinkFill == 0 {
		d.lastDrain = now
	}
	// Emit flow control into the read stream as the sink crosses its
	// thresholds.
	if d.sinkFill >= d.sinkCap && !d.sentCtrlS {
		d.sentCtrlS = true
		d.readQueue = append(d.readQueue, []byte{CtrlS})
	}
	if d.sinkFill <= d.sinkCap/2 && d.sentCtrlS {
		d.sentCtrlS = false
		d.readQueue = append(d.readQueue, []byte{CtrlQ})
	}
}

// InStatus reports DATA_AVAIL: the device has produced something.
func (d *Device) InStatus() bool {
	d.advance()
	return len(d.readQueue) > 0
}

// ReadIn consumes one produced item (resetting DEV_IN_STATUS).
func (d *Device) ReadIn() []byte {
	d.advance()
	if len(d.readQueue) == 0 {
		return nil
	}
	b := d.readQueue[0]
	d.readQueue = d.readQueue[1:]
	return b
}

// OutReady reports whether the device can take another written item.
func (d *Device) OutReady() bool {
	d.advance()
	return d.sinkFill < d.sinkCap
}

// WriteOut stores one item (or a control byte) into the device.
func (d *Device) WriteOut(b []byte) {
	d.advance()
	if len(b) == 1 && (b[0] == CtrlS || b[0] == CtrlQ) {
		d.stopped = b[0] == CtrlS
		if !d.stopped {
			d.lastProd = d.c.Now()
		}
		return
	}
	d.sinkFill++
	d.Drained = append(d.Drained, b)
}

// Exhausted reports that every item has been produced and read.
func (d *Device) Exhausted() bool {
	d.advance()
	return d.next >= len(d.items) && len(d.readQueue) == 0
}

// relayState is the per-client state of §4.4.2's listing.
type relayState struct {
	dev                 *Device
	q                   *sodal.Queue[[]byte]
	devBufFull          bool
	partnerBufFull      bool
	partnerBufEmpty     bool
	remoteClientStopped bool
	FullSignals         int // times we reported FULL to the remote producer
	RestartSignals      int // times we restarted the remote producer
}

// Relay returns the §4.4.2 client: it reads its device, ships data to the
// peer's BUFFER_DATA entry, buffers incoming data in a queue of queueCap,
// and feeds its device, honoring CTRL-S/CTRL-Q in both directions. makeDev
// constructs the attached device once the client is running; onState (may
// be nil) observes the final state for tests.
func Relay(peer soda.MID, queueCap int, makeDev func(c *soda.Client) *Device, onState func(*relayState)) soda.Program {
	if queueCap <= 0 {
		queueCap = 4
	}
	pollEvery := 2 * time.Millisecond
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			st := &relayState{
				dev: makeDev(c),
				q:   sodal.NewQueue[[]byte](queueCap),
			}
			c.SetStash(st)
			if err := c.Advertise(BufferData); err != nil {
				panic(err)
			}
			if err := c.Advertise(Restart); err != nil {
				panic(err)
			}
			if onState != nil {
				onState(st)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			st := c.Stash().(*relayState)
			switch ev.Pattern {
			case BufferData:
				if st.q.IsFull() {
					// No room even for this item: refuse; the producer
					// holds the item and retries after our restart.
					st.remoteClientStopped = true
					c.RejectCurrent()
					return
				}
				// Buffer data from the other client, reporting FULL on
				// the same EXCHANGE that delivered it (§4.4.2).
				status := statusContinue
				if st.q.AlmostFull() {
					st.remoteClientStopped = true
					st.FullSignals++
					status = statusFull
				}
				res := c.AcceptCurrentExchange(soda.OK, []byte{status}, ev.PutSize)
				if res.Status == soda.AcceptSuccess {
					st.q.EnQueue(res.Data)
				}
			case Restart:
				c.AcceptCurrentSignal(soda.OK)
				st.partnerBufEmpty = true
			}
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*relayState)
			remoteBuffer := soda.ServerSig{MID: peer, Pattern: BufferData}
			remoteRestart := soda.ServerSig{MID: peer, Pattern: Restart}
			var pendingOut []byte // item refused by the peer, awaiting retry
			for {
				// READ loop: move device output to the remote client.
				if !st.partnerBufFull && (pendingOut != nil || st.dev.InStatus()) {
					data := pendingOut
					pendingOut = nil
					if data == nil {
						data = st.dev.ReadIn()
					}
					switch {
					case len(data) == 1 && data[0] == CtrlS:
						st.devBufFull = true
					case len(data) == 1 && data[0] == CtrlQ:
						st.devBufFull = false
					default:
						res := c.BExchange(remoteBuffer, soda.OK, data, 1)
						switch {
						case res.Status == soda.StatusSuccess && len(res.Data) == 1 && res.Data[0] == statusFull:
							st.partnerBufFull = true
						case res.Status == soda.StatusRejected:
							// The peer's queue was completely full; hold
							// the item and retry after its restart.
							pendingOut = data
							st.partnerBufFull = true
						}
					}
				}
				// WRITE loop: move buffered data into the device.
				if !st.devBufFull && st.dev.OutReady() {
					switch {
					case st.partnerBufFull:
						st.partnerBufFull = false
						st.dev.WriteOut([]byte{CtrlS})
					case st.partnerBufEmpty:
						st.partnerBufEmpty = false
						st.dev.WriteOut([]byte{CtrlQ})
					default:
						if data, ok := st.q.DeQueue(); ok {
							st.dev.WriteOut(data)
							if st.q.IsEmpty() && st.remoteClientStopped {
								st.remoteClientStopped = false
								st.RestartSignals++
								c.BSignal(remoteRestart, soda.OK)
							}
						}
					}
				}
				c.Hold(pollEvery)
			}
		},
	}
}

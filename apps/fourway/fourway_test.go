package fourway

import (
	"fmt"
	"testing"
	"time"

	"soda"
)

func items(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%03d", prefix, i))
	}
	return out
}

// runRelay wires two relays with the given device parameters and runs
// until both devices have drained everything (or the deadline passes).
func runRelay(t *testing.T, nA, nB int, rateA, rateB, drainA, drainB time.Duration, queueCap, sinkCap int) (devA, devB *Device, stA, stB *relayState) {
	t.Helper()
	nw := soda.NewNetwork()
	nw.Register("relayA", Relay(2, queueCap, func(c *soda.Client) *Device {
		devA = NewDevice(c, items("a", nA), rateA, sinkCap, drainA)
		return devA
	}, func(st *relayState) { stA = st }))
	nw.Register("relayB", Relay(1, queueCap, func(c *soda.Client) *Device {
		devB = NewDevice(c, items("b", nB), rateB, sinkCap, drainB)
		return devB
	}, func(st *relayState) { stB = st }))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "relayA")
	nw.MustBoot(2, "relayB")
	deadline := 240 * time.Second
	step := 5 * time.Second
	for elapsed := time.Duration(0); elapsed < deadline; elapsed += step {
		if err := nw.Run(step); err != nil {
			t.Fatal(err)
		}
		if len(devA.Drained) == nB && len(devB.Drained) == nA {
			break
		}
	}
	return devA, devB, stA, stB
}

func TestBidirectionalRelayDeliversAllInOrder(t *testing.T) {
	devA, devB, _, _ := runRelay(t, 20, 20,
		10*time.Millisecond, 10*time.Millisecond, // production rates
		5*time.Millisecond, 5*time.Millisecond, // fast drains
		4, 8)
	check := func(name string, got [][]byte, prefix string, n int) {
		if len(got) != n {
			t.Fatalf("%s drained %d items, want %d", name, len(got), n)
		}
		for i, b := range got {
			if want := fmt.Sprintf("%s-%03d", prefix, i); string(b) != want {
				t.Fatalf("%s item %d = %q, want %q", name, i, b, want)
			}
		}
	}
	check("device A", devA.Drained, "b", 20)
	check("device B", devB.Drained, "a", 20)
}

func TestFlowControlEngagesWithSlowDrain(t *testing.T) {
	// Device B drains very slowly: relay B's queue must fill, B must
	// report FULL, and A's device must be stopped until the restart.
	devA, devB, stA, stB := runRelay(t, 24, 2,
		4*time.Millisecond, 50*time.Millisecond, // A produces fast
		4*time.Millisecond, 60*time.Millisecond, // B drains slowly
		3, 4)
	if len(devB.Drained) != 24 {
		t.Fatalf("device B drained %d/24", len(devB.Drained))
	}
	for i, b := range devB.Drained {
		if want := fmt.Sprintf("a-%03d", i); string(b) != want {
			t.Fatalf("device B item %d = %q, want %q (order broken under backpressure)", i, b, want)
		}
	}
	if len(devA.Drained) != 2 {
		t.Fatalf("device A drained %d/2", len(devA.Drained))
	}
	if stB.FullSignals == 0 {
		t.Error("relay B never reported FULL despite the slow drain")
	}
	if stB.RestartSignals == 0 {
		t.Error("relay B never restarted relay A")
	}
	_ = stA
}

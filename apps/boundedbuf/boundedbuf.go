// Package boundedbuf implements the two-way bounded buffer of §4.4.1.
//
// Producers (think teletype drivers) deliver items to a consumer (think
// file server) that buffers to match speeds. The producer double-buffers:
// it prepares the next item while the previous PUT is outstanding. The
// consumer buffers on two resources — requester signatures queue in the
// handler (CLOSING it when full, which backpressures the producers'
// kernels), and accepted data queues for the task to process. Flow control
// on data is automatic: a producer will not issue a new request until its
// previous one is ACCEPTed.
package boundedbuf

import (
	"soda"
	"soda/sodal"
)

// ConsumerPattern is the consumer's well-known entry point.
var ConsumerPattern = soda.WellKnownPattern(0o2100)

// Producer returns a program that produces count items with produce
// (invoked with the item index; it may Hold to model production time) and
// ships them to the consumer, overlapping production with delivery through
// double buffering (§4.4.1). onDone, if non-nil, runs after the last item
// is delivered.
func Producer(count int, produce func(c *soda.Client, i int) []byte, onDone func(c *soda.Client)) soda.Program {
	return soda.Program{
		Task: func(c *soda.Client) {
			consumer, ok := c.Discover(ConsumerPattern)
			if !ok {
				return
			}
			var (
				outstanding soda.TID
				pending     bool
				done        bool
			)
			for i := 0; i < count; i++ {
				item := produce(c, i) // overlaps with the outstanding PUT
				if pending {
					c.WaitUntil(func() bool { return done })
					pending = false
				}
				done = false
				tid, err := c.Put(consumer, soda.OK, item)
				if err != nil {
					return
				}
				outstanding = tid
				pending = true
				c.OnCompletion(outstanding, func(ev soda.Event) { done = true })
			}
			if pending {
				c.WaitUntil(func() bool { return done })
			}
			if onDone != nil {
				onDone(c)
			}
		},
	}
}

// consumerState mirrors the thesis's consumer: Pending holds requester
// signatures not yet accepted; Produced holds data awaiting consumption.
// reserved counts data slots claimed by an ACCEPT still in flight — the
// handler and the task can both be mid-accept (the task runs while the
// handler blocks), so a slot must be reserved before blocking or the two
// would overfill Produced (the critical section the thesis brackets with
// CLOSE/OPEN, §4.4.1).
type consumerState struct {
	pending  *sodal.Queue[soda.Event]
	produced *sodal.Queue[[]byte]
	reserved int
}

// freeSlot claims a Produced slot if one is available.
func (st *consumerState) freeSlot() bool {
	if st.produced.Len()+st.reserved >= st.produced.Cap() {
		return false
	}
	st.reserved++
	return true
}

// acceptInto performs the blocking accept under a reserved slot.
func (st *consumerState) acceptInto(c *soda.Client, asker soda.RequesterSig, putSize int) {
	res := c.AcceptPut(asker, soda.OK, putSize)
	st.reserved--
	if res.Status == soda.AcceptSuccess {
		st.produced.EnQueue(res.Data)
	}
}

// Consumer returns the buffering consumer: dataSlots bounds buffered items
// (the thesis's MAXQSIZE), sigSlots bounds queued requester signatures
// (MAXPORTSIZE). process consumes one item and may Hold to model work.
func Consumer(dataSlots, sigSlots int, process func(c *soda.Client, data []byte)) soda.Program {
	if dataSlots <= 0 {
		dataSlots = 4
	}
	if sigSlots <= 0 {
		sigSlots = 4
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			c.SetStash(&consumerState{
				pending:  sodal.NewQueue[soda.Event](sigSlots),
				produced: sodal.NewQueue[[]byte](dataSlots),
			})
			if err := c.Advertise(ConsumerPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival || ev.Pattern != ConsumerPattern {
				return
			}
			st := c.Stash().(*consumerState)
			if !st.freeSlot() {
				// No data buffer free: remember the signature for later;
				// if even that queue fills, CLOSE for backpressure
				// (§4.4.1).
				st.pending.EnQueue(ev)
				if st.pending.IsFull() {
					c.Close()
				}
				return
			}
			st.acceptInto(c, ev.Asker, ev.PutSize)
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*consumerState)
			for {
				c.WaitUntil(func() bool {
					return !st.produced.IsEmpty() || !st.pending.IsEmpty()
				})
				// Critical section on the shared queues (the thesis
				// brackets it with CLOSE/OPEN; our runtime freezes the
				// task while the handler runs, so plain code suffices
				// between blocking points).
				var work []byte
				if w, ok := st.produced.DeQueue(); ok {
					work = w
				}
				if _, ok := st.pending.Peek(); ok && st.freeSlot() {
					ev, _ := st.pending.DeQueue()
					c.Open() // room again in the signature queue
					st.acceptInto(c, ev.Asker, ev.PutSize)
				}
				if work != nil {
					process(c, work)
				}
			}
		},
	}
}

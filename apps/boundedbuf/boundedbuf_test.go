package boundedbuf

import (
	"fmt"
	"testing"
	"time"

	"soda"
)

func TestSingleProducerInOrder(t *testing.T) {
	nw := soda.NewNetwork()
	var got []string
	nw.Register("consumer", Consumer(4, 4, func(c *soda.Client, data []byte) {
		got = append(got, string(data))
	}))
	produced := 0
	nw.Register("producer", Producer(10, func(c *soda.Client, i int) []byte {
		produced++
		c.Hold(5 * time.Millisecond) // production time
		return []byte(fmt.Sprintf("item-%02d", i))
	}, nil))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "consumer")
	nw.MustBoot(2, "producer")
	if err := nw.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if produced != 10 || len(got) != 10 {
		t.Fatalf("produced %d, consumed %d", produced, len(got))
	}
	for i, v := range got {
		if want := fmt.Sprintf("item-%02d", i); v != want {
			t.Fatalf("got[%d] = %q, want %q", i, v, want)
		}
	}
}

func TestDoubleBufferingOverlapsProductionWithDelivery(t *testing.T) {
	// With production time P and a consumer that accepts promptly, a
	// producer of N items should take roughly N·P plus one delivery —
	// not N·(P + roundtrip). Compare against a serialized estimate.
	const (
		n     = 10
		pTime = 40 * time.Millisecond
	)
	nw := soda.NewNetwork()
	var doneAt time.Duration
	nw.Register("consumer", Consumer(8, 8, func(c *soda.Client, data []byte) {}))
	nw.Register("producer", Producer(n, func(c *soda.Client, i int) []byte {
		c.Hold(pTime)
		return make([]byte, 64)
	}, func(c *soda.Client) { doneAt = c.Now() }))
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "consumer")
	nw.MustBoot(2, "producer")
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if doneAt == 0 {
		t.Fatal("producer never finished")
	}
	// A fully serialized producer would need n·(pTime + ~10ms RPC); with
	// double buffering the delivery hides inside the next production.
	budget := time.Duration(n)*pTime + 150*time.Millisecond
	if doneAt > budget {
		t.Fatalf("finished at %v; double buffering not overlapping (budget %v)", doneAt, budget)
	}
}

func TestSlowConsumerBackpressure(t *testing.T) {
	// A consumer much slower than its producers must not lose items; the
	// two queues plus handler CLOSE provide the flow control.
	nw := soda.NewNetwork()
	var got int
	nw.Register("consumer", Consumer(2, 2, func(c *soda.Client, data []byte) {
		c.Hold(50 * time.Millisecond) // slow consumption
		got++
	}))
	mkProducer := func() soda.Program {
		return Producer(6, func(c *soda.Client, i int) []byte {
			return []byte{byte(i)}
		}, nil)
	}
	nw.Register("producer", mkProducer())
	nw.MustAddNode(1)
	nw.MustBoot(1, "consumer")
	for mid := soda.MID(2); mid <= 4; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "producer")
	}
	if err := nw.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 18 {
		t.Fatalf("consumed %d items, want 18", got)
	}
}

func TestPerProducerOrderWithManyProducers(t *testing.T) {
	nw := soda.NewNetwork()
	byProducer := map[byte][]byte{}
	nw.Register("consumer", Consumer(3, 3, func(c *soda.Client, data []byte) {
		if len(data) == 2 {
			byProducer[data[0]] = append(byProducer[data[0]], data[1])
		}
	}))
	mk := func(id byte) soda.Program {
		return Producer(5, func(c *soda.Client, i int) []byte {
			return []byte{id, byte(i)}
		}, nil)
	}
	nw.Register("p1", mk(1))
	nw.Register("p2", mk(2))
	nw.MustAddNode(1)
	nw.MustBoot(1, "consumer")
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(2, "p1")
	nw.MustBoot(3, "p2")
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, seq := range byProducer {
		if len(seq) != 5 {
			t.Fatalf("producer %d delivered %d items", id, len(seq))
		}
		for i, v := range seq {
			if v != byte(i) {
				t.Fatalf("producer %d out of order: %v", id, seq)
			}
		}
	}
	if len(byProducer) != 2 {
		t.Fatalf("saw %d producers", len(byProducer))
	}
}

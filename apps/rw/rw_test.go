package rw

import (
	"testing"
	"time"

	"soda"
)

func TestMutualExclusionInvariants(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("moderator", Moderator(16))

	var (
		activeReaders  int
		activeWriters  int
		maxReaders     int
		violations     int
		reads, writes  int
		overlapReaders bool
	)
	check := func() {
		if activeWriters > 1 || (activeWriters == 1 && activeReaders > 0) {
			violations++
		}
		if activeReaders > maxReaders {
			maxReaders = activeReaders
		}
		if activeReaders > 1 {
			overlapReaders = true
		}
	}
	reader := soda.Program{
		Task: func(c *soda.Client) {
			for i := 0; i < 5; i++ {
				if st := ReadLock(c, 1); st != soda.StatusSuccess {
					t.Errorf("read lock: %v", st)
					return
				}
				activeReaders++
				check()
				c.Hold(30 * time.Millisecond)
				activeReaders--
				reads++
				if st := ReadUnlock(c, 1); st != soda.StatusSuccess {
					t.Errorf("read unlock: %v", st)
					return
				}
			}
		},
	}
	writer := soda.Program{
		Task: func(c *soda.Client) {
			for i := 0; i < 3; i++ {
				if st := WriteLock(c, 1); st != soda.StatusSuccess {
					t.Errorf("write lock: %v", st)
					return
				}
				activeWriters++
				check()
				c.Hold(40 * time.Millisecond)
				activeWriters--
				writes++
				if st := WriteUnlock(c, 1); st != soda.StatusSuccess {
					t.Errorf("write unlock: %v", st)
					return
				}
				c.Hold(20 * time.Millisecond)
			}
		},
	}
	nw.Register("reader", reader)
	nw.Register("writer", writer)
	nw.MustAddNode(1)
	nw.MustBoot(1, "moderator")
	for mid := soda.MID(2); mid <= 4; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "reader")
	}
	for mid := soda.MID(5); mid <= 6; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "writer")
	}
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d exclusion violations", violations)
	}
	if reads != 15 || writes != 6 {
		t.Fatalf("reads=%d writes=%d, want 15/6", reads, writes)
	}
	if !overlapReaders {
		t.Error("readers never overlapped; concurrency lost")
	}
}

func TestPendingWriterBlocksNewReaders(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("moderator", Moderator(16))

	var order []string
	nw.Register("longreader", soda.Program{
		Task: func(c *soda.Client) {
			ReadLock(c, 1)
			order = append(order, "r1-start")
			c.Hold(300 * time.Millisecond)
			order = append(order, "r1-end")
			ReadUnlock(c, 1)
		},
	})
	nw.Register("writer", soda.Program{
		Task: func(c *soda.Client) {
			c.Hold(50 * time.Millisecond) // after r1 holds the lock
			WriteLock(c, 1)
			order = append(order, "w-start")
			c.Hold(50 * time.Millisecond)
			order = append(order, "w-end")
			WriteUnlock(c, 1)
		},
	})
	nw.Register("latereader", soda.Program{
		Task: func(c *soda.Client) {
			c.Hold(120 * time.Millisecond) // after the writer queued
			ReadLock(c, 1)
			order = append(order, "r2-start")
			ReadUnlock(c, 1)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustAddNode(4)
	nw.MustBoot(1, "moderator")
	nw.MustBoot(2, "longreader")
	nw.MustBoot(3, "writer")
	nw.MustBoot(4, "latereader")
	if err := nw.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"r1-start", "r1-end", "w-start", "w-end", "r2-start"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (late reader must wait behind the pending writer)", order, want)
		}
	}
}

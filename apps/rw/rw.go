// Package rw implements the concurrent readers-and-writers moderator of
// §4.4.4 (Courtois et al.'s problem).
//
// A moderator client — distinct from the database itself — arbitrates
// START_READ / START_WRITE / END_READ / END_WRITE requests. Writers exclude
// everyone; readers exclude writers. Fairness follows the thesis: once a
// write is pending no new read starts, and the readers that accumulated
// during a write are admitted before the next write.
package rw

import (
	"soda"
	"soda/sodal"
)

// The moderator's advertised entry points.
var (
	StartRead  = soda.WellKnownPattern(0o2001)
	StartWrite = soda.WellKnownPattern(0o2002)
	EndRead    = soda.WellKnownPattern(0o2003)
	EndWrite   = soda.WellKnownPattern(0o2004)
)

// modState is the moderator's bookkeeping.
type modState struct {
	readQ      *sodal.Queue[soda.RequesterSig]
	writeQ     *sodal.Queue[soda.RequesterSig]
	readcount  int
	writecount int
}

// Moderator returns the moderator program. queueCap bounds each of the
// waiting-reader and waiting-writer queues.
func Moderator(queueCap int) soda.Program {
	if queueCap <= 0 {
		queueCap = 16
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			st := &modState{
				readQ:  sodal.NewQueue[soda.RequesterSig](queueCap),
				writeQ: sodal.NewQueue[soda.RequesterSig](queueCap),
			}
			c.SetStash(st)
			for _, p := range []soda.Pattern{StartRead, StartWrite, EndRead, EndWrite} {
				if err := c.Advertise(p); err != nil {
					panic(err)
				}
			}
		},
		// The moderator is entirely handler-driven; its task merely
		// idles (§4.4.4's Task is `loop Idle() forever`).
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			st := c.Stash().(*modState)
			switch ev.Pattern {
			case StartRead:
				// Admit unless a writer is active or pending (writer
				// priority for admission fairness).
				if st.writecount == 0 && st.writeQ.IsEmpty() {
					c.AcceptCurrentSignal(soda.OK)
					st.readcount++
				} else if !st.readQ.EnQueue(ev.Asker) {
					c.RejectCurrent()
				}
			case StartWrite:
				if st.readcount == 0 && st.writecount == 0 {
					c.AcceptCurrentSignal(soda.OK)
					st.writecount++
				} else if !st.writeQ.EnQueue(ev.Asker) {
					c.RejectCurrent()
				}
			case EndRead:
				c.AcceptCurrentSignal(soda.OK)
				st.readcount--
				if st.readcount == 0 {
					if w, ok := st.writeQ.DeQueue(); ok {
						c.AcceptSignal(w, soda.OK)
						st.writecount++
					}
				}
			case EndWrite:
				c.AcceptCurrentSignal(soda.OK)
				st.writecount--
				if !st.readQ.IsEmpty() {
					// Readers that accumulated during the write go first
					// (§4.4.4).
					for {
						r, ok := st.readQ.DeQueue()
						if !ok {
							break
						}
						c.AcceptSignal(r, soda.OK)
						st.readcount++
					}
				} else if w, ok := st.writeQ.DeQueue(); ok {
					c.AcceptSignal(w, soda.OK)
					st.writecount++
				}
			}
		},
	}
}

// Reader/writer client protocol helpers (the "correct client" contract of
// §4.4.4: every access is bracketed by start/end).

// ReadLock blocks until read access is granted.
func ReadLock(c *soda.Client, mod soda.MID) soda.Status {
	return c.BSignal(soda.ServerSig{MID: mod, Pattern: StartRead}, soda.OK).Status
}

// ReadUnlock releases read access.
func ReadUnlock(c *soda.Client, mod soda.MID) soda.Status {
	return c.BSignal(soda.ServerSig{MID: mod, Pattern: EndRead}, soda.OK).Status
}

// WriteLock blocks until exclusive write access is granted.
func WriteLock(c *soda.Client, mod soda.MID) soda.Status {
	return c.BSignal(soda.ServerSig{MID: mod, Pattern: StartWrite}, soda.OK).Status
}

// WriteUnlock releases write access.
func WriteUnlock(c *soda.Client, mod soda.MID) soda.Status {
	return c.BSignal(soda.ServerSig{MID: mod, Pattern: EndWrite}, soda.OK).Status
}

// Package philo implements the dining-philosophers solution of §4.4.3 —
// the thesis's novel contribution to the problem.
//
// Five philosopher clients each own one fork (their right fork); to eat, a
// philosopher first obtains its left fork (a SIGNAL to the left neighbor's
// GETFORK entry) and then its own. A separate deadlock-detector process,
// woken periodically by the timeserver, walks the ring asking each
// philosopher whether it is "needful" (holding one fork, wanting the
// other). If the walk returns to the starting philosopher with its
// transaction id unchanged — proving no state change between probes — the
// whole ring is deadlocked (the thesis proves this by induction) and one
// philosopher is told to GIVE_BACK its fork. A list of "nice" philosophers
// ensures no one is victimized twice before everyone has been victimized
// once.
package philo

import (
	"encoding/binary"
	"time"

	"soda"
	"soda/timesrv"
)

// Well-known philosopher entry points (§4.4.3).
var (
	GetFork    = soda.WellKnownPattern(0o2301)
	PutFork    = soda.WellKnownPattern(0o2302)
	ReturnFork = soda.WellKnownPattern(0o2303)
	Check      = soda.WellKnownPattern(0o2304)
	GiveBack   = soda.WellKnownPattern(0o2305)
)

// forkState is the disposition of the fork a philosopher owns.
type forkState int

const (
	forkIdle  forkState = iota + 1 // on the table, grantable
	forkInUse                      // claimed by its owner
	forkLent                       // at the right neighbor
)

// philState is a philosopher's shared (task ↔ handler) state.
type philState struct {
	ownFork    forkState
	leftHeld   bool
	needful    bool
	myTID      soda.TID           // outstanding left-fork request (CHECK reports it)
	hisRequest *soda.RequesterSig // right neighbor's deferred GETFORK
	gaveBack   bool               // detector forced us to release the left fork
	returnOwed bool               // a RETURN_FORK to the left neighbor is pending
	Meals      int
	GiveBacks  int
}

// Philosopher returns one philosopher client. left names the left
// neighbor's machine; the philosopher eats meals times (forever if
// meals <= 0), thinking and eating for the given durations. onEat (may be
// nil) observes each completed meal.
func Philosopher(left soda.MID, meals int, thinkTime, eatTime time.Duration, onEat func(c *soda.Client, meal int)) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			st := &philState{ownFork: forkIdle}
			c.SetStash(st)
			for _, p := range []soda.Pattern{GetFork, PutFork, ReturnFork, Check, GiveBack} {
				if err := c.Advertise(p); err != nil {
					panic(err)
				}
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			st := c.Stash().(*philState)
			switch ev.Pattern {
			case GetFork:
				// The right neighbor wants my fork.
				switch st.ownFork {
				case forkIdle:
					st.ownFork = forkLent
					c.AcceptCurrentSignal(soda.OK)
				case forkLent:
					// Already lent yet asked again: the neighbor never
					// re-requests while it holds the fork, so the earlier
					// grant died in the network. Grant again.
					c.AcceptCurrentSignal(soda.OK)
				default:
					// In use: defer until I put my forks down (§4.4.3).
					asker := ev.Asker
					st.hisRequest = &asker
				}
			case PutFork:
				// The right neighbor returns my fork after eating. Only a
				// lent fork comes back: a late retry of a return whose
				// completion was lost must not idle a fork I am using.
				c.AcceptCurrentSignal(soda.OK)
				if st.ownFork == forkLent {
					st.ownFork = forkIdle
				}
			case ReturnFork:
				// The right neighbor gives my fork back on the
				// detector's orders; it will ask for it again.
				c.AcceptCurrentSignal(soda.OK)
				if st.ownFork == forkLent {
					st.ownFork = forkIdle
				}
			case Check:
				// The detector asks: needful? Report the TID identifying
				// this acquisition attempt, or REJECT (§4.4.3).
				if st.needful && st.leftHeld {
					c.AcceptCurrentGet(soda.OK, tidBytes(st.myTID))
				} else {
					c.RejectCurrent()
				}
			case GiveBack:
				c.AcceptCurrentSignal(soda.OK)
				if st.needful && st.leftHeld {
					// Release the held left fork; the task returns it
					// (reliably, retrying loss) and then re-requests.
					st.leftHeld = false
					st.gaveBack = true
					st.returnOwed = true
					st.GiveBacks++
				}
			}
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*philState)
			leftSig := func(p soda.Pattern) soda.ServerSig { return soda.ServerSig{MID: left, Pattern: p} }
			// acquireLeft obtains the left fork, first settling any fork
			// the detector made us promise back, and re-requesting on
			// give-backs or network loss. Returns false if the client is
			// shutting down.
			acquireLeft := func() bool {
				for !st.leftHeld {
					if st.returnOwed {
						// The give-back must reach the neighbor; retry
						// until the signal completes.
						for c.BSignal(leftSig(ReturnFork), soda.OK).Status != soda.StatusSuccess {
							c.Hold(50 * time.Millisecond)
						}
						st.returnOwed = false
					}
					st.gaveBack = false
					tid, err := c.Signal(leftSig(GetFork), soda.OK)
					if err != nil {
						return false
					}
					st.myTID = tid
					c.OnCompletion(tid, func(ev soda.Event) {
						if ev.Status == soda.StatusSuccess {
							st.leftHeld = true
						} else {
							st.gaveBack = true // failed: retry the acquisition
						}
					})
					st.needful = true
					c.WaitUntil(func() bool { return st.leftHeld || st.gaveBack })
				}
				return true
			}
			for meal := 0; meals <= 0 || meal < meals; meal++ {
				c.Hold(thinkTime) // think()

				// Obtain the left fork, re-requesting whenever the
				// detector makes us give it back.
				if !acquireLeft() {
					return
				}

				// Obtain my own fork; a GIVE_BACK can interrupt the wait.
				for {
					c.WaitUntil(func() bool { return !st.leftHeld || st.ownFork == forkIdle })
					if !st.leftHeld {
						// Victimized: reacquire the left fork first.
						if !acquireLeft() {
							return
						}
						continue
					}
					st.ownFork = forkInUse
					break
				}
				st.needful = false

				c.Hold(eatTime) // eat()
				st.Meals++
				if onEat != nil {
					onEat(c, st.Meals)
				}

				// Put both forks down: return the left fork (retrying loss
				// — the neighbor's fork must not evaporate), free mine.
				for c.BSignal(leftSig(PutFork), soda.OK).Status != soda.StatusSuccess {
					c.Hold(50 * time.Millisecond)
				}
				st.leftHeld = false
				st.ownFork = forkIdle
				if st.hisRequest != nil {
					st.ownFork = forkLent
					asker := *st.hisRequest
					st.hisRequest = nil
					c.AcceptSignal(asker, soda.OK)
				}
			}
		},
	}
}

// Detector returns the deadlock-detector process of §4.4.3. ring lists the
// philosophers' machine ids in seating order (each entry's left neighbor is
// the previous element); interval is the probe period; onBreak (may be nil)
// observes each deadlock broken with the victim's MID.
func Detector(ring []soda.MID, interval time.Duration, onBreak func(victim soda.MID)) soda.Program {
	return soda.Program{
		Task: func(c *soda.Client) {
			alarmSrv, ok := c.Discover(timesrv.AlarmPattern)
			for !ok {
				// DISCOVER is an unreliable datagram; under loss (or when
				// rebooting mid-chaos) keep asking until it lands.
				c.Hold(500 * time.Millisecond)
				alarmSrv, ok = c.Discover(timesrv.AlarmPattern)
			}
			leftOf := func(i int) int { return (i - 1 + len(ring)) % len(ring) }
			fair := newNiceList(len(ring))
			victim := 0
			check := func(i int) (soda.TID, bool) {
				res := c.BGet(soda.ServerSig{MID: ring[i], Pattern: Check}, soda.OK, 8)
				if res.Status != soda.StatusSuccess || len(res.Data) != 8 {
					return 0, false
				}
				return soda.TID(binary.BigEndian.Uint64(res.Data)), true
			}
			for {
				timesrv.Sleep(c, alarmSrv, interval)
				if !fair.eligible(victim) {
					victim = fair.next(victim)
				}
				firstTID, needful := check(victim)
				if !needful {
					continue // step 2: not needful; back to sleep
				}
				// Step 3: walk the ring; everyone must be needful.
				deadlock := true
				for cur := leftOf(victim); cur != victim; cur = leftOf(cur) {
					if _, ok := check(cur); !ok {
						deadlock = false
						break
					}
				}
				if !deadlock {
					continue
				}
				// Step 4: re-check the starting philosopher; an
				// unchanged TID proves no progress (§4.4.3's induction).
				againTID, stillNeedful := check(victim)
				if !stillNeedful || againTID != firstTID {
					continue
				}
				// Step 5: break the deadlock; maintain fairness.
				c.BSignal(soda.ServerSig{MID: ring[victim], Pattern: GiveBack}, soda.OK)
				if onBreak != nil {
					onBreak(ring[victim])
				}
				fair.punish(victim)
				victim = fair.next(victim)
			}
		},
	}
}

// niceList implements §4.4.3's LIST_OF_NICE_PHILOS: a philosopher asked to
// return its fork is removed from the list and is not asked again until
// every other philosopher has been asked once, at which point the list
// reinitializes.
type niceList struct {
	nice []bool
}

func newNiceList(n int) *niceList {
	l := &niceList{nice: make([]bool, n)}
	l.reset()
	return l
}

func (l *niceList) reset() {
	for i := range l.nice {
		l.nice[i] = true
	}
}

func (l *niceList) eligible(i int) bool { return l.nice[i] }

// punish removes i from the list, reinitializing when it empties.
func (l *niceList) punish(i int) {
	l.nice[i] = false
	for _, n := range l.nice {
		if n {
			return
		}
	}
	l.reset()
}

// next returns the first eligible philosopher after from.
func (l *niceList) next(from int) int {
	for off := 1; off <= len(l.nice); off++ {
		i := (from + off) % len(l.nice)
		if l.nice[i] {
			return i
		}
	}
	l.reset()
	return (from + 1) % len(l.nice)
}

func tidBytes(t soda.TID) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(t))
	return b
}

package philo

import (
	"testing"
	"time"

	"soda"
	"soda/timesrv"
)

// ring of five philosophers on nodes 2..6; node 1 is the timeserver and
// node 7 the detector.
var ring = []soda.MID{2, 3, 4, 5, 6}

func leftNeighbor(i int) soda.MID { return ring[(i-1+len(ring))%len(ring)] }

func buildTable(nw *soda.Network, meals int, think, eat time.Duration, states []*philState) {
	nw.Register("timesrv", timesrv.Program(16))
	nw.MustAddNode(1)
	nw.MustBoot(1, "timesrv")
	for i, mid := range ring {
		i := i
		name := string(rune('A' + i))
		prog := Philosopher(leftNeighbor(i), meals, think, eat, nil)
		// Capture each philosopher's state through Init.
		inner := prog.Init
		prog.Init = func(c *soda.Client, parent soda.MID) {
			inner(c, parent)
			states[i] = c.Stash().(*philState)
		}
		nw.Register(name, prog)
		nw.MustAddNode(mid)
		nw.MustBoot(mid, name)
	}
}

func TestDeadlockWithoutDetector(t *testing.T) {
	// With identical think times every philosopher grabs its left fork
	// and waits for its own forever: the classic deadlock, guaranteed
	// deterministic here. No detector runs, so nobody ever eats.
	nw := soda.NewNetwork()
	states := make([]*philState, len(ring))
	buildTable(nw, 0, 50*time.Millisecond, 50*time.Millisecond, states)
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if st.Meals != 0 {
			t.Fatalf("philosopher %d ate %d times without a detector; expected deadlock", i, st.Meals)
		}
		if !st.needful || !st.leftHeld {
			t.Fatalf("philosopher %d not in the needful deadlock state: %+v", i, st)
		}
	}
}

func TestDetectorBreaksDeadlock(t *testing.T) {
	nw := soda.NewNetwork()
	states := make([]*philState, len(ring))
	buildTable(nw, 0, 50*time.Millisecond, 50*time.Millisecond, states)
	var victims []soda.MID
	nw.Register("detector", Detector(ring, 200*time.Millisecond, func(v soda.MID) {
		victims = append(victims, v)
	}))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	if err := nw.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(victims) == 0 {
		t.Fatal("detector never broke a deadlock")
	}
	for i, st := range states {
		if st.Meals < 3 {
			t.Fatalf("philosopher %d ate only %d times (victims: %v)", i, st.Meals, victims)
		}
	}
}

// TestNiceListFairness verifies §4.4.3's LIST_OF_NICE_PHILOS policy in
// isolation: no philosopher is chosen twice before every philosopher has
// been chosen once, across many rounds.
func TestNiceListFairness(t *testing.T) {
	const n = 5
	l := newNiceList(n)
	victim := 0
	counts := make([]int, n)
	for round := 0; round < 37; round++ {
		if !l.eligible(victim) {
			t.Fatalf("round %d: victim %d not eligible", round, victim)
		}
		counts[victim]++
		l.punish(victim)
		// Invariant: max and min victimization counts differ by at most 1.
		lo, hi := counts[0], counts[0]
		for _, c := range counts {
			lo, hi = min(lo, c), max(hi, c)
		}
		if hi-lo > 1 {
			t.Fatalf("round %d: unfair counts %v", round, counts)
		}
		victim = l.next(victim)
	}
	for i, c := range counts {
		if c < 7 {
			t.Fatalf("philosopher %d chosen only %d times: %v", i, c, counts)
		}
	}
}

// TestRepeatedDeadlocksRotateVictims restarts a fresh synchronized table
// several times; the detector state persists inside one network run, so we
// verify at the system level that a broken ring recovers and everybody
// eventually eats even with repeated interference.
func TestRepeatedDeadlocksRotateVictims(t *testing.T) {
	nw := soda.NewNetwork()
	states := make([]*philState, len(ring))
	buildTable(nw, 0, 200*time.Millisecond, time.Millisecond, states)
	var victims []soda.MID
	nw.Register("detector", Detector(ring, 100*time.Millisecond, func(v soda.MID) {
		victims = append(victims, v)
	}))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	if err := nw.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(victims) == 0 {
		t.Fatal("no deadlock broken")
	}
	for i, st := range states {
		if st.Meals < 10 {
			t.Fatalf("philosopher %d ate only %d times after recovery", i, st.Meals)
		}
	}
}

func TestNoFalseDeadlockDetection(t *testing.T) {
	// Stagger the think times so the ring keeps making progress; the
	// detector's double-probe (same TID) must prevent false positives —
	// give-backs may still legitimately occur during transient full
	// rings, but eating must never stop.
	nw := soda.NewNetwork()
	nw.Register("timesrv", timesrv.Program(16))
	nw.MustAddNode(1)
	nw.MustBoot(1, "timesrv")
	states := make([]*philState, len(ring))
	for i, mid := range ring {
		i := i
		think := time.Duration(20+13*i) * time.Millisecond
		prog := Philosopher(leftNeighbor(i), 0, think, 25*time.Millisecond, nil)
		inner := prog.Init
		prog.Init = func(c *soda.Client, parent soda.MID) {
			inner(c, parent)
			states[i] = c.Stash().(*philState)
		}
		name := string(rune('A' + i))
		nw.Register(name, prog)
		nw.MustAddNode(mid)
		nw.MustBoot(mid, name)
	}
	nw.Register("detector", Detector(ring, 100*time.Millisecond, nil))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	if err := nw.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if st.Meals < 5 {
			t.Fatalf("philosopher %d ate only %d times under staggered load", i, st.Meals)
		}
	}
}

// TestPhilosophersUnderFrameLoss: the whole system — timeserver alarms,
// fork protocol, detector probes — keeps functioning when the bus drops 5%
// of frames (Delta-t absorbs the loss end to end).
func TestPhilosophersUnderFrameLoss(t *testing.T) {
	nw := soda.NewNetwork(soda.WithLoss(0.05), soda.WithSeed(11))
	states := make([]*philState, len(ring))
	buildTable(nw, 0, 50*time.Millisecond, 30*time.Millisecond, states)
	nw.Register("detector", Detector(ring, 250*time.Millisecond, nil))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if st.Meals < 2 {
			t.Fatalf("philosopher %d ate only %d times under loss", i, st.Meals)
		}
	}
	if s := nw.Stats(); s.FramesLost == 0 {
		t.Error("loss model inert")
	}
}

// Package fileserver implements the file service of §4.4.5.
//
// A client locates the server with DISCOVER, opens a file by EXCHANGEing
// its name on the well-known OPEN entry, and receives back a fresh pattern
// (from GETUNIQUEID) that names the open file: every subsequent
// transaction — READ, WRITE, SEEK, CLOSE — is an EXCHANGE on
// ⟨server, fd-pattern⟩ with the operation in the request argument. The
// server's handler queues operations; its task performs them in order.
package fileserver

import (
	"encoding/binary"
	"fmt"

	"soda"
	"soda/sodal"
)

// Well-known entry points (§4.4.5).
var (
	// ServicePattern locates the file server (the DISCOVER name).
	ServicePattern = soda.WellKnownPattern(0o3000)
	// OpenPattern opens a file.
	OpenPattern = soda.WellKnownPattern(0o3001)
)

// Operation kinds carried in the request argument.
const (
	OpRead int32 = iota + 1
	OpWrite
	OpSeek
	OpClose
)

// file is one open file: a handle onto the store plus a cursor.
type file struct {
	name   string
	patt   soda.Pattern
	offset int
}

// op is a queued file operation.
type op struct {
	asker soda.RequesterSig
	kind  int32
	f     *file
	// tag caches the arrival sizes for the deferred accept.
	putSize int
	getSize int
}

// srvState is the per-instance server state.
type srvState struct {
	store  map[string][]byte // the "disk"
	byPatt map[soda.Pattern]*file
	queue  *sodal.Queue[op]
}

// Server returns the file server program. initial seeds the store (may be
// nil); queueCap bounds pending operations.
func Server(initial map[string][]byte, queueCap int) soda.Program {
	if queueCap <= 0 {
		queueCap = 32
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			st := &srvState{
				store:  make(map[string][]byte),
				byPatt: make(map[soda.Pattern]*file),
				queue:  sodal.NewQueue[op](queueCap),
			}
			for name, data := range initial {
				st.store[name] = append([]byte(nil), data...)
			}
			c.SetStash(st)
			if err := c.Advertise(ServicePattern); err != nil {
				panic(err)
			}
			if err := c.Advertise(OpenPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			st := c.Stash().(*srvState)
			switch {
			case ev.Pattern == ServicePattern:
				// Pure discovery probe; acknowledge.
				c.AcceptCurrentSignal(soda.OK)
			case ev.Pattern == OpenPattern:
				// OPEN is served directly in the handler (§4.4.5): bind
				// a fresh, slot-collision-free pattern to the file and
				// return it.
				fd, err := c.AdvertiseUnique()
				if err != nil {
					c.RejectCurrent()
					return
				}
				res := c.AcceptCurrentExchange(soda.OK, patternBytes(fd), ev.PutSize)
				if res.Status != soda.AcceptSuccess {
					_ = c.Unadvertise(fd)
					return
				}
				name := string(res.Data)
				if _, ok := st.store[name]; !ok {
					st.store[name] = nil // opening creates (§4.4.5 defers errors)
				}
				st.byPatt[fd] = &file{name: name, patt: fd}
			default:
				f, ok := st.byPatt[ev.Pattern]
				if !ok {
					c.RejectCurrent()
					return
				}
				queued := st.queue.EnQueue(op{
					asker:   ev.Asker,
					kind:    ev.Arg,
					f:       f,
					putSize: ev.PutSize,
					getSize: ev.GetSize,
				})
				if !queued {
					c.RejectCurrent()
				}
			}
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*srvState)
			for {
				c.WaitUntil(func() bool { return !st.queue.IsEmpty() })
				o := st.queue.MustDeQueue()
				perform(c, st, o)
			}
		},
	}
}

// perform executes one queued operation, completing the client's request.
func perform(c *soda.Client, st *srvState, o op) {
	f := o.f
	switch o.kind {
	case OpRead:
		data := st.store[f.name]
		start := min(f.offset, len(data))
		end := min(start+o.getSize, len(data))
		res := c.AcceptGet(o.asker, soda.OK, data[start:end])
		if res.Status == soda.AcceptSuccess {
			f.offset = end
		}
	case OpWrite:
		res := c.AcceptPut(o.asker, soda.OK, o.putSize)
		if res.Status != soda.AcceptSuccess {
			return
		}
		data := st.store[f.name]
		end := f.offset + len(res.Data)
		if end > len(data) {
			grown := make([]byte, end)
			copy(grown, data)
			data = grown
		}
		copy(data[f.offset:], res.Data)
		st.store[f.name] = data
		f.offset = end
	case OpSeek:
		res := c.AcceptPut(o.asker, soda.OK, o.putSize)
		if res.Status != soda.AcceptSuccess || len(res.Data) != 4 {
			return
		}
		f.offset = int(binary.BigEndian.Uint32(res.Data))
	case OpClose:
		c.AcceptSignal(o.asker, soda.OK)
		delete(st.byPatt, f.patt)
		_ = c.Unadvertise(f.patt)
	default:
		c.Accept(o.asker, -1, nil, 0)
	}
}

func patternBytes(p soda.Pattern) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(p))
	return b
}

// File is a client-side handle onto a remote open file.
type File struct {
	c   *soda.Client
	srv soda.MID
	fd  soda.Pattern
}

// Error reports a failed file-service transaction.
type Error struct {
	Op     string
	Status soda.Status
}

func (e *Error) Error() string { return fmt.Sprintf("fileserver: %s: %v", e.Op, e.Status) }

// Find locates a file server with DISCOVER.
func Find(c *soda.Client) (soda.MID, bool) {
	sig, ok := c.Discover(ServicePattern)
	return sig.MID, ok
}

// Open opens (creating if needed) the named file.
func Open(c *soda.Client, srv soda.MID, name string) (*File, error) {
	res := c.BExchange(soda.ServerSig{MID: srv, Pattern: OpenPattern}, soda.OK, []byte(name), 8)
	if res.Status != soda.StatusSuccess || len(res.Data) != 8 {
		return nil, &Error{Op: "open " + name, Status: res.Status}
	}
	return &File{c: c, srv: srv, fd: soda.Pattern(binary.BigEndian.Uint64(res.Data))}, nil
}

// Read returns up to n bytes from the cursor.
func (f *File) Read(n int) ([]byte, error) {
	res := f.c.BExchange(soda.ServerSig{MID: f.srv, Pattern: f.fd}, OpRead, nil, n)
	if res.Status != soda.StatusSuccess {
		return nil, &Error{Op: "read", Status: res.Status}
	}
	return res.Data, nil
}

// Write stores data at the cursor, advancing it.
func (f *File) Write(data []byte) error {
	res := f.c.BExchange(soda.ServerSig{MID: f.srv, Pattern: f.fd}, OpWrite, data, 0)
	if res.Status != soda.StatusSuccess {
		return &Error{Op: "write", Status: res.Status}
	}
	return nil
}

// Seek positions the cursor absolutely.
func (f *File) Seek(offset int) error {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(offset))
	res := f.c.BExchange(soda.ServerSig{MID: f.srv, Pattern: f.fd}, OpSeek, b, 0)
	if res.Status != soda.StatusSuccess {
		return &Error{Op: "seek", Status: res.Status}
	}
	return nil
}

// Close releases the descriptor pattern.
func (f *File) Close() error {
	res := f.c.BExchange(soda.ServerSig{MID: f.srv, Pattern: f.fd}, OpClose, nil, 0)
	if res.Status != soda.StatusSuccess {
		return &Error{Op: "close", Status: res.Status}
	}
	return nil
}

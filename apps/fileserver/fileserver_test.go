package fileserver

import (
	"bytes"
	"testing"
	"time"

	"soda"
)

func runFS(t *testing.T, initial map[string][]byte, clients map[soda.MID]func(c *soda.Client)) {
	t.Helper()
	nw := soda.NewNetwork()
	nw.Register("fs", Server(initial, 32))
	nw.MustAddNode(1)
	nw.MustBoot(1, "fs")
	mid := soda.MID(2)
	for cm, fn := range clients {
		fn := fn
		name := string(rune('a' + cm))
		nw.Register(name, soda.Program{Task: fn})
		nw.MustAddNode(cm)
		nw.MustBoot(cm, name)
		mid++
	}
	if err := nw.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWriteSeekRead(t *testing.T) {
	done := false
	runFS(t, nil, map[soda.MID]func(c *soda.Client){
		2: func(c *soda.Client) {
			srv, ok := Find(c)
			if !ok {
				t.Error("file server not found")
				return
			}
			f, err := Open(c, srv, "foo")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if err := f.Write([]byte("hello, soda file service")); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if err := f.Seek(7); err != nil {
				t.Errorf("seek: %v", err)
				return
			}
			got, err := f.Read(4)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if string(got) != "soda" {
				t.Errorf("read = %q, want soda", got)
			}
			if err := f.Close(); err != nil {
				t.Errorf("close: %v", err)
				return
			}
			// After close the descriptor pattern is dead.
			if _, err := f.Read(4); err == nil {
				t.Error("read after close succeeded")
			}
			done = true
		},
	})
	if !done {
		t.Fatal("client never finished")
	}
}

func TestPreloadedFileAndSequentialReads(t *testing.T) {
	content := []byte("0123456789abcdef")
	done := false
	runFS(t, map[string][]byte{"data": content}, map[soda.MID]func(c *soda.Client){
		2: func(c *soda.Client) {
			srv, _ := Find(c)
			f, err := Open(c, srv, "data")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			var got []byte
			for {
				chunk, err := f.Read(5)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if len(chunk) == 0 {
					break
				}
				got = append(got, chunk...)
			}
			if !bytes.Equal(got, content) {
				t.Errorf("sequential read = %q", got)
			}
			done = true
		},
	})
	if !done {
		t.Fatal("client never finished")
	}
}

func TestTwoClientsIndependentCursors(t *testing.T) {
	content := []byte("AAAABBBB")
	results := map[soda.MID]string{}
	mk := func(seek int) func(c *soda.Client) {
		return func(c *soda.Client) {
			srv, _ := Find(c)
			f, err := Open(c, srv, "shared")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if err := f.Seek(seek); err != nil {
				t.Errorf("seek: %v", err)
				return
			}
			got, err := f.Read(4)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			results[c.MID()] = string(got)
		}
	}
	runFS(t, map[string][]byte{"shared": content}, map[soda.MID]func(c *soda.Client){
		2: mk(0),
		3: mk(4),
	})
	if results[2] != "AAAA" || results[3] != "BBBB" {
		t.Fatalf("results = %v", results)
	}
}

func TestWriteVisibleToOtherClient(t *testing.T) {
	var got []byte
	runFS(t, nil, map[soda.MID]func(c *soda.Client){
		2: func(c *soda.Client) {
			srv, _ := Find(c)
			f, err := Open(c, srv, "log")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if err := f.Write([]byte("persisted")); err != nil {
				t.Errorf("write: %v", err)
			}
			f.Close()
		},
		3: func(c *soda.Client) {
			c.Hold(500 * time.Millisecond) // after the writer
			srv, _ := Find(c)
			f, err := Open(c, srv, "log")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			got, err = f.Read(32)
			if err != nil {
				t.Errorf("read: %v", err)
			}
		},
	})
	if string(got) != "persisted" {
		t.Fatalf("second client read %q", got)
	}
}

package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPatternClasses(t *testing.T) {
	tests := []struct {
		name          string
		give          Pattern
		wantReserved  bool
		wantWellKnown bool
	}{
		{"unique", UniquePattern(3, 77), false, false},
		{"wellknown", WellKnownPattern(0o346), false, true},
		{"reserved", ReservedPattern(1), true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Reserved(); got != tt.wantReserved {
				t.Errorf("Reserved() = %v, want %v", got, tt.wantReserved)
			}
			if got := tt.give.WellKnown(); got != tt.wantWellKnown {
				t.Errorf("WellKnown() = %v, want %v", got, tt.wantWellKnown)
			}
			if !tt.give.Valid() {
				t.Errorf("pattern %v not Valid", tt.give)
			}
		})
	}
}

func TestUniquePatternNeverCollidesWithClassedPatterns(t *testing.T) {
	f := func(serial uint8, counter uint32) bool {
		p := UniquePattern(serial, counter)
		return !p.Reserved() && !p.WellKnown() && p.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternSlot(t *testing.T) {
	p := WellKnownPattern(0x1234AB)
	if p.Slot() != 0xAB {
		t.Fatalf("Slot = %#x, want 0xAB", p.Slot())
	}
}

func messageFixtures() []Message {
	return []Message{
		&Request{TID: 42, Pattern: WellKnownPattern(7), Arg: -3, PutSize: 10, GetSize: 0, HasData: true, Data: []byte("hello data")},
		&Request{TID: 1, Pattern: UniquePattern(9, 100), Arg: 0, PutSize: 10, GetSize: 20},
		&Accept{TID: 42, Arg: -1, GetSize: 8, NeedData: true},
		&Accept{TID: 43, Arg: 5, GetSize: 0, Data: []byte{1, 2, 3}},
		&AcceptData{TID: 42, Data: []byte("resent put data")},
		&Cancel{TID: 9},
		&CancelReply{TID: 9, OK: true},
		&Probe{TID: 17},
		&ProbeReply{TID: 17, Alive: true},
		&Discover{TID: 5, Pattern: WellKnownPattern(0o123)},
		&DiscoverReply{TID: 5, Pattern: WellKnownPattern(0o123)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range messageFixtures() {
		t.Run(m.MsgKind().String(), func(t *testing.T) {
			b := Encode(m)
			if len(b) != m.WireSize() {
				t.Fatalf("encoded %d bytes, WireSize says %d", len(b), m.WireSize())
			}
			got, err := Decode(b)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			normalize(m)
			normalize(got)
			if !reflect.DeepEqual(m, got) {
				t.Fatalf("round trip mismatch:\n give %#v\n got  %#v", m, got)
			}
		})
	}
}

// normalize maps nil and empty data slices to a canonical form so
// DeepEqual compares semantic content.
func normalize(m Message) {
	switch v := m.(type) {
	case *Request:
		if len(v.Data) == 0 {
			v.Data = nil
		}
	case *Accept:
		if len(v.Data) == 0 {
			v.Data = nil
		}
	case *AcceptData:
		if len(v.Data) == 0 {
			v.Data = nil
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, m := range messageFixtures() {
		b := Encode(m)
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Fatalf("%s truncated to %d bytes decoded without error", m.MsgKind(), cut)
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := Encode(&Cancel{TID: 1})
	b = append(b, 0xEE)
	if _, err := Decode(b); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{0x7F, 0, 0}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(tid uint64, pat uint32, arg int32, put, get uint16, data []byte) bool {
		m := &Request{
			TID:     TID(tid),
			Pattern: WellKnownPattern(uint64(pat)),
			Arg:     arg,
			PutSize: uint32(put),
			GetSize: uint32(get),
			HasData: len(data) > 0,
			Data:    data,
		}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g, ok := got.(*Request)
		if !ok {
			return false
		}
		return g.TID == m.TID && g.Pattern == m.Pattern && g.Arg == m.Arg &&
			g.PutSize == m.PutSize && g.GetSize == m.GetSize &&
			g.HasData == m.HasData && bytes.Equal(g.Data, m.Data)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransportRoundTrip(t *testing.T) {
	tests := []*TransportFrame{
		{Kind: TransportData, Src: 1, Dst: 2, Seq: 1, ConnOpen: true, Payload: Encode(&Cancel{TID: 3})},
		{Kind: TransportData, Src: 1, Dst: 2, Seq: 1, AckPresent: true, AckSeq: 1, Payload: Encode(&Accept{TID: 3})},
		{Kind: TransportAck, Src: 2, Dst: 1, Seq: 1, ConnOpen: true, Payload: Encode(&Accept{TID: 3, Arg: 1})},
		{Kind: TransportAck, Src: 2, Dst: 1, Seq: 0},
		{Kind: TransportNack, Src: 2, Dst: 1, Seq: 0, Err: NackBusy},
		{Kind: TransportNack, Src: 2, Dst: 1, Seq: 0, Err: ErrUnadvertised},
		{Kind: TransportDatagram, Src: 3, Dst: BroadcastMID, Seq: 0, Payload: Encode(&Discover{TID: 1, Pattern: 5})},
	}
	for _, f := range tests {
		t.Run(f.Kind.String(), func(t *testing.T) {
			b := EncodeTransport(f)
			if len(b) != f.WireSize() {
				t.Fatalf("encoded %d bytes, WireSize says %d", len(b), f.WireSize())
			}
			got, err := DecodeTransport(b)
			if err != nil {
				t.Fatalf("DecodeTransport: %v", err)
			}
			if len(got.Payload) == 0 {
				got.Payload = nil
			}
			if len(f.Payload) == 0 {
				f.Payload = nil
			}
			if !reflect.DeepEqual(f, got) {
				t.Fatalf("round trip mismatch:\n give %#v\n got  %#v", f, got)
			}
		})
	}
}

func TestTransportRejectsBadInput(t *testing.T) {
	good := EncodeTransport(&TransportFrame{Kind: TransportData, Src: 1, Dst: 2, Payload: []byte{1}})
	if _, err := DecodeTransport(good[:5]); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := DecodeTransport(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x99
	if _, err := DecodeTransport(bad); err == nil {
		t.Fatal("unknown transport kind accepted")
	}
}

func TestSignatureStrings(t *testing.T) {
	if got := (ServerSig{MID: 4, Pattern: 0o346}).String(); got != "<4,%346>" {
		t.Errorf("ServerSig.String() = %q", got)
	}
	if got := (RequesterSig{MID: 4, TID: 9}).String(); got != "<4,#9>" {
		t.Errorf("RequesterSig.String() = %q", got)
	}
}

// TestTransportRoundTripProperty fuzzes the transport codec.
func TestTransportRoundTripProperty(t *testing.T) {
	f := func(kindSel uint8, src, dst uint16, seq uint8, open, ackPresent bool, ackSeq uint8, errCode uint8, payload []byte) bool {
		kinds := []TransportKind{TransportData, TransportAck, TransportNack, TransportDatagram}
		in := &TransportFrame{
			Kind:       kinds[int(kindSel)%len(kinds)],
			Src:        MID(src),
			Dst:        MID(dst),
			Seq:        seq,
			ConnOpen:   open,
			AckPresent: ackPresent,
			AckSeq:     ackSeq,
			Err:        ErrCode(errCode),
			Payload:    payload,
		}
		out, err := DecodeTransport(EncodeTransport(in))
		if err != nil {
			return false
		}
		if len(out.Payload) == 0 {
			out.Payload = nil
		}
		if len(in.Payload) == 0 {
			in.Payload = nil
		}
		return reflect.DeepEqual(in, out)
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics: arbitrary bytes must decode cleanly or error.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		_, _ = DecodeTransport(b)
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

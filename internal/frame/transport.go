package frame

import (
	"encoding/binary"
	"fmt"
)

// TransportKind discriminates frames at the Delta-t transport level
// (§5.2.2–5.2.3).
type TransportKind uint8

const (
	// TransportData carries an encoded kernel message reliably: it is
	// retransmitted until acknowledged. A DATA frame may additionally
	// piggyback an acknowledgement for the reverse direction (AckPresent)
	// — this is how ACCEPT+DATA acknowledges the REQUEST it completes,
	// and how a new REQUEST acknowledges the previous reply's data
	// (§5.2.3).
	TransportData TransportKind = iota + 1
	// TransportAck acknowledges a DATA frame; it may piggyback an
	// encoded kernel message in its payload (e.g. ACCEPT+ACK for a PUT).
	TransportAck
	// TransportNack is a negative acknowledgement: BUSY (the server
	// handler is unavailable; retry later) or an error code.
	TransportNack
	// TransportDatagram is an unreliable one-shot frame: no sequence
	// numbers, no acknowledgement, no retransmission. DISCOVER queries
	// and their staggered replies use datagrams; SODA makes no
	// reliability guarantees about DISCOVER (§3.4.4).
	TransportDatagram
	// TransportFrag is one fragment of a reliable message under the
	// opt-in sliding-window transport mode (Config.Window > 1). Seq
	// numbers the fragment in the per-link frame stream (acknowledged
	// cumulatively); MsgSeq/FragIndex locate it within its message, and
	// FragEnd marks the message's last fragment. A FRAG may piggyback a
	// cumulative frame acknowledgement for the reverse direction
	// (AckPresent/AckSeq). The window=1 transport never emits this kind.
	TransportFrag
	// TransportFragAck is a standalone cumulative fragment
	// acknowledgement: Seq is the highest frame sequence number received
	// in order. It advances the sender's window but completes no message
	// (message completion is signalled by TransportAck on the message
	// sequence number). Under selective repeat it may additionally carry
	// a SACK bitmap (SackBits) reporting fragments received out of order
	// beyond the cumulative point, so the sender retransmits only the
	// holes. Window=1 never emits this kind.
	TransportFragAck
)

func (k TransportKind) String() string {
	switch k {
	case TransportData:
		return "DATA"
	case TransportAck:
		return "ACK"
	case TransportNack:
		return "NACK"
	case TransportDatagram:
		return "DGRAM"
	case TransportFrag:
		return "FRAG"
	case TransportFragAck:
		return "FRAGACK"
	default:
		return fmt.Sprintf("transport(%d)", uint8(k))
	}
}

// NackBusy is the Err value of a BUSY NACK: the destination handler was
// unavailable and the frame should be retransmitted later at a reduced rate
// (§5.2.3). Error NACKs carry one of the ErrCode values instead.
const NackBusy ErrCode = 0xFF

// TransportFrame is the unit transmitted on the bus. Every frame carries
// the sender's view of the connection state so the receiver can discard
// duplicates; the ConnOpen bit prevents a frame from appearing to contain a
// piggybacked ACK when no connection is active (§5.2.3).
type TransportFrame struct {
	Kind     TransportKind
	Src      MID
	Dst      MID // BroadcastMID addresses every kernel
	Seq      uint8
	ConnOpen bool
	// AckPresent marks a DATA frame that also acknowledges the peer's
	// outstanding DATA with sequence AckSeq (piggybacked ACK). On a FRAG
	// frame it instead carries a cumulative frame acknowledgement for
	// the reverse direction's fragment stream.
	AckPresent bool
	AckSeq     uint8
	Err        ErrCode // NACK discriminator; NackBusy or an ErrCode

	// Fragment header extension, meaningful only for TransportFrag
	// (zero and unencoded for every other kind). MsgSeq numbers the
	// message the fragment belongs to, FragIndex the fragment within it,
	// and FragEnd marks the message's last fragment. Urgent mirrors the
	// sender's reply priority so the receiver can let a kernel reply
	// overtake a busy-rejected request (§5.2.2's no-deadlock rule).
	MsgSeq    uint8
	FragIndex uint8
	FragEnd   bool
	Urgent    bool

	// SackBits is the selective-acknowledgement bitmap, meaningful only
	// for TransportFragAck (zero and unencoded for every other kind, and
	// for plain cumulative FRAGACKs). Bit i set means frame sequence
	// Seq+2+i has been received out of order; Seq+1 is by definition the
	// first hole, so it never needs a bit. The bitmap spans 64 sequence
	// numbers — exactly the transport's maximum fragment inflight — and
	// is appended to the header only when nonzero (flagSack), keeping old
	// cumulative-only FRAGACKs byte-identical on the wire.
	SackBits uint64

	Payload []byte
}

// transportHeaderSize is the fixed on-wire header length: kind(1) src(2)
// dst(2) seq(1) flags(1) ackseq(1) err(1) paylen(4) + crc-equivalent pad(3).
// The three pad bytes stand in for the Megalink's CRC and sync overhead so
// frame timing is comparable to the thesis's hardware.
const transportHeaderSize = 16

// fragExtSize is the fragment header extension appended to the fixed
// header on TransportFrag frames: msgseq(1) fragindex(1).
const fragExtSize = 2

// sackExtSize is the selective-acknowledgement extension appended to the
// fixed header on TransportFragAck frames whose SackBits are nonzero:
// a big-endian 64-bit bitmap.
const sackExtSize = 8

// WireSize is the encoded frame length in bytes; it drives the bus
// transmission-time model.
func (f *TransportFrame) WireSize() int {
	n := transportHeaderSize + len(f.Payload)
	if f.Kind == TransportFrag {
		n += fragExtSize
	}
	if f.Kind == TransportFragAck && f.SackBits != 0 {
		n += sackExtSize
	}
	return n
}

const (
	flagConnOpen   = 1 << 0
	flagAckPresent = 1 << 1
	flagFragEnd    = 1 << 2
	flagUrgent     = 1 << 3
	flagSack       = 1 << 4
)

// EncodeTransport serializes a transport frame.
//
//lint:hotpath
func EncodeTransport(f *TransportFrame) []byte {
	//lint:allow noalloc (counted: one exact-size wire buffer per transmitted frame)
	return AppendTransport(make([]byte, 0, f.WireSize()), f)
}

// AppendTransport appends the encoding of f to dst and returns the extended
// slice, for callers that manage their own buffers. Note that a buffer
// handed to Iface.Send must not be reused while deliveries are in flight:
// the bus shares the sender's bytes with every receiver.
//
//lint:hotpath
func AppendTransport(dst []byte, f *TransportFrame) []byte {
	dst = append(dst, byte(f.Kind))
	dst = binary.BigEndian.AppendUint16(dst, uint16(f.Src))
	dst = binary.BigEndian.AppendUint16(dst, uint16(f.Dst))
	var flags byte
	if f.ConnOpen {
		flags |= flagConnOpen
	}
	if f.AckPresent {
		flags |= flagAckPresent
	}
	if f.Kind == TransportFrag {
		if f.FragEnd {
			flags |= flagFragEnd
		}
		if f.Urgent {
			flags |= flagUrgent
		}
	}
	sack := f.Kind == TransportFragAck && f.SackBits != 0
	if sack {
		flags |= flagSack
	}
	dst = append(dst, f.Seq, flags, f.AckSeq, byte(f.Err))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, 0, 0, 0) // CRC/sync stand-in
	if f.Kind == TransportFrag {
		dst = append(dst, f.MsgSeq, f.FragIndex)
	}
	if sack {
		dst = binary.BigEndian.AppendUint64(dst, f.SackBits)
	}
	return append(dst, f.Payload...)
}

// DecodeTransport parses a frame produced by EncodeTransport. The returned
// frame's Payload is a fresh copy, independent of b.
func DecodeTransport(b []byte) (*TransportFrame, error) {
	return decodeTransport(b, false)
}

// DecodeTransportShared is DecodeTransport without the payload copy: the
// returned frame's Payload aliases b. It exists for the receive hot path,
// where the wire buffer is immutable by contract (the bus shares one buffer
// among all receivers and observers). Callers must treat Payload as
// read-only and must not retain it past the buffer's lifetime.
//
//lint:hotpath
func DecodeTransportShared(b []byte) (*TransportFrame, error) {
	return decodeTransport(b, true)
}

func decodeTransport(b []byte, share bool) (*TransportFrame, error) {
	if len(b) < transportHeaderSize {
		return nil, ErrShortFrame
	}
	flags := b[6]
	//lint:allow noalloc (counted: one TransportFrame per decoded frame)
	f := &TransportFrame{
		Kind:       TransportKind(b[0]),
		Src:        MID(binary.BigEndian.Uint16(b[1:3])),
		Dst:        MID(binary.BigEndian.Uint16(b[3:5])),
		Seq:        b[5],
		ConnOpen:   flags&flagConnOpen != 0,
		AckPresent: flags&flagAckPresent != 0,
		AckSeq:     b[7],
		Err:        ErrCode(b[8]),
	}
	switch f.Kind {
	case TransportData, TransportAck, TransportNack, TransportDatagram,
		TransportFrag, TransportFragAck:
	default:
		//lint:allow noalloc (cold: malformed-frame error path)
		return nil, fmt.Errorf("%w: transport kind %d", ErrUnknownKind, b[0])
	}
	hdr := transportHeaderSize
	if f.Kind == TransportFrag {
		hdr += fragExtSize
		if len(b) < hdr {
			return nil, ErrShortFrame
		}
		f.FragEnd = flags&flagFragEnd != 0
		f.Urgent = flags&flagUrgent != 0
		f.MsgSeq = b[transportHeaderSize]
		f.FragIndex = b[transportHeaderSize+1]
	}
	if flags&flagSack != 0 {
		// The SACK extension is canonical: only FRAGACKs carry it, and
		// only with a nonzero bitmap (a zero bitmap encodes as a plain
		// cumulative ack with the flag clear).
		if f.Kind != TransportFragAck {
			//lint:allow noalloc (cold: malformed-frame error path)
			return nil, fmt.Errorf("%w: sack flag on %s frame", ErrUnknownKind, f.Kind)
		}
		if len(b) < hdr+sackExtSize {
			return nil, ErrShortFrame
		}
		f.SackBits = binary.BigEndian.Uint64(b[hdr : hdr+sackExtSize])
		if f.SackBits == 0 {
			//lint:allow noalloc (cold: malformed-frame error path)
			return nil, fmt.Errorf("%w: sack flag with empty bitmap", ErrUnknownKind)
		}
		hdr += sackExtSize
	}
	n := binary.BigEndian.Uint32(b[9:13])
	if uint32(len(b)-hdr) != n {
		return nil, ErrShortFrame
	}
	if n > 0 {
		if share {
			f.Payload = b[hdr : hdr+int(n) : hdr+int(n)]
		} else {
			//lint:allow noalloc (cold: copying DecodeTransport only; the hot path uses DecodeTransportShared)
			f.Payload = make([]byte, n)
			copy(f.Payload, b[hdr:])
		}
	}
	return f, nil
}

// Native fuzz tests for the wire codecs. The seed corpus is not synthetic:
// capturedFrames runs a real Delta-t exchange over a lossy bus and taps every
// per-receiver delivery, so the fuzzer starts from genuine DATA, ACK, NACK
// and retransmission frames plus the kernel messages they carry. CI runs
// these with a short -fuzztime as a smoke test; `go test` alone replays the
// seed corpus.
package frame_test

import (
	"bytes"
	"reflect"
	"testing"

	"soda/internal/bus"
	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// capturedFrames drives two Delta-t endpoints through a handful of exchanges
// on a lossy bus and returns a copy of every raw transport frame that reached
// a receiver — including retransmissions and piggybacked ACKs.
func capturedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	k := sim.New(42)
	cfg := bus.DefaultConfig()
	cfg.LossProb = 0.2
	b := bus.New(k, cfg)

	var raws [][]byte
	b.AddDeliveryTap(func(e bus.DeliveryEvent) {
		raws = append(raws, append([]byte(nil), e.Raw...))
	})

	reply := frame.Encode(&frame.Accept{TID: 7, Arg: -1, GetSize: 64, Data: []byte("pong")})
	mk := func(mid frame.MID, hooks deltat.Hooks) *deltat.Endpoint {
		ep, err := deltat.New(k, b.Wire(), mid, deltat.DefaultConfig(), hooks)
		if err != nil {
			tb.Fatalf("deltat.New(%d): %v", mid, err)
		}
		return ep
	}
	mk(2, deltat.Hooks{OnData: func(frame.MID, []byte) deltat.Decision {
		return deltat.Decision{Verdict: deltat.VerdictAck, Reply: reply}
	}})
	ep1 := mk(1, deltat.Hooks{OnData: func(frame.MID, []byte) deltat.Decision {
		return deltat.Decision{Verdict: deltat.VerdictAck}
	}})

	req := frame.Encode(&frame.Request{
		TID: 7, Pattern: frame.WellKnownPattern(0o7441),
		Arg: 3, PutSize: 32, GetSize: 64,
		HasData: true, Data: []byte("put-data"),
	})
	retrans := frame.Encode(&frame.Request{TID: 7, Pattern: frame.WellKnownPattern(0o7441), PutSize: 32, GetSize: 64})
	ep1.Send(2, req, retrans, nil)
	ep1.Send(2, frame.Encode(&frame.Probe{TID: 7}), nil, nil)
	if err := k.Run(); err != nil {
		tb.Fatalf("capture run: %v", err)
	}
	if len(raws) == 0 {
		tb.Fatal("capture rig produced no frames")
	}
	return raws
}

// capturedWindowFrames is the windowed-transport counterpart of
// capturedFrames: a lossy bidirectional exchange of multi-fragment
// messages between Window=4 endpoints, tapping every delivered frame. The
// capture contains FRAG runs (first, middle, FragEnd, and Urgent-flagged
// fragments), standalone FRAGACKs, piggybacked cumulative acks, and
// go-back-N retransmissions — the whole §11 wire vocabulary.
func capturedWindowFrames(tb testing.TB) [][]byte {
	tb.Helper()
	k := sim.New(7)
	cfg := bus.DefaultConfig()
	cfg.LossProb = 0.15
	b := bus.New(k, cfg)

	var raws [][]byte
	b.AddDeliveryTap(func(e bus.DeliveryEvent) {
		raws = append(raws, append([]byte(nil), e.Raw...))
	})

	dcfg := deltat.DefaultConfig()
	dcfg.Window = 4
	mk := func(mid frame.MID) *deltat.Endpoint {
		ep, err := deltat.New(k, b.Wire(), mid, dcfg, deltat.Hooks{
			OnData: func(frame.MID, []byte) deltat.Decision {
				return deltat.Decision{Verdict: deltat.VerdictAck, Reply: []byte("ok")}
			},
		})
		if err != nil {
			tb.Fatalf("deltat.New(%d): %v", mid, err)
		}
		return ep
	}
	ep1, ep2 := mk(1), mk(2)

	bulk := func(n int, fill byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = fill + byte(i)
		}
		return p
	}
	ep1.Send(2, bulk(3000, 0x10), nil, nil)
	ep1.Send(2, bulk(1500, 0x20), nil, nil)
	ep2.Send(1, bulk(2200, 0x30), nil, nil)
	ep1.SendUrgent(2, bulk(1300, 0x40), nil, nil)
	ep1.Send(2, []byte("small"), nil, nil)
	if err := k.Run(); err != nil {
		tb.Fatalf("window capture run: %v", err)
	}
	if len(raws) == 0 {
		tb.Fatal("window capture rig produced no frames")
	}
	return raws
}

// capturedSackFrames captures a selective-repeat exchange on a brutally
// lossy wire (30%), where the receiver's out-of-order buffer fills and
// every standalone FRAGACK carries a SACK bitmap of the holes. The corpus
// this yields — FRAGACKs with nonzero SackBits, selective retransmissions,
// completion probes — is the DESIGN.md §12 wire vocabulary that the clean
// and go-back-N rigs can never produce.
func capturedSackFrames(tb testing.TB) [][]byte {
	tb.Helper()
	k := sim.New(11)
	cfg := bus.DefaultConfig()
	cfg.LossProb = 0.3
	b := bus.New(k, cfg)

	var raws [][]byte
	b.AddDeliveryTap(func(e bus.DeliveryEvent) {
		raws = append(raws, append([]byte(nil), e.Raw...))
	})

	dcfg := deltat.DefaultConfig()
	dcfg.Window = 8
	dcfg.Recovery = deltat.RecoverySelective
	mk := func(mid frame.MID) *deltat.Endpoint {
		ep, err := deltat.New(k, b.Wire(), mid, dcfg, deltat.Hooks{
			OnData: func(frame.MID, []byte) deltat.Decision {
				return deltat.Decision{Verdict: deltat.VerdictAck, Reply: []byte("ok")}
			},
		})
		if err != nil {
			tb.Fatalf("deltat.New(%d): %v", mid, err)
		}
		return ep
	}
	ep1 := mk(1)
	mk(2)

	for i := 0; i < 8; i++ {
		p := make([]byte, 4000)
		for j := range p {
			p[j] = byte(i*31 + j)
		}
		var cb func(deltat.Result)
		cb = func(r deltat.Result) {
			if r.Kind != deltat.ResultAcked {
				ep1.Send(2, p, nil, cb) // survive a mid-run death verdict
			}
		}
		ep1.Send(2, p, nil, cb)
	}
	if err := k.Run(); err != nil {
		tb.Fatalf("sack capture run: %v", err)
	}
	if len(raws) == 0 {
		tb.Fatal("sack capture rig produced no frames")
	}
	return raws
}

// seedMessages is one instance of every kernel message type, with and
// without payload data.
func seedMessages() []frame.Message {
	return []frame.Message{
		&frame.Request{TID: 1, Pattern: frame.WellKnownPattern(0o100), Arg: -5, PutSize: 8, GetSize: 16, HasData: true, Data: []byte("abc")},
		&frame.Request{TID: 2, Pattern: frame.UniquePattern(3, 9)},
		&frame.Accept{TID: 1, Arg: 1, GetSize: 8, NeedData: true},
		&frame.Accept{TID: 1, Data: []byte("reply")},
		&frame.AcceptData{TID: 1, Data: []byte("resent")},
		&frame.Cancel{TID: 1},
		&frame.CancelReply{TID: 1, OK: true},
		&frame.Probe{TID: 1},
		&frame.ProbeReply{TID: 1, Alive: true},
		&frame.Discover{TID: 1, Pattern: frame.WellKnownPattern(0o7441)},
		&frame.DiscoverReply{TID: 1, Pattern: frame.ReservedPattern(2)},
	}
}

// FuzzMessageRoundTrip: any byte slice Decode accepts must survive
// Encode→Decode unchanged, and Encode's length must match WireSize. The
// comparison is decode-vs-decode, not decode-vs-literal: the wire format is
// not bijective (any nonzero byte decodes as true), so the invariant is that
// decoding is idempotent across one canonicalizing re-encode.
func FuzzMessageRoundTrip(f *testing.F) {
	for _, m := range seedMessages() {
		f.Add(frame.Encode(m))
	}
	for _, raw := range capturedFrames(f) {
		if tf, err := frame.DecodeTransport(raw); err == nil && len(tf.Payload) > 0 {
			f.Add(tf.Payload)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := frame.Decode(b)
		if err != nil {
			return // invalid inputs must be rejected, not crash — that's the test
		}
		enc := frame.Encode(m)
		if len(enc) != m.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d for %s", m.WireSize(), len(enc), m.MsgKind())
		}
		m2, err := frame.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", m.MsgKind(), err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed message:\n  first:  %#v\n  second: %#v", m, m2)
		}
		// AppendMessage must be Encode with a caller-owned prefix.
		withPrefix := frame.AppendMessage([]byte{0xAA, 0xBB}, m)
		if !bytes.Equal(withPrefix[2:], enc) {
			t.Fatal("AppendMessage diverged from Encode")
		}
	})
}

// FuzzTransportRoundTrip: the transport codec must round-trip semantically,
// report WireSize consistently, and the shared (zero-copy) decoder must be
// observationally identical to the copying one on every input.
func FuzzTransportRoundTrip(f *testing.F) {
	for _, raw := range capturedFrames(f) {
		f.Add(raw)
	}
	for _, raw := range capturedWindowFrames(f) {
		f.Add(raw)
	}
	for _, raw := range capturedSackFrames(f) {
		f.Add(raw)
	}
	f.Add(frame.EncodeTransport(&frame.TransportFrame{
		Kind: frame.TransportNack, Src: 1, Dst: 2, Seq: 9, Err: frame.NackBusy,
	}))
	f.Add(frame.EncodeTransport(&frame.TransportFrame{
		Kind: frame.TransportFrag, Src: 1, Dst: 2, Seq: 3, MsgSeq: 1, FragIndex: 2,
		FragEnd: true, Urgent: true, AckPresent: true, AckSeq: 5,
		Payload: []byte("tail-chunk"),
	}))
	f.Add(frame.EncodeTransport(&frame.TransportFrame{
		Kind: frame.TransportFragAck, Src: 2, Dst: 1, Seq: 3,
	}))
	f.Add(frame.EncodeTransport(&frame.TransportFrame{
		Kind: frame.TransportDatagram, Src: 3, Dst: frame.BroadcastMID,
		Payload: frame.Encode(&frame.Discover{TID: 4, Pattern: frame.WellKnownPattern(0o7441)}),
	}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		tf, err := frame.DecodeTransport(b)
		shared, errShared := frame.DecodeTransportShared(b)
		if (err == nil) != (errShared == nil) {
			t.Fatalf("decoder disagreement: copy err=%v, shared err=%v", err, errShared)
		}
		if err != nil {
			return
		}
		// Differential: aliasing the payload must not change what callers see.
		if !reflect.DeepEqual(tf, shared) {
			t.Fatalf("shared decode diverged:\n  copy:   %#v\n  shared: %#v", tf, shared)
		}
		if len(shared.Payload) > 0 && &shared.Payload[0] != &b[len(b)-len(shared.Payload)] {
			t.Fatal("DecodeTransportShared copied the payload")
		}
		enc := frame.EncodeTransport(tf)
		if len(enc) != tf.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", tf.WireSize(), len(enc))
		}
		tf2, err := frame.DecodeTransport(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(tf, tf2) {
			t.Fatalf("round trip changed frame:\n  first:  %#v\n  second: %#v", tf, tf2)
		}
	})
}

// TestCapturedCorpusDecodes pins the capture rig itself: every frame it taps
// must decode, and every DATA/ACK payload must be a valid kernel message —
// so the fuzz seeds stay real wire traffic, not garbage.
func TestCapturedCorpusDecodes(t *testing.T) {
	kinds := map[frame.TransportKind]int{}
	for _, raw := range capturedFrames(t) {
		tf, err := frame.DecodeTransport(raw)
		if err != nil {
			t.Fatalf("captured frame does not decode: %v", err)
		}
		kinds[tf.Kind]++
		if len(tf.Payload) > 0 {
			if _, err := frame.Decode(tf.Payload); err != nil {
				t.Fatalf("captured %s payload does not decode: %v", tf.Kind, err)
			}
		}
	}
	if kinds[frame.TransportData] == 0 || kinds[frame.TransportAck] == 0 {
		t.Fatalf("capture rig missing core traffic: %v", kinds)
	}
}

// TestCapturedWindowCorpusDecodes pins the windowed capture rig: every
// tapped frame decodes, re-encodes byte-identically (the codec is
// canonical on real traffic), and the shared decoder agrees with the
// copying one while aliasing rather than copying fragment payloads. Unlike
// DATA frames, a fragment's payload is a chunk of a larger message, so it
// is deliberately NOT fed to frame.Decode here. The capture must exhibit
// the full fragment vocabulary — first/middle/FragEnd fragments, urgent
// fragments, piggybacked cumulative acks, and standalone FRAGACKs — or the
// fuzz seeds have gone stale.
func TestCapturedWindowCorpusDecodes(t *testing.T) {
	kinds := map[frame.TransportKind]int{}
	ends, urgents, piggy := 0, 0, 0
	for _, raw := range capturedWindowFrames(t) {
		tf, err := frame.DecodeTransport(raw)
		if err != nil {
			t.Fatalf("captured frame does not decode: %v", err)
		}
		shared, err := frame.DecodeTransportShared(raw)
		if err != nil {
			t.Fatalf("shared decode rejected a frame the copying decoder accepted: %v", err)
		}
		if !reflect.DeepEqual(tf, shared) {
			t.Fatalf("shared decode diverged on captured %s:\n  copy:   %#v\n  shared: %#v",
				tf.Kind, tf, shared)
		}
		if len(shared.Payload) > 0 && &shared.Payload[0] != &raw[len(raw)-len(shared.Payload)] {
			t.Fatalf("DecodeTransportShared copied a %s payload", tf.Kind)
		}
		if enc := frame.EncodeTransport(tf); !bytes.Equal(enc, raw) {
			t.Fatalf("captured %s is not canonical: re-encode differs", tf.Kind)
		}
		kinds[tf.Kind]++
		if tf.Kind == frame.TransportFrag {
			if tf.FragEnd {
				ends++
			}
			if tf.Urgent {
				urgents++
			}
			if tf.AckPresent {
				piggy++
			}
		}
	}
	if kinds[frame.TransportFrag] == 0 || kinds[frame.TransportFragAck] == 0 {
		t.Fatalf("window capture missing fragment traffic: %v", kinds)
	}
	if ends == 0 || urgents == 0 || piggy == 0 {
		t.Fatalf("fragment vocabulary incomplete: FragEnd=%d Urgent=%d AckPresent=%d", ends, urgents, piggy)
	}
}

// TestCapturedSackCorpusDecodes pins the selective-repeat capture rig:
// every tapped frame decodes canonically, and the traffic exhibits the
// recovery vocabulary the fuzzer needs as seeds — standalone FRAGACKs
// carrying nonzero SACK bitmaps, and fragment retransmissions (the same
// frame sequence delivered more than once). If the 30%-loss exchange stops
// producing SACKs, the seeds have gone stale and this fails loudly.
func TestCapturedSackCorpusDecodes(t *testing.T) {
	kinds := map[frame.TransportKind]int{}
	sacks := 0
	fragSeqSeen := map[uint8]int{}
	retrans := 0
	for _, raw := range capturedSackFrames(t) {
		tf, err := frame.DecodeTransport(raw)
		if err != nil {
			t.Fatalf("captured frame does not decode: %v", err)
		}
		if enc := frame.EncodeTransport(tf); !bytes.Equal(enc, raw) {
			t.Fatalf("captured %s is not canonical: re-encode differs", tf.Kind)
		}
		kinds[tf.Kind]++
		switch tf.Kind {
		case frame.TransportFragAck:
			if tf.SackBits != 0 {
				sacks++
			}
		case frame.TransportFrag:
			fragSeqSeen[tf.Seq]++
			if fragSeqSeen[tf.Seq] > 1 {
				retrans++
			}
		}
	}
	if kinds[frame.TransportFrag] == 0 || kinds[frame.TransportFragAck] == 0 {
		t.Fatalf("sack capture missing fragment traffic: %v", kinds)
	}
	if sacks == 0 {
		t.Fatal("no SACK-bearing FRAGACK captured: the selective-repeat seeds are stale")
	}
	if retrans == 0 {
		t.Fatal("no fragment retransmission captured at 30% loss")
	}
}

package bus

import (
	"testing"
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
)

func testFrame(kind frame.TransportKind, n int) []byte {
	raw := make([]byte, n)
	if n > 0 {
		raw[0] = byte(kind)
	}
	return raw
}

func TestUnicastDelivery(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	var got []byte
	var at sim.Time
	if _, err := b.Attach(2, func(raw []byte) { got = raw; at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	i1, err := b.Attach(1, func([]byte) { t.Error("sender must not hear itself") })
	if err != nil {
		t.Fatal(err)
	}
	payload := testFrame(frame.TransportData, 125) // 1000 bits @ 1 Mbit = 1 ms
	i1.Send(2, payload)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil {
		t.Fatal("frame not delivered")
	}
	want := time.Millisecond + DefaultConfig().PropDelay
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestBroadcastDeliversToAllButSender(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	heard := make(map[frame.MID]int)
	var senderIface *Iface
	for mid := frame.MID(1); mid <= 4; mid++ {
		mid := mid
		i, err := b.Attach(mid, func([]byte) { heard[mid]++ })
		if err != nil {
			t.Fatal(err)
		}
		if mid == 1 {
			senderIface = i
		}
	}
	senderIface.Send(frame.BroadcastMID, testFrame(frame.TransportData, 20))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if heard[1] != 0 {
		t.Error("sender heard its own broadcast")
	}
	for mid := frame.MID(2); mid <= 4; mid++ {
		if heard[mid] != 1 {
			t.Errorf("node %d heard %d copies, want 1", mid, heard[mid])
		}
	}
}

func TestMediumSerializesTransmissions(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultConfig()
	cfg.PropDelay = 0
	b := New(k, cfg)
	var times []sim.Time
	if _, err := b.Attach(9, func([]byte) { times = append(times, k.Now()) }); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	i2, _ := b.Attach(2, func([]byte) {})
	// Two 125-byte frames sent at t=0 must serialize: 1 ms and 2 ms.
	i1.Send(9, testFrame(frame.TransportData, 125))
	i2.Send(9, testFrame(frame.TransportData, 125))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("delivery times = %v, want [1ms 2ms]", times)
	}
}

func TestLossModelDropsFrames(t *testing.T) {
	k := sim.New(42)
	cfg := DefaultConfig()
	cfg.LossProb = 0.5
	b := New(k, cfg)
	received := 0
	if _, err := b.Attach(2, func([]byte) { received++ }); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	const n = 400
	for range [n]struct{}{} {
		i1.Send(2, testFrame(frame.TransportData, 10))
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received == 0 || received == n {
		t.Fatalf("received %d/%d; loss model inert", received, n)
	}
	st := b.Stats()
	if st.FramesLost+st.FramesDelivered != n {
		t.Fatalf("lost %d + delivered %d != sent %d", st.FramesLost, st.FramesDelivered, n)
	}
}

func TestDownedInterface(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	received := 0
	i2, err := b.Attach(2, func([]byte) { received++ })
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	i2.Down()
	i1.Send(2, testFrame(frame.TransportData, 10))
	// A downed sender cannot transmit either.
	i2.Send(1, testFrame(frame.TransportData, 10))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received != 0 {
		t.Fatalf("downed interface received %d frames", received)
	}
	st := b.Stats()
	if st.FramesSent != 1 {
		t.Fatalf("FramesSent = %d, want 1 (downed iface must not transmit)", st.FramesSent)
	}
	if st.FramesDroppedDown != 1 || st.FramesLost != 0 {
		t.Fatalf("FramesDroppedDown = %d, FramesLost = %d; want the downed-iface discard counted separately (1, 0)",
			st.FramesDroppedDown, st.FramesLost)
	}

	// After Up, traffic flows again.
	i2.Up()
	i1.Send(2, testFrame(frame.TransportData, 10))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received != 1 {
		t.Fatalf("received %d after Up, want 1", received)
	}
}

func TestAttachErrors(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	if _, err := b.Attach(frame.BroadcastMID, func([]byte) {}); err == nil {
		t.Error("attaching broadcast MID must fail")
	}
	if _, err := b.Attach(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(1, func([]byte) {}); err == nil {
		t.Error("duplicate attach must fail")
	}
}

func TestStatsByKindAndReset(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	if _, err := b.Attach(2, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	i1.Send(2, testFrame(frame.TransportData, 30))
	i1.Send(2, testFrame(frame.TransportAck, 12))
	i1.Send(2, testFrame(frame.TransportAck, 12))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := b.Stats()
	if st.ByKind[frame.TransportData] != 1 || st.ByKind[frame.TransportAck] != 2 {
		t.Fatalf("ByKind = %v", st.ByKind)
	}
	if st.BytesSent != 54 {
		t.Fatalf("BytesSent = %d, want 54", st.BytesSent)
	}
	b.ResetStats()
	if got := b.Stats(); got.FramesSent != 0 || len(got.ByKind) != 0 {
		t.Fatalf("stats not reset: %+v", got)
	}
}

func TestTapObservesTransmissions(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	if _, err := b.Attach(2, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	var evs []TapEvent
	b.SetTap(func(e TapEvent) { evs = append(evs, e) })
	i1.Send(2, testFrame(frame.TransportNack, 12))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(evs) != 1 {
		t.Fatalf("tap saw %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Src != 1 || e.Dst != 2 || e.Kind != frame.TransportNack || e.Size != 12 {
		t.Fatalf("tap event = %+v", e)
	}
}

func TestSendToUnknownDestinationIsSilent(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	i1, _ := b.Attach(1, func([]byte) {})
	i1.Send(99, testFrame(frame.TransportData, 10))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st := b.Stats(); st.FramesDelivered != 0 {
		t.Fatalf("delivered %d frames to nobody", st.FramesDelivered)
	}
}

// judgeFunc adapts a function to the FaultModel interface for tests.
type judgeFunc func(now sim.Time, src, dst frame.MID, raw []byte) FaultAction

func (f judgeFunc) Judge(now sim.Time, src, dst frame.MID, raw []byte) FaultAction {
	return f(now, src, dst, raw)
}

// wireFrame builds a well-formed 16-byte-header transport frame so the
// corruption model's length-field damage is observable via DecodeTransport.
func wireFrame(payload []byte) []byte {
	return frame.EncodeTransport(&frame.TransportFrame{
		Kind:    frame.TransportData,
		Src:     1,
		Dst:     2,
		Payload: payload,
	})
}

func TestFaultModelDrop(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	received := 0
	if _, err := b.Attach(2, func([]byte) { received++ }); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	drop := true
	b.SetFaultModel(judgeFunc(func(_ sim.Time, src, dst frame.MID, _ []byte) FaultAction {
		if src != 1 || dst != 2 {
			t.Errorf("Judge saw link %d->%d, want 1->2", src, dst)
		}
		return FaultAction{Drop: drop}
	}))
	i1.Send(2, testFrame(frame.TransportData, 10))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received != 0 {
		t.Fatal("dropped frame was delivered")
	}
	drop = false
	i1.Send(2, testFrame(frame.TransportData, 10))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received != 1 {
		t.Fatalf("received %d after fault cleared, want 1", received)
	}
	if st := b.Stats(); st.FramesLost != 1 {
		t.Fatalf("FramesLost = %d, want 1", st.FramesLost)
	}
}

func TestFaultModelCorruptIsAlwaysDetectable(t *testing.T) {
	k := sim.New(7)
	b := New(k, DefaultConfig())
	var got [][]byte
	if _, err := b.Attach(2, func(raw []byte) { got = append(got, raw) }); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	b.SetFaultModel(judgeFunc(func(sim.Time, frame.MID, frame.MID, []byte) FaultAction {
		return FaultAction{Corrupt: true}
	}))
	const n = 200
	original := wireFrame([]byte("kernel message payload"))
	for range [n]struct{}{} {
		i1.Send(2, original)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d corrupted frames, want %d", len(got), n)
	}
	for _, raw := range got {
		if _, err := frame.DecodeTransport(raw); err == nil {
			t.Fatalf("corrupted frame decoded cleanly: % x", raw)
		}
	}
	if st := b.Stats(); st.FramesCorrupted != n {
		t.Fatalf("FramesCorrupted = %d, want %d", st.FramesCorrupted, n)
	}
}

func TestFaultModelDuplicateAndDelayPreserveFIFO(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	var times []sim.Time
	if _, err := b.Attach(2, func([]byte) { times = append(times, k.Now()) }); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	first := true
	b.SetFaultModel(judgeFunc(func(sim.Time, frame.MID, frame.MID, []byte) FaultAction {
		if first {
			first = false
			// Delay the first frame well past the second's natural
			// arrival, and duplicate it.
			return FaultAction{Delay: 50 * time.Millisecond, Duplicate: true}
		}
		return FaultAction{}
	}))
	i1.Send(2, testFrame(frame.TransportData, 125))
	i1.Send(2, testFrame(frame.TransportData, 125))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 3 {
		t.Fatalf("delivered %d frames, want 3 (original + duplicate + second)", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("deliveries out of FIFO order: %v", times)
		}
	}
	// The undelayed second frame must not overtake the delayed first.
	if times[0] < 50*time.Millisecond {
		t.Fatalf("delayed frame arrived at %v, want >= 50ms", times[0])
	}
	if st := b.Stats(); st.FramesDuplicated != 1 || st.FramesDelivered != 3 {
		t.Fatalf("FramesDuplicated = %d, FramesDelivered = %d; want 1, 3", st.FramesDuplicated, st.FramesDelivered)
	}
}

func TestDeliveryTapSeesDeliveries(t *testing.T) {
	k := sim.New(3)
	b := New(k, DefaultConfig())
	if _, err := b.Attach(2, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	corrupt := false
	b.SetFaultModel(judgeFunc(func(sim.Time, frame.MID, frame.MID, []byte) FaultAction {
		return FaultAction{Corrupt: corrupt}
	}))
	var evs []DeliveryEvent
	b.AddDeliveryTap(func(e DeliveryEvent) { evs = append(evs, e) })
	i1.Send(2, wireFrame([]byte("ok")))
	corrupt = true
	i1.Send(2, wireFrame([]byte("damaged")))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("tap saw %d deliveries, want 2", len(evs))
	}
	if evs[0].Corrupted || !evs[1].Corrupted {
		t.Fatalf("corruption marks = [%v %v], want [false true]", evs[0].Corrupted, evs[1].Corrupted)
	}
	if evs[0].Src != 1 || evs[0].Dst != 2 {
		t.Fatalf("delivery event link = %d->%d, want 1->2", evs[0].Src, evs[0].Dst)
	}
	if _, err := frame.DecodeTransport(evs[0].Raw); err != nil {
		t.Fatalf("undamaged delivery fails decode: %v", err)
	}
}

// TestDeliveryBufferOwnership pins the buffer-ownership contract: Send
// takes ownership of raw, and every clean delivery shares the sender's
// very bytes (no per-receiver copy), while a corrupted delivery damages a
// private copy so the other receivers of the same broadcast still see the
// frame intact.
func TestDeliveryBufferOwnership(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	var clean, damaged []byte
	if _, err := b.Attach(2, func(raw []byte) { clean = raw }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(3, func(raw []byte) { damaged = raw }); err != nil {
		t.Fatal(err)
	}
	i1, _ := b.Attach(1, func([]byte) {})
	b.SetFaultModel(judgeFunc(func(_ sim.Time, _, dst frame.MID, _ []byte) FaultAction {
		return FaultAction{Corrupt: dst == 3}
	}))
	sent := wireFrame([]byte("shared payload"))
	pristine := wireFrame([]byte("shared payload"))
	i1.Send(frame.BroadcastMID, sent)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if clean == nil || damaged == nil {
		t.Fatal("missing deliveries")
	}
	if &clean[0] != &sent[0] {
		t.Fatal("clean delivery copied the buffer; want the sender's bytes shared")
	}
	if &damaged[0] == &sent[0] {
		t.Fatal("corrupted delivery aliases the shared buffer")
	}
	if string(sent) != string(pristine) {
		t.Fatal("corruption damaged the shared buffer in place")
	}
}

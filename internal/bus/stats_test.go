package bus

import (
	"reflect"
	"testing"

	"soda/internal/frame"
	"soda/internal/sim"
)

// TestResetStatsZeroesEveryField walks the Stats struct by reflection,
// poisons every field to a non-zero value, and asserts ResetStats clears
// them all — so a counter added in the future can never dodge the reset and
// silently leak across measurement windows.
func TestResetStatsZeroesEveryField(t *testing.T) {
	b := New(sim.New(1), DefaultConfig())

	poison := reflect.ValueOf(&b.stats).Elem()
	for i := 0; i < poison.NumField(); i++ {
		f := poison.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i) + 1)
		case reflect.Map:
			f.Set(reflect.MakeMap(f.Type()))
			f.SetMapIndex(reflect.ValueOf(frame.TransportData), reflect.ValueOf(uint64(9)))
		default:
			t.Fatalf("Stats field %s has kind %v: teach this test how to poison it",
				poison.Type().Field(i).Name, f.Kind())
		}
	}

	b.ResetStats()

	got := b.Stats()
	v := reflect.ValueOf(got)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Uint64:
			if f.Uint() != 0 {
				t.Errorf("Stats.%s = %d after ResetStats, want 0", name, f.Uint())
			}
		case reflect.Map:
			if f.Len() != 0 {
				t.Errorf("Stats.%s has %d entries after ResetStats, want empty", name, f.Len())
			}
		}
	}
}

// TestTransportSourcedCountersAccumulate: the Iface Count* reporters land in
// Stats and reset with everything else.
func TestTransportSourcedCountersAccumulate(t *testing.T) {
	b := New(sim.New(1), DefaultConfig())
	i, err := b.Attach(1, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	i.CountRetransmission()
	i.CountRetransmission()
	i.CountPiggybackedAck()
	i.CountPeerDeadTimeout()
	i.CountWindowFill()
	i.CountWindowFill()
	i.CountWindowFill()
	i.CountCumulativeAck()
	i.CountCumulativeAck()
	i.CountCumulativeAck()
	i.CountCumulativeAck()
	i.CountFragmentRetransmit()
	st := b.Stats()
	if st.Retransmissions != 2 || st.PiggybackedAcks != 1 || st.PeerDeadTimeouts != 1 {
		t.Fatalf("counters = %d/%d/%d, want 2/1/1",
			st.Retransmissions, st.PiggybackedAcks, st.PeerDeadTimeouts)
	}
	if st.WindowFills != 3 || st.CumulativeAcks != 4 || st.FragmentRetransmits != 1 {
		t.Fatalf("window counters = %d/%d/%d, want 3/4/1",
			st.WindowFills, st.CumulativeAcks, st.FragmentRetransmits)
	}
	b.ResetStats()
	st = b.Stats()
	if st.Retransmissions != 0 || st.PiggybackedAcks != 0 || st.PeerDeadTimeouts != 0 ||
		st.WindowFills != 0 || st.CumulativeAcks != 0 || st.FragmentRetransmits != 0 {
		t.Fatalf("counters survived ResetStats: %+v", st)
	}
}

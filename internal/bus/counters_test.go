package bus

import (
	"testing"

	"soda/internal/sim"
)

// TestRecoveryCounters pins the windowed-recovery stat hooks the transport
// calls into (DESIGN.md §12): selective retransmits, SACK blocks, and the
// AIMD window moves, alongside the interface identity accessor.
func TestRecoveryCounters(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	i, err := b.Attach(3, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if i.MID() != 3 {
		t.Fatalf("MID() = %d, want 3", i.MID())
	}
	i.CountFragmentRetransmit()
	i.CountSelectiveRetransmit()
	i.CountSackBlocks(2)
	i.CountSackBlocks(1)
	i.CountWindowIncrease()
	i.CountWindowIncrease()
	i.CountWindowDecrease()
	st := b.Stats()
	if st.FragmentRetransmits != 1 || st.SelectiveRetransmits != 1 {
		t.Errorf("retransmit counters = %d/%d, want 1/1",
			st.FragmentRetransmits, st.SelectiveRetransmits)
	}
	if st.SackBlocksSent != 3 {
		t.Errorf("SackBlocksSent = %d, want 3", st.SackBlocksSent)
	}
	if st.WindowIncreases != 2 || st.WindowDecreases != 1 {
		t.Errorf("AIMD counters = %d/%d, want 2/1", st.WindowIncreases, st.WindowDecreases)
	}
	b.ResetStats()
	if got := b.Stats(); got.SelectiveRetransmits != 0 || got.SackBlocksSent != 0 ||
		got.WindowIncreases != 0 || got.WindowDecreases != 0 {
		t.Errorf("ResetStats left recovery counters: %+v", got)
	}
}

package bus

import (
	"testing"
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
)

// TestBridgeHearsUnroutedUnicast pins the internetwork seam: a unicast to
// a MID not attached on this bus falls through to every bridge interface,
// while a locally-attached destination is never mirrored to bridges.
func TestBridgeHearsUnroutedUnicast(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	var atB, atBridge [][]byte
	ifA, err := b.Attach(1, func(raw []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(2, func(raw []byte) { atB = append(atB, raw) }); err != nil {
		t.Fatal(err)
	}
	br, err := b.AttachBridge(0xFE00, func(raw []byte) { atBridge = append(atBridge, raw) })
	if err != nil {
		t.Fatal(err)
	}
	// Bridges cannot share a MID with an attached interface.
	if _, err := b.AttachBridge(2, func([]byte) {}); err == nil {
		t.Fatal("AttachBridge accepted a duplicate MID")
	}

	ifA.Send(2, testFrame(frame.TransportData, 32))  // local: bridge must not hear it
	ifA.Send(77, testFrame(frame.TransportData, 32)) // absent: bridge fallthrough
	if err := k.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(atB) != 1 {
		t.Fatalf("local receiver heard %d frames, want 1", len(atB))
	}
	if len(atBridge) != 1 {
		t.Fatalf("bridge heard %d frames, want only the unrouted unicast", len(atBridge))
	}

	// A detached bridge stops hearing fallthrough traffic.
	br.Detach()
	ifA.Send(77, testFrame(frame.TransportData, 32))
	if err := k.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(atBridge) != 1 {
		t.Fatalf("detached bridge heard %d frames, want 1", len(atBridge))
	}
}

// TestBridgeDoesNotEchoSender checks the sending bridge is excluded from
// the fallthrough set (a gateway must not hear its own relay back).
func TestBridgeDoesNotEchoSender(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	var atG1, atG2 int
	g1, err := b.AttachBridge(0xFE00, func([]byte) { atG1++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AttachBridge(0xFE01, func([]byte) { atG2++ }); err != nil {
		t.Fatal(err)
	}
	g1.Send(77, testFrame(frame.TransportData, 16))
	if err := k.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if atG1 != 0 {
		t.Fatalf("sending bridge heard its own frame %d times", atG1)
	}
	if atG2 != 1 {
		t.Fatalf("peer bridge heard %d frames, want 1", atG2)
	}
}

// TestStatsAdd pins the reflective aggregation helper: every uint64
// counter sums and ByKind merges, including into a zero-valued receiver.
func TestStatsAdd(t *testing.T) {
	a := Stats{FramesSent: 1, Retransmissions: 2,
		ByKind: map[frame.TransportKind]uint64{frame.TransportData: 3}}
	b := Stats{FramesSent: 10, FramesLost: 5, PatternTableFull: 7,
		ByKind: map[frame.TransportKind]uint64{frame.TransportData: 1, frame.TransportAck: 2}}
	var agg Stats
	agg.Add(a)
	agg.Add(b)
	if agg.FramesSent != 11 || agg.FramesLost != 5 || agg.Retransmissions != 2 || agg.PatternTableFull != 7 {
		t.Fatalf("summed counters wrong: %+v", agg)
	}
	if agg.ByKind[frame.TransportData] != 4 || agg.ByKind[frame.TransportAck] != 2 {
		t.Fatalf("ByKind merge wrong: %v", agg.ByKind)
	}
	// Adding an empty Stats changes nothing.
	before := agg.FramesSent
	agg.Add(Stats{})
	if agg.FramesSent != before {
		t.Fatal("adding zero Stats changed a counter")
	}
}

// TestTransportCounterHooks covers the Iface counter pass-throughs the
// transport reports into bus stats.
func TestTransportCounterHooks(t *testing.T) {
	k := sim.New(1)
	b := New(k, DefaultConfig())
	i, err := b.Attach(1, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	i.CountPatternTableFull()
	i.CountPatternTableFull()
	if got := b.Stats().PatternTableFull; got != 2 {
		t.Fatalf("PatternTableFull = %d, want 2", got)
	}
}

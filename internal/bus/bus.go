// Package bus models the broadcast medium of a SODA network: a single
// shared 1 Mbit/s bus in the style of CompuNet's Megalink (§5.1).
//
// The model serializes transmissions (the medium carries one frame at a
// time), charges bandwidth-accurate transmission time for every frame, adds
// a fixed propagation delay, and can drop frames independently per receiver
// to emulate CRC-detected corruption (§5.2.2: "A message with an incorrect
// CRC is simply discarded"). All randomness comes from the simulation
// kernel's seeded source, so runs are reproducible.
package bus

import (
	"fmt"
	"slices"
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
)

// Config sets the physical characteristics of the medium.
type Config struct {
	// BandwidthBPS is the line rate in bits per second. The thesis's
	// Megalink runs at 1 megabit (§5.1).
	BandwidthBPS int64
	// PropDelay is the propagation plus interface latency per delivery.
	PropDelay time.Duration
	// LossProb is the probability that any single receiver discards a
	// frame (modelling CRC-detected corruption). Sampled independently
	// per receiver.
	LossProb float64
	// ArbJitter bounds the random extra wait added when a sender finds
	// the medium busy, standing in for backoff arbitration (§6.10).
	ArbJitter time.Duration
}

// DefaultConfig matches the thesis's development network.
func DefaultConfig() Config {
	return Config{
		BandwidthBPS: 1_000_000,
		PropDelay:    20 * time.Microsecond,
	}
}

// Stats counts traffic on the medium. FramesSent counts transmissions;
// FramesDelivered counts per-receiver deliveries (a broadcast to N attached
// interfaces can deliver N times); FramesLost counts per-receiver drops.
type Stats struct {
	FramesSent      uint64
	FramesDelivered uint64
	FramesLost      uint64
	BytesSent       uint64
	ByKind          map[frame.TransportKind]uint64
}

// TapEvent describes one transmission, for tracing.
type TapEvent struct {
	At   sim.Time
	Src  frame.MID
	Dst  frame.MID
	Kind frame.TransportKind
	Size int
}

// Bus is the shared medium. It is driven entirely from simulation context.
type Bus struct {
	k         *sim.Kernel
	cfg       Config
	ifaces    map[frame.MID]*Iface
	busyUntil sim.Time
	stats     Stats
	tap       func(TapEvent)
}

// New creates a bus on the given simulation kernel.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.BandwidthBPS <= 0 {
		cfg.BandwidthBPS = DefaultConfig().BandwidthBPS
	}
	return &Bus{
		k:      k,
		cfg:    cfg,
		ifaces: make(map[frame.MID]*Iface),
		stats:  Stats{ByKind: make(map[frame.TransportKind]uint64)},
	}
}

// SetTap installs a per-transmission observer (nil disables).
func (b *Bus) SetTap(tap func(TapEvent)) { b.tap = tap }

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats {
	out := b.stats
	out.ByKind = make(map[frame.TransportKind]uint64, len(b.stats.ByKind))
	for k, v := range b.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// ResetStats zeroes the counters; used to scope measurement windows.
func (b *Bus) ResetStats() {
	b.stats = Stats{ByKind: make(map[frame.TransportKind]uint64)}
}

// Iface is a node's attachment to the bus.
type Iface struct {
	bus  *Bus
	mid  frame.MID
	recv func(raw []byte)
	up   bool
}

// Attach connects a machine to the bus. recv is invoked in simulation
// context with the raw frame bytes for every frame addressed to mid (or
// broadcast) that survives the loss model.
func (b *Bus) Attach(mid frame.MID, recv func(raw []byte)) (*Iface, error) {
	if mid == frame.BroadcastMID {
		return nil, fmt.Errorf("bus: cannot attach the broadcast MID")
	}
	if _, dup := b.ifaces[mid]; dup {
		return nil, fmt.Errorf("bus: MID %d already attached", mid)
	}
	i := &Iface{bus: b, mid: mid, recv: recv, up: true}
	b.ifaces[mid] = i
	return i, nil
}

// MID reports the interface's machine id.
func (i *Iface) MID() frame.MID { return i.mid }

// Down disconnects the interface (a crashed node hears nothing). Frames in
// flight toward it are discarded at delivery time.
func (i *Iface) Down() { i.up = false }

// Up reconnects the interface after Down.
func (i *Iface) Up() { i.up = true }

// Send transmits raw to dst (or to every other attached interface when dst
// is BroadcastMID). The frame's first byte is the transport kind; it is
// used for accounting only. Send never blocks the caller: transmission and
// delivery are scheduled in virtual time.
func (i *Iface) Send(dst frame.MID, raw []byte) {
	b := i.bus
	if !i.up {
		return // a downed interface cannot drive the line
	}
	start := b.k.Now()
	if b.busyUntil > start {
		start = b.busyUntil
		if b.cfg.ArbJitter > 0 {
			start += time.Duration(b.k.Rand().Int63n(int64(b.cfg.ArbJitter) + 1))
		}
	}
	txTime := time.Duration(int64(len(raw)) * 8 * int64(time.Second) / b.cfg.BandwidthBPS)
	end := start + txTime
	b.busyUntil = end

	b.stats.FramesSent++
	b.stats.BytesSent += uint64(len(raw))
	var kind frame.TransportKind
	if len(raw) > 0 {
		kind = frame.TransportKind(raw[0])
		b.stats.ByKind[kind]++
	}
	if b.tap != nil {
		b.tap(TapEvent{At: b.k.Now(), Src: i.mid, Dst: dst, Kind: kind, Size: len(raw)})
	}

	deliverAt := end + b.cfg.PropDelay
	if dst == frame.BroadcastMID {
		// Iterate in MID order: map iteration order would make event
		// sequencing (and thus the whole simulation) nondeterministic.
		mids := make([]frame.MID, 0, len(b.ifaces))
		for mid := range b.ifaces {
			if mid != i.mid {
				mids = append(mids, mid)
			}
		}
		slices.Sort(mids)
		for _, mid := range mids {
			b.scheduleDelivery(b.ifaces[mid], raw, deliverAt)
		}
		return
	}
	if target, ok := b.ifaces[dst]; ok {
		b.scheduleDelivery(target, raw, deliverAt)
	}
}

func (b *Bus) scheduleDelivery(target *Iface, raw []byte, at sim.Time) {
	if b.cfg.LossProb > 0 && b.k.Rand().Float64() < b.cfg.LossProb {
		b.stats.FramesLost++
		return
	}
	buf := make([]byte, len(raw))
	copy(buf, raw)
	b.k.At(at, func() {
		if !target.up {
			b.stats.FramesLost++
			return
		}
		b.stats.FramesDelivered++
		target.recv(buf)
	})
}

// Package bus models the broadcast medium of a SODA network: a single
// shared 1 Mbit/s bus in the style of CompuNet's Megalink (§5.1).
//
// The model serializes transmissions (the medium carries one frame at a
// time), charges bandwidth-accurate transmission time for every frame, adds
// a fixed propagation delay, and can drop frames independently per receiver
// to emulate CRC-detected corruption (§5.2.2: "A message with an incorrect
// CRC is simply discarded"). All randomness comes from the simulation
// kernel's seeded source, so runs are reproducible.
package bus

import (
	"fmt"
	"reflect"
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
	"soda/internal/wire"
)

// Config sets the physical characteristics of the medium.
type Config struct {
	// BandwidthBPS is the line rate in bits per second. The thesis's
	// Megalink runs at 1 megabit (§5.1).
	BandwidthBPS int64
	// PropDelay is the propagation plus interface latency per delivery.
	PropDelay time.Duration
	// LossProb is the probability that any single receiver discards a
	// frame (modelling CRC-detected corruption). Sampled independently
	// per receiver.
	LossProb float64
	// ArbJitter bounds the random extra wait added when a sender finds
	// the medium busy, standing in for backoff arbitration (§6.10).
	ArbJitter time.Duration
}

// DefaultConfig matches the thesis's development network.
func DefaultConfig() Config {
	return Config{
		BandwidthBPS: 1_000_000,
		PropDelay:    20 * time.Microsecond,
	}
}

// Stats counts traffic on the medium. FramesSent counts transmissions;
// FramesDelivered counts per-receiver deliveries (a broadcast to N attached
// interfaces can deliver N times). FramesLost counts per-receiver drops by
// the loss model or a fault model; FramesDroppedDown counts frames that
// arrived at a downed interface and were discarded there. FramesCorrupted
// and FramesDuplicated count fault-model damage and duplication.
//
// The transport-sourced counters (Retransmissions, PiggybackedAcks,
// PeerDeadTimeouts) are reported by the Delta-t endpoints through their
// Iface, so protocol recovery work shows up next to the wire counters it
// causes.
//
// Measurement-window contract: every field of Stats — wire counters,
// fault-model counters, and transport-sourced counters alike — accumulates
// from the last ResetStats (or from bus creation). ResetStats zeroes the
// whole struct, so a window opened with ResetStats and read with Stats
// attributes all counters to the same interval. Per-node CPU cost buckets
// are NOT part of Stats; scope those separately with Node.ResetTotals.
type Stats struct {
	FramesSent        uint64
	FramesDelivered   uint64
	FramesLost        uint64
	FramesDroppedDown uint64
	FramesCorrupted   uint64
	FramesDuplicated  uint64
	// BridgeCorruptDrops counts corrupted frames discarded at a bridge
	// interface. A store-and-forward gateway validates the checksum on
	// receive like any receiver; unlike a node's transport it never hands
	// damaged bytes upward, so the frame dies here instead of being
	// relayed onto another segment as a clean-looking forgery.
	BridgeCorruptDrops uint64
	// Retransmissions counts DATA frames re-sent by a transport
	// retransmission timer (the first transmission is not counted).
	Retransmissions uint64
	// PiggybackedAcks counts acknowledgements that rode outgoing DATA
	// frames instead of standalone ACK frames (invisible in ByKind).
	PiggybackedAcks uint64
	// PeerDeadTimeouts counts sends abandoned after MPL+Δt of silence
	// (the transport reported the destination dead).
	PeerDeadTimeouts uint64
	// PatternTableFull counts AdvertiseUnique calls rejected because a
	// node's 256-slot pattern table was saturated (§5.4's flat directory is
	// a hard scale wall; the counter makes saturation observable at scale).
	PatternTableFull uint64
	// WindowFills counts sends that had to queue because the sliding
	// window (Config.Window messages) toward the destination was full —
	// the windowed transport's analogue of stop-and-wait head-of-line
	// blocking. Always zero at window=1.
	WindowFills uint64
	// CumulativeAcks counts cumulative fragment acknowledgements sent,
	// standalone FRAGACK frames and piggybacks on reverse FRAGs alike.
	CumulativeAcks uint64
	// FragmentRetransmits counts FRAG frames re-sent by the windowed
	// transport's recovery, go-back-N and selective repeat alike (first
	// transmissions not counted).
	FragmentRetransmits uint64
	// SelectiveRetransmits counts the subset of FragmentRetransmits that
	// were hole-targeted re-sends under selective repeat (SACKed
	// successors withheld): timer-driven hole rounds and fast
	// retransmits. Always zero under go-back-N.
	SelectiveRetransmits uint64
	// SackBlocksSent counts contiguous SACK blocks carried on outgoing
	// FRAGACK frames (one bitmap may report several blocks).
	SackBlocksSent uint64
	// WindowIncreases and WindowDecreases count AIMD congestion-window
	// moves: additive +1 growth after a clean window of completions, and
	// multiplicative halving on a recovery-timer fire. Always zero under
	// go-back-N or at window<=1.
	WindowIncreases uint64
	WindowDecreases uint64
	BytesSent       uint64
	ByKind          map[frame.TransportKind]uint64
}

// Add accumulates o into s: counters sum and ByKind merges. Reflection
// walks the uint64 fields so the sum stays exhaustive as counters are
// added — a hand-written list would silently omit new fields (the
// aggregation analogue of the ResetStats whole-struct rule). Used to
// total traffic across the segments of an internetwork.
func (s *Stats) Add(o Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o)
	for i := 0; i < sv.NumField(); i++ {
		if f := sv.Field(i); f.Kind() == reflect.Uint64 {
			f.SetUint(f.Uint() + ov.Field(i).Uint())
		}
	}
	if len(o.ByKind) > 0 {
		if s.ByKind == nil {
			s.ByKind = make(map[frame.TransportKind]uint64, len(o.ByKind))
		}
		for _, k := range sortediter.Keys(o.ByKind) {
			s.ByKind[k] += o.ByKind[k]
		}
	}
}

// FaultAction is a fault model's disposition of one per-receiver delivery.
// The zero value delivers the frame untouched.
type FaultAction struct {
	// Drop discards the frame for this receiver (counted as FramesLost).
	Drop bool
	// Corrupt damages the frame in transit. The damage is always
	// CRC-detectable — real hardware discards such frames after the
	// checksum (§5.2.2), so the model guarantees the transport decoder
	// rejects the bytes rather than ever delivering a forged frame.
	Corrupt bool
	// Duplicate delivers the frame a second time, one propagation delay
	// after the first copy.
	Duplicate bool
	// Delay adds latency to the delivery. Link FIFO order is preserved:
	// a delayed frame also delays everything behind it on the same
	// (src, dst) link, as a store-and-forward repeater would.
	Delay time.Duration
}

// FaultModel adjudicates every per-receiver delivery. Judge runs once per
// receiver per transmission (twice the propagation is shared, the fate is
// not) and must draw any randomness from the simulation kernel's source.
type FaultModel interface {
	Judge(now sim.Time, src, dst frame.MID, raw []byte) FaultAction
}

// DeliveryEvent describes one successful per-receiver delivery, for
// invariant checkers observing the wire. Raw is the delivered bytes —
// shared with the sender and every other clean receiver of the same
// transmission, so observers must not mutate it — and Corrupted reports
// whether the fault model damaged the frame in transit.
//
// lint:event — construct only under a nil-consumer guard (obszerocost).
type DeliveryEvent struct {
	At        sim.Time
	Src       frame.MID
	Dst       frame.MID
	Raw       []byte
	Corrupted bool
}

// TapEvent describes one transmission, for tracing.
//
// lint:event — construct only under a nil-consumer guard (obszerocost).
type TapEvent struct {
	At   sim.Time
	Src  frame.MID
	Dst  frame.MID
	Kind frame.TransportKind
	Size int
}

// Bus is the shared medium. It is driven entirely from simulation context.
type Bus struct {
	k         *sim.Kernel
	cfg       Config
	ifaces    map[frame.MID]*Iface
	busyUntil sim.Time
	stats     Stats
	tap       func(TapEvent)
	fault     FaultModel
	dtaps     []func(DeliveryEvent)
	// bridges are the interfaces attached via AttachBridge, kept in MID
	// order so the delivery fan-out of unrouted unicasts is deterministic.
	bridges []*Iface
	// linkFloor is the earliest admissible delivery instant per (src, dst)
	// link, maintained only while a fault model is installed: fault delays
	// must not reorder a link (the alternating-bit transport assumes FIFO
	// links, as the physical medium provides).
	linkFloor map[linkKey]sim.Time
}

type linkKey struct{ src, dst frame.MID }

// New creates a bus on the given simulation kernel.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.BandwidthBPS <= 0 {
		cfg.BandwidthBPS = DefaultConfig().BandwidthBPS
	}
	return &Bus{
		k:      k,
		cfg:    cfg,
		ifaces: make(map[frame.MID]*Iface),
		stats:  Stats{ByKind: make(map[frame.TransportKind]uint64)},
	}
}

// SetTap installs a per-transmission observer (nil disables).
func (b *Bus) SetTap(tap func(TapEvent)) { b.tap = tap }

// SetFaultModel installs the fault model consulted for every delivery (nil
// disables). The model is layered over Config.LossProb: uniform loss is
// sampled first, then the model judges the survivors.
func (b *Bus) SetFaultModel(m FaultModel) {
	b.fault = m
	if m != nil && b.linkFloor == nil {
		b.linkFloor = make(map[linkKey]sim.Time)
	}
}

// AddDeliveryTap registers an observer invoked for every per-receiver
// delivery, after the frame is handed to the interface. Taps cannot be
// removed; they are for run-scoped invariant checkers.
func (b *Bus) AddDeliveryTap(tap func(DeliveryEvent)) {
	b.dtaps = append(b.dtaps, tap)
}

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats {
	out := b.stats
	out.ByKind = make(map[frame.TransportKind]uint64, len(b.stats.ByKind))
	for k, v := range b.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// ResetStats zeroes every counter — wire, fault-model, and
// transport-sourced alike — by replacing the whole Stats value, so newly
// added fields can never be missed. Used to scope measurement windows; see
// the contract on Stats.
func (b *Bus) ResetStats() {
	b.stats = Stats{ByKind: make(map[frame.TransportKind]uint64)}
}

// Iface is a node's attachment to the bus.
type Iface struct {
	bus    *Bus
	mid    frame.MID
	recv   func(raw []byte)
	up     bool
	bridge bool
}

// Attach connects a machine to the bus. recv is invoked in simulation
// context with the raw frame bytes for every frame addressed to mid (or
// broadcast) that survives the loss model.
func (b *Bus) Attach(mid frame.MID, recv func(raw []byte)) (*Iface, error) {
	if mid == frame.BroadcastMID {
		return nil, fmt.Errorf("bus: cannot attach the broadcast MID")
	}
	if _, dup := b.ifaces[mid]; dup {
		return nil, fmt.Errorf("bus: MID %d already attached", mid)
	}
	i := &Iface{bus: b, mid: mid, recv: recv, up: true}
	b.ifaces[mid] = i
	return i, nil
}

// busWire adapts Attach's concrete *Iface result to the transport's wire
// seam (Go interfaces have no covariant returns, so the one-line wrapper
// is unavoidable).
type busWire struct{ b *Bus }

func (w busWire) Attach(mid frame.MID, recv func(raw []byte)) (wire.Iface, error) {
	return w.b.Attach(mid, recv)
}

// Wire exposes the bus as a transport medium (wire.Network). Delta-t
// endpoints attach through this seam, so the same transport code runs over
// the simulated bus and the real-socket backend.
func (b *Bus) Wire() wire.Network { return busWire{b} }

// AttachBridge connects a store-and-forward gateway to the bus. A bridge
// interface hears every broadcast (like any attachment) and, in addition,
// every unicast frame whose destination MID has no local attachment — the
// frames that need routing to another segment. Plain attachments never see
// such frames (the single-segment wire is unchanged when no bridge exists).
func (b *Bus) AttachBridge(mid frame.MID, recv func(raw []byte)) (*Iface, error) {
	i, err := b.Attach(mid, recv)
	if err != nil {
		return nil, err
	}
	i.bridge = true
	pos := len(b.bridges)
	for j, br := range b.bridges {
		if br.mid > mid {
			pos = j
			break
		}
	}
	b.bridges = append(b.bridges, nil)
	copy(b.bridges[pos+1:], b.bridges[pos:])
	b.bridges[pos] = i
	return i, nil
}

// Detach disconnects the interface from the bus entirely: it stops hearing
// frames and its MID becomes free for reuse. Frames already in flight toward
// it are discarded at delivery time (the interface is marked down).
func (i *Iface) Detach() {
	delete(i.bus.ifaces, i.mid)
	for idx, br := range i.bus.bridges {
		if br == i {
			i.bus.bridges = append(i.bus.bridges[:idx], i.bus.bridges[idx+1:]...)
			break
		}
	}
	i.up = false
}

// MID reports the interface's machine id.
func (i *Iface) MID() frame.MID { return i.mid }

// CountRetransmission records one transport-level retransmission in the
// bus counters. The transport endpoint calls it when a retransmission
// timer re-sends a DATA frame, so recovery traffic is attributable from
// Stats alone.
func (i *Iface) CountRetransmission() { i.bus.stats.Retransmissions++ }

// CountPiggybackedAck records an acknowledgement carried on a DATA frame
// (no standalone ACK frame hits the wire, so ByKind cannot see it).
func (i *Iface) CountPiggybackedAck() { i.bus.stats.PiggybackedAcks++ }

// CountPeerDeadTimeout records a send abandoned because the destination
// stayed silent past the transport's death-detection bound.
func (i *Iface) CountPeerDeadTimeout() { i.bus.stats.PeerDeadTimeouts++ }

// CountPatternTableFull records an advertise rejected by a saturated
// 256-slot pattern table on the owning node.
func (i *Iface) CountPatternTableFull() { i.bus.stats.PatternTableFull++ }

// CountWindowFill records a send queued behind a full sliding window.
func (i *Iface) CountWindowFill() { i.bus.stats.WindowFills++ }

// CountCumulativeAck records one cumulative fragment acknowledgement
// (standalone FRAGACK or piggybacked on a reverse FRAG frame).
func (i *Iface) CountCumulativeAck() { i.bus.stats.CumulativeAcks++ }

// CountFragmentRetransmit records a FRAG frame re-sent by windowed-mode
// recovery (either strategy).
func (i *Iface) CountFragmentRetransmit() { i.bus.stats.FragmentRetransmits++ }

// CountSelectiveRetransmit records a hole-targeted FRAG re-send under
// selective repeat (counted in addition to CountFragmentRetransmit).
func (i *Iface) CountSelectiveRetransmit() { i.bus.stats.SelectiveRetransmits++ }

// CountSackBlocks records the contiguous SACK blocks carried on one
// outgoing FRAGACK frame.
func (i *Iface) CountSackBlocks(n int) { i.bus.stats.SackBlocksSent += uint64(n) }

// CountWindowIncrease records one AIMD additive window increase.
func (i *Iface) CountWindowIncrease() { i.bus.stats.WindowIncreases++ }

// CountWindowDecrease records one AIMD multiplicative window decrease.
func (i *Iface) CountWindowDecrease() { i.bus.stats.WindowDecreases++ }

// Down disconnects the interface (a crashed node hears nothing). Frames in
// flight toward it are discarded at delivery time.
func (i *Iface) Down() { i.up = false }

// Up reconnects the interface after Down.
func (i *Iface) Up() { i.up = true }

// Send transmits raw to dst (or to every other attached interface when dst
// is BroadcastMID). The frame's first byte is the transport kind; it is
// used for accounting only. Send never blocks the caller: transmission and
// delivery are scheduled in virtual time. The bus takes ownership of raw —
// clean deliveries share the very same bytes with every receiver — so the
// caller must not mutate the buffer after Send.
//
// The segemit marker gates this call in segment-handler code: a gateway
// may only reach it through a //lint:segqueue closure, never synchronously
// from its bridge receive path (see the sodavet segshare analyzer).
//
//lint:segemit
//lint:hotpath
func (i *Iface) Send(dst frame.MID, raw []byte) {
	b := i.bus
	if !i.up {
		return // a downed interface cannot drive the line
	}
	start := b.k.Now()
	if b.busyUntil > start {
		start = b.busyUntil
		if b.cfg.ArbJitter > 0 {
			//lint:allow noalloc (cold: arbitration jitter is off in the default config)
			start += time.Duration(b.k.Rand().Int63n(int64(b.cfg.ArbJitter) + 1))
		}
	}
	txTime := time.Duration(int64(len(raw)) * 8 * int64(time.Second) / b.cfg.BandwidthBPS)
	end := start + txTime
	b.busyUntil = end

	b.stats.FramesSent++
	b.stats.BytesSent += uint64(len(raw))
	var kind frame.TransportKind
	if len(raw) > 0 {
		kind = frame.TransportKind(raw[0])
		b.stats.ByKind[kind]++
	}
	if b.tap != nil {
		//lint:allow noalloc (observer: nil-guarded transmission tap, absent on measured runs)
		b.tap(TapEvent{At: b.k.Now(), Src: i.mid, Dst: dst, Kind: kind, Size: len(raw)})
	}

	deliverAt := end + b.cfg.PropDelay
	if dst == frame.BroadcastMID {
		// Iterate in MID order: map iteration order would make event
		// sequencing (and thus the whole simulation) nondeterministic.
		//lint:allow noalloc (cold: broadcast fan-out serves DISCOVER, not the request round trip)
		for _, mid := range sortediter.Keys(b.ifaces) {
			if mid != i.mid {
				b.scheduleDelivery(i.mid, b.ifaces[mid], raw, deliverAt)
			}
		}
		return
	}
	if target, ok := b.ifaces[dst]; ok {
		b.scheduleDelivery(i.mid, target, raw, deliverAt)
		return
	}
	// The destination is not attached here. On a single-segment network the
	// frame just dies on the wire; with bridges attached, each gateway hears
	// it and may route it toward the destination's segment.
	for _, br := range b.bridges {
		if br != i {
			b.scheduleDelivery(i.mid, br, raw, deliverAt)
		}
	}
}

func (b *Bus) scheduleDelivery(src frame.MID, target *Iface, raw []byte, at sim.Time) {
	//lint:allow noalloc (cold: loss injection is off on the measured hot path)
	if b.cfg.LossProb > 0 && b.k.Rand().Float64() < b.cfg.LossProb {
		b.stats.FramesLost++
		return
	}
	var act FaultAction
	if b.fault != nil {
		//lint:allow noalloc (cold: fault adjudication runs only under an installed fault model)
		act = b.fault.Judge(b.k.Now(), src, target.mid, raw)
	}
	if act.Drop {
		b.stats.FramesLost++
		return
	}
	// Receivers, taps and the decoder all treat delivered bytes as
	// read-only, so every clean delivery can share the sender's buffer;
	// only corruption needs a private copy to damage (other receivers of
	// the same broadcast must still see the frame intact).
	buf := raw
	corrupted := false
	if act.Corrupt && len(raw) > 0 {
		//lint:allow noalloc (cold: fault-model corruption needs a private copy)
		buf = make([]byte, len(raw))
		copy(buf, raw)
		//lint:allow noalloc (cold: fault-model corruption only)
		b.corrupt(buf)
		b.stats.FramesCorrupted++
		corrupted = true
	}
	if act.Delay > 0 {
		at += act.Delay
	}
	if b.fault != nil {
		// Clamp to the link's FIFO floor so a delayed frame never
		// overtakes (nor is overtaken on) its link.
		key := linkKey{src, target.mid}
		if floor := b.linkFloor[key]; at < floor {
			at = floor
		}
		//lint:allow noalloc (cold: link FIFO floors exist only under a fault model)
		b.linkFloor[key] = at
		if act.Duplicate {
			b.stats.FramesDuplicated++
			dupAt := at + b.cfg.PropDelay
			//lint:allow noalloc (cold: duplication exists only under a fault model)
			b.linkFloor[key] = dupAt
			b.deliver(src, target, buf, at, corrupted)
			b.deliver(src, target, buf, dupAt, corrupted)
			return
		}
	}
	b.deliver(src, target, buf, at, corrupted)
}

// deliver schedules the actual handoff to the receiving interface.
func (b *Bus) deliver(src frame.MID, target *Iface, buf []byte, at sim.Time, corrupted bool) {
	//lint:allow noalloc (counted: one delivery closure per in-flight frame)
	b.k.At(at, func() {
		if !target.up {
			b.stats.FramesDroppedDown++
			return
		}
		if corrupted && target.bridge {
			// A gateway checksums on receive and never forwards damage;
			// dropping before the taps keeps the checker's view honest
			// (the relayed copy would otherwise arrive marked clean).
			b.stats.BridgeCorruptDrops++
			return
		}
		b.stats.FramesDelivered++
		for _, tap := range b.dtaps {
			//lint:allow noalloc (observer: delivery taps are run-scoped checkers, absent on measured runs)
			tap(DeliveryEvent{At: b.k.Now(), Src: src, Dst: target.mid, Raw: buf, Corrupted: corrupted})
		}
		//lint:allow noalloc (indirect: recv is the transport's receive, itself a //lint:hotpath root)
		target.recv(buf)
	})
}

// corrupt damages buf in place with one to three random byte flips, then
// guarantees detectability by flipping a byte of the transport header's
// length field (bytes 9..12): the decoder's length check — the CRC's
// stand-in — always rejects the frame, so damage is never delivered as a
// forged message, exactly as checksummed hardware behaves (§5.2.2).
// Frames shorter than the transport header are rejected as short anyway.
func (b *Bus) corrupt(buf []byte) {
	rng := b.k.Rand()
	for flips := 1 + rng.Intn(3); flips > 0; flips-- {
		idx := rng.Intn(len(buf))
		if len(buf) >= 16 && idx >= 9 && idx < 13 {
			idx -= 9 // keep random flips off the length field
		}
		buf[idx] ^= byte(1 + rng.Intn(255))
	}
	if len(buf) >= 16 {
		buf[9+rng.Intn(4)] ^= byte(1 + rng.Intn(255))
	}
}

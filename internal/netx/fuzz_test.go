package netx

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// countingReader tracks how many bytes ReadFrame actually consumed, so
// the fuzz target can assert the re-encoded frames reproduce exactly the
// consumed prefix of the stream.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// FuzzStreamFramer throws arbitrary byte streams at ReadFrame and checks
// the framing invariants: no panic, every returned frame respects the
// length bounds, re-encoding the returned frames reproduces the consumed
// prefix byte-for-byte, and the terminal error is always classifiable —
// clean EOF at a record boundary, unexpected EOF inside one, or a framing
// error for a lying prefix. The committed corpus under
// testdata/fuzz/FuzzStreamFramer was captured from a real localhost run
// (see TestCaptureFramerCorpus).
func FuzzStreamFramer(f *testing.F) {
	f.Add([]byte{})                                             // empty stream
	f.Add(AppendFrame(nil, mkRaw(minFrameLen)))                 // one minimal frame
	f.Add(AppendFrame(AppendFrame(nil, mkRaw(32)), mkRaw(200))) // two frames
	f.Add([]byte{0x00, 0x00})                                   // truncated prefix
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})           // oversized length
	f.Add(AppendFrame(nil, mkRaw(minFrameLen-1)))               // runt length
	f.Add(AppendFrame(nil, mkRaw(64))[:20])                     // mid-frame EOF
	f.Fuzz(func(t *testing.T, data []byte) {
		cr := &countingReader{r: bytes.NewReader(data)}
		var reencoded []byte
		var terminal error
		for {
			raw, err := ReadFrame(cr, MaxFrameLen)
			if err != nil {
				terminal = err
				break
			}
			if len(raw) < minFrameLen || len(raw) > MaxFrameLen {
				t.Fatalf("ReadFrame returned a %d-byte frame outside [%d, %d]",
					len(raw), minFrameLen, MaxFrameLen)
			}
			reencoded = AppendFrame(reencoded, raw)
		}
		switch {
		case terminal == io.EOF, errors.Is(terminal, io.ErrUnexpectedEOF):
			// Truncation class: everything before the cut must have framed.
		case IsFramingError(terminal):
			// A lying prefix: the connection would be dropped here.
		default:
			t.Fatalf("ReadFrame error is neither EOF class nor framing: %v", terminal)
		}
		if !bytes.Equal(reencoded, data[:len(reencoded)]) {
			t.Fatalf("re-encoded frames diverge from the consumed stream prefix")
		}
		if cr.n > len(data) {
			t.Fatalf("consumed %d bytes of a %d-byte stream", cr.n, len(data))
		}
	})
}

var captureCorpus = flag.Bool("capturecorpus", false,
	"rewrite testdata/fuzz/FuzzStreamFramer from a live localhost run")

// corpusDir is where go test's fuzzing machinery picks up committed seeds.
const corpusDir = "testdata/fuzz/FuzzStreamFramer"

// TestCaptureFramerCorpus runs a real localhost exchange with a FrameTap
// on both networks and checks every frame the wire actually carried
// round-trips through the stream framer. With -capturecorpus it also
// rewrites the committed fuzz seed corpus from the captured frames, so
// the fuzzer starts from genuine transport bytes rather than synthetic
// ones.
func TestCaptureFramerCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("live corpus capture opens real sockets")
	}
	var mu sync.Mutex
	var captured [][]byte
	tap := func(raw []byte) {
		mu.Lock()
		captured = append(captured, append([]byte(nil), raw...))
		mu.Unlock()
	}
	mk := func(mid frame.MID, hooks deltat.Hooks) *node {
		t.Helper()
		k := sim.New(int64(mid))
		k.SetEventLimit(2_000_000)
		n, err := New(k, Config{Listen: "127.0.0.1:0", FrameTap: tap})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if hooks.OnData == nil {
			hooks.OnData = func(frame.MID, []byte) deltat.Decision {
				return deltat.Decision{Verdict: deltat.VerdictAck}
			}
		}
		ep, err := deltat.New(k, n, mid, deltat.DefaultConfig(), hooks)
		if err != nil {
			t.Fatalf("deltat.New: %v", err)
		}
		return &node{k: k, n: n, ep: ep}
	}
	server := mk(2, deltat.Hooks{
		OnData: func(src frame.MID, payload []byte) deltat.Decision {
			return deltat.Decision{Verdict: deltat.VerdictAck, Reply: []byte("corpus pong")}
		},
	})
	client := mk(1, deltat.Hooks{})
	defer closeAll(t, server, client)
	server.n.SetPeer(1, client.n.Addr())
	client.n.SetPeer(2, server.n.Addr())
	var res *deltat.Result
	client.k.At(0, func() {
		client.ep.Send(2, bytes.Repeat([]byte("corpus ping "), 24), nil,
			func(got deltat.Result) { res = &got })
	})
	server.n.Start(nil)
	client.n.Start(func() bool { return res != nil })
	if !client.n.Wait(waitMax) {
		t.Fatal("client driver did not park: no ACK within the deadline")
	}
	if !server.n.WaitIdle(50*time.Millisecond, waitMax) {
		t.Fatal("server never went idle")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(captured) == 0 {
		t.Fatal("the tap saw no frames on a completed exchange")
	}
	for i, raw := range captured {
		enc := AppendFrame(nil, raw)
		back, err := ReadFrame(bytes.NewReader(enc), MaxFrameLen)
		if err != nil {
			t.Fatalf("captured frame %d does not round-trip: %v", i, err)
		}
		if !bytes.Equal(back, raw) {
			t.Fatalf("captured frame %d mutated in the framer", i)
		}
	}
	if !*captureCorpus {
		return
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// One seed per distinct frame, plus the whole session as one stream —
	// the multi-frame entry exercises record-boundary recovery.
	seen := make(map[string]bool)
	var stream []byte
	i := 0
	for _, raw := range captured {
		stream = AppendFrame(stream, raw)
		if seen[string(raw)] {
			continue
		}
		seen[string(raw)] = true
		writeCorpusEntry(t, fmt.Sprintf("live-frame-%02d", i), AppendFrame(nil, raw))
		i++
	}
	writeCorpusEntry(t, "live-session", stream)
	writeCorpusEntry(t, "live-session-truncated", stream[:len(stream)-3])
}

// writeCorpusEntry writes one seed in go test's fuzz corpus file format.
func writeCorpusEntry(t *testing.T, name string, data []byte) {
	t.Helper()
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

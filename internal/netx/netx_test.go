package netx

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// waitMax bounds every blocking wait in this file; tests fail loudly on
// expiry instead of hanging.
const waitMax = 10 * time.Second

func mkRaw(n int) []byte {
	raw := make([]byte, n)
	for i := range raw {
		raw[i] = byte(i)
	}
	return raw
}

func TestFramerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	first := mkRaw(minFrameLen)
	second := mkRaw(200)
	if err := WriteFrame(&buf, first); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := WriteFrame(&buf, second); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	for i, want := range [][]byte{first, second} {
		got, err := ReadFrame(&buf, MaxFrameLen)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadFrame #%d = %x, want %x", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf, MaxFrameLen); err != io.EOF {
		t.Fatalf("ReadFrame on empty stream = %v, want io.EOF", err)
	}
}

func TestFramerAppendMatchesWrite(t *testing.T) {
	raw := mkRaw(64)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, raw); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if got := AppendFrame(nil, raw); !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("AppendFrame = %x, WriteFrame = %x", got, buf.Bytes())
	}
}

func TestFramerRejects(t *testing.T) {
	cases := []struct {
		name    string
		stream  []byte
		framing bool // want a framing error (vs plain EOF class)
	}{
		{"runt length", AppendFrame(nil, mkRaw(minFrameLen-1)), true},
		{"oversized length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, true},
		{"truncated prefix", []byte{0x00, 0x00}, false},
		{"mid-frame eof", AppendFrame(nil, mkRaw(64))[:20], false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.stream), MaxFrameLen)
			if err == nil {
				t.Fatal("ReadFrame accepted a malformed stream")
			}
			if got := IsFramingError(err); got != tc.framing {
				t.Fatalf("IsFramingError(%v) = %v, want %v", err, got, tc.framing)
			}
			if !tc.framing && !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
				t.Fatalf("truncation error = %v, want an EOF class", err)
			}
		})
	}
}

func TestFramerWriteRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, mkRaw(MaxFrameLen+1)); !IsFramingError(err) {
		t.Fatalf("WriteFrame(oversize) = %v, want framing error", err)
	}
}

// node is one in-process socket network with a Delta-t endpoint on it.
type node struct {
	k  *sim.Kernel
	n  *Network
	ep *deltat.Endpoint
}

func newNode(t *testing.T, mid frame.MID, hooks deltat.Hooks) *node {
	t.Helper()
	k := sim.New(int64(mid))
	k.SetEventLimit(2_000_000)
	n, err := New(k, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if hooks.OnData == nil {
		hooks.OnData = func(frame.MID, []byte) deltat.Decision {
			return deltat.Decision{Verdict: deltat.VerdictAck}
		}
	}
	ep, err := deltat.New(k, n, mid, deltat.DefaultConfig(), hooks)
	if err != nil {
		t.Fatalf("deltat.New: %v", err)
	}
	return &node{k: k, n: n, ep: ep}
}

func closeAll(t *testing.T, nodes ...*node) {
	t.Helper()
	for _, nd := range nodes {
		// The nil error is the leak check: Close waits for every socket
		// goroutine (accept, read, write, driver) to drain.
		if err := nd.n.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

func TestTwoNetworksExchange(t *testing.T) {
	var delivered []byte
	var res *deltat.Result
	server := newNode(t, 2, deltat.Hooks{
		OnData: func(src frame.MID, payload []byte) deltat.Decision {
			delivered = append([]byte(nil), payload...)
			return deltat.Decision{Verdict: deltat.VerdictAck, Reply: []byte("pong")}
		},
	})
	client := newNode(t, 1, deltat.Hooks{})
	defer closeAll(t, server, client)

	// Ephemeral ports: both sides bound :0, so the peer map is wired
	// after the fact from the reported addresses.
	server.n.SetPeer(1, client.n.Addr())
	client.n.SetPeer(2, server.n.Addr())

	// The kernel is owned by the driver goroutine once Start runs, so the
	// send is staged as a virtual-time event, not called directly.
	client.k.At(0, func() {
		client.ep.Send(2, []byte("ping"), nil, func(got deltat.Result) { res = &got })
	})
	server.n.Start(nil)
	client.n.Start(func() bool { return res != nil })

	if !client.n.Wait(waitMax) {
		t.Fatal("client driver did not park: no ACK within the deadline")
	}
	if res.Kind != deltat.ResultAcked || string(res.Reply) != "pong" {
		t.Fatalf("result = %+v, want acked with pong", res)
	}
	if !server.n.WaitIdle(50*time.Millisecond, waitMax) {
		t.Fatal("server never went idle")
	}
	if string(delivered) != "ping" {
		t.Fatalf("server saw %q, want ping", delivered)
	}
	cs, ss := client.n.Stats(), server.n.Stats()
	if cs.FramesSent == 0 || ss.FramesSent == 0 {
		t.Fatalf("stats did not count traffic: client %+v server %+v", cs, ss)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	k := sim.New(1)
	k.SetEventLimit(2_000_000)
	n, err := New(k, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var res *deltat.Result
	mk := func(mid frame.MID) *deltat.Endpoint {
		ep, err := deltat.New(k, n, mid, deltat.DefaultConfig(), deltat.Hooks{
			OnData: func(frame.MID, []byte) deltat.Decision {
				return deltat.Decision{Verdict: deltat.VerdictAck}
			},
		})
		if err != nil {
			t.Fatalf("deltat.New(%d): %v", mid, err)
		}
		return ep
	}
	e1 := mk(1)
	mk(2)
	k.At(0, func() {
		e1.Send(2, []byte("local"), nil, func(got deltat.Result) { res = &got })
	})
	n.Start(func() bool { return res != nil })
	if !n.Wait(waitMax) {
		t.Fatal("driver did not park")
	}
	if res.Kind != deltat.ResultAcked {
		t.Fatalf("result = %+v, want acked", res)
	}
	if err := n.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestSendToUnknownPeerIsDropped(t *testing.T) {
	k := sim.New(1)
	n, err := New(k, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	iface, err := n.Attach(1, func([]byte) {})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	k.At(0, func() { iface.Send(7, mkRaw(minFrameLen)) })
	n.RunFor(20 * time.Millisecond)
	if got := n.Stats().FramesLost; got == 0 {
		t.Fatal("send to an undeclared peer was not counted as lost")
	}
	if err := n.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestAttachRejects(t *testing.T) {
	k := sim.New(1)
	n, err := New(k, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Close()
	if _, err := n.Attach(frame.BroadcastMID, func([]byte) {}); err == nil {
		t.Fatal("Attach(BroadcastMID) succeeded")
	}
	if _, err := n.Attach(3, func([]byte) {}); err != nil {
		t.Fatalf("Attach(3): %v", err)
	}
	if _, err := n.Attach(3, func([]byte) {}); err == nil {
		t.Fatal("duplicate Attach succeeded")
	}
}

func TestRedialAfterPeerRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("redial test opens sockets and waits on real time")
	}
	var res *deltat.Result
	// A patient transport: the default DeadAfter (MPL+Δt ≈ 142ms) would
	// declare the peer dead during the deliberate outage below, which is
	// correct protocol behavior but not what this test is probing.
	patient := deltat.DefaultConfig()
	patient.R = 5 * time.Second
	ck := sim.New(1)
	ck.SetEventLimit(2_000_000)
	cn, err := New(ck, Config{Listen: "127.0.0.1:0", RedialInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("New client: %v", err)
	}
	cep, err := deltat.New(ck, cn, 1, patient, deltat.Hooks{
		OnData: func(frame.MID, []byte) deltat.Decision {
			return deltat.Decision{Verdict: deltat.VerdictAck}
		},
	})
	if err != nil {
		t.Fatalf("deltat.New client: %v", err)
	}
	client := &node{k: ck, n: cn, ep: cep}
	server := newNode(t, 2, deltat.Hooks{})
	server.n.SetPeer(1, client.n.Addr())
	client.n.SetPeer(2, server.n.Addr())

	// Kill the server's listener before the client ever dials: the first
	// dial fails, the peer loop re-dials, and Delta-t retransmits through
	// the outage once the listener is back.
	addr := server.n.Addr()
	if err := server.n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	client.k.At(0, func() {
		client.ep.Send(2, []byte("ping"), nil, func(got deltat.Result) { res = &got })
	})
	client.n.Start(func() bool { return res != nil })

	// Rebind the same address. The port just freed; on loopback this is
	// reliable enough outside -short, and a bind failure skips the test
	// rather than failing it.
	time.Sleep(100 * time.Millisecond)
	k2 := sim.New(2)
	k2.SetEventLimit(2_000_000)
	n2, err := New(k2, Config{Listen: addr})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	if _, err := deltat.New(k2, n2, 2, deltat.DefaultConfig(), deltat.Hooks{
		OnData: func(frame.MID, []byte) deltat.Decision {
			return deltat.Decision{Verdict: deltat.VerdictAck}
		},
	}); err != nil {
		t.Fatalf("deltat.New: %v", err)
	}
	n2.SetPeer(1, client.n.Addr())
	n2.Start(nil)

	if !client.n.Wait(waitMax) {
		t.Fatal("client driver did not park: retransmission never reached the restarted peer")
	}
	if res.Kind != deltat.ResultAcked {
		t.Fatalf("result = %+v, want acked", res)
	}
	if err := n2.Close(); err != nil {
		t.Errorf("Close restarted server: %v", err)
	}
	if err := client.n.Close(); err != nil {
		t.Errorf("Close client: %v", err)
	}
}

// Package netx is the real-socket backend behind the kernel API: the same
// Delta-t transport frames the simulator exchanges over its broadcast bus,
// carried over length-prefixed TCP streams between OS processes. A Network
// owns one sim.Kernel and drives it in real time — virtual time is mapped
// onto the wall clock from the moment Start is called — so the transport's
// timers (retransmission, Δt record reclamation, peer-death) fire at their
// configured spacing on the wall.
//
// Everything above the wire.Network seam is byte-for-byte the simulator's
// code path; netx replaces only the medium. Delivery keeps the bus's
// contract: unreliable, fire-and-forget. A frame sent while the peer's
// connection is down (or its queue is full) is dropped, exactly like a
// lossy bus window, and the Delta-t machinery recovers by retransmission.
//
// Concurrency model: socket goroutines (one accept loop, one dial/write
// loop per peer address, one reader per connection) touch only channels
// and the connection table; the kernel is touched exclusively by the
// driver goroutine, which alternates between advancing the kernel to the
// current wall position and draining received frames into it. The package
// is a declared real-time zone (see lint/zone.go): it is the one place the
// wall clock and raw concurrency are the point, and the determinism story
// is delegated to the sim oracle through the conformance harness.
package netx

//lint:zone realtime (socket backend: wall-clock pacing and socket goroutines are the point; determinism is cross-checked against the sim oracle by the conformance harness)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
	"soda/internal/wire"
)

// Config parameterizes a socket-backed network.
type Config struct {
	// Listen is the TCP listen address; ":0" picks an ephemeral port
	// (read it back with Addr).
	Listen string
	// Peers maps remote machine ids to their listen addresses. Several
	// MIDs may share one address (a process hosting several nodes gets
	// one connection). Extendable after creation with SetPeer.
	Peers map[frame.MID]string
	// RedialInterval spaces reconnect attempts after a dial failure or a
	// broken connection (default 50ms).
	RedialInterval time.Duration
	// MaxFrame caps a received frame's declared length (default
	// MaxFrameLen).
	MaxFrame int
	// SendQueue bounds each peer's in-flight write queue in frames
	// (default 256); a full queue drops like a lossy wire.
	SendQueue int
	// DrainTimeout bounds Close's wait for socket goroutines to exit
	// before reporting a leak (default 2s).
	DrainTimeout time.Duration
	// FrameTap, when set, observes every raw frame handed to the kernel
	// (test hook: the stream-framer fuzz corpus is captured here).
	FrameTap func(raw []byte)
}

func (c *Config) fill() {
	if c.RedialInterval <= 0 {
		c.RedialInterval = 50 * time.Millisecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = MaxFrameLen
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 256
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
}

// peer is one remote listen address: a dial/write loop owns its connection
// and drains outq onto it.
type peer struct {
	addr string
	outq chan []byte
}

// Network is a socket-backed frame medium plus the real-time driver for
// the kernel attached to it. It implements wire.Network.
type Network struct {
	k   *sim.Kernel
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	links  map[frame.MID]*link
	peers  map[frame.MID]*peer // routing: remote MID -> its address's peer
	byAddr map[string]*peer    // one dial loop per distinct address
	conns  map[net.Conn]bool   // every live conn, force-closed on Close
	closed bool

	inbox  chan []byte
	posted chan func()
	stop   chan struct{}

	started    bool
	driverDone chan struct{}
	driverErr  error // driver-goroutine kernel error; read after driverDone
	epoch      time.Time

	// lastActivity is the wall time (epoch nanos) of the last frame sent
	// or received; WaitIdle's quiescence test reads it.
	lastActivity atomic.Int64

	wg sync.WaitGroup // accept loop + readers + peer loops

	statsMu sync.Mutex
	stats   bus.Stats
}

// New opens the listen socket and starts the accept loop. The kernel must
// not be driven by anyone else from here on: Start's driver goroutine owns
// it.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netx: listen %q: %w", cfg.Listen, err)
	}
	n := &Network{
		k:          k,
		cfg:        cfg,
		ln:         ln,
		links:      make(map[frame.MID]*link),
		peers:      make(map[frame.MID]*peer),
		byAddr:     make(map[string]*peer),
		conns:      make(map[net.Conn]bool),
		inbox:      make(chan []byte, 1024),
		posted:     make(chan func(), 64),
		stop:       make(chan struct{}),
		driverDone: make(chan struct{}),
	}
	n.stats.ByKind = make(map[frame.TransportKind]uint64)
	n.touch()
	for _, mid := range sortediter.Keys(cfg.Peers) {
		n.SetPeer(mid, cfg.Peers[mid])
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr reports the bound listen address (resolving ":0").
func (n *Network) Addr() string { return n.ln.Addr().String() }

// Attach registers mid's frame sink (wire.Network).
func (n *Network) Attach(mid frame.MID, recv func(raw []byte)) (wire.Iface, error) {
	if mid == frame.BroadcastMID {
		return nil, fmt.Errorf("netx: cannot attach the broadcast MID")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.links[mid]; dup {
		return nil, fmt.Errorf("netx: MID %d already attached", mid)
	}
	l := &link{n: n, mid: mid, recv: recv, up: true}
	n.links[mid] = l
	return l, nil
}

// SetPeer routes the remote machine mid through addr, starting a dial loop
// for addr if this is its first MID. Safe before and during a run.
func (n *Network) SetPeer(mid frame.MID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	p := n.byAddr[addr]
	if p == nil {
		p = &peer{addr: addr, outq: make(chan []byte, n.cfg.SendQueue)}
		n.byAddr[addr] = p
		n.wg.Add(1)
		go n.peerLoop(p)
	}
	n.peers[mid] = p
}

// acceptLoop admits inbound connections until the listener closes; each
// gets a reader that feeds the shared inbox.
func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.track(c) {
			return
		}
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

// track registers a live connection for force-close; false after Close.
func (n *Network) track(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.Close()
		return false
	}
	n.conns[c] = true
	return true
}

func (n *Network) untrack(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
	c.Close()
}

// readLoop decodes length-prefixed frames off one connection into the
// inbox until the stream breaks (framing errors drop the connection — the
// record boundaries are gone — and the peer's dial loop reconnects).
func (n *Network) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer n.untrack(c)
	br := bufio.NewReader(c)
	for {
		raw, err := ReadFrame(br, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		n.touch()
		select {
		case n.inbox <- raw:
		case <-n.stop:
			return
		}
	}
}

// peerLoop owns one remote address: dial, then drain the write queue onto
// the connection; on any failure, redial after RedialInterval. Frames
// arriving while disconnected are dropped by the sender (send below), not
// queued here — wire-loss semantics.
func (n *Network) peerLoop(p *peer) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		d := net.Dialer{Timeout: n.cfg.RedialInterval}
		c, err := d.Dial("tcp", p.addr)
		if err != nil {
			t := time.NewTimer(n.cfg.RedialInterval)
			select {
			case <-n.stop:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		if !n.track(c) {
			return
		}
		// The remote may answer on this stream rather than dialing back;
		// read it like any inbound connection.
		n.wg.Add(1)
		go n.readLoop(c)
		if !n.writeLoop(p, c) {
			return
		}
	}
}

// writeLoop drains p.outq onto c until the connection or the network dies;
// false means the network is stopping.
func (n *Network) writeLoop(p *peer, c net.Conn) bool {
	for {
		select {
		case <-n.stop:
			return false
		case raw := <-p.outq:
			if err := WriteFrame(c, raw); err != nil {
				n.untrack(c)
				n.countLost(1)
				return true // redial
			}
			n.touch()
		}
	}
}

// send routes one encoded frame from a local link: local destinations
// loop back through the kernel at the current virtual time, remote ones
// enqueue toward their peer address, unknown ones drop. Runs on the driver
// goroutine (kernel context).
func (n *Network) send(from *link, dst frame.MID, raw []byte) {
	n.statsMu.Lock()
	n.stats.FramesSent++
	n.stats.BytesSent += uint64(len(raw))
	n.stats.ByKind[kindOf(raw)]++
	n.statsMu.Unlock()
	n.touch()
	if dst == frame.BroadcastMID {
		n.mu.Lock()
		locals := make([]*link, 0, len(n.links))
		for _, mid := range sortediter.Keys(n.links) {
			if l := n.links[mid]; l != from {
				locals = append(locals, l)
			}
		}
		addrs := sortediter.Keys(n.byAddr)
		remotes := make([]*peer, 0, len(addrs))
		for _, a := range addrs {
			remotes = append(remotes, n.byAddr[a])
		}
		n.mu.Unlock()
		for _, l := range locals {
			n.loopback(l, raw)
		}
		for _, p := range remotes {
			n.enqueue(p, raw)
		}
		return
	}
	n.mu.Lock()
	l := n.links[dst]
	p := n.peers[dst]
	n.mu.Unlock()
	switch {
	case l != nil:
		n.loopback(l, raw)
	case p != nil:
		n.enqueue(p, raw)
	default:
		n.countLost(1) // no route: dropped on the floor, like a dead drop cable
	}
}

// loopback delivers to a co-hosted link through the kernel, preserving the
// bus's asynchrony (the receive path runs as its own kernel event).
func (n *Network) loopback(l *link, raw []byte) {
	n.k.At(n.k.Now(), func() {
		if !l.up {
			n.statsMu.Lock()
			n.stats.FramesDroppedDown++
			n.statsMu.Unlock()
			return
		}
		n.countDelivered()
		l.recv(raw)
	})
}

// enqueue hands a frame to the peer's writer, dropping when the queue is
// full or the writer is between connections and the queue backs up.
func (n *Network) enqueue(p *peer, raw []byte) {
	select {
	case p.outq <- raw:
	default:
		n.countLost(1)
	}
}

func (n *Network) countLost(k uint64) {
	n.statsMu.Lock()
	n.stats.FramesLost += k
	n.statsMu.Unlock()
}

func (n *Network) countDelivered() {
	n.statsMu.Lock()
	n.stats.FramesDelivered++
	n.statsMu.Unlock()
}

// kindOf reads the transport kind byte for ByKind attribution.
func kindOf(raw []byte) frame.TransportKind {
	if len(raw) == 0 {
		return 0
	}
	return frame.TransportKind(raw[0])
}

// frameDst reads the destination MID from an encoded transport frame
// (header bytes 3..4); false for runts.
func frameDst(raw []byte) (frame.MID, bool) {
	if len(raw) < minFrameLen {
		return 0, false
	}
	return frame.MID(binary.BigEndian.Uint16(raw[3:5])), true
}

// touch stamps the activity clock (WaitIdle's quiescence test).
func (n *Network) touch() { n.lastActivity.Store(time.Now().UnixNano()) }

// Stats snapshots the medium counters (bus.Stats shaped, so Network.Stats
// reads the same on either backend).
func (n *Network) Stats() bus.Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	out := n.stats
	out.ByKind = make(map[frame.TransportKind]uint64, len(n.stats.ByKind))
	for _, k := range sortediter.Keys(n.stats.ByKind) {
		out.ByKind[k] = n.stats.ByKind[k]
	}
	return out
}

// ResetStats zeroes the medium counters (measurement windows).
func (n *Network) ResetStats() {
	n.statsMu.Lock()
	n.stats = bus.Stats{ByKind: make(map[frame.TransportKind]uint64)}
	n.statsMu.Unlock()
}

// Start launches the real-time driver: virtual time 0 is pinned to the
// wall clock now, and the kernel is advanced in step with it. done, when
// non-nil, is polled between events on the driver goroutine (it may read
// kernel-owned state); the driver parks when it reports true. Start is
// idempotent; only the first call's predicate is used.
func (n *Network) Start(done func() bool) {
	n.mu.Lock()
	if n.started || n.closed {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.epoch = time.Now()
	go n.drive(done)
}

// maxNap bounds driver sleeps so the done predicate and stop signal are
// polled even on an idle network.
const maxNap = 25 * time.Millisecond

// drive is the driver loop: advance the kernel to the wall position, drain
// received frames into it, then sleep until the earlier of the next event
// and new input.
func (n *Network) drive(done func() bool) {
	defer close(n.driverDone)
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		if err := n.k.RunUntil(time.Since(n.epoch)); err != nil {
			n.driverErr = err
			return
		}
		if n.drainInbox() {
			continue // deliveries scheduled; run them before sleeping
		}
		if done != nil && done() {
			return
		}
		nap := maxNap
		if next, ok := n.k.PeekNext(); ok {
			if until := time.Until(n.epoch.Add(next)); until <= 0 {
				continue
			} else if until < nap {
				nap = until
			}
		}
		t := time.NewTimer(nap)
		select {
		case <-n.stop:
			t.Stop()
			return
		case raw := <-n.inbox:
			t.Stop()
			n.deliver(raw)
		case fn := <-n.posted:
			t.Stop()
			fn()
		case <-t.C:
		}
	}
}

// Post schedules fn onto the driver goroutine in kernel context: the one
// safe way to read (or mutate) kernel-owned state while the driver runs.
// It blocks until the driver accepts it and reports false if the network
// stops first; an accepted fn runs unless the driver exits before its
// turn.
func (n *Network) Post(fn func()) bool {
	select {
	case n.posted <- fn:
		return true
	case <-n.stop:
		return false
	case <-n.driverDone:
		return false
	}
}

// drainInbox moves every queued received frame into the kernel; true if
// any arrived.
func (n *Network) drainInbox() bool {
	any := false
	for {
		select {
		case raw := <-n.inbox:
			n.deliver(raw)
			any = true
		case fn := <-n.posted:
			fn()
			any = true
		default:
			return any
		}
	}
}

// deliver hands one received frame to its destination link (broadcasts to
// every local link), from the driver goroutine in kernel context.
func (n *Network) deliver(raw []byte) {
	if n.cfg.FrameTap != nil {
		n.cfg.FrameTap(raw)
	}
	dst, ok := frameDst(raw)
	if !ok {
		n.statsMu.Lock()
		n.stats.FramesCorrupted++
		n.statsMu.Unlock()
		return
	}
	n.mu.Lock()
	targets := make([]*link, 0, 1)
	if dst == frame.BroadcastMID {
		for _, mid := range sortediter.Keys(n.links) {
			targets = append(targets, n.links[mid])
		}
	} else if l := n.links[dst]; l != nil {
		targets = append(targets, l)
	}
	n.mu.Unlock()
	for _, l := range targets {
		if !l.up {
			n.statsMu.Lock()
			n.stats.FramesDroppedDown++
			n.statsMu.Unlock()
			continue
		}
		n.countDelivered()
		l.recv(raw)
	}
}

// Err reports the driver's terminal kernel error, if any; read it after
// Wait or Close.
func (n *Network) Err() error { return n.driverErr }

// Wait blocks until the driver parks (done predicate satisfied, Close, or
// a kernel error), or max elapses; true means it parked.
func (n *Network) Wait(max time.Duration) bool {
	t := time.NewTimer(max)
	defer t.Stop()
	select {
	case <-n.driverDone:
		return true
	case <-t.C:
		return false
	}
}

// WaitIdle blocks until no frame has been sent or received for settle
// (quiescence, measured on the wall activity clock), or until max elapses;
// true means quiescent. Deadline-based by construction — callers never
// guess a sleep.
func (n *Network) WaitIdle(settle, max time.Duration) bool {
	deadline := time.Now().Add(max)
	for {
		last := time.Unix(0, n.lastActivity.Load())
		quiet := time.Since(last)
		if quiet >= settle {
			return true
		}
		now := time.Now()
		if !now.Before(deadline) {
			return false
		}
		nap := settle - quiet
		if rem := deadline.Sub(now); rem < nap {
			nap = rem
		}
		t := time.NewTimer(nap)
		select {
		case <-n.driverDone:
			t.Stop()
			return true // driver parked; nothing more will move
		case <-t.C:
		}
	}
}

// RunFor drives the network for a wall-clock duration, then parks the
// driver (connections stay open until Close). Convenience for the CLI's
// bounded runs; returns the driver's terminal error, if any.
func (n *Network) RunFor(d time.Duration) error {
	deadline := time.Now().Add(d)
	n.Start(func() bool { return !time.Now().Before(deadline) })
	n.Wait(d + time.Second)
	return n.driverErr
}

// Close stops the driver, closes the listener and every connection, and
// waits for all socket goroutines to drain. A non-nil error means a
// goroutine failed to exit within DrainTimeout — the leak check every
// socket test asserts on.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.ln.Close()
	//lint:allow mapiterorder (close-order of live sockets is unobservable; net.Conn keys have no order)
	for c := range n.conns {
		c.Close()
	}
	started := n.started
	n.mu.Unlock()

	drained := make(chan struct{})
	go func() { n.wg.Wait(); close(drained) }()
	t := time.NewTimer(n.cfg.DrainTimeout)
	defer t.Stop()
	if started {
		select {
		case <-n.driverDone:
		case <-t.C:
			return fmt.Errorf("netx: driver failed to stop within %v", n.cfg.DrainTimeout)
		}
	}
	select {
	case <-drained:
		return nil
	case <-t.C:
		return fmt.Errorf("netx: socket goroutines failed to drain within %v", n.cfg.DrainTimeout)
	}
}

package netx

import (
	"soda/internal/bus"
	"soda/internal/frame"
)

// link is one local node's attachment to the socket medium: netx's
// counterpart of bus.Iface. All methods run on the driver goroutine (they
// are called from transport code inside kernel events), so up needs no
// lock; the shared counters go through the network's stats mutex.
type link struct {
	n    *Network
	mid  frame.MID
	recv func(raw []byte)
	up   bool
}

// MID reports the link's machine id.
func (l *link) MID() frame.MID { return l.mid }

// Send transmits one encoded transport frame (wire.Iface). A down link's
// sends vanish, matching the simulated bus's crashed-kernel semantics.
func (l *link) Send(dst frame.MID, raw []byte) {
	if !l.up {
		return
	}
	l.n.send(l, dst, raw)
}

// Down detaches the receiver (crash); Up re-attaches it (reboot).
func (l *link) Down() { l.up = false }
func (l *link) Up()   { l.up = true }

func (l *link) count(f func(s *bus.Stats)) {
	l.n.statsMu.Lock()
	f(&l.n.stats)
	l.n.statsMu.Unlock()
}

// Transport-attributed counters (wire.Iface): same buckets as the
// simulated bus, so Stats reads identically on either backend.
func (l *link) CountRetransmission()      { l.count(func(s *bus.Stats) { s.Retransmissions++ }) }
func (l *link) CountPiggybackedAck()      { l.count(func(s *bus.Stats) { s.PiggybackedAcks++ }) }
func (l *link) CountPeerDeadTimeout()     { l.count(func(s *bus.Stats) { s.PeerDeadTimeouts++ }) }
func (l *link) CountPatternTableFull()    { l.count(func(s *bus.Stats) { s.PatternTableFull++ }) }
func (l *link) CountWindowFill()          { l.count(func(s *bus.Stats) { s.WindowFills++ }) }
func (l *link) CountCumulativeAck()       { l.count(func(s *bus.Stats) { s.CumulativeAcks++ }) }
func (l *link) CountFragmentRetransmit()  { l.count(func(s *bus.Stats) { s.FragmentRetransmits++ }) }
func (l *link) CountSelectiveRetransmit() { l.count(func(s *bus.Stats) { s.SelectiveRetransmits++ }) }
func (l *link) CountSackBlocks(n int)     { l.count(func(s *bus.Stats) { s.SackBlocksSent += uint64(n) }) }
func (l *link) CountWindowIncrease()      { l.count(func(s *bus.Stats) { s.WindowIncreases++ }) }
func (l *link) CountWindowDecrease()      { l.count(func(s *bus.Stats) { s.WindowDecreases++ }) }

package netx

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for transport frames over a byte stream: a 4-byte
// big-endian length prefix followed by exactly that many bytes of one
// encoded transport frame. TCP preserves the frame codec's bytes verbatim;
// the prefix only restores the record boundaries the simulated bus gets
// for free.

const (
	// minFrameLen is the fixed transport header size — nothing shorter can
	// decode, so a shorter prefix is a framing error, not a short frame.
	minFrameLen = 16
	// MaxFrameLen caps a declared frame length. The transport's payloads
	// are bounded well under this; a larger prefix means a corrupt or
	// hostile stream and must not turn into a giant allocation.
	MaxFrameLen = 1 << 20
)

// framingError reports a malformed stream: the reader must drop the
// connection (record boundaries are unrecoverable once the prefix lies).
type framingError struct{ msg string }

func (e *framingError) Error() string { return "netx: bad frame stream: " + e.msg }

// IsFramingError reports whether err marks a malformed frame stream (as
// opposed to plain EOF or a transport error).
func IsFramingError(err error) bool {
	_, ok := err.(*framingError)
	return ok
}

// AppendFrame appends raw's length-prefixed stream encoding to dst.
func AppendFrame(dst, raw []byte) []byte {
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(raw)))
	return append(append(dst, pfx[:]...), raw...)
}

// WriteFrame writes one length-prefixed frame to w in a single Write call
// (one writer per connection keeps frames contiguous on the wire).
func WriteFrame(w io.Writer, raw []byte) error {
	if len(raw) > MaxFrameLen {
		return &framingError{msg: fmt.Sprintf("refusing to send a %d-byte frame (cap %d)", len(raw), MaxFrameLen)}
	}
	buf := AppendFrame(make([]byte, 0, 4+len(raw)), raw)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame from r, rejecting declared
// lengths below the transport header size or above max (MaxFrameLen when
// max <= 0). A truncated prefix at a clean stream boundary returns io.EOF;
// truncation mid-prefix or mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameLen
	}
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < minFrameLen {
		return nil, &framingError{fmt.Sprintf("declared length %d below transport header size %d", n, minFrameLen)}
	}
	if n > uint32(max) {
		return nil, &framingError{fmt.Sprintf("declared length %d exceeds cap %d", n, max)}
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return raw, nil
}

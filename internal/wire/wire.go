// Package wire is the seam between the Delta-t transport and the medium
// that carries its frames. The simulator's broadcast bus (internal/bus)
// and the real-socket backend (internal/netx) both implement it, so the
// same transport — and everything above it — runs unchanged over either.
//
// The seam sits exactly where the thesis puts the communications adaptor's
// wire side: an endpoint attaches at its machine id and receives raw
// encoded transport frames; sending is fire-and-forget (the medium may
// drop, the transport's Delta-t machinery recovers). The Count* methods
// feed the medium's traffic counters so bus.Stats attribution works the
// same on both backends.
package wire

import "soda/internal/frame"

// Iface is one node's attachment to a frame-carrying medium: the handle a
// Delta-t endpoint sends through and flips up/down on crash and reboot.
// *bus.Iface implements it for the simulated bus; netx's link implements
// it for TCP.
type Iface interface {
	// Send transmits an encoded transport frame to dst (frame.BroadcastMID
	// reaches every attached machine). Delivery is unreliable by contract.
	Send(dst frame.MID, raw []byte)
	// Down detaches the receiver from the medium (crash: a dead kernel
	// hears nothing).
	Down()
	// Up re-attaches the receiver after Down.
	Up()

	// Transport-attributed traffic counters (DESIGN.md §5): the transport
	// calls these so per-run stats land in the medium's counter block.
	CountRetransmission()
	CountPiggybackedAck()
	CountPeerDeadTimeout()
	CountPatternTableFull()
	CountWindowFill()
	CountCumulativeAck()
	CountFragmentRetransmit()
	CountSelectiveRetransmit()
	CountSackBlocks(n int)
	CountWindowIncrease()
	CountWindowDecrease()
}

// Network is a frame-carrying medium a transport endpoint can attach to.
type Network interface {
	// Attach registers recv as mid's frame sink and returns the send-side
	// handle. recv is invoked from simulation context with the raw encoded
	// frame; the callee must not retain the slice.
	Attach(mid frame.MID, recv func(raw []byte)) (Iface, error)
}

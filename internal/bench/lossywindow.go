// Lossy-window measurement: virtual time to complete a reliable bulk
// transfer as a function of frame-loss rate, window depth, and recovery
// mode (DESIGN.md §12). Unlike the clean window sweep (window.go), this
// one drives the Delta-t transport directly: the kernel's streaming
// client caps outstanding REQUESTs at three, which never fills a deep
// window, so recovery behavior only shows at the transport layer. Each
// cell sends a fixed batch of multi-fragment messages over a uniformly
// lossy bus and re-submits any message the transport fails (peer-dead
// after a silence window is a legitimate verdict under heavy loss, and a
// bulk-transfer application would retry), so every cell finishes the same
// work and per-op time captures the full cost of recovery. cmd/sodabench
// -table lossywindow prints the sweep and -lossywindow writes it as the
// BENCH_lossywindow.json artifact CI regenerates.
package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"soda/internal/bus"
	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// DefaultLossyBytes is the message size of the standard lossy sweep:
// five DefaultFragSize fragments per message, deep enough that one lost
// fragment strands real pipeline state behind it.
const DefaultLossyBytes = 5000

// DefaultLossyOps is the batch size of the standard lossy sweep.
const DefaultLossyOps = 40

// DefaultLossPcts is the loss axis of the standard sweep, in percent.
var DefaultLossPcts = []int{0, 5, 15, 30}

// DefaultLossyWindows is the window-depth axis of the standard sweep.
var DefaultLossyWindows = []int{1, 4, 8}

// LossyRow is one (loss, window, mode) cell of the lossy sweep.
type LossyRow struct {
	LossPct int `json:"loss_pct"`
	Window  int `json:"window"`
	// Mode is "stopwait" for window 1 (no fragments, no recovery mode),
	// else the deltat.RecoveryMode name.
	Mode    string `json:"mode"`
	PerOpUS int64  `json:"per_op_us"`
	// SlowdownVsClean is this row's per-op time divided by the same
	// window+mode row at 0% loss — the recovery tax.
	SlowdownVsClean float64 `json:"slowdown_vs_clean"`
	// Resubmits counts message-level retries: sends the transport failed
	// (peer presumed dead) that the benchmark re-issued.
	Resubmits            uint64 `json:"resubmits"`
	FragRetransmits      uint64 `json:"frag_retransmits"`
	SelectiveRetransmits uint64 `json:"selective_retransmits"`
	SackBlocksSent       uint64 `json:"sack_blocks_sent"`
	WindowDecreases      uint64 `json:"window_decreases"`
	WindowIncreases      uint64 `json:"window_increases"`
}

// LossySweep is the machine-readable lossy-window record (the
// BENCH_lossywindow.json format). All times are deterministic virtual
// microseconds: the loss schedule is drawn from the seeded simulation
// RNG, so CI regenerates this file and compares exactly.
type LossySweep struct {
	Description string     `json:"description"`
	Command     string     `json:"command"`
	Bytes       int        `json:"bytes"`
	Ops         int        `json:"ops"`
	Seed        int64      `json:"seed"`
	Rows        []LossyRow `json:"rows"`
}

// lossyCell runs one bulk transfer: ops messages of size bytes from MID 1
// to MID 2 over a bus dropping each delivery with probability lossPct/100.
// Failed sends are re-submitted until every message is acknowledged.
func lossyCell(seed int64, bytes, ops, window, lossPct int, mode deltat.RecoveryMode) LossyRow {
	k := sim.New(seed)
	k.SetEventLimit(64_000_000)
	busCfg := bus.DefaultConfig()
	busCfg.LossProb = float64(lossPct) / 100
	b := bus.New(k, busCfg)
	cfg := deltat.DefaultConfig()
	cfg.Window = window
	cfg.Recovery = mode
	hooks := deltat.Hooks{OnData: func(frame.MID, []byte) deltat.Decision {
		return deltat.Decision{Verdict: deltat.VerdictAck}
	}}
	sender, err := deltat.New(k, b.Wire(), 1, cfg, hooks)
	if err != nil {
		panic(err)
	}
	if _, err := deltat.New(k, b.Wire(), 2, cfg, hooks); err != nil {
		panic(err)
	}

	var resubmits uint64
	var doneAt sim.Time
	acked := 0
	for i := 0; i < ops; i++ {
		p := make([]byte, bytes)
		for j := range p {
			p[j] = byte(i + j)
		}
		// Self-re-submitting completion: the Delta-t verdict "peer dead"
		// means a DeadAfter span of pure silence, which uniform 30% loss
		// produces now and then; the bulk-transfer application's answer
		// is to send again on the fresh connection.
		var cb func(deltat.Result)
		cb = func(r deltat.Result) {
			if r.Kind == deltat.ResultAcked {
				acked++
				doneAt = k.Now()
				return
			}
			resubmits++
			sender.Send(2, p, nil, cb)
		}
		sender.Send(2, p, nil, cb)
	}
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("lossywindow cell (loss=%d%% w=%d %v): %v", lossPct, window, mode, err))
	}
	if acked != ops {
		panic(fmt.Sprintf("lossywindow cell (loss=%d%% w=%d %v): acked %d/%d", lossPct, window, mode, acked, ops))
	}
	st := b.Stats()
	modeName := "stopwait"
	if window > 1 {
		modeName = mode.String()
	}
	return LossyRow{
		LossPct:              lossPct,
		Window:               window,
		Mode:                 modeName,
		PerOpUS:              doneAt.Microseconds() / int64(ops),
		Resubmits:            resubmits,
		FragRetransmits:      st.FragmentRetransmits,
		SelectiveRetransmits: st.SelectiveRetransmits,
		SackBlocksSent:       st.SackBlocksSent,
		WindowDecreases:      st.WindowDecreases,
		WindowIncreases:      st.WindowIncreases,
	}
}

// MeasureLossyWindow runs the full loss × window × mode sweep. Window 1
// is measured once per loss rate (recovery mode is meaningless without
// fragments); deeper windows are measured under both selective repeat
// and go-back-N so the artifact pins their divergence.
func MeasureLossyWindow(bytes, ops int, windows, lossPcts []int) LossySweep {
	if bytes <= 0 {
		bytes = DefaultLossyBytes
	}
	if ops <= 0 {
		ops = DefaultLossyOps
	}
	if len(windows) == 0 {
		windows = DefaultLossyWindows
	}
	if len(lossPcts) == 0 {
		lossPcts = DefaultLossPcts
	}
	const seed = 3
	sweep := LossySweep{
		Description: "Virtual time per message of a reliable bulk transfer vs frame-loss rate, window depth, and recovery mode (DESIGN.md §12). Selective repeat (SACK hole repair + AIMD window) must degrade gracefully where go-back-N collapses; at 0% loss the two modes are byte-identical on the wire. Deterministic virtual time: CI regenerates this file and compares exactly.",
		Command:     fmt.Sprintf("go run ./cmd/sodabench -table none -lossywindow BENCH_lossywindow.json -ops %d", ops),
		Bytes:       bytes,
		Ops:         ops,
		Seed:        seed,
	}
	// clean[window+mode] is the 0% baseline for SlowdownVsClean; the loss
	// axis is swept inner so each baseline lands before its lossy rows.
	clean := make(map[string]int64)
	for _, w := range windows {
		modes := []deltat.RecoveryMode{deltat.RecoverySelective}
		if w > 1 {
			modes = []deltat.RecoveryMode{deltat.RecoverySelective, deltat.RecoveryGoBackN}
		}
		for _, mode := range modes {
			for _, loss := range lossPcts {
				row := lossyCell(seed, bytes, ops, w, loss, mode)
				key := fmt.Sprintf("%d/%s", row.Window, row.Mode)
				if loss == 0 {
					clean[key] = row.PerOpUS
				}
				if base := clean[key]; base > 0 {
					row.SlowdownVsClean = float64(row.PerOpUS) / float64(base)
				}
				sweep.Rows = append(sweep.Rows, row)
			}
		}
	}
	return sweep
}

// Write emits the sweep as indented JSON (the BENCH_lossywindow.json
// format).
func (s LossySweep) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadLossySweep parses a BENCH_lossywindow.json artifact.
func ReadLossySweep(r io.Reader) (LossySweep, error) {
	var s LossySweep
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

// Row returns the sweep row for (loss, window, mode), or nil. Mode is
// "stopwait", "selective", or "gobackn".
func (s LossySweep) Row(lossPct, window int, mode string) *LossyRow {
	for i := range s.Rows {
		r := &s.Rows[i]
		if r.LossPct == lossPct && r.Window == window && r.Mode == mode {
			return r
		}
	}
	return nil
}

// Check asserts the robustness claims the artifact exists to pin
// (ISSUE acceptance, DESIGN.md §12): selective repeat at 15% loss stays
// within 2x of its lossless time at every windowed depth, go-back-N at
// 15% collapses by at least 4x at the deepest window, and at window 8
// under 30% loss selective repeat moves the batch at least twice as fast
// as go-back-N. Returns every violated claim.
func (s LossySweep) Check() []error {
	var errs []error
	need := func(lossPct, window int, mode string) *LossyRow {
		r := s.Row(lossPct, window, mode)
		if r == nil {
			errs = append(errs, fmt.Errorf("missing row loss=%d%% window=%d mode=%s", lossPct, window, mode))
		}
		return r
	}
	deepest := 0
	for _, r := range s.Rows {
		if r.Window > deepest {
			deepest = r.Window
		}
	}
	for _, r := range s.Rows {
		if r.Mode == "selective" && r.LossPct == 15 && r.SlowdownVsClean > 2.0 {
			errs = append(errs, fmt.Errorf("selective w=%d at 15%% loss: slowdown %.2fx vs clean, want <= 2x",
				r.Window, r.SlowdownVsClean))
		}
	}
	if r := need(15, deepest, "gobackn"); r != nil && r.SlowdownVsClean < 4.0 {
		errs = append(errs, fmt.Errorf("gobackn w=%d at 15%% loss: slowdown %.2fx vs clean, want >= 4x (the collapse selective repeat exists to avoid)",
			deepest, r.SlowdownVsClean))
	}
	sel, gbn := need(30, deepest, "selective"), need(30, deepest, "gobackn")
	if sel != nil && gbn != nil && sel.PerOpUS > 0 {
		if ratio := float64(gbn.PerOpUS) / float64(sel.PerOpUS); ratio < 2.0 {
			errs = append(errs, fmt.Errorf("w=%d at 30%% loss: gobackn/selective per-op ratio %.2fx, want >= 2x (gbn %d us, selective %d us)",
				deepest, ratio, gbn.PerOpUS, sel.PerOpUS))
		}
	}
	// The downward-search AIMD design keeps a clean wire identical under
	// both modes (DESIGN.md §12); a diverging 0% row means the recovery
	// mode leaked into the no-loss fast path.
	for _, r := range s.Rows {
		if r.Mode == "selective" && r.LossPct == 0 && r.Window > 1 {
			if g := s.Row(0, r.Window, "gobackn"); g != nil && g.PerOpUS != r.PerOpUS {
				errs = append(errs, fmt.Errorf("w=%d at 0%% loss: selective %d us vs gobackn %d us — modes must be wire-identical on a clean bus",
					r.Window, r.PerOpUS, g.PerOpUS))
			}
		}
	}
	return errs
}

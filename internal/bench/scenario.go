package bench

import (
	"fmt"
	"time"

	"soda/internal/bus"
	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// DeltaTScenario is one panel of the "Typical Delta-t Situations" figure
// (p. 106): a scripted protocol situation with the observed event
// narrative and a pass/fail verdict against the protocol's guarantee.
type DeltaTScenario struct {
	Name    string
	Events  []string
	OK      bool
	Elapsed time.Duration
}

// deltaTRig is a two-endpoint harness for scenario scripting.
type deltaTRig struct {
	k        *sim.Kernel
	b        *bus.Bus
	e1, e2   *deltat.Endpoint
	events   []string
	received []string
}

func newDeltaTRig(seed int64, loss float64) *deltaTRig {
	k := sim.New(seed)
	k.SetEventLimit(2_000_000)
	cfg := bus.DefaultConfig()
	cfg.LossProb = loss
	r := &deltaTRig{k: k, b: bus.New(k, cfg)}
	mk := func(mid frame.MID) *deltat.Endpoint {
		ep, err := deltat.New(k, r.b.Wire(), mid, deltat.DefaultConfig(), deltat.Hooks{
			OnData: func(src frame.MID, payload []byte) deltat.Decision {
				r.received = append(r.received, string(payload))
				r.logf("node %d delivered %q from %d", mid, payload, src)
				return deltat.Decision{Verdict: deltat.VerdictAck}
			},
		})
		if err != nil {
			panic(err)
		}
		return ep
	}
	r.e1 = mk(1)
	r.e2 = mk(2)
	return r
}

func (r *deltaTRig) logf(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf("t=%8v  ", r.k.Now())+fmt.Sprintf(format, args...))
}

// RunDeltaTScenarios reproduces the figure's situations as executable
// checks.
func RunDeltaTScenarios() []DeltaTScenario {
	cfg := deltat.DefaultConfig()
	var out []DeltaTScenario

	// Situation 1: a normal exchange opens a connection record implicitly
	// — no handshake, one DATA and one ACK.
	{
		r := newDeltaTRig(1, 0)
		acked := false
		r.e1.Send(2, []byte("m1"), nil, func(res deltat.Result) {
			acked = res.Kind == deltat.ResultAcked
			r.logf("node 1 send result: acked=%v", acked)
		})
		_ = r.k.Run()
		st := r.b.Stats()
		out = append(out, DeltaTScenario{
			Name:    "implicit connection: one DATA, one ACK, no handshake",
			Events:  r.events,
			OK:      acked && len(r.received) == 1 && st.FramesSent == 2,
			Elapsed: r.k.Now(),
		})
	}

	// Situation 2: a lost acknowledgement forces retransmission; the
	// receiver's connection record suppresses the duplicate and replays
	// the cached ACK ("client 2 will insist on correct SN").
	{
		var sc DeltaTScenario
		for seed := int64(1); seed < 200; seed++ {
			r := newDeltaTRig(seed, 0.5)
			acked := false
			r.e1.Send(2, []byte("m1"), nil, func(res deltat.Result) {
				acked = res.Kind == deltat.ResultAcked
				r.logf("node 1 send result: acked=%v", acked)
			})
			_ = r.k.Run()
			st := r.b.Stats()
			if acked && len(r.received) == 1 && st.ByKind[frame.TransportData] >= 2 {
				sc = DeltaTScenario{
					Name:    "lost ACK: retransmission suppressed as duplicate, ACK replayed",
					Events:  r.events,
					OK:      true,
					Elapsed: r.k.Now(),
				}
				break
			}
		}
		if !sc.OK {
			sc = DeltaTScenario{Name: "lost ACK: retransmission suppressed", OK: false}
		}
		out = append(out, sc)
	}

	// Situation 3: after MPL+Δt of silence the receiver's record expires
	// and any sequence number is accepted again ("take any SN timer
	// expires if client 1 has been silent").
	{
		r := newDeltaTRig(1, 0)
		r.e1.Send(2, []byte("m1"), nil, nil)
		gap := cfg.ConnLifetime() + 5*time.Millisecond
		r.k.At(gap, func() {
			r.logf("silence of %v elapsed; record expired", gap)
			r.e1.Send(2, []byte("m2"), nil, nil)
		})
		_ = r.k.Run()
		out = append(out, DeltaTScenario{
			Name:    fmt.Sprintf("take-any: record discarded after MPL+Δt = %v of silence", cfg.ConnLifetime()),
			Events:  r.events,
			OK:      len(r.received) == 2,
			Elapsed: r.k.Now(),
		})
	}

	// Situation 4: a crashed node stays silent for 2·MPL+Δt before
	// rejoining ("OK for client 1 to send after crash").
	{
		r := newDeltaTRig(1, 0)
		crashAt := 30 * time.Millisecond
		var rejoinAt time.Duration
		r.e1.Send(2, []byte("m1"), nil, nil)
		r.k.At(crashAt, func() {
			r.logf("node 1 crashes")
			r.e1.Crash()
			r.e1.Reboot(func() {
				rejoinAt = r.k.Now()
				r.logf("node 1 rejoins after quiet period")
				r.e1.Send(2, []byte("m2"), nil, nil)
			})
		})
		_ = r.k.Run()
		quietOK := rejoinAt >= crashAt+cfg.QuietPeriod()
		out = append(out, DeltaTScenario{
			Name:    fmt.Sprintf("crash recovery: quiet for 2·MPL+Δt = %v before rejoining", cfg.QuietPeriod()),
			Events:  r.events,
			OK:      quietOK && len(r.received) == 2,
			Elapsed: r.k.Now(),
		})
	}

	// Situation 5: a silent peer is reported dead after MPL+Δt of
	// unanswered retransmission.
	{
		r := newDeltaTRig(1, 0)
		r.k.At(0, func() { r.e2.Crash() })
		var deadAt time.Duration
		dead := false
		r.e1.Send(2, []byte("m1"), nil, func(res deltat.Result) {
			dead = res.Kind == deltat.ResultPeerDead
			deadAt = r.k.Now()
			r.logf("node 1: destination reported dead")
		})
		_ = r.k.Run()
		out = append(out, DeltaTScenario{
			Name:    fmt.Sprintf("death detection: silence for MPL+Δt = %v reports the peer dead", cfg.DeadAfter()),
			Events:  r.events,
			OK:      dead && deadAt >= cfg.DeadAfter(),
			Elapsed: r.k.Now(),
		})
	}
	return out
}

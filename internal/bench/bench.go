// Package bench is the measurement harness for the thesis's evaluation
// (chapter 5): it reproduces the "SODA Performance" table, the "Breakdown
// of Communications Overhead" table, the *MOD comparison of §5.5, the
// Delta-t scenario figure, and the per-operation packet counts. Both the
// root bench_test.go benchmarks and cmd/sodabench drive it.
//
// All times are VIRTUAL: the simulation's calibrated cost model stands in
// for the thesis's PDP-11/Megalink hardware (see DESIGN.md). The claim
// reproduced is the shape of the results, not the absolute numbers.
package bench

import (
	"fmt"
	"time"

	"soda"
	"soda/internal/modport"
	"soda/obs"
)

// Op selects the REQUEST variant measured (§3.3.2).
type Op int

const (
	OpSignal Op = iota + 1
	OpPut
	OpGet
	OpExchange
)

func (o Op) String() string {
	switch o {
	case OpSignal:
		return "SIGNAL"
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpExchange:
		return "EXCHANGE"
	default:
		return "OP(?)"
	}
}

// WordSize is the client word in bytes (the thesis's PDP-11 word).
const WordSize = 2

var benchPattern = soda.WellKnownPattern(0o7700)

// Result is one measurement cell.
type Result struct {
	PerOp       time.Duration
	FramesPerOp float64
	Ops         int
	// Windowed-transport counters for the whole run (including warmup);
	// zero on the stop-and-wait path.
	WindowFills     uint64
	CumulativeAcks  uint64
	FragRetransmits uint64
}

// Config selects the measurement variant.
type Config struct {
	Op    Op
	Words int
	// Pipelined selects the input-buffer kernel variant (§5.2.3).
	Pipelined bool
	// Blocking issues B_* requests instead of streaming MAXREQUESTS=3
	// non-blocking requests (§5.5).
	Blocking bool
	// Queued makes the server accept from a task-side queue instead of
	// immediately in the handler (the port-style 10.0 ms case of §5.5).
	Queued bool
	// Window sets the transport's sliding-window depth in messages
	// (deltat.Config.Window, DESIGN.md §11); <= 1 measures the
	// paper-faithful stop-and-wait path.
	Window int
	// Ops is the measured operation count (after warmup); default 50.
	Ops int
}

// server builds the measurement server: immediate handler accepts, or the
// queued task-side variant.
func server(cfg Config) soda.Program {
	reply := make([]byte, cfg.Words*WordSize)
	needsReply := cfg.Op == OpGet || cfg.Op == OpExchange
	accept := func(c *soda.Client, ev soda.Event) {
		if needsReply {
			c.AcceptExchange(ev.Asker, soda.OK, reply, ev.PutSize)
		} else {
			c.AcceptPut(ev.Asker, soda.OK, ev.PutSize)
		}
	}
	if !cfg.Queued {
		return soda.Program{
			Init: func(c *soda.Client, _ soda.MID) {
				if err := c.Advertise(benchPattern); err != nil {
					panic(err)
				}
			},
			Handler: func(c *soda.Client, ev soda.Event) {
				if ev.Kind == soda.EventRequestArrival {
					accept(c, ev)
				}
			},
		}
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			q := []soda.Event{}
			c.SetStash(&q)
			if err := c.Advertise(benchPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival {
				q := c.Stash().(*[]soda.Event)
				*q = append(*q, ev)
			}
		},
		Task: func(c *soda.Client) {
			q := c.Stash().(*[]soda.Event)
			for {
				c.WaitUntil(func() bool { return len(*q) > 0 })
				ev := (*q)[0]
				*q = (*q)[1:]
				// SODAL queueing overhead: EnQueue/DeQueue plus the
				// handler→task switch (0.7 ms in §5.5).
				c.Hold(700 * time.Microsecond)
				accept(c, ev)
			}
		},
	}
}

// MeasureOp runs one steady-state measurement cell.
func MeasureOp(cfg Config) Result {
	if cfg.Ops <= 0 {
		cfg.Ops = 50
	}
	const warmup = 5
	total := cfg.Ops + warmup

	nodeCfg := soda.DefaultNodeConfig()
	nodeCfg.Pipelined = cfg.Pipelined
	nodeCfg.Transport.Window = cfg.Window
	nw := soda.NewNetwork(soda.WithNodeConfig(nodeCfg))
	nw.Register("server", server(cfg))

	putData := make([]byte, 0)
	getSize := 0
	switch cfg.Op {
	case OpPut:
		putData = make([]byte, cfg.Words*WordSize)
	case OpGet:
		getSize = cfg.Words * WordSize
	case OpExchange:
		putData = make([]byte, cfg.Words*WordSize)
		getSize = cfg.Words * WordSize
	}

	var (
		startAt     time.Duration
		finishAt    time.Duration
		startFrames uint64
		endFrames   uint64
	)
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			dst := soda.ServerSig{MID: 1, Pattern: benchPattern}
			if cfg.Blocking {
				for i := 0; i < total; i++ {
					if i == warmup {
						startAt = c.Now()
						startFrames = nw.Stats().FramesSent
					}
					res := c.BExchange(dst, soda.OK, putData, getSize)
					if res.Status != soda.StatusSuccess {
						panic(fmt.Sprintf("bench: op %d failed: %v", i, res.Status))
					}
				}
				finishAt = c.Now()
				endFrames = nw.Stats().FramesSent
				return
			}
			// Non-blocking stream with MAXREQUESTS outstanding (§5.5).
			sent, completed := 0, 0
			for completed < total {
				for sent < total {
					tid, err := c.Request(dst, soda.OK, putData, getSize)
					if err != nil {
						break // MAXREQUESTS reached
					}
					sent++
					c.OnCompletion(tid, func(ev soda.Event) {
						if ev.Status != soda.StatusSuccess {
							panic(fmt.Sprintf("bench: completion %v", ev.Status))
						}
						completed++
						if completed == warmup {
							startAt = c.Now()
							startFrames = nw.Stats().FramesSent
						}
						if completed == total {
							finishAt = c.Now()
							endFrames = nw.Stats().FramesSent
						}
					})
				}
				progress := completed
				c.WaitUntil(func() bool { return completed > progress || completed >= total })
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(10 * time.Minute); err != nil {
		panic(err)
	}
	if finishAt == 0 {
		panic(fmt.Sprintf("bench: %v words=%d never finished", cfg.Op, cfg.Words))
	}
	n := total - warmup
	st := nw.Stats()
	return Result{
		PerOp:           (finishAt - startAt) / time.Duration(n),
		FramesPerOp:     float64(endFrames-startFrames) / float64(n),
		Ops:             n,
		WindowFills:     st.WindowFills,
		CumulativeAcks:  st.CumulativeAcks,
		FragRetransmits: st.FragmentRetransmits,
	}
}

// Breakdown is one row set of the "Breakdown of Communications Overhead"
// table (§5.5): per-operation virtual time by component.
type Breakdown struct {
	ConnTimers     time.Duration
	RetransTimers  time.Duration
	CtxSwitch      time.Duration
	Transmission   time.Duration
	ClientOverhead time.Duration
	Protocol       time.Duration
	Copies         time.Duration
	Total          time.Duration
	FramesPerOp    float64
}

// MeasureBreakdown reproduces the SIGNAL cost breakdown: a stream of
// blocking signals with immediate handler accepts, with every cost bucket
// accumulated across both nodes and divided by the operation count.
func MeasureBreakdown(ops int) Breakdown {
	bd, _ := measureBreakdown(ops, nil)
	return bd
}

// Table61Profile runs the Table 6.1 SIGNAL breakdown scenario with a
// metrics registry attached and returns the exportable run profile:
// per-operation cost attribution in the paper's categories, per-primitive
// latency digests, per-node counters, and the bus counters for the
// measurement window (the warmup operations are excluded from the breakdown
// and bus figures; the latency histograms cover the whole run).
func Table61Profile(ops int) *obs.Profile {
	if ops <= 0 {
		ops = 50
	}
	reg := obs.NewRegistry()
	bd, nw := measureBreakdown(ops, reg)
	p := nw.Profile("table61-signal")
	p.Ops = ops
	us := func(d time.Duration) int64 { return int64(d / time.Microsecond) }
	p.Breakdown = &obs.CostBreakdown{
		ConnTimersUS:     us(bd.ConnTimers),
		RetransTimersUS:  us(bd.RetransTimers),
		CtxSwitchUS:      us(bd.CtxSwitch),
		TransmissionUS:   us(bd.Transmission),
		ClientOverheadUS: us(bd.ClientOverhead),
		ProtocolUS:       us(bd.Protocol),
		CopiesUS:         us(bd.Copies),
		TotalUS:          us(bd.Total),
		FramesPerOp:      bd.FramesPerOp,
	}
	return p
}

func measureBreakdown(ops int, reg *obs.Registry) (Breakdown, *soda.Network) {
	if ops <= 0 {
		ops = 50
	}
	const warmup = 5
	total := ops + warmup

	var netOpts []soda.Option
	if reg != nil {
		netOpts = append(netOpts, soda.WithMetrics(reg))
	}
	nw := soda.NewNetwork(netOpts...)
	nw.Register("server", server(Config{Op: OpSignal}))
	var (
		startAt  time.Duration
		finishAt time.Duration
	)
	var bd Breakdown
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			dst := soda.ServerSig{MID: 1, Pattern: benchPattern}
			for i := 0; i < total; i++ {
				if i == warmup {
					startAt = c.Now()
					nw.ResetStats()
					nw.Node(1).ResetTotals()
					nw.Node(2).ResetTotals()
				}
				if res := c.BSignal(dst, soda.OK); res.Status != soda.StatusSuccess {
					panic(fmt.Sprintf("bench: signal failed: %v", res.Status))
				}
			}
			finishAt = c.Now()
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(10 * time.Minute); err != nil {
		panic(err)
	}
	n := time.Duration(ops)
	st := nw.Stats()
	for _, mid := range []soda.MID{1, 2} {
		tt := nw.Node(mid).TransportTotals()
		ct := nw.Node(mid).Totals()
		bd.ConnTimers += tt.ConnTimer / n
		bd.RetransTimers += tt.RetransTimer / n
		bd.Protocol += tt.Protocol / n
		bd.Copies += tt.Copy / n
		bd.CtxSwitch += ct.CtxSwitch / n
		bd.ClientOverhead += ct.ClientOverhead / n
	}
	// Transmission time from line rate and bytes on the wire.
	bd.Transmission = time.Duration(int64(st.BytesSent) * 8 * int64(time.Second) / 1_000_000 / int64(ops))
	bd.FramesPerOp = float64(st.FramesSent) / float64(ops)
	bd.Total = (finishAt - startAt) / n
	return bd, nw
}

// ModRow is one row of the §5.5 SODA-vs-*MOD comparison.
type ModRow struct {
	Name  string
	PerOp time.Duration
}

// MeasureModComparison reproduces §5.5's six numbers.
func MeasureModComparison(ops int) []ModRow {
	rows := []ModRow{
		{Name: "SODA B_SIGNAL (handler accept)"},
		{Name: "SODA B_SIGNAL (task-queued accept)"},
		{Name: "SODA SIGNAL stream (handler accept)"},
		{Name: "SODA SIGNAL stream (task-queued accept)"},
		{Name: "*MOD synchronous port call"},
		{Name: "*MOD asynchronous port call"},
	}
	rows[0].PerOp = MeasureOp(Config{Op: OpSignal, Blocking: true, Ops: ops}).PerOp
	rows[1].PerOp = MeasureOp(Config{Op: OpSignal, Blocking: true, Queued: true, Ops: ops}).PerOp
	rows[2].PerOp = MeasureOp(Config{Op: OpSignal, Ops: ops}).PerOp
	rows[3].PerOp = MeasureOp(Config{Op: OpSignal, Queued: true, Ops: ops}).PerOp
	rows[4].PerOp = measureMod(true, ops)
	rows[5].PerOp = measureMod(false, ops)
	return rows
}

var modPort = soda.WellKnownPattern(0o7701)

func measureMod(sync bool, ops int) time.Duration {
	if ops <= 0 {
		ops = 50
	}
	const warmup = 5
	total := ops + warmup
	nw := soda.NewNetwork()
	nw.Register("server", modport.Server(modPort, 8, func(*soda.Client, soda.MID, []byte) []byte {
		return nil
	}))
	var perOp time.Duration
	nw.Register("caller", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := modport.InitCaller(c); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) { modport.HandleEvent(c, ev) },
		Task: func(c *soda.Client) {
			dst := soda.ServerSig{MID: 1, Pattern: modPort}
			var startAt time.Duration
			for i := 0; i < total; i++ {
				if i == warmup {
					startAt = c.Now()
				}
				if sync {
					if _, st := modport.SyncCall(c, dst, []byte{1}); st != soda.StatusSuccess {
						panic(st)
					}
				} else {
					if st := modport.AsyncCall(c, dst, []byte{1}); st != soda.StatusSuccess {
						panic(st)
					}
				}
			}
			perOp = (c.Now() - startAt) / time.Duration(ops)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "caller")
	if err := nw.Run(10 * time.Minute); err != nil {
		panic(err)
	}
	return perOp
}

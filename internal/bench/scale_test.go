package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestMeasureScaleRowSmall runs the smallest row end to end: both halves
// must complete every phase and discover every server, deterministically.
func TestMeasureScaleRowSmall(t *testing.T) {
	row := MeasureScaleRow(8)
	if row.Segments != 2 || row.Servers != 7 {
		t.Fatalf("row shape = %+v, want 2 segments and 7 servers", row)
	}
	for _, cell := range []struct {
		name string
		c    ScaleCell
	}{{"flat", row.Flat}, {"segmented", row.Seg}} {
		if cell.c.BootUS <= 0 || cell.c.RTTUS <= 0 || cell.c.DiscoverUS <= 0 {
			t.Errorf("%s: incomplete phases: %+v", cell.name, cell.c)
		}
		if cell.c.Discovered != 7 {
			t.Errorf("%s: discovered %d/7 servers", cell.name, cell.c.Discovered)
		}
	}
	if row.Seg.ProxyReplies == 0 {
		t.Error("segmented half never engaged the DISCOVER proxy")
	}
	again := MeasureScaleRow(8)
	if again != row {
		t.Fatalf("scale row not deterministic:\n%+v\n%+v", row, again)
	}
}

// TestMeasureScaleParSmall runs the parallel-identity cell at the smallest
// node count: the parallel half must reproduce the sequential trace hash
// byte for byte (the CI gate), deterministically across re-measurement.
func TestMeasureScaleParSmall(t *testing.T) {
	p := MeasureScalePar(8, 2)
	if !p.Identical {
		t.Fatalf("parallel run diverged from the sequential trace: %+v", p)
	}
	if p.Workers != 2 || p.TraceHash == "" || p.TraceHash == "0000000000000000" {
		t.Fatalf("degenerate parallel cell: %+v", p)
	}
	again := MeasureScalePar(8, 2)
	if again.TraceHash != p.TraceHash || !again.Identical {
		t.Fatalf("parallel cell not deterministic:\n%+v\n%+v", p, again)
	}
}

// TestScaleCurveRoundTrip measures a one-row curve with the parallel cell,
// round-trips it through the artifact encoding, and checks both renderings:
// the JSON must survive exactly and the human table must include the
// parallel-identity section (and omit it on curves measured without it).
func TestScaleCurveRoundTrip(t *testing.T) {
	c := MeasureScaleCurvePar([]int{8}, 2)
	if len(c.Rows) != 1 || c.Rows[0].Par == nil {
		t.Fatalf("curve shape: %+v", c)
	}
	if !c.Rows[0].Par.Identical {
		t.Fatalf("parallel cell diverged: %+v", c.Rows[0].Par)
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleCurve(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatalf("artifact round trip changed the curve:\n%+v\n%+v", back, c)
	}
	var tbl strings.Builder
	PrintScaleCurve(&tbl, c)
	if !strings.Contains(tbl.String(), "Parallel intra-run identity") ||
		!strings.Contains(tbl.String(), c.Rows[0].Par.TraceHash) {
		t.Fatalf("table missing the parallel section:\n%s", tbl.String())
	}
	plain := MeasureScaleCurve([]int{8})
	if plain.Rows[0].Par != nil {
		t.Fatal("curve measured without -parworkers grew a parallel cell")
	}
	var plainTbl strings.Builder
	PrintScaleCurve(&plainTbl, plain)
	if strings.Contains(plainTbl.String(), "Parallel intra-run identity") {
		t.Fatal("plain table shows a parallel section with nothing to report")
	}
}

// TestCheckScaleCurve pins each gate of the acceptance check on synthetic
// curves.
func TestCheckScaleCurve(t *testing.T) {
	good := func() ScaleCurve {
		return ScaleCurve{Rows: []ScaleRow{
			{Nodes: 512, Servers: 32,
				Flat: ScaleCell{BootUS: 41500, Discovered: 3, RTTUS: 7900},
				Seg:  ScaleCell{BootUS: 41500, Discovered: 17, RTTUS: 8700}},
			{Nodes: 10000, Servers: 32,
				Flat: ScaleCell{BootUS: 41500, Discovered: 1, RTTUS: 7900},
				Seg:  ScaleCell{BootUS: 41500, Discovered: 32, RTTUS: 9500}},
		}}
	}
	if err := CheckScaleCurve(good()); err != nil {
		t.Fatalf("healthy curve rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ScaleCurve)
		want   string
	}{
		{"empty", func(c *ScaleCurve) { c.Rows = nil }, "no rows"},
		{"boot dnf", func(c *ScaleCurve) { c.Rows[1].Seg.BootUS = -1 }, "boot"},
		{"rtt dnf", func(c *ScaleCurve) { c.Rows[1].Seg.RTTUS = -1 }, "RTT"},
		{"rtt ratio", func(c *ScaleCurve) { c.Rows[1].Seg.RTTUS = 7900 * 6 }, "ceiling"},
		{"cache loses", func(c *ScaleCurve) { c.Rows[1].Seg.Discovered = 1 }, "cache"},
		{"no 10k row", func(c *ScaleCurve) { c.Rows = c.Rows[:1] }, "10000"},
		{"par diverged", func(c *ScaleCurve) {
			c.Rows[1].Par = &ScalePar{Workers: 8, TraceHash: "deadbeef", Identical: false}
		}, "diverged"},
	}
	for _, tc := range cases {
		c := good()
		tc.mutate(&c)
		err := CheckScaleCurve(c)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

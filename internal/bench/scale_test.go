package bench

import (
	"strings"
	"testing"
)

// TestMeasureScaleRowSmall runs the smallest row end to end: both halves
// must complete every phase and discover every server, deterministically.
func TestMeasureScaleRowSmall(t *testing.T) {
	row := MeasureScaleRow(8)
	if row.Segments != 2 || row.Servers != 7 {
		t.Fatalf("row shape = %+v, want 2 segments and 7 servers", row)
	}
	for _, cell := range []struct {
		name string
		c    ScaleCell
	}{{"flat", row.Flat}, {"segmented", row.Seg}} {
		if cell.c.BootUS <= 0 || cell.c.RTTUS <= 0 || cell.c.DiscoverUS <= 0 {
			t.Errorf("%s: incomplete phases: %+v", cell.name, cell.c)
		}
		if cell.c.Discovered != 7 {
			t.Errorf("%s: discovered %d/7 servers", cell.name, cell.c.Discovered)
		}
	}
	if row.Seg.ProxyReplies == 0 {
		t.Error("segmented half never engaged the DISCOVER proxy")
	}
	again := MeasureScaleRow(8)
	if again != row {
		t.Fatalf("scale row not deterministic:\n%+v\n%+v", row, again)
	}
}

// TestCheckScaleCurve pins each gate of the acceptance check on synthetic
// curves.
func TestCheckScaleCurve(t *testing.T) {
	good := func() ScaleCurve {
		return ScaleCurve{Rows: []ScaleRow{
			{Nodes: 512, Servers: 32,
				Flat: ScaleCell{BootUS: 41500, Discovered: 3, RTTUS: 7900},
				Seg:  ScaleCell{BootUS: 41500, Discovered: 17, RTTUS: 8700}},
			{Nodes: 10000, Servers: 32,
				Flat: ScaleCell{BootUS: 41500, Discovered: 1, RTTUS: 7900},
				Seg:  ScaleCell{BootUS: 41500, Discovered: 32, RTTUS: 9500}},
		}}
	}
	if err := CheckScaleCurve(good()); err != nil {
		t.Fatalf("healthy curve rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ScaleCurve)
		want   string
	}{
		{"empty", func(c *ScaleCurve) { c.Rows = nil }, "no rows"},
		{"boot dnf", func(c *ScaleCurve) { c.Rows[1].Seg.BootUS = -1 }, "boot"},
		{"rtt dnf", func(c *ScaleCurve) { c.Rows[1].Seg.RTTUS = -1 }, "RTT"},
		{"rtt ratio", func(c *ScaleCurve) { c.Rows[1].Seg.RTTUS = 7900 * 6 }, "ceiling"},
		{"cache loses", func(c *ScaleCurve) { c.Rows[1].Seg.Discovered = 1 }, "cache"},
		{"no 10k row", func(c *ScaleCurve) { c.Rows = c.Rows[:1] }, "10000"},
	}
	for _, tc := range cases {
		c := good()
		tc.mutate(&c)
		err := CheckScaleCurve(c)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

package bench

import (
	"bytes"
	"testing"
	"time"

	"soda/obs"
)

// TestPerformanceShapes pins the evaluation's reproduced claims (see
// EXPERIMENTS.md): packet counts, linearity, the GET 0→1 word jump, the
// pipelined-receive ≈ send equivalence, and the exchange kernel gap.
func TestPerformanceShapes(t *testing.T) {
	cell := func(op Op, words int, pipelined bool) Result {
		return MeasureOp(Config{Op: op, Words: words, Pipelined: pipelined, Ops: 20})
	}

	t.Run("PUT is two packets at every size", func(t *testing.T) {
		for _, w := range []int{0, 1, 100, 1000} {
			if r := cell(OpPut, w, false); r.FramesPerOp != 2 {
				t.Errorf("PUT %d words: %.1f pkt/op, want 2", w, r.FramesPerOp)
			}
		}
	})

	t.Run("PUT grows linearly", func(t *testing.T) {
		r0 := cell(OpPut, 0, false)
		r500 := cell(OpPut, 500, false)
		r1000 := cell(OpPut, 1000, false)
		slope1 := r500.PerOp - r0.PerOp
		slope2 := r1000.PerOp - r500.PerOp
		if ratio := float64(slope2) / float64(slope1); ratio < 0.9 || ratio > 1.1 {
			t.Errorf("PUT slope not linear: %v then %v", slope1, slope2)
		}
	})

	t.Run("GET jumps from 2 to 4 packets at one word (non-pipelined)", func(t *testing.T) {
		if r := cell(OpGet, 0, false); r.FramesPerOp != 2 {
			t.Errorf("0-word GET: %.1f pkt/op, want 2", r.FramesPerOp)
		}
		if r := cell(OpGet, 1, false); r.FramesPerOp != 4 {
			t.Errorf("1-word GET: %.1f pkt/op, want 4", r.FramesPerOp)
		}
	})

	t.Run("pipelined GET costs what PUT costs (contribution 3)", func(t *testing.T) {
		for _, w := range []int{1, 100, 1000} {
			get := cell(OpGet, w, true)
			put := cell(OpPut, w, true)
			diff := float64(get.PerOp-put.PerOp) / float64(put.PerOp)
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.05 {
				t.Errorf("%d words: pipelined GET %v vs PUT %v (%.1f%% apart)", w, get.PerOp, put.PerOp, diff*100)
			}
			// The 2-packet flow holds while the ack-delay window spans
			// the inter-request gap; at very large sizes the wire time
			// exceeds it and a plain ACK slips in (timing unaffected).
			if w <= 100 && get.FramesPerOp > 2.5 {
				t.Errorf("%d words: pipelined GET %.1f pkt/op, want ~2", w, get.FramesPerOp)
			}
		}
	})

	t.Run("non-pipelined EXCHANGE pays the busy flow at small sizes", func(t *testing.T) {
		np := cell(OpExchange, 50, false)
		p := cell(OpExchange, 50, true)
		if np.FramesPerOp < 5 {
			t.Errorf("non-pipelined EXCHANGE: %.1f pkt/op, want ≥5 (§5.2.3's six-message flow)", np.FramesPerOp)
		}
		if p.FramesPerOp > 2.5 {
			t.Errorf("pipelined EXCHANGE: %.1f pkt/op, want ~2", p.FramesPerOp)
		}
		if np.PerOp < p.PerOp*3/2 {
			t.Errorf("non-pipelined %v vs pipelined %v: kernel gap lost", np.PerOp, p.PerOp)
		}
	})
}

// TestBreakdownMatchesCalibration checks the overhead table sums and that
// the components account for the measured total.
func TestBreakdownMatchesCalibration(t *testing.T) {
	bd := MeasureBreakdown(50)
	if bd.FramesPerOp != 2 {
		t.Fatalf("SIGNAL frames/op = %.1f, want 2", bd.FramesPerOp)
	}
	check := func(name string, got, want time.Duration) {
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("connection timers", bd.ConnTimers, time.Millisecond)
	check("retransmit timers", bd.RetransTimers, 700*time.Microsecond)
	check("context switch", bd.CtxSwitch, 800*time.Microsecond)
	check("client overhead", bd.ClientOverhead, 2200*time.Microsecond)
	check("protocol", bd.Protocol, 2*time.Millisecond)
	sum := bd.ConnTimers + bd.RetransTimers + bd.CtxSwitch + bd.Transmission +
		bd.ClientOverhead + bd.Protocol + bd.Copies
	// The components run on the critical path; the measured total must be
	// within 10% of their sum (scheduling slack accounts for the rest).
	lo, hi := sum*9/10, sum*11/10
	if bd.Total < lo || bd.Total > hi {
		t.Errorf("total %v vs component sum %v", bd.Total, sum)
	}
}

// TestTable61Profile: the exportable profile agrees with the breakdown
// measurement, carries the per-primitive digests, and is byte-deterministic.
func TestTable61Profile(t *testing.T) {
	const ops = 20
	p := Table61Profile(ops)
	bd := MeasureBreakdown(ops)
	us := func(d time.Duration) int64 { return int64(d / time.Microsecond) }
	if p.Breakdown == nil {
		t.Fatal("profile has no breakdown")
	}
	if p.Breakdown.TotalUS != us(bd.Total) || p.Breakdown.ProtocolUS != us(bd.Protocol) ||
		p.Breakdown.FramesPerOp != bd.FramesPerOp {
		t.Errorf("profile breakdown %+v disagrees with MeasureBreakdown %+v", p.Breakdown, bd)
	}
	if p.Scenario != "table61-signal" || p.Ops != ops {
		t.Errorf("profile header: %q ops=%d", p.Scenario, p.Ops)
	}
	// The scenario issues warmup+ops signals; every one is a REQUEST.
	if got := p.Primitives[obs.PrimRequest].Count; got != ops+5 {
		t.Errorf("REQUEST count %d, want %d (ops+warmup)", got, ops+5)
	}
	if p.Bus == nil || p.Bus.FramesSent == 0 {
		t.Error("profile missing bus counters")
	}
	// Attaching the registry must not move the measurement.
	if bare, _ := measureBreakdown(ops, nil); bare.Total != bd.Total {
		t.Errorf("metrics attachment changed the run: %v vs %v", bare.Total, bd.Total)
	}
	var b1, b2 bytes.Buffer
	if err := p.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := Table61Profile(ops).Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("profile export not byte-deterministic")
	}
}

// TestModComparisonShape pins §5.5's relationship: the layered baseline
// costs roughly double the integrated kernel, and queueing adds a constant.
func TestModComparisonShape(t *testing.T) {
	rows := MeasureModComparison(30)
	get := func(name string) time.Duration {
		for _, r := range rows {
			if r.Name == name {
				return r.PerOp
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	bsig := get("SODA B_SIGNAL (handler accept)")
	bsigQ := get("SODA B_SIGNAL (task-queued accept)")
	sync := get("*MOD synchronous port call")
	stream := get("SODA SIGNAL stream (handler accept)")
	streamQ := get("SODA SIGNAL stream (task-queued accept)")
	async := get("*MOD asynchronous port call")

	if ratio := float64(sync) / float64(bsigQ); ratio < 1.8 || ratio > 3.5 {
		t.Errorf("*MOD sync / SODA queued B_SIGNAL = %.2f, want ≈2 (paper 2.07)", ratio)
	}
	if ratio := float64(async) / float64(streamQ); ratio < 1.4 || ratio > 2.6 {
		t.Errorf("*MOD async / SODA queued stream = %.2f, want ≈1.9", ratio)
	}
	if bsigQ <= bsig {
		t.Errorf("queued B_SIGNAL %v must exceed handler-accept %v", bsigQ, bsig)
	}
	if streamQ <= stream {
		t.Errorf("queued stream %v must exceed handler-accept stream %v", streamQ, stream)
	}
}

// TestDeltaTScenariosAllHold runs the figure's situations.
func TestDeltaTScenariosAllHold(t *testing.T) {
	for _, sc := range RunDeltaTScenarios() {
		if !sc.OK {
			t.Errorf("scenario failed: %s\n%v", sc.Name, sc.Events)
		}
	}
}

// TestMeasurementsDeterministic: the whole evaluation is replayable.
func TestMeasurementsDeterministic(t *testing.T) {
	a := MeasureOp(Config{Op: OpExchange, Words: 100, Ops: 20})
	b := MeasureOp(Config{Op: OpExchange, Words: 100, Ops: 20})
	if a != b {
		t.Fatalf("measurement not reproducible: %+v vs %+v", a, b)
	}
}

// TestRMRAblation: the kernel-level RMR of §6.17.2 must beat the library
// implementation (which pays handler context switches and client overhead
// at the server).
func TestRMRAblation(t *testing.T) {
	ab := MeasureRMRAblation(20, 16)
	if ab.KernelPeek >= ab.LibraryPeek {
		t.Fatalf("kernel peek %v not faster than library peek %v", ab.KernelPeek, ab.LibraryPeek)
	}
}

// TestPiggybackAblation: disabling piggybacking must cost extra frames and
// time (§5.6: "careful attention to piggybacking led to significant
// performance improvements").
func TestPiggybackAblation(t *testing.T) {
	ab := MeasurePiggybackAblation(20)
	if ab.WithoutPiggyback.FramesPerOp <= ab.WithPiggyback.FramesPerOp {
		t.Fatalf("frames: without %.1f vs with %.1f", ab.WithoutPiggyback.FramesPerOp, ab.WithPiggyback.FramesPerOp)
	}
	if ab.WithoutPiggyback.PerOp <= ab.WithPiggyback.PerOp {
		t.Fatalf("time: without %v vs with %v", ab.WithoutPiggyback.PerOp, ab.WithPiggyback.PerOp)
	}
}

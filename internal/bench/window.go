// Window-sweep measurement: per-operation virtual time of a bulk PUT
// stream as a function of the transport's sliding-window depth
// (deltat.Config.Window, DESIGN.md §11). Window=1 is the paper-faithful
// stop-and-wait baseline; larger windows pipeline fragments and amortize
// the per-message round trip. cmd/sodabench -table window prints the sweep
// and -window writes it as the BENCH_window.json artifact CI regenerates.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// DefaultWindowWords is the message size of the standard window sweep:
// the performance table's largest cell (1000 PDP-11 words).
const DefaultWindowWords = 1000

// DefaultWindows is the window-depth axis of the standard sweep.
var DefaultWindows = []int{1, 2, 4, 8}

// WindowRow is one cell of the window sweep.
type WindowRow struct {
	Window      int     `json:"window"`
	PerOpUS     int64   `json:"per_op_us"`
	FramesPerOp float64 `json:"frames_per_op"`
	// SpeedupVsW1 is the window=1 per-op time divided by this row's.
	SpeedupVsW1     float64 `json:"speedup_vs_w1"`
	WindowFills     uint64  `json:"window_fills"`
	CumulativeAcks  uint64  `json:"cumulative_acks"`
	FragRetransmits uint64  `json:"frag_retransmits"`
}

// WindowSweep is the machine-readable window-sweep record (the
// BENCH_window.json format). All times are deterministic virtual
// microseconds, so the artifact diffs cleanly across code changes and CI
// can compare regenerated numbers exactly.
type WindowSweep struct {
	Description string      `json:"description"`
	Command     string      `json:"command"`
	Op          string      `json:"op"`
	Words       int         `json:"words"`
	Pipelined   bool        `json:"pipelined"`
	Ops         int         `json:"ops"`
	Rows        []WindowRow `json:"rows"`
}

// MeasureWindowSweep runs the streaming pipelined PUT measurement at each
// window depth. The first row is forced to window<=1 so every row's
// speedup is relative to the stop-and-wait baseline.
func MeasureWindowSweep(words int, windows []int, ops int) WindowSweep {
	if words <= 0 {
		words = DefaultWindowWords
	}
	if len(windows) == 0 {
		windows = DefaultWindows
	}
	sweep := WindowSweep{
		Description: "Per-operation virtual time of a streaming pipelined PUT vs the Delta-t transport's sliding-window depth (DESIGN.md §11). window=1 is the paper-faithful stop-and-wait transport — bit-identical to the pre-window code — and must never regress; larger windows fragment and pipeline the message stream. Deterministic virtual time: CI regenerates this file and compares exactly.",
		Command:     fmt.Sprintf("go run ./cmd/sodabench -table window -ops %d", ops),
		Op:          OpPut.String(),
		Words:       words,
		Pipelined:   true,
		Ops:         ops,
	}
	var basePerOp time.Duration
	for i, w := range windows {
		r := MeasureOp(Config{Op: OpPut, Words: words, Pipelined: true, Window: w, Ops: ops})
		if i == 0 {
			basePerOp = r.PerOp
		}
		row := WindowRow{
			Window:          w,
			PerOpUS:         int64(r.PerOp / time.Microsecond),
			FramesPerOp:     r.FramesPerOp,
			WindowFills:     r.WindowFills,
			CumulativeAcks:  r.CumulativeAcks,
			FragRetransmits: r.FragRetransmits,
		}
		if r.PerOp > 0 {
			row.SpeedupVsW1 = float64(basePerOp) / float64(r.PerOp)
		}
		sweep.Rows = append(sweep.Rows, row)
	}
	return sweep
}

// Write emits the sweep as indented JSON (the BENCH_window.json format).
func (s WindowSweep) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadWindowSweep parses a BENCH_window.json artifact.
func ReadWindowSweep(r io.Reader) (WindowSweep, error) {
	var s WindowSweep
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

// Row returns the sweep row for window depth w, or nil.
func (s WindowSweep) Row(w int) *WindowRow {
	for i := range s.Rows {
		if s.Rows[i].Window == w {
			return &s.Rows[i]
		}
	}
	return nil
}

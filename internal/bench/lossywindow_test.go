package bench

import (
	"bytes"
	"testing"
)

// TestMeasureLossyWindowShape runs a miniature lossy sweep and checks the
// structural invariants of the artifact: window 1 is measured once per
// loss rate as "stopwait", deeper windows once per recovery mode, every
// 0% row is its own slowdown baseline, and loss only ever costs time.
func TestMeasureLossyWindowShape(t *testing.T) {
	s := MeasureLossyWindow(3000, 8, []int{1, 4}, []int{0, 15})
	if s.Bytes != 3000 || s.Ops != 8 {
		t.Fatalf("sweep header wrong: %+v", s)
	}
	// 2 stopwait rows + 2 modes x 2 losses for window 4.
	if len(s.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(s.Rows))
	}
	for _, mode := range []string{"stopwait", "selective", "gobackn"} {
		w := 4
		if mode == "stopwait" {
			w = 1
		}
		clean, lossy := s.Row(0, w, mode), s.Row(15, w, mode)
		if clean == nil || lossy == nil {
			t.Fatalf("missing %s rows: %+v", mode, s.Rows)
		}
		if clean.SlowdownVsClean != 1 {
			t.Errorf("%s 0%% row slowdown %.2f, want 1", mode, clean.SlowdownVsClean)
		}
		if lossy.PerOpUS < clean.PerOpUS || lossy.SlowdownVsClean < 1 {
			t.Errorf("%s got faster under loss: %+v vs %+v", mode, lossy, clean)
		}
	}
	if s.Row(0, 1, "selective") != nil {
		t.Fatal("window 1 must be measured as stopwait, not per recovery mode")
	}
	sel, gbn := s.Row(0, 4, "selective"), s.Row(0, 4, "gobackn")
	if sel.PerOpUS != gbn.PerOpUS {
		t.Errorf("0%% loss rows diverge across modes: %d vs %d us", sel.PerOpUS, gbn.PerOpUS)
	}
	if lossySel := s.Row(15, 4, "selective"); lossySel.SackBlocksSent == 0 {
		t.Error("selective cell under loss sent no SACK blocks")
	}
	if lossyGbn := s.Row(15, 4, "gobackn"); lossyGbn.SelectiveRetransmits != 0 {
		t.Error("go-back-N cell counted selective retransmits")
	}
	if s.Row(15, 8, "selective") != nil {
		t.Fatal("Row found a cell that was never measured")
	}
}

// TestLossySweepRoundTrip: Write → ReadLossySweep is the identity on the
// BENCH_lossywindow.json format.
func TestLossySweepRoundTrip(t *testing.T) {
	s := MeasureLossyWindow(2100, 5, []int{1, 2}, []int{0, 30})
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLossySweep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(s.Rows) || back.Description != s.Description || back.Seed != s.Seed {
		t.Fatalf("round trip changed the sweep: %+v", back)
	}
	for i := range s.Rows {
		if back.Rows[i] != s.Rows[i] {
			t.Fatalf("row %d changed: %+v vs %+v", i, back.Rows[i], s.Rows[i])
		}
	}
}

// TestLossySweepCheckViolations pins each gate in Check against doctored
// artifacts, so the CI job actually fails when a claim breaks.
func TestLossySweepCheckViolations(t *testing.T) {
	mk := func() LossySweep {
		return LossySweep{Rows: []LossyRow{
			{LossPct: 0, Window: 8, Mode: "selective", PerOpUS: 100, SlowdownVsClean: 1},
			{LossPct: 0, Window: 8, Mode: "gobackn", PerOpUS: 100, SlowdownVsClean: 1},
			{LossPct: 15, Window: 8, Mode: "selective", PerOpUS: 150, SlowdownVsClean: 1.5},
			{LossPct: 15, Window: 8, Mode: "gobackn", PerOpUS: 700, SlowdownVsClean: 7},
			{LossPct: 30, Window: 8, Mode: "selective", PerOpUS: 250, SlowdownVsClean: 2.5},
			{LossPct: 30, Window: 8, Mode: "gobackn", PerOpUS: 1100, SlowdownVsClean: 11},
		}}
	}
	if errs := mk().Check(); len(errs) != 0 {
		t.Fatalf("healthy sweep failed its own gates: %v", errs)
	}
	cases := []struct {
		name   string
		doctor func(*LossySweep)
	}{
		{"selective degraded past 2x at 15%", func(s *LossySweep) {
			s.Row(15, 8, "selective").SlowdownVsClean = 2.6
		}},
		{"gobackn failed to collapse", func(s *LossySweep) {
			s.Row(15, 8, "gobackn").SlowdownVsClean = 1.4
		}},
		{"30% mode ratio collapsed", func(s *LossySweep) {
			s.Row(30, 8, "gobackn").PerOpUS = 300
		}},
		{"0% rows diverged across modes", func(s *LossySweep) {
			s.Row(0, 8, "gobackn").PerOpUS = 101
		}},
		{"missing row", func(s *LossySweep) {
			s.Rows = s.Rows[:len(s.Rows)-1]
		}},
	}
	for _, tc := range cases {
		s := mk()
		tc.doctor(&s)
		if errs := s.Check(); len(errs) == 0 {
			t.Errorf("%s: Check reported no violation", tc.name)
		}
	}
}

// TestLossySweepDefaultGates is the acceptance pin: the standard sweep at
// its committed scale must pass every Check gate — selective repeat within
// 2x of lossless at 15% loss, the go-back-N collapse, and 0%-loss
// wire-identity across modes.
func TestLossySweepDefaultGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep in -short mode")
	}
	s := MeasureLossyWindow(0, 0, nil, nil)
	for _, err := range s.Check() {
		t.Error(err)
	}
}

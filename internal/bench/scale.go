// Scaling-curve measurement: the internetwork experiment of DESIGN.md §13.
// For each node count the same discovery-heavy workload runs twice — once
// on a single flat bus, once on a gateway-segmented star — and the row
// records boot-to-first-service time, DISCOVER convergence (servers found
// within one discover window), and the REQUEST round trip to a far server.
// The flat network's per-MID reply stagger (§5.3) overruns the discover
// window as MIDs grow, so the per-segment DISCOVER proxy cache wins the
// convergence column at scale; the gateway hops cost a bounded RTT factor
// in exchange. cmd/sodabench -table scale prints the curve and -scale
// writes it as the BENCH_scale.json artifact CI regenerates and gates.
package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"soda"
)

// DefaultScaleNodes is the node-count axis of the standard scaling curve.
var DefaultScaleNodes = []int{8, 64, 512, 4096, 10000}

// ScaleSegmentSize is the target number of nodes per bus segment in the
// segmented half of each row (the curve picks max(2, ceil(n/size))
// segments).
const ScaleSegmentSize = 256

// scaleServers bounds the number of advertising servers per row.
const scaleServers = 32

// MaxScaleRTTRatio is the pinned ceiling on the segmented cross-segment
// REQUEST round trip relative to the flat bus: store-and-forward hops may
// cost up to this factor, never more. CheckScaleCurve gates on it.
const MaxScaleRTTRatio = 5.0

// ScaleCell is one network mode (flat or segmented) of one row. All times
// are deterministic virtual microseconds; -1 marks a phase that did not
// complete.
type ScaleCell struct {
	// BootUS is boot-to-first-service: virtual time from network start
	// until the driver's first DISCOVER returned a server.
	BootUS int64 `json:"boot_us"`
	// Discovered is how many of the row's servers one full discover
	// window collected; DiscoverUS is that window's virtual duration.
	// Together they are the convergence measure: the window length is
	// fixed, so whoever hears more servers in it converges faster.
	Discovered int   `json:"discovered"`
	DiscoverUS int64 `json:"discover_us"`
	// RTTUS is the best-of-three blocking EXCHANGE round trip against the
	// highest-MID discovered server (on the segmented network that is
	// always a cross-segment path from the asker's segment).
	RTTUS int64 `json:"rtt_us"`
	// FramesSent totals bus transmissions over the whole run (every
	// segment summed); the broadcast-suppression win shows up here.
	FramesSent uint64 `json:"frames_sent"`
	// Gateway-layer counters; zero on the flat bus.
	ProxyReplies    uint64 `json:"proxy_replies,omitempty"`
	FramesForwarded uint64 `json:"frames_forwarded,omitempty"`
}

// ScalePar is the parallel-identity cell of one row: the segmented
// workload re-run with an explicit ForwardDelay lookahead, once
// sequentially and once under WithParallelSim, with both full traces
// hashed. Identical is the gated fact (byte-identical trace streams);
// the wall-clock columns are host-dependent figures, recorded for the
// speedup curve but never gated — a single-core CI runner legitimately
// measures a slowdown on the same byte-identical schedule.
type ScalePar struct {
	Workers int `json:"workers"`
	// ForwardDelayUS is the explicit lookahead both halves run under
	// (the default segmented cell forwards immediately, which is not
	// shardable, so the parallel pair is its own controlled experiment).
	ForwardDelayUS int64 `json:"forward_delay_us"`
	// TraceHash is the FNV-64a of the sequential half's full frame
	// trace; Identical records whether the parallel half reproduced it
	// byte for byte.
	TraceHash string `json:"trace_hash"`
	Identical bool   `json:"identical"`
	SeqWallMS int64  `json:"seq_wall_ms"`
	ParWallMS int64  `json:"par_wall_ms"`
	// Speedup is SeqWall/ParWall on the measuring host.
	Speedup float64 `json:"speedup"`
}

// ScaleRow is one node count of the curve.
type ScaleRow struct {
	Nodes    int       `json:"nodes"`
	Segments int       `json:"segments"`
	Servers  int       `json:"servers"`
	Flat     ScaleCell `json:"flat"`
	Seg      ScaleCell `json:"segmented"`
	// Par is present only on curves measured with parallel workers
	// (sodabench -table scale -parworkers N).
	Par *ScalePar `json:"parallel,omitempty"`
}

// ScaleCurve is the machine-readable scaling record (the BENCH_scale.json
// format). Deterministic virtual time only: the artifact diffs cleanly and
// CI can gate regenerated numbers exactly.
type ScaleCurve struct {
	Description string     `json:"description"`
	Command     string     `json:"command"`
	Rows        []ScaleRow `json:"rows"`
}

// scaleSegments picks the segmented half's segment count for n nodes.
func scaleSegments(n int) int {
	s := (n + ScaleSegmentSize - 1) / ScaleSegmentSize
	if s < 2 {
		s = 2
	}
	return s
}

// scaleServerMIDs spreads the advertising servers across the MID space
// 1..n-1 (MID n is the asker), so on the segmented network most of them
// are remote to the asker and on the flat network their reply stagger
// spans the whole MID range.
func scaleServerMIDs(n int) []soda.MID {
	k := scaleServers
	if n-1 < k {
		k = n - 1
	}
	mids := make([]soda.MID, 0, k)
	seen := soda.MID(0)
	for i := 0; i < k; i++ {
		mid := soda.MID(1 + i*(n-1)/k)
		if mid <= seen { // collisions only when n-1 is near k
			mid = seen + 1
		}
		seen = mid
		mids = append(mids, mid)
	}
	return mids
}

// scaleRun tunes one workload execution beyond the node/segment shape:
// an explicit gateway ForwardDelay (the conservative lookahead bound),
// an intra-run parallel worker count, and an optional trace sink (the
// byte-identity witness for the parallel cells).
type scaleRun struct {
	forward time.Duration
	workers int
	trace   io.Writer
}

// measureScaleCell runs the workload once; segments <= 1 means the flat
// bus.
func measureScaleCell(n, segments int) ScaleCell {
	return runScaleCell(n, segments, scaleRun{})
}

func runScaleCell(n, segments int, r scaleRun) ScaleCell {
	opts := []soda.Option{soda.WithSeed(1)}
	if segments > 1 {
		topo := soda.StarTopology(segments)
		segSize := (n + segments - 1) / segments
		topo.Locate = func(mid soda.MID) int { return (int(mid) - 1) / segSize }
		topo.ForwardDelay = r.forward
		opts = append(opts, soda.WithTopology(topo))
	}
	if r.workers > 1 {
		opts = append(opts, soda.WithParallelSim(r.workers))
	}
	nw := soda.NewNetwork(opts...)
	if r.trace != nil {
		nw.Trace(r.trace)
	}

	pattern := soda.WellKnownPattern(0o1513)
	servers := scaleServerMIDs(n)
	isServer := make([]bool, n+1)
	for _, mid := range servers {
		isServer[mid] = true
	}
	asker := soda.MID(n)

	nw.Register("srv", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := c.Advertise(pattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind == soda.EventRequestArrival && ev.Pattern == pattern {
				c.AcceptCurrentExchange(soda.OK, []byte("pong"), ev.PutSize)
			}
		},
	})
	// Bystanders idle through the measurement so every DISCOVER broadcast
	// pays the full per-receiver delivery cost of an n-node bus.
	nw.Register("idle", soda.Program{
		Task: func(c *soda.Client) { c.Hold(time.Second) },
	})

	cell := ScaleCell{BootUS: -1, DiscoverUS: -1, RTTUS: -1}
	nw.Register("driver", soda.Program{
		Task: func(c *soda.Client) {
			// Boot-to-first-service: one DISCOVER from network start.
			if _, ok := c.Discover(pattern); !ok {
				return
			}
			cell.BootUS = int64(c.Now() / time.Microsecond)
			// Convergence: one full discover window, counted.
			start := c.Now()
			found := c.DiscoverAll(pattern, len(servers))
			cell.DiscoverUS = int64((c.Now() - start) / time.Microsecond)
			cell.Discovered = len(found)
			if len(found) == 0 {
				return
			}
			// Far-server round trip: the highest-MID server heard. On the
			// segmented star the asker is alone on the last segment, so
			// this is always a cross-segment path.
			target := found[0]
			for _, mid := range found {
				if mid > target {
					target = mid
				}
			}
			sig := soda.ServerSig{MID: target, Pattern: pattern}
			best := time.Duration(-1)
			for i := 0; i < 3; i++ {
				s := c.Now()
				if res := c.BExchange(sig, soda.OK, []byte("ping"), 16); res.Status != soda.StatusSuccess {
					return
				}
				if d := c.Now() - s; best < 0 || d < best {
					best = d
				}
			}
			cell.RTTUS = int64(best / time.Microsecond)
		},
	})

	for mid := soda.MID(1); int(mid) <= n; mid++ {
		nw.MustAddNode(mid)
		switch {
		case mid == asker:
			nw.MustBoot(mid, "driver")
		case isServer[mid]:
			nw.MustBoot(mid, "srv")
		default:
			nw.MustBoot(mid, "idle")
		}
	}
	if err := nw.Run(2 * time.Second); err != nil {
		return ScaleCell{BootUS: -1, DiscoverUS: -1, RTTUS: -1}
	}
	st := nw.Stats()
	cell.FramesSent = st.FramesSent
	is := nw.InternetStats()
	cell.ProxyReplies = is.ProxyReplies
	cell.FramesForwarded = is.FramesForwarded
	return cell
}

// MeasureScaleRow runs both halves of one node count.
func MeasureScaleRow(n int) ScaleRow {
	row := ScaleRow{Nodes: n, Segments: scaleSegments(n), Servers: len(scaleServerMIDs(n))}
	row.Flat = measureScaleCell(n, 1)
	row.Seg = measureScaleCell(n, row.Segments)
	return row
}

// ScaleParForwardDelay is the explicit lookahead of the parallel cells.
// Large enough that segment windows hold real event batches, small
// against the 40ms discover window so the workload's shape survives.
const ScaleParForwardDelay = 500 * time.Microsecond

// MeasureScalePar runs the parallel-identity experiment for one node
// count: the segmented workload under an explicit lookahead, executed
// sequentially and then with workers-way intra-run parallelism, both
// traces hashed. Both halves trace into a hasher so their overhead is
// symmetric and the wall-clock ratio stays meaningful.
func MeasureScalePar(n, workers int) ScalePar {
	segments := scaleSegments(n)
	run := func(w int) (string, time.Duration) {
		h := fnv.New64a()
		start := time.Now() //lint:allow nowallclock (host-side speedup measurement of the scheduler, outside the simulation)
		runScaleCell(n, segments, scaleRun{forward: ScaleParForwardDelay, workers: w, trace: h})
		wall := time.Since(start) //lint:allow nowallclock (host-side speedup measurement of the scheduler, outside the simulation)
		return fmt.Sprintf("%016x", h.Sum64()), wall
	}
	seqHash, seqWall := run(1)
	parHash, parWall := run(workers)
	p := ScalePar{
		Workers:        workers,
		ForwardDelayUS: int64(ScaleParForwardDelay / time.Microsecond),
		TraceHash:      seqHash,
		Identical:      parHash == seqHash,
		SeqWallMS:      seqWall.Milliseconds(),
		ParWallMS:      parWall.Milliseconds(),
	}
	if parWall > 0 {
		p.Speedup = float64(seqWall) / float64(parWall)
	}
	return p
}

// MeasureScaleCurve runs the whole curve.
func MeasureScaleCurve(nodes []int) ScaleCurve {
	return MeasureScaleCurvePar(nodes, 0)
}

// MeasureScaleCurvePar runs the curve and, when parWorkers > 1, adds the
// parallel-identity cell to every row.
func MeasureScaleCurvePar(nodes []int, parWorkers int) ScaleCurve {
	if len(nodes) == 0 {
		nodes = DefaultScaleNodes
	}
	curve := ScaleCurve{
		Description: "Flat bus vs gateway-segmented star (DESIGN.md §13) across node counts: boot-to-first-service, servers discovered in one 40ms discover window, and best-of-3 cross-segment EXCHANGE RTT. The flat network's per-MID reply stagger overruns the window as MIDs grow; the segmented network's DISCOVER proxy cache answers from the gateway directory instead. Deterministic virtual time: CI regenerates this file and gates on it exactly. Rows measured with -parworkers also carry the parallel-identity cell (DESIGN.md §15): the segmented workload under an explicit ForwardDelay lookahead, sequential vs WithParallelSim, trace hashes byte-identical (gated); the wall-clock speedup column is host-dependent and recorded only.",
		Command:     "go run ./cmd/sodabench -table scale",
	}
	if parWorkers > 1 {
		curve.Command = fmt.Sprintf("go run ./cmd/sodabench -table scale -parworkers %d", parWorkers)
	}
	for _, n := range nodes {
		row := MeasureScaleRow(n)
		if parWorkers > 1 {
			p := MeasureScalePar(n, parWorkers)
			row.Par = &p
		}
		curve.Rows = append(curve.Rows, row)
	}
	return curve
}

// CheckScaleCurve gates the acceptance properties of a measured curve:
// every phase of every row completed (the 10k-node boot included), the
// DISCOVER proxy cache beats the flat broadcast at n >= 512, and the
// cross-segment RTT stays within MaxScaleRTTRatio of the flat bus.
func CheckScaleCurve(c ScaleCurve) error {
	if len(c.Rows) == 0 {
		return fmt.Errorf("scale curve has no rows")
	}
	maxNodes := 0
	for _, r := range c.Rows {
		if r.Nodes > maxNodes {
			maxNodes = r.Nodes
		}
		if r.Flat.BootUS < 0 || r.Seg.BootUS < 0 {
			return fmt.Errorf("n=%d: boot did not complete (flat %d us, segmented %d us)", r.Nodes, r.Flat.BootUS, r.Seg.BootUS)
		}
		if r.Flat.RTTUS <= 0 || r.Seg.RTTUS <= 0 {
			return fmt.Errorf("n=%d: RTT phase did not complete (flat %d us, segmented %d us)", r.Nodes, r.Flat.RTTUS, r.Seg.RTTUS)
		}
		if ratio := float64(r.Seg.RTTUS) / float64(r.Flat.RTTUS); ratio > MaxScaleRTTRatio {
			return fmt.Errorf("n=%d: cross-segment RTT %d us is %.2fx the flat bus (%d us), ceiling %.1fx", r.Nodes, r.Seg.RTTUS, ratio, r.Flat.RTTUS, MaxScaleRTTRatio)
		}
		if r.Nodes >= 512 && r.Seg.Discovered <= r.Flat.Discovered {
			return fmt.Errorf("n=%d: DISCOVER cache found %d/%d servers vs the flat broadcast's %d — the cache must win at this scale", r.Nodes, r.Seg.Discovered, r.Servers, r.Flat.Discovered)
		}
		// Byte-identity is the gated half of the parallel cell; the
		// wall-clock speedup column is host-dependent and never gated.
		if r.Par != nil && !r.Par.Identical {
			return fmt.Errorf("n=%d: parallel run (workers=%d) diverged from the sequential trace %s", r.Nodes, r.Par.Workers, r.Par.TraceHash)
		}
	}
	if maxNodes < 10000 {
		return fmt.Errorf("curve tops out at %d nodes; the 10000-node row is the gate", maxNodes)
	}
	return nil
}

// Write emits the curve as indented JSON (the BENCH_scale.json format).
func (c ScaleCurve) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadScaleCurve parses a BENCH_scale.json artifact.
func ReadScaleCurve(r io.Reader) (ScaleCurve, error) {
	var c ScaleCurve
	err := json.NewDecoder(r).Decode(&c)
	return c, err
}

// PrintScaleCurve renders the curve as the human table -table scale shows.
func PrintScaleCurve(w io.Writer, c ScaleCurve) {
	fmt.Fprintln(w, "Internetwork scaling curve (flat bus vs segmented star, DESIGN.md §13)")
	fmt.Fprintln(w, "nodes  segs  srv | boot us (flat/seg) | discovered (flat/seg) | rtt us (flat/seg) | frames (flat/seg)")
	hasPar := false
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%5d  %4d  %3d | %9d %9d | %10d %10d | %8d %8d | %9d %9d\n",
			r.Nodes, r.Segments, r.Servers,
			r.Flat.BootUS, r.Seg.BootUS,
			r.Flat.Discovered, r.Seg.Discovered,
			r.Flat.RTTUS, r.Seg.RTTUS,
			r.Flat.FramesSent, r.Seg.FramesSent)
		if r.Par != nil {
			hasPar = true
		}
	}
	if !hasPar {
		return
	}
	fmt.Fprintln(w, "\nParallel intra-run identity (DESIGN.md §15; wall clock is host-dependent, identity is the gate)")
	fmt.Fprintln(w, "nodes  workers | trace hash (seq)   identical | seq ms   par ms   speedup")
	for _, r := range c.Rows {
		if r.Par == nil {
			continue
		}
		fmt.Fprintf(w, "%5d  %7d | %s  %9v | %6d   %6d   %6.2fx\n",
			r.Nodes, r.Par.Workers, r.Par.TraceHash, r.Par.Identical,
			r.Par.SeqWallMS, r.Par.ParWallMS, r.Par.Speedup)
	}
}

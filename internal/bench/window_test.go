package bench

import (
	"bytes"
	"testing"
)

// TestMeasureWindowSweep runs a miniature sweep and checks the artifact's
// structural invariants: the first row is the speedup baseline, every row
// carries the measured counters, and deeper windows never lose to
// stop-and-wait on a bulk pipelined stream.
func TestMeasureWindowSweep(t *testing.T) {
	s := MeasureWindowSweep(600, []int{1, 4}, 6)
	if s.Words != 600 || s.Ops != 6 || !s.Pipelined || s.Op != OpPut.String() {
		t.Fatalf("sweep header wrong: %+v", s)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(s.Rows))
	}
	base := s.Row(1)
	if base == nil || base.SpeedupVsW1 != 1 {
		t.Fatalf("baseline row = %+v, want speedup 1", base)
	}
	w4 := s.Row(4)
	if w4 == nil {
		t.Fatal("window=4 row missing")
	}
	if w4.PerOpUS <= 0 || base.PerOpUS <= 0 {
		t.Fatalf("non-positive per-op times: %d, %d", base.PerOpUS, w4.PerOpUS)
	}
	if w4.PerOpUS > base.PerOpUS {
		t.Fatalf("window=4 slower than stop-and-wait: %d vs %d us/op", w4.PerOpUS, base.PerOpUS)
	}
	if w4.SpeedupVsW1 <= 1 {
		t.Fatalf("window=4 speedup %.2f, want > 1", w4.SpeedupVsW1)
	}
	if base.CumulativeAcks != 0 {
		t.Fatalf("stop-and-wait run counted %d cumulative acks", base.CumulativeAcks)
	}
	if w4.CumulativeAcks == 0 {
		t.Fatal("windowed run counted no cumulative acks")
	}
	if s.Row(8) != nil {
		t.Fatal("Row(8) found a row that was never measured")
	}
}

// TestWindowSweepRoundTrip: Write → ReadWindowSweep is the identity on the
// BENCH_window.json format.
func TestWindowSweepRoundTrip(t *testing.T) {
	s := MeasureWindowSweep(0, nil, 3) // defaults: DefaultWindowWords × DefaultWindows
	if s.Words != DefaultWindowWords || len(s.Rows) != len(DefaultWindows) {
		t.Fatalf("defaults not applied: words=%d rows=%d", s.Words, len(s.Rows))
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWindowSweep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(s.Rows) || back.Description != s.Description {
		t.Fatalf("round trip changed the sweep: %+v", back)
	}
	for i := range s.Rows {
		if back.Rows[i] != s.Rows[i] {
			t.Fatalf("row %d changed: %+v vs %+v", i, back.Rows[i], s.Rows[i])
		}
	}
}

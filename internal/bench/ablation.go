package bench

import (
	"time"

	"soda"
	"soda/rmr"
)

// RMRAblation compares the two remote-memory-reference designs the thesis
// weighs in §6.17.2: the library implementation (a client process services
// PEEK/POKE through its handler, paying context switches and client
// overhead) against the optional kernel-level service (requests answered
// by the kernel processor directly). The thesis predicts the kernel path
// "avoids the overhead of a completion interrupt"-class costs; this
// ablation quantifies the gap under the calibrated cost model.
type RMRAblation struct {
	LibraryPeek time.Duration
	KernelPeek  time.Duration
	Ops         int
}

// MeasureRMRAblation times n PEEKs of size bytes through each design.
func MeasureRMRAblation(n, size int) RMRAblation {
	if n <= 0 {
		n = 30
	}
	out := RMRAblation{Ops: n}
	out.LibraryPeek = measureLibraryPeek(n, size)
	out.KernelPeek = measureKernelPeek(n, size)
	return out
}

func measureLibraryPeek(n, size int) time.Duration {
	nw := soda.NewNetwork()
	nw.Register("mem", rmr.Server(4096, nil))
	var perOp time.Duration
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			const warmup = 3
			var start time.Duration
			for i := 0; i < n+warmup; i++ {
				if i == warmup {
					start = c.Now()
				}
				if _, err := rmr.Peek(c, 1, 0, size); err != nil {
					panic(err)
				}
			}
			perOp = (c.Now() - start) / time.Duration(n)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "mem")
	nw.MustBoot(2, "client")
	if err := nw.Run(5 * time.Minute); err != nil {
		panic(err)
	}
	return perOp
}

func measureKernelPeek(n, size int) time.Duration {
	cfg := soda.DefaultNodeConfig()
	cfg.KernelRMRSize = 4096
	nw := soda.NewNetwork(soda.WithNodeConfig(cfg))
	var perOp time.Duration
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			const warmup = 3
			var start time.Duration
			for i := 0; i < n+warmup; i++ {
				if i == warmup {
					start = c.Now()
				}
				if _, st := soda.KernelPeek(c, 1, 0, size); st != soda.StatusSuccess {
					panic(st)
				}
			}
			perOp = (c.Now() - start) / time.Duration(n)
		},
	})
	nw.MustAddNode(1) // a free machine: only its kernel answers
	nw.MustAddNode(2)
	nw.MustBoot(2, "client")
	if err := nw.Run(5 * time.Minute); err != nil {
		panic(err)
	}
	return perOp
}

// PiggybackAblation quantifies §5.6's claim that "careful attention to
// piggybacking acknowledgements led to significant performance
// improvements": the same PUT stream with the accept window collapsed (no
// ACCEPT+ACK piggyback — every accept travels as its own message) versus
// the calibrated default.
type PiggybackAblation struct {
	WithPiggyback    Result
	WithoutPiggyback Result
}

// MeasurePiggybackAblation measures n one-word PUTs per variant.
func MeasurePiggybackAblation(n int) PiggybackAblation {
	var out PiggybackAblation
	out.WithPiggyback = MeasureOp(Config{Op: OpPut, Words: 1, Ops: n})
	out.WithoutPiggyback = measurePutNoPiggyback(n)
	return out
}

func measurePutNoPiggyback(n int) Result {
	cfg := soda.DefaultNodeConfig()
	cfg.AcceptWindow = time.Nanosecond // plain-ack immediately: no piggyback
	cfg.Transport.A = time.Nanosecond  // nor deferred acknowledgements
	nw := soda.NewNetwork(soda.WithNodeConfig(cfg))
	nw.Register("server", server(Config{Op: OpPut, Words: 1}))
	const warmup = 5
	total := n + warmup
	var (
		startAt, finishAt      time.Duration
		startFrames, endFrames uint64
	)
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			dst := soda.ServerSig{MID: 1, Pattern: benchPattern}
			for i := 0; i < total; i++ {
				if i == warmup {
					startAt = c.Now()
					startFrames = nw.Stats().FramesSent
				}
				if res := c.BPut(dst, soda.OK, []byte{1, 2}); res.Status != soda.StatusSuccess {
					panic(res.Status)
				}
			}
			finishAt = c.Now()
			endFrames = nw.Stats().FramesSent
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(5 * time.Minute); err != nil {
		panic(err)
	}
	return Result{
		PerOp:       (finishAt - startAt) / time.Duration(n),
		FramesPerOp: float64(endFrames-startFrames) / float64(n),
		Ops:         n,
	}
}

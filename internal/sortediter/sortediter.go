// Package sortediter provides sorted-key iteration over maps.
//
// Go randomizes map iteration order, so ranging over a map while emitting
// frames, scheduling events, or appending to exported output makes a run
// depend on the hash seed — breaking the bit-identical-run guarantee the
// simulation kernel otherwise provides. Every such loop in this module goes
// through these helpers (enforced by the mapiterorder analyzer in lint/):
// collect the keys, sort them, then iterate the slice.
package sortediter

import (
	"cmp"
	"slices"
	"sort"
)

// Keys returns m's keys in ascending order. The map itself is not touched
// after the call, so the caller may delete entries while iterating the
// returned slice.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	//lint:allow mapiterorder (this is the sorting helper itself)
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// KeysFunc returns m's keys sorted by less, for key types (structs like
// frame.RequesterSig) that are not cmp.Ordered. less must define a strict
// weak ordering that is total over the keys present, or the result order is
// unspecified for tied keys.
func KeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	//lint:allow mapiterorder (this is the sorting helper itself)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}

package sortediter

import (
	"slices"
	"testing"

	"soda/internal/frame"
)

func TestKeysMID(t *testing.T) {
	m := map[frame.MID]string{7: "g", 1: "a", 300: "x", 2: "b"}
	got := Keys(m)
	want := []frame.MID{1, 2, 7, 300}
	if !slices.Equal(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestKeysTID(t *testing.T) {
	m := map[frame.TID]int{9: 0, 3: 0, 1 << 40: 0}
	got := Keys(m)
	want := []frame.TID{3, 9, 1 << 40}
	if !slices.Equal(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestKeysString(t *testing.T) {
	m := map[string]struct{}{"put": {}, "accept": {}, "signal": {}}
	got := Keys(m)
	want := []string{"accept", "put", "signal"}
	if !slices.Equal(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestKeysEmptyAndNil(t *testing.T) {
	if got := Keys(map[int]int{}); len(got) != 0 {
		t.Fatalf("Keys(empty) = %v, want empty", got)
	}
	var nilMap map[int]int
	if got := Keys(nilMap); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
}

// Deleting entries while ranging the returned slice must be safe: the
// expiry sweeps in internal/deltat rely on it.
func TestKeysDeleteWhileIterating(t *testing.T) {
	m := map[frame.MID]int{1: 1, 2: 2, 3: 3, 4: 4}
	for _, k := range Keys(m) {
		if k%2 == 0 {
			delete(m, k)
		}
	}
	if len(m) != 2 {
		t.Fatalf("map has %d entries after sweep, want 2", len(m))
	}
}

func TestKeysFuncRequesterSig(t *testing.T) {
	m := map[frame.RequesterSig]bool{
		{MID: 2, TID: 1}: true,
		{MID: 1, TID: 9}: true,
		{MID: 1, TID: 2}: true,
		{MID: 3, TID: 0}: true,
	}
	got := KeysFunc(m, func(a, b frame.RequesterSig) bool {
		if a.MID != b.MID {
			return a.MID < b.MID
		}
		return a.TID < b.TID
	})
	want := []frame.RequesterSig{
		{MID: 1, TID: 2}, {MID: 1, TID: 9}, {MID: 2, TID: 1}, {MID: 3, TID: 0},
	}
	if !slices.Equal(got, want) {
		t.Fatalf("KeysFunc = %v, want %v", got, want)
	}
}

// Iteration order must be identical across passes over the same map — the
// whole point of the package.
func TestKeysStableAcrossPasses(t *testing.T) {
	m := map[string]int{}
	for _, s := range []string{"q", "ab", "zz", "m", "k", "c", "yy", "d"} {
		m[s] = len(s)
	}
	first := Keys(m)
	for i := 0; i < 16; i++ {
		if got := Keys(m); !slices.Equal(got, first) {
			t.Fatalf("pass %d: Keys = %v, want %v", i, got, first)
		}
	}
}

package modport

import (
	"testing"
	"time"

	"soda"
)

var testPort = soda.WellKnownPattern(0o5100)

func TestSyncCallRoundTrip(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("server", Server(testPort, 8, func(_ *soda.Client, _ soda.MID, data []byte) []byte {
		out := append([]byte("re:"), data...)
		return out
	}))
	var got []byte
	var st soda.Status
	nw.Register("caller", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := InitCaller(c); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) { HandleEvent(c, ev) },
		Task: func(c *soda.Client) {
			got, st = SyncCall(c, soda.ServerSig{MID: 1, Pattern: testPort}, []byte("ping"))
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "caller")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st != soda.StatusSuccess || string(got) != "re:ping" {
		t.Fatalf("sync call = %v %q", st, got)
	}
}

func TestAsyncCallsProcessedInOrder(t *testing.T) {
	nw := soda.NewNetwork()
	var got []byte
	nw.Register("server", Server(testPort, 8, func(_ *soda.Client, _ soda.MID, data []byte) []byte {
		got = append(got, data...)
		return nil
	}))
	nw.Register("caller", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := InitCaller(c); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) { HandleEvent(c, ev) },
		Task: func(c *soda.Client) {
			for i := byte(0); i < 5; i++ {
				if st := AsyncCall(c, soda.ServerSig{MID: 1, Pattern: testPort}, []byte{i}); st != soda.StatusSuccess {
					t.Errorf("async call %d: %v", i, st)
				}
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "caller")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("server processed %d calls", len(got))
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

// TestSyncSlowerThanAsync pins the baseline's structural property: the
// synchronous call pays the full layered round trip and must cost well
// over the asynchronous one (the §5.5 relationship).
func TestSyncSlowerThanAsync(t *testing.T) {
	measure := func(sync bool) time.Duration {
		nw := soda.NewNetwork()
		nw.Register("server", Server(testPort, 8, func(*soda.Client, soda.MID, []byte) []byte { return nil }))
		var elapsed time.Duration
		nw.Register("caller", soda.Program{
			Init: func(c *soda.Client, _ soda.MID) {
				if err := InitCaller(c); err != nil {
					panic(err)
				}
			},
			Handler: func(c *soda.Client, ev soda.Event) { HandleEvent(c, ev) },
			Task: func(c *soda.Client) {
				const n = 10
				start := c.Now()
				for i := 0; i < n; i++ {
					if sync {
						SyncCall(c, soda.ServerSig{MID: 1, Pattern: testPort}, []byte{1})
					} else {
						AsyncCall(c, soda.ServerSig{MID: 1, Pattern: testPort}, []byte{1})
					}
				}
				elapsed = (c.Now() - start) / n
			},
		})
		nw.MustAddNode(1)
		nw.MustAddNode(2)
		nw.MustBoot(1, "server")
		nw.MustBoot(2, "caller")
		if err := nw.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	syncCost := measure(true)
	asyncCost := measure(false)
	if syncCost < asyncCost*3/2 {
		t.Fatalf("sync %v vs async %v; expected sync ≳ 1.5× async", syncCost, asyncCost)
	}
}

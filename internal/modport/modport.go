// Package modport is the comparison baseline for §5.5: a *MOD-style
// port-call layer in the spirit of LeBlanc's implementation on identical
// hardware ([9] in the thesis).
//
// *MOD processes communicate through ports managed by a language runtime
// layered above the message system: every call traverses the runtime on
// both machines (argument marshalling, port table lookup, process
// scheduling), and replies travel the same layered path back. The thesis
// measures a synchronous remote port call at 20.7 ms and an asynchronous
// one at 11.1 ms, versus SODA's 8.5/10.0 ms blocking and 4.9/5.8 ms
// non-blocking signals — the cost of the extra layer is roughly a factor
// of two.
//
// This package reproduces that structure over the same simulated network:
// a port server whose runtime queues every call for its process body, an
// explicit reply message for synchronous calls (no piggybacking — the
// layered runtime cannot reach into the transport), and a per-traversal
// runtime charge calibrated to LeBlanc's published numbers.
package modport

import (
	"time"

	"soda"
	"soda/sodal"
)

// RuntimeCost is the CPU charged for each traversal of the *MOD runtime
// layer (marshalling, port table lookup, scheduler hand-off). Charged once
// per call on the caller and once per delivery on the server, and again
// for the reply leg of a synchronous call.
const RuntimeCost = 1600 * time.Microsecond

// ReplyPattern carries synchronous-call replies back to the caller's own
// port runtime.
var ReplyPattern = soda.WellKnownPattern(0o5001)

// Handler processes one port call; for synchronous calls the return value
// is shipped back to the caller.
type Handler func(c *soda.Client, from soda.MID, data []byte) []byte

// Call kinds carried in the request argument.
const (
	kindAsync int32 = iota + 1
	kindSync
)

// queued is one call awaiting the process body.
type queued struct {
	from  soda.MID
	kind  int32
	data  []byte
	reply soda.RequesterSig // unused for async calls
}

// serverState is the port runtime's queue.
type serverState struct {
	calls *sodal.Queue[queued]
}

// Server returns a *MOD-style process exporting one port. Calls queue in
// the runtime and execute in the process body (the task), never in the
// interrupt handler — *MOD has no analogue of SODA's flexible ACCEPT
// scheduling, so every call pays the queueing path (§5.5 compares SODA's
// queued case against this).
func Server(port soda.Pattern, queueCap int, h Handler) soda.Program {
	if queueCap <= 0 {
		queueCap = 16
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			c.SetStash(&serverState{calls: sodal.NewQueue[queued](queueCap)})
			if err := c.Advertise(port); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival || ev.Pattern != port {
				return
			}
			st := c.Stash().(*serverState)
			if st.calls.IsFull() {
				c.RejectCurrent()
				return
			}
			// Runtime layer: demultiplex to the port table and buffer
			// the message.
			c.Hold(RuntimeCost)
			res := c.AcceptCurrentPut(soda.OK, ev.PutSize)
			if res.Status != soda.AcceptSuccess {
				return
			}
			st.calls.EnQueue(queued{from: ev.Asker.MID, kind: ev.Arg, data: res.Data})
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*serverState)
			for {
				c.WaitUntil(func() bool { return !st.calls.IsEmpty() })
				q := st.calls.MustDeQueue()
				c.Hold(RuntimeCost) // runtime hand-off to the process body
				out := h(c, q.from, q.data)
				if q.kind == kindSync {
					// The reply is a fresh layered message back to the
					// caller's runtime.
					c.Hold(RuntimeCost)
					c.BPut(soda.ServerSig{MID: q.from, Pattern: ReplyPattern}, soda.OK, out)
				}
			}
		},
	}
}

// callerState tracks the outstanding synchronous call.
type callerState struct {
	waiting bool
	reply   []byte
	gotIt   bool
}

// InitCaller prepares a client to issue port calls (it advertises the
// reply port). Call it from the program's Init; route handler events
// through HandleEvent.
func InitCaller(c *soda.Client) error {
	c.SetStash(&callerState{})
	return c.Advertise(ReplyPattern)
}

// HandleEvent consumes reply-port traffic; programs call it from their
// handler, using the return to skip their own processing.
func HandleEvent(c *soda.Client, ev soda.Event) bool {
	if ev.Kind != soda.EventRequestArrival || ev.Pattern != ReplyPattern {
		return false
	}
	st, ok := c.Stash().(*callerState)
	if !ok || !st.waiting {
		c.RejectCurrent()
		return true
	}
	res := c.AcceptCurrentPut(soda.OK, ev.PutSize)
	if res.Status == soda.AcceptSuccess {
		st.reply = res.Data
		st.gotIt = true
	}
	return true
}

// AsyncCall issues an asynchronous port call: the caller resumes once the
// message is buffered at the destination's runtime (§5.5's "asynchronous
// port call", 11.1 ms in *MOD).
func AsyncCall(c *soda.Client, dst soda.ServerSig, data []byte) soda.Status {
	c.Hold(RuntimeCost) // caller-side runtime traversal
	return c.BPut(dst, kindAsync, data).Status
}

// SyncCall issues a synchronous remote port call: the caller blocks until
// the destination's process body has executed the call and replied
// (§5.5's "synchronous port call", 20.7 ms in *MOD).
func SyncCall(c *soda.Client, dst soda.ServerSig, data []byte) ([]byte, soda.Status) {
	st := c.Stash().(*callerState)
	st.waiting = true
	st.gotIt = false
	c.Hold(RuntimeCost) // caller-side runtime traversal
	if res := c.BPut(dst, kindSync, data); res.Status != soda.StatusSuccess {
		st.waiting = false
		return nil, res.Status
	}
	c.WaitUntil(func() bool { return st.gotIt })
	st.waiting = false
	c.Hold(RuntimeCost) // reply-side runtime traversal
	return st.reply, soda.StatusSuccess
}

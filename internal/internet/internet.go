// Package internet composes multiple broadcast bus segments into one
// internetwork behind store-and-forward gateways, in the spirit of the HCA
// hybrid architecture: local traffic stays on its segment's serialized
// medium, and only cross-segment frames transit a gateway.
//
// A gateway subscribes on two or more segments through bridge interfaces
// (bus.AttachBridge). Unicast frames whose destination is not attached on
// the sending segment reach every bridge there; the one gateway designated
// by the precomputed routing table forwards the frame toward the
// destination's segment, incrementing a hop count carried in a transport
// header pad byte so routing loops die at MaxHops. Broadcast frames flood
// along a per-origin spanning tree, except DISCOVER queries for client
// patterns: those are answered directly from a pattern directory kept
// coherent by the kernel observer stream (advertise/unadvertise/crash/die
// events), so discovery cost scales with the number of matching servers
// instead of the number of machines on the internetwork.
//
// Everything here runs in simulation context and is fully deterministic:
// routing tables break ties by ascending segment and gateway index, and all
// map iteration goes through sortediter.
package internet

import (
	"fmt"
	"time"

	"soda/internal/bus"
	"soda/internal/core"
	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
)

// GatewayMIDBase is the first machine id auto-assigned to gateways.
// Node MIDs must stay below it; the range up to BroadcastMID-1 allows
// 511 gateways.
const GatewayMIDBase frame.MID = 0xFE00

// GatewaySpec declares one gateway and the segments it bridges.
type GatewaySpec struct {
	// Segments lists the attached segment ids (at least two, distinct).
	Segments []int
}

// Topology describes a segmented internetwork.
type Topology struct {
	// Segments is the number of bus segments, numbered 0..Segments-1.
	// A value <= 1 means "no internetwork": callers should use a plain
	// bus instead (soda.WithTopology treats it that way).
	Segments int
	// Locate maps a node MID to its home segment. Nil defaults to
	// mid % Segments. Locate must be deterministic and total; a result
	// outside [0, Segments) marks the MID unlocatable (its frames are
	// dropped at gateways, like an unattached MID on a single bus).
	Locate func(frame.MID) int
	// Gateways lists the bridges. Gateway i gets MID GatewayMIDBase+i.
	Gateways []GatewaySpec
	// MaxHops bounds the gateway hops a frame may take; a frame whose
	// hop count would reach MaxHops is dropped (TTL). 0 means 8.
	MaxHops int
	// ForwardDelay is the store-and-forward latency a gateway adds per
	// forwarded frame, on top of the egress segment's own transmission
	// and propagation time. 0 means forward immediately.
	ForwardDelay time.Duration
	// NoDiscoverCache disables the gateways' pattern directory: DISCOVER
	// broadcasts flood the spanning tree like any other broadcast and
	// remote servers answer for themselves (with their own mid-staggered
	// delays — which overrun the asker's discover window on large
	// networks; that contrast is the point of the cache).
	NoDiscoverCache bool
	// ProxyStagger spaces the proxy DiscoverReply datagrams a gateway
	// emits when answering from the directory, standing in for the
	// repliers' own per-mid stagger. 0 means 1ms (the core default).
	ProxyStagger time.Duration
}

// Star returns a hub-and-spoke topology: segment 0 is the backbone and
// gateway i-1 bridges segment i to it, so any cross-segment path is at most
// two gateway hops. Locate is left nil (mid % segments).
func Star(segments int) Topology {
	t := Topology{Segments: segments}
	for i := 1; i < segments; i++ {
		t.Gateways = append(t.Gateways, GatewaySpec{Segments: []int{0, i}})
	}
	return t
}

// Line returns a chain topology: gateway i bridges segments i and i+1, so
// the longest path crosses segments-1 gateways. Useful for exercising hop
// counts.
func Line(segments int) Topology {
	t := Topology{Segments: segments}
	for i := 0; i < segments-1; i++ {
		t.Gateways = append(t.Gateways, GatewaySpec{Segments: []int{i, i + 1}})
	}
	return t
}

// Stats counts internetwork-level work. Like bus.Stats, every field
// accumulates from the last ResetStats (or from creation).
type Stats struct {
	// FramesForwarded counts unicast frames a gateway copied onto
	// another segment (each hop counts once).
	FramesForwarded uint64
	// BroadcastsRelayed counts broadcast frames re-emitted onto a
	// segment along the flood spanning tree.
	BroadcastsRelayed uint64
	// TTLDrops counts frames discarded because their hop count reached
	// Topology.MaxHops.
	TTLDrops uint64
	// UnroutableDrops counts unicast frames whose destination segment
	// was unknown or unreachable from the ingress segment.
	UnroutableDrops uint64
	// DiscoverHits counts DISCOVER queries answered from a gateway's
	// per-segment pattern cache; DiscoverMisses counts the ones that had
	// to consult the shared directory first (the answer is then cached).
	DiscoverHits   uint64
	DiscoverMisses uint64
	// ProxyReplies counts DiscoverReply datagrams emitted by gateways on
	// behalf of remote servers.
	ProxyReplies uint64
	// CacheInvalidations counts advertise/unadvertise/crash/die events
	// that flushed cache entries.
	CacheInvalidations uint64
}

// cacheKey scopes a cached DISCOVER answer to the segment that asked:
// the designated-responder set depends on where the query was heard.
type cacheKey struct {
	seg int
	pat frame.Pattern
}

// hop is one routing-table entry: the designated gateway and the segment it
// forwards onto. gw < 0 marks "no route" (and the root's own entry).
type hop struct {
	gw  int
	seg int
}

// Internet is a set of bus segments joined by gateways.
//
// The segshared marker declares this struct cross-segment state: code
// reachable from a gateway's bridge receive path (//lint:segroot) may read
// it — routing tables, the pattern directory — but must not write it. All
// per-event counting lives on the handling gateway (gateway.stats), so a
// future conservative parallel scheduler can run segments concurrently
// without write sharing; the sodavet segshare analyzer enforces this.
//
//lint:segshared
type Internet struct {
	// ks holds the scheduling kernel per segment. Sequentially they are all
	// the same kernel; under soda.WithParallelSim each segment gets its own
	// shard kernel from a sim.Coordinator, and all cross-segment scheduling
	// goes through Kernel.AfterCross (staged to the window barrier) while
	// directory and cache access goes through Kernel.Gated (canonical-order
	// serialization). Both degrade to plain calls on a single kernel.
	ks       []*sim.Kernel
	topo     Topology
	segments []*bus.Bus
	gateways []*gateway
	// parent[r][s] is the BFS tree of segments rooted at r: the gateway
	// and parent segment by which s is reached from r. It serves both
	// directions: unicast frames on segment s toward a node in segment r
	// take parent[r][s] as their next hop, and a broadcast originating
	// in segment r is re-emitted onto s by that same designated gateway.
	parent [][]hop
	// directory is the authoritative pattern→holders map, fed by the
	// kernel observer stream. holders sets are never iterated directly;
	// sortediter orders every walk.
	directory map[frame.Pattern]map[frame.MID]struct{}
	byNode    map[frame.MID]map[frame.Pattern]struct{}
	// stats holds only the directory-side counters (CacheInvalidations),
	// written from the observer feed, never from segment handlers; the
	// per-event counters accumulate on each gateway and Stats() sums them.
	stats Stats
}

// gateway is one store-and-forward bridge across two or more segments.
type gateway struct {
	in   *Internet
	idx  int
	mid  frame.MID
	segs []int
	// ifaces[i] is the bridge interface on segs[i].
	ifaces []*bus.Iface
	cache  map[cacheKey][]frame.MID
	down   bool
	// astats[i] is the counter share of the attachment on segs[i]: a
	// gateway bridges several segments, and under parallel execution each
	// segment's handler runs on its own shard, so the handling attachment —
	// not the gateway as a whole — must own the counters it bumps. Stats()
	// sums the shares deterministically.
	astats []Stats
}

// New builds the segments and gateways of topo on kernel k. Every segment
// bus gets the same physical configuration.
func New(k *sim.Kernel, busCfg bus.Config, topo Topology) (*Internet, error) {
	if topo.Segments < 2 {
		return nil, fmt.Errorf("internet: need at least 2 segments, got %d", topo.Segments)
	}
	ks := make([]*sim.Kernel, topo.Segments)
	for i := range ks {
		ks[i] = k
	}
	return NewSharded(ks, busCfg, topo)
}

// NewSharded builds the internetwork with one scheduling kernel per
// segment, for conservative parallel execution under a sim.Coordinator:
// ks[s] (a coordinator shard) owns segment s's bus and gateway-attachment
// handlers. Passing the same kernel for every slot is exactly New.
func NewSharded(ks []*sim.Kernel, busCfg bus.Config, topo Topology) (*Internet, error) {
	if topo.Segments < 2 {
		return nil, fmt.Errorf("internet: need at least 2 segments, got %d", topo.Segments)
	}
	if len(ks) != topo.Segments {
		return nil, fmt.Errorf("internet: %d kernels for %d segments", len(ks), topo.Segments)
	}
	if topo.MaxHops == 0 {
		topo.MaxHops = 8
	}
	if topo.ProxyStagger == 0 {
		topo.ProxyStagger = time.Millisecond
	}
	if len(topo.Gateways) > int(frame.BroadcastMID-GatewayMIDBase) {
		return nil, fmt.Errorf("internet: %d gateways exceed the MID range", len(topo.Gateways))
	}
	in := &Internet{
		ks:        ks,
		topo:      topo,
		directory: make(map[frame.Pattern]map[frame.MID]struct{}),
		byNode:    make(map[frame.MID]map[frame.Pattern]struct{}),
	}
	for s := 0; s < topo.Segments; s++ {
		in.segments = append(in.segments, bus.New(ks[s], busCfg))
	}
	for gi, spec := range topo.Gateways {
		seen := make(map[int]bool)
		g := &gateway{
			in:    in,
			idx:   gi,
			mid:   GatewayMIDBase + frame.MID(gi),
			cache: make(map[cacheKey][]frame.MID),
		}
		for _, s := range spec.Segments {
			if s < 0 || s >= topo.Segments {
				return nil, fmt.Errorf("internet: gateway %d names segment %d of %d", gi, s, topo.Segments)
			}
			if seen[s] {
				return nil, fmt.Errorf("internet: gateway %d lists segment %d twice", gi, s)
			}
			seen[s] = true
			g.segs = append(g.segs, s)
		}
		if len(g.segs) < 2 {
			return nil, fmt.Errorf("internet: gateway %d bridges %d segment(s), need >= 2", gi, len(g.segs))
		}
		g.astats = make([]Stats, len(g.segs))
		for ai, s := range g.segs {
			ai := ai
			iface, err := in.segments[s].AttachBridge(g.mid, func(raw []byte) {
				g.onFrame(ai, raw)
			})
			if err != nil {
				return nil, fmt.Errorf("internet: gateway %d on segment %d: %w", gi, s, err)
			}
			g.ifaces = append(g.ifaces, iface)
		}
		in.gateways = append(in.gateways, g)
	}
	in.buildRoutes()
	return in, nil
}

// buildRoutes runs one deterministic BFS per root segment over the gateway
// graph, filling parent. Neighbor order is (gateway index, attachment
// order), so equal-length routes always pick the lowest-numbered gateway.
func (in *Internet) buildRoutes() {
	n := in.topo.Segments
	// adj[s] lists (gateway, neighbor segment) pairs in gateway order.
	type edge struct {
		gw  int
		seg int
	}
	adj := make([][]edge, n)
	for gi, g := range in.gateways {
		for _, a := range g.segs {
			for _, b := range g.segs {
				if a != b {
					adj[a] = append(adj[a], edge{gw: gi, seg: b})
				}
			}
		}
	}
	in.parent = make([][]hop, n)
	for root := 0; root < n; root++ {
		p := make([]hop, n)
		for i := range p {
			p[i] = hop{gw: -1, seg: -1}
		}
		queue := []int{root}
		visited := make([]bool, n)
		visited[root] = true
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, e := range adj[s] {
				if !visited[e.seg] {
					visited[e.seg] = true
					p[e.seg] = hop{gw: e.gw, seg: s}
					queue = append(queue, e.seg)
				}
			}
		}
		in.parent[root] = p
	}
}

// Segments reports the number of bus segments.
func (in *Internet) Segments() int { return len(in.segments) }

// Bus returns segment s's bus.
func (in *Internet) Bus(s int) *bus.Bus { return in.segments[s] }

// NumGateways reports the number of gateways.
func (in *Internet) NumGateways() int { return len(in.gateways) }

// GatewayMID reports gateway i's machine id (frames it forwards carry this
// id as their wire-level source, which fault plans can match).
func (in *Internet) GatewayMID(i int) frame.MID { return in.gateways[i].mid }

// SegmentOf locates a node MID, or -1 for gateway/broadcast/unlocatable
// ids.
func (in *Internet) SegmentOf(mid frame.MID) int {
	if mid >= GatewayMIDBase {
		return -1
	}
	var s int
	if in.topo.Locate != nil {
		//lint:allow segshare (contract: Locate is a pure, deterministic placement function)
		s = in.topo.Locate(mid)
	} else {
		s = int(mid) % in.topo.Segments
	}
	if s < 0 || s >= in.topo.Segments {
		return -1
	}
	return s
}

// BusFor returns the segment bus a node MID attaches to.
func (in *Internet) BusFor(mid frame.MID) (*bus.Bus, error) {
	s := in.SegmentOf(mid)
	if s < 0 {
		return nil, fmt.Errorf("internet: MID %d has no home segment", mid)
	}
	return in.segments[s], nil
}

// Stats returns the internetwork counters: the per-attachment shares summed
// (in gateway and attachment order, deterministically) plus the
// directory-side counters.
func (in *Internet) Stats() Stats {
	total := in.stats
	for _, g := range in.gateways {
		for i := range g.astats {
			st := &g.astats[i]
			total.FramesForwarded += st.FramesForwarded
			total.BroadcastsRelayed += st.BroadcastsRelayed
			total.TTLDrops += st.TTLDrops
			total.UnroutableDrops += st.UnroutableDrops
			total.DiscoverHits += st.DiscoverHits
			total.DiscoverMisses += st.DiscoverMisses
			total.ProxyReplies += st.ProxyReplies
		}
	}
	return total
}

// ResetStats zeroes every counter by replacing the whole Stats values (see
// the measurement-window contract on bus.Stats).
func (in *Internet) ResetStats() {
	in.stats = Stats{}
	for _, g := range in.gateways {
		for i := range g.astats {
			g.astats[i] = Stats{}
		}
	}
}

// CrashGateway takes gateway i off every attached segment: it stops
// hearing frames, forwards nothing (frames inside its store-and-forward
// delay are lost), and drops its cache.
func (in *Internet) CrashGateway(i int) {
	g := in.gateways[i]
	g.down = true
	for _, iface := range g.ifaces {
		iface.Down()
	}
	g.cache = make(map[cacheKey][]frame.MID)
}

// RebootGateway reattaches a crashed gateway. Its cache restarts cold and
// refills from the directory on demand.
func (in *Internet) RebootGateway(i int) {
	g := in.gateways[i]
	g.down = false
	for _, iface := range g.ifaces {
		iface.Up()
	}
}

// Observe feeds one kernel observer event into the pattern directory. The
// caller (soda.Network) fans the per-node observer stream here; the
// directory models the advertise/crash bookkeeping a real gateway would
// learn from its segment's broadcasts.
func (in *Internet) Observe(ev core.ObsEvent) {
	switch ev.Kind {
	case core.ObsAdvertise:
		holders := in.directory[ev.Pattern]
		if holders == nil {
			holders = make(map[frame.MID]struct{})
			in.directory[ev.Pattern] = holders
		}
		holders[ev.Node] = struct{}{}
		pats := in.byNode[ev.Node]
		if pats == nil {
			pats = make(map[frame.Pattern]struct{})
			in.byNode[ev.Node] = pats
		}
		pats[ev.Pattern] = struct{}{}
		in.invalidate(ev.Pattern)
	case core.ObsUnadvertise:
		if holders := in.directory[ev.Pattern]; holders != nil {
			delete(holders, ev.Node)
			if len(holders) == 0 {
				delete(in.directory, ev.Pattern)
			}
		}
		if pats := in.byNode[ev.Node]; pats != nil {
			delete(pats, ev.Pattern)
		}
		in.invalidate(ev.Pattern)
	case core.ObsCrash, core.ObsDie:
		pats := in.byNode[ev.Node]
		if len(pats) == 0 {
			return
		}
		delete(in.byNode, ev.Node)
		for _, p := range sortediter.Keys(pats) {
			if holders := in.directory[p]; holders != nil {
				delete(holders, ev.Node)
				if len(holders) == 0 {
					delete(in.directory, p)
				}
			}
			in.invalidate(p)
		}
	}
}

// invalidate flushes every cached answer for pattern p, on every gateway
// and ingress segment.
func (in *Internet) invalidate(p frame.Pattern) {
	in.stats.CacheInvalidations++
	for _, g := range in.gateways {
		for _, s := range g.segs {
			delete(g.cache, cacheKey{seg: s, pat: p})
		}
	}
}

// wire-format offsets a gateway reads without a full decode: the transport
// header is kind(1) src(2) dst(2) ... with three pad bytes at 13..15; byte
// 13 is repurposed as the hop count (origin endpoints always write zero, so
// a single-segment network's wire bytes are untouched, and decoders ignore
// pad bytes entirely).
const (
	offSrc = 1
	offDst = 3
	offHop = 13

	minFrame = 16
)

// onFrame is the bridge receive path: decide whether this gateway is the
// designated forwarder and relay accordingly.
//
// The segroot marker makes this the segshare analyzer's entry point:
// everything reachable from here may read the shared Internet but writes
// only this gateway's own state, and emits frames only through the
// deferred //lint:segqueue closures.
//
//lint:segroot
func (g *gateway) onFrame(ai int, raw []byte) {
	if g.down || len(raw) < minFrame {
		return
	}
	in := g.in
	ingress, st := g.segs[ai], &g.astats[ai]
	src := frame.MID(uint16(raw[offSrc])<<8 | uint16(raw[offSrc+1]))
	dst := frame.MID(uint16(raw[offDst])<<8 | uint16(raw[offDst+1]))
	if dst == frame.BroadcastMID {
		g.onBroadcast(ingress, st, src, raw)
		return
	}
	dseg := in.SegmentOf(dst)
	if dseg < 0 || dseg == ingress {
		// Unlocatable destination, or a local frame every bridge hears
		// because the destination node was never attached (e.g. it is
		// simply absent); either way there is nowhere to route.
		if dseg < 0 {
			st.UnroutableDrops++
		}
		return
	}
	next := in.parent[dseg][ingress]
	if next.gw < 0 {
		st.UnroutableDrops++
		return
	}
	if next.gw != g.idx {
		return // another gateway on this segment is designated
	}
	g.relay(ingress, next.seg, dst, raw, st, &st.FramesForwarded)
}

// relay copies raw (the bus shares delivery buffers, so the hop count must
// never be bumped in place), increments the hop byte, and re-emits the
// frame on segment egress after the store-and-forward delay. The deferred
// send is scheduled through AfterCross: sequentially that is plain After on
// the one kernel; under a parallel coordinator it stages the send to the
// egress shard at the window barrier, which is sound exactly because the
// delay is at least the coordinator's ForwardDelay lookahead.
func (g *gateway) relay(ingress, egress int, dst frame.MID, raw []byte, st *Stats, counter *uint64) {
	in := g.in
	hops := int(raw[offHop])
	if hops+1 >= in.topo.MaxHops {
		st.TTLDrops++
		return
	}
	buf := make([]byte, len(raw))
	copy(buf, raw)
	buf[offHop] = byte(hops + 1)
	*counter++
	iface := g.ifaceOn(egress)
	in.ks[ingress].AfterCross(in.ks[egress], in.topo.ForwardDelay, func() {
		if g.down {
			return // crashed mid-forward: the frame dies in the store
		}
		iface.Send(dst, buf)
	})
}

// ifaceOn returns the bridge interface attached to segment s.
func (g *gateway) ifaceOn(s int) *bus.Iface {
	for i, seg := range g.segs {
		if seg == s {
			return g.ifaces[i]
		}
	}
	panic(fmt.Sprintf("internet: gateway %d not attached to segment %d", g.idx, s))
}

// onBroadcast relays a broadcast along the spanning tree rooted at the
// origin's segment, except client-pattern DISCOVER queries, which the
// directory answers without flooding.
func (g *gateway) onBroadcast(ingress int, st *Stats, src frame.MID, raw []byte) {
	in := g.in
	origin := in.SegmentOf(src)
	if origin < 0 {
		return // gateways do not re-flood each other's relays by MID design
	}
	if !in.topo.NoDiscoverCache && frame.TransportKind(raw[0]) == frame.TransportDatagram {
		if f, err := frame.DecodeTransportShared(raw); err == nil {
			if msg, err := frame.Decode(f.Payload); err == nil {
				if d, ok := msg.(*frame.Discover); ok && !d.Pattern.Reserved() {
					g.answerDiscover(ingress, st, src, d)
					return
				}
			}
		}
	}
	// Tree flood: re-emit onto every attached segment whose tree parent
	// (for this origin) is this gateway on this ingress.
	for _, s := range g.segs {
		if s == ingress {
			continue
		}
		p := in.parent[origin][s]
		if p.gw == g.idx && p.seg == ingress {
			g.relay(ingress, s, frame.BroadcastMID, raw, st, &st.BroadcastsRelayed)
		}
	}
}

// answerDiscover serves a client-pattern DISCOVER from the directory: the
// gateway emits DiscoverReply datagrams on the asker's segment on behalf of
// every remote holder it is designated to represent (local holders heard
// the broadcast themselves and reply on their own). The flood stops here —
// that is the cache's entire point — so discovery traffic on other segments
// is zero.
func (g *gateway) answerDiscover(ingress int, st *Stats, asker frame.MID, d *frame.Discover) {
	in := g.in
	// The shared directory and this gateway's cache (which invalidate()
	// flushes from other segments' observer events) are globally sequenced
	// state: under parallel execution the whole lookup runs through the
	// order gate so it reads exactly the directory a sequential run would
	// see at this instant. Sequentially, Gated is a direct call.
	var remotes []frame.MID
	//lint:allow segshare (gate: directory and cache access is serialized in canonical order by the parallel coordinator's order gate)
	in.ks[ingress].Gated(func() {
		key := cacheKey{seg: ingress, pat: d.Pattern}
		var ok bool
		remotes, ok = g.cache[key]
		if ok {
			st.DiscoverHits++
			return
		}
		st.DiscoverMisses++
		for _, m := range sortediter.Keys(in.directory[d.Pattern]) {
			hseg := in.SegmentOf(m)
			if hseg < 0 || hseg == ingress {
				continue
			}
			next := in.parent[hseg][ingress]
			if next.gw == g.idx {
				remotes = append(remotes, m)
			}
		}
		g.cache[key] = remotes
	})
	if len(remotes) == 0 {
		return
	}
	iface := g.ifaceOn(ingress)
	for i, m := range remotes {
		reply := &frame.TransportFrame{
			Kind:    frame.TransportDatagram,
			Src:     m,
			Dst:     asker,
			Payload: frame.Encode(&frame.DiscoverReply{TID: d.TID, Pattern: d.Pattern}),
		}
		buf := frame.EncodeTransport(reply)
		st.ProxyReplies++
		// delay >= ForwardDelay keeps the reply outside the lookahead
		// window, so the same-segment send stages cleanly at the barrier.
		delay := in.topo.ForwardDelay + time.Duration(i+1)*in.topo.ProxyStagger
		in.ks[ingress].After(delay, func() {
			if g.down {
				return
			}
			iface.Send(asker, buf)
		})
	}
}

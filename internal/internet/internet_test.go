package internet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/core"
	"soda/internal/frame"
	"soda/internal/sim"
)

// testNet is a segmented network with one raw listener interface per MID,
// recording every frame it hears. Frames are crafted transport datagrams so
// the gateways can parse the header without running full SODA nodes.
type testNet struct {
	t     *testing.T
	k     *sim.Kernel
	in    *Internet
	heard map[frame.MID][][]byte
	iface map[frame.MID]*bus.Iface
}

func newTestNet(t *testing.T, topo Topology, mids ...frame.MID) *testNet {
	t.Helper()
	k := sim.New(1)
	in, err := New(k, bus.DefaultConfig(), topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := &testNet{
		t:     t,
		k:     k,
		in:    in,
		heard: make(map[frame.MID][][]byte),
		iface: make(map[frame.MID]*bus.Iface),
	}
	for _, mid := range mids {
		mid := mid
		b, err := in.BusFor(mid)
		if err != nil {
			t.Fatalf("BusFor(%d): %v", mid, err)
		}
		iface, err := b.Attach(mid, func(raw []byte) {
			cp := make([]byte, len(raw))
			copy(cp, raw)
			n.heard[mid] = append(n.heard[mid], cp)
		})
		if err != nil {
			t.Fatalf("Attach(%d): %v", mid, err)
		}
		n.iface[mid] = iface
	}
	return n
}

// datagram builds a transport datagram frame carrying msg.
func datagram(src, dst frame.MID, msg frame.Message) []byte {
	return frame.EncodeTransport(&frame.TransportFrame{
		Kind:    frame.TransportDatagram,
		Src:     src,
		Dst:     dst,
		Payload: frame.Encode(msg),
	})
}

func (n *testNet) send(src, dst frame.MID, msg frame.Message) {
	n.iface[src].Send(dst, datagram(src, dst, msg))
}

func (n *testNet) run(d time.Duration) {
	n.t.Helper()
	if err := n.k.RunUntil(sim.Time(d)); err != nil {
		n.t.Fatalf("run: %v", err)
	}
}

// TestRoutesStar pins the BFS routing table of a 4-segment star: every
// cross-segment path goes through the backbone (segment 0), and the
// designated gateway for segment s is always gateway s-1.
func TestRoutesStar(t *testing.T) {
	n := newTestNet(t, Star(4))
	in := n.in
	// From any spoke s toward another spoke r, the first hop off s is its
	// own gateway (s-1) onto the backbone.
	for r := 1; r < 4; r++ {
		for s := 1; s < 4; s++ {
			if s == r {
				continue
			}
			got := in.parent[r][s]
			if got.gw != s-1 || got.seg != 0 {
				t.Fatalf("parent[%d][%d] = %+v, want {gw:%d seg:0}", r, s, got, s-1)
			}
		}
		// From the backbone toward spoke r, gateway r-1 is designated.
		if got := in.parent[r][0]; got.gw != r-1 || got.seg != r {
			t.Fatalf("parent[%d][0] = %+v, want {gw:%d seg:%d}", r, got, r-1, r)
		}
	}
}

// TestUnicastForward checks the basic store-and-forward path: a unicast to
// a node on another segment crosses the gateway once, with its hop count
// bumped and the forward counted.
func TestUnicastForward(t *testing.T) {
	// Star(2): mids 2 (seg 0) and 3 (seg 1), one gateway between them.
	n := newTestNet(t, Star(2), 2, 3)
	n.send(2, 3, &frame.Discover{TID: 1, Pattern: frame.WellKnownPattern(7)})
	n.run(time.Second)
	got := n.heard[3]
	if len(got) != 1 {
		t.Fatalf("node 3 heard %d frames, want 1", len(got))
	}
	if got[0][offHop] != 1 {
		t.Fatalf("hop count = %d, want 1", got[0][offHop])
	}
	if s := n.in.Stats(); s.FramesForwarded != 1 || s.TTLDrops != 0 || s.UnroutableDrops != 0 {
		t.Fatalf("stats = %+v, want 1 forward and no drops", s)
	}
}

// TestMultiHopLine sends across a 3-segment line: two gateway hops, then
// the same route with MaxHops too small for the second hop (TTL drop).
func TestMultiHopLine(t *testing.T) {
	// Line(3): mid 3 lands on segment 0, mid 5 on segment 2.
	n := newTestNet(t, Line(3), 3, 5)
	n.send(3, 5, &frame.Discover{TID: 1, Pattern: frame.WellKnownPattern(7)})
	n.run(time.Second)
	if got := n.heard[5]; len(got) != 1 || got[0][offHop] != 2 {
		t.Fatalf("node 5 heard %v, want one frame at hop count 2", got)
	}
	if s := n.in.Stats(); s.FramesForwarded != 2 {
		t.Fatalf("FramesForwarded = %d, want 2", s.FramesForwarded)
	}

	topo := Line(3)
	topo.MaxHops = 2
	n2 := newTestNet(t, topo, 3, 5)
	n2.send(3, 5, &frame.Discover{TID: 1, Pattern: frame.WellKnownPattern(7)})
	n2.run(time.Second)
	if len(n2.heard[5]) != 0 {
		t.Fatalf("node 5 heard %d frames despite MaxHops=2", len(n2.heard[5]))
	}
	if s := n2.in.Stats(); s.TTLDrops != 1 || s.FramesForwarded != 1 {
		t.Fatalf("stats = %+v, want 1 forward then 1 TTL drop", s)
	}
}

// TestBroadcastSpanningTree floods a non-DISCOVER broadcast from a spoke of
// a 3-segment star and checks every other segment hears it exactly once
// (no duplicate relays, no echo back onto the origin).
func TestBroadcastSpanningTree(t *testing.T) {
	// Star(3): mids 3 (seg 0), 4 (seg 1), 5 (seg 2).
	n := newTestNet(t, Star(3), 3, 4, 5)
	// DiscoverReply is a broadcast-capable datagram the DISCOVER
	// interception leaves alone.
	n.iface[4].Send(frame.BroadcastMID, datagram(4, frame.BroadcastMID,
		&frame.DiscoverReply{TID: 1, Pattern: frame.WellKnownPattern(7)}))
	n.run(time.Second)
	for _, mid := range []frame.MID{3, 5} {
		if len(n.heard[mid]) != 1 {
			t.Fatalf("node %d heard %d copies, want exactly 1", mid, len(n.heard[mid]))
		}
	}
	// The origin must not hear its own broadcast relayed back.
	if len(n.heard[4]) != 0 {
		t.Fatalf("origin heard %d echoes of its own broadcast", len(n.heard[4]))
	}
	if s := n.in.Stats(); s.BroadcastsRelayed != 2 {
		t.Fatalf("BroadcastsRelayed = %d, want 2", s.BroadcastsRelayed)
	}
}

// TestDiscoverProxy checks the cache path end to end: a DISCOVER for an
// advertised remote pattern is answered by the gateway on the asker's
// segment (spoofing the holder's MID), never floods the remote segment,
// hits the cache on re-ask, and the cache is invalidated by unadvertise.
func TestDiscoverProxy(t *testing.T) {
	// Star(2): asker mid 2 on segment 0, holder mid 5 on segment 1.
	n := newTestNet(t, Star(2), 2, 5)
	p := frame.WellKnownPattern(0o42)
	n.in.Observe(core.ObsEvent{Kind: core.ObsAdvertise, Node: 5, Pattern: p})

	ask := func() {
		n.iface[2].Send(frame.BroadcastMID, datagram(2, frame.BroadcastMID,
			&frame.Discover{TID: 9, Pattern: p}))
	}
	ask()
	n.run(time.Second)
	if len(n.heard[5]) != 0 {
		t.Fatalf("holder's segment heard %d frames; the flood should stop at the gateway", len(n.heard[5]))
	}
	if len(n.heard[2]) != 1 {
		t.Fatalf("asker heard %d frames, want 1 proxy reply", len(n.heard[2]))
	}
	f, err := frame.DecodeTransportShared(n.heard[2][0])
	if err != nil {
		t.Fatalf("decode proxy reply: %v", err)
	}
	if f.Src != 5 || f.Dst != 2 {
		t.Fatalf("proxy reply src/dst = %d/%d, want 5/2 (spoofed holder)", f.Src, f.Dst)
	}
	msg, err := frame.Decode(f.Payload)
	if err != nil {
		t.Fatalf("decode payload: %v", err)
	}
	r, ok := msg.(*frame.DiscoverReply)
	if !ok || r.TID != 9 || r.Pattern != p {
		t.Fatalf("payload = %#v, want DiscoverReply{TID:9, Pattern:%v}", msg, p)
	}
	s := n.in.Stats()
	if s.DiscoverMisses != 1 || s.DiscoverHits != 0 || s.ProxyReplies != 1 {
		t.Fatalf("after first ask: %+v, want 1 miss, 0 hits, 1 proxy reply", s)
	}

	ask()
	n.run(2 * time.Second)
	if s := n.in.Stats(); s.DiscoverHits != 1 || s.ProxyReplies != 2 {
		t.Fatalf("after re-ask: %+v, want 1 hit and 2 proxy replies", s)
	}

	// Unadvertise invalidates: the next ask finds no holders and emits
	// nothing.
	n.in.Observe(core.ObsEvent{Kind: core.ObsUnadvertise, Node: 5, Pattern: p})
	ask()
	n.run(3 * time.Second)
	if s := n.in.Stats(); s.CacheInvalidations == 0 || s.ProxyReplies != 2 {
		t.Fatalf("after unadvertise: %+v, want invalidations and no new proxy reply", s)
	}
	if len(n.heard[2]) != 2 {
		t.Fatalf("asker heard %d frames, want 2 (no reply for a dropped pattern)", len(n.heard[2]))
	}
}

// TestDiscoverCacheDisabled checks NoDiscoverCache floods the query like
// any broadcast instead of proxying it.
func TestDiscoverCacheDisabled(t *testing.T) {
	topo := Star(2)
	topo.NoDiscoverCache = true
	n := newTestNet(t, topo, 2, 5)
	p := frame.WellKnownPattern(0o42)
	n.in.Observe(core.ObsEvent{Kind: core.ObsAdvertise, Node: 5, Pattern: p})
	n.iface[2].Send(frame.BroadcastMID, datagram(2, frame.BroadcastMID,
		&frame.Discover{TID: 9, Pattern: p}))
	n.run(time.Second)
	if len(n.heard[5]) != 1 {
		t.Fatalf("remote segment heard %d frames, want the flooded DISCOVER", len(n.heard[5]))
	}
	if s := n.in.Stats(); s.ProxyReplies != 0 || s.BroadcastsRelayed != 1 {
		t.Fatalf("stats = %+v, want a relay and no proxying", s)
	}
}

// TestCrashMidForward crashes the gateway inside its store-and-forward
// delay: the frame dies in the store; after reboot traffic flows again.
func TestCrashMidForward(t *testing.T) {
	topo := Star(2)
	topo.ForwardDelay = 10 * time.Millisecond
	n := newTestNet(t, topo, 2, 3)
	n.send(2, 3, &frame.Discover{TID: 1, Pattern: frame.WellKnownPattern(7)})
	// Crash after the gateway accepted the frame but before the forward
	// timer fires.
	n.k.After(time.Millisecond, func() { n.in.CrashGateway(0) })
	n.run(time.Second)
	if len(n.heard[3]) != 0 {
		t.Fatalf("node 3 heard %d frames through a crashed gateway", len(n.heard[3]))
	}
	// The forward was counted when accepted; the crash ate the emission.
	if s := n.in.Stats(); s.FramesForwarded != 1 {
		t.Fatalf("FramesForwarded = %d, want 1 (accepted before the crash)", s.FramesForwarded)
	}

	n.in.RebootGateway(0)
	n.send(2, 3, &frame.Discover{TID: 2, Pattern: frame.WellKnownPattern(7)})
	n.run(2 * time.Second)
	if len(n.heard[3]) != 1 {
		t.Fatalf("node 3 heard %d frames after reboot, want 1", len(n.heard[3]))
	}
}

// TestNewValidation pins the constructor's topology checks.
func TestNewValidation(t *testing.T) {
	k := sim.New(1)
	cfg := bus.DefaultConfig()
	cases := []struct {
		name string
		topo Topology
	}{
		{"one segment", Topology{Segments: 1}},
		{"segment out of range", Topology{Segments: 2, Gateways: []GatewaySpec{{Segments: []int{0, 2}}}}},
		{"duplicate segment", Topology{Segments: 2, Gateways: []GatewaySpec{{Segments: []int{1, 1}}}}},
		{"single-homed gateway", Topology{Segments: 2, Gateways: []GatewaySpec{{Segments: []int{0}}}}},
	}
	for _, tc := range cases {
		if _, err := New(k, cfg, tc.topo); err == nil {
			t.Errorf("%s: New accepted an invalid topology", tc.name)
		}
	}
}

// TestSegmentOf pins the default and custom locate functions and the
// gateway MID carve-out.
func TestSegmentOf(t *testing.T) {
	n := newTestNet(t, Star(3))
	if s := n.in.SegmentOf(7); s != 1 {
		t.Fatalf("SegmentOf(7) = %d, want 1 (mid %% segments)", s)
	}
	if s := n.in.SegmentOf(GatewayMIDBase); s != -1 {
		t.Fatalf("SegmentOf(gateway) = %d, want -1", s)
	}
	topo := Star(2)
	topo.Locate = func(mid frame.MID) int {
		if mid == 9 {
			return -5 // unlocatable
		}
		return 1
	}
	n2 := newTestNet(t, topo)
	if s := n2.in.SegmentOf(4); s != 1 {
		t.Fatalf("custom Locate ignored: SegmentOf(4) = %d", s)
	}
	if _, err := n2.in.BusFor(9); err == nil {
		t.Fatal("BusFor accepted an unlocatable MID")
	}
}

// TestAccessorsAndResetStats covers the surface plumbing: segment/gateway
// accessors agree with the topology, and ResetStats opens a fresh
// measurement window over the per-attachment shares (bus.Stats contract).
func TestAccessorsAndResetStats(t *testing.T) {
	n := newTestNet(t, Star(3), 3, 4)
	if n.in.Segments() != 3 || n.in.NumGateways() != 2 {
		t.Fatalf("shape: %d segments, %d gateways", n.in.Segments(), n.in.NumGateways())
	}
	for i := 0; i < n.in.NumGateways(); i++ {
		if mid := n.in.GatewayMID(i); mid != GatewayMIDBase+frame.MID(i) {
			t.Fatalf("GatewayMID(%d) = %d", i, mid)
		}
	}
	for s := 0; s < 3; s++ {
		if n.in.Bus(s) == nil {
			t.Fatalf("Bus(%d) is nil", s)
		}
	}
	if b, err := n.in.BusFor(3); err != nil || b != n.in.Bus(0) {
		t.Fatalf("BusFor(3) = %v, %v; want segment 0's bus", b, err)
	}
	n.send(3, 4, &frame.Discover{TID: 1, Pattern: frame.WellKnownPattern(7)})
	n.run(time.Second)
	if s := n.in.Stats(); s.FramesForwarded == 0 {
		t.Fatalf("stats before reset = %+v, want forwards", s)
	}
	n.in.ResetStats()
	if s := n.in.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
}

// TestShardedMatchesSequential is the in-package half of the parallel
// determinism battery: the same cross-segment traffic runs once on a
// single kernel (New) and once on a parallel coordinator's shard kernels
// (NewSharded), and every receiver must hear byte-identical frame
// sequences. This pins the relay's AfterCross staging against the plain
// After path it replaces.
func TestShardedMatchesSequential(t *testing.T) {
	topo := Star(3)
	topo.ForwardDelay = 2 * time.Millisecond
	mids := []frame.MID{3, 4, 5} // one per segment (mid % 3)

	run := func(build func() (*Internet, func())) [][]string {
		in, finish := build()
		heard := make([][][]byte, len(mids))
		ifaces := make([]*bus.Iface, len(mids))
		for i, mid := range mids {
			i := i
			b, err := in.BusFor(mid)
			if err != nil {
				t.Fatal(err)
			}
			iface, err := b.Attach(mid, func(raw []byte) {
				cp := make([]byte, len(raw))
				copy(cp, raw)
				heard[i] = append(heard[i], cp)
			})
			if err != nil {
				t.Fatal(err)
			}
			ifaces[i] = iface
		}
		send := func(i int, dst frame.MID, tid frame.TID) {
			ifaces[i].Send(dst, datagram(mids[i], dst,
				&frame.Discover{TID: tid, Pattern: frame.WellKnownPattern(7)}))
		}
		send(0, 4, 1) // one gateway hop
		send(1, 5, 2) // two hops via the backbone
		send(2, 3, 3)
		send(0, 5, 4)
		send(1, frame.BroadcastMID, 5) // floods the spanning tree
		finish()
		out := make([][]string, len(mids))
		for i, frames := range heard {
			for _, f := range frames {
				out[i] = append(out[i], fmt.Sprintf("%x", f))
			}
		}
		return out
	}

	seq := run(func() (*Internet, func()) {
		k := sim.New(1)
		in, err := New(k, bus.DefaultConfig(), topo)
		if err != nil {
			t.Fatal(err)
		}
		return in, func() {
			if err := k.RunUntil(sim.Time(time.Second)); err != nil {
				t.Fatal(err)
			}
		}
	})
	total := 0
	for _, frames := range seq {
		total += len(frames)
	}
	if total == 0 {
		t.Fatal("sequential run delivered nothing; comparison would prove nothing")
	}
	par := run(func() (*Internet, func()) {
		c := sim.NewCoordinator(1, 3, 2, sim.Time(topo.ForwardDelay))
		in, err := NewSharded(c.Shards(), bus.DefaultConfig(), topo)
		if err != nil {
			t.Fatal(err)
		}
		return in, func() {
			if err := c.RunUntil(sim.Time(time.Second)); err != nil {
				t.Fatal(err)
			}
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sharded delivery diverged:\nseq %v\npar %v", seq, par)
	}
}

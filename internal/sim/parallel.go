// Worker-pool primitive for sharding independent simulations.
//
// This file is the one sanctioned home for host-level concurrency in the
// whole tree: the sodavet nogoroutine analyzer exempts soda/internal/sim
// precisely so that goroutines, channels and sync never leak into
// simulation code, where they would destroy determinism. The rule that
// keeps ParallelFor safe is isolation: each index must touch state no
// other index touches (its own Kernel, its own result slot). Nothing here
// may ever run inside a Kernel's event loop.
package sim

import "sync"

// ParallelFor runs fn(i) for every i in [0, n) across a pool of worker
// goroutines, blocking until all calls return. workers <= 1 degrades to a
// plain sequential loop (no goroutines at all), which callers use to pin
// sequential/parallel equivalence in tests.
//
// Each fn(i) must be independent of every other: distinct simulation
// kernels, distinct result slots (e.g. results[i]), no shared mutable
// state. Indexes are handed out in order but complete in any order —
// callers that need deterministic output must order by index, never by
// completion.
//
// If any fn panics, ParallelFor finishes the remaining work and then
// re-panics the first panic value on the caller's goroutine.
//
// The sodavet parcapture analyzer statically checks every closure passed
// here: captured state may be read, but writes must partition per index
// (fn's own `i` selecting the element).
//
//lint:parfor
func ParallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		mu         sync.Mutex
		firstPanic any
		panicked   bool
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !panicked {
					panicked = true
					firstPanic = r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked {
		panic(firstPanic)
	}
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of the SODA reproduction runs under virtual time supplied by this
// package: the broadcast bus charges transmission time, the Delta-t protocol
// arms retransmission and connection timers, and client programs execute as
// cooperative processes. Determinism is achieved by running exactly one
// process at a time (control is handed between the scheduler goroutine and
// process goroutines over unbuffered channels) and by breaking event-time
// ties with a monotonically increasing sequence number.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, measured as an offset from the start
// of the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// ErrStalled is returned by Run when runnable work remains impossible:
// processes are suspended but no event can ever wake them.
var ErrStalled = errors.New("sim: all processes suspended with no pending events")

// event is a scheduled occurrence: at time t, fn runs (scheduler context) or
// proc resumes (process context). Exactly one of fn/proc is set. Under a
// parallel Coordinator every event additionally carries its canonical-order
// record (see coordinator.go); rec is nil in plain sequential kernels.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	proc *Proc
	rec  *execRec
}

// eventHeap orders events by (time, sequence); sequence breaks ties so that
// scheduling order is deterministic and FIFO at equal timestamps.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event scheduler with a virtual clock.
//
// A Kernel is not safe for concurrent use from multiple goroutines; all
// interaction must happen either before Run, or from within event callbacks
// and processes (which the Kernel serializes).
type Kernel struct {
	now     Time
	seq     uint64
	events  eventQueue
	yield   chan struct{} // processes signal "I have yielded control"
	rng     *rand.Rand
	procs   int // live (started, not finished) processes
	current *Proc
	stopped bool
	limit   uint64 // safety valve on total events processed; 0 = unlimited
	// free recycles event structs: every Hold, timer and delivery allocates
	// one, so the scheduler's steady-state allocation rate would otherwise
	// scale with event throughput. The freelist is bounded by the peak
	// number of simultaneously pending events.
	free []*event
	// par is non-nil when this kernel is one shard of a parallel
	// Coordinator (or its global kernel); it routes scheduling through the
	// canonical-order machinery in coordinator.go. Nil for plain kernels,
	// which keeps every sequential code path byte-identical to before.
	par *parState
}

// New returns a Kernel whose random source is seeded deterministically. The
// pending-event store is a hierarchical timer wheel (see wheel.go); its
// event ordering is byte-identical to the reference binary heap, which
// newWithQueue can substitute for differential testing.
func New(seed int64) *Kernel { return newWithQueue(seed, newWheel()) }

func newWithQueue(seed int64, q eventQueue) *Kernel {
	return &Kernel{
		events: q,
		yield:  make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Current reports the process currently executing, or nil in scheduler
// (event-callback) context. A blocking call made from inside a process must
// suspend that exact process; Current is the authoritative identity.
func (k *Kernel) Current() *Proc { return k.current }

// Rand exposes the kernel's deterministic random source. All randomness in
// the simulation (loss injection, backoff jitter, pattern generation) must
// come from here so runs are reproducible from the seed.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// SetEventLimit caps the total number of events processed by Run; exceeding
// it makes Run return an error. Zero means unlimited. It exists to turn
// accidental livelock (e.g. two kernels retransmitting at each other
// forever) into a test failure instead of a hang.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// At schedules fn to run in scheduler context at absolute virtual time t.
// Times in the past are clamped to now.
//
// The segqueue marker designates closures scheduled here as the sanctioned
// deferred path out of segment-handler code: each runs as its own
// serialized event, which is what a conservative parallel scheduler can
// order by lookahead (see the sodavet segshare analyzer).
//
//lint:segqueue
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	if k.par != nil {
		//lint:allow noalloc (cold: parallel-mode scheduling is outside the sequential hot path)
		k.par.schedule(k, t, fn, nil, false)
		return
	}
	k.seq++
	ev := k.newEvent()
	ev.t, ev.seq, ev.fn = t, k.seq, fn
	k.events.push(ev)
}

// newEvent takes an event struct from the freelist, or allocates one.
func (k *Kernel) newEvent() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free = k.free[:n-1]
		return ev
	}
	//lint:allow noalloc (counted: freelist miss; one event struct per new peak of pending events)
	return &event{}
}

// recycle returns a fully consumed event to the freelist, clearing it so
// the retained fn closure and proc become collectable immediately.
func (k *Kernel) recycle(ev *event) {
	*ev = event{}
	k.free = append(k.free, ev)
}

// After schedules fn to run d from now. Negative d is clamped to zero.
//
//lint:segqueue
func (k *Kernel) After(d time.Duration, fn func()) { k.At(k.now+d, fn) }

// AfterCross schedules fn to run d from now on kernel dst. It is the one
// sanctioned way to move work between bus-segment shards: under a parallel
// Coordinator the event is staged and committed at the next window barrier
// in canonical order, and d below the coordinator's lookahead is a
// violation of the conservative synchronization contract (it panics rather
// than silently reordering history). When dst is the calling kernel, or the
// kernel is not running under a Coordinator, this is exactly At(now+d, fn).
//
//lint:segqueue
func (k *Kernel) AfterCross(dst *Kernel, d time.Duration, fn func()) {
	if dst == k || k.par == nil {
		dst.At(k.now+d, fn)
		return
	}
	t := k.now + d
	// Clamp to the destination clock only in single-threaded phases: during
	// a window t >= winEnd > dst.now by the lookahead invariant, and reading
	// another shard's live clock would race.
	if !k.par.winActive && t < dst.now {
		t = dst.now
	}
	//lint:allow noalloc (cold: cross-shard staging is outside the sequential hot path)
	k.par.schedule(dst, t, fn, nil, true)
}

// Buffer defers fn to the next parallel window barrier, where it replays in
// the canonical (sequential-equivalent) commit order of the event that
// buffered it. Outside a parallel window — plain kernels, exclusive steps,
// setup code — fn runs immediately, which is already canonical order.
// Observer and trace emissions go through here so parallel runs produce
// byte-identical output streams.
func (k *Kernel) Buffer(fn func()) {
	if ps := k.par; ps != nil && ps.winActive && ps.curRec != nil {
		ps.curRec.emits = append(ps.curRec.emits, fn)
		return
	}
	fn()
}

// Gated runs fn under the coordinator's order gate: fn waits until every
// event that canonically precedes the current one (in any shard) has
// executed, then runs under a global mutex. Shared sequenced resources —
// the kernel RNG stream, the internetwork directory and DISCOVER caches —
// go through here so parallel runs consume and mutate them in exactly the
// sequential order. Outside a parallel window fn runs immediately.
func (k *Kernel) Gated(fn func()) {
	ps := k.par
	if ps == nil || !ps.winActive || ps.curRec == nil {
		fn()
		return
	}
	ps.c.gated(ps.shard, ps.curRec, fn)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// PeekNext reports the virtual time of the earliest pending event, if any.
// The real-socket backend's driver uses it to sleep exactly until the next
// transport timer would fire instead of polling the queue.
func (k *Kernel) PeekNext() (Time, bool) { return k.events.peekTime() }

// Run processes events until none remain, Stop is called, or the event limit
// is exceeded. If processes remain suspended when the event queue drains,
// Run returns ErrStalled so deadlocks in client programs surface as errors.
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil is Run bounded by an absolute virtual deadline; a negative
// deadline means "no deadline". Events at exactly the deadline still run.
func (k *Kernel) RunUntil(deadline Time) error {
	if k.par != nil {
		panic("sim: RunUntil on a coordinator-managed kernel; drive the Coordinator instead")
	}
	var processed uint64
	for k.events.len() > 0 && !k.stopped {
		if deadline >= 0 {
			if next, ok := k.events.peekTime(); ok && next > deadline {
				k.now = deadline
				return nil
			}
		}
		ev := k.events.pop()
		k.now = ev.t
		processed++
		if k.limit > 0 && processed > k.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", k.limit, k.now)
		}
		switch {
		case ev.proc != nil:
			if ev.proc.finished {
				k.recycle(ev)
				continue // process died before its wakeup fired
			}
			proc := ev.proc
			k.recycle(ev) // the resumed process may schedule new events
			k.current = proc
			proc.resume <- struct{}{}
			<-k.yield
			k.current = nil
		default:
			fn := ev.fn
			k.recycle(ev) // fn may schedule new events
			fn()
		}
	}
	if deadline >= 0 {
		// Bounded runs treat idle (e.g. server processes parked waiting
		// for requests that never come) as normal completion.
		if !k.stopped && k.now < deadline {
			k.now = deadline
		}
		return nil
	}
	if k.procs > 0 && !k.stopped {
		return ErrStalled
	}
	return nil
}

// Proc is a cooperative simulation process backed by a goroutine. Exactly
// one Proc (or the scheduler) runs at any instant; a Proc relinquishes
// control only inside Hold, Suspend, or by returning.
type Proc struct {
	k        *Kernel
	name     string
	resume   chan struct{}
	finished bool
	waiting  bool // suspended, awaiting Resume
}

// Spawn creates a process executing fn and schedules it to start at the
// current virtual time. fn runs entirely under the scheduler's control.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	//lint:allow noalloc (counted: one process record and resume channel per spawned process)
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs++
	//lint:allow noalloc (counted: one goroutine and body closure per spawned process)
	go func() {
		<-p.resume
		//lint:allow noalloc (indirect: the process body; hot-path bodies are scanned at their creation sites)
		fn(p)
		p.finished = true
		k.procs--
		k.yield <- struct{}{}
	}()
	k.scheduleProc(p, k.now)
	return p
}

func (k *Kernel) scheduleProc(p *Proc, t Time) {
	if k.par != nil {
		//lint:allow noalloc (cold: parallel-mode scheduling is outside the sequential hot path)
		k.par.schedule(k, t, nil, p, false)
		return
	}
	k.seq++
	ev := k.newEvent()
	ev.t, ev.seq, ev.proc = t, k.seq, p
	k.events.push(ev)
}

// Name reports the name given at Spawn, for traces and error messages.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning simulation kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time (convenience for p.Kernel().Now()).
func (p *Proc) Now() Time { return p.k.now }

// Hold blocks the process for virtual duration d. Negative d holds for 0,
// which still yields to other same-time events (a cooperative "yield").
func (p *Proc) Hold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.scheduleProc(p, p.k.now+d)
	p.yieldAndWait()
}

// Suspend blocks the process until another party calls Resume. Calling
// Resume before Suspend is an error in the caller's logic and will deadlock
// the simulation (surfaced by Run as ErrStalled).
func (p *Proc) Suspend() {
	p.waiting = true
	p.yieldAndWait()
	p.waiting = false
}

// Resume schedules a Suspend-ed process to continue at the current virtual
// time. It must be called from scheduler context or from another process.
// Resuming a process that is not suspended panics: it indicates lost-wakeup
// bookkeeping in the caller.
func (p *Proc) Resume() {
	if p.finished {
		return
	}
	if !p.waiting {
		//lint:allow noalloc (cold: lost-wakeup bookkeeping panic)
		panic(fmt.Sprintf("sim: Resume of %q which is not suspended", p.name))
	}
	p.waiting = false // consume the wakeup; a second Resume before it runs panics
	p.k.scheduleProc(p, p.k.now)
}

// Suspended reports whether the process is currently blocked in Suspend.
func (p *Proc) Suspended() bool { return p.waiting }

// Finished reports whether the process function has returned.
func (p *Proc) Finished() bool { return p.finished }

func (p *Proc) yieldAndWait() {
	p.k.yield <- struct{}{}
	<-p.resume
}

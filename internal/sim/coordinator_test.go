package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// The differential harness below runs one workload twice — on a plain
// sequential kernel (virtual shards, cross-shard hops become plain After
// calls) and on a parallel Coordinator — and requires the emission streams
// to be byte-identical. The workload mixes recursive event fan-out,
// same-time ties, RNG draws, cross-shard hops at the lookahead bound, and
// cooperative processes, so it exercises the order gate, the staging
// discipline and the barrier merge together.

const (
	tcShards    = 4
	tcLookahead = 2 * time.Millisecond
)

// testEnv abstracts "schedule and emit on shard s" so the same workload
// drives both schedulers.
type testEnv struct {
	emit  func(string)
	local func(d Time, fn func())
	cross func(dst int, d Time, fn func())
	rng   func(n int64) int64
	now   func() Time
}

func fanout(env func(shard int) testEnv, shard, depth, id int) func() {
	return func() {
		e := env(shard)
		r := e.rng(1000)
		e.emit(fmt.Sprintf("%v s%d d%d id%d r%d", e.now(), shard, depth, id, r))
		if depth >= 4 {
			return
		}
		n := (id+depth)%3 + 1
		for j := 0; j < n; j++ {
			cid := id*8 + j + 1
			if j == n-1 && (id+j)%2 == 0 {
				dst := (shard + 1) % tcShards
				e.cross(dst, tcLookahead+Time(j)*100*time.Microsecond,
					fanout(env, dst, depth+1, cid))
			} else {
				// Delta 0 at j==0 covers same-time self-scheduling ties.
				e.local(Time(j)*50*time.Microsecond,
					fanout(env, shard, depth+1, cid))
			}
		}
	}
}

func seqEnv(k *Kernel, log *[]string) func(int) testEnv {
	return func(int) testEnv {
		return testEnv{
			emit:  func(s string) { k.Buffer(func() { *log = append(*log, s) }) },
			local: func(d Time, fn func()) { k.After(d, fn) },
			// AfterCross on a coordinator-free kernel must be After exactly.
			cross: func(_ int, d Time, fn func()) { k.AfterCross(k, d, fn) },
			rng:   func(n int64) int64 { return k.Rand().Int63n(n) },
			now:   k.Now,
		}
	}
}

func parEnv(c *Coordinator, log *[]string) func(int) testEnv {
	return func(shard int) testEnv {
		k := c.Shard(shard)
		return testEnv{
			emit:  func(s string) { k.Buffer(func() { *log = append(*log, s) }) },
			local: func(d Time, fn func()) { k.After(d, fn) },
			cross: func(dst int, d Time, fn func()) { k.AfterCross(c.Shard(dst), d, fn) },
			rng:   func(n int64) int64 { return k.Rand().Int63n(n) },
			now:   k.Now,
		}
	}
}

func runSeqFanout(seed int64, deadline Time) []string {
	k := New(seed)
	var log []string
	env := seqEnv(k, &log)
	for s := 0; s < tcShards; s++ {
		s := s
		k.At(Time(s+1)*200*time.Microsecond, fanout(env, s, 0, s+1))
	}
	if err := k.RunUntil(deadline); err != nil {
		panic(err)
	}
	return log
}

func runParFanout(seed int64, workers int, shuffleSeed int64, deadline Time) ([]string, ParStats) {
	c := NewCoordinator(seed, tcShards, workers, tcLookahead)
	c.SetShuffle(shuffleSeed)
	var log []string
	env := parEnv(c, &log)
	for s := 0; s < tcShards; s++ {
		s := s
		c.Shard(s).At(Time(s+1)*200*time.Microsecond, fanout(env, s, 0, s+1))
	}
	if err := c.RunUntil(deadline); err != nil {
		panic(err)
	}
	return log, c.Stats()
}

func TestCoordinatorMatchesSequentialFanout(t *testing.T) {
	const deadline = 100 * time.Millisecond
	want := runSeqFanout(7, deadline)
	if len(want) == 0 {
		t.Fatal("workload emitted nothing")
	}
	for _, workers := range []int{1, 2, 8} {
		for _, shuffle := range []int64{0, 1, 42} {
			got, st := runParFanout(7, workers, shuffle, deadline)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("workers=%d shuffle=%d: parallel emission stream diverged\nseq %d lines, par %d lines",
					workers, shuffle, len(want), len(got))
			}
			if st.Windows == 0 || st.Committed == 0 {
				t.Fatalf("workers=%d: no parallel windows ran (stats %+v)", workers, st)
			}
			if st.Staged == 0 {
				t.Fatalf("workers=%d: no cross-window staging happened; workload too weak", workers)
			}
			if st.GatedOps == 0 {
				t.Fatalf("workers=%d: no gated RNG draws happened; workload too weak", workers)
			}
		}
	}
}

// TestCoordinatorShuffleFuzz is the fuzz-style commit-order race hunt: a
// single master seed derives a battery of shuffle seeds (seeded math/rand,
// never raw randomness — the failure set must be replayable), each of which
// perturbs the order in which worker goroutines pick up shard windows. Any
// commit-order dependence in the barrier merge or the order gate shows up
// as a diverged emission stream; the failing shuffle seed is printed so the
// race reproduces with -run and a one-line local edit.
func TestCoordinatorShuffleFuzz(t *testing.T) {
	const (
		deadline   = 100 * time.Millisecond
		masterSeed = 0x50DA
		rounds     = 20
	)
	want := runSeqFanout(masterSeed, deadline)
	if len(want) == 0 {
		t.Fatal("workload emitted nothing")
	}
	rng := rand.New(rand.NewSource(masterSeed))
	for i := 0; i < rounds; i++ {
		shuffle := rng.Int63()
		workers := 2 + rng.Intn(7) // 2..8: always genuinely concurrent
		got, st := runParFanout(masterSeed, workers, shuffle, deadline)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("round %d (workers=%d shuffle=%d): commit order leaked into the emission stream",
				i, workers, shuffle)
		}
		if st.Windows == 0 || st.Staged == 0 {
			t.Fatalf("round %d: workload degenerated (stats %+v)", i, st)
		}
	}
}

func TestCoordinatorMatchesSequentialProcs(t *testing.T) {
	const deadline = 50 * time.Millisecond
	holds := []Time{0, 300 * time.Microsecond, tcLookahead, 5 * time.Millisecond}
	run := func(spawn func(shard int, name string, fn func(*Proc)), env func(int) testEnv, drive func() error) []string {
		for s := 0; s < tcShards; s++ {
			s := s
			e := env(s)
			spawn(s, fmt.Sprintf("w%d", s), func(p *Proc) {
				for i := 0; i < 8; i++ {
					r := e.rng(100)
					e.emit(fmt.Sprintf("%v proc s%d i%d r%d", e.now(), s, i, r))
					p.Hold(holds[(s+i)%len(holds)])
				}
			})
		}
		if err := drive(); err != nil {
			panic(err)
		}
		return nil
	}
	var seqLog []string
	k := New(3)
	run(func(_ int, name string, fn func(*Proc)) { k.Spawn(name, fn) },
		seqEnv(k, &seqLog), func() error { return k.RunUntil(deadline) })

	for _, workers := range []int{2, 8} {
		var parLog []string
		c := NewCoordinator(3, tcShards, workers, tcLookahead)
		run(func(shard int, name string, fn func(*Proc)) { c.Shard(shard).Spawn(name, fn) },
			parEnv(c, &parLog), func() error { return c.RunUntil(deadline) })
		if strings.Join(parLog, "\n") != strings.Join(seqLog, "\n") {
			t.Fatalf("workers=%d: process emission stream diverged", workers)
		}
	}
	if len(seqLog) == 0 {
		t.Fatal("workload emitted nothing")
	}
}

// TestCoordinatorExclusiveGlobalEvents pins the single-threaded interleave:
// global-kernel events sharing a timestamp with shard events must commit in
// exactly the sequential tie-break order.
func TestCoordinatorExclusiveGlobalEvents(t *testing.T) {
	const deadline = 20 * time.Millisecond
	at := []Time{1 * time.Millisecond, 4 * time.Millisecond, 9 * time.Millisecond}

	var seqLog []string
	k := New(11)
	env := seqEnv(k, &seqLog)
	for s := 0; s < tcShards; s++ {
		s := s
		e := env(s)
		for i, tt := range at {
			s, i := s, i
			k.At(tt, func() {
				e.emit(fmt.Sprintf("%v shard s%d i%d r%d", e.now(), s, i, e.rng(50)))
			})
		}
	}
	for i, tt := range at {
		i := i
		k.At(tt, func() { seqLog = append(seqLog, fmt.Sprintf("%v global i%d r%d", k.Now(), i, k.Rand().Int63n(50))) })
	}
	if err := k.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}

	var parLog []string
	c := NewCoordinator(11, tcShards, 4, tcLookahead)
	penv := parEnv(c, &parLog)
	for s := 0; s < tcShards; s++ {
		s := s
		e := penv(s)
		for i, tt := range at {
			s, i := s, i
			c.Shard(s).At(tt, func() {
				e.emit(fmt.Sprintf("%v shard s%d i%d r%d", e.now(), s, i, e.rng(50)))
			})
		}
	}
	g := c.Global()
	for i, tt := range at {
		i := i
		g.At(tt, func() { parLog = append(parLog, fmt.Sprintf("%v global i%d r%d", g.Now(), i, g.Rand().Int63n(50))) })
	}
	if err := c.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	if strings.Join(parLog, "\n") != strings.Join(seqLog, "\n") {
		t.Fatalf("global/shard tie interleave diverged:\nseq:\n%s\npar:\n%s",
			strings.Join(seqLog, "\n"), strings.Join(parLog, "\n"))
	}
	if st := c.Stats(); st.ExclusiveSteps == 0 {
		t.Fatalf("expected exclusive steps, got stats %+v", st)
	}
}

func TestCoordinatorCrossBelowLookaheadPanics(t *testing.T) {
	c := NewCoordinator(1, 2, 2, tcLookahead)
	c.Shard(0).At(time.Millisecond, func() {
		c.Shard(0).AfterCross(c.Shard(1), tcLookahead/2, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a lookahead-violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "inside the lookahead window") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = c.RunUntil(10 * time.Millisecond)
}

// TestCoordinatorAccessorsAndLimits covers the surface plumbing: the shard
// accessors agree, the event limit aborts a runaway parallel run exactly
// like the sequential kernel's, and the gated RNG source serves the whole
// rand.Source64 interface (Uint64 draws, reseeding) through the gate.
func TestCoordinatorAccessorsAndLimits(t *testing.T) {
	c := NewCoordinator(5, tcShards, 2, tcLookahead)
	ks := c.Shards()
	if len(ks) != tcShards {
		t.Fatalf("Shards() returned %d kernels, want %d", len(ks), tcShards)
	}
	for i := range ks {
		if ks[i] != c.Shard(i) {
			t.Fatalf("Shards()[%d] != Shard(%d)", i, i)
		}
	}
	if c.Global() == nil {
		t.Fatal("no global kernel")
	}

	// All shards share one run-level source: interleaved draws must advance
	// it (no two shards may ever see private streams), and reseeding through
	// one shard reproduces the draw.
	c.Shard(1).Rand().Seed(99)
	first := c.Shard(0).Rand().Uint64()
	if second := c.Shard(1).Rand().Uint64(); second == first {
		t.Fatalf("consecutive draws identical (%d); shards are not sharing the source", first)
	}
	c.Shard(1).Rand().Seed(99)
	if again := c.Shard(1).Rand().Uint64(); again != first {
		t.Fatalf("reseeded draw = %d, want %d", again, first)
	}

	// A runaway schedule trips the event limit mid-window.
	c2 := NewCoordinator(5, tcShards, 2, tcLookahead)
	c2.SetEventLimit(3)
	var tick func()
	tick = func() { c2.Shard(0).After(100*time.Microsecond, tick) }
	c2.Shard(0).After(0, tick)
	err := c2.RunUntil(time.Second)
	if err == nil || !strings.Contains(err.Error(), "event limit") {
		t.Fatalf("got %v, want event-limit error", err)
	}

	// The aborted run left shard clocks diverged (shard 0 ran, shard 1
	// never did) — exactly the single-threaded phase where AfterCross must
	// clamp a stale-clock schedule up to the destination's present instead
	// of scheduling into its past.
	if c2.Shard(1).Now() >= c2.Shard(0).Now() {
		t.Fatalf("clocks did not diverge: shard1 %v, shard0 %v", c2.Shard(1).Now(), c2.Shard(0).Now())
	}
	fired := false
	c2.Shard(1).AfterCross(c2.Shard(0), 0, func() { fired = true })
	c2.Shard(1).AfterCross(c2.Shard(1), 0, func() {}) // self-cross: plain At
	c2.SetEventLimit(0)
	if err := c2.RunUntil(c2.Shard(0).Now() + time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped cross-shard event never ran")
	}
}

// TestCoordinatorRunUnboundedAndStop covers Kernel.Run parity: an
// unbounded run drains to completion (no deadline, no stall), global
// processes resume inside exclusive steps, and a Stop() from inside an
// event ends the run early exactly like the sequential kernel.
func TestCoordinatorRunUnboundedAndStop(t *testing.T) {
	c := NewCoordinator(3, 2, 2, tcLookahead)
	steps := 0
	c.Global().Spawn("pacer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Hold(tcLookahead / 2)
			steps++
		}
	})
	c.Shard(0).After(time.Millisecond, func() {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("global process made %d steps, want 3", steps)
	}

	c2 := NewCoordinator(3, 2, 2, tcLookahead)
	ran := 0
	c2.Shard(0).After(time.Millisecond, func() { ran++; c2.Shard(0).Stop() })
	c2.Shard(1).After(time.Hour, func() { ran++ })
	if err := c2.RunUntil(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("%d events ran after Stop, want 1", ran)
	}
}

func TestCoordinatorIdleAndStallSemantics(t *testing.T) {
	// Bounded idle completes normally and parks the clocks at the deadline.
	c := NewCoordinator(1, 2, 2, tcLookahead)
	c.Shard(0).At(time.Millisecond, func() {})
	if err := c.RunUntil(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if now := c.Shard(i).Now(); now != 30*time.Millisecond {
			t.Fatalf("shard %d clock = %v, want deadline", i, now)
		}
	}
	// Unbounded with a suspended process stalls, like the sequential kernel.
	c2 := NewCoordinator(1, 2, 2, tcLookahead)
	c2.Shard(1).Spawn("stuck", func(p *Proc) { p.Suspend() })
	if err := c2.Run(); err != ErrStalled {
		t.Fatalf("got %v, want ErrStalled", err)
	}
}

package sim

import (
	"container/heap"
	"math/bits"
)

// eventQueue is the scheduler's pending-event store. Two implementations
// exist: heapQueue (the original binary heap, kept as the reference ordering
// for differential tests) and wheel (a hierarchical timer wheel, the
// default). Both must yield the exact same total order — (t, seq) ascending —
// or traces stop being reproducible across scheduler implementations.
type eventQueue interface {
	push(*event)
	pop() *event
	peek() *event // head event without removing it; nil when empty
	peekTime() (Time, bool)
	len() int
}

// heapQueue adapts eventHeap to the eventQueue interface. O(log n) insert
// and pop; the reference implementation.
type heapQueue struct{ h eventHeap }

//lint:allow noalloc (amortized: heap storage grows to the peak pending-event count, then stabilizes)
func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) pop() *event { return heap.Pop(&q.h).(*event) }

func (q *heapQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) peekTime() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].t, true
}

func (q *heapQueue) len() int { return len(q.h) }

const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits // 256 slots per level
	wheelLevels   = 4
	// wheelBaseShift sets the level-0 slot width to 2^16 ns ≈ 65.5µs: finer
	// than the bus frame-transmission quantum, so a slot rarely holds more
	// than a handful of events, while 4 levels of 256 slots still span
	// 2^48 ns ≈ 78 hours of virtual time before the overflow list is needed.
	wheelBaseShift = 16

	wheelOccWords = wheelSlots / 64
)

// wheelShift is the bit position where level l's slot index starts.
func wheelShift(l int) uint { return uint(wheelBaseShift + l*wheelSlotBits) }

// wheel is a hierarchical timer wheel (calendar queue). Events land in the
// lowest level whose slot resolution separates them from the current time;
// as the clock reaches a higher-level slot its events cascade down. The slot
// currently being drained is kept as a small (t, seq) min-heap ("bucket"),
// which preserves the binary heap's exact total order — including FIFO
// tie-breaks at equal timestamps — while making the common insert (a short
// delta landing in level 0) an O(1) slice append instead of an O(log n)
// sift. Each event cascades at most wheelLevels-1 times, so cost stays O(1)
// amortized regardless of how many events are pending.
type wheel struct {
	cur       Time // start of the level-0 slot currently draining
	bucketEnd Time // exclusive end of that slot; pushes below it join the bucket
	bucket    eventHeap
	levels    [wheelLevels][wheelSlots][]*event
	occ       [wheelLevels][wheelOccWords]uint64 // per-level slot occupancy bitmaps
	overflow  []*event                           // events beyond the top level's span
	size      int
}

func newWheel() *wheel { return &wheel{} }

func (w *wheel) len() int { return w.size }

func (w *wheel) push(ev *event) {
	w.size++
	if ev.t < w.bucketEnd {
		//lint:allow noalloc (amortized: bucket storage grows to the slot's peak occupancy, then stabilizes)
		heap.Push(&w.bucket, ev)
		return
	}
	w.place(ev)
}

// place files ev into the lowest level that shares its parent slot with the
// current time. The kernel clamps event times to now, so ev.t >= w.cur and
// the chosen slot is never one the wheel has already drained.
func (w *wheel) place(ev *event) {
	for l := 0; l < wheelLevels; l++ {
		above := wheelShift(l + 1)
		if ev.t>>above == w.cur>>above {
			s := int(ev.t>>wheelShift(l)) & (wheelSlots - 1)
			//lint:allow noalloc (amortized: slot storage grows to its peak occupancy, then stabilizes)
			w.levels[l][s] = append(w.levels[l][s], ev)
			w.occ[l][s>>6] |= 1 << (uint(s) & 63)
			return
		}
	}
	//lint:allow noalloc (cold: overflow holds only events beyond 78 virtual hours out)
	w.overflow = append(w.overflow, ev)
}

// takeSlot removes and returns slot s of level l, clearing its occupancy bit.
func (w *wheel) takeSlot(l, s int) []*event {
	evs := w.levels[l][s]
	w.levels[l][s] = nil
	w.occ[l][s>>6] &^= 1 << (uint(s) & 63)
	return evs
}

// firstSlot finds the lowest-index occupied slot of level l. Occupied slots
// are always in the future relative to cur (drained slots are cleared, and
// place never files into the past), so within a level the lowest index is
// the earliest slot.
func (w *wheel) firstSlot(l int) (int, bool) {
	for wi, word := range w.occ[l] {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// refill advances the wheel to the next occupied level-0 slot and loads it
// into the bucket, cascading higher-level slots down as the clock crosses
// them. Reports false when no events are pending anywhere.
func (w *wheel) refill() bool {
	if w.size == 0 {
		return false
	}
	for {
		if s, ok := w.firstSlot(0); ok {
			evs := w.takeSlot(0, s)
			base := w.cur &^ (Time(1)<<wheelShift(1) - 1)
			start := base + Time(s)<<wheelShift(0)
			w.cur = start
			w.bucketEnd = start + Time(1)<<wheelShift(0)
			w.bucket = append(w.bucket[:0], evs...)
			heap.Init(&w.bucket)
			return true
		}
		if w.cascade() {
			continue
		}
		// Every level is empty; the remaining events sit past the top
		// level's span. Jump the clock to the earliest of them and re-file:
		// at least that one now lands in a level, so progress is guaranteed.
		min := w.overflow[0].t
		for _, ev := range w.overflow[1:] {
			if ev.t < min {
				min = ev.t
			}
		}
		w.cur = min
		evs := w.overflow
		w.overflow = nil
		for _, ev := range evs {
			w.place(ev)
		}
	}
}

// cascade moves the earliest occupied slot of the lowest nonempty level
// 1..N down one level (its events re-place relative to the slot's start
// time). Reports false when levels 1..N are all empty.
func (w *wheel) cascade() bool {
	for l := 1; l < wheelLevels; l++ {
		s, ok := w.firstSlot(l)
		if !ok {
			continue
		}
		evs := w.takeSlot(l, s)
		base := w.cur &^ (Time(1)<<wheelShift(l+1) - 1)
		w.cur = base + Time(s)<<wheelShift(l)
		for _, ev := range evs {
			w.place(ev)
		}
		return true
	}
	return false
}

func (w *wheel) pop() *event {
	if w.bucket.Len() == 0 && !w.refill() {
		return nil
	}
	w.size--
	return heap.Pop(&w.bucket).(*event)
}

// peekTime reports the earliest pending event time. The bucket always holds
// the global minimum: every event still filed in a level or the overflow
// list is at or past bucketEnd.
func (w *wheel) peekTime() (Time, bool) {
	if w.bucket.Len() == 0 && !w.refill() {
		return 0, false
	}
	return w.bucket[0].t, true
}

// peek returns the earliest pending event without removing it.
func (w *wheel) peek() *event {
	if w.bucket.Len() == 0 && !w.refill() {
		return nil
	}
	return w.bucket[0]
}

package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// drain pops a queue to exhaustion and returns the (t, seq) order.
func drain(q eventQueue) [][2]uint64 {
	var out [][2]uint64
	for q.len() > 0 {
		ev := q.pop()
		out = append(out, [2]uint64{uint64(ev.t), ev.seq})
	}
	return out
}

func sameOrder(t *testing.T, want, got [][2]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length mismatch: heap %d, wheel %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("divergence at pop %d: heap (t=%d, seq=%d), wheel (t=%d, seq=%d)",
				i, want[i][0], want[i][1], got[i][0], got[i][1])
		}
	}
}

// TestWheelVsHeapDifferential is TestHeapOrderingProperty ported to a
// differential harness: random insertion orders go into both the reference
// heap and the timer wheel, and the two must pop the exact same (time, seq)
// sequence — including FIFO tie-breaks at equal timestamps. peek (the
// parallel coordinator's window-head probe) must agree with the next pop
// on both queues, without consuming it.
func TestWheelVsHeapDifferential(t *testing.T) {
	f := func(times []uint16) bool {
		hq, wq := &heapQueue{}, newWheel()
		if hq.peek() != nil || wq.peek() != nil {
			return false
		}
		for i, v := range times {
			tm := Time(v) * time.Microsecond
			hq.push(&event{t: tm, seq: uint64(i)})
			wq.push(&event{t: tm, seq: uint64(i)})
		}
		if len(times) > 0 {
			hp, wp := hq.peek(), wq.peek()
			if hp == nil || wp == nil || hp.t != wp.t || hp.seq != wp.seq {
				return false
			}
			if hq.len() != len(times) || wq.len() != len(times) {
				return false // peek consumed an event
			}
		}
		h, w := drain(hq), drain(wq)
		if len(h) != len(w) {
			return false
		}
		for i := range h {
			if h[i] != w[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWheelVsHeapInterleaved drives both queues through the same random
// interleaving of pushes and pops, mimicking the kernel's discipline (new
// events are never scheduled before the last popped time). The wide delta
// distribution exercises every wheel level and the overflow list.
func TestWheelVsHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	hq, wq := &heapQueue{}, newWheel()
	var now Time
	var seq uint64
	for op := 0; op < 20000; op++ {
		if hq.len() != wq.len() {
			t.Fatalf("op %d: size mismatch heap=%d wheel=%d", op, hq.len(), wq.len())
		}
		if hq.len() == 0 || rng.Intn(3) != 0 {
			// Deltas span sub-slot (ns) to beyond the top level (days).
			delta := Time(rng.Int63n(int64(1) << uint(4+rng.Intn(44))))
			if rng.Intn(8) == 0 {
				delta = 0 // same-instant scheduling is the common kernel case
			}
			seq++
			hq.push(&event{t: now + delta, seq: seq})
			wq.push(&event{t: now + delta, seq: seq})
			continue
		}
		he, we := hq.pop(), wq.pop()
		if he.t != we.t || he.seq != we.seq {
			t.Fatalf("op %d: heap popped (t=%v, seq=%d), wheel popped (t=%v, seq=%d)",
				op, he.t, he.seq, we.t, we.seq)
		}
		if ht, hok := hq.peekTime(); hok {
			wt, wok := wq.peekTime()
			if !wok || wt != ht {
				t.Fatalf("op %d: peek mismatch heap=(%v,%v) wheel=(%v,%v)", op, ht, hok, wt, wok)
			}
		}
		now = he.t
	}
	sameOrder(t, drain(hq), drain(wq))
}

// TestWheelPushBelowCursorAfterPeek pins the RunUntil boundary case: a peek
// past the deadline advances the wheel's cursor toward a far-future event,
// and a later push lands before that cursor. The push must join the loaded
// bucket so ordering is preserved.
func TestWheelPushBelowCursorAfterPeek(t *testing.T) {
	w := newWheel()
	w.push(&event{t: time.Hour, seq: 1})
	if tm, ok := w.peekTime(); !ok || tm != time.Hour {
		t.Fatalf("peekTime = (%v, %v), want (1h, true)", tm, ok)
	}
	// The kernel clamps to now (well before the hour mark); this push lands
	// below the wheel's advanced cursor.
	w.push(&event{t: time.Millisecond, seq: 2})
	w.push(&event{t: time.Hour, seq: 3})
	got := drain(w)
	want := [][2]uint64{
		{uint64(time.Millisecond), 2},
		{uint64(time.Hour), 1},
		{uint64(time.Hour), 3},
	}
	sameOrder(t, want, got)
}

// TestKernelWheelVsHeapTrace runs the same randomized workload (timers that
// re-arm, processes that hold and spawn) on a wheel-backed and a heap-backed
// kernel and requires identical execution traces.
func TestKernelWheelVsHeapTrace(t *testing.T) {
	run := func(k *Kernel) []Time {
		var trace []Time
		tick := func(d time.Duration) {
			var fn func()
			n := 0
			fn = func() {
				trace = append(trace, k.Now())
				if n++; n < 50 {
					k.After(d+Time(k.Rand().Int63n(int64(5*time.Millisecond))), fn)
				}
			}
			k.After(d, fn)
		}
		tick(17 * time.Microsecond)
		tick(3 * time.Millisecond)
		tick(900 * time.Millisecond) // crosses level-2 slots
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 30; j++ {
					p.Hold(time.Duration(i*7+j) * 250 * time.Microsecond)
					trace = append(trace, k.Now())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	wheelTrace := run(New(42))
	heapTrace := run(newWithQueue(42, &heapQueue{}))
	if len(wheelTrace) != len(heapTrace) {
		t.Fatalf("trace length: wheel %d, heap %d", len(wheelTrace), len(heapTrace))
	}
	for i := range wheelTrace {
		if wheelTrace[i] != heapTrace[i] {
			t.Fatalf("traces diverge at step %d: wheel %v, heap %v", i, wheelTrace[i], heapTrace[i])
		}
	}
}

// TestKernelRunUntilStepsMatchHeap steps both kernels through repeated
// RunUntil windows with fresh events scheduled between windows — the pattern
// the sweep engine uses, and the one that pushes events below the wheel
// cursor after a deadline peek.
func TestKernelRunUntilStepsMatchHeap(t *testing.T) {
	run := func(k *Kernel) []Time {
		var trace []Time
		k.After(2*time.Second, func() { trace = append(trace, k.Now()) }) // far future
		for step := 1; step <= 20; step++ {
			for i := 0; i < 5; i++ {
				d := time.Duration(i*i) * 13 * time.Microsecond
				k.After(d, func() { trace = append(trace, k.Now()) })
			}
			if err := k.RunUntil(Time(step) * 10 * time.Millisecond); err != nil {
				t.Fatalf("RunUntil: %v", err)
			}
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	wheelTrace := run(New(7))
	heapTrace := run(newWithQueue(7, &heapQueue{}))
	if len(wheelTrace) != len(heapTrace) {
		t.Fatalf("trace length: wheel %d, heap %d", len(wheelTrace), len(heapTrace))
	}
	for i := range wheelTrace {
		if wheelTrace[i] != heapTrace[i] {
			t.Fatalf("traces diverge at step %d: wheel %v, heap %v", i, wheelTrace[i], heapTrace[i])
		}
	}
}

// TestWheelOverflowAndCascade drives the deep paths: events past the top
// level's 2^48ns span land on the overflow list, and draining them forces
// the clock-jump refill plus multi-level cascades. The heap is the oracle.
func TestWheelOverflowAndCascade(t *testing.T) {
	hq := &heapQueue{}
	wq := newWheel()
	deltas := []Time{
		0,
		1 << wheelBaseShift,                     // level 0 boundary
		1 << wheelShift(1),                      // level 1
		1 << wheelShift(2),                      // level 2
		1 << wheelShift(3),                      // level 3
		1<<wheelShift(4) - 1,                    // last representable before overflow
		1 << wheelShift(4),                      // first overflow
		3 << wheelShift(4),                      // deep overflow
		5<<wheelShift(4) + 12345,                // deep overflow, unaligned
		1<<wheelShift(4) + 7<<wheelShift(2) + 3, // overflow that re-files mid-levels
	}
	for i, d := range deltas {
		hq.push(&event{t: d, seq: uint64(i)})
		wq.push(&event{t: d, seq: uint64(i)})
	}
	if got, want := wq.len(), hq.len(); got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	for hq.len() > 0 {
		ht, _ := hq.peekTime()
		wt, ok := wq.peekTime()
		if !ok || ht != wt {
			t.Fatalf("peek diverged: heap %v, wheel %v (ok=%v)", ht, wt, ok)
		}
		he, we := hq.pop(), wq.pop()
		if he.t != we.t || he.seq != we.seq {
			t.Fatalf("pop diverged: heap (%v,%d), wheel (%v,%d)", he.t, he.seq, we.t, we.seq)
		}
	}
	if ev := wq.pop(); ev != nil {
		t.Fatalf("pop of empty wheel returned %+v", ev)
	}
	if _, ok := wq.peekTime(); ok {
		t.Fatal("peek of empty wheel reported an event")
	}
}

// TestProcIntrospection covers the small Proc accessors against a live
// kernel: Name, Kernel, Suspended around a Suspend/Resume pair.
func TestProcIntrospection(t *testing.T) {
	k := New(1)
	var inner *Proc
	var sawSuspended bool
	k.Spawn("watched", func(p *Proc) {
		if p.Name() != "watched" || p.Kernel() != k {
			t.Errorf("accessors wrong: name %q", p.Name())
		}
		inner = p
		p.Suspend()
	})
	k.At(Time(time.Millisecond), func() {
		sawSuspended = inner.Suspended()
		inner.Resume()
	})
	if err := k.RunUntil(Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !sawSuspended {
		t.Error("Suspended() false while the proc was parked in Suspend")
	}
	if inner.Suspended() {
		t.Error("Suspended() true after Resume")
	}
}

package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCallbackOrdering(t *testing.T) {
	k := New(1)
	var got []int
	k.At(30*time.Millisecond, func() { got = append(got, 3) })
	k.At(10*time.Millisecond, func() { got = append(got, 1) })
	k.At(20*time.Millisecond, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestPastEventClampedToNow(t *testing.T) {
	k := New(1)
	fired := false
	k.At(10*time.Millisecond, func() {
		k.At(1*time.Millisecond, func() { // in the past; must clamp
			fired = true
			if k.Now() != 10*time.Millisecond {
				t.Errorf("past event ran at %v, want clamp to 10ms", k.Now())
			}
		})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("clamped event never fired")
	}
}

func TestProcHold(t *testing.T) {
	k := New(1)
	var trace []Time
	k.Spawn("holder", func(p *Proc) {
		trace = append(trace, p.Now())
		p.Hold(7 * time.Millisecond)
		trace = append(trace, p.Now())
		p.Hold(3 * time.Millisecond)
		trace = append(trace, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{0, 7 * time.Millisecond, 10 * time.Millisecond}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSuspendResume(t *testing.T) {
	k := New(1)
	var woke Time
	p := k.Spawn("sleeper", func(p *Proc) {
		p.Suspend()
		woke = p.Now()
	})
	k.At(42*time.Millisecond, func() { p.Resume() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
	if !p.Finished() {
		t.Fatal("process did not finish")
	}
}

func TestStalledDetection(t *testing.T) {
	k := New(1)
	k.Spawn("stuck", func(p *Proc) { p.Suspend() })
	if err := k.Run(); err != ErrStalled {
		t.Fatalf("Run = %v, want ErrStalled", err)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	fired := 0
	k.At(10*time.Millisecond, func() { fired++ })
	k.At(20*time.Millisecond, func() { fired++ })
	if err := k.RunUntil(15 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 15*time.Millisecond {
		t.Fatalf("Now = %v, want 15ms", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	k := New(1)
	fired := false
	k.At(15*time.Millisecond, func() { fired = true })
	if err := k.RunUntil(15 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !fired {
		t.Fatal("event at exact deadline must fire")
	}
}

func TestEventLimit(t *testing.T) {
	k := New(1)
	k.SetEventLimit(100)
	var loop func()
	loop = func() { k.After(time.Millisecond, loop) }
	loop()
	if err := k.Run(); err == nil {
		t.Fatal("Run must fail when the event limit is exceeded")
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	fired := 0
	k.At(1*time.Millisecond, func() { fired++; k.Stop() })
	k.At(2*time.Millisecond, func() { fired++ })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop must halt the loop)", fired)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Hold(10 * time.Millisecond)
		order = append(order, "a10")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Hold(5 * time.Millisecond)
		order = append(order, "b5")
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a0", "b0", "b5", "a10"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(99)
		var out []int64
		for i := 0; i < 5; i++ {
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Hold(time.Duration(k.Rand().Intn(1000)) * time.Microsecond)
					out = append(out, int64(p.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResumeOfFinishedIsNoop(t *testing.T) {
	k := New(1)
	p := k.Spawn("short", func(p *Proc) {})
	k.At(time.Millisecond, func() { p.Resume() }) // after it finished
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestHeapOrderingProperty checks the event heap invariant with random
// insertion orders: pops must come out sorted by (time, seq).
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var h eventHeap
		for i, v := range times {
			heap.Push(&h, &event{t: Time(v) * time.Microsecond, seq: uint64(i)})
		}
		var last *event
		for h.Len() > 0 {
			ev := heap.Pop(&h).(*event)
			if last != nil {
				if ev.t < last.t || (ev.t == last.t && ev.seq < last.seq) {
					return false
				}
			}
			last = ev
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := New(1)
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Hold(time.Millisecond)
		k.Spawn("child", func(c *Proc) {
			c.Hold(time.Millisecond)
			childRan = true
		})
		p.Hold(5 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child spawned from a process never ran")
	}
}

func TestCurrentIdentifiesRunningProc(t *testing.T) {
	k := New(1)
	if k.Current() != nil {
		t.Fatal("Current non-nil before Run")
	}
	var fromCallback, insideA, insideB *Proc
	var a, b *Proc
	a = k.Spawn("a", func(p *Proc) {
		insideA = k.Current()
		p.Hold(time.Millisecond)
		if k.Current() != p {
			t.Error("Current wrong after Hold resume")
		}
	})
	b = k.Spawn("b", func(p *Proc) {
		insideB = k.Current()
	})
	k.At(2*time.Millisecond, func() { fromCallback = k.Current() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if insideA != a || insideB != b {
		t.Fatalf("Current inside procs: a=%v b=%v", insideA, insideB)
	}
	if fromCallback != nil {
		t.Fatal("Current non-nil in scheduler callback context")
	}
}

package sim

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]int32
		ParallelFor(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}
}

func TestParallelForZeroWork(t *testing.T) {
	called := false
	ParallelFor(4, 0, func(int) { called = true })
	ParallelFor(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called with no work")
	}
}

func TestParallelForSequentialWhenOneWorker(t *testing.T) {
	// workers <= 1 must not spawn goroutines: indexes arrive in order on
	// the caller's goroutine, so plain (unsynchronized) writes are safe.
	var order []int
	ParallelFor(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestParallelForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	var ran int32
	ParallelFor(4, 8, func(i int) {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			panic("boom-3")
		}
	})
	t.Fatal("unreachable: ParallelFor must re-panic")
}

func TestParallelForIndependentKernels(t *testing.T) {
	// The intended use: one isolated simulation per index, results merged
	// by index. Identical seeds must yield identical results regardless of
	// which worker ran them.
	const n = 16
	var got [n]Time
	ParallelFor(4, n, func(i int) {
		k := New(1)
		k.After(Time(i+1)*1000, func() {})
		if err := k.Run(); err != nil {
			t.Error(err)
			return
		}
		got[i] = k.Now()
	})
	for i, v := range got {
		if v != Time(i+1)*1000 {
			t.Fatalf("kernel %d ended at %v, want %v", i, v, Time(i+1)*1000)
		}
	}
}

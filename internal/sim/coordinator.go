// Conservative parallel intra-run execution across bus-segment shards.
//
// A Coordinator owns one Kernel per bus segment plus a "global" kernel for
// whole-network work (Network.At closures, gateway chaos). It alternates two
// regimes:
//
//   - Parallel windows. With L = the cross-segment lookahead (the
//     internetwork's ForwardDelay: every gateway-relayed frame is scheduled
//     at least L into the future), all events with t in [T0, min(T0+L, next
//     global event)) are intra-segment by construction, so each shard may
//     run its own slice of the window concurrently (Chandy–Misra–Bryant
//     conservative synchronization).
//   - Exclusive steps. Whenever the global kernel has an event at the
//     horizon T0, every event at exactly T0 — across all shards — runs
//     single-threaded in canonical order, because global events may touch
//     any shard's state.
//
// Determinism contract: a parallel run must be byte-identical to the
// sequential run — same trace bytes, same observer streams, same RNG draws.
// Three mechanisms deliver that:
//
//   - Canonical order records. Every scheduled event carries an execRec
//     whose key (t, parent position, call index) reproduces the sequential
//     scheduler's (t, seq) tie-break: among equal-t events, sequential seq
//     order equals schedule-call order, which is (parent's commit position,
//     index of the At call within the parent). One monotone counter issues
//     both root positions (events scheduled outside any event, in
//     single-threaded contexts) and commit stamps, so the two interleave
//     exactly as they would chronologically in a sequential run.
//   - The order gate. Globally sequenced resources — the run's single
//     random stream, the internetwork directory and DISCOVER caches — are
//     touched only via Kernel.Gated, which blocks until every canonically
//     earlier event in every other shard has executed, then runs under one
//     mutex. The canonically least pending event never blocks, so the gate
//     cannot deadlock.
//   - Barrier commit. During a window each shard logs its executed events
//     and buffers their observable emissions (Kernel.Buffer); events
//     scheduled at or past the window end — including same-shard ones —
//     are staged rather than enqueued. At the barrier the logs are merged
//     in canonical order, commit stamps assigned, emissions replayed, and
//     staged events inserted with freshly resolved keys. Between windows,
//     every pending event everywhere has a fully resolved key.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// execRec is an event's canonical-order record. Key fields (t, parent or
// pstamp, idx) are immutable after creation; stamp is written only in
// single-threaded coordinator phases (exclusive steps, barriers), so
// concurrent cmpRec readers during a window never race.
type execRec struct {
	t      Time
	parent *execRec // in-window scheduling parent; nil once resolved
	pstamp uint64   // parent position when resolved (root or stamped parent)
	idx    uint64   // index of the scheduling call within the parent
	stamp  uint64   // global commit position; 0 = not yet committed
	// nextIdx counts scheduling calls made while this event executes; only
	// the owning shard touches it.
	nextIdx uint64
	// emits holds observable emissions (trace lines, observer events)
	// buffered during window execution for canonical-order replay.
	emits []func()
}

// pos resolves the record's parent position: roots carry it directly, and a
// child's becomes known once its parent is stamped.
func (r *execRec) pos() (uint64, bool) {
	if r.parent == nil {
		return r.pstamp, true
	}
	if s := r.parent.stamp; s != 0 {
		return s, true
	}
	return 0, false
}

// cmpRec compares two records in canonical order: time first, then parent
// position, then call index. A resolved parent position always precedes an
// unresolved one at equal t — the stamp counter is monotone, so an
// unstamped parent's future position exceeds every position already issued.
// Distinct unstamped parents are compared recursively; parent chains are
// finite (rooted in resolved pre-window records), so recursion terminates.
func cmpRec(a, b *execRec) int {
	if a == b {
		return 0
	}
	if a.t != b.t {
		if a.t < b.t {
			return -1
		}
		return 1
	}
	apos, aok := a.pos()
	bpos, bok := b.pos()
	switch {
	case aok && bok:
		if apos != bpos {
			return cmpU64(apos, bpos)
		}
		return cmpU64(a.idx, b.idx)
	case aok:
		return -1
	case bok:
		return 1
	default:
		if a.parent == b.parent {
			return cmpU64(a.idx, b.idx)
		}
		return cmpRec(a.parent, b.parent)
	}
}

func cmpU64(a, b uint64) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// stagedEv is an event scheduled during a window whose commit must wait for
// the barrier: everything at or past the window end, and every cross-shard
// event.
type stagedEv struct {
	k    *Kernel
	rec  *execRec
	fn   func()
	proc *Proc
}

// parState links a kernel to its Coordinator. Fields below c/shard are
// owned by the shard's window goroutine while a window runs and by the
// coordinator between windows.
type parState struct {
	c         *Coordinator
	shard     int // index into c.shards; -1 for the global kernel
	winEnd    Time
	winActive bool
	curRec    *execRec
	log       []*execRec
	staged    []stagedEv
	processed uint64
}

// schedule files an event carrying a canonical-order record. Inside a
// window, same-shard events below the window end are pushed locally (local
// (t, seq) order provably equals canonical order restricted to the shard);
// everything else is staged for the barrier. Outside windows — setup,
// exclusive steps — scheduling is single-threaded and keys resolve
// immediately.
func (ps *parState) schedule(dst *Kernel, t Time, fn func(), proc *Proc, cross bool) {
	if ps.winActive {
		cur := ps.curRec
		if cur == nil {
			panic("sim: scheduling on a shard kernel from outside an event during a parallel window")
		}
		rec := &execRec{t: t, parent: cur, idx: cur.nextIdx}
		cur.nextIdx++
		if t < ps.winEnd {
			if cross {
				panic(fmt.Sprintf("sim: cross-segment event at t=%v inside the lookahead window ending at t=%v", t, ps.winEnd))
			}
			dst.pushLocal(t, fn, proc, rec)
			return
		}
		ps.staged = append(ps.staged, stagedEv{k: dst, rec: rec, fn: fn, proc: proc})
		return
	}
	c := ps.c
	if c.winPhase.Load() {
		panic("sim: scheduling outside the owning shard during a parallel window")
	}
	var rec *execRec
	if cur := c.curRec; cur != nil {
		rec = &execRec{t: t, pstamp: cur.stamp, idx: cur.nextIdx}
		cur.nextIdx++
	} else {
		c.counter++
		rec = &execRec{t: t, pstamp: c.counter}
	}
	dst.pushLocal(t, fn, proc, rec)
}

// pushLocal enqueues a fully formed event on this kernel.
func (k *Kernel) pushLocal(t Time, fn func(), proc *Proc, rec *execRec) {
	k.seq++
	ev := k.newEvent()
	ev.t, ev.seq, ev.fn, ev.proc, ev.rec = t, k.seq, fn, proc, rec
	k.events.push(ev)
}

// runWindow executes this shard's events strictly below end, publishing the
// gate frontier before each one and logging execution order for the
// barrier merge. It mirrors RunUntil's event dispatch exactly (including
// the cooperative process handshake).
func (k *Kernel) runWindow(end Time) {
	ps := k.par
	c := ps.c
	ps.winEnd, ps.winActive = end, true
	gate := &c.gates[ps.shard]
	for !k.stopped {
		ev := k.events.peek()
		if ev == nil || ev.t >= end {
			break
		}
		ev = k.events.pop()
		k.now = ev.t
		ps.processed++
		rec := ev.rec
		gate.frontier.Store(rec)
		c.wake()
		ps.log = append(ps.log, rec)
		ps.curRec = rec
		switch {
		case ev.proc != nil:
			proc := ev.proc
			k.recycle(ev)
			if proc.finished {
				ps.curRec = nil
				continue // process died before its wakeup fired
			}
			k.current = proc
			proc.resume <- struct{}{}
			<-k.yield
			k.current = nil
		default:
			fn := ev.fn
			k.recycle(ev)
			fn()
		}
		ps.curRec = nil
	}
	ps.winActive = false
}

// shardGate publishes one shard's progress through the current window: the
// record it is executing (frontier) and whether it has finished (done).
type shardGate struct {
	frontier atomic.Pointer[execRec]
	done     atomic.Bool
}

// ParStats reports deterministic counters from a parallel run. Every field
// is a pure function of the simulated scenario (never of host timing), so
// it is safe to include in byte-compared artifacts.
type ParStats struct {
	Workers            int    // configured worker cap
	Windows            uint64 // parallel windows dispatched
	ExclusiveSteps     uint64 // single-threaded steps at global-event times
	Committed          uint64 // events committed through window barriers and exclusive steps
	Staged             uint64 // events staged to a barrier (cross-shard or beyond window end)
	GatedOps           uint64 // order-gated operations (RNG draws, directory ops)
	FallbackSequential bool   // set by the embedding layer when parallelism was requested but unusable
}

// Coordinator drives conservative parallel execution over per-segment
// kernels plus one global kernel. Construct with NewCoordinator, schedule
// setup work on the kernels, then call RunUntil.
type Coordinator struct {
	shards    []*Kernel
	glob      *Kernel
	all       []*Kernel // shards + glob
	lookahead Time
	limit     uint64
	processed uint64

	// counter issues root positions and commit stamps; curRec is the event
	// executing in an exclusive step. Both are touched only in
	// single-threaded phases.
	counter uint64
	curRec  *execRec

	winPhase atomic.Bool
	gates    []shardGate
	mu       sync.Mutex // order-gate mutex; also guards gatedOps
	cond     *sync.Cond
	waiters  atomic.Int32
	sem      chan struct{} // worker tokens; gate waiters release theirs while blocked
	gatedOps uint64

	shuffle *rand.Rand // optional seeded perturbation of window dispatch order
	cursors []int
	scratch []stagedEv
	stats   ParStats

	panicMu sync.Mutex
	panicV  any
}

// NewCoordinator builds a parallel scheduler with one kernel per shard
// (bus segment), a global kernel, at most workers shards executing
// concurrently, and the given cross-shard lookahead (must be positive; use
// the topology's ForwardDelay). All kernels share one seeded random stream,
// drawn in canonical order through the gate, so the run consumes the exact
// value sequence a sequential kernel with the same seed would.
func NewCoordinator(seed int64, shards, workers int, lookahead Time) *Coordinator {
	if shards < 1 {
		panic("sim: coordinator needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: coordinator needs positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	c := &Coordinator{lookahead: lookahead}
	c.cond = sync.NewCond(&c.mu)
	c.sem = make(chan struct{}, workers)
	c.gates = make([]shardGate, shards)
	c.cursors = make([]int, shards)
	c.stats.Workers = workers
	src := rand.NewSource(seed).(rand.Source64)
	mk := func(shard int) *Kernel {
		k := newWithQueue(seed, newWheel())
		k.par = &parState{c: c, shard: shard}
		k.rng = rand.New(&gatedSource{k: k, src: src})
		return k
	}
	for i := 0; i < shards; i++ {
		c.shards = append(c.shards, mk(i))
	}
	c.glob = mk(-1)
	c.all = append(append(make([]*Kernel, 0, shards+1), c.shards...), c.glob)
	return c
}

// Shard returns the kernel owning bus segment i.
func (c *Coordinator) Shard(i int) *Kernel { return c.shards[i] }

// Shards returns the per-segment kernels, indexed by segment.
func (c *Coordinator) Shards() []*Kernel { return c.shards }

// Global returns the kernel for whole-network events (setup closures,
// gateway chaos); its events always run in exclusive single-threaded steps.
func (c *Coordinator) Global() *Kernel { return c.glob }

// SetEventLimit caps total events processed per RunUntil call, mirroring
// Kernel.SetEventLimit.
func (c *Coordinator) SetEventLimit(n uint64) { c.limit = n }

// Stats returns the deterministic parallel-run counters accumulated so far.
func (c *Coordinator) Stats() ParStats { return c.stats }

// SetShuffle seeds a deterministic perturbation of the order window jobs
// are handed to workers. Results are interleaving-independent by
// construction, so shuffling exists to hunt commit-order races in tests:
// different seeds exercise different worker schedules while every output
// stays byte-identical. Seed 0 restores the natural shard order.
func (c *Coordinator) SetShuffle(seed int64) {
	if seed == 0 {
		c.shuffle = nil
		return
	}
	c.shuffle = rand.New(rand.NewSource(seed))
}

// gatedSource adapts the run's shared random source to one kernel, routing
// every draw through the order gate so sequential and parallel runs consume
// the identical value stream.
type gatedSource struct {
	k   *Kernel
	src rand.Source64
}

func (g *gatedSource) Int63() int64 {
	var v int64
	g.k.Gated(func() { v = g.src.Int63() })
	return v
}

func (g *gatedSource) Uint64() uint64 {
	var v uint64
	g.k.Gated(func() { v = g.src.Uint64() })
	return v
}

func (g *gatedSource) Seed(seed int64) {
	g.k.Gated(func() { g.src.Seed(seed) })
}

// gated blocks until rec is canonically least among all unfinished shards'
// frontiers, then runs fn holding the gate mutex. A blocked waiter returns
// its worker token so an undispatched shard can make the progress being
// waited for; once passable, the condition is monotone for the rest of the
// window, so no re-check is needed after re-acquiring a token.
func (c *Coordinator) gated(shard int, rec *execRec, fn func()) {
	c.mu.Lock()
	if !c.mayPass(shard, rec) {
		<-c.sem
		c.waiters.Add(1)
		for !c.mayPass(shard, rec) {
			c.cond.Wait()
		}
		c.waiters.Add(-1)
		c.mu.Unlock()
		c.sem <- struct{}{}
		c.mu.Lock()
	}
	c.gatedOps++
	defer c.mu.Unlock()
	fn()
}

// mayPass reports whether rec may touch globally sequenced state: every
// other shard must be finished with the window or positioned at a
// canonically later event. A nil frontier means the shard has not started;
// its first event might precede rec, so the caller waits.
func (c *Coordinator) mayPass(shard int, rec *execRec) bool {
	for i := range c.gates {
		if i == shard {
			continue
		}
		g := &c.gates[i]
		if g.done.Load() {
			continue
		}
		f := g.frontier.Load()
		if f == nil || cmpRec(f, rec) <= 0 {
			return false
		}
	}
	return true
}

// wake broadcasts to gate waiters after a frontier advance; the
// waiter-count fast path keeps the per-event cost to one atomic load.
func (c *Coordinator) wake() {
	if c.waiters.Load() == 0 {
		return
	}
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Run processes events until none remain, mirroring Kernel.Run.
func (c *Coordinator) Run() error { return c.RunUntil(-1) }

// RunUntil drives all shards and the global kernel to the deadline (<0 =
// unbounded), alternating conservative parallel windows with exclusive
// single-threaded steps at global-event timestamps. Semantics mirror
// Kernel.RunUntil: events at exactly the deadline run, bounded idle is
// normal completion, and unbounded idle with live processes is ErrStalled.
func (c *Coordinator) RunUntil(deadline Time) error {
	c.processed = 0
	for !c.anyStopped() {
		t0, ok := c.nextTime()
		if !ok {
			if deadline >= 0 {
				c.setNows(deadline)
				return nil
			}
			if c.liveProcs() > 0 {
				return ErrStalled
			}
			return nil
		}
		if deadline >= 0 && t0 > deadline {
			c.setNows(deadline)
			return nil
		}
		if gt, gok := c.glob.events.peekTime(); gok && gt == t0 {
			if err := c.exclusiveStep(t0); err != nil {
				return err
			}
			continue
		}
		end := t0 + c.lookahead
		if gt, gok := c.glob.events.peekTime(); gok && gt < end {
			end = gt
		}
		if deadline >= 0 && deadline+1 < end {
			end = deadline + 1
		}
		if err := c.runWindowAll(end); err != nil {
			return err
		}
	}
	return nil
}

func (c *Coordinator) anyStopped() bool {
	for _, k := range c.all {
		if k.stopped {
			return true
		}
	}
	return false
}

func (c *Coordinator) liveProcs() int {
	n := 0
	for _, k := range c.all {
		n += k.procs
	}
	return n
}

func (c *Coordinator) nextTime() (Time, bool) {
	var min Time
	found := false
	for _, k := range c.all {
		if t, ok := k.events.peekTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

func (c *Coordinator) setNows(t Time) {
	for _, k := range c.all {
		if k.now < t {
			k.now = t
		}
	}
}

// exclusiveStep runs every event at exactly time t — across all shards and
// the global kernel — single-threaded in canonical order, stamping each as
// it commits. Global events may touch any shard's state, so the window
// machinery steps aside whenever one shares a timestamp with shard work.
func (c *Coordinator) exclusiveStep(t Time) error {
	c.stats.ExclusiveSteps++
	c.setNows(t)
	for !c.anyStopped() {
		var best *Kernel
		var bestRec *execRec
		for _, k := range c.all {
			ev := k.events.peek()
			if ev == nil || ev.t != t {
				continue
			}
			if bestRec == nil || cmpRec(ev.rec, bestRec) < 0 {
				best, bestRec = k, ev.rec
			}
		}
		if best == nil {
			return nil
		}
		ev := best.events.pop()
		c.processed++
		if c.limit > 0 && c.processed > c.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", c.limit, t)
		}
		c.counter++
		bestRec.stamp = c.counter
		c.curRec = bestRec
		k := best
		switch {
		case ev.proc != nil:
			proc := ev.proc
			k.recycle(ev)
			if !proc.finished {
				k.current = proc
				proc.resume <- struct{}{}
				<-k.yield
				k.current = nil
			}
		default:
			fn := ev.fn
			k.recycle(ev)
			fn()
		}
		c.curRec = nil
		c.stats.Committed++
	}
	return nil
}

// runWindowAll dispatches every shard with work below end to the worker
// pool (one goroutine per active shard, at most `workers` holding tokens at
// once), waits for quiescence, and commits the window at the barrier.
func (c *Coordinator) runWindowAll(end Time) error {
	var active []*Kernel
	for i, k := range c.shards {
		gate := &c.gates[i]
		if k.stopped {
			gate.done.Store(true)
			continue
		}
		if ev := k.events.peek(); ev != nil && ev.t < end {
			gate.done.Store(false)
			gate.frontier.Store(ev.rec)
			active = append(active, k)
		} else {
			gate.done.Store(true)
		}
	}
	if len(active) == 0 {
		return nil
	}
	c.stats.Windows++
	order := active
	if c.shuffle != nil && len(active) > 1 {
		order = append([]*Kernel(nil), active...)
		c.shuffle.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	c.winPhase.Store(true)
	var wg sync.WaitGroup
	for _, k := range order {
		wg.Add(1)
		go func(k *Kernel) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c.panicMu.Lock()
					if c.panicV == nil {
						c.panicV = r
					}
					c.panicMu.Unlock()
				}
				c.gates[k.par.shard].done.Store(true)
				c.wake()
			}()
			c.sem <- struct{}{}
			defer func() { <-c.sem }()
			k.runWindow(end)
		}(k)
	}
	wg.Wait()
	c.winPhase.Store(false)
	if r := c.panicV; r != nil {
		c.panicV = nil
		panic(r)
	}
	return c.barrier(end)
}

// barrier merges the window's per-shard execution logs into canonical
// global order, assigning commit stamps and replaying buffered emissions,
// then resolves, sorts and inserts staged events. Afterwards every pending
// event everywhere carries a fully resolved order key. The merge is a
// linear scan over shard cursors: a log head's parent is always an earlier
// entry of the same log (in-window parents are same-shard), so heads
// compare resolved once their predecessors are stamped.
func (c *Coordinator) barrier(end Time) error {
	for {
		var rec *execRec
		src := -1
		for i, k := range c.shards {
			log := k.par.log
			ci := c.cursors[i]
			if ci >= len(log) {
				continue
			}
			if rec == nil || cmpRec(log[ci], rec) < 0 {
				rec, src = log[ci], i
			}
		}
		if rec == nil {
			break
		}
		c.cursors[src]++
		c.counter++
		rec.stamp = c.counter
		c.stats.Committed++
		for _, emit := range rec.emits {
			emit()
		}
		rec.emits = nil
	}
	staged := c.scratch[:0]
	for i, k := range c.shards {
		ps := k.par
		staged = append(staged, ps.staged...)
		for j := range ps.staged {
			ps.staged[j] = stagedEv{}
		}
		ps.staged = ps.staged[:0]
		for j := range ps.log {
			ps.log[j] = nil
		}
		ps.log = ps.log[:0]
		c.processed += ps.processed
		ps.processed = 0
		c.cursors[i] = 0
	}
	for _, se := range staged {
		r := se.rec
		if p := r.parent; p != nil {
			if p.stamp == 0 {
				panic("sim: staged event with unstamped parent at window barrier")
			}
			r.pstamp, r.parent = p.stamp, nil
		}
	}
	sort.Slice(staged, func(i, j int) bool { return cmpRec(staged[i].rec, staged[j].rec) < 0 })
	for _, se := range staged {
		se.k.pushLocal(se.rec.t, se.fn, se.proc, se.rec)
	}
	c.stats.Staged += uint64(len(staged))
	for i := range staged {
		staged[i] = stagedEv{}
	}
	c.scratch = staged[:0]
	c.stats.GatedOps += c.gatedOps
	c.gatedOps = 0
	if c.limit > 0 && c.processed > c.limit {
		return fmt.Errorf("sim: event limit %d exceeded at t=%v", c.limit, end)
	}
	return nil
}

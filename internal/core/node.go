package core

import (
	"fmt"

	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/wire"
)

// Program is the client software loaded onto a node: the three sections of
// a SODAL program (§4.1). Init runs first (the BOOTING handler invocation);
// Handler services request arrivals and completions; Task is the main locus
// of control. Die is implicit when Task returns.
type Program struct {
	Init    func(c *Client, parent frame.MID)
	Handler func(c *Client, ev Event)
	Task    func(c *Client)
}

// Registry maps program names to Programs. The boot protocol's "core image"
// (§3.5.2) is, in this reproduction, the name of a registered program — see
// DESIGN.md for the substitution rationale.
type Registry map[string]Program

// outRequest is the requester kernel's record of an uncompleted REQUEST.
type outRequest struct {
	tid       frame.TID
	dst       frame.ServerSig
	arg       int32
	putData   []byte
	getSize   int
	delivered bool // acknowledged by the server kernel
	// cancel coordination
	cancelWaiter *sim.Proc // client blocked in CANCEL awaiting delivery state
	// probe state
	probeGen   int
	probeFails int
	// discover state (broadcast requests only)
	discover    bool
	discovered  []frame.MID
	discoverGen int
}

// inRequest is the server kernel's record of a delivered REQUEST (§3.3.2).
type inRequest struct {
	sig     frame.RequesterSig
	pattern frame.Pattern
	arg     int32
	putSize int
	getSize int
	hasData bool
	data    []byte // requester's put data, if it survived delivery
	// acked reports that the REQUEST's acknowledgement has been sent
	// (the accept can no longer piggyback on it).
	acked     bool
	accepting bool
	// accept-in-progress bookkeeping
	acceptWaiter *sim.Proc
	acceptOut    bool // the Accept message completed its handshake
	needData     bool // awaiting an AcceptData message
	gotData      []byte
	gotDataOK    bool
	failStatus   AcceptStatus // non-zero: the accept failed
	timeoutGen   int
}

// heldInput is the pipelined kernel's parked REQUEST (§5.2.3).
type heldInput struct {
	src frame.MID
	req *frame.Request
	gen int
}

// Node is one SODA machine: the kernel processor, its transport endpoint,
// and (optionally) a client process.
type Node struct {
	k        *sim.Kernel
	mid      frame.MID
	cfg      Config
	ep       *deltat.Endpoint
	registry Registry

	// Naming state (§3.4).
	patterns  [256]patternSlot // client patterns, 8-bit-indexed (§5.4)
	bootPats  map[frame.Pattern]bool
	killPat   frame.Pattern
	loadPat   frame.Pattern // zero when no boot in progress / client load pattern
	bootImage []byte

	// Id generation (§5.4).
	serial     uint8
	uidCounter uint32
	tidCounter uint64
	tidFloor   uint64 // TIDs below this predate the last crash/DIE

	// Requester side.
	outstanding map[frame.TID]*outRequest

	// Server side.
	delivered map[frame.RequesterSig]*inRequest
	heldIn    *heldInput
	acceptGen int // bumped on reset; invalidates accept-window timers

	// rmrMemory is the kernel-level RMR region (§6.17.2); nil when the
	// service is disabled.
	rmrMemory []byte

	client *Client
	totals CostTotals
	epoch  int // bumped on crash/DIE; stale timers check it
}

type patternSlot struct {
	pat    frame.Pattern
	active bool
}

// NewNode attaches a SODA kernel to a frame-carrying medium at mid —
// the simulated bus (bus.Bus.Wire) or the socket backend. registry
// supplies the bootable programs; it may be shared across nodes.
func NewNode(k *sim.Kernel, w wire.Network, mid frame.MID, cfg Config, registry Registry) (*Node, error) {
	if cfg.MaxRequests <= 0 {
		cfg.MaxRequests = 3
	}
	if cfg.AcceptWindow <= 0 {
		cfg.AcceptWindow = cfg.Transport.A
	}
	n := &Node{
		k:           k,
		mid:         mid,
		cfg:         cfg,
		registry:    registry,
		bootPats:    map[frame.Pattern]bool{DefaultBootPattern: true},
		killPat:     DefaultKillPattern,
		serial:      uint8(mid),
		outstanding: make(map[frame.TID]*outRequest),
		delivered:   make(map[frame.RequesterSig]*inRequest),
	}
	if cfg.KernelRMRSize > 0 {
		n.rmrMemory = make([]byte, cfg.KernelRMRSize)
	}
	ep, err := deltat.New(k, w, mid, cfg.Transport, deltat.Hooks{
		OnData:        n.onData,
		OnDatagram:    n.onDatagram,
		OnHoldExpired: n.onHoldExpired,
	})
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", mid, err)
	}
	n.ep = ep
	return n, nil
}

// MID reports the node's machine id.
func (n *Node) MID() frame.MID { return n.mid }

// Client returns the running client, or nil when the node is free.
func (n *Node) Client() *Client { return n.client }

// Totals reports the client-side cost buckets; TransportTotals the
// kernel-side ones.
func (n *Node) Totals() CostTotals                 { return n.totals }
func (n *Node) TransportTotals() deltat.CostTotals { return n.ep.Totals() }
func (n *Node) ResetTotals()                       { n.totals = CostTotals{}; n.ep.ResetTotals() }

// nextTID issues a transaction id, unique on this machine across all time;
// monotonicity lets the kernel adjudicate stale ACCEPTs after a crash
// (§5.4).
func (n *Node) nextTID() frame.TID {
	n.tidCounter++
	return frame.TID(n.tidCounter)
}

// GetUniqueID implements the GETUNIQUEID primitive: an 8-bit serial number
// concatenated with a monotonic counter, network-wide unique (§3.4.2, §5.4).
func (n *Node) GetUniqueID() frame.Pattern {
	n.uidCounter++
	return frame.UniquePattern(n.serial, n.uidCounter)
}

// Advertise binds a client pattern (§3.4.1). Reserved-class patterns are
// the kernel's own and cannot be advertised by clients (§3.4.3). Following
// the implementation restriction of §5.4, a pattern whose low eight bits
// collide with an existing entry silently overwrites it.
func (n *Node) Advertise(p frame.Pattern) error {
	if !p.Valid() {
		return fmt.Errorf("advertise %v: wider than %d bits", p, frame.PatternSize)
	}
	if p.Reserved() {
		return fmt.Errorf("advertise %v: reserved patterns are bound to the kernel", p)
	}
	n.patterns[p.Slot()] = patternSlot{pat: p, active: true}
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsAdvertise, Pattern: p})
	}
	return nil
}

// Unadvertise removes a previously advertised client pattern. Requests
// already delivered to the handler are unaffected (§3.4.1).
func (n *Node) Unadvertise(p frame.Pattern) error {
	if p.Reserved() {
		return fmt.Errorf("unadvertise %v: reserved patterns are bound to the kernel", p)
	}
	s := &n.patterns[p.Slot()]
	if !s.active || s.pat != p {
		return fmt.Errorf("unadvertise %v: not advertised", p)
	}
	s.active = false
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsUnadvertise, Pattern: p})
	}
	return nil
}

// advertised reports whether p is currently served here: a client pattern
// in the table, or one of the kernel's reserved patterns.
func (n *Node) advertised(p frame.Pattern) bool {
	if p.Reserved() {
		switch {
		case n.bootPats[p]:
			return n.client == nil && n.loadPat == 0 // free node only
		case p == n.killPat, p == SystemPattern:
			return true
		case p == RMRPattern:
			return n.rmrMemory != nil
		case p == n.loadPat && n.loadPat != 0:
			return true
		}
		return false
	}
	s := n.patterns[p.Slot()]
	return s.active && s.pat == p
}

// slotTaken reports whether p's 8-bit table slot is already occupied by an
// active (different or identical) pattern.
func (n *Node) slotTaken(p frame.Pattern) bool {
	return n.patterns[p.Slot()].active
}

// clearClientPatterns wipes the client pattern table (DIE, §3.5.1).
func (n *Node) clearClientPatterns() {
	n.patterns = [256]patternSlot{}
}

// Boot starts a registered program directly on this node (the local
// equivalent of pressing the RESET button on a node with a ROM bootstrap,
// §3.5.3). parent is reported to the program's Init section.
func (n *Node) Boot(progName string, parent frame.MID) error {
	if n.client != nil {
		return fmt.Errorf("node %d: already running a client", n.mid)
	}
	prog, ok := n.registry[progName]
	if !ok {
		return fmt.Errorf("node %d: program %q not registered", n.mid, progName)
	}
	n.startClient(prog, progName, parent)
	return nil
}

// reset clears all kernel state associated with the (dead) client: client
// patterns, uncompleted requests in both roles, and the TID floor used to
// detect stale ACCEPTs (§3.6.1).
func (n *Node) reset() {
	n.epoch++
	n.acceptGen++
	n.clearClientPatterns()
	n.outstanding = make(map[frame.TID]*outRequest)
	// Abandon any parked input; its sender's retransmissions will find
	// the new state.
	if n.heldIn != nil {
		n.heldIn.gen = -1
		n.heldIn = nil
	}
	n.delivered = make(map[frame.RequesterSig]*inRequest)
	n.tidFloor = n.tidCounter
	n.loadPat = 0
	n.bootImage = nil
	// Frames held pending client action will never be resolved now; tell
	// their senders the state is gone (they report CRASHED). Deferred
	// acknowledgements for already-completed exchanges are transport
	// obligations and survive the reset on their own.
	n.ep.FailAllHolds(frame.ErrStale)
}

// Die implements the DIE primitive: the kernel resets its internal state
// and the node becomes eligible for booting again (§3.5.1). A client that
// executes DIE is treated as a crashed processor (§3.6.1).
func (n *Node) Die() {
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsDie})
	}
	if n.client != nil {
		n.client.terminate()
		n.client = nil
	}
	n.reset()
}

// Crash models a detectable processor failure: transport state is lost and
// the node leaves the network until Reboot (§3.6.1).
func (n *Node) Crash() {
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsCrash})
	}
	if n.client != nil {
		n.client.terminate()
		n.client = nil
	}
	n.ep.Crash() // first: a crashed kernel sends no parting NACKs
	n.reset()
}

// Reboot rejoins the network after the Delta-t quiet period; the node comes
// back as a free, bootable machine. ready (optional) runs once the node is
// back on the network.
func (n *Node) Reboot(ready func()) {
	n.ep.Reboot(func() {
		if n.cfg.Observer != nil {
			n.observe(ObsEvent{Kind: ObsReboot})
		}
		if ready != nil {
			ready()
		}
	})
}

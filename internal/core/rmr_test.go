package core

import (
	"bytes"
	"testing"
	"time"

	"soda/internal/frame"
)

func rmrConfig() Config {
	cfg := DefaultConfig()
	cfg.KernelRMRSize = 128
	return cfg
}

func TestKernelRMRPeekPoke(t *testing.T) {
	n := newTestNet(t, 1, rmrConfig(), 1, 2)
	n.reg["target"] = Program{} // the region belongs to the kernel
	done := false
	n.reg["client"] = Program{
		Task: func(c *Client) {
			if st := KernelPoke(c, 2, 10, []byte("kernel rmr")); st != StatusSuccess {
				t.Errorf("poke: %v", st)
				return
			}
			got, st := KernelPeek(c, 2, 10, 10)
			if st != StatusSuccess || !bytes.Equal(got, []byte("kernel rmr")) {
				t.Errorf("peek = %q (%v)", got, st)
				return
			}
			// Out-of-range references are rejected.
			if _, st := KernelPeek(c, 2, 120, 64); st != StatusRejected {
				t.Errorf("oob peek = %v, want REJECTED", st)
			}
			if st := KernelPoke(c, 2, -1, []byte("x")); st != StatusRejected {
				t.Errorf("negative poke = %v, want REJECTED", st)
			}
			done = true
		},
	}
	n.boot(2, "target")
	n.boot(1, "client")
	n.run(5 * time.Second)
	if !done {
		t.Fatal("client never finished")
	}
}

func TestKernelRMRWorksWithoutClient(t *testing.T) {
	// §6.17.2's service lives in the kernel: a free machine (no client)
	// still answers.
	n := newTestNet(t, 1, rmrConfig(), 1, 2)
	var st Status
	n.reg["client"] = Program{
		Task: func(c *Client) {
			st = KernelPoke(c, 2, 0, []byte{42})
		},
	}
	n.boot(1, "client")
	n.run(5 * time.Second)
	if st != StatusSuccess {
		t.Fatalf("poke to clientless node = %v", st)
	}
	if n.nodes[2].rmrMemory[0] != 42 {
		t.Fatal("memory not written")
	}
}

func TestKernelRMRGatedByClose(t *testing.T) {
	// CLOSE provides the synchronization of §6.17.2: requests arriving
	// while the region's owner has its handler closed are held off.
	n := newTestNet(t, 1, rmrConfig(), 1, 2)
	var openedAt, peekedAt time.Duration
	n.reg["owner"] = Program{
		Init: func(c *Client, _ frame.MID) { c.Close() },
		Task: func(c *Client) {
			c.Hold(80 * time.Millisecond) // critical section on the region
			openedAt = c.Now()
			c.Open()
			c.WaitUntil(func() bool { return false })
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			if _, st := KernelPeek(c, 2, 0, 4); st != StatusSuccess {
				t.Errorf("peek: %v", st)
				return
			}
			peekedAt = c.Now()
		},
	}
	n.boot(2, "owner")
	n.boot(1, "client")
	n.run(5 * time.Second)
	if peekedAt == 0 {
		t.Fatal("peek never completed")
	}
	if peekedAt < openedAt {
		t.Fatalf("peek completed at %v, before the region opened at %v", peekedAt, openedAt)
	}
}

func TestRMRDisabledByDefault(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var st Status
	n.reg["client"] = Program{
		Task: func(c *Client) {
			_, st = KernelPeek(c, 2, 0, 4)
		},
	}
	n.boot(1, "client")
	n.run(5 * time.Second)
	if st != StatusUnadvertised {
		t.Fatalf("peek on disabled service = %v, want UNADVERTISED", st)
	}
}

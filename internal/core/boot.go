package core

import (
	"encoding/binary"

	"soda/internal/deltat"
	"soda/internal/frame"
)

// onReservedRequest executes the kernel routines bound to RESERVED patterns
// (§3.4.3, §3.5). These accept immediately — their execution cannot be
// impeded by the client handler state — so the reply always piggybacks on
// the request's acknowledgement.
func (n *Node) onReservedRequest(src frame.MID, m *frame.Request) deltat.Decision {
	switch {
	case n.bootPats[m.Pattern]:
		return n.onBootRequest(m)
	case m.Pattern == n.loadPat && n.loadPat != 0:
		return n.onLoadRequest(src, m)
	case m.Pattern == n.killPat:
		// KILL: stop the client regardless of handler state (§3.5.3).
		if n.client != nil {
			n.Die()
		}
		return acceptNow(m.TID, 0, nil)
	case m.Pattern == SystemPattern:
		return n.onSystemRequest(src, m)
	case m.Pattern == RMRPattern && n.rmrMemory != nil:
		return n.onRMRRequest(m)
	default:
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrUnadvertised}
	}
}

// onBootRequest handles a GET on a BOOT pattern (§3.5.2): unadvertise the
// boot pattern, mint a LOAD pattern via GETUNIQUEID, convert it to a
// RESERVED pattern, and return it as the value of the GET.
func (n *Node) onBootRequest(m *frame.Request) deltat.Decision {
	if n.client != nil || n.loadPat != 0 {
		// The machine was claimed since the pattern was advertised.
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrUnadvertised}
	}
	unique := n.GetUniqueID()
	n.loadPat = frame.ReservedPattern(uint64(unique))
	n.bootImage = nil
	buf := binary.BigEndian.AppendUint64(nil, uint64(n.loadPat))
	if int(m.GetSize) < len(buf) {
		buf = buf[:m.GetSize]
	}
	return acceptNow(m.TID, 0, buf)
}

// onLoadRequest handles requests on the LOAD pattern: PUTs append to the
// core image; the first SIGNAL starts the new client; a second SIGNAL —
// or one sent while a client is running — terminates it (§3.5.2).
func (n *Node) onLoadRequest(src frame.MID, m *frame.Request) deltat.Decision {
	if m.PutSize > 0 {
		if n.client != nil {
			// Loading over a running client is refused (REJECT).
			return acceptNow(m.TID, -1, nil)
		}
		if !m.HasData {
			// The data was stripped by a retransmission; the kernel
			// handler is always available, so this cannot happen on a
			// first delivery. Ask for a clean retry.
			return deltat.Decision{Verdict: deltat.VerdictBusy}
		}
		n.bootImage = append(n.bootImage, m.Data...)
		return acceptNow(m.TID, 0, nil)
	}
	// SIGNAL on the load pattern.
	if n.client != nil {
		// Parent killing its (runaway) child (§3.5.3).
		n.Die()
		return acceptNow(m.TID, 0, nil)
	}
	name, params := splitImage(n.bootImage)
	prog, ok := n.registry[name]
	if !ok {
		// Unknown image: reject; the node stays claimable via the
		// still-valid load pattern.
		n.bootImage = nil
		return acceptNow(m.TID, -1, nil)
	}
	n.bootImage = nil
	n.startClientWithParams(prog, name, src, params)
	return acceptNow(m.TID, 0, nil)
}

// onRMRRequest services the kernel-level remote memory reference of
// §6.17.2: the argument is the address, the buffer sizes give the extent,
// PEEK is a GET and POKE a PUT. The client's CLOSE gates access — that is
// the synchronization hook the section prescribes — so a request arriving
// while the region is closed is retried like any busy handler.
func (n *Node) onRMRRequest(m *frame.Request) deltat.Decision {
	if n.client != nil && !n.client.open {
		return deltat.Decision{Verdict: deltat.VerdictBusy}
	}
	addr := int(m.Arg)
	switch {
	case m.GetSize > 0 && m.PutSize == 0: // PEEK
		end := addr + int(m.GetSize)
		if addr < 0 || end > len(n.rmrMemory) {
			return acceptNow(m.TID, -1, nil)
		}
		out := make([]byte, m.GetSize)
		copy(out, n.rmrMemory[addr:end])
		return acceptNow(m.TID, 0, out)
	case m.PutSize > 0 && m.GetSize == 0: // POKE
		end := addr + int(m.PutSize)
		if addr < 0 || end > len(n.rmrMemory) || !m.HasData {
			return acceptNow(m.TID, -1, nil)
		}
		copy(n.rmrMemory[addr:end], m.Data)
		return acceptNow(m.TID, 0, nil)
	default:
		return acceptNow(m.TID, -1, nil)
	}
}

// KernelPeek reads size bytes at addr from dst's kernel RMR region.
func KernelPeek(c *Client, dst frame.MID, addr, size int) ([]byte, Status) {
	res := c.BGet(frame.ServerSig{MID: dst, Pattern: RMRPattern}, int32(addr), size)
	if res.Status != StatusSuccess {
		return nil, res.Status
	}
	return res.Data, StatusSuccess
}

// KernelPoke writes value at addr into dst's kernel RMR region.
func KernelPoke(c *Client, dst frame.MID, addr int, value []byte) Status {
	return c.BPut(frame.ServerSig{MID: dst, Pattern: RMRPattern}, int32(addr), value).Status
}

// onSystemRequest alters reserved patterns; only machine 0 may issue these
// (§3.5.4).
func (n *Node) onSystemRequest(src frame.MID, m *frame.Request) deltat.Decision {
	if src != 0 {
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrUnadvertised}
	}
	if !m.HasData || len(m.Data) != 8 {
		return acceptNow(m.TID, -1, nil)
	}
	p := frame.Pattern(binary.BigEndian.Uint64(m.Data))
	if !p.Reserved() || !p.Valid() {
		return acceptNow(m.TID, -1, nil)
	}
	switch m.Arg {
	case SysAddBootPattern:
		n.bootPats[p] = true
	case SysDelBootPattern:
		delete(n.bootPats, p)
	case SysReplaceKillPattern:
		n.killPat = p
	default:
		return acceptNow(m.TID, -1, nil)
	}
	return acceptNow(m.TID, 0, nil)
}

// acceptNow builds the immediate-accept decision used by kernel routines.
func acceptNow(tid frame.TID, arg int32, data []byte) deltat.Decision {
	return deltat.Decision{
		Verdict: deltat.VerdictAck,
		Reply:   frame.Encode(&frame.Accept{TID: tid, Arg: arg, GetSize: 0, Data: data}),
	}
}

// BootChunkSize is the PUT granularity used by BootRemote when shipping the
// core image (§3.5.2 describes "a series of PUTs").
const BootChunkSize = 64

// splitImage separates a core image into the program name and the
// connector-supplied parameter block (§4.3.1): everything after the first
// NUL byte is parameters.
func splitImage(image []byte) (name string, params []byte) {
	for i, b := range image {
		if b == 0 {
			return string(image[:i]), append([]byte(nil), image[i+1:]...)
		}
	}
	return string(image), nil
}

// BootRemote drives the full remote boot protocol from a running client
// (§3.5.2): GET the load pattern from the boot pattern, PUT the core image
// (here: the registered program's name), then SIGNAL to start execution.
// It returns the load pattern, which doubles as the kill capability the
// parent holds over the child (§3.5.3).
func BootRemote(c *Client, target frame.MID, bootPat frame.Pattern, progName string) (frame.Pattern, error) {
	return BootRemoteWithParams(c, target, bootPat, progName, nil)
}

// BootRemoteWithParams is BootRemote with a connector-style parameter block
// appended to the core image (§4.3.1): the booted client reads it back with
// Client.BootParams. The program name must not contain a NUL byte.
func BootRemoteWithParams(c *Client, target frame.MID, bootPat frame.Pattern, progName string, params []byte) (frame.Pattern, error) {
	res := c.BGet(frame.ServerSig{MID: target, Pattern: bootPat}, OK, 8)
	if res.Status != StatusSuccess || len(res.Data) != 8 {
		return 0, &BootError{Stage: "claim", MID: target, Status: res.Status}
	}
	loadPat := frame.Pattern(binary.BigEndian.Uint64(res.Data))
	loadSig := frame.ServerSig{MID: target, Pattern: loadPat}
	image := []byte(progName)
	if len(params) > 0 {
		image = append(image, 0)
		image = append(image, params...)
	}
	for off := 0; off < len(image); off += BootChunkSize {
		end := min(off+BootChunkSize, len(image))
		if res := c.BPut(loadSig, OK, image[off:end]); res.Status != StatusSuccess {
			return 0, &BootError{Stage: "load", MID: target, Status: res.Status}
		}
	}
	if res := c.BSignal(loadSig, OK); res.Status != StatusSuccess {
		return 0, &BootError{Stage: "start", MID: target, Status: res.Status}
	}
	return loadPat, nil
}

// KillChild terminates a child previously booted with BootRemote, using the
// load pattern as the kill capability (§3.5.3).
func KillChild(c *Client, target frame.MID, loadPat frame.Pattern) bool {
	res := c.BSignal(frame.ServerSig{MID: target, Pattern: loadPat}, OK)
	return res.Status == StatusSuccess
}

// BootError reports a failed remote boot.
type BootError struct {
	Stage  string
	MID    frame.MID
	Status Status
}

func (e *BootError) Error() string {
	return "core: boot " + e.Stage + " failed with status " + e.Status.String()
}

package core

import (
	"fmt"

	"time"

	"soda/internal/frame"
	"soda/internal/sim"
)

// killedError unwinds a client process that was terminated (KILL pattern,
// DIE, second LOAD signal, or node crash). It is recovered at the process
// boundary; user code never observes it.
type killedError struct{}

// CallResult is the outcome of a blocking request (B_SIGNAL / B_PUT /
// B_GET / B_EXCHANGE, §4.1.1). Status follows the SODAL convention that a
// negative accept argument denotes rejection (§4.1.2).
type CallResult struct {
	Status Status
	Arg    int32
	Data   []byte
	PutN   int
	GetN   int
	TID    frame.TID
}

// AcceptResult is the outcome of the ACCEPT primitive.
type AcceptResult struct {
	Status AcceptStatus
	// Data is the requester's put-buffer contents (up to PutN bytes).
	Data []byte
	// PutN and GetN are the amounts transferred requester→server and
	// server→requester respectively.
	PutN int
	GetN int
}

// OK is the default argument used when the client has nothing to say
// (§4.1).
const OK int32 = 0

// Client is the uniprogrammed client process running on a Node. All methods
// must be called from within the client's own code (Init, Handler or Task);
// the runtime enforces the thesis's handler discipline: invocations never
// nest, the task is frozen while the handler is BUSY, and completion
// interrupts queue while arrival interrupts are retried by the requester's
// kernel (§3.3.4, §3.7.5).
type Client struct {
	node *Node
	k    *sim.Kernel
	prog Program
	name string
	// handlerName is the process name for handler invocations, built once
	// at boot: dispatch runs per delivered event and must not pay a
	// fmt.Sprintf allocation every time (//lint:hotpath noalloc).
	handlerName string

	taskProc    *sim.Proc
	handlerProc *sim.Proc

	open          bool // handler OPEN/CLOSED (§3.3.4)
	busy          bool // handler BUSY (executing or dispatch pending)
	inHandler     bool
	deferredValid bool // OPEN/CLOSE issued inside the handler defers
	deferredOpen  bool
	curEvent      *Event

	completions []Event                   // queued completion interrupts
	intercept   map[frame.TID]func(Event) // blocking-request completions

	taskParked bool
	dead       bool

	params []byte // connector-supplied boot parameters (§4.3.1)
	stash  any    // per-instance client state (shared by Init/Handler/Task)
}

// BootParams returns the parameter block a connector appended to this
// client's core image, or nil when booted plain (§4.3.1's load-time
// interconnection: "the connector will modify the client core image").
func (c *Client) BootParams() []byte { return c.params }

// Now reports the current virtual time. SODA itself provides no clock —
// time services are utility clients (§4.4.3) — but the simulation's
// substrate clock is what a hardware clock chip would supply.
func (c *Client) Now() time.Duration { return c.k.Now() }

// OnCompletion registers fn to consume the completion interrupt for tid
// instead of the program handler. This is the hook SODAL's generated
// handler code uses for blocking requests (§4.1.1); library code (timeouts,
// selective waits) builds on it. fn runs in handler context; at most one
// registration per TID.
func (c *Client) OnCompletion(tid frame.TID, fn func(Event)) {
	c.intercept[tid] = fn
}

// Stash returns the per-client-instance state previously stored with
// SetStash. Programs in a Registry are shared across boots; the stash gives
// each running instance its own globals (the "global declarations" of a
// SODAL program, §4.1).
func (c *Client) Stash() any { return c.stash }

// SetStash stores per-instance state.
func (c *Client) SetStash(v any) { c.stash = v }

// startClient loads prog as the node's client and begins execution:
// Init (the BOOTING handler invocation), then Task. Die is implicit when
// Task returns (§4.1).
func (n *Node) startClient(prog Program, name string, parent frame.MID) {
	n.startClientWithParams(prog, name, parent, nil)
}

// startClientWithParams is startClient carrying a connector-supplied
// parameter block (§4.3.1).
func (n *Node) startClientWithParams(prog Program, name string, parent frame.MID, params []byte) {
	c := &Client{
		node:        n,
		k:           n.k,
		prog:        prog,
		name:        name,
		handlerName: fmt.Sprintf("handler/%s@%d", name, n.mid),
		params:      params,
		open:        true, // the handler is OPEN at boot (§3.7.6)
		intercept:   make(map[frame.TID]func(Event)),
	}
	n.client = c
	c.taskProc = n.k.Spawn(fmt.Sprintf("client/%s@%d", name, n.mid), func(p *sim.Proc) {
		defer c.recoverKill()
		if c.prog.Init != nil {
			c.inHandler = true
			c.busy = true
			c.prog.Init(c, parent)
			c.inHandler = false
			c.endHandler()
		}
		if c.prog.Task != nil {
			c.gateTask()
			c.prog.Task(c)
			// Die is implicit at the end of the Task procedure (§4.1).
			if !c.dead {
				c.node.Die()
			}
			return
		}
		// A handler-only program idles forever: its task is the empty
		// polling loop.
		c.gateTask()
		c.WaitUntil(func() bool { return false })
	})
}

// terminate marks the client dead and wakes its processes so they unwind.
func (c *Client) terminate() {
	c.dead = true
	if c.taskProc != nil && c.taskProc.Suspended() {
		c.taskProc.Resume()
	}
	if c.handlerProc != nil && c.handlerProc.Suspended() {
		c.handlerProc.Resume()
	}
}

func (c *Client) recoverKill() {
	if r := recover(); r != nil {
		if _, ok := r.(killedError); ok {
			return
		}
		panic(r)
	}
}

func (c *Client) checkKilled() {
	if c.dead {
		panic(killedError{})
	}
}

// MID reports this client's machine id (MY_MID, §3.7.3).
func (c *Client) MID() frame.MID { return c.node.mid }

// Name reports the program name the client was booted as.
func (c *Client) Name() string { return c.name }

// Current returns the event being handled, or nil outside the handler.
// ACCEPT_CURRENT-style helpers use it (§4.1.2).
func (c *Client) Current() *Event { return c.curEvent }

// InHandler reports whether the calling code runs in handler context.
func (c *Client) InHandler() bool { return c.inHandler }

// currentProc identifies the client process executing right now. The
// scheduler is authoritative: the shared inHandler flag cannot distinguish
// the task running during a handler-proc suspension (e.g. the task's Hold
// expiring while the handler waits inside an ACCEPT).
func (c *Client) currentProc() *sim.Proc {
	if p := c.k.Current(); p != nil {
		return p
	}
	return c.taskProc
}

// inTaskContext reports whether p is the task proper — not the Init
// section, which runs on the task's process but in handler context.
func (c *Client) inTaskContext(p *sim.Proc) bool {
	return p == c.taskProc && !(c.inHandler && c.handlerProc == nil)
}

// charge bills one primitive invocation of client overhead (§5.5) against
// the calling process.
func (c *Client) charge() {
	d := c.node.cfg.Costs.ClientOverhead
	if d <= 0 {
		return
	}
	c.node.totals.ClientOverhead += d
	c.currentProc().Hold(d)
	c.checkKilled()
}

// handlerAvailable reports OPEN ∧ IDLE with no queued completions (§3.7.5).
func (c *Client) handlerAvailable() bool {
	return c.open && !c.busy && len(c.completions) == 0 && !c.dead
}

// deliverArrival invokes the handler for an incoming REQUEST. The kernel
// guarantees availability before calling.
func (c *Client) deliverArrival(ev Event) {
	c.busy = true
	c.dispatch(ev, nil)
}

// deliverCompletion queues or dispatches a completion interrupt (§3.3.4).
func (c *Client) deliverCompletion(ev Event) {
	if c.dead {
		return
	}
	if hook, ok := c.intercept[ev.Asker.TID]; ok && c.busy {
		// A blocking request issued from the task completed while the
		// handler is busy: the interception is runtime-internal, so it
		// need not wait for the user handler — record and continue.
		delete(c.intercept, ev.Asker.TID)
		//lint:allow noalloc (indirect: blocking-call interception, created at a //lint:hotpath root)
		hook(ev)
		return
	}
	if c.open && !c.busy {
		c.busy = true
		if hook, ok := c.intercept[ev.Asker.TID]; ok {
			delete(c.intercept, ev.Asker.TID)
			c.dispatch(ev, hook)
			return
		}
		c.dispatch(ev, nil)
		return
	}
	//lint:allow noalloc (amortized: completion queue grows to peak depth, then reused)
	c.completions = append(c.completions, ev)
}

// dispatch runs one handler invocation (or a runtime interception) after
// the context-switch cost. busy is already set.
func (c *Client) dispatch(ev Event, hook func(Event)) {
	cost := c.node.cfg.Costs.CtxSwitch
	c.node.totals.CtxSwitch += cost
	//lint:allow noalloc (counted: one dispatch closure per handler invocation)
	c.k.After(cost, func() {
		if c.dead {
			return
		}
		if hook != nil {
			//lint:allow noalloc (indirect: blocking-call interception, created at a //lint:hotpath root)
			hook(ev)
			c.endHandler()
			return
		}
		//lint:allow noalloc (counted: one handler process per invocation)
		c.k.Spawn(c.handlerName, func(p *sim.Proc) {
			defer c.recoverKill()
			if c.dead {
				return
			}
			c.handlerProc = p
			c.inHandler = true
			c.curEvent = &ev
			if c.prog.Handler != nil {
				//lint:allow noalloc (indirect: user program handler, outside the kernel's budget)
				c.prog.Handler(c, ev)
			}
			c.curEvent = nil
			c.inHandler = false
			c.handlerProc = nil
			c.endHandler()
		})
	})
}

// endHandler implements ENDHANDLER (§3.3.4): apply deferred OPEN/CLOSE,
// drain one queued completion interrupt (keeping the handler BUSY while any
// remain, §3.7.5), release a parked request (pipelined kernels), and
// finally let the task continue.
func (c *Client) endHandler() {
	if c.dead {
		return
	}
	if c.deferredValid {
		c.open = c.deferredOpen
		c.deferredValid = false
	}
	c.busy = false
	if c.open && len(c.completions) > 0 {
		ev := c.completions[0]
		c.completions = c.completions[1:]
		c.busy = true
		if hook, ok := c.intercept[ev.Asker.TID]; ok {
			delete(c.intercept, ev.Asker.TID)
			c.dispatch(ev, hook)
		} else {
			c.dispatch(ev, nil)
		}
		return
	}
	if c.open {
		c.node.releaseHeldInput()
	}
	if !c.busy {
		c.kickTask()
	}
}

// Open implements OPEN (§3.3.4). Inside the handler the effect is deferred
// to ENDHANDLER.
func (c *Client) Open() {
	c.checkKilled()
	if c.inHandler {
		c.deferredValid = true
		c.deferredOpen = true
		return
	}
	if c.open {
		return
	}
	c.open = true
	// Completion indications that accumulated while CLOSED invoke the
	// handler immediately (§5.2.1).
	if !c.busy && len(c.completions) > 0 {
		ev := c.completions[0]
		c.completions = c.completions[1:]
		c.busy = true
		if hook, ok := c.intercept[ev.Asker.TID]; ok {
			delete(c.intercept, ev.Asker.TID)
			c.dispatch(ev, hook)
		} else {
			c.dispatch(ev, nil)
		}
		return
	}
	if !c.busy {
		c.node.releaseHeldInput()
	}
}

// Close implements CLOSE (§3.3.4).
func (c *Client) Close() {
	c.checkKilled()
	if c.inHandler {
		c.deferredValid = true
		c.deferredOpen = false
		return
	}
	c.open = false
}

// IsOpen reports the handler gate state visible to client code.
func (c *Client) IsOpen() bool { return c.open }

// gateTask blocks until the handler is idle; the task may only run then
// (§3.1: the task continues from the point of interruption).
func (c *Client) gateTask() {
	for c.busy && !c.dead {
		c.parkTask()
	}
	c.checkKilled()
}

func (c *Client) parkTask() {
	c.taskParked = true
	c.taskProc.Suspend()
	c.taskParked = false
	c.checkKilled()
}

// kickTask wakes a parked task (idempotent; safe when the task is running).
func (c *Client) kickTask() {
	if c.taskParked && c.taskProc.Suspended() {
		c.taskProc.Resume()
	}
}

// WaitUntil parks the task until cond holds; it stands in for the polling
// "while not done do idle()" loops of SODAL (§5.2.1): the IDLE instruction
// wakes on handler interrupts, which is exactly when cond is re-evaluated.
// It must be called from the task.
func (c *Client) WaitUntil(cond func() bool) {
	c.checkKilled()
	c.mustBeTask("WaitUntil")
	for {
		//lint:allow noalloc (indirect: caller-supplied polling condition, scanned at its creation site)
		if !c.busy && cond() {
			return
		}
		c.parkTask()
	}
}

// Hold advances virtual time for the calling process (device work,
// think(), etc.).
func (c *Client) Hold(d time.Duration) {
	c.checkKilled()
	p := c.currentProc()
	p.Hold(d)
	c.checkKilled()
	if c.inTaskContext(p) {
		c.gateTask()
	}
}

func (c *Client) mustBeTask(op string) {
	if !c.inTaskContext(c.currentProc()) {
		//lint:allow noalloc (cold: misuse panic)
		panic(fmt.Sprintf("core: %s called from the handler; blocking operations must issue from the task (§4.1.1)", op))
	}
}

// --- Naming primitives (§3.4) ---

// Advertise binds a client pattern to this client's handler.
func (c *Client) Advertise(p frame.Pattern) error {
	c.checkKilled()
	return c.node.Advertise(p)
}

// Unadvertise removes a client pattern.
func (c *Client) Unadvertise(p frame.Pattern) error {
	c.checkKilled()
	return c.node.Unadvertise(p)
}

// GetUniqueID returns a network-wide unique pattern (§3.4.2).
func (c *Client) GetUniqueID() frame.Pattern {
	c.checkKilled()
	return c.node.GetUniqueID()
}

// PatternTableFullError reports that a node's 256-slot pattern table (the
// §5.4 implementation restriction) had no free slot left for another unique
// advertisement. Node identifies the saturated machine; the rejection is
// also counted in bus.Stats.PatternTableFull so saturation is observable
// across a whole network.
type PatternTableFullError struct {
	Node frame.MID
}

func (e *PatternTableFullError) Error() string {
	return fmt.Sprintf("core: node %d pattern table full (256 slots)", e.Node)
}

// AdvertiseUnique mints unique patterns until one lands in a free slot of
// the kernel's 8-bit-indexed pattern table, then advertises it. The §5.4
// implementation restriction makes a colliding advertisement silently
// overwrite the older entry; a careful server minting per-session entry
// points (file descriptors, link ends) avoids clobbering its well-known
// names this way. A saturated table yields a *PatternTableFullError.
func (c *Client) AdvertiseUnique() (frame.Pattern, error) {
	c.checkKilled()
	for i := 0; i < 256; i++ {
		p := c.node.GetUniqueID()
		if !c.node.slotTaken(p) {
			return p, c.node.Advertise(p)
		}
	}
	c.node.ep.CountPatternTableFull()
	return 0, &PatternTableFullError{Node: c.node.mid}
}

// --- Message-passing primitives (§3.3) ---

// Request implements REQUEST: non-blocking; the handler is informed of
// completion. put supplies the put-buffer contents; getSize the get-buffer
// capacity.
func (c *Client) Request(dst frame.ServerSig, arg int32, put []byte, getSize int) (frame.TID, error) {
	c.checkKilled()
	c.charge()
	return c.node.issueRequest(dst, arg, put, getSize)
}

// Signal, Put, Get and Exchange are the four REQUEST variants (§3.3.2).
func (c *Client) Signal(dst frame.ServerSig, arg int32) (frame.TID, error) {
	return c.Request(dst, arg, nil, 0)
}

func (c *Client) Put(dst frame.ServerSig, arg int32, data []byte) (frame.TID, error) {
	return c.Request(dst, arg, data, 0)
}

func (c *Client) Get(dst frame.ServerSig, arg int32, getSize int) (frame.TID, error) {
	return c.Request(dst, arg, nil, getSize)
}

func (c *Client) Exchange(dst frame.ServerSig, arg int32, put []byte, getSize int) (frame.TID, error) {
	return c.Request(dst, arg, put, getSize)
}

// Accept implements ACCEPT (§3.3.2): blocking but bounded. put supplies
// data flowing server→requester; getCap bounds data taken requester→server.
func (c *Client) Accept(req frame.RequesterSig, arg int32, put []byte, getCap int) AcceptResult {
	c.checkKilled()
	c.charge()
	p := c.currentProc()
	st, data, putN, getN := c.node.acceptRequest(p, req, arg, getCap, put)
	c.checkKilled()
	if c.inTaskContext(p) {
		c.gateTask()
	}
	return AcceptResult{Status: st, Data: data, PutN: putN, GetN: getN}
}

// AcceptSignal/Put/Get/Exchange mirror the SODAL accept variants (§4.1.1).
// Directions are named from the requester's point of view: AcceptPut takes
// the requester's data; AcceptGet supplies data to the requester.
func (c *Client) AcceptSignal(req frame.RequesterSig, arg int32) AcceptResult {
	return c.Accept(req, arg, nil, 0)
}

func (c *Client) AcceptPut(req frame.RequesterSig, arg int32, getCap int) AcceptResult {
	return c.Accept(req, arg, nil, getCap)
}

func (c *Client) AcceptGet(req frame.RequesterSig, arg int32, data []byte) AcceptResult {
	return c.Accept(req, arg, data, 0)
}

func (c *Client) AcceptExchange(req frame.RequesterSig, arg int32, data []byte, getCap int) AcceptResult {
	return c.Accept(req, arg, data, getCap)
}

// Reject refuses a request: an ACCEPT with no data and argument −1
// (§4.1.2). The requester's blocking wrappers report StatusRejected.
func (c *Client) Reject(req frame.RequesterSig) AcceptResult {
	return c.Accept(req, -1, nil, 0)
}

// currentAsker returns the requester signature of the event being handled.
func (c *Client) currentAsker(op string) frame.RequesterSig {
	if c.curEvent == nil {
		panic(fmt.Sprintf("core: %s outside the handler (§4.1.2)", op))
	}
	return c.curEvent.Asker
}

// AcceptCurrent* complete the request that caused the current handler
// invocation (§4.1.2); they are only legal inside the handler.
func (c *Client) AcceptCurrentSignal(arg int32) AcceptResult {
	return c.AcceptSignal(c.currentAsker("AcceptCurrentSignal"), arg)
}

func (c *Client) AcceptCurrentPut(arg int32, getCap int) AcceptResult {
	return c.AcceptPut(c.currentAsker("AcceptCurrentPut"), arg, getCap)
}

func (c *Client) AcceptCurrentGet(arg int32, data []byte) AcceptResult {
	return c.AcceptGet(c.currentAsker("AcceptCurrentGet"), arg, data)
}

func (c *Client) AcceptCurrentExchange(arg int32, data []byte, getCap int) AcceptResult {
	return c.AcceptExchange(c.currentAsker("AcceptCurrentExchange"), arg, data, getCap)
}

// RejectCurrent rejects the request being handled.
func (c *Client) RejectCurrent() AcceptResult {
	return c.Reject(c.currentAsker("RejectCurrent"))
}

// Cancel implements CANCEL (§3.3.3): true only if the request had not
// completed; a completed (or completing) request always wins the race.
func (c *Client) Cancel(req frame.RequesterSig) bool {
	c.checkKilled()
	c.mustBeTask("Cancel")
	c.charge()
	ok := c.node.cancelRequest(c.taskProc, req)
	c.checkKilled()
	c.gateTask()
	return ok
}

// Die implements DIE (§3.5.1). It does not return.
func (c *Client) Die() {
	c.node.Die()
	panic(killedError{})
}

// --- Blocking request forms (§4.1.1) ---

// blockingCall issues a request and parks the task until it completes.
//
//lint:hotpath
func (c *Client) blockingCall(dst frame.ServerSig, arg int32, put []byte, getSize int) CallResult {
	c.checkKilled()
	c.mustBeTask("blocking request")
	tid, err := c.Request(dst, arg, put, getSize)
	if err != nil {
		// MAXREQUESTS pressure is the client's to manage (§4.1.2): wait
		// for an outstanding request to complete, then retry.
		for err == ErrTooManyRequests {
			outstanding := len(c.node.outstanding)
			//lint:allow noalloc (cold: MAXREQUESTS backpressure)
			c.WaitUntil(func() bool { return len(c.node.outstanding) < outstanding })
			tid, err = c.Request(dst, arg, put, getSize)
		}
		if err != nil {
			//lint:allow noalloc (cold: unrecoverable issue failure)
			panic(fmt.Sprintf("core: blocking request: %v", err))
		}
	}
	var res Event
	done := false
	//lint:allow noalloc (counted: one interception record and closure per blocking call)
	c.intercept[tid] = func(ev Event) {
		res = ev
		done = true
	}
	//lint:allow noalloc (counted: one completion-wait closure per blocking call)
	c.WaitUntil(func() bool { return done })
	st := res.Status
	if st == StatusSuccess && res.Arg < 0 {
		st = StatusRejected // the REJECT convention (§4.1.2)
	}
	return CallResult{Status: st, Arg: res.Arg, Data: res.Data, PutN: res.PutN, GetN: res.GetN, TID: tid}
}

// BSignal is the blocking SIGNAL (B_SIGNAL, §4.1.1).
func (c *Client) BSignal(dst frame.ServerSig, arg int32) CallResult {
	return c.blockingCall(dst, arg, nil, 0)
}

// BPut is the blocking PUT.
func (c *Client) BPut(dst frame.ServerSig, arg int32, data []byte) CallResult {
	return c.blockingCall(dst, arg, data, 0)
}

// BGet is the blocking GET.
func (c *Client) BGet(dst frame.ServerSig, arg int32, getSize int) CallResult {
	return c.blockingCall(dst, arg, nil, getSize)
}

// BExchange is the blocking EXCHANGE.
func (c *Client) BExchange(dst frame.ServerSig, arg int32, put []byte, getSize int) CallResult {
	return c.blockingCall(dst, arg, put, getSize)
}

// --- DISCOVER (§3.4.4, §4.1.3) ---

// DiscoverAll broadcasts a pattern query and returns every machine that
// advertises it (up to max, bounded by the window).
func (c *Client) DiscoverAll(p frame.Pattern, max int) []frame.MID {
	if max <= 0 {
		max = 16
	}
	res := c.blockingCall(frame.ServerSig{MID: frame.BroadcastMID, Pattern: p}, OK, nil, max*2)
	if res.Status != StatusSuccess {
		return nil
	}
	return DecodeMIDList(res.Data)
}

// Discover blocks until one server advertising p is found, returning its
// signature; ok is false if the window closed with no responses.
func (c *Client) Discover(p frame.Pattern) (frame.ServerSig, bool) {
	mids := c.DiscoverAll(p, 1)
	if len(mids) == 0 {
		return frame.ServerSig{}, false
	}
	return frame.ServerSig{MID: mids[0], Pattern: p}, true
}

package core

import (
	"strings"
	"testing"
	"time"

	"soda/internal/frame"
)

// TestPartialTransfers checks §4.1.2: the server may ACCEPT with a smaller
// buffer than REQUESTed, and the requester may receive a partially filled
// final chunk; both sides learn the amounts moved.
func TestPartialTransfers(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var acc AcceptResult
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			// Take only 3 of the requester's 8 put bytes; return only 4
			// bytes into its 100-byte get buffer.
			acc = c.AcceptCurrentExchange(OK, []byte("four"), 3)
		},
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BExchange(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, []byte("12345678"), 100)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("result = %+v", got)
	}
	if got.PutN != 3 || got.GetN != 4 || string(got.Data) != "four" {
		t.Fatalf("requester saw PutN=%d GetN=%d data=%q", got.PutN, got.GetN, got.Data)
	}
	if acc.PutN != 3 || string(acc.Data) != "123" {
		t.Fatalf("server saw PutN=%d data=%q", acc.PutN, acc.Data)
	}
}

// TestUnadvertiseDoesNotAffectDeliveredRequests checks §3.4.1.
func TestUnadvertiseDoesNotAffectDeliveredRequests(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var delivered frame.RequesterSig
	have := false
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				delivered = ev.Asker
				have = true
			}
		},
		Task: func(c *Client) {
			c.WaitUntil(func() bool { return have })
			_ = c.Unadvertise(testPattern)
			c.Hold(50 * time.Millisecond)
			// The already-delivered request is still acceptable.
			if res := c.AcceptSignal(delivered, OK); res.Status != AcceptSuccess {
				t.Errorf("accept after unadvertise: %v", res.Status)
			}
			c.WaitUntil(func() bool { return false })
		},
	}
	var first, second *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			r1 := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			first = &r1
			// New requests to the unadvertised pattern fail.
			r2 := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			second = &r2
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if first == nil || first.Status != StatusSuccess {
		t.Fatalf("first = %+v", first)
	}
	if second == nil || second.Status != StatusUnadvertised {
		t.Fatalf("second = %+v, want UNADVERTISED", second)
	}
}

// TestPipelinedInputBuffer checks §5.2.3: a request finding the handler
// BUSY is parked and delivered at ENDHANDLER without a BUSY NACK.
func TestPipelinedInputBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipelined = true
	cfg.PipelineHold = 100 * time.Millisecond // outlast the busy handler
	n := newTestNet(t, 1, cfg, 1, 2, 3)
	var arrivals []frame.MID
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			arrivals = append(arrivals, ev.Asker.MID)
			c.Hold(30 * time.Millisecond) // keep the handler busy
			c.AcceptCurrentSignal(OK)
		},
	}
	caller := Program{
		Task: func(c *Client) {
			c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
		},
	}
	n.reg["c1"] = caller
	n.reg["c3"] = caller
	n.boot(2, "server")
	n.boot(1, "c1")
	n.boot(3, "c3")
	n.run(5 * time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// With the input buffer, the second request is parked rather than
	// NACKed; the bus must carry no BUSY frames.
	if st := n.b.Stats(); st.ByKind[frame.TransportNack] != 0 {
		t.Fatalf("saw %d NACKs; the pipelined kernel should park instead", st.ByKind[frame.TransportNack])
	}
}

// TestPipelineHoldExpiry: a request parked past PipelineHold is BUSY-NACKed
// so the requester's kernel resumes retrying.
func TestPipelineHoldExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipelined = true
	cfg.PipelineHold = 5 * time.Millisecond
	n := newTestNet(t, 1, cfg, 1, 2, 3)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			c.Hold(60 * time.Millisecond) // far past the pipeline hold
			c.AcceptCurrentSignal(OK)
		},
	}
	caller := Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			if res.Status != StatusSuccess {
				t.Errorf("caller %d: %v", c.MID(), res.Status)
			}
		},
	}
	n.reg["caller"] = caller
	n.boot(2, "server")
	n.boot(1, "caller")
	n.boot(3, "caller")
	n.run(5 * time.Second)
	if st := n.b.Stats(); st.ByKind[frame.TransportNack] == 0 {
		t.Fatal("expected BUSY NACKs once the pipeline hold expired")
	}
}

// TestAcceptBeforeRequestOrdering checks §3.7.5: if C1 issues an ACCEPT
// followed by a REQUEST to C2, the ACCEPT invokes C2's handler first.
func TestAcceptBeforeRequestOrdering(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var order []string
	var pending frame.RequesterSig
	have := false
	n.reg["c1"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				pending = ev.Asker
				have = true
			}
		},
		Task: func(c *Client) {
			c.WaitUntil(func() bool { return have })
			c.Hold(20 * time.Millisecond)
			// Accept C2's request, then immediately request from C2.
			c.AcceptSignal(pending, OK)
			if _, err := c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK); err != nil {
				t.Errorf("signal: %v", err)
			}
			c.WaitUntil(func() bool { return false })
		},
	}
	n.reg["c2"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			switch ev.Kind {
			case EventRequestCompletion:
				order = append(order, "completion")
			case EventRequestArrival:
				order = append(order, "arrival")
				c.AcceptCurrentSignal(OK)
			}
		},
		Task: func(c *Client) {
			if _, err := c.Signal(frame.ServerSig{MID: 1, Pattern: testPattern}, OK); err != nil {
				t.Errorf("signal: %v", err)
			}
			c.WaitUntil(func() bool { return false })
		},
	}
	n.boot(1, "c1")
	n.boot(2, "c2")
	n.run(2 * time.Second)
	if len(order) < 2 || order[0] != "completion" || order[1] != "arrival" {
		t.Fatalf("handler order = %v, want completion before arrival (§3.7.5)", order)
	}
}

// TestRequestToSelfRejected checks §3.3: no local messages.
func TestRequestToSelfRejected(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1)
	var err error
	n.reg["solo"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Task: func(c *Client) {
			_, err = c.Signal(frame.ServerSig{MID: 1, Pattern: testPattern}, OK)
		},
	}
	n.boot(1, "solo")
	n.run(time.Second)
	if err != ErrLocalRequest {
		t.Fatalf("err = %v, want ErrLocalRequest", err)
	}
}

// TestBlockingCallRidesOutMaxRequests: B_* wait for an outstanding slot
// instead of failing (§4.1.2's exception handling strategy).
func TestBlockingCallRidesOutMaxRequests(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	accepted := 0
	var queue []frame.RequesterSig
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				queue = append(queue, ev.Asker)
			}
		},
		Task: func(c *Client) {
			for {
				c.WaitUntil(func() bool { return len(queue) > 0 })
				c.Hold(40 * time.Millisecond) // slow drain
				sig := queue[0]
				queue = queue[1:]
				c.AcceptSignal(sig, OK)
				accepted++
			}
		},
	}
	done := false
	n.reg["client"] = Program{
		Task: func(c *Client) {
			dst := frame.ServerSig{MID: 2, Pattern: testPattern}
			// Fill the MAXREQUESTS window without blocking…
			for i := 0; i < 3; i++ {
				if _, err := c.Signal(dst, OK); err != nil {
					t.Errorf("signal %d: %v", i, err)
				}
			}
			// …then a blocking call must wait for room and still succeed.
			if res := c.BSignal(dst, OK); res.Status != StatusSuccess {
				t.Errorf("blocking call: %v", res.Status)
			}
			done = true
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(10 * time.Second)
	if !done {
		t.Fatal("blocking call never completed")
	}
	if accepted < 4 {
		t.Fatalf("server accepted %d, want ≥4", accepted)
	}
}

// TestKillDuringSuspendedAccept: terminating a client whose handler is
// blocked inside ACCEPT must unwind cleanly.
func TestKillDuringSuspendedAccept(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2, 3)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				// GET with data: the accept blocks on the handshake; we
				// kill the client mid-flight by crashing the requester
				// so the handshake stalls.
				c.AcceptCurrentGet(OK, make([]byte, 400))
			}
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			_, _ = c.Get(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, 400)
			c.WaitUntil(func() bool { return false })
		},
	}
	n.reg["killer"] = Program{
		Task: func(c *Client) {
			c.Hold(8 * time.Millisecond) // while the accept is in flight
			c.BSignal(frame.ServerSig{MID: 2, Pattern: DefaultKillPattern}, OK)
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.boot(3, "killer")
	n.run(5 * time.Second)
	if n.nodes[2].Client() != nil {
		t.Fatal("server client survived the kill")
	}
}

// TestRemoteBootMultiChunkImage ships a program name longer than one boot
// chunk (a series of PUTs, §3.5.2).
func TestRemoteBootMultiChunkImage(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	longName := "child-" + strings.Repeat("x", 3*BootChunkSize)
	ran := false
	n.reg[longName] = Program{
		Init: func(c *Client, _ frame.MID) { ran = true },
	}
	var bootErr error
	n.reg["parent"] = Program{
		Task: func(c *Client) {
			_, bootErr = BootRemote(c, 2, DefaultBootPattern, longName)
		},
	}
	n.boot(1, "parent")
	n.run(5 * time.Second)
	if bootErr != nil {
		t.Fatalf("boot: %v", bootErr)
	}
	if !ran {
		t.Fatal("multi-chunk image never executed")
	}
}

// TestCompletionEventCarriesTransferReport checks the §3.7.6 handler
// arguments on completion.
func TestCompletionEventCarriesTransferReport(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				c.AcceptCurrentExchange(7, []byte("ab"), ev.PutSize)
			}
		},
	}
	var got Event
	have := false
	n.reg["client"] = Program{
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestCompletion {
				got = ev
				have = true
			}
		},
		Task: func(c *Client) {
			tid, err := c.Exchange(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, []byte("12345"), 64)
			if err != nil {
				t.Errorf("exchange: %v", err)
				return
			}
			c.WaitUntil(func() bool { return have })
			if got.Asker.TID != tid {
				t.Errorf("completion tid = %v, want %v", got.Asker.TID, tid)
			}
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if !have {
		t.Fatal("no completion event")
	}
	if got.Status != StatusSuccess || got.Arg != 7 || got.PutN != 5 || got.GetN != 2 || string(got.Data) != "ab" {
		t.Fatalf("completion = %+v", got)
	}
}

// TestAdvertiseUniqueAvoidsSlots: minted patterns never clobber existing
// table entries; a full table errors.
func TestAdvertiseUniqueAvoidsSlots(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1)
	var firstErr error
	fullErr := error(nil)
	n.reg["x"] = Program{
		Init: func(c *Client, _ frame.MID) {
			_ = c.Advertise(testPattern)
			for i := 0; i < 255; i++ {
				if _, err := c.AdvertiseUnique(); err != nil {
					firstErr = err
					return
				}
			}
			_, fullErr = c.AdvertiseUnique()
		},
	}
	n.boot(1, "x")
	n.run(time.Second)
	if firstErr != nil {
		t.Fatalf("AdvertiseUnique failed early: %v", firstErr)
	}
	if fullErr == nil {
		t.Fatal("AdvertiseUnique on a full table must fail")
	}
	if !n.nodes[1].advertised(testPattern) {
		t.Fatal("minted patterns clobbered the well-known entry")
	}
}

// TestCrashDuringExchangeDataFlight: the requester crashes while the
// server's accept handshake is outstanding; ACCEPT reports CRASHED within
// a bounded time.
func TestCrashDuringExchangeDataFlight(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var acc *AcceptResult
	var doneAt time.Duration
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				res := c.AcceptCurrentGet(OK, make([]byte, 1000))
				acc = &res
				doneAt = c.Now()
			}
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			_, _ = c.Get(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, 1000)
			c.WaitUntil(func() bool { return false })
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(7 * time.Millisecond) // request delivered; accept starting
	n.nodes[1].Crash()
	n.run(10 * time.Second)
	if acc == nil {
		t.Fatal("accept never returned")
	}
	if acc.Status != AcceptCrashed {
		t.Fatalf("accept = %v, want CRASHED", acc.Status)
	}
	if doneAt > 2*time.Second {
		t.Fatalf("accept unblocked only at %v; must be bounded", doneAt)
	}
}

package core

import (
	"soda/internal/frame"
	"soda/internal/sim"
)

// ObsKind discriminates observer events (see ObsEvent).
type ObsKind int

const (
	// ObsIssue: a REQUEST was issued; Sig identifies it, Dst names the
	// addressed service (Dst.MID is BroadcastMID for DISCOVER).
	ObsIssue ObsKind = iota + 1
	// ObsDelivered: the REQUEST's transport send completed — the server
	// kernel acknowledged it (the requester-side delivery hop, between
	// issue and the server-side arrival).
	ObsDelivered
	// ObsArrival: a REQUEST was delivered to this node's client handler;
	// Sig identifies the request, Dst the local service it matched.
	ObsArrival
	// ObsComplete: a REQUEST completed; Sig identifies it, Status the
	// outcome.
	ObsComplete
	// ObsCancelled: a REQUEST was withdrawn by a successful CANCEL
	// before completing; its handler is never invoked.
	ObsCancelled
	// ObsAccept: an ACCEPT resolved at the serving node; Sig names the
	// accepted request, Accept the outcome.
	ObsAccept
	// ObsCrash: the node crashed (processor failure).
	ObsCrash
	// ObsDie: the node's client executed DIE (or was killed, or its task
	// returned).
	ObsDie
	// ObsReboot: the node rejoined the network after a crash.
	ObsReboot
	// ObsAdvertise: a client pattern was bound to this node's handler;
	// Pattern names it. With ObsUnadvertise, ObsCrash and ObsDie this is
	// the feed a pattern directory (the internet layer's DISCOVER cache)
	// needs to stay coherent.
	ObsAdvertise
	// ObsUnadvertise: a client pattern binding was removed; Pattern names
	// it.
	ObsUnadvertise
)

func (k ObsKind) String() string {
	switch k {
	case ObsIssue:
		return "ISSUE"
	case ObsDelivered:
		return "DELIVERED"
	case ObsArrival:
		return "ARRIVAL"
	case ObsComplete:
		return "COMPLETE"
	case ObsCancelled:
		return "CANCELLED"
	case ObsAccept:
		return "ACCEPT"
	case ObsCrash:
		return "CRASH"
	case ObsDie:
		return "DIE"
	case ObsReboot:
		return "REBOOT"
	case ObsAdvertise:
		return "ADVERTISE"
	case ObsUnadvertise:
		return "UNADVERTISE"
	default:
		return "OBS(?)"
	}
}

// ObsEvent is one entry of the kernel's observer stream: the client-visible
// protocol transitions (request issue, delivery, completion, accept
// outcomes) plus node lifecycle changes. The stream feeds the fault layer's
// invariant checkers and the obs layer's tracer and metrics registry; it is
// not part of the SODA model and emitting it must never change kernel
// behavior.
//
// lint:event — construct only under a nil-consumer guard (obszerocost).
type ObsEvent struct {
	At   sim.Time
	Kind ObsKind
	// Node is the machine the event happened on.
	Node frame.MID
	// Sig identifies the request concerned (zero for lifecycle events).
	Sig frame.RequesterSig
	// Dst is the addressed service (ObsIssue) or the local service
	// matched (ObsArrival).
	Dst frame.ServerSig
	// Status is the completion outcome (ObsComplete only).
	Status Status
	// Accept is the accept outcome (ObsAccept only).
	Accept AcceptStatus
	// Pattern is the client pattern concerned (ObsAdvertise and
	// ObsUnadvertise only).
	Pattern frame.Pattern
}

// observe emits ev on the node's observer, stamping time and place.
func (n *Node) observe(ev ObsEvent) {
	if n.cfg.Observer == nil {
		return
	}
	ev.At = n.k.Now()
	ev.Node = n.mid
	//lint:allow noalloc (observer: nil-guarded kernel event emission, absent on measured runs)
	n.cfg.Observer(ev)
}

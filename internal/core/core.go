// Package core implements the SODA kernel (chapter 3 of the thesis) and the
// uniprogrammed client runtime it serves.
//
// Each Node pairs a kernel processor with (at most) one client process. The
// kernel supplies the ten SODA primitives — REQUEST, ACCEPT, CANCEL,
// ADVERTISE, UNADVERTISE, GETUNIQUEID, OPEN, CLOSE, ENDHANDLER, DIE — plus
// the kernel-interpreted reserved patterns (BOOT, LOAD, KILL, SYSTEM) and
// broadcast DISCOVER. Reliable transport is provided by internal/deltat over
// internal/bus, all under the internal/sim virtual clock.
package core

import (
	"time"

	"soda/internal/deltat"
	"soda/internal/frame"
)

// Status is the disposition of a completed REQUEST, as seen by the
// requester's handler (§3.7.6).
type Status int

const (
	// StatusSuccess: the request was ACCEPTed and data exchanged.
	StatusSuccess Status = iota + 1
	// StatusCancelled: the request was withdrawn by CANCEL before
	// completion (reported to servers whose ACCEPT lost the race).
	StatusCancelled
	// StatusCrashed: the peer crashed (or executed DIE) before the
	// exchange completed (§3.6.1).
	StatusCrashed
	// StatusUnadvertised: the pattern in the server signature is not
	// advertised at the destination (§3.4.1).
	StatusUnadvertised
	// StatusRejected is the SODAL-level convention: the server ACCEPTed
	// with a negative argument and no data (the REJECT statement,
	// §4.1.2). The kernel reports StatusSuccess; blocking wrappers remap.
	StatusRejected
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "SUCCESS"
	case StatusCancelled:
		return "CANCELLED"
	case StatusCrashed:
		return "CRASHED"
	case StatusUnadvertised:
		return "UNADVERTISED"
	case StatusRejected:
		return "REJECTED"
	default:
		return "STATUS(?)"
	}
}

// EventKind discriminates handler invocations (§3.7.6).
type EventKind int

const (
	// EventRequestArrival: a REQUEST addressed to an advertised pattern
	// arrived; the tag fields describe it.
	EventRequestArrival EventKind = iota + 1
	// EventRequestCompletion: a previously issued REQUEST completed
	// (successfully or not).
	EventRequestCompletion
)

func (k EventKind) String() string {
	switch k {
	case EventRequestArrival:
		return "REQUEST_ARRIVAL"
	case EventRequestCompletion:
		return "REQUEST_COMPLETION"
	default:
		return "EVENT(?)"
	}
}

// Event is the information supplied to the client handler — the "tag" of
// §6.11. On arrivals, Asker names the remote requester and Pattern/Arg/
// PutSize/GetSize describe the request. On completions, Asker carries this
// client's own MID and the TID of the completed request, Status/Arg report
// the outcome, Data holds any received bytes, and PutN/GetN report the
// amount transferred in each direction.
type Event struct {
	Kind    EventKind
	Asker   frame.RequesterSig
	Pattern frame.Pattern
	Arg     int32
	Status  Status
	PutSize int
	GetSize int
	Data    []byte
	PutN    int
	GetN    int
}

// Costs models client-processor overheads, split into the buckets of the
// thesis's breakdown table (§5.5).
type Costs struct {
	// CtxSwitch is charged for every handler invocation (request arrival
	// and request completion interrupts).
	CtxSwitch time.Duration
	// ClientOverhead is charged per message-passing primitive invocation
	// (descriptor pool management, trap overhead; §5.5).
	ClientOverhead time.Duration
}

// CostTotals accumulates client-side cost buckets for the breakdown table.
type CostTotals struct {
	CtxSwitch      time.Duration
	ClientOverhead time.Duration
}

// Config parameterizes a node.
type Config struct {
	// Pipelined selects the input-buffer variant of the kernel: an
	// incoming REQUEST that finds the handler BUSY is parked briefly in
	// the input buffer instead of being BUSY-NACKed (§5.2.3).
	Pipelined bool
	// MaxRequests is MAXREQUESTS, the cap on uncompleted requests per
	// requester (§3.3.2). Defaults to 3.
	MaxRequests int
	// AcceptWindow is how long the kernel withholds a REQUEST's
	// acknowledgement hoping to piggyback the ACCEPT on it (§5.2.3).
	// Defaults to the transport's A.
	AcceptWindow time.Duration
	// PipelineHold is how long a pipelined kernel parks a REQUEST for a
	// BUSY handler before giving up with a BUSY NACK.
	PipelineHold time.Duration
	// ProbeInterval is the period of the request-monitoring probe
	// (§3.6.2); ProbeFailLimit successive failures report a crash.
	ProbeInterval  time.Duration
	ProbeFailLimit int
	// DiscoverWindow is how long a broadcast DISCOVER collects replies
	// (§3.4.4); DiscoverStagger spaces replies by MID to avoid
	// collisions (§5.3).
	DiscoverWindow  time.Duration
	DiscoverStagger time.Duration
	// AcceptDataTimeout bounds how long an ACCEPT waits for re-sent put
	// data before reporting the requester crashed.
	AcceptDataTimeout time.Duration
	// KernelRMRSize, when positive, enables the §6.17.2 kernel-level
	// remote-memory-reference service with a client-shared region of
	// that many bytes. The client's OPEN/CLOSE state gates the kernel
	// handler, providing the section's synchronization.
	KernelRMRSize int
	// Observer, when non-nil, receives the node's protocol event stream
	// (see ObsEvent). Used by the fault layer's invariant checkers; it
	// must never influence kernel behavior.
	Observer func(ObsEvent)
	// Costs are the client-processor overheads.
	Costs Costs
	// Transport configures the Delta-t endpoint.
	Transport deltat.Config
}

// DefaultConfig is calibrated against the thesis's measurements (§5.5).
func DefaultConfig() Config {
	tr := deltat.DefaultConfig()
	return Config{
		MaxRequests:       3,
		AcceptWindow:      tr.A,
		PipelineHold:      8 * time.Millisecond,
		ProbeInterval:     250 * time.Millisecond,
		ProbeFailLimit:    2,
		DiscoverWindow:    40 * time.Millisecond,
		DiscoverStagger:   time.Millisecond,
		AcceptDataTimeout: tr.DeadAfter(),
		Costs: Costs{
			CtxSwitch:      400 * time.Microsecond,
			ClientOverhead: 1100 * time.Microsecond,
		},
		Transport: tr,
	}
}

// Reserved patterns interpreted by the kernel (§3.7.7.1). BOOT and KILL are
// bound at SODA creation time; each LOAD pattern is minted at boot time.
var (
	// DefaultBootPattern marks a node available to receive a client.
	DefaultBootPattern = frame.ReservedPattern(0x0B0075)
	// DefaultKillPattern terminates the client regardless of handler
	// state; distributed only to privileged clients (§3.5.3).
	DefaultKillPattern = frame.ReservedPattern(0x0D1E5)
	// SystemPattern accepts RESERVED-pattern administration requests
	// from machine 0 only (§3.5.4).
	SystemPattern = frame.ReservedPattern(0x5157E)
	// RMRPattern is the reserved entry point of the optional kernel-level
	// remote-memory-reference service (§6.17.2): PEEK is a GET and POKE a
	// PUT with the address in the request argument, serviced by the
	// kernel without client intervention. Enabled per node with
	// Config.KernelRMRSize.
	RMRPattern = frame.ReservedPattern(0x9E40)
)

// Actions accepted on SystemPattern, carried in the request argument
// (§3.5.4).
const (
	// SysAddBootPattern adds the pattern in the request data as a boot
	// pattern.
	SysAddBootPattern int32 = iota + 1
	// SysDelBootPattern removes a boot pattern.
	SysDelBootPattern
	// SysReplaceKillPattern substitutes the kill pattern.
	SysReplaceKillPattern
)

package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
)

// testNet wires a simulated SODA network for tests.
type testNet struct {
	t     *testing.T
	k     *sim.Kernel
	b     *bus.Bus
	reg   Registry
	nodes map[frame.MID]*Node
}

func newTestNet(t *testing.T, seed int64, cfg Config, mids ...frame.MID) *testNet {
	t.Helper()
	k := sim.New(seed)
	k.SetEventLimit(5_000_000)
	b := bus.New(k, bus.DefaultConfig())
	n := &testNet{t: t, k: k, b: b, reg: Registry{}, nodes: make(map[frame.MID]*Node)}
	for _, mid := range mids {
		node, err := NewNode(k, b.Wire(), mid, cfg, n.reg)
		if err != nil {
			t.Fatalf("NewNode(%d): %v", mid, err)
		}
		n.nodes[mid] = node
	}
	return n
}

func (n *testNet) boot(mid frame.MID, prog string) {
	n.t.Helper()
	if err := n.nodes[mid].Boot(prog, 0); err != nil {
		n.t.Fatalf("Boot(%d, %q): %v", mid, prog, err)
	}
}

// run executes the simulation for the given virtual duration; parked server
// tasks are expected, so bounded runs never fail on idle processes.
func (n *testNet) run(d time.Duration) {
	n.t.Helper()
	if err := n.k.RunUntil(n.k.Now() + d); err != nil {
		n.t.Fatalf("RunUntil: %v", err)
	}
}

var testPattern = frame.WellKnownPattern(0o346)

// echoServer accepts every arrival immediately in the handler, echoing the
// received bytes back (an EXCHANGE server).
func echoServer() Program {
	return Program{
		Init: func(c *Client, _ frame.MID) {
			if err := c.Advertise(testPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			res := c.AcceptCurrentExchange(OK, []byte("echo!"), ev.PutSize)
			_ = res
		},
	}
}

func TestSignalRoundTrip(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var got *CallResult
	n.reg["server"] = echoServer()
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, 7)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if got == nil {
		t.Fatal("signal never completed")
	}
	if got.Status != StatusSuccess {
		t.Fatalf("status = %v, want SUCCESS", got.Status)
	}
}

func TestPutDeliversData(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var served []byte
	var arrival Event
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			arrival = ev
			res := c.AcceptCurrentPut(OK, ev.PutSize)
			served = res.Data
		},
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BPut(frame.ServerSig{MID: 2, Pattern: testPattern}, 42, []byte("payload bytes"))
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if string(served) != "payload bytes" {
		t.Fatalf("server received %q", served)
	}
	if arrival.Arg != 42 || arrival.PutSize != 13 || arrival.GetSize != 0 {
		t.Fatalf("arrival tag = %+v", arrival)
	}
	if arrival.Pattern != testPattern {
		t.Fatalf("arrival pattern = %v", arrival.Pattern)
	}
	if got == nil || got.Status != StatusSuccess || got.PutN != 13 {
		t.Fatalf("put result = %+v", got)
	}
}

func TestGetReturnsData(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				c.AcceptCurrentGet(5, []byte("file contents"))
			}
		},
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BGet(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, 64)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("get result = %+v", got)
	}
	if string(got.Data) != "file contents" || got.GetN != 13 || got.Arg != 5 {
		t.Fatalf("get result = %+v", got)
	}
}

func TestExchangeBothWays(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipelined=%v", pipelined), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Pipelined = pipelined
			n := newTestNet(t, 1, cfg, 1, 2)
			var served []byte
			n.reg["server"] = Program{
				Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
				Handler: func(c *Client, ev Event) {
					if ev.Kind == EventRequestArrival {
						res := c.AcceptCurrentExchange(OK, []byte("response"), ev.PutSize)
						served = res.Data
					}
				},
			}
			var got *CallResult
			n.reg["client"] = Program{
				Task: func(c *Client) {
					res := c.BExchange(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, []byte("question"), 64)
					got = &res
				},
			}
			n.boot(2, "server")
			n.boot(1, "client")
			n.run(time.Second)
			if string(served) != "question" {
				t.Fatalf("server got %q", served)
			}
			if got == nil || got.Status != StatusSuccess || string(got.Data) != "response" {
				t.Fatalf("exchange result = %+v", got)
			}
		})
	}
}

func TestLargeTransfer(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	want := make([]byte, 2000) // 1000 words
	for i := range want {
		want[i] = byte(i * 7)
	}
	var served []byte
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				res := c.AcceptCurrentExchange(OK, want, ev.PutSize)
				served = res.Data
			}
		},
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BExchange(frame.ServerSig{MID: 2, Pattern: testPattern}, OK, want, len(want))
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if !bytes.Equal(served, want) {
		t.Fatalf("server data mismatch (%d bytes)", len(served))
	}
	if got == nil || !bytes.Equal(got.Data, want) {
		t.Fatal("client data mismatch")
	}
}

func TestRejectMapsToRejectedStatus(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				c.RejectCurrent()
			}
		},
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if got == nil || got.Status != StatusRejected {
		t.Fatalf("result = %+v, want REJECTED", got)
	}
}

func TestUnadvertisedPattern(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{} // advertises nothing
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if got == nil || got.Status != StatusUnadvertised {
		t.Fatalf("result = %+v, want UNADVERTISED", got)
	}
}

func TestMaxRequestsEnforced(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		// Never accepts: requests pile up.
	}
	var errs []error
	n.reg["client"] = Program{
		Task: func(c *Client) {
			for i := 0; i < 4; i++ {
				_, err := c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
				errs = append(errs, err)
			}
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if len(errs) != 4 {
		t.Fatalf("issued %d requests", len(errs))
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
	}
	if errs[3] != ErrTooManyRequests {
		t.Fatalf("request 3 error = %v, want ErrTooManyRequests", errs[3])
	}
}

func TestGuessedSignatureAcceptFails(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2, 3)
	// Node 1 requests from node 2; node 3 tries to accept by guessing.
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
	}
	var thiefResult *AcceptResult
	n.reg["thief"] = Program{
		Task: func(c *Client) {
			c.Hold(100 * time.Millisecond)
			res := c.AcceptSignal(frame.RequesterSig{MID: 1, TID: 1}, OK)
			thiefResult = &res
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			_, _ = c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			c.WaitUntil(func() bool { return false }) // park forever
		},
	}
	n.boot(2, "server")
	n.boot(3, "thief")
	n.boot(1, "client")
	n.run(time.Second)
	if thiefResult == nil || thiefResult.Status != AcceptCancelled {
		t.Fatalf("thief accept = %+v, want CANCELLED", thiefResult)
	}
}

func TestDoubleAcceptFails(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var second *AcceptResult
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			c.AcceptCurrentSignal(OK)
			res := c.AcceptCurrentSignal(OK)
			second = &res
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			// Stay alive: an accept reaching a *died* requester reports
			// CRASHED instead (§3.6.1), which is not what this test is
			// about.
			c.WaitUntil(func() bool { return false })
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if second == nil || second.Status != AcceptCancelled {
		t.Fatalf("second accept = %+v, want CANCELLED", second)
	}
}

func TestCancelBeforeAccept(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	accepted := false
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		// Arrival is noted but never accepted from the handler.
		Handler: func(c *Client, ev Event) {},
	}
	var cancelOK *bool
	completions := 0
	n.reg["client"] = Program{
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestCompletion {
				completions++
			}
		},
		Task: func(c *Client) {
			tid, err := c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			if err != nil {
				t.Errorf("signal: %v", err)
				return
			}
			c.Hold(50 * time.Millisecond)
			ok := c.Cancel(frame.RequesterSig{MID: c.MID(), TID: tid})
			cancelOK = &ok
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if cancelOK == nil || !*cancelOK {
		t.Fatalf("cancel = %v, want success", cancelOK)
	}
	if completions != 0 {
		t.Fatalf("handler saw %d completions after successful cancel, want 0", completions)
	}
	_ = accepted
}

func TestCancelLosesToCompletion(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				c.AcceptCurrentSignal(OK)
			}
		},
	}
	var cancelOK *bool
	n.reg["client"] = Program{
		Task: func(c *Client) {
			tid, _ := c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			c.Hold(200 * time.Millisecond) // far past completion
			ok := c.Cancel(frame.RequesterSig{MID: c.MID(), TID: tid})
			cancelOK = &ok
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if cancelOK == nil || *cancelOK {
		t.Fatalf("cancel = %v, want failure after completion", cancelOK)
	}
}

func TestAcceptOfCancelledRequestReturnsCancelled(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var acceptRes *AcceptResult
	var asker frame.RequesterSig
	var haveAsker bool
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				asker = ev.Asker
				haveAsker = true
			}
		},
		Task: func(c *Client) {
			c.WaitUntil(func() bool { return haveAsker })
			c.Hold(150 * time.Millisecond) // let the cancel land first
			res := c.AcceptSignal(asker, OK)
			acceptRes = &res
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			tid, _ := c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			c.Hold(50 * time.Millisecond)
			c.Cancel(frame.RequesterSig{MID: c.MID(), TID: tid})
			c.WaitUntil(func() bool { return false })
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if acceptRes == nil || acceptRes.Status != AcceptCancelled {
		t.Fatalf("accept = %+v, want CANCELLED", acceptRes)
	}
}

func TestTaskSideAcceptQueueing(t *testing.T) {
	// The port idiom (§4.2.1): the handler queues requester signatures;
	// the task accepts them in order.
	n := newTestNet(t, 1, DefaultConfig(), 1, 2, 3)
	var servedArgs []int32
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				q := c.Stash().([]Event)
				c.SetStash(append(q, ev))
			}
		},
		Task: func(c *Client) {
			c.SetStash([]Event{})
			for len(servedArgs) < 4 {
				c.WaitUntil(func() bool { return len(c.Stash().([]Event)) > 0 })
				q := c.Stash().([]Event)
				ev := q[0]
				c.SetStash(q[1:])
				c.AcceptSignal(ev.Asker, OK)
				servedArgs = append(servedArgs, ev.Arg)
			}
		},
	}
	mkClient := func(base int32) Program {
		return Program{
			Task: func(c *Client) {
				for i := int32(0); i < 2; i++ {
					c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, base+i)
				}
			},
		}
	}
	n.reg["c1"] = mkClient(10)
	n.reg["c3"] = mkClient(30)
	n.boot(2, "server")
	n.boot(1, "c1")
	n.boot(3, "c3")
	n.run(3 * time.Second)
	if len(servedArgs) != 4 {
		t.Fatalf("served %d requests, want 4 (%v)", len(servedArgs), servedArgs)
	}
	// Per-requester order must hold.
	var c1Args, c3Args []int32
	for _, a := range servedArgs {
		if a >= 30 {
			c3Args = append(c3Args, a)
		} else {
			c1Args = append(c1Args, a)
		}
	}
	if len(c1Args) != 2 || c1Args[0] != 10 || c1Args[1] != 11 {
		t.Fatalf("c1 order = %v", c1Args)
	}
	if len(c3Args) != 2 || c3Args[0] != 30 || c3Args[1] != 31 {
		t.Fatalf("c3 order = %v", c3Args)
	}
}

func TestServerCrashCompletesRequestCrashed(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		// Holds the request forever.
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(100 * time.Millisecond) // request delivered
	n.nodes[2].Crash()
	n.run(5 * time.Second) // probes detect the crash
	if got == nil || got.Status != StatusCrashed {
		t.Fatalf("result = %+v, want CRASHED", got)
	}
}

func TestServerDieCompletesRequestCrashed(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Task: func(c *Client) {
			c.Hold(100 * time.Millisecond)
			c.Die()
		},
	}
	var got *CallResult
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			got = &res
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(5 * time.Second)
	if got == nil || got.Status != StatusCrashed {
		t.Fatalf("result = %+v, want CRASHED", got)
	}
}

func TestStaleAcceptAfterRequesterCrash(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var acceptRes *AcceptResult
	var asker frame.RequesterSig
	var haveAsker bool
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				asker = ev.Asker
				haveAsker = true
			}
		},
		Task: func(c *Client) {
			c.WaitUntil(func() bool { return haveAsker })
			c.Hold(800 * time.Millisecond) // requester crashes + reboots meanwhile
			res := c.AcceptSignal(asker, OK)
			acceptRes = &res
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			_, _ = c.Signal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			c.WaitUntil(func() bool { return false })
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(100 * time.Millisecond)
	n.nodes[1].Crash()
	n.nodes[1].Reboot(nil)
	n.run(5 * time.Second)
	if acceptRes == nil || acceptRes.Status != AcceptCrashed {
		t.Fatalf("stale accept = %+v, want CRASHED", acceptRes)
	}
}

func TestKillPattern(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	taskSpins := 0
	n.reg["runaway"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Task: func(c *Client) {
			for {
				c.Hold(10 * time.Millisecond)
				taskSpins++
			}
		},
	}
	var killRes *CallResult
	n.reg["manager"] = Program{
		Task: func(c *Client) {
			c.Hold(100 * time.Millisecond)
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: DefaultKillPattern}, OK)
			killRes = &res
		},
	}
	n.boot(2, "runaway")
	n.boot(1, "manager")
	n.run(time.Second)
	if killRes == nil || killRes.Status != StatusSuccess {
		t.Fatalf("kill signal = %+v", killRes)
	}
	if n.nodes[2].Client() != nil {
		t.Fatal("client still running after KILL")
	}
	spinsAtKill := taskSpins
	n.run(time.Second)
	if taskSpins != spinsAtKill {
		t.Fatalf("runaway task kept running after kill (%d -> %d)", spinsAtKill, taskSpins)
	}
}

func TestRemoteBootAndKill(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	childRan := false
	n.reg["child"] = Program{
		Init: func(c *Client, parent frame.MID) {
			if parent != 1 {
				t.Errorf("child sees parent %d, want 1", parent)
			}
			childRan = true
			_ = c.Advertise(testPattern)
		},
	}
	var loadPat frame.Pattern
	var bootErr error
	killed := false
	n.reg["parent"] = Program{
		Task: func(c *Client) {
			// Find a free machine by its boot pattern.
			mids := c.DiscoverAll(DefaultBootPattern, 4)
			if len(mids) != 1 || mids[0] != 2 {
				t.Errorf("discovered %v, want [2]", mids)
				return
			}
			loadPat, bootErr = BootRemote(c, 2, DefaultBootPattern, "child")
			if bootErr != nil {
				return
			}
			c.Hold(100 * time.Millisecond)
			killed = KillChild(c, 2, loadPat)
		},
	}
	n.boot(1, "parent")
	n.run(3 * time.Second)
	if bootErr != nil {
		t.Fatalf("boot: %v", bootErr)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if !killed {
		t.Fatal("kill via load pattern failed")
	}
	if n.nodes[2].Client() != nil {
		t.Fatal("child still running")
	}
	// The machine is bootable again.
	if !n.nodes[2].advertised(DefaultBootPattern) {
		t.Fatal("boot pattern not readvertised after child death")
	}
}

func TestBootPatternUnavailableWhileClaimed(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2, 3)
	var second *CallResult
	n.reg["claimer"] = Program{
		Task: func(c *Client) {
			if _, err := BootRemote(c, 2, DefaultBootPattern, "nothing-registered-is-fine"); err == nil {
				t.Error("boot of unregistered program should fail at start")
			}
		},
	}
	n.reg["late"] = Program{
		Task: func(c *Client) {
			c.Hold(50 * time.Millisecond) // after the claim
			res := c.BGet(frame.ServerSig{MID: 2, Pattern: DefaultBootPattern}, OK, 8)
			second = &res
		},
	}
	n.boot(1, "claimer")
	n.boot(3, "late")
	n.run(3 * time.Second)
	if second == nil || second.Status != StatusUnadvertised {
		t.Fatalf("late boot attempt = %+v, want UNADVERTISED", second)
	}
}

func TestDiscoverFindsAllServers(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2, 3, 4)
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
	}
	var mids []frame.MID
	n.reg["client"] = Program{
		Task: func(c *Client) {
			mids = c.DiscoverAll(testPattern, 8)
		},
	}
	n.boot(2, "server")
	n.boot(3, "server")
	n.boot(4, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if len(mids) != 3 {
		t.Fatalf("discovered %v, want 3 servers", mids)
	}
	seen := map[frame.MID]bool{}
	for _, m := range mids {
		seen[m] = true
	}
	if !seen[2] || !seen[3] || !seen[4] {
		t.Fatalf("discovered %v", mids)
	}
}

func TestDiscoverEmpty(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	var ok bool
	var ranDiscover bool
	n.reg["client"] = Program{
		Task: func(c *Client) {
			_, ok = c.Discover(frame.WellKnownPattern(0o777))
			ranDiscover = true
		},
	}
	n.boot(1, "client")
	n.run(time.Second)
	if !ranDiscover {
		t.Fatal("discover never returned")
	}
	if ok {
		t.Fatal("discover of unadvertised pattern succeeded")
	}
}

func TestSystemPatternPrivilege(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 0, 1, 2)
	newKill := frame.ReservedPattern(0xFEED)
	patBytes := func(p frame.Pattern) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[7-i] = byte(p >> (8 * i))
		}
		return b
	}
	var fromZero, fromOne *CallResult
	n.reg["admin"] = Program{
		Task: func(c *Client) {
			res := c.BPut(frame.ServerSig{MID: 2, Pattern: SystemPattern}, SysReplaceKillPattern, patBytes(newKill))
			fromZero = &res
		},
	}
	n.reg["rogue"] = Program{
		Task: func(c *Client) {
			c.Hold(300 * time.Millisecond)
			res := c.BPut(frame.ServerSig{MID: 2, Pattern: SystemPattern}, SysReplaceKillPattern, patBytes(DefaultKillPattern))
			fromOne = &res
		},
	}
	n.boot(0, "admin")
	n.boot(1, "rogue")
	n.run(2 * time.Second)
	if fromZero == nil || fromZero.Status != StatusSuccess {
		t.Fatalf("admin result = %+v", fromZero)
	}
	if fromOne == nil || fromOne.Status != StatusUnadvertised {
		t.Fatalf("rogue result = %+v, want UNADVERTISED", fromOne)
	}
	if n.nodes[2].killPat != newKill {
		t.Fatalf("kill pattern = %v, want %v", n.nodes[2].killPat, newKill)
	}
}

func TestPatternSlotOverwrite(t *testing.T) {
	// §5.4: two patterns identical in the low eight bits — the second
	// advertisement overwrites the first.
	n := newTestNet(t, 1, DefaultConfig(), 1)
	node := n.nodes[1]
	p1 := frame.WellKnownPattern(0x100AB)
	p2 := frame.WellKnownPattern(0x200AB)
	n.reg["x"] = Program{}
	n.boot(1, "x")
	if err := node.Advertise(p1); err != nil {
		t.Fatal(err)
	}
	if err := node.Advertise(p2); err != nil {
		t.Fatal(err)
	}
	if node.advertised(p1) {
		t.Fatal("p1 survived slot collision")
	}
	if !node.advertised(p2) {
		t.Fatal("p2 not advertised")
	}
}

func TestAdvertiseReservedRejected(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1)
	if err := n.nodes[1].Advertise(DefaultKillPattern); err == nil {
		t.Fatal("advertising a reserved pattern must fail")
	}
	if err := n.nodes[1].Unadvertise(DefaultKillPattern); err == nil {
		t.Fatal("unadvertising a reserved pattern must fail")
	}
}

func TestUniqueIDsDistinctAcrossNodes(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2, 3)
	seen := make(map[frame.Pattern]bool)
	for _, node := range n.nodes {
		for i := 0; i < 100; i++ {
			p := node.GetUniqueID()
			if seen[p] {
				t.Fatalf("duplicate unique id %v", p)
			}
			seen[p] = true
		}
	}
}

func TestCloseDefersArrivals(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	arrivals := 0
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) {
			_ = c.Advertise(testPattern)
			c.Close() // deferred to ENDHANDLER, then handler closed
		},
		Handler: func(c *Client, ev Event) {
			if ev.Kind == EventRequestArrival {
				arrivals++
				c.AcceptCurrentSignal(OK)
			}
		},
		Task: func(c *Client) {
			c.Hold(200 * time.Millisecond)
			c.Open()
			c.WaitUntil(func() bool { return false })
		},
	}
	var got *CallResult
	var doneAt sim.Time
	n.reg["client"] = Program{
		Task: func(c *Client) {
			res := c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
			got = &res
			doneAt = sim.Time(0)
			_ = doneAt
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(2 * time.Second)
	if got == nil || got.Status != StatusSuccess {
		t.Fatalf("result = %+v", got)
	}
	if arrivals != 1 {
		t.Fatalf("arrivals = %d, want 1", arrivals)
	}
}

func TestBlockingCallFromHandlerPanics(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 1, 2)
	panicked := false
	n.reg["server"] = Program{
		Init: func(c *Client, _ frame.MID) { _ = c.Advertise(testPattern) },
		Handler: func(c *Client, ev Event) {
			if ev.Kind != EventRequestArrival {
				return
			}
			func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				c.BSignal(frame.ServerSig{MID: 1, Pattern: testPattern}, OK)
			}()
			c.AcceptCurrentSignal(OK)
		},
	}
	n.reg["client"] = Program{
		Task: func(c *Client) {
			c.BSignal(frame.ServerSig{MID: 2, Pattern: testPattern}, OK)
		},
	}
	n.boot(2, "server")
	n.boot(1, "client")
	n.run(time.Second)
	if !panicked {
		t.Fatal("blocking request from handler must panic (§4.1.1)")
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() (sim.Time, uint64) {
		k := sim.New(77)
		k.SetEventLimit(5_000_000)
		b := bus.New(k, bus.DefaultConfig())
		reg := Registry{}
		var nodes []*Node
		for mid := frame.MID(1); mid <= 3; mid++ {
			node, err := NewNode(k, b.Wire(), mid, DefaultConfig(), reg)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, node)
		}
		reg["server"] = echoServer()
		var doneAt sim.Time
		reg["client"] = Program{
			Task: func(c *Client) {
				for i := 0; i < 5; i++ {
					c.BExchange(frame.ServerSig{MID: 1, Pattern: testPattern}, OK, []byte("x"), 16)
				}
				doneAt = c.node.k.Now()
			},
		}
		_ = nodes[0].Boot("server", 0)
		_ = nodes[1].Boot("client", 0)
		_ = nodes[2].Boot("client", 0)
		if err := k.RunUntil(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return doneAt, b.Stats().FramesSent
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

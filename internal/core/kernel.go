package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/sim"
)

// AcceptStatus is the result of the ACCEPT primitive (§3.3.2).
type AcceptStatus int

const (
	// AcceptSuccess: the data exchange completed.
	AcceptSuccess AcceptStatus = iota + 1
	// AcceptCancelled: the request was cancelled, already completed, or
	// never addressed to this client (§3.3.2(6), §3.3.3).
	AcceptCancelled
	// AcceptCrashed: the requester crashed (or crashed and recovered)
	// before the exchange completed (§3.6.1).
	AcceptCrashed
)

func (s AcceptStatus) String() string {
	switch s {
	case AcceptSuccess:
		return "SUCCESS"
	case AcceptCancelled:
		return "CANCELLED"
	case AcceptCrashed:
		return "CRASHED"
	default:
		return "ACCEPT(?)"
	}
}

// Errors surfaced by the REQUEST primitive.
var (
	// ErrTooManyRequests: MAXREQUESTS uncompleted requests remain; it is
	// the client's responsibility to count (§3.7.4).
	ErrTooManyRequests = fmt.Errorf("core: MAXREQUESTS uncompleted requests outstanding")
	// ErrLocalRequest: messages are only exchanged by distinct
	// processors; there is no provision for local messages (§3.3).
	ErrLocalRequest = fmt.Errorf("core: request addressed to the local machine")
)

// issueRequest implements REQUEST (§3.3.1): non-blocking, returns a TID.
//
//lint:hotpath
func (n *Node) issueRequest(dst frame.ServerSig, arg int32, put []byte, getSize int) (frame.TID, error) {
	if dst.MID == n.mid {
		return 0, ErrLocalRequest
	}
	if len(n.outstanding) >= n.cfg.MaxRequests {
		return 0, ErrTooManyRequests
	}
	tid := n.nextTID()
	//lint:allow noalloc (counted: one outstanding-request record per REQUEST)
	o := &outRequest{
		tid: tid,
		dst: dst,
		arg: arg,
		//lint:allow noalloc (counted: kernel-owned copy of the put buffer)
		putData: append([]byte(nil), put...),
		getSize: getSize,
	}
	//lint:allow noalloc (counted: outstanding map entry, deleted on completion)
	n.outstanding[tid] = o
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsIssue, Sig: frame.RequesterSig{MID: n.mid, TID: tid}, Dst: dst})
	}
	if dst.MID == frame.BroadcastMID {
		//lint:allow noalloc (cold: broadcast DISCOVER, not the request round trip)
		n.startDiscover(o)
		return tid, nil
	}
	//lint:allow noalloc (counted: one Request message per REQUEST)
	msg := &frame.Request{
		TID:     tid,
		Pattern: dst.Pattern,
		Arg:     arg,
		PutSize: uint32(len(put)),
		GetSize: uint32(getSize),
		HasData: len(put) > 0,
		Data:    o.putData,
	}
	full := frame.Encode(msg)
	var retrans []byte
	if msg.HasData && n.ep.Config().Window <= 1 {
		// Retransmissions never carry the data again (§5.2.3); a server
		// that needs it asks via NeedData at ACCEPT time. The windowed
		// transport retransmits individual fragments verbatim instead, so
		// the stripped encoding is never built there.
		stripped := *msg
		stripped.HasData = false
		stripped.Data = nil
		retrans = frame.Encode(&stripped)
	}
	epoch := n.epoch
	//lint:allow noalloc (counted: one send-completion closure per REQUEST)
	cb := func(res deltat.Result) {
		if epoch != n.epoch {
			return
		}
		n.requestSendDone(o, res)
	}
	n.ep.Send(dst.MID, full, retrans, cb)
	return tid, nil
}

// requestSendDone handles the transport outcome of a REQUEST message.
func (n *Node) requestSendDone(o *outRequest, res deltat.Result) {
	if _, live := n.outstanding[o.tid]; !live {
		return // completed or cancelled while in flight
	}
	switch res.Kind {
	case deltat.ResultAcked:
		if len(res.Reply) > 0 {
			if msg, err := frame.Decode(res.Reply); err == nil {
				if acc, ok := msg.(*frame.Accept); ok && acc.TID == o.tid {
					// ACCEPT+ACK piggyback: the PUT best case (§5.2.3) —
					// also the crossing-requests path, where the accept
					// may carry reply data and ask for ours.
					if acc.NeedData {
						//lint:allow noalloc (cold: stale-exchange data re-supply)
						n.ep.SendUrgent(o.dst.MID, frame.Encode(&frame.AcceptData{TID: o.tid, Data: o.putData}), nil, nil)
					}
					n.applyAccept(o, acc)
					return
				}
			}
		}
		o.delivered = true
		if n.cfg.Observer != nil {
			n.observe(ObsEvent{Kind: ObsDelivered, Sig: frame.RequesterSig{MID: n.mid, TID: o.tid}, Dst: o.dst})
		}
		if o.cancelWaiter != nil {
			o.cancelWaiter.Resume()
		}
		n.scheduleProbe(o)
	case deltat.ResultError:
		switch res.Err {
		case frame.ErrUnadvertised:
			n.completeRequest(o, StatusUnadvertised, 0, nil, 0, 0)
		default:
			n.completeRequest(o, StatusCrashed, 0, nil, 0, 0)
		}
	case deltat.ResultPeerDead:
		n.completeRequest(o, StatusCrashed, 0, nil, 0, 0)
	}
}

// applyAccept completes an outstanding request from an Accept message.
func (n *Node) applyAccept(o *outRequest, acc *frame.Accept) {
	putN := min(len(o.putData), int(acc.GetSize))
	getN := min(o.getSize, len(acc.Data))
	n.completeRequest(o, StatusSuccess, acc.Arg, acc.Data[:getN], putN, getN)
}

// completeRequest removes the request and delivers the completion interrupt
// to the client (§3.3.2). A nil client (kernel-issued request) discards it.
func (n *Node) completeRequest(o *outRequest, st Status, arg int32, data []byte, putN, getN int) {
	if _, live := n.outstanding[o.tid]; !live {
		return
	}
	delete(n.outstanding, o.tid)
	o.probeGen++
	o.discoverGen++
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsComplete, Sig: frame.RequesterSig{MID: n.mid, TID: o.tid}, Status: st})
	}
	if o.cancelWaiter != nil {
		o.cancelWaiter.Resume()
	}
	if n.client == nil {
		return
	}
	n.client.deliverCompletion(Event{
		Kind:   EventRequestCompletion,
		Asker:  frame.RequesterSig{MID: n.mid, TID: o.tid},
		Arg:    arg,
		Status: st,
		Data:   data,
		PutN:   putN,
		GetN:   getN,
	})
}

// scheduleProbe arms the request-monitoring probe (§3.6.2): after delivery,
// the requester's kernel periodically verifies the server still holds the
// request; ProbeFailLimit successive silences — or a reply disowning the
// request — report a crash.
func (n *Node) scheduleProbe(o *outRequest) {
	o.probeGen++
	gen := o.probeGen
	epoch := n.epoch
	//lint:allow noalloc (counted: one probe-arm closure per delivered REQUEST)
	n.k.After(n.cfg.ProbeInterval, func() {
		if epoch != n.epoch || o.probeGen != gen {
			return
		}
		if _, live := n.outstanding[o.tid]; !live {
			return
		}
		//lint:allow noalloc (cold: probes fire only when the server is slow to accept)
		n.ep.Send(o.dst.MID, frame.Encode(&frame.Probe{TID: o.tid}), nil, func(res deltat.Result) {
			if epoch != n.epoch || o.probeGen != gen {
				return
			}
			if _, live := n.outstanding[o.tid]; !live {
				return
			}
			alive := false
			if res.Kind == deltat.ResultAcked {
				if msg, err := frame.Decode(res.Reply); err == nil {
					if pr, ok := msg.(*frame.ProbeReply); ok && pr.TID == o.tid {
						alive = pr.Alive
					}
				}
				if !alive {
					// The server answered but disowned the request: it
					// crashed and rebooted. Not escapable by rebooting
					// fast (§3.6.2).
					n.completeRequest(o, StatusCrashed, 0, nil, 0, 0)
					return
				}
				o.probeFails = 0
				n.scheduleProbe(o)
				return
			}
			o.probeFails++
			if o.probeFails >= n.cfg.ProbeFailLimit {
				n.completeRequest(o, StatusCrashed, 0, nil, 0, 0)
				return
			}
			n.scheduleProbe(o)
		})
	})
}

// startDiscover implements the kernel side of a broadcast request (§3.4.4):
// broadcast the query, collect staggered replies for the window, then
// complete the GET with as many MIDs as fit the buffer.
func (n *Node) startDiscover(o *outRequest) {
	o.discover = true
	n.ep.SendDatagram(frame.BroadcastMID, frame.Encode(&frame.Discover{TID: o.tid, Pattern: o.dst.Pattern}))
	epoch := n.epoch
	gen := o.discoverGen
	n.k.After(n.cfg.DiscoverWindow, func() {
		if epoch != n.epoch || o.discoverGen != gen {
			return
		}
		if _, live := n.outstanding[o.tid]; !live {
			return
		}
		limit := min(len(o.discovered), o.getSize/2)
		buf := make([]byte, 0, limit*2)
		for _, mid := range o.discovered[:limit] {
			buf = binary.BigEndian.AppendUint16(buf, uint16(mid))
		}
		n.completeRequest(o, StatusSuccess, 0, buf, 0, len(buf))
	})
}

// DecodeMIDList unpacks the data of a completed DISCOVER request.
func DecodeMIDList(data []byte) []frame.MID {
	out := make([]frame.MID, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		out = append(out, frame.MID(binary.BigEndian.Uint16(data[i:i+2])))
	}
	return out
}

// onDatagram handles unreliable traffic: DISCOVER queries and replies.
func (n *Node) onDatagram(src frame.MID, payload []byte) {
	msg, err := frame.Decode(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *frame.Discover:
		if !n.advertised(m.Pattern) {
			return
		}
		// Stagger replies by MID so they do not collide (§5.3).
		delay := time.Duration(n.mid) * n.cfg.DiscoverStagger
		epoch := n.epoch
		n.k.After(delay, func() {
			if epoch != n.epoch || !n.advertised(m.Pattern) {
				return
			}
			n.ep.SendDatagram(src, frame.Encode(&frame.DiscoverReply{TID: m.TID, Pattern: m.Pattern}))
		})
	case *frame.DiscoverReply:
		o, ok := n.outstanding[m.TID]
		if !ok || !o.discover {
			return
		}
		for _, seen := range o.discovered {
			if seen == src {
				return
			}
		}
		o.discovered = append(o.discovered, src)
	}
}

// onData is the transport delivery hook: every reliable kernel message
// lands here.
//
//lint:hotpath
func (n *Node) onData(src frame.MID, payload []byte) deltat.Decision {
	msg, err := frame.Decode(payload)
	if err != nil {
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrStale}
	}
	switch m := msg.(type) {
	case *frame.Request:
		return n.onRequest(src, m)
	case *frame.Accept:
		return n.onAccept(src, m)
	case *frame.AcceptData:
		return n.onAcceptData(src, m)
	case *frame.Cancel:
		return n.onCancel(src, m)
	case *frame.Probe:
		return n.onProbe(src, m)
	default:
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrStale}
	}
}

// onHoldExpired is the transport's notice that a hold auto-resolved. Core
// manages all hold timers itself (HoldTimeout < 0), so this only fires for
// defensive configurations.
func (n *Node) onHoldExpired(frame.MID, deltat.Verdict) {}

// onRequest implements the server kernel's REQUEST screening (§3.4.1) and
// delivery (§3.3.2).
func (n *Node) onRequest(src frame.MID, m *frame.Request) deltat.Decision {
	if !m.Pattern.Valid() || !n.advertised(m.Pattern) {
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrUnadvertised}
	}
	if m.Pattern.Reserved() {
		//lint:allow noalloc (cold: reserved patterns serve LOAD/KILL, not the request round trip)
		return n.onReservedRequest(src, m)
	}
	c := n.client
	if c == nil {
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrUnadvertised}
	}
	sig := frame.RequesterSig{MID: src, TID: m.TID}
	if _, dup := n.delivered[sig]; dup {
		// Transport-level duplicates are filtered below us; a fresh
		// delivery of a known signature means state desynchronized.
		// Refuse without consuming.
		return deltat.Decision{Verdict: deltat.VerdictBusy}
	}
	if !c.handlerAvailable() {
		if n.cfg.Pipelined && n.heldIn == nil {
			// Pipelined kernel: park the request in the input buffer
			// for a short while instead of BUSY-NACKing (§5.2.3).
			//lint:allow noalloc (cold: pipelined input buffering engages only when the handler is busy)
			h := &heldInput{src: src, req: m}
			n.heldIn = h
			//lint:allow noalloc (cold: pipelined input buffering engages only when the handler is busy)
			n.armPipelineExpiry(h)
			return deltat.Decision{Verdict: deltat.VerdictHold, HoldTimeout: -1}
		}
		return deltat.Decision{Verdict: deltat.VerdictBusy}
	}
	n.deliverRequest(src, m)
	return deltat.Decision{Verdict: deltat.VerdictHold, HoldTimeout: -1}
}

// armPipelineExpiry bounds how long a parked request occupies the input
// buffer before the kernel gives up with a BUSY NACK.
func (n *Node) armPipelineExpiry(h *heldInput) {
	gen := h.gen
	epoch := n.epoch
	n.k.After(n.cfg.PipelineHold, func() {
		if epoch != n.epoch || n.heldIn != h || h.gen != gen {
			return
		}
		n.heldIn = nil
		n.ep.ResolveHold(h.src, deltat.Decision{Verdict: deltat.VerdictBusy})
	})
}

// releaseHeldInput is called when the handler becomes available: a parked
// request is delivered exactly as if it had just arrived.
func (n *Node) releaseHeldInput() {
	h := n.heldIn
	if h == nil || n.client == nil || !n.client.handlerAvailable() {
		return
	}
	n.heldIn = nil
	h.gen++
	n.deliverRequest(h.src, h.req)
}

// deliverRequest records the request, starts the accept window, and invokes
// the client handler with the tag (§3.3.1, §6.11).
func (n *Node) deliverRequest(src frame.MID, m *frame.Request) {
	sig := frame.RequesterSig{MID: src, TID: m.TID}
	//lint:allow noalloc (counted: one delivered-request record per REQUEST)
	in := &inRequest{
		sig:     sig,
		pattern: m.Pattern,
		arg:     m.Arg,
		putSize: int(m.PutSize),
		getSize: int(m.GetSize),
		hasData: m.HasData,
		data:    m.Data,
	}
	//lint:allow noalloc (counted: delivered map entry, deleted at accept/cancel)
	n.delivered[sig] = in
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsArrival, Sig: sig, Dst: frame.ServerSig{MID: n.mid, Pattern: m.Pattern}})
	}
	n.armAcceptWindow(in)
	n.client.deliverArrival(Event{
		Kind:    EventRequestArrival,
		Asker:   sig,
		Pattern: m.Pattern,
		Arg:     m.Arg,
		PutSize: in.putSize,
		GetSize: in.getSize,
	})
}

// armAcceptWindow sends the plain acknowledgement if no ACCEPT arrives
// within the piggyback window. The kernel is bufferless (§6.13): once the
// window closes, the put data that rode along with the REQUEST is dropped
// and must be re-fetched at ACCEPT time.
func (n *Node) armAcceptWindow(in *inRequest) {
	in.timeoutGen++
	gen := in.timeoutGen
	epoch := n.epoch
	//lint:allow noalloc (counted: one accept-window timer closure per delivered REQUEST)
	n.k.After(n.cfg.AcceptWindow, func() {
		if epoch != n.epoch || in.timeoutGen != gen || in.acked || in.accepting {
			return
		}
		in.acked = true
		in.hasData = false
		in.data = nil
		n.ep.ResolveHold(in.sig.MID, deltat.Decision{Verdict: deltat.VerdictAck})
	})
}

// onAccept implements the requester kernel's handling of an ACCEPT message
// arriving as its own DATA frame (the GET/EXCHANGE paths, §5.2.3).
func (n *Node) onAccept(src frame.MID, m *frame.Accept) deltat.Decision {
	o, ok := n.outstanding[m.TID]
	if !ok {
		if uint64(m.TID) <= n.tidFloor {
			// Predates our last crash/DIE: the server must learn we
			// crashed (§3.6.1).
			return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrStale}
		}
		// Completed, cancelled, or a guessed signature (§3.3.2(6)).
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrCancelled}
	}
	if src != o.dst.MID || o.discover {
		// Accepted by a different client than the request named.
		return deltat.Decision{Verdict: deltat.VerdictError, Err: frame.ErrCancelled}
	}
	if m.NeedData {
		// The server kernel dropped (or never received) our put data;
		// re-send it, acknowledging the ACCEPT on the same frame
		// (messages 5–6 of the stale-exchange flow, §5.2.3). The data
		// is already kernel-owned, so the transfer survives a client
		// death in the window (no epoch guard).
		putData := o.putData
		//lint:allow noalloc (cold: stale-exchange data re-supply)
		n.k.After(0, func() {
			//lint:allow noalloc (cold: stale-exchange data re-supply)
			n.ep.SendResolvingHold(src, frame.Encode(&frame.AcceptData{TID: m.TID, Data: putData}), nil, nil)
		})
		n.applyAccept(o, m)
		return deltat.Decision{Verdict: deltat.VerdictHold, HoldTimeout: -1}
	}
	n.applyAccept(o, m)
	// The data's acknowledgement is deferred briefly: a new REQUEST
	// issued in reaction to this completion carries it (§5.2.3). The
	// transport owns the obligation, so it survives client death.
	return deltat.Decision{Verdict: deltat.VerdictAckDeferred}
}

// onAcceptData delivers re-sent put data to a waiting ACCEPT.
func (n *Node) onAcceptData(src frame.MID, m *frame.AcceptData) deltat.Decision {
	sig := frame.RequesterSig{MID: src, TID: m.TID}
	in, ok := n.delivered[sig]
	if !ok || !in.needData {
		return deltat.Decision{Verdict: deltat.VerdictAck}
	}
	in.gotData = m.Data
	in.gotDataOK = true
	n.maybeFinishAccept(in)
	return deltat.Decision{Verdict: deltat.VerdictAck}
}

// onCancel implements the server side of CANCEL (§3.3.3): discard the
// delivered request unless an ACCEPT is already under way.
func (n *Node) onCancel(src frame.MID, m *frame.Cancel) deltat.Decision {
	sig := frame.RequesterSig{MID: src, TID: m.TID}
	in, ok := n.delivered[sig]
	granted := ok && !in.accepting
	if granted {
		delete(n.delivered, sig)
		in.timeoutGen++
	}
	return deltat.Decision{
		Verdict: deltat.VerdictAck,
		//lint:allow noalloc (cold: CANCEL is exceptional traffic)
		Reply: frame.Encode(&frame.CancelReply{TID: m.TID, OK: granted}),
	}
}

// onProbe answers the request-monitoring probe (§3.6.2).
func (n *Node) onProbe(src frame.MID, m *frame.Probe) deltat.Decision {
	sig := frame.RequesterSig{MID: src, TID: m.TID}
	_, alive := n.delivered[sig]
	return deltat.Decision{
		Verdict: deltat.VerdictAck,
		//lint:allow noalloc (cold: probe replies answer slow-accept monitoring)
		Reply: frame.Encode(&frame.ProbeReply{TID: m.TID, Alive: alive}),
	}
}

// maybeFinishAccept resumes a client blocked in ACCEPT once the exchange is
// complete (acknowledged, and any required data re-fetch has arrived) or
// has failed.
func (n *Node) maybeFinishAccept(in *inRequest) {
	if in.acceptWaiter == nil {
		return
	}
	done := in.failStatus != 0 || (in.acceptOut && (!in.needData || in.gotDataOK))
	if done && in.acceptWaiter.Suspended() {
		in.acceptWaiter.Resume()
	}
}

// acceptRequest implements ACCEPT (§3.3.2): blocking, bounded, returning
// the status, any received put data, and the transfer sizes.
//
//lint:hotpath
func (n *Node) acceptRequest(p *sim.Proc, sig frame.RequesterSig, arg int32, getCap int, put []byte) (AcceptStatus, []byte, int, int) {
	in, ok := n.delivered[sig]
	if !ok || in.accepting {
		// Unknown here (guessed, cancelled, or already accepted):
		// forward to the requester's kernel, which adjudicates
		// CANCELLED vs CRASHED from its TID window (§5.4).
		//lint:allow noalloc (cold: orphan accepts answer guessed or cancelled signatures)
		res := n.sendOrphanAccept(p, sig, arg, getCap)
		if (n.client == nil || !n.client.dead) && n.cfg.Observer != nil {
			n.observe(ObsEvent{Kind: ObsAccept, Sig: sig, Accept: res})
		}
		return res, nil, 0, 0
	}
	in.accepting = true
	in.timeoutGen++ // the accept window no longer applies
	putN := min(in.putSize, getCap)
	getN := min(in.getSize, len(put))
	needD := putN > 0 && !in.hasData
	holdPending := !in.acked

	if holdPending && getN == 0 && !needD {
		// Fast path: the ACCEPT piggybacks entirely on the REQUEST's
		// acknowledgement — a PUT costs two packets (§5.2.3). The data
		// is already local, so the server is not delayed at all.
		in.acked = true
		//lint:allow noalloc (counted: one Accept header on the PUT piggyback fast path)
		reply := frame.Encode(&frame.Accept{TID: sig.TID, Arg: arg, GetSize: uint32(getCap)})
		n.ep.ResolveHold(sig.MID, deltat.Decision{Verdict: deltat.VerdictAck, Reply: reply})
		delete(n.delivered, sig)
		if n.cfg.Observer != nil {
			n.observe(ObsEvent{Kind: ObsAccept, Sig: sig, Accept: AcceptSuccess})
		}
		return AcceptSuccess, in.data[:putN], putN, getN
	}

	//lint:allow noalloc (counted: one Accept message per accepted REQUEST)
	msg := &frame.Accept{
		TID:      sig.TID,
		Arg:      arg,
		GetSize:  uint32(getCap),
		NeedData: needD,
		Data:     put[:getN],
	}
	payload := frame.Encode(msg)
	in.needData = needD
	epoch := n.epoch
	//lint:allow noalloc (counted: one accept-completion closure per accepted REQUEST)
	cb := func(res deltat.Result) {
		if epoch != n.epoch {
			return
		}
		switch res.Kind {
		case deltat.ResultAcked:
			in.acceptOut = true
		case deltat.ResultError:
			if res.Err == frame.ErrStale {
				in.failStatus = AcceptCrashed
			} else {
				in.failStatus = AcceptCancelled
			}
		case deltat.ResultPeerDead:
			in.failStatus = AcceptCrashed
		}
		n.maybeFinishAccept(in)
	}
	if holdPending {
		in.acked = true
		if n.ep.OutboxBusy(sig.MID) {
			// Crossing requests: our own REQUEST to this peer is still
			// in flight, so a DATA-frame accept would queue behind it —
			// and the peer is symmetrically stuck, a deadlock. ACCEPT
			// must never be prevented from executing (§5.2.2): ride the
			// held REQUEST's acknowledgement instead. Loss recovery
			// comes from duplicate-replay of the cached ACK payload.
			n.ep.ResolveHold(sig.MID, deltat.Decision{Verdict: deltat.VerdictAck, Reply: payload})
			in.acceptOut = true
		} else {
			n.ep.SendResolvingHold(sig.MID, payload, nil, cb)
		}
	} else {
		n.ep.SendUrgent(sig.MID, payload, nil, cb)
	}
	if needD {
		gen := in.timeoutGen
		//lint:allow noalloc (cold: data re-fetch timeout arms only when put data was dropped)
		n.k.After(n.cfg.AcceptDataTimeout, func() {
			if epoch != n.epoch || in.timeoutGen != gen {
				return
			}
			if !in.gotDataOK && in.failStatus == 0 {
				in.failStatus = AcceptCrashed
				n.maybeFinishAccept(in)
			}
		})
	}
	in.acceptWaiter = p
	for in.failStatus == 0 && !(in.acceptOut && (!in.needData || in.gotDataOK)) {
		p.Suspend()
		if n.client != nil && n.client.dead {
			break
		}
	}
	in.acceptWaiter = nil
	delete(n.delivered, sig)
	if in.failStatus != 0 {
		if n.cfg.Observer != nil {
			n.observe(ObsEvent{Kind: ObsAccept, Sig: sig, Accept: in.failStatus})
		}
		return in.failStatus, nil, 0, 0
	}
	if in.acceptOut && (!in.needData || in.gotDataOK) && n.cfg.Observer != nil {
		// Observed only when the handshake truly finished: the loop also
		// exits when the client dies mid-accept, with the outcome unknown.
		n.observe(ObsEvent{Kind: ObsAccept, Sig: sig, Accept: AcceptSuccess})
	}
	data := in.data
	if needD {
		data = in.gotData
	}
	if len(data) > putN {
		data = data[:putN]
	}
	return AcceptSuccess, data, putN, getN
}

// sendOrphanAccept forwards an ACCEPT for a request this kernel does not
// hold; the requester kernel always rejects it with the proper status.
func (n *Node) sendOrphanAccept(p *sim.Proc, sig frame.RequesterSig, arg int32, getCap int) AcceptStatus {
	if sig.MID == n.mid || sig.MID == frame.BroadcastMID {
		return AcceptCancelled
	}
	st := AcceptCancelled
	done := false
	msg := frame.Encode(&frame.Accept{TID: sig.TID, Arg: arg, GetSize: uint32(getCap)})
	epoch := n.epoch
	n.ep.SendUrgent(sig.MID, msg, nil, func(res deltat.Result) {
		if epoch != n.epoch {
			return
		}
		done = true
		switch {
		case res.Kind == deltat.ResultError && res.Err == frame.ErrStale:
			st = AcceptCrashed
		case res.Kind == deltat.ResultPeerDead:
			st = AcceptCrashed
		case res.Kind == deltat.ResultAcked:
			// The requester kernel never grants an accept it did not
			// see delivered; treat an unexpected grant as cancelled.
			st = AcceptCancelled
		default:
			st = AcceptCancelled
		}
		if p.Suspended() {
			p.Resume()
		}
	})
	for !done {
		p.Suspend()
		if n.client != nil && n.client.dead {
			break
		}
	}
	return st
}

// cancelRequest implements CANCEL (§3.3.3): it may delay the requester
// only long enough to learn the server's state, and fails whenever the
// request completed first.
func (n *Node) cancelRequest(p *sim.Proc, sig frame.RequesterSig) bool {
	if sig.MID != n.mid {
		return false
	}
	o, ok := n.outstanding[sig.TID]
	if !ok {
		return false
	}
	// A request is only cancellable once acknowledged (§5.2.3); wait for
	// the delivery state to settle (bounded by the transport).
	for !o.delivered {
		o.cancelWaiter = p
		p.Suspend()
		o.cancelWaiter = nil
		if n.client != nil && n.client.dead {
			return false
		}
		if _, live := n.outstanding[sig.TID]; !live {
			return false // completed while we waited
		}
	}
	granted := false
	done := false
	epoch := n.epoch
	n.ep.Send(o.dst.MID, frame.Encode(&frame.Cancel{TID: sig.TID}), nil, func(res deltat.Result) {
		if epoch != n.epoch {
			return
		}
		done = true
		if res.Kind == deltat.ResultAcked {
			if msg, err := frame.Decode(res.Reply); err == nil {
				if cr, ok := msg.(*frame.CancelReply); ok && cr.TID == sig.TID {
					granted = cr.OK
				}
			}
		} else if res.Kind == deltat.ResultPeerDead {
			// The server is gone: the request is about to complete
			// CRASHED; the cancel itself fails.
			if cur, live := n.outstanding[sig.TID]; live {
				n.completeRequest(cur, StatusCrashed, 0, nil, 0, 0)
			}
		}
		if p.Suspended() {
			p.Resume()
		}
	})
	for !done {
		o.cancelWaiter = p
		p.Suspend()
		o.cancelWaiter = nil
		if n.client != nil && n.client.dead {
			return false
		}
	}
	if _, live := n.outstanding[sig.TID]; !live {
		return false // completion won the race (§3.3.3)
	}
	if !granted {
		return false
	}
	// Cancelled before completion: remove silently — the handler is
	// never invoked for a successfully cancelled request.
	delete(n.outstanding, sig.TID)
	o.probeGen++
	if n.cfg.Observer != nil {
		n.observe(ObsEvent{Kind: ObsCancelled, Sig: sig})
	}
	return true
}

package core

import (
	"errors"
	"testing"
	"time"

	"soda/internal/frame"
)

// TestAdvertiseUniqueTableFull saturates a node's 256-slot pattern table
// and checks the failure is a typed error naming the node, counted on the
// bus so saturation is visible in Stats.
func TestAdvertiseUniqueTableFull(t *testing.T) {
	n := newTestNet(t, 1, DefaultConfig(), 3)
	var gotErr error
	var advertised int
	n.reg["hog"] = Program{
		Task: func(c *Client) {
			for i := 0; i < 300; i++ {
				if _, err := c.AdvertiseUnique(); err != nil {
					gotErr = err
					return
				}
				advertised++
			}
		},
	}
	n.boot(3, "hog")
	n.run(time.Second)
	if gotErr == nil {
		t.Fatalf("table never filled after %d advertisements", advertised)
	}
	var full *PatternTableFullError
	if !errors.As(gotErr, &full) {
		t.Fatalf("error type = %T (%v), want *PatternTableFullError", gotErr, gotErr)
	}
	if full.Node != 3 {
		t.Fatalf("PatternTableFullError.Node = %d, want 3", full.Node)
	}
	if got := n.b.Stats().PatternTableFull; got != 1 {
		t.Fatalf("bus Stats.PatternTableFull = %d, want 1", got)
	}
}

// TestAdvertiseObserverEvents checks that pattern binding changes reach the
// observer stream — the feed a segment-level DISCOVER cache relies on.
func TestAdvertiseObserverEvents(t *testing.T) {
	var events []ObsEvent
	cfg := DefaultConfig()
	cfg.Observer = func(ev ObsEvent) {
		if ev.Kind == ObsAdvertise || ev.Kind == ObsUnadvertise {
			events = append(events, ev)
		}
	}
	n := newTestNet(t, 1, cfg, 4)
	p := frame.WellKnownPattern(0o712)
	n.reg["flip"] = Program{
		Task: func(c *Client) {
			if err := c.Advertise(p); err != nil {
				panic(err)
			}
			c.Hold(time.Millisecond)
			if err := c.Unadvertise(p); err != nil {
				panic(err)
			}
		},
	}
	n.boot(4, "flip")
	n.run(time.Second)
	if len(events) != 2 {
		t.Fatalf("observer saw %d advertise events, want 2: %v", len(events), events)
	}
	if events[0].Kind != ObsAdvertise || events[0].Pattern != p || events[0].Node != 4 {
		t.Fatalf("first event = %+v, want ADVERTISE of %v on node 4", events[0], p)
	}
	if events[1].Kind != ObsUnadvertise || events[1].Pattern != p {
		t.Fatalf("second event = %+v, want UNADVERTISE of %v", events[1], p)
	}
}

package deltat

import (
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
)

// Targeted tests for the selective-repeat recovery mode (DESIGN.md §12):
// SACK bookkeeping, fast retransmit, the AIMD controller, the bounded
// out-of-order buffer, and the two livelock guards (the reply-lost NACK and
// the probe-state death clock). White-box tests drive the engine's entry
// points directly where orchestrating the exact wire interleaving through
// the bus would be fragile; everything they pin is deterministic state.

// selCfg pins the recovery mode and optionally installs an event recorder.
func selCfg(mode RecoveryMode, events *[]Event) func(*Config) {
	return func(cfg *Config) {
		cfg.Recovery = mode
		if events != nil {
			cfg.Observer = func(ev Event) { *events = append(*events, ev) }
		}
	}
}

// TestWindowDupAckNoReadyCharge is the spurious-retransmit-cliff regression:
// a duplicate cumulative acknowledgement (no progress) must leave the send
// state completely untouched — in particular the wsend.readyAt and
// wsend.lineFreeAt virtual-time serializers, which a pre-audit engine could
// re-charge on every duplicate, and the recovery timer's generation/backoff,
// whose reset would let a dup-ack storm starve the retransmit path.
func TestWindowDupAckNoReadyCharge(t *testing.T) {
	for _, mode := range []RecoveryMode{RecoverySelective, RecoveryGoBackN} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newWindowRigCfg(t, 1, 4, selCfg(mode, nil), []frame.MID{1, 2}, nil)
			e := r.eps[1]
			var res *Result
			e.Send(2, make([]byte, 2600), nil, func(got Result) { res = &got })
			checked := false
			r.k.At(200*time.Microsecond, func() {
				ws := e.wout[2]
				if ws == nil || len(ws.frames) == 0 {
					t.Fatal("no unacknowledged frames at check time")
				}
				ready0, line0 := ws.readyAt, ws.lineFreeAt
				gen0, interval0, frames0 := ws.timerGen, ws.interval, len(ws.frames)
				dup := ws.frames[0].seq - 1 // cumulative point already passed
				// Stay under fastRetransmitDupAcks so the only acceptable
				// reaction is "nothing at all".
				for i := 0; i < fastRetransmitDupAcks-1; i++ {
					e.wProcess(&frame.TransportFrame{
						Kind: frame.TransportFragAck, Src: 2, Dst: 1,
						Seq: dup, ConnOpen: true,
					})
				}
				if ws.readyAt != ready0 || ws.lineFreeAt != line0 {
					t.Errorf("duplicate cum ack charged the serializers: readyAt %v->%v lineFreeAt %v->%v",
						ready0, ws.readyAt, line0, ws.lineFreeAt)
				}
				if ws.timerGen != gen0 || ws.interval != interval0 {
					t.Error("duplicate cum ack reset the recovery timer")
				}
				if len(ws.frames) != frames0 {
					t.Errorf("duplicate cum ack released frames: %d -> %d", frames0, len(ws.frames))
				}
				checked = true
			})
			if err := r.k.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !checked {
				t.Fatal("check never ran")
			}
			if res == nil || res.Kind != ResultAcked {
				t.Fatalf("result = %+v, want acked", res)
			}
			if st := r.b.Stats(); st.FragmentRetransmits != 0 {
				t.Fatalf("%d spurious retransmits after duplicate acks on a clean wire", st.FragmentRetransmits)
			}
		})
	}
}

// TestWindowProbeLivelockDies is the livelock regression: a receiver that
// acknowledges every fragment but never completes the message (here: an
// unresolved hold; in the wild: a record that expired and lost its reply
// cache) must NOT keep the sender's death clock alive with bare acks. The
// sender's probe state freezes the deadline, so the connection dies within
// the Delta-t bound instead of probing forever — exactly like stop-and-wait,
// where the held duplicate earns silence and the clock runs out.
func TestWindowProbeLivelockDies(t *testing.T) {
	for _, mode := range []RecoveryMode{RecoverySelective, RecoveryGoBackN} {
		t.Run(mode.String(), func(t *testing.T) {
			hooks := map[frame.MID]Hooks{
				2: {OnData: func(frame.MID, []byte) Decision {
					return Decision{Verdict: VerdictHold, HoldTimeout: -1} // never resolved
				}},
			}
			r := newWindowRigCfg(t, 1, 4, selCfg(mode, nil), []frame.MID{1, 2}, hooks)
			var res *Result
			var at sim.Time
			r.eps[1].Send(2, make([]byte, 2600), nil, func(got Result) {
				res = &got
				at = r.k.Now()
			})
			if err := r.k.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res == nil || res.Kind != ResultPeerDead {
				t.Fatalf("result = %+v, want peer-dead (not a probe livelock)", res)
			}
			if bound := 3 * sim.Time(DefaultConfig().DeadAfter()); at > bound {
				t.Fatalf("declared dead at %v, after the %v bound — probe acks kept the deadline alive", at, bound)
			}
			if !r.eps[1].Quiescent() {
				t.Fatal("sender not quiescent after peer death")
			}
		})
	}
}

// ackDropSchedule drops message-completion ACK frames before the cutoff,
// leaving everything else untouched.
type ackDropSchedule struct {
	cutoff sim.Time
}

func (s *ackDropSchedule) Judge(now sim.Time, _, _ frame.MID, raw []byte) bus.FaultAction {
	if now >= s.cutoff {
		return bus.FaultAction{}
	}
	if f, err := frame.DecodeTransportShared(raw); err == nil && f.Kind == frame.TransportAck {
		return bus.FaultAction{Drop: true}
	}
	return bus.FaultAction{}
}

// TestWindowReplyLostNack: when the receiver has consumed a message but its
// cached reply is gone (record expiry wiped it), a probe duplicate is
// answered with an ErrReplyLost NACK so the sender fails the message
// promptly instead of probing until the death clock fires. The expiry's
// cache wipe is applied white-box: forcing a real mid-connection expiry
// requires a loss schedule tuned to one seed, which this pins structurally.
func TestWindowReplyLostNack(t *testing.T) {
	calls := 0
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			calls++
			return Decision{Verdict: VerdictAck, Reply: []byte("r")}
		}},
	}
	r := newWindowRig(t, 1, 4, []frame.MID{1, 2}, hooks)
	r.b.SetFaultModel(&ackDropSchedule{cutoff: sim.Time(70 * time.Millisecond)})
	var res *Result
	var at sim.Time
	r.eps[1].Send(2, make([]byte, 2600), nil, func(got Result) {
		res = &got
		at = r.k.Now()
	})
	wiped := false
	r.k.At(60*time.Millisecond, func() {
		wr := r.eps[2].win[1]
		if wr == nil || !wr.valid || len(wr.cache) == 0 {
			t.Fatal("receiver has no cached reply to wipe; message not consumed yet?")
		}
		// Simulate the lazy-expiry reset followed by re-adoption at a later
		// message: the cache is gone and the delivery head has moved past
		// the probed message.
		wr.cache = nil
		wr.cacheAge = nil
		wr.next += 3
		wiped = true
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !wiped {
		t.Fatal("wipe never ran")
	}
	if calls != 1 {
		t.Fatalf("OnData ran %d times, want exactly once", calls)
	}
	if res == nil || res.Kind != ResultError || res.Err != frame.ErrReplyLost {
		t.Fatalf("result = %+v, want ErrReplyLost error", res)
	}
	if bound := 2 * sim.Time(DefaultConfig().DeadAfter()); at > bound {
		t.Fatalf("failed at %v, after %v — the NACK should beat the death clock", at, bound)
	}
}

// dropNthFrag drops the n-th FRAG frame it sees (1-based), once.
type dropNthFrag struct {
	n    int
	seen int
}

func (s *dropNthFrag) Judge(_ sim.Time, _, _ frame.MID, raw []byte) bus.FaultAction {
	f, err := frame.DecodeTransportShared(raw)
	if err != nil || f.Kind != frame.TransportFrag {
		return bus.FaultAction{}
	}
	s.seen++
	return bus.FaultAction{Drop: s.seen == s.n}
}

// TestSelectiveFastRetransmit: one lost fragment inside a deep pipeline is
// recovered by fast retransmit (round 1, before any recovery-timer fire),
// repairs exactly the hole, and every retransmission under selective repeat
// is a selective one — no go-back-N flood.
func TestSelectiveFastRetransmit(t *testing.T) {
	var events []Event
	r := newWindowRigCfg(t, 1, 8, selCfg(RecoverySelective, &events), []frame.MID{1, 2}, nil)
	r.b.SetFaultModel(&dropNthFrag{n: 2})
	acked := 0
	for i := 0; i < 4; i++ {
		r.eps[1].Send(2, make([]byte, 2600), nil, func(got Result) {
			if got.Kind == ResultAcked {
				acked++
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acked != 4 {
		t.Fatalf("acked %d/4 messages", acked)
	}
	st := r.b.Stats()
	if st.SelectiveRetransmits == 0 {
		t.Fatal("SelectiveRetransmits = 0; the dropped fragment was never repaired selectively")
	}
	if st.FragmentRetransmits != st.SelectiveRetransmits {
		t.Fatalf("FragmentRetransmits %d != SelectiveRetransmits %d: go-back-N style resends leaked in",
			st.FragmentRetransmits, st.SelectiveRetransmits)
	}
	if st.SackBlocksSent == 0 {
		t.Fatal("SackBlocksSent = 0; out-of-order arrivals must advertise SACK blocks")
	}
	fast := false
	for _, ev := range events {
		if ev.Kind == EvSelectiveRetransmit && ev.Attempt == 1 {
			fast = true
		}
	}
	if !fast {
		t.Fatal("no round-1 selective retransmit: recovery waited for the timer instead of duplicate acks")
	}
}

// TestSelectiveSackMarking: a SACK-bearing FRAGACK marks exactly the
// advertised frames, and a later marked frame is only released by the
// cumulative point (SACK never renege-releases).
func TestSelectiveSackMarking(t *testing.T) {
	r := newWindowRigCfg(t, 1, 8, selCfg(RecoverySelective, nil), []frame.MID{1}, nil)
	e := r.eps[1]
	e.Send(2, make([]byte, 2600), nil, nil) // frags seq 0,1,2 — no peer, never acked
	ws := e.wout[2]
	if ws == nil || len(ws.frames) != 3 {
		t.Fatalf("want 3 unacknowledged frames, have %+v", ws)
	}
	// Receiver says: stuck just before the first frame, holding the third
	// (bit i advertises sequence cum+2+i).
	cum := ws.frames[0].seq - 1
	e.wProcess(&frame.TransportFrame{
		Kind: frame.TransportFragAck, Src: 2, Dst: 1,
		Seq: cum, SackBits: 1 << (ws.frames[2].seq - (cum + 2)), ConnOpen: true,
	})
	if ws.frames[0].sacked || ws.frames[1].sacked {
		t.Fatal("unadvertised frames marked sacked")
	}
	if !ws.frames[2].sacked {
		t.Fatal("advertised frame not marked sacked")
	}
	if len(ws.frames) != 3 {
		t.Fatal("SACK released frames; only the cumulative ack may release")
	}
}

// drained marks every outstanding fragment as having left the wire, so a
// directly-driven recovery round (at a frozen clock) sees actionable holes
// instead of an in-egress backlog.
func drained(ws *wsend) {
	for i := range ws.frames {
		ws.frames[i].wireAt = 0
	}
}

// TestSelectiveAntiRenegeAndAIMD drives the recovery timer path directly:
// round one halves cwnd and resends only the holes; round two distrusts the
// (possibly reneged) SACK picture, clears the marks, and resends everything
// unacknowledged, halving cwnd to its floor of 1.
func TestSelectiveAntiRenegeAndAIMD(t *testing.T) {
	var events []Event
	r := newWindowRigCfg(t, 1, 4, selCfg(RecoverySelective, &events), []frame.MID{1}, nil)
	e := r.eps[1]
	e.Send(2, make([]byte, 2600), nil, nil) // frags seq 0,1,2 — no peer
	ws := e.wout[2]
	if ws == nil || len(ws.frames) != 3 || ws.cwnd != 4 {
		t.Fatalf("unexpected initial send state: %+v", ws)
	}
	ws.frames[1].sacked = true

	countSel := func() int {
		n := 0
		for _, ev := range events {
			if ev.Kind == EvSelectiveRetransmit {
				n++
			}
		}
		return n
	}

	drained(ws)
	e.wRetransmit(2, ws)
	if got := countSel(); got != 2 {
		t.Fatalf("round 1 resent %d fragments, want 2 (holes only)", got)
	}
	if ws.cwnd != 2 {
		t.Fatalf("round 1 cwnd = %d, want 2 (multiplicative decrease)", ws.cwnd)
	}
	if !ws.frames[1].sacked {
		t.Fatal("round 1 cleared the SACK mark too early")
	}

	drained(ws)
	e.wRetransmit(2, ws)
	if got := countSel(); got != 5 {
		t.Fatalf("round 2 resent %d total, want 5 (anti-renege resends all 3)", got)
	}
	if ws.frames[1].sacked {
		t.Fatal("round 2 must distrust and clear the SACK marks")
	}
	if ws.cwnd != 1 {
		t.Fatalf("round 2 cwnd = %d, want floor 1", ws.cwnd)
	}

	drained(ws)
	e.wRetransmit(2, ws)
	if ws.cwnd != 1 {
		t.Fatalf("cwnd = %d, may never fall below 1", ws.cwnd)
	}
}

// TestSelectiveAIMDRegrow: after a lossy start, a long clean tail regrows
// cwnd additively; both adaptation directions appear and every reported
// cwnd stays within [1, ceiling] (the battery asserts the bound globally;
// this pins that both signals actually fire).
func TestSelectiveAIMDRegrow(t *testing.T) {
	var events []Event
	r := newWindowRigCfg(t, 3, 8, selCfg(RecoverySelective, &events), []frame.MID{1, 2}, nil)
	r.b.SetFaultModel(&wireSchedule{k: r.k, cutoff: sim.Time(500 * time.Millisecond), loss: 0.35})
	acked, resolved := 0, 0
	// Deep bursts keep the pipeline full through the lossy phase (so a
	// recovery-timer fire — the decrease signal — actually happens), then a
	// clean tail drains and regrows the window. A wire this hostile may
	// legitimately kill a connection (a DeadAfter span of pure silence is a
	// correct death verdict), so the run asserts resolution and mostly-acked
	// rather than a perfect score.
	for i := 0; i < 24; i++ {
		i := i
		r.k.At(time.Duration(i/8)*100*time.Millisecond, func() {
			r.eps[1].Send(2, make([]byte, 2600), nil, func(got Result) {
				resolved++
				if got.Kind == ResultAcked {
					acked++
				}
			})
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resolved != 24 {
		t.Fatalf("resolved %d/24 sends", resolved)
	}
	if acked < 18 {
		t.Fatalf("acked only %d/24", acked)
	}
	dec, inc := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EvWindowDecrease:
			dec++
		case EvWindowIncrease:
			inc++
		}
	}
	if dec == 0 {
		t.Fatal("no multiplicative decrease under 35% loss")
	}
	if inc == 0 {
		t.Fatal("no additive increase during the clean tail")
	}
}

// TestSelectiveOOOBufferBounds: the out-of-order buffer accepts only the
// SACK-representable span, deduplicates, stays within maxOOOFrags, and when
// a non-compliant peer overflows it, evicts the fragment farthest past the
// cumulative point — deterministically.
func TestSelectiveOOOBufferBounds(t *testing.T) {
	r := newWindowRigCfg(t, 1, 8, selCfg(RecoverySelective, nil), []frame.MID{1, 2}, nil)
	e := r.eps[2]
	wr := e.wrecvFor(1)
	wr.valid = true
	wr.cum = 100

	frag := func(seq uint8) *frame.TransportFrame {
		return &frame.TransportFrame{
			Kind: frame.TransportFrag, Src: 1, Dst: 2, Seq: seq,
			MsgSeq: 7, FragIndex: 1, Payload: []byte{seq},
		}
	}
	// In-span is [cum+2, cum+2+sackSpan); the boundary fragments on either
	// side must be refused.
	e.wBufferOOO(1, wr, frag(wr.cum+1))
	e.wBufferOOO(1, wr, frag(wr.cum+2+sackSpan))
	if len(wr.ooo) != 0 {
		t.Fatalf("out-of-span fragments banked: %d", len(wr.ooo))
	}
	// Fill every representable slot but one.
	for d := uint8(2); d < 2+sackSpan-1; d++ {
		e.wBufferOOO(1, wr, frag(wr.cum+d))
	}
	if len(wr.ooo) != sackSpan-1 {
		t.Fatalf("banked %d fragments, want %d", len(wr.ooo), sackSpan-1)
	}
	// Duplicate banking is a no-op (first copy wins).
	before := len(wr.ooo[wr.cum+2].payload)
	e.wBufferOOO(1, wr, &frame.TransportFrame{
		Kind: frame.TransportFrag, Src: 1, Dst: 2, Seq: wr.cum + 2,
		MsgSeq: 7, FragIndex: 1, Payload: []byte{1, 2, 3},
	})
	if len(wr.ooo) != sackSpan-1 || len(wr.ooo[wr.cum+2].payload) != before {
		t.Fatal("duplicate banking replaced or grew the buffer")
	}
	// A compliant sender can never overflow the buffer (the span holds
	// exactly maxOOOFrags sequences), so force the non-compliant shape:
	// a stale far entry left behind by a peer whose stream regressed.
	staleSeq := wr.cum + 200
	wr.ooo[staleSeq] = oooFrag{msgSeq: 3, idx: 1}
	last := wr.cum + 2 + sackSpan - 1
	e.wBufferOOO(1, wr, frag(last))
	if _, ok := wr.ooo[staleSeq]; ok {
		t.Fatal("eviction kept the farthest fragment")
	}
	if _, ok := wr.ooo[last]; !ok {
		t.Fatal("eviction dropped the new in-span fragment instead of the farthest")
	}
	if len(wr.ooo) > maxOOOFrags {
		t.Fatalf("buffer grew to %d, cap %d", len(wr.ooo), maxOOOFrags)
	}

	// sackBits covers exactly the banked in-span fragments.
	bits := wr.sackBits()
	for d := uint8(2); d < 2+sackSpan; d++ {
		_, banked := wr.ooo[wr.cum+d]
		if got := bits&(1<<(d-2)) != 0; got != banked {
			t.Fatalf("sack bit for cum+%d = %v, banked = %v", d, got, banked)
		}
	}
}

// TestSackBlockCount pins the run-counting used by the SackBlocksSent stat.
func TestSackBlockCount(t *testing.T) {
	cases := []struct {
		bits uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{0b1011, 2},
		{0b101010, 3},
		{^uint64(0), 1},
		{1 << 63, 1},
		{(1 << 63) | 1, 2},
	}
	for _, c := range cases {
		if got := sackBlockCount(c.bits); got != c.want {
			t.Errorf("sackBlockCount(%b) = %d, want %d", c.bits, got, c.want)
		}
	}
}

package deltat

import (
	"fmt"
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
)

// rig is a two-node (or more) test network.
type rig struct {
	k   *sim.Kernel
	b   *bus.Bus
	eps map[frame.MID]*Endpoint
}

func newRig(t *testing.T, seed int64, lossProb float64, mids []frame.MID, hooks map[frame.MID]Hooks) *rig {
	t.Helper()
	k := sim.New(seed)
	k.SetEventLimit(2_000_000)
	cfg := bus.DefaultConfig()
	cfg.LossProb = lossProb
	b := bus.New(k, cfg)
	r := &rig{k: k, b: b, eps: make(map[frame.MID]*Endpoint)}
	for _, mid := range mids {
		h, ok := hooks[mid]
		if !ok {
			h = Hooks{OnData: func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} }}
		}
		ep, err := New(k, b.Wire(), mid, DefaultConfig(), h)
		if err != nil {
			t.Fatalf("New(%d): %v", mid, err)
		}
		r.eps[mid] = ep
	}
	return r
}

func TestSendAckWithReply(t *testing.T) {
	var delivered []byte
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(src frame.MID, payload []byte) Decision {
			delivered = payload
			return Decision{Verdict: VerdictAck, Reply: []byte("pong")}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	var res *Result
	r.eps[1].Send(2, []byte("ping"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(delivered) != "ping" {
		t.Fatalf("delivered %q, want ping", delivered)
	}
	if res == nil || res.Kind != ResultAcked || string(res.Reply) != "pong" {
		t.Fatalf("result = %+v, want acked with pong", res)
	}
}

func TestInOrderDelivery(t *testing.T) {
	var got []string
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			got = append(got, string(p))
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	for i := 0; i < 10; i++ {
		r.eps[1].Send(2, []byte(fmt.Sprintf("m%d", i)), nil, nil)
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, m := range got {
		if want := fmt.Sprintf("m%d", i); m != want {
			t.Fatalf("got[%d] = %q, want %q", i, m, want)
		}
	}
}

// TestExactlyOnceUnderLoss is the protocol's core guarantee: despite frame
// loss, every message is delivered exactly once and in order (§3.3). The
// thesis's guarantee assumes "a packet retransmitted enough times will
// eventually arrive" — with a hard MPL+Δt death window, pathological loss
// streaks report a live peer dead instead, so the (deterministic) seeds
// here are ones whose loss schedule respects that assumption.
func TestExactlyOnceUnderLoss(t *testing.T) {
	for _, seed := range []int64{3, 7, 11, 13, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var got []string
			hooks := map[frame.MID]Hooks{
				2: {OnData: func(_ frame.MID, p []byte) Decision {
					got = append(got, string(p))
					return Decision{Verdict: VerdictAck}
				}},
			}
			r := newRig(t, seed, 0.25, []frame.MID{1, 2}, hooks)
			const n = 30
			acked := 0
			for i := 0; i < n; i++ {
				r.eps[1].Send(2, []byte(fmt.Sprintf("m%d", i)), nil, func(res Result) {
					if res.Kind == ResultAcked {
						acked++
					}
				})
			}
			if err := r.k.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if acked != n {
				t.Fatalf("acked %d/%d", acked, n)
			}
			if len(got) != n {
				t.Fatalf("delivered %d messages, want %d (duplicates or loss)", len(got), n)
			}
			for i, m := range got {
				if want := fmt.Sprintf("m%d", i); m != want {
					t.Fatalf("out of order at %d: %q", i, m)
				}
			}
		})
	}
}

func TestRetransmissionUsesStrippedPayload(t *testing.T) {
	var sizes []int
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			sizes = append(sizes, len(p))
			return Decision{Verdict: VerdictAck}
		}},
	}
	// Drop enough frames that a retransmission happens; with seed sweep
	// we find one quickly.
	for seed := int64(1); seed < 50; seed++ {
		sizes = nil
		r := newRig(t, seed, 0.6, []frame.MID{1, 2}, hooks)
		full := make([]byte, 400)
		r.eps[1].Send(2, full, []byte("retry"), nil)
		if err := r.k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(sizes) == 1 && sizes[0] == 5 {
			return // delivered via a stripped retransmission
		}
	}
	t.Skip("no seed produced a first-frame loss; loss model changed?")
}

func TestBusyRetry(t *testing.T) {
	busyCount := 2
	var deliveredAt sim.Time
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			if busyCount > 0 {
				busyCount--
				return Decision{Verdict: VerdictBusy}
			}
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	var res *Result
	r.eps[2].k.At(0, func() {}) // no-op; keep rig shape
	r.eps[1].Send(2, []byte("x"), nil, func(got Result) {
		res = &got
		deliveredAt = r.k.Now()
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked {
		t.Fatalf("result = %+v, want acked", res)
	}
	if busyCount != 0 {
		t.Fatalf("busyCount = %d, want 0", busyCount)
	}
	// Two busy rounds must cost at least two busy-retry intervals.
	if min := 2 * DefaultConfig().BusyRetryInterval; deliveredAt < min {
		t.Fatalf("completed at %v, want >= %v", deliveredAt, min)
	}
}

func TestErrorNack(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictError, Err: frame.ErrUnadvertised}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	var res *Result
	r.eps[1].Send(2, []byte("x"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultError || res.Err != frame.ErrUnadvertised {
		t.Fatalf("result = %+v, want unadvertised error", res)
	}
	// The error consumed the message: a following send still works.
	var res2 *Result
	r.eps[1].Send(2, []byte("y"), nil, func(got Result) { res2 = &got })
	hooks[2] = Hooks{}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2 == nil || res2.Kind != ResultError {
		t.Fatalf("second result = %+v", res2)
	}
}

func TestPeerDeadDetection(t *testing.T) {
	r := newRig(t, 1, 0, []frame.MID{1}, nil) // MID 2 does not exist
	var res *Result
	var at sim.Time
	r.eps[1].Send(2, []byte("x"), nil, func(got Result) { res = &got; at = r.k.Now() })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultPeerDead {
		t.Fatalf("result = %+v, want peer dead", res)
	}
	dead := DefaultConfig().DeadAfter()
	if at < dead {
		t.Fatalf("declared dead at %v, before MPL+Δt = %v", at, dead)
	}
	if at > 3*dead {
		t.Fatalf("declared dead only at %v; too slow vs %v", at, dead)
	}
}

func TestPeerDeadFailsQueuedMessages(t *testing.T) {
	r := newRig(t, 1, 0, []frame.MID{1}, nil)
	results := make([]ResultKind, 0, 3)
	for i := 0; i < 3; i++ {
		r.eps[1].Send(2, []byte("x"), nil, func(got Result) { results = append(results, got.Kind) })
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, k := range results {
		if k != ResultPeerDead {
			t.Fatalf("results = %v, want all peer-dead", results)
		}
	}
}

func TestHoldResolvedWithReply(t *testing.T) {
	r := newRig(t, 1, 0, []frame.MID{1, 2}, map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictHold, HoldTimeout: 10 * time.Millisecond}
		}},
	})
	// Resolve the hold shortly after delivery with a piggybacked reply.
	r.k.At(5*time.Millisecond, func() {
		if !r.eps[2].ResolveHold(1, Decision{Verdict: VerdictAck, Reply: []byte("late")}) {
			t.Error("ResolveHold found no hold")
		}
	})
	var res *Result
	r.eps[1].Send(2, []byte("q"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked || string(res.Reply) != "late" {
		t.Fatalf("result = %+v, want acked/late", res)
	}
}

func TestHoldExpiryPlainAck(t *testing.T) {
	var expired []Verdict
	r := newRig(t, 1, 0, []frame.MID{1, 2}, map[frame.MID]Hooks{
		2: {
			OnData: func(frame.MID, []byte) Decision {
				return Decision{Verdict: VerdictHold, HoldTimeout: 3 * time.Millisecond, ExpiryVerdict: VerdictAck}
			},
			OnHoldExpired: func(_ frame.MID, v Verdict) { expired = append(expired, v) },
		},
	})
	var res *Result
	r.eps[1].Send(2, []byte("q"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked || res.Reply != nil {
		t.Fatalf("result = %+v, want plain ack", res)
	}
	if len(expired) != 1 || expired[0] != VerdictAck {
		t.Fatalf("expired = %v", expired)
	}
	// Late resolution must report false.
	if r.eps[2].ResolveHold(1, Decision{Verdict: VerdictAck}) {
		t.Fatal("ResolveHold succeeded after expiry")
	}
}

func TestHoldExpiryBusy(t *testing.T) {
	first := true
	r := newRig(t, 1, 0, []frame.MID{1, 2}, map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			if first {
				first = false
				return Decision{Verdict: VerdictHold, HoldTimeout: 3 * time.Millisecond, ExpiryVerdict: VerdictBusy}
			}
			return Decision{Verdict: VerdictAck, Reply: []byte("ok")}
		}},
	})
	var res *Result
	r.eps[1].Send(2, []byte("q"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Busy expiry forces a retry, which the second OnData call accepts.
	if res == nil || res.Kind != ResultAcked || string(res.Reply) != "ok" {
		t.Fatalf("result = %+v, want acked/ok after busy expiry", res)
	}
}

// TestPiggybackDataResolvesHold exercises the ACCEPT+DATA pattern: node 2
// holds node 1's message and answers it with its own DATA frame carrying a
// piggybacked ACK (§5.2.3).
func TestPiggybackDataResolvesHold(t *testing.T) {
	var busStats *bus.Bus
	var fromTwo []byte
	hooks := map[frame.MID]Hooks{
		1: {OnData: func(_ frame.MID, p []byte) Decision {
			fromTwo = p
			return Decision{Verdict: VerdictAck}
		}},
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictHold, HoldTimeout: 20 * time.Millisecond}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	busStats = r.b
	r.k.At(8*time.Millisecond, func() { // after the query has been delivered and held
		if !r.eps[2].SendResolvingHold(1, []byte("reply-data"), nil, nil) {
			t.Error("SendResolvingHold found no hold")
		}
	})
	var res *Result
	r.eps[1].Send(2, []byte("query"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked {
		t.Fatalf("node 1 send result = %+v, want acked via piggyback", res)
	}
	if string(fromTwo) != "reply-data" {
		t.Fatalf("node 1 received %q", fromTwo)
	}
	// Wire economy: REQUEST(DATA), reply DATA+piggyACK, final ACK of the
	// reply — exactly 3 frames, with no pure ACK for the first DATA.
	st := busStats.Stats()
	if st.FramesSent != 3 {
		t.Fatalf("frames sent = %d, want 3 (%v)", st.FramesSent, st.ByKind)
	}
	if st.ByKind[frame.TransportAck] != 1 || st.ByKind[frame.TransportData] != 2 {
		t.Fatalf("frame mix = %v, want 2 DATA + 1 ACK", st.ByKind)
	}
}

func TestDuplicateSuppressionReplaysReply(t *testing.T) {
	// Force ACK loss by hammering with high loss; verify OnData is
	// called exactly once per message even though retransmissions occur.
	calls := 0
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			calls++
			return Decision{Verdict: VerdictAck, Reply: []byte("r")}
		}},
	}
	r := newRig(t, 21, 0.4, []frame.MID{1, 2}, hooks)
	var res *Result
	r.eps[1].Send(2, []byte("once"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked {
		t.Fatalf("result = %+v", res)
	}
	if calls != 1 {
		t.Fatalf("OnData called %d times, want exactly 1", calls)
	}
}

func TestCrashAndRebootQuietPeriod(t *testing.T) {
	delivered := 0
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			delivered++
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	e1 := r.eps[1]
	var rebootReadyAt sim.Time
	crashAt := 50 * time.Millisecond
	r.k.At(crashAt, func() {
		e1.Crash()
		e1.Reboot(func() {
			rebootReadyAt = r.k.Now()
			// Sequence numbers restarted; the receiver must accept.
			e1.Send(2, []byte("after"), nil, nil)
		})
	})
	e1.Send(2, []byte("before"), nil, nil)
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d messages, want 2", delivered)
	}
	wantQuiet := crashAt + DefaultConfig().QuietPeriod()
	if rebootReadyAt < wantQuiet {
		t.Fatalf("rejoined at %v, before quiet period end %v", rebootReadyAt, wantQuiet)
	}
}

func TestSendWhileCrashedIsDropped(t *testing.T) {
	r := newRig(t, 1, 0, []frame.MID{1, 2}, nil)
	r.eps[1].Crash()
	called := false
	r.eps[1].Send(2, []byte("x"), nil, func(Result) { called = true })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if called {
		t.Fatal("send from crashed endpoint must be dropped silently")
	}
}

func TestDatagramBroadcast(t *testing.T) {
	heard := map[frame.MID]string{}
	hooks := map[frame.MID]Hooks{}
	for _, mid := range []frame.MID{2, 3, 4} {
		mid := mid
		hooks[mid] = Hooks{
			OnData:     func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} },
			OnDatagram: func(_ frame.MID, p []byte) { heard[mid] = string(p) },
		}
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2, 3, 4}, hooks)
	r.eps[1].SendDatagram(frame.BroadcastMID, []byte("who"))
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, mid := range []frame.MID{2, 3, 4} {
		if heard[mid] != "who" {
			t.Fatalf("node %d heard %q", mid, heard[mid])
		}
	}
}

func TestTakeAnyAfterSilence(t *testing.T) {
	delivered := 0
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			delivered++
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	e1 := r.eps[1]
	e1.Send(2, []byte("a"), nil, nil)
	// After the connection lifetime of silence, both records expire and
	// sequence numbering restarts without confusion.
	gap := DefaultConfig().ConnLifetime() + 10*time.Millisecond
	r.k.At(gap, func() { e1.Send(2, []byte("b"), nil, nil) })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
}

func TestCostTotalsAccumulate(t *testing.T) {
	r := newRig(t, 1, 0, []frame.MID{1, 2}, nil)
	r.eps[1].Send(2, make([]byte, 100), nil, nil)
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tot := r.eps[1].Totals()
	if tot.Protocol <= 0 || tot.ConnTimer <= 0 || tot.RetransTimer <= 0 || tot.Copy <= 0 {
		t.Fatalf("totals not accumulated: %+v", tot)
	}
	r.eps[1].ResetTotals()
	if got := r.eps[1].Totals(); got.Protocol != 0 || got.FramesSent != 0 {
		t.Fatalf("totals not reset: %+v", got)
	}
}

func TestDeterministicUnderLoss(t *testing.T) {
	run := func() (sim.Time, uint64) {
		var doneAt sim.Time
		hooks := map[frame.MID]Hooks{
			2: {OnData: func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} }},
		}
		r := newRig(t, 777, 0.3, []frame.MID{1, 2}, hooks)
		for i := 0; i < 20; i++ {
			r.eps[1].Send(2, make([]byte, 64), nil, func(Result) { doneAt = r.k.Now() })
		}
		if err := r.k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return doneAt, r.b.Stats().FramesSent
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestNewRequiresOnData(t *testing.T) {
	k := sim.New(1)
	b := bus.New(k, bus.DefaultConfig())
	if _, err := New(k, b.Wire(), 1, DefaultConfig(), Hooks{}); err == nil {
		t.Fatal("New without OnData must fail")
	}
}

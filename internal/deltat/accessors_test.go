package deltat

import (
	"testing"

	"soda/internal/frame"
)

// TestEndpointAccessors pins the read-only surface the bench harness and
// observers consume: machine id, configuration echo, and the cost buckets
// with their measurement-window reset.
func TestEndpointAccessors(t *testing.T) {
	r := newRig(t, 7, 0, []frame.MID{1, 2}, nil)
	ep := r.eps[1]
	if ep.MID() != 1 {
		t.Fatalf("MID() = %d, want 1", ep.MID())
	}
	if got, want := ep.Config().RetransInterval, DefaultConfig().RetransInterval; got != want {
		t.Fatalf("Config().RetransInterval = %v, want %v", got, want)
	}
	ep.Send(2, []byte("ping"), nil, func(Result) {})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tot := ep.Totals()
	if tot.FramesSent == 0 || tot.Protocol == 0 {
		t.Fatalf("Totals after an exchange = %+v, want nonzero frames and protocol time", tot)
	}
	ep.ResetTotals()
	if got := ep.Totals(); got != (CostTotals{}) {
		t.Fatalf("Totals after reset = %+v, want zero", got)
	}
}

// TestEnumStrings pins the observer-facing names of every event kind and
// recovery mode; trace consumers key on these strings.
func TestEnumStrings(t *testing.T) {
	wantKinds := map[EventKind]string{
		EvConnOpen:            "CONN_OPEN",
		EvConnExpire:          "CONN_EXPIRE",
		EvConnClose:           "CONN_CLOSE",
		EvRetransmit:          "RETRANSMIT",
		EvAckTx:               "ACK_TX",
		EvAckRx:               "ACK_RX",
		EvPiggybackAck:        "PIGGYBACK_ACK",
		EvPeerDead:            "PEER_DEAD",
		EvBusyRetry:           "BUSY_RETRY",
		EvWindowFill:          "WINDOW_FILL",
		EvCumAck:              "CUM_ACK",
		EvFragRetransmit:      "FRAG_RETRANSMIT",
		EvSelectiveRetransmit: "SEL_RETRANSMIT",
		EvSackTx:              "SACK_TX",
		EvWindowIncrease:      "WINDOW_INC",
		EvWindowDecrease:      "WINDOW_DEC",
		EventKind(0):          "EV(?)",
	}
	for k, want := range wantKinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := RecoverySelective.String(); got != "selective" {
		t.Errorf("RecoverySelective.String() = %q", got)
	}
	if got := RecoveryGoBackN.String(); got != "gobackn" {
		t.Errorf("RecoveryGoBackN.String() = %q", got)
	}
}

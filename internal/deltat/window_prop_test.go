package deltat

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
)

// newWindowRig is newRig with a transport window. Window <= 1 builds the
// classic stop-and-wait endpoints, so the battery below runs the same
// properties against both engines.
func newWindowRig(t *testing.T, seed int64, window int, mids []frame.MID, hooks map[frame.MID]Hooks) *rig {
	return newWindowRigCfg(t, seed, window, nil, mids, hooks)
}

// newWindowRigCfg is newWindowRig with a config hook, for tests that pin the
// recovery mode or install an observer.
func newWindowRigCfg(t *testing.T, seed int64, window int, mut func(*Config), mids []frame.MID, hooks map[frame.MID]Hooks) *rig {
	t.Helper()
	k := sim.New(seed)
	k.SetEventLimit(4_000_000)
	b := bus.New(k, bus.DefaultConfig())
	r := &rig{k: k, b: b, eps: make(map[frame.MID]*Endpoint)}
	cfg := DefaultConfig()
	cfg.Window = window
	if mut != nil {
		mut(&cfg)
	}
	for _, mid := range mids {
		h, ok := hooks[mid]
		if !ok {
			h = Hooks{OnData: func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} }}
		}
		ep, err := New(k, b.Wire(), mid, cfg, h)
		if err != nil {
			t.Fatalf("New(%d): %v", mid, err)
		}
		r.eps[mid] = ep
	}
	return r
}

// wireSchedule is a seeded fault schedule: every delivery before the cutoff
// is independently lost, duplicated, or corrupted; after the cutoff the
// wire is clean so the run can drain. All randomness comes from the
// simulation kernel, so a schedule is a pure function of the seed.
type wireSchedule struct {
	k                  *sim.Kernel
	cutoff             sim.Time
	loss, dup, corrupt float64
}

func (s *wireSchedule) Judge(now sim.Time, _, _ frame.MID, _ []byte) bus.FaultAction {
	if now >= s.cutoff {
		return bus.FaultAction{}
	}
	switch p := s.k.Rand().Float64(); {
	case p < s.loss:
		return bus.FaultAction{Drop: true}
	case p < s.loss+s.dup:
		return bus.FaultAction{Duplicate: true}
	case p < s.loss+s.dup+s.corrupt:
		return bus.FaultAction{Corrupt: true}
	}
	return bus.FaultAction{}
}

// propMsgSize picks the i-th message size of a run: a deterministic spread
// from empty through multi-fragment (several times DefaultFragSize), so
// every run mixes inline, single-fragment, and windowed bulk messages.
func propMsgSize(seed int64, i int) int {
	return int((int64(i)*397 + seed*31) % 3100)
}

// propFill gives message i of direction dir a recognizable body so the
// receiver can verify content, not just count and order.
func propFill(dir string, i, size int) []byte {
	p := make([]byte, size)
	tag := fmt.Sprintf("%s#%d:", dir, i)
	copy(p, tag)
	for j := len(tag); j < size; j++ {
		p[j] = byte(i + j)
	}
	return p
}

// windowPropOutcome is one run's deterministic fingerprint plus the
// delivery evidence the properties are asserted on.
type windowPropOutcome struct {
	frames  uint64
	finalAt sim.Time
}

// runWindowProperty drives one seeded bidirectional transfer under the
// fault schedule and asserts the transport's contract (§3.3 extended to
// DESIGN.md §11): every message is acked, delivered exactly once, in
// order, with intact content — and after the kernel drains, both
// endpoints are fully quiescent (no timers armed, no buffered state).
func runWindowProperty(t *testing.T, seed int64, window int, mode RecoveryMode) windowPropOutcome {
	t.Helper()
	const perDir = 12
	var got12, got21 [][]byte
	hooks := map[frame.MID]Hooks{
		1: {OnData: func(_ frame.MID, p []byte) Decision {
			got21 = append(got21, append([]byte(nil), p...))
			return Decision{Verdict: VerdictAck}
		}},
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			got12 = append(got12, append([]byte(nil), p...))
			return Decision{Verdict: VerdictAck}
		}},
	}
	// The observer doubles as the AIMD invariant monitor: every window
	// adaptation event must report a cwnd inside [1, ceiling], and no such
	// event may ever fire under go-back-N (or stop-and-wait).
	mut := func(cfg *Config) {
		cfg.Recovery = mode
		cfg.Observer = func(ev Event) {
			switch ev.Kind {
			case EvWindowIncrease, EvWindowDecrease:
				if mode != RecoverySelective || window <= 1 {
					t.Errorf("%v event under mode %v window %d", ev.Kind, mode, window)
				}
				if ev.Attempt < 1 || ev.Attempt > window {
					t.Errorf("%v reports cwnd %d outside [1, %d]", ev.Kind, ev.Attempt, window)
				}
			}
		}
	}
	r := newWindowRigCfg(t, seed, window, mut, []frame.MID{1, 2}, hooks)
	// The schedule stays hostile for most of the send phase, then goes
	// clean so the tail can drain. The thesis guarantee (§3.3) assumes "a
	// packet retransmitted enough times will eventually arrive"; a wire
	// that destroys every frame for a DeadAfter span would (correctly)
	// report a live peer dead instead, as TestExactlyOnceUnderLoss notes.
	r.b.SetFaultModel(&wireSchedule{
		k:       r.k,
		cutoff:  sim.Time(450 * time.Millisecond),
		loss:    0.10,
		dup:     0.08,
		corrupt: 0.05,
	})

	var want12, want21 [][]byte
	acked := 0
	for i := 0; i < perDir; i++ {
		i := i
		p12 := propFill("fwd", i, propMsgSize(seed, i))
		p21 := propFill("rev", i, propMsgSize(seed+1, i))
		want12 = append(want12, p12)
		want21 = append(want21, p21)
		// Stagger the two directions so data, acks, and retransmissions
		// interleave on the wire rather than running as two monologues.
		r.k.At(time.Duration(i)*40*time.Millisecond, func() {
			r.eps[1].Send(2, p12, nil, func(res Result) {
				if res.Kind != ResultAcked {
					t.Errorf("fwd #%d: result %v, want acked", i, res.Kind)
				}
				acked++
			})
		})
		r.k.At(time.Duration(i)*40*time.Millisecond+13*time.Millisecond, func() {
			r.eps[2].Send(1, p21, nil, func(res Result) {
				if res.Kind != ResultAcked {
					t.Errorf("rev #%d: result %v, want acked", i, res.Kind)
				}
				acked++
			})
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if acked != 2*perDir {
		t.Fatalf("acked %d/%d sends", acked, 2*perDir)
	}
	check := func(dir string, got, want [][]byte) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: delivered %d messages, want %d (lost or duplicated)", dir, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s: message %d corrupted or out of order (len %d vs %d)",
					dir, i, len(got[i]), len(want[i]))
			}
		}
	}
	check("fwd", got12, want12)
	check("rev", got21, want21)
	for mid, ep := range r.eps {
		if !ep.Quiescent() {
			t.Fatalf("endpoint %d not quiescent after drain", mid)
		}
	}
	return windowPropOutcome{frames: r.b.Stats().FramesSent, finalAt: r.k.Now()}
}

// TestWindowPropertyBattery is the transport conformance battery: 8 seeded
// loss/duplicate/corrupt schedules × window depths {1, 2, 4, 8} × both
// recovery modes for the windowed depths — each cell asserting exactly-once
// in-order intact delivery, full acking, post-drain quiescence, and (via the
// observer) that the AIMD cwnd never leaves [1, ceiling]. Every cell also
// runs twice and must produce an identical (frames, final-time) fingerprint:
// the fault schedule and the transport's reaction to it are pure functions
// of the seed.
func TestWindowPropertyBattery(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 7, 11, 13, 17}
	for _, window := range []int{1, 2, 4, 8} {
		modes := []RecoveryMode{RecoverySelective}
		if window > 1 {
			modes = []RecoveryMode{RecoverySelective, RecoveryGoBackN}
		}
		for _, mode := range modes {
			for _, seed := range seeds {
				window, mode, seed := window, mode, seed
				name := fmt.Sprintf("w%d/seed%d", window, seed)
				if window > 1 {
					name = fmt.Sprintf("w%d/%s/seed%d", window, mode, seed)
				}
				t.Run(name, func(t *testing.T) {
					first := runWindowProperty(t, seed, window, mode)
					again := runWindowProperty(t, seed, window, mode)
					if first != again {
						t.Fatalf("nondeterministic: %+v vs %+v", first, again)
					}
					if first.frames == 0 {
						t.Fatal("no frames sent")
					}
				})
			}
		}
	}
}

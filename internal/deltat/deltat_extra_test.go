package deltat

import (
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
)

// TestUrgentJumpsQueue: an urgent message enqueued behind ordinary traffic
// is delivered first.
func TestUrgentJumpsQueue(t *testing.T) {
	var got []string
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			got = append(got, string(p))
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	// m0 transmits immediately (cur); m1..m3 queue; the urgent message
	// must precede them.
	r.eps[1].Send(2, []byte("m0"), nil, nil)
	r.eps[1].Send(2, []byte("m1"), nil, nil)
	r.eps[1].Send(2, []byte("m2"), nil, nil)
	r.eps[1].SendUrgent(2, []byte("urgent"), nil, nil)
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"m0", "urgent", "m1", "m2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestUrgentPreemptsBusyRetry: a message stuck in BUSY retries yields to an
// urgent reply, then still completes.
func TestUrgentPreemptsBusyRetry(t *testing.T) {
	k := sim.New(1)
	k.SetEventLimit(2_000_000)
	b := bus.New(k, bus.DefaultConfig())
	var got []string
	busyUntil := 60 * time.Millisecond
	e1, err := New(k, b.Wire(), 1, DefaultConfig(), Hooks{
		OnData: func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(k, b.Wire(), 2, DefaultConfig(), Hooks{
		OnData: func(_ frame.MID, p []byte) Decision {
			if string(p) == "blocked" && k.Now() < busyUntil {
				return Decision{Verdict: VerdictBusy}
			}
			got = append(got, string(p))
			return Decision{Verdict: VerdictAck}
		},
	}); err != nil {
		t.Fatal(err)
	}
	e1.Send(2, []byte("blocked"), nil, nil)
	k.At(10*time.Millisecond, func() {
		e1.SendUrgent(2, []byte("reply"), nil, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "reply" || got[1] != "blocked" {
		t.Fatalf("order = %v, want [reply blocked]", got)
	}
}

// TestDeferredAckPiggybacksOnNextData: VerdictAckDeferred rides the next
// DATA frame toward the sender instead of a dedicated ACK.
func TestDeferredAckPiggybacksOnNextData(t *testing.T) {
	var oneAcked bool
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictAckDeferred}
		}},
		1: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	r.eps[1].Send(2, []byte("query"), nil, func(res Result) {
		oneAcked = res.Kind == ResultAcked
	})
	// Node 2 sends its own DATA shortly after delivery (the query lands
	// at ≈2 ms) — within the ack-delay window — so the deferred ack
	// piggybacks.
	r.k.At(2500*time.Microsecond, func() {
		r.eps[2].Send(1, []byte("reply"), nil, nil)
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !oneAcked {
		t.Fatal("deferred ack never reached the sender")
	}
	st := r.b.Stats()
	// query DATA, reply DATA (carrying the deferred ack), reply's ACK:
	// exactly 3 frames, zero standalone ACKs for the query.
	if st.FramesSent != 3 {
		t.Fatalf("frames = %d (%v), want 3", st.FramesSent, st.ByKind)
	}
}

// TestDeferredAckFallsBackToPlainAck: with no reverse traffic the deferred
// ack degenerates to a plain ACK after the window.
func TestDeferredAckFallsBackToPlainAck(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictAckDeferred}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	acked := false
	var ackedAt time.Duration
	r.eps[1].Send(2, []byte("query"), nil, func(res Result) {
		acked = res.Kind == ResultAcked
		ackedAt = r.k.Now()
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !acked {
		t.Fatal("no ack")
	}
	if a := DefaultConfig().A; ackedAt < a {
		t.Fatalf("acked at %v, before the %v deferral window", ackedAt, a)
	}
	if st := r.b.Stats(); st.ByKind[frame.TransportAck] != 1 {
		t.Fatalf("frame mix %v, want one plain ACK", st.ByKind)
	}
}

// TestDeferredAckDupReplay: duplicates of a deferred-acked frame replay a
// plain ack (exactly-once delivery preserved).
func TestDeferredAckDupReplay(t *testing.T) {
	calls := 0
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			calls++
			return Decision{Verdict: VerdictAckDeferred}
		}},
	}
	// Loss forces retransmissions; delivery must still be exactly once.
	for _, seed := range []int64{3, 7, 13} {
		calls = 0
		r := newRig(t, seed, 0.35, []frame.MID{1, 2}, hooks)
		acked := false
		r.eps[1].Send(2, []byte("only-once"), nil, func(res Result) {
			acked = res.Kind == ResultAcked
		})
		if err := r.k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !acked || calls != 1 {
			t.Fatalf("seed %d: acked=%v calls=%d", seed, acked, calls)
		}
	}
}

// TestOutboxBusy reflects in-flight state.
func TestOutboxBusy(t *testing.T) {
	r := newRig(t, 1, 0, []frame.MID{1, 2}, nil)
	if r.eps[1].OutboxBusy(2) {
		t.Fatal("fresh outbox busy")
	}
	r.eps[1].Send(2, []byte("x"), nil, nil)
	if !r.eps[1].OutboxBusy(2) {
		t.Fatal("outbox with in-flight message not busy")
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.eps[1].OutboxBusy(2) {
		t.Fatal("outbox busy after completion")
	}
}

// TestFailAllHolds: pending holds resolve to error NACKs.
func TestFailAllHolds(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictHold, HoldTimeout: -1}
		}},
	}
	r := newRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	var res *Result
	r.eps[1].Send(2, []byte("held"), nil, func(got Result) { res = &got })
	r.k.At(10*time.Millisecond, func() { r.eps[2].FailAllHolds(frame.ErrStale) })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultError || res.Err != frame.ErrStale {
		t.Fatalf("result = %+v, want stale error", res)
	}
	if r.eps[2].HasHold(1) {
		t.Fatal("hold survived FailAllHolds")
	}
}

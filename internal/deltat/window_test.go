package deltat

import (
	"bytes"
	"testing"
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
)

// Targeted conformance tests for the windowed engine (DESIGN.md §11): each
// classic Delta-t behavior — busy retry, urgent preemption, holds, deferred
// and error verdicts, peer death, duplicate suppression, crash/reboot —
// re-proven with Window > 1, where messages travel as sequenced FRAG runs.

// TestWindowFragmentationRoundTrip: one bulk message becomes a FRAG run,
// arrives intact, and the reply rides the message-level ACK back.
func TestWindowFragmentationRoundTrip(t *testing.T) {
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			got = append([]byte(nil), p...)
			return Decision{Verdict: VerdictAck, Reply: []byte("bulk-ok")}
		}},
	}
	r := newWindowRig(t, 1, 8, []frame.MID{1, 2}, hooks)
	var res *Result
	r.eps[1].Send(2, payload, nil, func(re Result) { res = &re })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want %d intact", len(got), len(payload))
	}
	if res == nil || res.Kind != ResultAcked || string(res.Reply) != "bulk-ok" {
		t.Fatalf("result = %+v, want acked with reply", res)
	}
	st := r.b.Stats()
	if want := uint64((len(payload) + DefaultFragSize - 1) / DefaultFragSize); st.ByKind[frame.TransportFrag] != want {
		t.Fatalf("FRAG frames = %d, want %d (%v)", st.ByKind[frame.TransportFrag], want, st.ByKind)
	}
	if st.FragmentRetransmits != 0 {
		t.Fatalf("%d spurious retransmits on a clean wire", st.FragmentRetransmits)
	}
}

// TestWindowUrgentOvertakesBusy: a message stuck in BUSY retries yields to
// an urgent one — the windowed receiver must deliver the urgent message out
// of its buffered sequence, then resume the parked one.
func TestWindowUrgentOvertakesBusy(t *testing.T) {
	var r *rig
	var got []string
	busyUntil := 60 * time.Millisecond
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(_ frame.MID, p []byte) Decision {
			if string(p[:7]) == "blocked" && r.k.Now() < sim.Time(busyUntil) {
				return Decision{Verdict: VerdictBusy}
			}
			got = append(got, string(p[:5]))
			return Decision{Verdict: VerdictAck}
		}},
	}
	r = newWindowRig(t, 1, 4, []frame.MID{1, 2}, hooks)
	blocked := make([]byte, 2000)
	copy(blocked, "blocked")
	r.eps[1].Send(2, blocked, nil, nil)
	r.k.At(10*time.Millisecond, func() {
		urgent := make([]byte, 1500)
		copy(urgent, "reply")
		r.eps[1].SendUrgent(2, urgent, nil, nil)
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "reply" || got[1] != "block" {
		t.Fatalf("order = %v, want [reply block...]", got)
	}
	for mid, ep := range r.eps {
		if !ep.Quiescent() {
			t.Fatalf("endpoint %d not quiescent", mid)
		}
	}
}

// TestWindowHoldResolvedWithReply: VerdictHold on a fragmented message,
// resolved later with a piggybacked reply.
func TestWindowHoldResolvedWithReply(t *testing.T) {
	r := newWindowRig(t, 1, 4, []frame.MID{1, 2}, map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictHold, HoldTimeout: 50 * time.Millisecond}
		}},
	})
	// The 3-fragment message lands at ≈30 ms; resolve inside the hold.
	r.k.At(40*time.Millisecond, func() {
		if !r.eps[2].ResolveHold(1, Decision{Verdict: VerdictAck, Reply: []byte("late")}) {
			t.Error("ResolveHold found no hold")
		}
	})
	var res *Result
	r.eps[1].Send(2, make([]byte, 3000), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked || string(res.Reply) != "late" {
		t.Fatalf("result = %+v, want acked/late", res)
	}
}

// TestWindowSendResolvingHold: the ACCEPT+DATA pattern under a window —
// the held query is acked and the answer travels as an urgent message.
func TestWindowSendResolvingHold(t *testing.T) {
	var fromTwo []byte
	hooks := map[frame.MID]Hooks{
		1: {OnData: func(_ frame.MID, p []byte) Decision {
			fromTwo = append([]byte(nil), p...)
			return Decision{Verdict: VerdictAck}
		}},
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictHold, HoldTimeout: 60 * time.Millisecond}
		}},
	}
	r := newWindowRig(t, 1, 4, []frame.MID{1, 2}, hooks)
	reply := make([]byte, 2500)
	copy(reply, "reply-data")
	r.k.At(25*time.Millisecond, func() {
		if !r.eps[2].SendResolvingHold(1, reply, nil, nil) {
			t.Error("SendResolvingHold found no hold")
		}
	})
	var res *Result
	r.eps[1].Send(2, make([]byte, 1800), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked {
		t.Fatalf("query result = %+v, want acked", res)
	}
	if !bytes.Equal(fromTwo, reply) {
		t.Fatalf("answer corrupted: %d bytes", len(fromTwo))
	}
}

// TestWindowAckDeferredFallsBack: with no reverse traffic the deferred ack
// degenerates to a plain message ACK after the A window.
func TestWindowAckDeferredFallsBack(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictAckDeferred}
		}},
	}
	r := newWindowRig(t, 1, 4, []frame.MID{1, 2}, hooks)
	var res *Result
	var ackedAt sim.Time
	r.eps[1].Send(2, make([]byte, 2000), nil, func(got Result) {
		res = &got
		ackedAt = r.k.Now()
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked {
		t.Fatalf("result = %+v", res)
	}
	if a := sim.Time(DefaultConfig().A); ackedAt < a {
		t.Fatalf("acked at %v, before the %v deferral window", ackedAt, a)
	}
}

// TestWindowErrorNack: an error verdict on a fragmented message reaches
// the sender and consumes the message.
func TestWindowErrorNack(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictError, Err: frame.ErrUnadvertised}
		}},
	}
	r := newWindowRig(t, 1, 4, []frame.MID{1, 2}, hooks)
	var res1, res2 *Result
	r.eps[1].Send(2, make([]byte, 2200), nil, func(got Result) { res1 = &got })
	r.eps[1].Send(2, make([]byte, 100), nil, func(got Result) { res2 = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res1 == nil || res1.Kind != ResultError || res1.Err != frame.ErrUnadvertised {
		t.Fatalf("first result = %+v, want unadvertised error", res1)
	}
	if res2 == nil || res2.Kind != ResultError {
		t.Fatalf("second result = %+v; the error must not wedge the window", res2)
	}
}

// TestWindowPeerDead: fragments into the void still respect the MPL+Δt
// death bound, and the whole queue fails together.
func TestWindowPeerDead(t *testing.T) {
	r := newWindowRig(t, 1, 4, []frame.MID{1}, nil) // MID 2 does not exist
	var kinds []ResultKind
	var at sim.Time
	for i := 0; i < 3; i++ {
		r.eps[1].Send(2, make([]byte, 2000), nil, func(got Result) {
			kinds = append(kinds, got.Kind)
			at = r.k.Now()
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(kinds) != 3 {
		t.Fatalf("got %d results, want 3", len(kinds))
	}
	for _, k := range kinds {
		if k != ResultPeerDead {
			t.Fatalf("results = %v, want all peer-dead", kinds)
		}
	}
	dead := sim.Time(DefaultConfig().DeadAfter())
	if at < dead || at > 3*dead {
		t.Fatalf("declared dead at %v, want within [%v, %v]", at, dead, 3*dead)
	}
	if !r.eps[1].Quiescent() {
		t.Fatal("endpoint not quiescent after peer death")
	}
}

// TestWindowDuplicateReplay: under heavy loss a consumed message's
// retransmitted fragments replay the cached reply instead of re-delivering.
// Loss schedules that silence the wire for a full DeadAfter span correctly
// report the peer dead, so the test sweeps seeds and demands (a) delivery
// is exactly-once on every run, dead or not, and (b) several runs where
// the message survived loss-forced fragment retransmissions.
func TestWindowDuplicateReplay(t *testing.T) {
	ackedWithRetransmits := 0
	for seed := int64(1); seed <= 20; seed++ {
		calls := 0
		hooks := map[frame.MID]Hooks{
			2: {OnData: func(frame.MID, []byte) Decision {
				calls++
				return Decision{Verdict: VerdictAck, Reply: []byte("r")}
			}},
		}
		r := newWindowRig(t, seed, 4, []frame.MID{1, 2}, hooks)
		r.b.SetFaultModel(&wireSchedule{k: r.k, cutoff: sim.Time(120 * time.Millisecond), loss: 0.35})
		var res *Result
		r.eps[1].Send(2, make([]byte, 2600), nil, func(got Result) { res = &got })
		if err := r.k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if calls > 1 {
			t.Fatalf("seed %d: OnData called %d times, want at most 1", seed, calls)
		}
		if res == nil {
			t.Fatalf("seed %d: no result", seed)
		}
		if res.Kind == ResultAcked {
			if string(res.Reply) != "r" || calls != 1 {
				t.Fatalf("seed %d: acked but reply=%q calls=%d", seed, res.Reply, calls)
			}
			if r.b.Stats().FragmentRetransmits > 0 {
				ackedWithRetransmits++
			}
		}
	}
	if ackedWithRetransmits < 3 {
		t.Fatalf("only %d/20 seeds survived loss with retransmissions; loss model changed?", ackedWithRetransmits)
	}
}

// TestWindowCrashRebootQuietPeriod: a crash clears all window state; after
// the quiet period the restarted sequence space is accepted.
func TestWindowCrashRebootQuietPeriod(t *testing.T) {
	delivered := 0
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			delivered++
			return Decision{Verdict: VerdictAck}
		}},
	}
	r := newWindowRig(t, 1, 4, []frame.MID{1, 2}, hooks)
	e1 := r.eps[1]
	var rebootReadyAt sim.Time
	crashAt := 60 * time.Millisecond
	r.k.At(crashAt, func() {
		e1.Crash()
		e1.Reboot(func() {
			rebootReadyAt = r.k.Now()
			e1.Send(2, make([]byte, 2000), nil, nil)
		})
	})
	e1.Send(2, make([]byte, 2000), nil, nil)
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d messages, want 2", delivered)
	}
	wantQuiet := sim.Time(crashAt + DefaultConfig().QuietPeriod())
	if rebootReadyAt < wantQuiet {
		t.Fatalf("rejoined at %v, before quiet period end %v", rebootReadyAt, wantQuiet)
	}
}

// TestWindowStatsCounters: the three windowed wire counters accumulate —
// fills when the window binds, cumulative acks on fragment runs, and
// fragment retransmits under loss.
func TestWindowStatsCounters(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} }},
	}
	r := newWindowRig(t, 5, 2, []frame.MID{1, 2}, hooks)
	r.b.SetFaultModel(&wireSchedule{k: r.k, cutoff: sim.Time(200 * time.Millisecond), loss: 0.20})
	for i := 0; i < 8; i++ {
		r.eps[1].Send(2, make([]byte, 1500), nil, nil)
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := r.b.Stats()
	if st.WindowFills == 0 {
		t.Error("WindowFills = 0; eight queued bulk messages must fill a 2-deep window")
	}
	if st.CumulativeAcks == 0 {
		t.Error("CumulativeAcks = 0 on a fragmented stream")
	}
	if st.FragmentRetransmits == 0 {
		t.Error("FragmentRetransmits = 0 under 20% loss")
	}
}
